//go:build race

package service

// raceEnabled reports whether the race detector instruments this build;
// wall-clock assertions skip themselves under its overhead.
const raceEnabled = true
