package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/netecon-sim/publicoption/internal/cache"
	"github.com/netecon-sim/publicoption/internal/obs"
	"github.com/netecon-sim/publicoption/internal/refine"
	"github.com/netecon-sim/publicoption/internal/scenario"
)

// GET/POST /v1/query — solve-free point queries over a grid scenario.
//
// The first query for a grid builds its adaptive-refinement surrogate
// (internal/refine) through the worker pool and caches it under the
// scenario's content address; every later query for any point of that grid
// evaluates the cached surrogate — a few bilinear patches, zero kernel
// solves. The surrogate carries a solver-verified error bound: when
// verification failed (or was disabled with "probes": -1), queries fall
// back to one cached kernel solve per distinct point instead of serving
// unverified interpolation, so the answer is always either within the
// configured tolerance or exact.
//
// The surrogate's lattice points and the per-point fallback solves share
// the per-cell equilibrium cache with POST /v1/batch: a dense batch warms
// the surrogate build and vice versa.

// queryRequest is the body of POST /v1/query; the GET form takes the same
// fields as URL parameters (?grid=name&x=…&y=…).
type queryRequest struct {
	// Grid names a registered 2-D grid scenario; GridJSON inlines one.
	// Exactly one must be set.
	Grid     string          `json:"grid,omitempty"`
	GridJSON json.RawMessage `json:"grid_json,omitempty"`
	// X and Y are the query point in resolved model units (the units the
	// batch header's xs/ys arrays are in).
	X float64 `json:"x"`
	Y float64 `json:"y"`
	// Workers overrides the surrogate build's internal parallelism.
	// Execution-only: it does not participate in the cache key.
	Workers int `json:"workers,omitempty"`
}

// QueryResponse is the answer to one point query.
type QueryResponse struct {
	Grid string  `json:"grid"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	// Values holds one scalar per output layer.
	Values map[string]float64 `json:"values"`
	// Source is "surrogate" when the interpolating surrogate answered
	// under its verified error bound, "solve" when the server fell back to
	// a (cached) kernel solve because verification did not hold.
	Source string `json:"source"`
	// Verified, MaxError and Tolerance describe the surrogate's error
	// contract: Verified means probing ran and the worst observed
	// normalized error (MaxError) stayed within Tolerance.
	Verified  bool    `json:"verified"`
	MaxError  float64 `json:"max_error"`
	Tolerance float64 `json:"tolerance"`
	// Cache reports how the authoritative artifact for this answer was
	// obtained: the surrogate itself ("hit"/"miss"/"coalesced"), or the
	// fallback point solve when Source is "solve".
	Cache     string  `json:"cache"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Trace     string  `json:"trace,omitempty"`
}

func (s *Server) handleQueryPost(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeJSONBody(w, r, &req, false); err != nil {
		writeError(w, bodyErrorStatus(err), "%v", err)
		return
	}
	s.serveQuery(w, r, &req)
}

func (s *Server) handleQueryGet(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	req := queryRequest{Grid: q.Get("grid")}
	for _, p := range []struct {
		name string
		dst  *float64
	}{{"x", &req.X}, {"y", &req.Y}} {
		raw := q.Get(p.name)
		if raw == "" {
			writeError(w, http.StatusBadRequest, "missing required parameter %q (try /v1/query?grid=name&x=…&y=…)", p.name)
			return
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "parameter %q: %v", p.name, err)
			return
		}
		*p.dst = v
	}
	s.serveQuery(w, r, &req)
}

// serveQuery answers one point query: resolve the grid, get-or-build its
// surrogate through the cache, evaluate — falling back to a cached kernel
// solve when the surrogate's error bound is not verified.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, req *queryRequest) {
	if (req.Grid == "") == (len(req.GridJSON) == 0) {
		writeError(w, http.StatusBadRequest, "give exactly one of \"grid\" (a registered name) or \"grid_json\" (an inline definition)")
		return
	}
	sc, errStatus, err := s.resolveGridScenario(req.Grid, req.GridJSON)
	if err != nil {
		writeError(w, errStatus, "%v", err)
		return
	}
	job, err := sc.CompileGrid()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	surrKey, err := s.surrogateKey(sc)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.solveWorkers
	}

	reqStart := time.Now()
	trace := obs.TraceID(r.Context())
	res, status, err := s.surrogateFor(r, sc.Name, surrKey, job, workers)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building surrogate: %v", err)
		return
	}

	vals, err := res.Values(req.X, req.Y)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := QueryResponse{
		Grid: sc.Name, X: req.X, Y: req.Y,
		Values:    job.ValuesMap(vals),
		Source:    "surrogate",
		Verified:  res.Verified(),
		MaxError:  res.MaxError(),
		Tolerance: res.Tolerance(),
		Cache:     status.String(),
	}
	if !res.Verified() {
		// The error bound does not hold (verification failed or was
		// disabled): answer with one kernel solve through the per-cell
		// cache instead of unverified interpolation.
		cell, st, err := s.solvePointCached(r, job, req.X, req.Y)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "fallback solve: %v", err)
			return
		}
		resp.Values = cell.Values
		resp.Source = "solve"
		resp.Cache = st.String()
	}
	s.metrics.observeQuery(resp.Source)
	resp.ElapsedMS = float64(time.Since(reqStart).Microseconds()) / 1e3
	if s.trace {
		resp.Trace = trace
	}
	writeJSON(w, http.StatusOK, resp)
}

// surrogateKey is the content address of a grid scenario's refined
// surrogate: the canonical scenario bytes (refine block included) under the
// surrogate namespace.
func (s *Server) surrogateKey(sc *scenario.Scenario) (string, error) {
	canon, err := sc.CanonicalJSON()
	if err != nil {
		return "", fmt.Errorf("serializing scenario: %v", err)
	}
	return cache.Key("refine/surrogate/v1", json.RawMessage(canon))
}

// surrogateFor returns the grid's refined surrogate, building it through
// the cache's worker pool on first need. The build reads and writes the
// per-cell equilibrium cache, so it shares solves with POST /v1/batch.
func (s *Server) surrogateFor(r *http.Request, name, surrKey string, job *scenario.GridJob, workers int) (*refine.Result, cache.Status, error) {
	reqStart := time.Now()
	var delta obs.SolveStats
	lookup, store := s.cellHooks(job)
	val, status, err := s.store.DoContext(r.Context(), surrKey, func() (any, error) {
		s.metrics.solveStarted()
		defer s.metrics.solveFinished()
		var sink obs.Counters
		prob, flush := job.RefineProblem(&sink)
		res, err := refine.Run(r.Context(), prob, job.RefineSpec(), refine.Options{
			Workers: workers, Lookup: lookup, Store: store,
		})
		flush()
		delta = sink.Snapshot()
		s.counters.Add(delta)
		if err != nil {
			return nil, err
		}
		s.refineCounters.Add(res.Stats())
		return res, nil
	})
	elapsed := time.Since(reqStart)
	outcome := status.String()
	if err != nil {
		outcome = "error"
	}
	s.metrics.observeSolve(outcome, elapsed.Seconds())
	ev := obs.Event{
		Time: time.Now(), Trace: obs.TraceID(r.Context()), Kind: "query",
		Name: name, Key: shortKey(surrKey), Outcome: outcome,
		DurationMS: float64(elapsed.Microseconds()) / 1e3,
		Solver:     delta,
	}
	if err != nil {
		ev.Error = err.Error()
		s.recorder.Record(ev)
		s.logger.Warn("surrogate build failed",
			"grid", name, "key", shortKey(surrKey), "trace", ev.Trace, "error", err)
		return nil, status, err
	}
	s.recorder.Record(ev)
	if status == cache.Miss {
		res := val.(*refine.Result)
		st := res.Stats()
		s.logger.Info("surrogate built",
			"grid", name, "key", shortKey(surrKey),
			"points_solved", st.PointsSolved, "points_reused", st.PointsReused,
			"probes", st.ProbeSolves, "leaves", st.Leaves(),
			"verified", res.Verified(), "max_error", res.MaxError(),
			"elapsed_s", elapsed.Seconds(), "trace", ev.Trace)
	}
	return val.(*refine.Result), status, nil
}

// solvePointCached solves one off-lattice grid point through the per-cell
// equilibrium cache — the unverified-surrogate fallback path of /v1/query.
func (s *Server) solvePointCached(r *http.Request, job *scenario.GridJob, x, y float64) (scenario.Cell, cache.Status, error) {
	key, err := cache.Key("batch/cell/v1", job.CellSpecAt(x, y))
	if err != nil {
		return scenario.Cell{}, 0, err
	}
	val, status, err := s.store.DoContext(r.Context(), key, func() (any, error) {
		s.metrics.solveStarted()
		defer s.metrics.solveFinished()
		worker := job.NewWorker()
		cell := scenario.Cell{Row: -1, Col: -1, X: x, Y: y, Values: worker.SolveAt(x, y)}
		s.counters.Add(worker.Stats())
		s.recorder.Record(obs.Event{
			Time: time.Now(), Trace: obs.TraceID(r.Context()), Kind: "cell",
			Name: job.Layers[0], Key: shortKey(key), Outcome: cache.Miss.String(),
			Solver: worker.Stats(),
		})
		return cell, nil
	})
	if err != nil {
		return scenario.Cell{}, status, err
	}
	return val.(scenario.Cell), status, nil
}

// cellHooks bridges the refinement engine's point cache to the server's
// content-addressed equilibrium cache: every lattice point and probe is
// keyed by its CellSpecAt address — the same namespace POST /v1/batch uses
// for dense cells — so dense and refined runs of coincident points share
// solves. Lookup may be called concurrently from row tasks; the store is
// goroutine-safe.
func (s *Server) cellHooks(job *scenario.GridJob) (lookup func(x, y float64) ([]float64, bool), store func(x, y float64, vals []float64)) {
	lookup = func(x, y float64) ([]float64, bool) {
		key, err := cache.Key("batch/cell/v1", job.CellSpecAt(x, y))
		if err != nil {
			return nil, false
		}
		val, ok := s.store.Lookup(key)
		if !ok {
			return nil, false
		}
		cell, ok := val.(scenario.Cell)
		if !ok {
			return nil, false
		}
		return job.ValuesSlice(cell.Values)
	}
	store = func(x, y float64, vals []float64) {
		key, err := cache.Key("batch/cell/v1", job.CellSpecAt(x, y))
		if err != nil {
			return
		}
		s.store.Put(key, scenario.Cell{Row: -1, Col: -1, X: x, Y: y, Values: job.ValuesMap(vals)})
	}
	return lookup, store
}
