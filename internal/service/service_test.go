package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/netecon-sim/publicoption/internal/experiment"
	"github.com/netecon-sim/publicoption/internal/obs"
	"github.com/netecon-sim/publicoption/internal/scenario"
	"github.com/netecon-sim/publicoption/internal/sweep"
)

// stubTables is a minimal solver output for stubbed runners.
func stubTables() []*sweep.Table {
	return []*sweep.Table{{
		Title: "stub", XLabel: "nu", YLabel: "phi",
		Series: []sweep.Series{{Name: "phi", X: []float64{0.1, 0.2}, Y: []float64{1, 2}}},
	}}
}

// newStubServer returns a server whose scenario runner returns stubTables
// instantly, plus a counter of how many times it actually ran.
func newStubServer(opts Options) (*Server, *atomic.Int64) {
	s := New(opts)
	var calls atomic.Int64
	s.runScenario = func(sc *scenario.Scenario, workers int, stats *obs.Counters) ([]*sweep.Table, error) {
		calls.Add(1)
		return stubTables(), nil
	}
	return s, &calls
}

// do performs one request against the server and returns the response.
func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	return w
}

func decode[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding response %q: %v", w.Body.String(), err)
	}
	return v
}

func TestListScenarios(t *testing.T) {
	s := New(Options{})
	w := do(t, s, "GET", "/v1/scenarios", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	infos := decode[[]ScenarioInfo](t, w)
	if len(infos) == 0 {
		t.Fatal("no scenarios listed")
	}
	found := false
	for _, in := range infos {
		if in.Name == "neutral-baseline" {
			found = true
			if in.Title == "" {
				t.Error("listed scenario has empty title")
			}
		}
	}
	if !found {
		t.Fatal("neutral-baseline missing from listing")
	}
}

func TestGetScenario(t *testing.T) {
	s := New(Options{})
	w := do(t, s, "GET", "/v1/scenarios/neutral-baseline", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	sc := decode[scenario.Scenario](t, w)
	if sc.Name != "neutral-baseline" || len(sc.Providers) == 0 {
		t.Fatalf("unexpected scenario payload: %+v", sc)
	}

	if w := do(t, s, "GET", "/v1/scenarios/no-such-scenario", ""); w.Code != http.StatusNotFound {
		t.Fatalf("unknown scenario: status %d, want 404", w.Code)
	}
}

func TestListExperiments(t *testing.T) {
	s := New(Options{})
	w := do(t, s, "GET", "/v1/experiments", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	infos := decode[[]ExperimentInfo](t, w)
	want := len(experiment.All())
	if len(infos) != want {
		t.Fatalf("listed %d experiments, registry has %d", len(infos), want)
	}
}

func TestHealthz(t *testing.T) {
	s := New(Options{})
	w := do(t, s, "GET", "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	h := decode[map[string]any](t, w)
	if h["status"] != "ok" {
		t.Fatalf("healthz payload: %v", h)
	}
}

func TestRunWarmHitSkipsRunner(t *testing.T) {
	s, calls := newStubServer(Options{})
	body := `{"scenario": "neutral-baseline"}`

	w := do(t, s, "POST", "/v1/runs", body)
	if w.Code != http.StatusOK {
		t.Fatalf("first run: status %d: %s", w.Code, w.Body)
	}
	first := decode[RunResponse](t, w)
	if first.Cache != "miss" {
		t.Fatalf("first run cache = %q, want miss", first.Cache)
	}
	if first.Kind != "scenario" || first.Name != "neutral-baseline" || len(first.Tables) != 1 {
		t.Fatalf("unexpected result: %+v", first.RunResult)
	}

	w = do(t, s, "POST", "/v1/runs", body)
	second := decode[RunResponse](t, w)
	if second.Cache != "hit" {
		t.Fatalf("second run cache = %q, want hit", second.Cache)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("runner ran %d times across a miss and a hit, want 1", got)
	}
	if len(second.Tables) != 1 || second.Tables[0].Series[0].Name != "phi" {
		t.Fatalf("cached tables corrupted: %+v", second.Tables)
	}
}

func TestRunConcurrentIdenticalRequestsSolveOnce(t *testing.T) {
	const clients = 12
	s, calls := newStubServer(Options{})
	// Make the solve slow enough that all clients pile onto one flight.
	release := make(chan struct{})
	entered := make(chan struct{})
	s.runScenario = func(sc *scenario.Scenario, workers int, stats *obs.Counters) ([]*sweep.Table, error) {
		calls.Add(1)
		close(entered)
		<-release
		return stubTables(), nil
	}

	body := `{"scenario": "neutral-baseline"}`
	codes := make([]int, clients)
	caches := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := do(t, s, "POST", "/v1/runs", body)
			codes[i] = w.Code
			var resp RunResponse
			json.Unmarshal(w.Body.Bytes(), &resp)
			caches[i] = resp.Cache
		}()
	}
	<-entered
	// The solver is parked inside the one in-flight solve; give the other
	// clients a moment to reach the cache, then let it finish.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("%d identical concurrent requests ran the solver %d times, want exactly 1", clients, got)
	}
	misses := 0
	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d", i, codes[i])
		}
		if caches[i] == "miss" {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d clients saw a miss, want exactly 1", misses)
	}
}

func TestRunInlineScenarioSharesCacheWithNamed(t *testing.T) {
	s, calls := newStubServer(Options{})
	// Prime with the named form.
	if w := do(t, s, "POST", "/v1/runs", `{"scenario": "archetypes-capacity"}`); w.Code != http.StatusOK {
		t.Fatalf("prime: status %d: %s", w.Code, w.Body)
	}
	// Replay the identical definition inline: the content address must match.
	sc, _ := scenario.Get("archetypes-capacity")
	js, err := sc.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"scenario_json": %s}`, js)
	w := do(t, s, "POST", "/v1/runs", body)
	if w.Code != http.StatusOK {
		t.Fatalf("inline run: status %d: %s", w.Code, w.Body)
	}
	resp := decode[RunResponse](t, w)
	if resp.Cache != "hit" {
		t.Fatalf("identical inline scenario was a %q, want hit (content addressing)", resp.Cache)
	}
	if calls.Load() != 1 {
		t.Fatalf("runner ran %d times, want 1", calls.Load())
	}
}

func TestRunWorkersExcludedFromCacheKey(t *testing.T) {
	s, calls := newStubServer(Options{})
	do(t, s, "POST", "/v1/runs", `{"scenario": "neutral-baseline", "workers": 1}`)
	w := do(t, s, "POST", "/v1/runs", `{"scenario": "neutral-baseline", "workers": 4}`)
	resp := decode[RunResponse](t, w)
	if resp.Cache != "hit" || calls.Load() != 1 {
		t.Fatalf("workers leaked into the cache key: cache=%q solves=%d", resp.Cache, calls.Load())
	}
}

func TestRunValidation(t *testing.T) {
	s, _ := newStubServer(Options{})
	cases := []struct {
		name string
		body string
		code int
	}{
		{"empty body", "", http.StatusBadRequest},
		{"neither field", `{}`, http.StatusBadRequest},
		{"both fields", `{"scenario": "x", "scenario_json": {"name": "y"}}`, http.StatusBadRequest},
		{"unknown name", `{"scenario": "no-such"}`, http.StatusNotFound},
		{"unknown field", `{"scenario": "neutral-baseline", "bogus": 1}`, http.StatusBadRequest},
		{"invalid inline", `{"scenario_json": {"name": "bad name!"}}`, http.StatusBadRequest},
		{"trailing garbage", `{"scenario": "neutral-baseline"} {}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(t, s, "POST", "/v1/runs", tc.body)
			if w.Code != tc.code {
				t.Fatalf("status %d, want %d (body %s)", w.Code, tc.code, w.Body)
			}
			resp := decode[map[string]any](t, w)
			if resp["error"] == "" {
				t.Fatal("error response has no error message")
			}
		})
	}
}

func TestOversizedBodyReturns413(t *testing.T) {
	s, _ := newStubServer(Options{})
	huge := `{"scenario": "` + strings.Repeat("x", maxRequestBody) + `"}`
	w := do(t, s, "POST", "/v1/runs", huge)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (body %s)", w.Code, w.Body)
	}
	resp := decode[map[string]any](t, w)
	if msg, _ := resp["error"].(string); !strings.Contains(msg, "limit") {
		t.Fatalf("413 error message %q does not mention the limit", msg)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := New(Options{})
	if w := do(t, s, "GET", "/v1/runs", ""); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/runs: status %d, want 405", w.Code)
	}
	if w := do(t, s, "POST", "/healthz", ""); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz: status %d, want 405", w.Code)
	}
}

func TestExperimentRun(t *testing.T) {
	s := New(Options{})
	var calls atomic.Int64
	var gotCfg experiment.Config
	s.runExperiment = func(e *experiment.Experiment, cfg experiment.Config) ([]*sweep.Table, error) {
		calls.Add(1)
		gotCfg = cfg
		return stubTables(), nil
	}

	// Empty body = defaults.
	w := do(t, s, "POST", "/v1/experiments/fig4/run", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	resp := decode[RunResponse](t, w)
	if resp.Kind != "experiment" || resp.Name != "fig4" || resp.Cache != "miss" {
		t.Fatalf("unexpected response: %+v", resp)
	}

	// Same config again: cache hit, no second solve.
	w = do(t, s, "POST", "/v1/experiments/fig4/run", "{}")
	if resp := decode[RunResponse](t, w); resp.Cache != "hit" {
		t.Fatalf("repeat run cache = %q, want hit", resp.Cache)
	}
	if calls.Load() != 1 {
		t.Fatalf("solver ran %d times, want 1", calls.Load())
	}

	// A different result-changing config is a different key.
	w = do(t, s, "POST", "/v1/experiments/fig4/run", `{"fast": true, "cps": 50}`)
	if resp := decode[RunResponse](t, w); resp.Cache != "miss" {
		t.Fatalf("distinct config cache = %q, want miss", resp.Cache)
	}
	if !gotCfg.Fast || gotCfg.CPs != 50 {
		t.Fatalf("config not forwarded: %+v", gotCfg)
	}

	if w := do(t, s, "POST", "/v1/experiments/no-such/run", ""); w.Code != http.StatusNotFound {
		t.Fatalf("unknown experiment: status %d, want 404", w.Code)
	}
	if w := do(t, s, "POST", "/v1/experiments/fig4/run", `{"cps": -1}`); w.Code != http.StatusBadRequest {
		t.Fatalf("negative cps: status %d, want 400", w.Code)
	}
}

func TestRunnerErrorIsNotCached(t *testing.T) {
	s := New(Options{})
	var calls atomic.Int64
	s.runScenario = func(sc *scenario.Scenario, workers int, stats *obs.Counters) ([]*sweep.Table, error) {
		if calls.Add(1) == 1 {
			return nil, fmt.Errorf("transient failure")
		}
		return stubTables(), nil
	}
	body := `{"scenario": "neutral-baseline"}`
	if w := do(t, s, "POST", "/v1/runs", body); w.Code != http.StatusInternalServerError {
		t.Fatalf("failed solve: status %d, want 500", w.Code)
	}
	w := do(t, s, "POST", "/v1/runs", body)
	if w.Code != http.StatusOK {
		t.Fatalf("retry after failure: status %d: %s", w.Code, w.Body)
	}
	if resp := decode[RunResponse](t, w); resp.Cache != "miss" {
		t.Fatalf("retry cache = %q, want miss (errors must not be cached)", resp.Cache)
	}
}

func TestMetricsExposition(t *testing.T) {
	s, _ := newStubServer(Options{})
	do(t, s, "POST", "/v1/runs", `{"scenario": "neutral-baseline"}`)
	do(t, s, "POST", "/v1/runs", `{"scenario": "neutral-baseline"}`)
	do(t, s, "GET", "/v1/scenarios", "")
	do(t, s, "GET", "/v1/scenarios/no-such", "")

	w := do(t, s, "GET", "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		`pubopt_http_requests_total{route="POST /v1/runs",code="200"} 2`,
		`pubopt_http_requests_total{route="GET /v1/scenarios",code="200"} 1`,
		`pubopt_http_requests_total{route="GET /v1/scenarios/{name}",code="404"} 1`,
		"pubopt_cache_hits_total 1",
		"pubopt_cache_misses_total 1",
		"pubopt_cache_coalesced_total 0",
		"pubopt_cache_entries 1",
		"pubopt_runs_in_flight 0",
		`pubopt_solve_duration_seconds_count{outcome="miss"} 1`,
		`pubopt_solve_duration_seconds_count{outcome="hit"} 1`,
		`pubopt_solve_duration_seconds_bucket{outcome="miss",le="+Inf"} 1`,
		`pubopt_solve_duration_seconds_count{outcome="error"} 0`,
		"pubopt_solver_solves_total",
		"pubopt_build_info",
		"pubopt_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n---\n%s", want, body)
		}
	}
}

func TestLRUBoundHoldsUnderManyDistinctRuns(t *testing.T) {
	s := New(Options{CacheEntries: 3})
	s.runScenario = func(sc *scenario.Scenario, workers int, stats *obs.Counters) ([]*sweep.Table, error) {
		return stubTables(), nil
	}
	// 8 distinct inline scenarios (differing capacity) against a 3-entry cache.
	for i := 0; i < 8; i++ {
		body := fmt.Sprintf(`{"scenario_json": {
			"name": "tiny-%d",
			"title": "tiny",
			"population": {"kind": "archetypes"},
			"providers": [{"name": "neutral", "gamma": 1}],
			"sweep": {"axis": "nu", "values": [%d]}
		}}`, i, 1000+i)
		if w := do(t, s, "POST", "/v1/runs", body); w.Code != http.StatusOK {
			t.Fatalf("run %d: status %d: %s", i, w.Code, w.Body)
		}
	}
	st := s.CacheStats()
	if st.Entries != 3 {
		t.Fatalf("cache holds %d entries, LRU bound is 3", st.Entries)
	}
	if st.Evictions != 5 {
		t.Fatalf("evictions = %d, want 5", st.Evictions)
	}
}

func TestRunSolvesRealScenarioEndToEnd(t *testing.T) {
	// No stubs: one cheap archetype scenario through the full stack.
	s := New(Options{})
	w := do(t, s, "POST", "/v1/runs", `{"scenario": "archetypes-capacity"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	resp := decode[RunResponse](t, w)
	if len(resp.Tables) == 0 || len(resp.Tables[0].Series) == 0 {
		t.Fatalf("no tables in real solve: %+v", resp.RunResult)
	}
	if n := len(resp.Tables[0].Series[0].X); n != 8 {
		t.Fatalf("series has %d points, scenario sweeps 8", n)
	}
}
