package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// benchScenario is a registered scenario whose cold solve is substantial
// (a 1000-CP monopoly pricing sweep, ~tens of milliseconds) so the
// cold-vs-warm contrast measures the cache, not HTTP overhead.
const benchScenario = "monopoly-price-sweep"

func postRun(b testing.TB, s *Server) time.Duration {
	b.Helper()
	r := httptest.NewRequest("POST", "/v1/runs", strings.NewReader(`{"scenario": "`+benchScenario+`"}`))
	w := httptest.NewRecorder()
	start := time.Now()
	s.ServeHTTP(w, r)
	elapsed := time.Since(start)
	if w.Code != http.StatusOK {
		b.Fatalf("status %d: %s", w.Code, w.Body)
	}
	return elapsed
}

// BenchmarkRunCold measures a cache-miss request: every iteration gets a
// fresh server, so the full equilibrium solve runs each time.
func BenchmarkRunCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New(Options{})
		b.StartTimer()
		postRun(b, s)
	}
}

// BenchmarkRunWarm measures a cache-hit request against a primed server:
// the solver never runs, only the lookup and response serialization.
func BenchmarkRunWarm(b *testing.B) {
	s := New(Options{})
	postRun(b, s) // prime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postRun(b, s)
	}
}

// TestWarmCacheSpeedup pins the acceptance criterion: a warm cache hit must
// answer at least 100x faster than the cold solve of the same registered
// scenario. The cold time is one real solve; the warm time is the fastest
// of several hits, which filters scheduler noise without hiding a slow path.
func TestWarmCacheSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews the wall-clock ratio")
	}
	s := New(Options{})
	cold := postRun(t, s)

	warm := time.Duration(1<<63 - 1)
	for i := 0; i < 50; i++ {
		if d := postRun(t, s); d < warm {
			warm = d
		}
	}
	if st := s.CacheStats(); st.Misses != 1 || st.Hits != 50 {
		t.Fatalf("cache stats %+v, want 1 miss and 50 hits", st)
	}
	speedup := float64(cold) / float64(warm)
	t.Logf("cold solve %v, warm hit %v, speedup %.0fx", cold, warm, speedup)
	if speedup < 100 {
		t.Errorf("warm cache hit is only %.1fx faster than a cold solve, want >= 100x", speedup)
	}
}
