package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/netecon-sim/publicoption/internal/dynamics"
)

// tinySimJSON is a cheap inline dynamics scenario (explicit two-CP
// population, a handful of ticks) used for real end-to-end simulate solves.
func tinySimJSON(name string, ticks int) string {
	return fmt.Sprintf(`{
		"name": %q, "title": "tiny sim",
		"population": {"kind": "explicit", "cps": [
			{"name": "wide", "alpha": 1, "theta_hat": 2, "v": 0.5, "phi": 1,
			 "demand": {"family": "constant"}},
			{"name": "fat", "alpha": 0.5, "theta_hat": 4, "v": 0.5, "phi": 0.5,
			 "demand": {"family": "constant"}}
		]},
		"providers": [
			{"name": "incumbent", "gamma": 0.5, "kappa": 1, "c": 0.4},
			{"name": "po", "gamma": 0.5, "public_option": true}
		],
		"sweep": {"axis": "time", "nu": 3, "metrics": ["phi", "share"]},
		"dynamics": {"ticks": %d, "inertia": 0.5}
	}`, name, ticks)
}

func simDone(t *testing.T, body string) simDoneFrame {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(body), "\n")
	var done simDoneFrame
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &done); err != nil {
		t.Fatalf("last frame is not a done frame: %q (%v)", lines[len(lines)-1], err)
	}
	return done
}

func TestSimulateStreamsTicksAndCachesPerTick(t *testing.T) {
	s := New(Options{})
	body := fmt.Sprintf(`{"scenario_json": %s}`, tinySimJSON("tiny-sim", 5))

	w := do(t, s, "POST", "/v1/simulate", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q, want application/x-ndjson", ct)
	}
	frames := ndjsonFrames(t, w.Body.String())
	if len(frames) != 7 {
		t.Fatalf("got %d frames, want header + 5 ticks + done:\n%s", len(frames), w.Body)
	}
	var hdr simHeaderFrame
	if err := json.Unmarshal(w.Body.Bytes()[:strings.Index(w.Body.String(), "\n")], &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Sim.Name != "tiny-sim" || hdr.Sim.Ticks != 5 || len(hdr.Sim.Providers) != 2 {
		t.Fatalf("header %+v", hdr.Sim)
	}
	for i := 1; i <= 5; i++ {
		if !frameHas(frames[i], "tick") {
			t.Fatalf("frame %d is not a tick frame: %v", i, frames[i])
		}
		var rec dynamics.TickRecord
		if err := json.Unmarshal(frames[i]["tick"], &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Tick != i-1 {
			t.Fatalf("frame %d carries tick %d, want %d (in order)", i, rec.Tick, i-1)
		}
		var cacheStatus string
		json.Unmarshal(frames[i]["cache"], &cacheStatus)
		if cacheStatus != "miss" {
			t.Fatalf("cold tick %d cache=%q, want miss", i-1, cacheStatus)
		}
	}
	if done := simDone(t, w.Body.String()); !done.Done || done.Ticks != 5 || done.Solved != 5 || done.CacheHits != 0 {
		t.Fatalf("cold done frame %+v", done)
	}

	// The identical warm request must solve zero ticks.
	w = do(t, s, "POST", "/v1/simulate", body)
	frames = ndjsonFrames(t, w.Body.String())
	for i := 1; i <= 5; i++ {
		var cacheStatus string
		json.Unmarshal(frames[i]["cache"], &cacheStatus)
		if cacheStatus != "hit" {
			t.Fatalf("warm tick %d cache=%q, want hit", i-1, cacheStatus)
		}
	}
	if done := simDone(t, w.Body.String()); done.Solved != 0 || done.CacheHits != 5 {
		t.Fatalf("warm done frame %+v", done)
	}

	// The address is the canonical spec bytes (syntactic, per
	// Scenario.CanonicalJSON): editing the spec re-solves every tick
	// rather than aliasing into the old trajectory's entries.
	edited := strings.Replace(body, `"inertia": 0.5`, `"inertia": 0.6`, 1)
	if done := simDone(t, do(t, s, "POST", "/v1/simulate", edited).Body.String()); done.Solved != 5 || done.CacheHits != 0 {
		t.Fatalf("edited spec reused stale cache entries: %+v", done)
	}

	// The per-tick counter saw exactly the two cold runs' solves (5 + 5);
	// the warm replay added nothing.
	mw := do(t, s, "GET", "/metrics", "")
	if !strings.Contains(mw.Body.String(), "pubopt_sim_ticks_total 10") {
		t.Fatalf("pubopt_sim_ticks_total missing or wrong:\n%s", mw.Body)
	}
}

func TestSimulateClientDisconnectBanksPrefix(t *testing.T) {
	s := New(Options{})
	body := fmt.Sprintf(`{"scenario_json": %s}`, tinySimJSON("tiny-sim-dc", 8))

	// The "client" goes away after the header plus two tick frames.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &cancelingWriter{after: 3, cancel: cancel}
	r := httptest.NewRequest("POST", "/v1/simulate", strings.NewReader(body)).WithContext(ctx)
	s.ServeHTTP(w, r)
	out := w.buf.String()
	if strings.Contains(out, `"done":true`) {
		t.Fatalf("stream completed despite disconnect:\n%s", out)
	}
	frames := ndjsonFrames(t, out)
	if !frameHas(frames[0], "sim") {
		t.Fatalf("missing header frame before disconnect: %v", frames[0])
	}

	// The ticks solved before the disconnect were banked: a fresh request
	// resumes from the cached prefix instead of starting over.
	w2 := do(t, s, "POST", "/v1/simulate", body)
	done := simDone(t, w2.Body.String())
	if !done.Done || done.Ticks != 8 {
		t.Fatalf("post-disconnect done frame %+v", done)
	}
	if done.CacheHits < 2 {
		t.Fatalf("prefix not reused after disconnect (hits=%d)", done.CacheHits)
	}
	if done.Solved+done.CacheHits != 8 {
		t.Fatalf("solved %d + cached %d != 8 ticks", done.Solved, done.CacheHits)
	}
}

func TestSimulateValidation(t *testing.T) {
	s := New(Options{})
	cases := []struct {
		name string
		body string
		code int
	}{
		{"empty body", "", http.StatusBadRequest},
		{"neither mode", `{}`, http.StatusBadRequest},
		{"both modes", fmt.Sprintf(`{"scenario": "dyn-convergence", "scenario_json": %s}`, tinySimJSON("x", 2)), http.StatusBadRequest},
		{"unknown name", `{"scenario": "no-such-scenario"}`, http.StatusNotFound},
		{"static scenario by name", `{"scenario": "neutral-baseline"}`, http.StatusBadRequest},
		{"grid scenario by name", `{"scenario": "po-sizing-gamma-nu"}`, http.StatusBadRequest},
		{"invalid inline", `{"scenario_json": {"name": "bad name!"}}`, http.StatusBadRequest},
		{"static inline", `{"scenario_json": {"name": "x", "title": "x", "population": {"kind": "archetypes"}, "providers": [{"name": "a", "gamma": 1}], "sweep": {"axis": "nu", "values": [1000]}}}`, http.StatusBadRequest},
		{"unknown field", `{"scenario": "dyn-convergence", "bogus": 1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(t, s, "POST", "/v1/simulate", tc.body)
			if w.Code != tc.code {
				t.Fatalf("status %d, want %d (body %s)", w.Code, tc.code, w.Body)
			}
		})
	}
}

// TestStaticEndpointsRejectDynamics pins the dispatch boundary from the
// other side: every static solve surface refuses a dynamics scenario and
// points at /v1/simulate.
func TestStaticEndpointsRejectDynamics(t *testing.T) {
	s, calls := newStubServer(Options{})

	w := do(t, s, "POST", "/v1/runs", `{"scenario": "dyn-convergence"}`)
	if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), "/v1/simulate") {
		t.Fatalf("/v1/runs: status %d body %s", w.Code, w.Body)
	}

	w = do(t, s, "POST", "/v1/batch", `{"grid": "dyn-convergence"}`)
	if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), "/v1/simulate") {
		t.Fatalf("/v1/batch grid mode: status %d body %s", w.Code, w.Body)
	}

	w = do(t, s, "POST", "/v1/batch", `{"scenarios": ["dyn-convergence"]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/batch list mode: status %d", w.Code)
	}
	frames := ndjsonFrames(t, w.Body.String())
	var msg string
	json.Unmarshal(frames[0]["error"], &msg)
	if !strings.Contains(msg, "simulate") {
		t.Fatalf("list-mode error %q does not point at /v1/simulate", msg)
	}
	if calls.Load() != 0 {
		t.Fatalf("a dynamics scenario reached the static runner %d times", calls.Load())
	}
}

// TestScenarioListMarksDynamic checks GET /v1/scenarios advertises which
// entries need the simulate endpoint.
func TestScenarioListMarksDynamic(t *testing.T) {
	s := New(Options{})
	w := do(t, s, "GET", "/v1/scenarios", "")
	infos := decode[[]ScenarioInfo](t, w)
	byName := make(map[string]ScenarioInfo, len(infos))
	for _, in := range infos {
		byName[in.Name] = in
	}
	if in, ok := byName["dyn-convergence"]; !ok || !in.Dynamic {
		t.Fatalf("dyn-convergence not marked dynamic: %+v", in)
	}
	if in := byName["neutral-baseline"]; in.Dynamic {
		t.Fatalf("neutral-baseline wrongly marked dynamic: %+v", in)
	}
}
