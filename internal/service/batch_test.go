package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// tinyGridJSON is a cheap inline grid scenario (explicit two-CP population,
// γ×ν cells) used for real end-to-end batch solves. rows picks the ν values
// so tests can resize the grid between requests.
func tinyGridJSON(name string, rows string) string {
	return fmt.Sprintf(`{
		"name": %q, "title": "tiny grid",
		"population": {"kind": "explicit", "cps": [
			{"name": "wide", "alpha": 1, "theta_hat": 2, "v": 0.5, "phi": 1,
			 "demand": {"family": "constant"}},
			{"name": "fat", "alpha": 0.5, "theta_hat": 4, "v": 0.5, "phi": 0.5,
			 "demand": {"family": "constant"}}
		]},
		"providers": [
			{"name": "incumbent", "gamma": 0.5, "kappa": 1, "c": 0.4},
			{"name": "po", "gamma": 0.5, "public_option": true}
		],
		"sweep": {"axis": "poshare", "lo": 0.2, "hi": 0.4, "points": 3,
		          "metrics": ["phi"],
		          "grid": {"axis": "nu", "values": [%s]}}
	}`, name, rows)
}

// ndjsonFrames splits an NDJSON body into one generic map per line.
func ndjsonFrames(t *testing.T, body string) []map[string]json.RawMessage {
	t.Helper()
	var frames []map[string]json.RawMessage
	for i, line := range strings.Split(strings.TrimSpace(body), "\n") {
		var m map[string]json.RawMessage
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("frame %d is not JSON: %q (%v)", i, line, err)
		}
		frames = append(frames, m)
	}
	return frames
}

func frameHas(f map[string]json.RawMessage, key string) bool {
	_, ok := f[key]
	return ok
}

func TestBatchScenarioListStreamsInOrder(t *testing.T) {
	s, calls := newStubServer(Options{})
	body := `{"scenarios": [
		"neutral-baseline",
		{"name": "inline-tiny", "title": "t",
		 "population": {"kind": "archetypes"},
		 "providers": [{"name": "a", "gamma": 1}],
		 "sweep": {"axis": "nu", "values": [1000]}},
		"no-such-scenario"
	]}`
	w := do(t, s, "POST", "/v1/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q, want application/x-ndjson", ct)
	}
	frames := ndjsonFrames(t, w.Body.String())
	if len(frames) != 4 {
		t.Fatalf("got %d frames, want 3 results + 1 done:\n%s", len(frames), w.Body)
	}
	for i := 0; i < 2; i++ {
		var idx int
		json.Unmarshal(frames[i]["index"], &idx)
		if idx != i {
			t.Fatalf("frame %d carries index %d", i, idx)
		}
		if frameHas(frames[i], "error") {
			t.Fatalf("frame %d is an error: %s", i, frames[i]["error"])
		}
	}
	if !frameHas(frames[2], "error") {
		t.Fatalf("unknown scenario did not produce an error frame: %v", frames[2])
	}
	var done listDoneFrame
	lastLine := strings.Split(strings.TrimSpace(w.Body.String()), "\n")[3]
	if err := json.Unmarshal([]byte(lastLine), &done); err != nil {
		t.Fatal(err)
	}
	if !done.Done || done.Results != 2 || done.Errors != 1 {
		t.Fatalf("done frame %+v, want results=2 errors=1", done)
	}
	if calls.Load() != 2 {
		t.Fatalf("runner ran %d times, want 2", calls.Load())
	}

	// The list mode shares the run cache: replaying the batch is all hits.
	w = do(t, s, "POST", "/v1/batch", body)
	frames = ndjsonFrames(t, w.Body.String())
	for i := 0; i < 2; i++ {
		var cacheStatus string
		json.Unmarshal(frames[i]["cache"], &cacheStatus)
		if cacheStatus != "hit" {
			t.Fatalf("replayed frame %d cache = %q, want hit", i, cacheStatus)
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("replay re-ran the solver (%d calls)", calls.Load())
	}
}

func TestBatchGridStreamsCellsAndCachesPerCell(t *testing.T) {
	s := New(Options{})
	body := fmt.Sprintf(`{"grid_json": %s}`, tinyGridJSON("tiny-grid", "1, 2"))

	w := do(t, s, "POST", "/v1/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	frames := ndjsonFrames(t, w.Body.String())
	// 1 header + 6 cells + 1 done.
	if len(frames) != 8 {
		t.Fatalf("got %d frames, want 8:\n%s", len(frames), w.Body)
	}
	if !frameHas(frames[0], "grid") {
		t.Fatalf("first frame is not the grid header: %v", frames[0])
	}
	var hdr gridInfo
	json.Unmarshal(frames[0]["grid"], &hdr)
	if hdr.Cells != 6 || len(hdr.Xs) != 3 || len(hdr.Ys) != 2 || hdr.XAxis != "poshare" || hdr.YAxis != "nu" {
		t.Fatalf("header %+v", hdr)
	}
	if len(hdr.Layers) != 1 || hdr.Layers[0] != "phi" {
		t.Fatalf("layers %v, want [phi]", hdr.Layers)
	}
	seen := make(map[[2]int]bool)
	for _, f := range frames[1:7] {
		if !frameHas(f, "cell") {
			t.Fatalf("expected cell frame, got %v", f)
		}
		var cf cellFrame
		b, _ := json.Marshal(f)
		json.Unmarshal(b, &cf)
		if cf.Cache != "miss" {
			t.Fatalf("cold cell (%d,%d) cache = %q, want miss", cf.Cell.Row, cf.Cell.Col, cf.Cache)
		}
		if _, ok := cf.Cell.Values["phi"]; !ok {
			t.Fatalf("cell (%d,%d) has no phi value: %+v", cf.Cell.Row, cf.Cell.Col, cf.Cell)
		}
		seen[[2]int{cf.Cell.Row, cf.Cell.Col}] = true
	}
	if len(seen) != 6 {
		t.Fatalf("saw %d distinct cells, want 6", len(seen))
	}
	var done gridDoneFrame
	b, _ := json.Marshal(frames[7])
	json.Unmarshal(b, &done)
	if !done.Done || done.Cells != 6 || done.Solved != 6 || done.CacheHits != 0 {
		t.Fatalf("cold done frame %+v", done)
	}

	// Warm replay: zero solved, all hits — the CI acceptance condition.
	w = do(t, s, "POST", "/v1/batch", body)
	frames = ndjsonFrames(t, w.Body.String())
	b, _ = json.Marshal(frames[len(frames)-1])
	done = gridDoneFrame{}
	json.Unmarshal(b, &done)
	if done.Solved != 0 || done.CacheHits != 6 {
		t.Fatalf("warm done frame %+v, want solved=0 cache_hits=6", done)
	}

	// Resize the grid (one new ν row, rename the scenario): only the new
	// row's cells solve — per-cell addressing ignores bounds and names.
	grown := fmt.Sprintf(`{"grid_json": %s}`, tinyGridJSON("tiny-grid-grown", "1, 1.5, 2"))
	w = do(t, s, "POST", "/v1/batch", grown)
	frames = ndjsonFrames(t, w.Body.String())
	b, _ = json.Marshal(frames[len(frames)-1])
	done = gridDoneFrame{}
	json.Unmarshal(b, &done)
	if done.Cells != 9 || done.Solved != 3 || done.CacheHits != 6 {
		t.Fatalf("resized done frame %+v, want cells=9 solved=3 cache_hits=6", done)
	}
}

func TestBatchValidation(t *testing.T) {
	s, _ := newStubServer(Options{})
	cases := []struct {
		name string
		body string
		code int
	}{
		{"empty body", "", http.StatusBadRequest},
		{"neither mode", `{}`, http.StatusBadRequest},
		{"both modes", `{"scenarios": ["neutral-baseline"], "grid": "po-sizing-gamma-nu"}`, http.StatusBadRequest},
		{"grid and grid_json", `{"grid": "po-sizing-gamma-nu", "grid_json": {"name": "x"}}`, http.StatusBadRequest},
		{"unknown grid name", `{"grid": "no-such-grid"}`, http.StatusNotFound},
		{"1-D scenario as grid", `{"grid": "neutral-baseline"}`, http.StatusBadRequest},
		{"invalid inline grid", `{"grid_json": {"name": "bad name!"}}`, http.StatusBadRequest},
		{"unknown field", `{"grid": "po-sizing-gamma-nu", "bogus": 1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(t, s, "POST", "/v1/batch", tc.body)
			if w.Code != tc.code {
				t.Fatalf("status %d, want %d (body %s)", w.Code, tc.code, w.Body)
			}
		})
	}
	// Oversized scenario lists are rejected up front, not half-streamed.
	var list []string
	for i := 0; i <= maxBatchScenarios; i++ {
		list = append(list, "neutral-baseline")
	}
	b, _ := json.Marshal(map[string]any{"scenarios": list})
	if w := do(t, s, "POST", "/v1/batch", string(b)); w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized list: status %d, want 413", w.Code)
	}
}

func TestBatchGridScenarioInListModeIsErrorFrame(t *testing.T) {
	s := New(Options{})
	w := do(t, s, "POST", "/v1/batch", `{"scenarios": ["po-sizing-gamma-nu"]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	frames := ndjsonFrames(t, w.Body.String())
	if !frameHas(frames[0], "error") {
		t.Fatalf("grid scenario in list mode did not error: %v", frames[0])
	}
	var msg string
	json.Unmarshal(frames[0]["error"], &msg)
	if !strings.Contains(msg, "grid") {
		t.Fatalf("error %q does not point at the grid field", msg)
	}
}

// cancelingWriter is a ResponseWriter that cancels the request context
// after a fixed number of newline-terminated frames has been written —
// a deterministic stand-in for a client that disconnects mid-stream.
type cancelingWriter struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	header http.Header
	frames int
	after  int
	cancel context.CancelFunc
}

func (w *cancelingWriter) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}

func (w *cancelingWriter) WriteHeader(int) {}

func (w *cancelingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	w.frames += bytes.Count(p, []byte("\n"))
	if w.frames >= w.after && w.cancel != nil {
		w.cancel()
		w.cancel = nil
	}
	return len(p), nil
}

func TestBatchGridClientDisconnectStopsStream(t *testing.T) {
	s := New(Options{})
	// 15 cells; the "client" goes away after the header plus two cells.
	body := fmt.Sprintf(`{"grid_json": %s}`, tinyGridJSON("tiny-grid", "1, 1.5, 2, 2.5, 3"))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &cancelingWriter{after: 3, cancel: cancel}
	r := httptest.NewRequest("POST", "/v1/batch", strings.NewReader(body)).WithContext(ctx)
	s.ServeHTTP(w, r) // must return rather than stream all 15 cells

	out := w.buf.String()
	if strings.Contains(out, `"done":true`) {
		t.Fatalf("stream completed despite disconnect:\n%s", out)
	}
	frames := ndjsonFrames(t, out)
	if !frameHas(frames[0], "grid") {
		t.Fatalf("missing header frame before disconnect: %v", frames[0])
	}

	// The server stays healthy and the partial work was banked: a fresh
	// request completes the grid with at least the streamed cells cached.
	w2 := do(t, s, "POST", "/v1/batch", body)
	frames2 := ndjsonFrames(t, w2.Body.String())
	var done gridDoneFrame
	b, _ := json.Marshal(frames2[len(frames2)-1])
	json.Unmarshal(b, &done)
	if !done.Done || done.Cells != 15 {
		t.Fatalf("post-disconnect run done frame %+v", done)
	}
	if done.CacheHits < 2 {
		t.Fatalf("cells streamed before the disconnect were not cached (hits=%d)", done.CacheHits)
	}
	if done.Solved+done.CacheHits != 15 {
		t.Fatalf("solved %d + cached %d != 15 cells", done.Solved, done.CacheHits)
	}
}

func TestBatchMetricsCountCells(t *testing.T) {
	s := New(Options{})
	body := fmt.Sprintf(`{"grid_json": %s}`, tinyGridJSON("tiny-grid", "1, 2"))
	do(t, s, "POST", "/v1/batch", body)
	do(t, s, "POST", "/v1/batch", body)
	st := s.CacheStats()
	// 12 probes total: 6 cold misses then 6 warm hits.
	if st.Hits != 6 || st.Misses != 6 {
		t.Fatalf("cache stats %+v, want 6 hits / 6 misses", st)
	}
	w := do(t, s, "GET", "/metrics", "")
	if !strings.Contains(w.Body.String(), "pubopt_cache_hits_total 6") {
		t.Fatal("cell hits missing from /metrics")
	}
}

func TestBatchGridCacheHitsReanchorToRequestGeometry(t *testing.T) {
	s := New(Options{})
	// Cold solve: ν rows [1, 2], so the ν=2 cells are cached at row 1.
	cold := fmt.Sprintf(`{"grid_json": %s}`, tinyGridJSON("tiny-grid", "1, 2"))
	do(t, s, "POST", "/v1/batch", cold)

	// A single-row ν=[2] grid hits every cached ν=2 cell, but in this
	// request's geometry they live at row 0 — the stored row 1 must not
	// leak into the stream (clients place cells by row/col).
	narrow := fmt.Sprintf(`{"grid_json": %s}`, tinyGridJSON("tiny-grid-narrow", "2"))
	w := do(t, s, "POST", "/v1/batch", narrow)
	frames := ndjsonFrames(t, w.Body.String())
	if len(frames) != 5 { // header + 3 cells + done
		t.Fatalf("got %d frames, want 5:\n%s", len(frames), w.Body)
	}
	cols := make(map[int]bool)
	for _, f := range frames[1:4] {
		var cf cellFrame
		b, _ := json.Marshal(f)
		json.Unmarshal(b, &cf)
		if cf.Cache != "hit" {
			t.Fatalf("cell (%d,%d) cache = %q, want hit", cf.Cell.Row, cf.Cell.Col, cf.Cache)
		}
		if cf.Cell.Row != 0 {
			t.Fatalf("cache hit streamed with stale row %d, want 0", cf.Cell.Row)
		}
		if cf.Cell.Y != 2 {
			t.Fatalf("cell y = %g, want 2", cf.Cell.Y)
		}
		cols[cf.Cell.Col] = true
	}
	if len(cols) != 3 {
		t.Fatalf("saw columns %v, want 3 distinct", cols)
	}
}
