package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// tinyRefinedGridJSON is tinyGridJSON with a third ν row and a refine
// block, for real end-to-end refinement solves.
func tinyRefinedGridJSON(name, refineBlock string) string {
	return fmt.Sprintf(`{
		"name": %q, "title": "tiny refined grid",
		"population": {"kind": "explicit", "cps": [
			{"name": "wide", "alpha": 1, "theta_hat": 2, "v": 0.5, "phi": 1,
			 "demand": {"family": "constant"}},
			{"name": "fat", "alpha": 0.5, "theta_hat": 4, "v": 0.5, "phi": 0.5,
			 "demand": {"family": "constant"}}
		]},
		"providers": [
			{"name": "incumbent", "gamma": 0.5, "kappa": 1, "c": 0.4},
			{"name": "po", "gamma": 0.5, "public_option": true}
		],
		"sweep": {"axis": "poshare", "lo": 0.2, "hi": 0.4, "points": 3,
		          "metrics": ["phi", "share"],
		          "grid": {"axis": "nu", "values": [0.5, 1, 2], "refine": %s}}
	}`, name, refineBlock)
}

// metricValue scrapes /metrics and returns the sample whose line starts
// with prefix (metric name plus any label block), or fails.
func metricValue(t *testing.T, s *Server, prefix string) float64 {
	t.Helper()
	w := do(t, s, "GET", "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", w.Code)
	}
	for _, line := range strings.Split(w.Body.String(), "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(line, prefix))
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			t.Fatalf("parsing %q value %q: %v", prefix, rest, err)
		}
		return v
	}
	t.Fatalf("no metric line starts with %q", prefix)
	return 0
}

func TestQueryColdBuildsWarmServesSolveFree(t *testing.T) {
	s := New(Options{})
	gridJSON := tinyRefinedGridJSON("query-tiny",
		`{"tolerance": 0.02, "max_depth": 3, "probes": 8}`)
	body := fmt.Sprintf(`{"grid_json": %s, "x": 0.3, "y": 1.5}`, gridJSON)

	// Cold: the first query builds the surrogate (a refinement run).
	w := do(t, s, "POST", "/v1/query", body)
	if w.Code != http.StatusOK {
		t.Fatalf("cold query status %d: %s", w.Code, w.Body)
	}
	cold := decode[QueryResponse](t, w)
	if cold.Source != "surrogate" || !cold.Verified {
		t.Fatalf("cold query source=%q verified=%t, want a verified surrogate answer", cold.Source, cold.Verified)
	}
	if cold.Cache != "miss" {
		t.Fatalf("cold query cache=%q, want miss", cold.Cache)
	}
	if cold.MaxError > cold.Tolerance {
		t.Fatalf("verified surrogate reports max_error %g > tolerance %g", cold.MaxError, cold.Tolerance)
	}
	if _, ok := cold.Values["phi"]; !ok {
		t.Fatalf("query values missing phi layer: %v", cold.Values)
	}
	if _, ok := cold.Values["share/po"]; !ok {
		t.Fatalf("query values missing share/po layer: %v", cold.Values)
	}

	solvesAfterCold := metricValue(t, s, "pubopt_solver_solves_total")
	if solvesAfterCold == 0 {
		t.Fatal("cold surrogate build recorded no kernel solves")
	}
	if metricValue(t, s, `pubopt_refine_points_solved_total`) == 0 {
		t.Fatal("refinement counters not published")
	}

	// Warm: different points answer from the cached surrogate with ZERO
	// kernel solves — the headline /v1/query contract.
	for _, pt := range []string{`"x": 0.25, "y": 0.7`, `"x": 0.37, "y": 1.9`} {
		w = do(t, s, "POST", "/v1/query", fmt.Sprintf(`{"grid_json": %s, %s}`, gridJSON, pt))
		if w.Code != http.StatusOK {
			t.Fatalf("warm query status %d: %s", w.Code, w.Body)
		}
		warm := decode[QueryResponse](t, w)
		if warm.Source != "surrogate" || warm.Cache != "hit" {
			t.Fatalf("warm query source=%q cache=%q, want surrogate/hit", warm.Source, warm.Cache)
		}
	}
	if got := metricValue(t, s, "pubopt_solver_solves_total"); got != solvesAfterCold {
		t.Fatalf("warm queries solved: pubopt_solver_solves_total %g -> %g", solvesAfterCold, got)
	}
	if got := metricValue(t, s, `pubopt_query_total{source="surrogate"}`); got != 3 {
		t.Fatalf("pubopt_query_total{source=surrogate} = %g, want 3", got)
	}

	// Out-of-domain points are a client error, not a clamp.
	w = do(t, s, "POST", "/v1/query", fmt.Sprintf(`{"grid_json": %s, "x": 9.5, "y": 1.5}`, gridJSON))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range query status %d: %s", w.Code, w.Body)
	}
}

func TestQueryFallsBackToSolveWhenUnverified(t *testing.T) {
	s := New(Options{})
	// probes: -1 disables verification, so the surrogate's bound never
	// holds and every answer must come from a (cached) kernel solve.
	gridJSON := tinyRefinedGridJSON("query-unverified",
		`{"tolerance": 0.02, "max_depth": 2, "probes": -1}`)
	body := fmt.Sprintf(`{"grid_json": %s, "x": 0.31, "y": 1.4}`, gridJSON)

	w := do(t, s, "POST", "/v1/query", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	first := decode[QueryResponse](t, w)
	if first.Source != "solve" || first.Verified {
		t.Fatalf("unverified surrogate answered source=%q verified=%t, want a solve fallback", first.Source, first.Verified)
	}
	if first.Cache != "miss" {
		t.Fatalf("first fallback cache=%q, want miss", first.Cache)
	}

	// The same point again: the fallback cell is content-addressed, so the
	// repeat is a cache hit, not a re-solve.
	solves := metricValue(t, s, "pubopt_solver_solves_total")
	w = do(t, s, "POST", "/v1/query", body)
	again := decode[QueryResponse](t, w)
	if again.Source != "solve" || again.Cache != "hit" {
		t.Fatalf("repeat fallback source=%q cache=%q, want solve/hit", again.Source, again.Cache)
	}
	if got := metricValue(t, s, "pubopt_solver_solves_total"); got != solves {
		t.Fatalf("repeat fallback re-solved (%g -> %g)", solves, got)
	}
	if got := metricValue(t, s, `pubopt_query_total{source="solve"}`); got != 2 {
		t.Fatalf("pubopt_query_total{source=solve} = %g, want 2", got)
	}
	if first.Values["phi"] != again.Values["phi"] {
		t.Fatalf("cached fallback changed phi: %g vs %g", first.Values["phi"], again.Values["phi"])
	}
}

func TestQueryValidation(t *testing.T) {
	s := New(Options{})
	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantErr                  string
	}{
		{"GET missing x", "GET", "/v1/query?grid=po-sizing-gamma-nu&y=1", "", http.StatusBadRequest, "missing required parameter"},
		{"GET bad y", "GET", "/v1/query?grid=po-sizing-gamma-nu&x=1&y=banana", "", http.StatusBadRequest, `parameter "y"`},
		{"GET no grid", "GET", "/v1/query?x=1&y=1", "", http.StatusBadRequest, "exactly one"},
		{"POST unknown grid", "POST", "/v1/query", `{"grid": "no-such", "x": 1, "y": 1}`, http.StatusNotFound, "unknown scenario"},
		{"POST both modes", "POST", "/v1/query", `{"grid": "a", "grid_json": {"name": "b"}, "x": 1, "y": 1}`, http.StatusBadRequest, "exactly one"},
		{"POST non-grid scenario", "POST", "/v1/query", `{"grid": "neutral-baseline", "x": 1, "y": 1}`, http.StatusBadRequest, "1-D sweep"},
		{"POST unknown field", "POST", "/v1/query", `{"grid": "a", "x": 1, "y": 1, "zz": 2}`, http.StatusBadRequest, "unknown field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(t, s, tc.method, tc.path, tc.body)
			if w.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d: %s", w.Code, tc.wantStatus, w.Body)
			}
			var e errorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(e.Error, tc.wantErr) {
				t.Fatalf("error %q does not mention %q", e.Error, tc.wantErr)
			}
		})
	}
}

func TestBatchRefineStreamsPointsLeavesAndWarmsQuery(t *testing.T) {
	s := New(Options{})
	gridJSON := tinyRefinedGridJSON("batch-refined",
		`{"tolerance": 0.02, "max_depth": 3, "probes": 8}`)
	body := fmt.Sprintf(`{"grid_json": %s, "refine": true}`, gridJSON)

	w := do(t, s, "POST", "/v1/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	frames := ndjsonFrames(t, w.Body.String())
	var header gridHeaderFrame
	if err := json.Unmarshal([]byte(strings.Split(w.Body.String(), "\n")[0]), &header); err != nil {
		t.Fatal(err)
	}
	if !header.Grid.Refine || header.Grid.Cells != 9 || len(header.Grid.Xs) != 3 {
		t.Fatalf("header %+v, want refine=true over the 3×3 seed grid", header.Grid)
	}
	points, leaves := 0, 0
	for _, f := range frames[1 : len(frames)-1] {
		switch {
		case frameHas(f, "point"):
			points++
		case frameHas(f, "leaf"):
			leaves++
		default:
			t.Fatalf("unexpected mid-stream frame: %v", f)
		}
	}
	var done refineDoneFrame
	last := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if err := json.Unmarshal([]byte(last[len(last)-1]), &done); err != nil {
		t.Fatal(err)
	}
	if !done.Done || !done.Verified {
		t.Fatalf("done frame %+v, want done and verified", done)
	}
	// Point frames carry lattice points (probes verify silently); on a
	// fresh server nothing is reused, so frames == lattice solves.
	if done.Refine.PointsReused != 0 {
		t.Fatalf("fresh server reused %d points", done.Refine.PointsReused)
	}
	if uint64(points) != done.Refine.PointsSolved {
		t.Fatalf("streamed %d point frames, stats say %d lattice solves",
			points, done.Refine.PointsSolved)
	}
	if uint64(leaves) != done.Refine.Leaves() {
		t.Fatalf("streamed %d leaf frames, stats say %d leaves", leaves, done.Refine.Leaves())
	}
	if done.FineXs != 17 || done.FineYs != 17 {
		t.Fatalf("fine dims %d×%d, want 17×17 (3 knots, depth 3)", done.FineXs, done.FineYs)
	}

	// The refined batch cached its surrogate: a follow-up query is warm
	// and solve-free.
	solves := metricValue(t, s, "pubopt_solver_solves_total")
	qw := do(t, s, "POST", "/v1/query", fmt.Sprintf(`{"grid_json": %s, "x": 0.3, "y": 1.1}`, gridJSON))
	if qw.Code != http.StatusOK {
		t.Fatalf("query after refined batch: %d %s", qw.Code, qw.Body)
	}
	q := decode[QueryResponse](t, qw)
	if q.Source != "surrogate" || q.Cache != "hit" {
		t.Fatalf("query after refined batch source=%q cache=%q, want surrogate/hit", q.Source, q.Cache)
	}
	if got := metricValue(t, s, "pubopt_solver_solves_total"); got != solves {
		t.Fatalf("query after refined batch solved (%g -> %g)", solves, got)
	}

	// Replaying the refined batch hits the per-cell cache for every point:
	// zero new kernel work.
	w = do(t, s, "POST", "/v1/batch", body)
	frames = ndjsonFrames(t, w.Body.String())
	var done2 refineDoneFrame
	last = strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if err := json.Unmarshal([]byte(last[len(last)-1]), &done2); err != nil {
		t.Fatal(err)
	}
	if done2.Refine.PointsSolved != 0 || done2.Refine.ProbeSolves != 0 {
		t.Fatalf("warm refined replay solved %d points + %d probes, want 0",
			done2.Refine.PointsSolved, done2.Refine.ProbeSolves)
	}
	for _, f := range ndjsonFrames(t, w.Body.String()) {
		if !frameHas(f, "point") {
			continue
		}
		var cacheStatus string
		json.Unmarshal(f["cache"], &cacheStatus)
		if cacheStatus != "hit" {
			t.Fatalf("warm replay streamed a non-hit point: %v", f)
		}
	}
	_ = frames
}

func TestBatchRefineValidation(t *testing.T) {
	s, _ := newStubServer(Options{})
	w := do(t, s, "POST", "/v1/batch", `{"scenarios": ["neutral-baseline"], "refine": true}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("refine in list mode: status %d, want 400", w.Code)
	}
	var e errorResponse
	json.Unmarshal(w.Body.Bytes(), &e)
	if !strings.Contains(e.Error, "grid mode") {
		t.Fatalf("error %q does not mention grid mode", e.Error)
	}
}
