package service

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// Prometheus text-exposition contract tests: a minimal parser for the
// format we emit, then structural invariants any scraper relies on —
// well-formedness, TYPE declarations, counter monotonicity across scrapes,
// and histogram bucket/sum/count consistency. These hold for every metric,
// current and future, because they iterate what the endpoint serves rather
// than a fixed name list.

// promSample is one parsed sample line.
type promSample struct {
	name   string            // metric name without the label block
	labels map[string]string // parsed label block, empty map if none
	value  float64
}

// promExposition is a parsed /metrics body.
type promExposition struct {
	types   map[string]string // metric family name -> declared TYPE
	samples []promSample
}

// parseExposition parses the subset of the Prometheus text format the
// service emits: # HELP / # TYPE comments and sample lines with optional
// label blocks. It fails the test on anything malformed — that is the
// point.
func parseExposition(t *testing.T, body string) *promExposition {
	t.Helper()
	exp := &promExposition{types: make(map[string]string)}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		lineNo := ln + 1
		if line == "" {
			t.Fatalf("line %d: empty line inside exposition", lineNo)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("line %d: malformed TYPE comment %q", lineNo, line)
			}
			name, typ := fields[2], fields[3]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown metric type %q", lineNo, typ)
			}
			if prev, dup := exp.types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s (%s then %s)", lineNo, name, prev, typ)
			}
			exp.types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			if len(strings.Fields(line)) < 4 {
				t.Fatalf("line %d: HELP comment without text: %q", lineNo, line)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", lineNo, line)
		}
		sample := parseSampleLine(t, lineNo, line)
		exp.samples = append(exp.samples, sample)
	}
	return exp
}

func parseSampleLine(t *testing.T, lineNo int, line string) promSample {
	t.Helper()
	sp := strings.LastIndex(line, " ")
	if sp < 0 {
		t.Fatalf("line %d: no value separator in %q", lineNo, line)
	}
	series, valStr := line[:sp], line[sp+1:]
	value, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		t.Fatalf("line %d: unparseable value %q: %v", lineNo, valStr, err)
	}
	s := promSample{labels: make(map[string]string)}
	if open := strings.Index(series, "{"); open >= 0 {
		if !strings.HasSuffix(series, "}") {
			t.Fatalf("line %d: unterminated label block in %q", lineNo, series)
		}
		s.name = series[:open]
		block := series[open+1 : len(series)-1]
		for _, pair := range splitLabels(t, lineNo, block) {
			eq := strings.Index(pair, "=")
			if eq < 0 {
				t.Fatalf("line %d: label without '=' in %q", lineNo, pair)
			}
			key, quoted := pair[:eq], pair[eq+1:]
			val, err := strconv.Unquote(quoted)
			if err != nil {
				t.Fatalf("line %d: label %s has unquotable value %q: %v", lineNo, key, quoted, err)
			}
			if _, dup := s.labels[key]; dup {
				t.Fatalf("line %d: duplicate label %q", lineNo, key)
			}
			s.labels[key] = val
		}
	} else {
		s.name = series
	}
	if s.name == "" || strings.ContainsAny(s.name, "{} \"") {
		t.Fatalf("line %d: invalid metric name %q", lineNo, s.name)
	}
	s.value = value
	return s
}

// splitLabels splits a label block on commas outside quotes.
func splitLabels(t *testing.T, lineNo int, block string) []string {
	t.Helper()
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(block); i++ {
		switch block[i] {
		case '"':
			if i == 0 || block[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, block[start:i])
				start = i + 1
			}
		}
	}
	if depth {
		t.Fatalf("line %d: unbalanced quotes in label block %q", lineNo, block)
	}
	out = append(out, block[start:])
	return out
}

// family strips the histogram sample suffix to find the declaring family.
func family(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suffix) {
			return strings.TrimSuffix(name, suffix)
		}
	}
	return name
}

// scrape fetches and parses /metrics.
func scrape(t *testing.T, s *Server) *promExposition {
	t.Helper()
	w := do(t, s, "GET", "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", w.Code)
	}
	return parseExposition(t, w.Body.String())
}

// exercise drives enough traffic to touch every metric family: misses,
// hits, an error, a batch list, and a 404.
func exercise(t *testing.T, s *Server) {
	t.Helper()
	do(t, s, "POST", "/v1/runs", `{"scenario": "neutral-baseline"}`)
	do(t, s, "POST", "/v1/runs", `{"scenario": "neutral-baseline"}`)
	do(t, s, "POST", "/v1/runs", `{"scenario": "no-such-scenario"}`)
	do(t, s, "POST", "/v1/batch", `{"scenarios": ["neutral-baseline", "archetypes-capacity"]}`)
	do(t, s, "GET", "/v1/scenarios/no-such", "")
}

// TestPromExpositionWellFormed: every line parses, every sample's family
// has a TYPE declaration, and the families the dashboard depends on exist.
func TestPromExpositionWellFormed(t *testing.T) {
	s, _ := newStubServer(Options{})
	exercise(t, s)
	exp := scrape(t, s)

	for _, sample := range exp.samples {
		fam := family(sample.name)
		typ, ok := exp.types[fam]
		if !ok {
			t.Errorf("sample %s has no TYPE declaration (family %s)", sample.name, fam)
			continue
		}
		if typ == "histogram" && fam == sample.name {
			t.Errorf("histogram family %s exposed as a bare sample", fam)
		}
		if typ != "histogram" && fam != sample.name {
			t.Errorf("%s sample %s carries a histogram suffix", typ, sample.name)
		}
		if sample.name == family(sample.name)+"_bucket" {
			if _, ok := sample.labels["le"]; !ok {
				t.Errorf("bucket sample %s without le label", sample.name)
			}
		}
	}
	for _, want := range []string{
		"pubopt_http_requests_total", "pubopt_cache_hits_total",
		"pubopt_cache_misses_total", "pubopt_cache_coalesced_total",
		"pubopt_cache_evictions_total", "pubopt_cache_entries",
		"pubopt_runs_in_flight", "pubopt_solver_solves_total",
		"pubopt_solver_evals_total", "pubopt_solve_duration_seconds",
		"pubopt_batch_frame_write_seconds", "pubopt_events_recorded_total",
		"pubopt_build_info", "pubopt_uptime_seconds",
	} {
		if _, ok := exp.types[want]; !ok {
			t.Errorf("exposition lost metric family %s", want)
		}
	}
}

// TestPromCounterMonotonicity: across two scrapes with traffic in between,
// no counter sample decreases (identity = name + full label set).
func TestPromCounterMonotonicity(t *testing.T) {
	s, _ := newStubServer(Options{})
	exercise(t, s)
	before := scrape(t, s)
	exercise(t, s)
	after := scrape(t, s)

	key := func(sample promSample) string {
		parts := make([]string, 0, len(sample.labels))
		for k, v := range sample.labels {
			parts = append(parts, fmt.Sprintf("%s=%s", k, v))
		}
		// Two labels at most in practice; order by simple insertion sort.
		for i := 1; i < len(parts); i++ {
			for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
				parts[j], parts[j-1] = parts[j-1], parts[j]
			}
		}
		return sample.name + "{" + strings.Join(parts, ",") + "}"
	}
	counterSample := func(exp *promExposition, sample promSample) bool {
		typ := exp.types[family(sample.name)]
		// Histogram _bucket and _count samples are cumulative too; _sum can
		// only grow because observations are non-negative durations.
		return typ == "counter" || typ == "histogram"
	}
	prev := make(map[string]float64)
	for _, sample := range before.samples {
		if counterSample(before, sample) {
			prev[key(sample)] = sample.value
		}
	}
	seen := 0
	for _, sample := range after.samples {
		if !counterSample(after, sample) {
			continue
		}
		k := key(sample)
		was, ok := prev[k]
		if !ok {
			continue // new series appearing is fine; disappearing is checked below
		}
		seen++
		if sample.value < was {
			t.Errorf("counter %s went backwards: %g -> %g", k, was, sample.value)
		}
	}
	if seen < len(prev) {
		t.Errorf("only %d of %d counter series survived the second scrape", seen, len(prev))
	}
}

// TestPromHistogramConsistency: for every histogram series, buckets are
// cumulative and non-decreasing in le order, the +Inf bucket equals _count,
// and _sum is non-negative and zero iff count is zero (durations are
// non-negative).
func TestPromHistogramConsistency(t *testing.T) {
	s, _ := newStubServer(Options{})
	exercise(t, s)
	exp := scrape(t, s)

	// Group bucket samples per family + non-le label set.
	type series struct {
		les     []float64
		cums    []float64
		sum     float64
		count   float64
		hasSum  bool
		hasCnt  bool
		hasBkts bool
	}
	groups := make(map[string]*series)
	groupKey := func(fam string, labels map[string]string) string {
		k := fam
		for lk, lv := range labels {
			if lk != "le" {
				k += "|" + lk + "=" + lv
			}
		}
		return k
	}
	for _, sample := range exp.samples {
		fam := family(sample.name)
		if exp.types[fam] != "histogram" {
			continue
		}
		g := groups[groupKey(fam, sample.labels)]
		if g == nil {
			g = &series{}
			groups[groupKey(fam, sample.labels)] = g
		}
		switch {
		case strings.HasSuffix(sample.name, "_bucket"):
			g.hasBkts = true
			le := math.Inf(1)
			if sample.labels["le"] != "+Inf" {
				v, err := strconv.ParseFloat(sample.labels["le"], 64)
				if err != nil {
					t.Fatalf("unparseable le %q", sample.labels["le"])
				}
				le = v
			}
			g.les = append(g.les, le)
			g.cums = append(g.cums, sample.value)
		case strings.HasSuffix(sample.name, "_sum"):
			g.hasSum, g.sum = true, sample.value
		case strings.HasSuffix(sample.name, "_count"):
			g.hasCnt, g.count = true, sample.value
		}
	}
	if len(groups) < len(solveOutcomes)+1 {
		t.Fatalf("expected at least %d histogram series (outcomes + frames), got %d",
			len(solveOutcomes)+1, len(groups))
	}
	for k, g := range groups {
		if !g.hasBkts || !g.hasSum || !g.hasCnt {
			t.Errorf("series %s incomplete: buckets=%t sum=%t count=%t", k, g.hasBkts, g.hasSum, g.hasCnt)
			continue
		}
		last := math.Inf(-1)
		prevCum := -1.0
		for i, le := range g.les {
			if le <= last {
				t.Errorf("series %s: le bounds not ascending at index %d", k, i)
			}
			if g.cums[i] < prevCum {
				t.Errorf("series %s: cumulative bucket counts decrease at le=%g", k, le)
			}
			last, prevCum = le, g.cums[i]
		}
		if len(g.les) == 0 || !math.IsInf(g.les[len(g.les)-1], 1) {
			t.Errorf("series %s: missing +Inf bucket", k)
			continue
		}
		if inf := g.cums[len(g.cums)-1]; inf != g.count {
			t.Errorf("series %s: +Inf bucket %g != count %g", k, inf, g.count)
		}
		if g.sum < 0 {
			t.Errorf("series %s: negative sum %g", k, g.sum)
		}
		if g.count == 0 && g.sum != 0 {
			t.Errorf("series %s: zero observations but sum %g", k, g.sum)
		}
	}
}
