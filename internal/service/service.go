// Package service is the long-running serving layer over the model: a
// stdlib-only HTTP JSON API exposing the scenario registry, the experiment
// registry, and a run endpoint that solves equilibria on demand.
//
// Every run result flows through a content-addressed equilibrium cache
// (internal/cache): the request's full specification — the scenario's
// canonical JSON, or the experiment id plus its result-changing config — is
// hashed into a key, identical concurrent requests are deduplicated onto
// one solve, and a bounded worker pool keeps concurrent distinct solves
// from oversubscribing the CPU. The model is deterministic, so cached
// results never go stale.
//
// Endpoints:
//
//	GET  /v1/scenarios              list the named scenarios
//	GET  /v1/scenarios/{name}       one scenario's full JSON definition
//	POST /v1/runs                   solve a named or inline 1-D scenario
//	POST /v1/batch                  stream a scenario list or a 2-D grid
//	                                as NDJSON, grid cells cached per cell
//	GET  /v1/experiments            list the registered figure experiments
//	POST /v1/experiments/{id}/run   run a figure experiment
//	GET  /healthz                   liveness probe
//	GET  /metrics                   Prometheus text-format metrics
//
// See docs/SERVICE.md for the endpoint reference with examples.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strings"
	"time"

	"github.com/netecon-sim/publicoption/internal/cache"
	"github.com/netecon-sim/publicoption/internal/experiment"
	"github.com/netecon-sim/publicoption/internal/scenario"
	"github.com/netecon-sim/publicoption/internal/sweep"
)

// DefaultCacheEntries is the LRU bound used when Options.CacheEntries is 0.
// Grid cells from /v1/batch occupy one entry each, so the bound is sized to
// hold several built-in grids' worth of cells alongside full run results;
// a deployment replaying grids larger than this should raise it to at
// least the working set's cell count, or warm re-runs re-solve evicted
// cells.
const DefaultCacheEntries = 2048

// maxRequestBody bounds run-request bodies (inline scenarios included);
// 1 MiB comfortably fits any plausible explicit CP population.
const maxRequestBody = 1 << 20

// Options configures a Server.
type Options struct {
	// Workers bounds how many solves may execute concurrently (the cache's
	// worker pool). 0 means GOMAXPROCS. Each solve's internal parallelism
	// is scaled down so pool × per-solve workers ≈ GOMAXPROCS.
	Workers int
	// CacheEntries is the equilibrium cache's LRU bound. 0 means
	// DefaultCacheEntries; negative disables caching (singleflight and the
	// worker pool remain).
	CacheEntries int
	// Log receives one line per cold solve and per rejected request.
	// Nil discards logs.
	Log *log.Logger
}

// Server is the HTTP service. Construct with New; it implements
// http.Handler and is safe for concurrent use.
type Server struct {
	mux          *http.ServeMux
	store        *cache.Store
	metrics      *metrics
	log          *log.Logger
	start        time.Time
	solveWorkers int // default per-solve parallelism

	// Registry data precomputed at startup so the hot paths never re-derive
	// it: the registries are immutable and scenario.All/Get deep-copy
	// through JSON on every call.
	scenarioInfos   []ScenarioInfo
	experimentInfos []ExperimentInfo
	scenarios       map[string]*scenario.Scenario // read-only, for GET /v1/scenarios/{name}
	scenarioKeys    map[string]string             // name -> content-address cache key

	// Runner indirection, overridable in tests to count or stub solves.
	runScenario   func(s *scenario.Scenario, workers int) ([]*sweep.Table, error)
	runExperiment func(e *experiment.Experiment, cfg experiment.Config) ([]*sweep.Table, error)
}

// New builds a Server with its cache, worker pool and routes.
func New(opts Options) *Server {
	pool := opts.Workers
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	entries := opts.CacheEntries
	if entries == 0 {
		entries = DefaultCacheEntries
	} else if entries < 0 {
		entries = 0
	}
	logger := opts.Log
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	perSolve := runtime.GOMAXPROCS(0) / pool
	if perSolve < 1 {
		perSolve = 1
	}
	s := &Server{
		mux:          http.NewServeMux(),
		store:        cache.New(entries, pool),
		metrics:      newMetrics(),
		log:          logger,
		start:        time.Now(),
		solveWorkers: perSolve,
		runScenario: func(sc *scenario.Scenario, workers int) ([]*sweep.Table, error) {
			return sc.Run(scenario.RunOptions{Workers: workers})
		},
		runExperiment: func(e *experiment.Experiment, cfg experiment.Config) ([]*sweep.Table, error) {
			return e.Run(cfg), nil
		},
		scenarios:    make(map[string]*scenario.Scenario),
		scenarioKeys: make(map[string]string),
	}
	for _, sc := range scenario.All() {
		s.scenarioInfos = append(s.scenarioInfos, ScenarioInfo{Name: sc.Name, Title: sc.Title, Reference: sc.Reference, Grid: sc.IsGrid()})
		s.scenarios[sc.Name] = sc
		canon, err := sc.CanonicalJSON()
		if err != nil {
			panic("service: built-in scenario does not serialize: " + err.Error())
		}
		key, err := cache.Key("run/scenario/v1", json.RawMessage(canon))
		if err != nil {
			panic("service: hashing built-in scenario: " + err.Error())
		}
		s.scenarioKeys[sc.Name] = key
	}
	for _, e := range experiment.All() {
		s.experimentInfos = append(s.experimentInfos, ExperimentInfo{ID: e.ID, Title: e.Title, Expect: e.Expect})
	}
	s.handle("GET /v1/scenarios", s.handleListScenarios)
	s.handle("GET /v1/scenarios/{name}", s.handleGetScenario)
	s.handle("POST /v1/runs", s.handleRun)
	s.handle("POST /v1/batch", s.handleBatch)
	s.handle("GET /v1/experiments", s.handleListExperiments)
	s.handle("POST /v1/experiments/{id}/run", s.handleExperimentRun)
	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// CacheStats exposes the equilibrium cache's counters (for tests and ops).
func (s *Server) CacheStats() cache.Stats { return s.store.Stats() }

// handle registers a routed handler wrapped with request counting, labeled
// by the route pattern so metrics cardinality stays bounded.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	route := pattern
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.metrics.observeRequest(route, sw.code)
	})
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// ---------------------------------------------------------------------------
// Response shapes.

// ScenarioInfo is one row of GET /v1/scenarios.
type ScenarioInfo struct {
	Name      string `json:"name"`
	Title     string `json:"title"`
	Reference string `json:"reference,omitempty"`
	// Grid marks 2-D grid scenarios: they are solved via POST /v1/batch
	// ({"grid": name}), and POST /v1/runs rejects them.
	Grid bool `json:"grid,omitempty"`
}

// ExperimentInfo is one row of GET /v1/experiments.
type ExperimentInfo struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	Expect string `json:"expect,omitempty"`
}

// Series is one curve of a result table.
type Series struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// Table is one result table (a reproduced figure) in wire form.
type Table struct {
	Title  string   `json:"title"`
	XLabel string   `json:"x_label"`
	YLabel string   `json:"y_label"`
	Series []Series `json:"series"`
}

// RunResult is the cacheable outcome of one solve.
type RunResult struct {
	Kind   string  `json:"kind"` // "scenario" or "experiment"
	Name   string  `json:"name"`
	Title  string  `json:"title"`
	Tables []Table `json:"tables"`
}

// RunResponse is what run endpoints return: the (possibly cached) result
// plus how the cache satisfied the request and the request's wall time.
type RunResponse struct {
	RunResult
	Cache     string  `json:"cache"` // "hit", "miss" or "coalesced"
	ElapsedMS float64 `json:"elapsed_ms"`
}

func tablesToWire(tables []*sweep.Table) []Table {
	out := make([]Table, len(tables))
	for i, t := range tables {
		wt := Table{Title: t.Title, XLabel: t.XLabel, YLabel: t.YLabel}
		for _, sr := range t.Series {
			wt.Series = append(wt.Series, Series{
				Name: sr.Name,
				X:    append([]float64(nil), sr.X...),
				Y:    append([]float64(nil), sr.Y...),
			})
		}
		out[i] = wt
	}
	return out
}

// ---------------------------------------------------------------------------
// Handlers.

func (s *Server) handleListScenarios(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.scenarioInfos)
}

func (s *Server) handleGetScenario(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sc, ok := s.scenarios[name]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown scenario %q", name)
		return
	}
	writeJSON(w, http.StatusOK, sc)
}

func (s *Server) handleListExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.experimentInfos)
}

// runRequest is the body of POST /v1/runs.
type runRequest struct {
	// Scenario names a registered scenario; ScenarioJSON inlines a full
	// scenario definition (the same schema as docs/SCENARIOS.md). Exactly
	// one must be set.
	Scenario     string          `json:"scenario,omitempty"`
	ScenarioJSON json.RawMessage `json:"scenario_json,omitempty"`
	// Workers overrides the solve's internal parallelism. Execution-only:
	// it does not participate in the cache key.
	Workers int `json:"workers,omitempty"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if err := decodeJSONBody(w, r, &req, false); err != nil {
		writeError(w, bodyErrorStatus(err), "%v", err)
		return
	}
	if (req.Scenario == "") == (len(req.ScenarioJSON) == 0) {
		writeError(w, http.StatusBadRequest, "give exactly one of \"scenario\" (a registered name) or \"scenario_json\" (an inline definition)")
		return
	}

	// Content address: the canonical scenario bytes, regardless of whether
	// they arrived as a name or inline. A named scenario and its identical
	// inline copy share one cache entry. The named path uses the key
	// precomputed at startup, so warm hits never touch the registry; the
	// scenario itself is only materialized (a deep copy) inside the solve.
	var key string
	var getScenario func() (*scenario.Scenario, error)
	if req.Scenario != "" {
		var ok bool
		key, ok = s.scenarioKeys[req.Scenario]
		if !ok {
			writeError(w, http.StatusNotFound, "unknown scenario %q", req.Scenario)
			return
		}
		if s.scenarios[req.Scenario].IsGrid() {
			writeError(w, http.StatusBadRequest, "scenario %q is a 2-D grid; run it via POST /v1/batch with the \"grid\" field", req.Scenario)
			return
		}
		getScenario = func() (*scenario.Scenario, error) {
			sc, ok := scenario.Get(req.Scenario)
			if !ok {
				return nil, fmt.Errorf("scenario %q vanished from the registry", req.Scenario)
			}
			return sc, nil
		}
	} else {
		sc, err := scenario.Load(strings.NewReader(string(req.ScenarioJSON)))
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if sc.IsGrid() {
			writeError(w, http.StatusBadRequest, "scenario %q is a 2-D grid; run it via POST /v1/batch with the \"grid_json\" field", sc.Name)
			return
		}
		canon, err := sc.CanonicalJSON()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "serializing scenario: %v", err)
			return
		}
		key, err = cache.Key("run/scenario/v1", json.RawMessage(canon))
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		getScenario = func() (*scenario.Scenario, error) { return sc, nil }
	}

	workers := req.Workers
	if workers <= 0 {
		workers = s.solveWorkers
	}
	s.respondRun(w, key, func() (any, error) {
		sc, err := getScenario()
		if err != nil {
			return nil, err
		}
		tables, err := s.runScenario(sc, workers)
		if err != nil {
			return nil, err
		}
		return &RunResult{Kind: "scenario", Name: sc.Name, Title: sc.Title, Tables: tablesToWire(tables)}, nil
	})
}

// experimentRunRequest is the optional body of POST /v1/experiments/{id}/run.
type experimentRunRequest struct {
	Fast bool   `json:"fast,omitempty"`
	Seed uint64 `json:"seed,omitempty"`
	CPs  int    `json:"cps,omitempty"`
	// Workers is execution-only and excluded from the cache key.
	Workers int `json:"workers,omitempty"`
}

func (s *Server) handleExperimentRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := experiment.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown experiment %q", id)
		return
	}
	var req experimentRunRequest
	if err := decodeJSONBody(w, r, &req, true); err != nil {
		writeError(w, bodyErrorStatus(err), "%v", err)
		return
	}
	if req.CPs < 0 {
		writeError(w, http.StatusBadRequest, "cps must be non-negative, got %d", req.CPs)
		return
	}

	// The key covers exactly the result-changing config; Workers changes
	// only how fast the answer arrives.
	type experimentKey struct {
		ID   string `json:"id"`
		Fast bool   `json:"fast"`
		Seed uint64 `json:"seed"`
		CPs  int    `json:"cps"`
	}
	key, err := cache.Key("run/experiment/v1", experimentKey{ID: id, Fast: req.Fast, Seed: req.Seed, CPs: req.CPs})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	workers := req.Workers
	if workers <= 0 {
		workers = s.solveWorkers
	}
	cfg := experiment.Config{Fast: req.Fast, Seed: req.Seed, CPs: req.CPs, Workers: workers}
	s.respondRun(w, key, func() (any, error) {
		tables, err := s.runExperiment(e, cfg)
		if err != nil {
			return nil, err
		}
		return &RunResult{Kind: "experiment", Name: e.ID, Title: e.Title, Tables: tablesToWire(tables)}, nil
	})
}

// respondRun funnels both run endpoints through the cache and renders the
// shared response envelope. The solve closure runs at most once per key
// across all concurrent requests.
func (s *Server) respondRun(w http.ResponseWriter, key string, solve func() (any, error)) {
	reqStart := time.Now()
	val, status, err := s.store.Do(key, func() (any, error) {
		s.metrics.solveStarted()
		defer s.metrics.solveFinished()
		solveStart := time.Now()
		v, err := solve()
		s.metrics.observeSolve(time.Since(solveStart).Seconds())
		return v, err
	})
	if err != nil {
		s.log.Printf("solve %s: %v", key[:12], err)
		writeError(w, http.StatusInternalServerError, "solve failed: %v", err)
		return
	}
	result := val.(*RunResult)
	if status == cache.Miss {
		s.log.Printf("solved %s %q in %.3fs (key %s)", result.Kind, result.Name, time.Since(reqStart).Seconds(), key[:12])
	}
	writeJSON(w, http.StatusOK, RunResponse{
		RunResult: *result,
		Cache:     status.String(),
		ElapsedMS: float64(time.Since(reqStart).Microseconds()) / 1e3,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	s.metrics.render(&b, s.store.Stats(), time.Since(s.start).Seconds())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, b.String())
}

// ---------------------------------------------------------------------------
// JSON plumbing.

// errBodyTooLarge marks requests whose body exceeded maxRequestBody; the
// handlers map it to 413 instead of the generic 400.
var errBodyTooLarge = fmt.Errorf("request body exceeds the %d-byte limit", maxRequestBody)

// decodeJSONBody parses the request body into v, rejecting unknown fields,
// trailing garbage, and bodies over maxRequestBody (errBodyTooLarge). An
// empty body is an error unless allowEmpty (the experiment run endpoint
// treats it as "all defaults").
func decodeJSONBody(w http.ResponseWriter, r *http.Request, v any, allowEmpty bool) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return errBodyTooLarge
		}
		if errors.Is(err, io.EOF) {
			if allowEmpty {
				return nil
			}
			return fmt.Errorf("empty request body")
		}
		return fmt.Errorf("parsing request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("request body has trailing data after the JSON object")
	}
	return nil
}

// bodyErrorStatus picks the status code for a decodeJSONBody failure.
func bodyErrorStatus(err error) int {
	if errors.Is(err, errBodyTooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		// A result that cannot serialize (e.g. NaN from a degenerate
		// market) is a server-side failure, not a client one.
		writeError(w, http.StatusInternalServerError, "serializing response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(b)
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	b, _ := json.Marshal(errorResponse{Error: fmt.Sprintf(format, args...)})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(b)
}
