// Package service is the long-running serving layer over the model: a
// stdlib-only HTTP JSON API exposing the scenario registry, the experiment
// registry, and a run endpoint that solves equilibria on demand.
//
// Every run result flows through a content-addressed equilibrium cache
// (internal/cache): the request's full specification — the scenario's
// canonical JSON, or the experiment id plus its result-changing config — is
// hashed into a key, identical concurrent requests are deduplicated onto
// one solve, and a bounded worker pool keeps concurrent distinct solves
// from oversubscribing the CPU. The model is deterministic, so cached
// results never go stale.
//
// Endpoints:
//
//	GET  /v1/scenarios              list the named scenarios
//	GET  /v1/scenarios/{name}       one scenario's full JSON definition
//	POST /v1/runs                   solve a named or inline 1-D scenario
//	POST /v1/batch                  stream a scenario list or a 2-D grid
//	                                as NDJSON, grid cells cached per cell;
//	                                "refine": true streams an adaptive
//	                                refinement run instead of dense cells
//	GET  /v1/query                  solve-free point query against a grid's
//	                                cached refinement surrogate (POST works
//	                                too, for inline grids)
//	POST /v1/simulate               stream a dynamics scenario tick by tick
//	                                as NDJSON, ticks cached per tick
//	GET  /v1/experiments            list the registered figure experiments
//	POST /v1/experiments/{id}/run   run a figure experiment
//	GET  /healthz                   liveness probe
//	GET  /metrics                   Prometheus text-format metrics
//	GET  /debug/events              flight recorder: the last N solve events
//
// Every request gets a trace ID (X-Trace-Id header) that correlates its
// access log line, solve log line, and flight-recorder events; see
// docs/OBSERVABILITY.md for the full telemetry reference and
// docs/SERVICE.md for the endpoint reference with examples.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"time"

	"github.com/netecon-sim/publicoption/internal/cache"
	"github.com/netecon-sim/publicoption/internal/experiment"
	"github.com/netecon-sim/publicoption/internal/obs"
	"github.com/netecon-sim/publicoption/internal/scenario"
	"github.com/netecon-sim/publicoption/internal/sweep"
)

// DefaultCacheEntries is the LRU bound used when Options.CacheEntries is 0.
// Grid cells from /v1/batch occupy one entry each, so the bound is sized to
// hold several built-in grids' worth of cells alongside full run results;
// a deployment replaying grids larger than this should raise it to at
// least the working set's cell count, or warm re-runs re-solve evicted
// cells.
const DefaultCacheEntries = 2048

// DefaultFlightEvents is the flight recorder's ring capacity when
// Options.FlightEvents is 0.
const DefaultFlightEvents = 256

// maxRequestBody bounds run-request bodies (inline scenarios included);
// 1 MiB comfortably fits any plausible explicit CP population.
const maxRequestBody = 1 << 20

// Options configures a Server.
type Options struct {
	// Workers bounds how many solves may execute concurrently (the cache's
	// worker pool). 0 means GOMAXPROCS. Each solve's internal parallelism
	// is scaled down so pool × per-solve workers ≈ GOMAXPROCS.
	Workers int
	// CacheEntries is the equilibrium cache's LRU bound. 0 means
	// DefaultCacheEntries; negative disables caching (singleflight and the
	// worker pool remain).
	CacheEntries int
	// Logger receives structured logs: access lines at debug, cold-solve
	// lines at info, failures at warn/error. Nil discards everything.
	Logger *slog.Logger
	// Trace echoes each request's trace ID in response bodies: the "trace"
	// field of run responses and batch NDJSON frames. The X-Trace-Id header
	// and the flight recorder carry trace IDs regardless.
	Trace bool
	// FlightEvents is the flight recorder's ring capacity (the last N solve
	// events, served at GET /debug/events). 0 means DefaultFlightEvents;
	// negative disables the recorder.
	FlightEvents int
}

// Server is the HTTP service. Construct with New; it implements
// http.Handler and is safe for concurrent use.
type Server struct {
	mux          *http.ServeMux
	store        *cache.Store
	metrics      *metrics
	logger       *slog.Logger
	start        time.Time
	solveWorkers int // default per-solve parallelism

	// Observability state: the server-wide solver-telemetry sink (rendered
	// as pubopt_solver_* counters), the bounded flight recorder behind
	// GET /debug/events (nil when disabled), whether responses echo trace
	// IDs, and the build stamp for pubopt_build_info.
	counters obs.Counters
	// refineCounters aggregates adaptive-refinement telemetry across runs
	// (rendered as pubopt_refine_* counters).
	refineCounters obs.RefineCounters
	recorder       *obs.Recorder
	trace          bool
	build          obs.BuildInfo

	// Registry data precomputed at startup so the hot paths never re-derive
	// it: the registries are immutable and scenario.All/Get deep-copy
	// through JSON on every call.
	scenarioInfos   []ScenarioInfo
	experimentInfos []ExperimentInfo
	scenarios       map[string]*scenario.Scenario // read-only, for GET /v1/scenarios/{name}
	scenarioKeys    map[string]string             // name -> content-address cache key

	// Runner indirection, overridable in tests to count or stub solves.
	// stats receives the run's solver telemetry (nil-safe).
	runScenario   func(s *scenario.Scenario, workers int, stats *obs.Counters) ([]*sweep.Table, error)
	runExperiment func(e *experiment.Experiment, cfg experiment.Config) ([]*sweep.Table, error)
}

// New builds a Server with its cache, worker pool and routes.
func New(opts Options) *Server {
	pool := opts.Workers
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	entries := opts.CacheEntries
	if entries == 0 {
		entries = DefaultCacheEntries
	} else if entries < 0 {
		entries = 0
	}
	logger := opts.Logger
	if logger == nil {
		logger = obs.NopLogger()
	}
	events := opts.FlightEvents
	if events == 0 {
		events = DefaultFlightEvents
	}
	perSolve := runtime.GOMAXPROCS(0) / pool
	if perSolve < 1 {
		perSolve = 1
	}
	s := &Server{
		mux:          http.NewServeMux(),
		store:        cache.New(entries, pool),
		metrics:      newMetrics(),
		logger:       logger,
		start:        time.Now(),
		solveWorkers: perSolve,
		recorder:     obs.NewRecorder(events),
		trace:        opts.Trace,
		build:        obs.Build(),
		runScenario: func(sc *scenario.Scenario, workers int, stats *obs.Counters) ([]*sweep.Table, error) {
			return sc.Run(scenario.RunOptions{Workers: workers, Stats: stats})
		},
		runExperiment: func(e *experiment.Experiment, cfg experiment.Config) ([]*sweep.Table, error) {
			return e.Run(cfg), nil
		},
		scenarios:    make(map[string]*scenario.Scenario),
		scenarioKeys: make(map[string]string),
	}
	for _, sc := range scenario.All() {
		s.scenarioInfos = append(s.scenarioInfos, ScenarioInfo{Name: sc.Name, Title: sc.Title, Reference: sc.Reference, Grid: sc.IsGrid(), Dynamic: sc.IsDynamic()})
		s.scenarios[sc.Name] = sc
		canon, err := sc.CanonicalJSON()
		if err != nil {
			panic("service: built-in scenario does not serialize: " + err.Error())
		}
		key, err := cache.Key("run/scenario/v1", json.RawMessage(canon))
		if err != nil {
			panic("service: hashing built-in scenario: " + err.Error())
		}
		s.scenarioKeys[sc.Name] = key
	}
	for _, e := range experiment.All() {
		s.experimentInfos = append(s.experimentInfos, ExperimentInfo{ID: e.ID, Title: e.Title, Expect: e.Expect})
	}
	s.handle("GET /v1/scenarios", s.handleListScenarios)
	s.handle("GET /v1/scenarios/{name}", s.handleGetScenario)
	s.handle("POST /v1/runs", s.handleRun)
	s.handle("POST /v1/batch", s.handleBatch)
	s.handle("GET /v1/query", s.handleQueryGet)
	s.handle("POST /v1/query", s.handleQueryPost)
	s.handle("POST /v1/simulate", s.handleSimulate)
	s.handle("GET /v1/experiments", s.handleListExperiments)
	s.handle("POST /v1/experiments/{id}/run", s.handleExperimentRun)
	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("GET /debug/events", s.handleEvents)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// CacheStats exposes the equilibrium cache's counters (for tests and ops).
func (s *Server) CacheStats() cache.Stats { return s.store.Stats() }

// handle registers a routed handler wrapped with the observability
// middleware: a fresh trace ID on the request context (echoed in the
// X-Trace-Id header), request counting labeled by the route pattern so
// metrics cardinality stays bounded, a debug-level access log line, and
// panic recovery — a panicking handler logs with its trace ID and answers
// 500 instead of tearing down the connection with no record.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	route := pattern
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := obs.NewTraceID()
		r = r.WithContext(obs.WithTraceID(r.Context(), id))
		w.Header().Set("X-Trace-Id", id)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				s.logger.Error("handler panicked",
					"route", route, "trace", id, "panic", fmt.Sprint(p))
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, "internal error (trace %s)", id)
				}
				s.metrics.observeRequest(route, http.StatusInternalServerError)
				return
			}
			s.metrics.observeRequest(route, sw.code)
			s.logger.Debug("request",
				"method", r.Method, "path", r.URL.Path, "status", sw.code,
				"elapsed_ms", float64(time.Since(start).Microseconds())/1e3, "trace", id)
		}()
		h(sw, r)
	})
}

type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush forwards streaming flushes (the batch NDJSON writer needs them)
// through the middleware wrapper, which would otherwise hide the underlying
// ResponseWriter's http.Flusher.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ---------------------------------------------------------------------------
// Response shapes.

// ScenarioInfo is one row of GET /v1/scenarios.
type ScenarioInfo struct {
	Name      string `json:"name"`
	Title     string `json:"title"`
	Reference string `json:"reference,omitempty"`
	// Grid marks 2-D grid scenarios: they are solved via POST /v1/batch
	// ({"grid": name}), and POST /v1/runs rejects them.
	Grid bool `json:"grid,omitempty"`
	// Dynamic marks dynamics scenarios: they are simulated via
	// POST /v1/simulate, and POST /v1/runs and /v1/batch reject them.
	Dynamic bool `json:"dynamic,omitempty"`
}

// ExperimentInfo is one row of GET /v1/experiments.
type ExperimentInfo struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	Expect string `json:"expect,omitempty"`
}

// Series is one curve of a result table.
type Series struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// Table is one result table (a reproduced figure) in wire form.
type Table struct {
	Title  string   `json:"title"`
	XLabel string   `json:"x_label"`
	YLabel string   `json:"y_label"`
	Series []Series `json:"series"`
}

// RunResult is the cacheable outcome of one solve.
type RunResult struct {
	Kind   string  `json:"kind"` // "scenario" or "experiment"
	Name   string  `json:"name"`
	Title  string  `json:"title"`
	Tables []Table `json:"tables"`
}

// RunResponse is what run endpoints return: the (possibly cached) result
// plus how the cache satisfied the request and the request's wall time.
// Trace carries the request's trace ID when the server runs with
// Options.Trace (it always travels in the X-Trace-Id header).
type RunResponse struct {
	RunResult
	Cache     string  `json:"cache"` // "hit", "miss" or "coalesced"
	ElapsedMS float64 `json:"elapsed_ms"`
	Trace     string  `json:"trace,omitempty"`
}

func tablesToWire(tables []*sweep.Table) []Table {
	out := make([]Table, len(tables))
	for i, t := range tables {
		wt := Table{Title: t.Title, XLabel: t.XLabel, YLabel: t.YLabel}
		for _, sr := range t.Series {
			wt.Series = append(wt.Series, Series{
				Name: sr.Name,
				X:    append([]float64(nil), sr.X...),
				Y:    append([]float64(nil), sr.Y...),
			})
		}
		out[i] = wt
	}
	return out
}

// ---------------------------------------------------------------------------
// Handlers.

func (s *Server) handleListScenarios(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.scenarioInfos)
}

func (s *Server) handleGetScenario(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sc, ok := s.scenarios[name]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown scenario %q", name)
		return
	}
	writeJSON(w, http.StatusOK, sc)
}

func (s *Server) handleListExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.experimentInfos)
}

// runRequest is the body of POST /v1/runs.
type runRequest struct {
	// Scenario names a registered scenario; ScenarioJSON inlines a full
	// scenario definition (the same schema as docs/SCENARIOS.md). Exactly
	// one must be set.
	Scenario     string          `json:"scenario,omitempty"`
	ScenarioJSON json.RawMessage `json:"scenario_json,omitempty"`
	// Workers overrides the solve's internal parallelism. Execution-only:
	// it does not participate in the cache key.
	Workers int `json:"workers,omitempty"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if err := decodeJSONBody(w, r, &req, false); err != nil {
		writeError(w, bodyErrorStatus(err), "%v", err)
		return
	}
	if (req.Scenario == "") == (len(req.ScenarioJSON) == 0) {
		writeError(w, http.StatusBadRequest, "give exactly one of \"scenario\" (a registered name) or \"scenario_json\" (an inline definition)")
		return
	}

	// Content address: the canonical scenario bytes, regardless of whether
	// they arrived as a name or inline. A named scenario and its identical
	// inline copy share one cache entry. The named path uses the key
	// precomputed at startup, so warm hits never touch the registry; the
	// scenario itself is only materialized (a deep copy) inside the solve.
	var key string
	var getScenario func() (*scenario.Scenario, error)
	if req.Scenario != "" {
		var ok bool
		key, ok = s.scenarioKeys[req.Scenario]
		if !ok {
			writeError(w, http.StatusNotFound, "unknown scenario %q", req.Scenario)
			return
		}
		if s.scenarios[req.Scenario].IsGrid() {
			writeError(w, http.StatusBadRequest, "scenario %q is a 2-D grid; run it via POST /v1/batch with the \"grid\" field", req.Scenario)
			return
		}
		if s.scenarios[req.Scenario].IsDynamic() {
			writeError(w, http.StatusBadRequest, "scenario %q is a dynamics simulation; run it via POST /v1/simulate with the \"scenario\" field", req.Scenario)
			return
		}
		getScenario = func() (*scenario.Scenario, error) {
			sc, ok := scenario.Get(req.Scenario)
			if !ok {
				return nil, fmt.Errorf("scenario %q vanished from the registry", req.Scenario)
			}
			return sc, nil
		}
	} else {
		sc, err := scenario.Load(strings.NewReader(string(req.ScenarioJSON)))
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if sc.IsGrid() {
			writeError(w, http.StatusBadRequest, "scenario %q is a 2-D grid; run it via POST /v1/batch with the \"grid_json\" field", sc.Name)
			return
		}
		if sc.IsDynamic() {
			writeError(w, http.StatusBadRequest, "scenario %q is a dynamics simulation; run it via POST /v1/simulate with the \"scenario_json\" field", sc.Name)
			return
		}
		canon, err := sc.CanonicalJSON()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "serializing scenario: %v", err)
			return
		}
		key, err = cache.Key("run/scenario/v1", json.RawMessage(canon))
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		getScenario = func() (*scenario.Scenario, error) { return sc, nil }
	}

	workers := req.Workers
	if workers <= 0 {
		workers = s.solveWorkers
	}
	name := req.Scenario
	if name == "" {
		if sc, err := getScenario(); err == nil {
			name = sc.Name
		}
	}
	s.respondRun(w, r, "run", name, key, func(stats *obs.Counters) (any, error) {
		sc, err := getScenario()
		if err != nil {
			return nil, err
		}
		tables, err := s.runScenario(sc, workers, stats)
		if err != nil {
			return nil, err
		}
		return &RunResult{Kind: "scenario", Name: sc.Name, Title: sc.Title, Tables: tablesToWire(tables)}, nil
	})
}

// experimentRunRequest is the optional body of POST /v1/experiments/{id}/run.
type experimentRunRequest struct {
	Fast bool   `json:"fast,omitempty"`
	Seed uint64 `json:"seed,omitempty"`
	CPs  int    `json:"cps,omitempty"`
	// Workers is execution-only and excluded from the cache key.
	Workers int `json:"workers,omitempty"`
}

func (s *Server) handleExperimentRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := experiment.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown experiment %q", id)
		return
	}
	var req experimentRunRequest
	if err := decodeJSONBody(w, r, &req, true); err != nil {
		writeError(w, bodyErrorStatus(err), "%v", err)
		return
	}
	if req.CPs < 0 {
		writeError(w, http.StatusBadRequest, "cps must be non-negative, got %d", req.CPs)
		return
	}

	// The key covers exactly the result-changing config; Workers changes
	// only how fast the answer arrives.
	type experimentKey struct {
		ID   string `json:"id"`
		Fast bool   `json:"fast"`
		Seed uint64 `json:"seed"`
		CPs  int    `json:"cps"`
	}
	key, err := cache.Key("run/experiment/v1", experimentKey{ID: id, Fast: req.Fast, Seed: req.Seed, CPs: req.CPs})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	workers := req.Workers
	if workers <= 0 {
		workers = s.solveWorkers
	}
	cfg := experiment.Config{Fast: req.Fast, Seed: req.Seed, CPs: req.CPs, Workers: workers}
	// Experiments drive their own runner internals (experiment.Config has no
	// stats plumbing), so their events carry zero solver telemetry.
	s.respondRun(w, r, "experiment", e.ID, key, func(stats *obs.Counters) (any, error) {
		tables, err := s.runExperiment(e, cfg)
		if err != nil {
			return nil, err
		}
		return &RunResult{Kind: "experiment", Name: e.ID, Title: e.Title, Tables: tablesToWire(tables)}, nil
	})
}

// respondRun funnels both run endpoints through the cache and renders the
// shared response envelope. The solve closure runs at most once per key
// across all concurrent requests; the stats sink it receives collects the
// solve's kernel telemetry for the server-wide counters and the flight
// recorder. Coalesced waiters honor request-context cancellation.
func (s *Server) respondRun(w http.ResponseWriter, r *http.Request, kind, name, key string, solve func(stats *obs.Counters) (any, error)) {
	reqStart := time.Now()
	// delta is only written when the solve closure runs, and Do runs it in
	// this goroutine (coalesced callers never execute it), so no lock.
	var delta obs.SolveStats
	val, status, err := s.store.DoContext(r.Context(), key, func() (any, error) {
		s.metrics.solveStarted()
		defer s.metrics.solveFinished()
		var sink obs.Counters
		v, err := solve(&sink)
		delta = sink.Snapshot()
		s.counters.Add(delta)
		return v, err
	})
	elapsed := time.Since(reqStart)
	outcome := status.String()
	if err != nil {
		outcome = "error"
	}
	s.metrics.observeSolve(outcome, elapsed.Seconds())
	trace := obs.TraceID(r.Context())
	ev := obs.Event{
		Time: time.Now(), Trace: trace, Kind: kind, Name: name,
		Key: shortKey(key), Outcome: outcome,
		DurationMS: float64(elapsed.Microseconds()) / 1e3,
		Solver:     delta,
	}
	if err != nil {
		ev.Error = err.Error()
		s.recorder.Record(ev)
		s.logger.Warn("solve failed",
			"kind", kind, "name", name, "key", shortKey(key), "trace", trace, "error", err)
		writeError(w, http.StatusInternalServerError, "solve failed: %v", err)
		return
	}
	s.recorder.Record(ev)
	result := val.(*RunResult)
	if status == cache.Miss {
		s.logger.Info("solved",
			"kind", result.Kind, "name", result.Name, "key", shortKey(key),
			"elapsed_s", elapsed.Seconds(), "solves", delta.Solves,
			"evals", delta.Evals, "trace", trace)
	}
	resp := RunResponse{
		RunResult: *result,
		Cache:     status.String(),
		ElapsedMS: float64(elapsed.Microseconds()) / 1e3,
	}
	if s.trace {
		resp.Trace = trace
	}
	writeJSON(w, http.StatusOK, resp)
}

// shortKey abbreviates a cache key for logs and events: enough hex to
// correlate, not enough to drown the line.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	s.metrics.render(&b, s.store.Stats(), s.counters.Snapshot(),
		s.refineCounters.Snapshot(), s.build,
		s.recorder.Recorded(), time.Since(s.start).Seconds())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, b.String())
}

// handleEvents serves the flight recorder: the last N solve spans (runs,
// experiments, grids and solved cells) with trace IDs, cache outcomes and
// solver-telemetry deltas, oldest first. With the recorder disabled
// (Options.FlightEvents < 0) capacity is 0 and events null.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"capacity": s.recorder.Cap(),
		"recorded": s.recorder.Recorded(),
		"events":   s.recorder.Events(),
	})
}

// ---------------------------------------------------------------------------
// JSON plumbing.

// errBodyTooLarge marks requests whose body exceeded maxRequestBody; the
// handlers map it to 413 instead of the generic 400.
var errBodyTooLarge = fmt.Errorf("request body exceeds the %d-byte limit", maxRequestBody)

// decodeJSONBody parses the request body into v, rejecting unknown fields,
// trailing garbage, and bodies over maxRequestBody (errBodyTooLarge). An
// empty body is an error unless allowEmpty (the experiment run endpoint
// treats it as "all defaults").
func decodeJSONBody(w http.ResponseWriter, r *http.Request, v any, allowEmpty bool) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return errBodyTooLarge
		}
		if errors.Is(err, io.EOF) {
			if allowEmpty {
				return nil
			}
			return fmt.Errorf("empty request body")
		}
		return fmt.Errorf("parsing request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("request body has trailing data after the JSON object")
	}
	return nil
}

// bodyErrorStatus picks the status code for a decodeJSONBody failure.
func bodyErrorStatus(err error) int {
	if errors.Is(err, errBodyTooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		// A result that cannot serialize (e.g. NaN from a degenerate
		// market) is a server-side failure, not a client one.
		writeError(w, http.StatusInternalServerError, "serializing response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(b)
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	b, _ := json.Marshal(errorResponse{Error: fmt.Sprintf(format, args...)})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(b)
}
