package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/netecon-sim/publicoption/internal/cache"
	"github.com/netecon-sim/publicoption/internal/dynamics"
	"github.com/netecon-sim/publicoption/internal/obs"
	"github.com/netecon-sim/publicoption/internal/scenario"
)

// POST /v1/simulate — the streaming dynamics runner. One request simulates
// one dynamics scenario (named or inline) tick by tick, and the response is
// NDJSON: a header frame with the run's geometry, one frame per tick
// written and flushed as the tick completes, and a summary frame.
//
// Ticks are cached individually under their content address — the
// scenario's canonical JSON plus the tick index — and a trajectory is a
// pure function of the scenario, so a replay streams the cached prefix
// without solving anything. At the first missing tick the engine is
// restored from the last cached record and the remainder of the trajectory
// is solved live (a restored warm start can differ from an uninterrupted
// one by ~1e-9 per solve; see dynamics.Engine.Restore). The summary frame's
// Solved count is 0 on a fully warm replay — the number CI asserts on.
//
// See docs/DYNAMICS.md for the full frame-by-frame contract.

// simulateRequest is the body of POST /v1/simulate. Exactly one of
// Scenario (a registered name) or ScenarioJSON (an inline definition)
// must be set.
type simulateRequest struct {
	Scenario     string          `json:"scenario,omitempty"`
	ScenarioJSON json.RawMessage `json:"scenario_json,omitempty"`
	// Workers is accepted for symmetry with /v1/runs and /v1/batch and is
	// execution-only; ticks are sequential by construction, so it never
	// changes the trajectory (see dynamics.Options).
	Workers int `json:"workers,omitempty"`
}

// simHeaderFrame opens the stream with the resolved run geometry, so
// clients can allocate before any tick arrives.
type simHeaderFrame struct {
	Sim simInfo `json:"sim"`
}

type simInfo struct {
	Name      string   `json:"name"`
	Title     string   `json:"title"`
	Providers []string `json:"providers"`
	Metrics   []string `json:"metrics,omitempty"`
	Ticks     int      `json:"ticks"`
}

// simTickFrame is one solved or cache-served tick. Trace carries the
// request's trace ID when the server runs with Options.Trace.
type simTickFrame struct {
	Tick  dynamics.TickRecord `json:"tick"`
	Cache string              `json:"cache"` // "hit" or "miss"
	Trace string              `json:"trace,omitempty"`
}

// simDoneFrame closes the stream. Solved is 0 on a fully warm replay.
type simDoneFrame struct {
	Done      bool    `json:"done"`
	Ticks     int     `json:"ticks"`
	Solved    int     `json:"solved"`
	CacheHits int     `json:"cache_hits"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// simTickAddress is the content a tick's cache key hashes: the scenario's
// canonical JSON (physics and dynamics; nothing cosmetic survives
// canonicalization that would change the trajectory) plus the tick index.
type simTickAddress struct {
	Spec json.RawMessage `json:"spec"`
	Tick int             `json:"tick"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req simulateRequest
	if err := decodeJSONBody(w, r, &req, false); err != nil {
		writeError(w, bodyErrorStatus(err), "%v", err)
		return
	}
	sc, errStatus, err := s.resolveSimScenario(&req)
	if err != nil {
		writeError(w, errStatus, "%v", err)
		return
	}
	canon, err := sc.CanonicalJSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "serializing scenario: %v", err)
		return
	}

	// Content-address every tick up front.
	ticks := sc.Dynamics.Ticks
	keys := make([]string, ticks)
	for t := 0; t < ticks; t++ {
		k, err := cache.Key("sim/tick/v1", simTickAddress{Spec: canon, Tick: t})
		if err != nil {
			writeError(w, http.StatusInternalServerError, "hashing tick %d: %v", t, err)
			return
		}
		keys[t] = k
	}

	nw := newNDJSONWriter(w, s.metrics)
	start := time.Now()
	trace := obs.TraceID(r.Context())
	frameTrace := ""
	if s.trace {
		frameTrace = trace
	}
	if err := nw.frame(&simHeaderFrame{Sim: simInfo{
		Name: sc.Name, Title: sc.Title,
		Providers: providerNames(sc), Metrics: sc.Sweep.Metrics, Ticks: ticks,
	}}); err != nil {
		return
	}

	// Probe phase: stream the contiguous cached prefix from tick 0. The
	// last prefix record is the exact state the next tick starts from
	// (TickRecord doubles as resume state), so the solve phase continues
	// from it; cached ticks beyond the first hole are ignored and simply
	// overwritten by the fresh solve.
	hits := 0
	var last *dynamics.TickRecord
	for t := 0; t < ticks; t++ {
		if r.Context().Err() != nil {
			return // client gone mid-probe: stop streaming cached ticks
		}
		val, ok := s.store.Lookup(keys[t])
		if !ok {
			break
		}
		rec := val.(dynamics.TickRecord)
		if err := nw.frame(&simTickFrame{Tick: rec, Cache: cache.Hit.String(), Trace: frameTrace}); err != nil {
			return
		}
		hits++
		last = &rec
	}

	// Solve phase: restore from the prefix and run the remaining ticks
	// live, one frame per tick.
	solved := 0
	var delta obs.SolveStats
	if hits < ticks {
		// A simulation occupies one worker-pool slot, like any pooled
		// solve; concurrent cold simulations queue instead of
		// oversubscribing the CPU. A client that vanishes while queued
		// gives its slot wait up via the request context.
		release, err := s.store.ReserveContext(r.Context())
		if err != nil {
			return
		}
		defer release()
		s.metrics.solveStarted()
		defer s.metrics.solveFinished()
		eng, err := dynamics.New(sc)
		if err == nil && last != nil {
			err = eng.Restore(*last)
		}
		if err != nil {
			s.simulateFailed(nw, sc, trace, start, err)
			return
		}
		for eng.Tick() < ticks {
			if r.Context().Err() != nil {
				break // client gone: keep nothing in flight
			}
			var rec dynamics.TickRecord
			var stepErr error
			func() {
				// A panicking tick (a solver invariant violation) must not
				// tear down the committed stream without a terminal frame.
				defer func() {
					if p := recover(); p != nil {
						stepErr = fmt.Errorf("tick %d panicked: %v", eng.Tick(), p)
					}
				}()
				rec = eng.Step()
			}()
			if stepErr != nil {
				delta = eng.Stats()
				s.counters.Add(delta)
				s.simulateFailed(nw, sc, trace, start, stepErr)
				return
			}
			s.store.Put(keys[rec.Tick], rec)
			solved++
			s.recorder.Record(obs.Event{
				Time: time.Now(), Trace: trace, Kind: "tick", Name: sc.Name,
				Key: shortKey(keys[rec.Tick]), Outcome: cache.Miss.String(),
				Solver: rec.Solver,
			})
			if err := nw.frame(&simTickFrame{Tick: rec, Cache: cache.Miss.String(), Trace: frameTrace}); err != nil {
				break // mid-stream write failure: the client is gone
			}
		}
		delta = eng.Stats()
		s.counters.Add(delta)
		s.metrics.observeSimTicks(solved)
	}

	if r.Context().Err() != nil {
		return // client gone: no summary frame
	}
	elapsed := time.Since(start)
	// The whole simulation request is one solve-duration observation:
	// "miss" if anything was solved, "hit" for a fully warm replay.
	outcome := cache.Miss.String()
	if solved == 0 {
		outcome = cache.Hit.String()
	}
	s.metrics.observeSolve(outcome, elapsed.Seconds())
	s.recorder.Record(obs.Event{
		Time: time.Now(), Trace: trace, Kind: "sim", Name: sc.Name,
		Outcome: outcome, DurationMS: float64(elapsed.Microseconds()) / 1e3,
		Solver: delta,
	})
	s.logger.Info("simulation served",
		"scenario", sc.Name, "ticks", ticks, "solved", solved, "cached", hits,
		"elapsed_s", elapsed.Seconds(), "solves", delta.Solves,
		"evals", delta.Evals, "trace", trace)
	//pubopt:allow(streamcheck): terminal summary frame; the stream ends either way and there is nothing left to abort
	nw.frame(&simDoneFrame{
		Done: true, Ticks: ticks, Solved: solved, CacheHits: hits,
		ElapsedMS: float64(elapsed.Microseconds()) / 1e3,
	})
}

// simulateFailed records and streams a terminal error after the stream has
// already committed its 200 status.
func (s *Server) simulateFailed(nw *ndjsonWriter, sc *scenario.Scenario, trace string, start time.Time, err error) {
	s.logger.Error("simulation failed", "scenario", sc.Name, "trace", trace, "error", err)
	s.recorder.Record(obs.Event{
		Time: time.Now(), Trace: trace, Kind: "sim", Name: sc.Name,
		Outcome: "error", Error: err.Error(),
		DurationMS: float64(time.Since(start).Microseconds()) / 1e3,
	})
	s.metrics.observeSolve("error", time.Since(start).Seconds())
	//pubopt:allow(streamcheck): terminal error frame right before return; the stream is over regardless
	nw.frame(&errorFrame{Error: err.Error()})
}

// resolveSimScenario materializes the dynamics scenario of a simulate
// request from its name or inline JSON, enforcing that it actually
// declares a dynamics block.
func (s *Server) resolveSimScenario(req *simulateRequest) (*scenario.Scenario, int, error) {
	named := req.Scenario != ""
	inline := len(req.ScenarioJSON) > 0
	if named == inline {
		return nil, http.StatusBadRequest, fmt.Errorf("give exactly one of \"scenario\" (a registered name) or \"scenario_json\" (an inline definition)")
	}
	var sc *scenario.Scenario
	if named {
		got, ok := s.scenarios[req.Scenario]
		if !ok {
			return nil, http.StatusNotFound, fmt.Errorf("unknown scenario %q", req.Scenario)
		}
		sc = got
	} else {
		got, err := scenario.Load(strings.NewReader(string(req.ScenarioJSON)))
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		sc = got
	}
	if !sc.IsDynamic() {
		return nil, http.StatusBadRequest, fmt.Errorf("scenario %q has no dynamics block; run it via POST /v1/runs or /v1/batch", sc.Name)
	}
	return sc, 0, nil
}

// providerNames lists the scenario's providers in declaration order.
func providerNames(sc *scenario.Scenario) []string {
	names := make([]string, len(sc.Providers))
	for i, p := range sc.Providers {
		names[i] = p.Name
	}
	return names
}
