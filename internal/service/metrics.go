package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/netecon-sim/publicoption/internal/cache"
	"github.com/netecon-sim/publicoption/internal/obs"
)

// solveBuckets are the request-latency histogram bounds in seconds. The
// low end resolves warm cache hits (tens of microseconds); the high end
// cold full-grid experiment solves.
var solveBuckets = []float64{1e-5, 1e-4, 0.001, 0.005, 0.025, 0.1, 0.25, 1, 2.5, 10}

// frameBuckets are the batch NDJSON frame write+flush latency bounds in
// seconds: a frame is one JSON marshal plus one flushed write, so the
// histogram is dominated by client backpressure, not solving.
var frameBuckets = []float64{1e-5, 1e-4, 1e-3, 0.01, 0.1, 1}

// solveOutcomes orders the outcome label values of the solve-duration
// histogram. Every outcome is pre-registered so all series appear from the
// first scrape, making absence-vs-zero unambiguous.
var solveOutcomes = []string{"hit", "miss", "coalesced", "error"}

// querySources pre-registers the source label values of pubopt_query_total:
// "surrogate" for answers served by the verified interpolating surrogate,
// "solve" for fallback kernel solves when the error bound does not hold.
var querySources = []string{"surrogate", "solve"}

// histogram is one fixed-bucket Prometheus histogram. Not self-locking:
// the owning metrics mutex guards it.
type histogram struct {
	buckets []float64 // upper bounds, ascending; +Inf is implicit
	counts  []uint64  // len(buckets)+1, last = +Inf overflow
	sum     float64
	total   uint64
}

func newHistogram(buckets []float64) *histogram {
	return &histogram{buckets: buckets, counts: make([]uint64, len(buckets)+1)}
}

func (h *histogram) observe(v float64) {
	h.counts[sort.SearchFloat64s(h.buckets, v)]++
	h.sum += v
	h.total++
}

func (h *histogram) clone() *histogram {
	return &histogram{
		buckets: h.buckets,
		counts:  append([]uint64(nil), h.counts...),
		sum:     h.sum,
		total:   h.total,
	}
}

// writeTo renders the histogram's series, appending labels (e.g.
// `outcome="hit"`) to every line's label set.
func (h *histogram) writeTo(w *strings.Builder, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, le := range h.buckets {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, le, cum)
	}
	cum += h.counts[len(h.buckets)]
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels != "" {
		fmt.Fprintf(w, "%s_sum{%s} %g\n%s_count{%s} %d\n", name, labels, h.sum, name, labels, cum)
	} else {
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.sum, name, cum)
	}
}

// metrics is a minimal dependency-free registry rendering the Prometheus
// text exposition format. It tracks what the service needs: request counts
// by route and status code, request-level solve latency split by cache
// outcome, batch frame write latency, and the number of solves in flight.
// Cache counters are read live from the store and solver-kernel counters
// from the server's obs.Counters sink at render time.
type metrics struct {
	mu       sync.Mutex
	requests map[string]map[int]uint64 // route pattern -> status code -> count
	solve    map[string]*histogram     // cache outcome -> request latency
	frames   *histogram                // batch NDJSON frame write+flush latency
	inFlight int64                     // solves currently executing
	simTicks uint64                    // dynamics ticks solved by /v1/simulate
	queries  map[string]uint64         // /v1/query answers by source
}

func newMetrics() *metrics {
	m := &metrics{
		requests: make(map[string]map[int]uint64),
		solve:    make(map[string]*histogram, len(solveOutcomes)),
		frames:   newHistogram(frameBuckets),
		queries:  make(map[string]uint64, len(querySources)),
	}
	for _, o := range solveOutcomes {
		m.solve[o] = newHistogram(solveBuckets)
	}
	for _, src := range querySources {
		m.queries[src] = 0
	}
	return m
}

func (m *metrics) observeRequest(route string, code int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode := m.requests[route]
	if byCode == nil {
		byCode = make(map[int]uint64)
		m.requests[route] = byCode
	}
	byCode[code]++
}

// observeSolve records one run request's latency under its cache outcome
// ("hit", "miss", "coalesced" or "error").
func (m *metrics) observeSolve(outcome string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.solve[outcome]
	if h == nil {
		h = newHistogram(solveBuckets)
		m.solve[outcome] = h
	}
	h.observe(seconds)
}

// observeSimTicks counts dynamics ticks actually solved (cache misses) by
// /v1/simulate; a fully warm replay adds zero.
func (m *metrics) observeSimTicks(n int) {
	m.mu.Lock()
	m.simTicks += uint64(n)
	m.mu.Unlock()
}

// observeQuery counts one /v1/query answer under its source ("surrogate"
// or "solve").
func (m *metrics) observeQuery(source string) {
	m.mu.Lock()
	m.queries[source]++
	m.mu.Unlock()
}

// observeFrame records one batch frame's write+flush latency.
func (m *metrics) observeFrame(seconds float64) {
	m.mu.Lock()
	m.frames.observe(seconds)
	m.mu.Unlock()
}

func (m *metrics) solveStarted() {
	m.mu.Lock()
	m.inFlight++
	m.mu.Unlock()
}

func (m *metrics) solveFinished() {
	m.mu.Lock()
	m.inFlight--
	m.mu.Unlock()
}

// renderSnapshot is the point-in-time copy render formats from: the mutex
// guards only the counter copy, never the formatting work, so a slow
// /metrics reader cannot stall request and solve accounting.
type renderSnapshot struct {
	requests map[string]map[int]uint64
	solve    map[string]*histogram
	frames   *histogram
	inFlight int64
	simTicks uint64
	queries  map[string]uint64
}

func (m *metrics) snapshot() renderSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := renderSnapshot{
		requests: make(map[string]map[int]uint64, len(m.requests)),
		solve:    make(map[string]*histogram, len(m.solve)),
		frames:   m.frames.clone(),
		inFlight: m.inFlight,
		simTicks: m.simTicks,
		queries:  make(map[string]uint64, len(m.queries)),
	}
	for src, n := range m.queries {
		snap.queries[src] = n
	}
	for r, byCode := range m.requests {
		cp := make(map[int]uint64, len(byCode))
		for c, n := range byCode {
			cp[c] = n
		}
		snap.requests[r] = cp
	}
	for o, h := range m.solve {
		snap.solve[o] = h.clone()
	}
	return snap
}

// render writes the full exposition: request counters, cache gauges and
// counters (from st), solver-kernel counters (from solver), the in-flight
// gauge, the outcome-labeled solve histogram, the batch frame histogram,
// build info, and uptime. It formats from a snapshot so no lock is held
// while writing.
func (m *metrics) render(w *strings.Builder, st cache.Stats, solver obs.SolveStats, refined obs.RefineStats, build obs.BuildInfo, recorded uint64, uptimeSeconds float64) {
	snap := m.snapshot()

	fmt.Fprintf(w, "# HELP pubopt_http_requests_total HTTP requests served, by route pattern and status code.\n")
	fmt.Fprintf(w, "# TYPE pubopt_http_requests_total counter\n")
	routes := make([]string, 0, len(snap.requests))
	for r := range snap.requests {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		codes := make([]int, 0, len(snap.requests[r]))
		for c := range snap.requests[r] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "pubopt_http_requests_total{route=%q,code=\"%d\"} %d\n", r, c, snap.requests[r][c])
		}
	}

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("pubopt_cache_hits_total", "Run requests served from the equilibrium cache.", st.Hits)
	counter("pubopt_cache_misses_total", "Run requests that executed a solve.", st.Misses)
	counter("pubopt_cache_coalesced_total", "Run requests deduplicated onto an in-flight identical solve.", st.Coalesced)
	counter("pubopt_cache_evictions_total", "Cache entries dropped by the LRU bound.", st.Evictions)
	gauge("pubopt_cache_entries", "Results currently cached.", float64(st.Entries))
	gauge("pubopt_cache_max_entries", "The cache's LRU bound (0 = caching disabled).", float64(st.MaxEntries))
	gauge("pubopt_runs_in_flight", "Solves currently executing.", float64(snap.inFlight))

	counter("pubopt_solver_solves_total", "Equilibrium kernel solves across all workers.", solver.Solves)
	counter("pubopt_solver_constrained_total", "Kernel solves in the congested (root-finding) regime.", solver.Constrained)
	counter("pubopt_solver_evals_total", "Aggregate-rate map evaluations (the unit of solver work).", solver.Evals)
	counter("pubopt_solver_warm_brackets_total", "Root searches bracketed from a warm-start level.", solver.WarmBrackets)
	counter("pubopt_solver_cold_brackets_total", "Root searches bracketed from the full level range.", solver.ColdBrackets)
	counter("pubopt_solver_bisections_total", "Safeguard bisection steps forced inside the hybrid root search.", solver.Bisections)
	counter("pubopt_solver_cycle_restarts_total", "Class-dynamics partition-cycle restarts (mover-cap halvings and indifference-band widenings).", solver.CycleRestarts)

	counter("pubopt_refine_points_solved_total", "Adaptive-refinement lattice points materialized by a kernel solve.", refined.PointsSolved)
	counter("pubopt_refine_points_reused_total", "Adaptive-refinement lattice and probe points served by the per-cell cache.", refined.PointsReused)
	counter("pubopt_refine_probe_solves_total", "Surrogate-verification probe points solved.", refined.ProbeSolves)
	counter("pubopt_refine_cells_split_total", "Refinement cells split into four children by curvature or indicator crossing.", refined.CellsSplit)
	counter("pubopt_refine_cells_interpolated_total", "Refinement leaves accepted by the interpolant screen alone (no center solve).", refined.CellsInterpolated)
	counter("pubopt_refine_cells_verified_total", "Refinement leaves accepted by a solved center point.", refined.CellsVerified)
	fmt.Fprintf(w, "# HELP pubopt_refine_leaf_depth_total Refinement leaves finalized, by depth below the seed grid.\n")
	fmt.Fprintf(w, "# TYPE pubopt_refine_leaf_depth_total counter\n")
	for d, n := range refined.LeafDepths {
		fmt.Fprintf(w, "pubopt_refine_leaf_depth_total{depth=\"%d\"} %d\n", d, n)
	}

	fmt.Fprintf(w, "# HELP pubopt_query_total Point queries answered by /v1/query, by source (surrogate = solve-free, solve = fallback kernel solve).\n")
	fmt.Fprintf(w, "# TYPE pubopt_query_total counter\n")
	sources := make([]string, 0, len(snap.queries))
	for src := range snap.queries {
		sources = append(sources, src)
	}
	sort.Strings(sources)
	for _, src := range sources {
		fmt.Fprintf(w, "pubopt_query_total{source=%q} %d\n", src, snap.queries[src])
	}

	counter("pubopt_events_recorded_total", "Flight-recorder events ever recorded (including overwritten ones).", recorded)

	counter("pubopt_sim_ticks_total", "Dynamics ticks solved by /v1/simulate (cache hits excluded).", snap.simTicks)

	fmt.Fprintf(w, "# HELP pubopt_solve_duration_seconds Run request latency by cache outcome (hit, miss, coalesced, error).\n")
	fmt.Fprintf(w, "# TYPE pubopt_solve_duration_seconds histogram\n")
	outcomes := make([]string, 0, len(snap.solve))
	for o := range snap.solve {
		outcomes = append(outcomes, o)
	}
	sort.Strings(outcomes)
	for _, o := range outcomes {
		snap.solve[o].writeTo(w, "pubopt_solve_duration_seconds", fmt.Sprintf("outcome=%q", o))
	}

	fmt.Fprintf(w, "# HELP pubopt_batch_frame_write_seconds Batch NDJSON frame serialize+write+flush latency.\n")
	fmt.Fprintf(w, "# TYPE pubopt_batch_frame_write_seconds histogram\n")
	snap.frames.writeTo(w, "pubopt_batch_frame_write_seconds", "")

	fmt.Fprintf(w, "# HELP pubopt_build_info Build metadata of the running binary; the value is always 1.\n")
	fmt.Fprintf(w, "# TYPE pubopt_build_info gauge\n")
	fmt.Fprintf(w, "pubopt_build_info{version=%q,go_version=%q,revision=%q,modified=\"%t\"} 1\n",
		build.Version, build.GoVersion, build.Revision, build.Modified)

	gauge("pubopt_uptime_seconds", "Seconds since the server started.", uptimeSeconds)
}
