package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/netecon-sim/publicoption/internal/cache"
)

// solveBuckets are the latency histogram bounds in seconds. Warm cache hits
// land well under the first bucket; cold full-grid experiment solves in the
// last ones.
var solveBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.25, 1, 2.5, 10}

// metrics is a minimal dependency-free registry rendering the Prometheus
// text exposition format. It tracks exactly what the service needs: request
// counts by route and status code, the solve-latency histogram, and the
// number of solves in flight; cache counters are read live from the store.
type metrics struct {
	mu       sync.Mutex
	requests map[string]map[int]uint64 // route pattern -> status code -> count
	counts   []uint64                  // histogram bucket counts (len(solveBuckets)+1, last = +Inf)
	sum      float64                   // histogram sum of observations (seconds)
	total    uint64                    // histogram observation count
	inFlight int64                     // solves currently executing
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]map[int]uint64),
		counts:   make([]uint64, len(solveBuckets)+1),
	}
}

func (m *metrics) observeRequest(route string, code int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode := m.requests[route]
	if byCode == nil {
		byCode = make(map[int]uint64)
		m.requests[route] = byCode
	}
	byCode[code]++
}

func (m *metrics) observeSolve(seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	i := sort.SearchFloat64s(solveBuckets, seconds)
	m.counts[i]++
	m.sum += seconds
	m.total++
}

func (m *metrics) solveStarted() {
	m.mu.Lock()
	m.inFlight++
	m.mu.Unlock()
}

func (m *metrics) solveFinished() {
	m.mu.Lock()
	m.inFlight--
	m.mu.Unlock()
}

// renderSnapshot is the point-in-time copy render formats from: the mutex
// guards only the counter copy, never the formatting work, so a slow
// /metrics reader cannot stall request and solve accounting.
type renderSnapshot struct {
	requests map[string]map[int]uint64
	counts   []uint64
	sum      float64
	total    uint64
	inFlight int64
}

func (m *metrics) snapshot() renderSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := renderSnapshot{
		requests: make(map[string]map[int]uint64, len(m.requests)),
		counts:   append([]uint64(nil), m.counts...),
		sum:      m.sum,
		total:    m.total,
		inFlight: m.inFlight,
	}
	for r, byCode := range m.requests {
		cp := make(map[int]uint64, len(byCode))
		for c, n := range byCode {
			cp[c] = n
		}
		snap.requests[r] = cp
	}
	return snap
}

// render writes the full exposition: request counters, cache gauges and
// counters (from st), the in-flight gauge, the solve histogram, and uptime.
// It formats from a snapshot so no lock is held while writing.
func (m *metrics) render(w *strings.Builder, st cache.Stats, uptimeSeconds float64) {
	snap := m.snapshot()

	fmt.Fprintf(w, "# HELP pubopt_http_requests_total HTTP requests served, by route pattern and status code.\n")
	fmt.Fprintf(w, "# TYPE pubopt_http_requests_total counter\n")
	routes := make([]string, 0, len(snap.requests))
	for r := range snap.requests {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		codes := make([]int, 0, len(snap.requests[r]))
		for c := range snap.requests[r] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "pubopt_http_requests_total{route=%q,code=\"%d\"} %d\n", r, c, snap.requests[r][c])
		}
	}

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("pubopt_cache_hits_total", "Run requests served from the equilibrium cache.", st.Hits)
	counter("pubopt_cache_misses_total", "Run requests that executed a solve.", st.Misses)
	counter("pubopt_cache_coalesced_total", "Run requests deduplicated onto an in-flight identical solve.", st.Coalesced)
	counter("pubopt_cache_evictions_total", "Cache entries dropped by the LRU bound.", st.Evictions)
	gauge("pubopt_cache_entries", "Results currently cached.", float64(st.Entries))
	gauge("pubopt_cache_max_entries", "The cache's LRU bound (0 = caching disabled).", float64(st.MaxEntries))
	gauge("pubopt_runs_in_flight", "Solves currently executing.", float64(snap.inFlight))

	fmt.Fprintf(w, "# HELP pubopt_solve_duration_seconds Latency of cache-miss solves (cold equilibrium computations).\n")
	fmt.Fprintf(w, "# TYPE pubopt_solve_duration_seconds histogram\n")
	var cum uint64
	for i, le := range solveBuckets {
		cum += snap.counts[i]
		fmt.Fprintf(w, "pubopt_solve_duration_seconds_bucket{le=\"%g\"} %d\n", le, cum)
	}
	cum += snap.counts[len(solveBuckets)]
	fmt.Fprintf(w, "pubopt_solve_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "pubopt_solve_duration_seconds_sum %g\n", snap.sum)
	fmt.Fprintf(w, "pubopt_solve_duration_seconds_count %d\n", snap.total)

	gauge("pubopt_uptime_seconds", "Seconds since the server started.", uptimeSeconds)
}
