package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"github.com/netecon-sim/publicoption/internal/obs"
	"github.com/netecon-sim/publicoption/internal/scenario"
	"github.com/netecon-sim/publicoption/internal/sweep"
)

// syncBuffer is a goroutine-safe log sink; handlers log from request
// goroutines while tests read.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// logLines parses a JSON-format log buffer into one map per line.
func logLines(t *testing.T, buf *syncBuffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

// TestPanicRecovery: a panicking handler answers 500 with the trace ID in
// the body, logs the panic with that trace ID, and counts under code 500 —
// instead of killing the connection with no record. The panic is planted in
// a test-only route because real solve panics are already converted to
// errors one layer down, inside the cache (see TestSolvePanicBecomesError).
func TestPanicRecovery(t *testing.T) {
	var logBuf syncBuffer
	logger, err := obs.NewLogger(&logBuf, 0, obs.LogJSON)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Logger: logger})
	s.handle("GET /boom", func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	})

	w := do(t, s, "GET", "/boom", "")
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d, want 500", w.Code)
	}
	trace := w.Header().Get("X-Trace-Id")
	if trace == "" {
		t.Fatal("panic response missing X-Trace-Id")
	}
	if !strings.Contains(w.Body.String(), trace) {
		t.Fatalf("500 body %q does not carry trace %s for correlation", w.Body.String(), trace)
	}

	var panicLine map[string]any
	for _, rec := range logLines(t, &logBuf) {
		if rec["msg"] == "handler panicked" {
			panicLine = rec
		}
	}
	if panicLine == nil {
		t.Fatalf("no \"handler panicked\" log line in:\n%s", logBuf.String())
	}
	if panicLine["trace"] != trace {
		t.Fatalf("panic log trace = %v, want %s", panicLine["trace"], trace)
	}
	if p, _ := panicLine["panic"].(string); !strings.Contains(p, "handler exploded") {
		t.Fatalf("panic log lacks the panic value: %v", panicLine)
	}

	metrics := do(t, s, "GET", "/metrics", "").Body.String()
	if !strings.Contains(metrics, `pubopt_http_requests_total{route="GET /boom",code="500"} 1`) {
		t.Fatal("panicked request not counted under code 500")
	}
}

// TestSolvePanicBecomesError: a panic inside the solve itself is caught by
// the cache layer, answered as a 500 solve-failed error, recorded as an
// "error" event, and logged at warn — the middleware's recovery is the
// backstop, not the primary path.
func TestSolvePanicBecomesError(t *testing.T) {
	var logBuf syncBuffer
	logger, err := obs.NewLogger(&logBuf, 0, obs.LogJSON)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Logger: logger})
	s.runScenario = func(sc *scenario.Scenario, workers int, stats *obs.Counters) ([]*sweep.Table, error) {
		panic("solver exploded")
	}
	w := do(t, s, "POST", "/v1/runs", `{"scenario": "neutral-baseline"}`)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("solve panic answered %d, want 500", w.Code)
	}
	er := decode[eventsResponse](t, do(t, s, "GET", "/debug/events", ""))
	if len(er.Events) != 1 || er.Events[0].Outcome != "error" || !strings.Contains(er.Events[0].Error, "solver exploded") {
		t.Fatalf("solve panic not flight-recorded as an error event: %+v", er.Events)
	}
	found := false
	for _, rec := range logLines(t, &logBuf) {
		if rec["msg"] == "solve failed" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no \"solve failed\" warn line in:\n%s", logBuf.String())
	}
}

// TestTraceEcho: with Options.Trace the run response body carries the same
// trace ID as the X-Trace-Id header; without it the body stays clean but the
// header remains.
func TestTraceEcho(t *testing.T) {
	s, _ := newStubServer(Options{Trace: true})
	w := do(t, s, "POST", "/v1/runs", `{"scenario": "neutral-baseline"}`)
	resp := decode[RunResponse](t, w)
	if resp.Trace == "" || resp.Trace != w.Header().Get("X-Trace-Id") {
		t.Fatalf("body trace %q != header trace %q", resp.Trace, w.Header().Get("X-Trace-Id"))
	}

	plain, _ := newStubServer(Options{})
	w = do(t, plain, "POST", "/v1/runs", `{"scenario": "neutral-baseline"}`)
	if resp := decode[RunResponse](t, w); resp.Trace != "" {
		t.Fatalf("trace echoed without Options.Trace: %q", resp.Trace)
	}
	if w.Header().Get("X-Trace-Id") == "" {
		t.Fatal("X-Trace-Id header must be set regardless of Options.Trace")
	}
}

// eventsResponse mirrors the GET /debug/events body.
type eventsResponse struct {
	Capacity int         `json:"capacity"`
	Recorded uint64      `json:"recorded"`
	Events   []obs.Event `json:"events"`
}

// TestFlightRecorder: solved and cached runs land in /debug/events with
// their outcome, kind and trace ID, oldest first.
func TestFlightRecorder(t *testing.T) {
	s, _ := newStubServer(Options{FlightEvents: 8})
	first := do(t, s, "POST", "/v1/runs", `{"scenario": "neutral-baseline"}`)
	do(t, s, "POST", "/v1/runs", `{"scenario": "neutral-baseline"}`)

	er := decode[eventsResponse](t, do(t, s, "GET", "/debug/events", ""))
	if er.Capacity != 8 || er.Recorded != 2 || len(er.Events) != 2 {
		t.Fatalf("recorder state cap=%d recorded=%d events=%d, want 8/2/2",
			er.Capacity, er.Recorded, len(er.Events))
	}
	miss, hit := er.Events[0], er.Events[1]
	if miss.Kind != "run" || miss.Outcome != "miss" || miss.Name != "neutral-baseline" {
		t.Fatalf("first event = %+v, want a neutral-baseline run miss", miss)
	}
	if hit.Outcome != "hit" {
		t.Fatalf("second event outcome = %q, want hit (cached replay)", hit.Outcome)
	}
	if miss.Trace != first.Header().Get("X-Trace-Id") {
		t.Fatalf("event trace %q != request trace %q", miss.Trace, first.Header().Get("X-Trace-Id"))
	}
	if miss.Key == "" || miss.DurationMS < 0 {
		t.Fatalf("event lacks key or duration: %+v", miss)
	}
}

// TestFlightRecorderDisabled: negative FlightEvents turns the recorder off;
// /debug/events still answers, reporting zero capacity.
func TestFlightRecorderDisabled(t *testing.T) {
	s, _ := newStubServer(Options{FlightEvents: -1})
	do(t, s, "POST", "/v1/runs", `{"scenario": "neutral-baseline"}`)
	er := decode[eventsResponse](t, do(t, s, "GET", "/debug/events", ""))
	if er.Capacity != 0 || er.Recorded != 0 || len(er.Events) != 0 {
		t.Fatalf("disabled recorder reported cap=%d recorded=%d events=%d",
			er.Capacity, er.Recorded, len(er.Events))
	}
}

// TestFlightRecorderWrap: the ring keeps only the last N events, oldest
// first, while the recorded total keeps counting.
func TestFlightRecorderWrap(t *testing.T) {
	s, _ := newStubServer(Options{FlightEvents: 3})
	for i := 0; i < 5; i++ {
		// Distinct inline scenarios: each is a fresh miss, a fresh event.
		body := fmt.Sprintf(`{"scenario_json": {
			"name": "wrap-%d",
			"title": "wrap",
			"population": {"kind": "archetypes"},
			"providers": [{"name": "neutral", "gamma": 1}],
			"sweep": {"axis": "nu", "values": [%d]}
		}}`, i, 1000+i)
		if w := do(t, s, "POST", "/v1/runs", body); w.Code != http.StatusOK {
			t.Fatalf("run %d failed: %d %s", i, w.Code, w.Body.String())
		}
	}
	er := decode[eventsResponse](t, do(t, s, "GET", "/debug/events", ""))
	if er.Recorded != 5 || len(er.Events) != 3 {
		t.Fatalf("after 5 events: recorded=%d kept=%d, want 5 kept 3", er.Recorded, len(er.Events))
	}
	if er.Events[0].Name != "wrap-2" || er.Events[2].Name != "wrap-4" {
		t.Fatalf("ring kept %q..%q, want wrap-2..wrap-4 oldest first",
			er.Events[0].Name, er.Events[2].Name)
	}
}

// TestSolveLogLine: a cold solve emits one info-level "solved" line whose
// trace matches the response header.
func TestSolveLogLine(t *testing.T) {
	var logBuf syncBuffer
	logger, err := obs.NewLogger(&logBuf, 0, obs.LogJSON)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Logger: logger})
	s.runScenario = func(sc *scenario.Scenario, workers int, stats *obs.Counters) ([]*sweep.Table, error) {
		return stubTables(), nil
	}
	w := do(t, s, "POST", "/v1/runs", `{"scenario": "neutral-baseline"}`)
	do(t, s, "POST", "/v1/runs", `{"scenario": "neutral-baseline"}`) // hit: no line

	var solved []map[string]any
	for _, rec := range logLines(t, &logBuf) {
		if rec["msg"] == "solved" {
			solved = append(solved, rec)
		}
	}
	if len(solved) != 1 {
		t.Fatalf("got %d \"solved\" lines, want exactly 1 (hits are silent)", len(solved))
	}
	if solved[0]["trace"] != w.Header().Get("X-Trace-Id") {
		t.Fatalf("solved line trace %v != header %q", solved[0]["trace"], w.Header().Get("X-Trace-Id"))
	}
}
