package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"github.com/netecon-sim/publicoption/internal/cache"
	"github.com/netecon-sim/publicoption/internal/obs"
	"github.com/netecon-sim/publicoption/internal/scenario"
	"github.com/netecon-sim/publicoption/internal/sweep"
)

// POST /v1/batch — the streaming batch runner. One request solves either a
// list of named/inline scenarios or one 2-D grid scenario, and the response
// is NDJSON (application/x-ndjson): one frame per result, written and
// flushed as each completes, so a client watching a 30-minute grid sees
// cells arrive instead of a silent connection.
//
// Grid requests are cached cell-by-cell: every cell's content address
// (scenario.CellSpec — population, providers, axes, resolved coordinates,
// metrics; nothing cosmetic) is probed first, hits stream immediately, and
// only the missing cells are solved — grouped by row so the warm-started
// column sweep survives the cache holes. Re-running a grid after a small
// edit therefore re-solves only the cells whose physics changed, and
// re-running it unchanged solves zero.
//
// See docs/SERVICE.md for the full frame-by-frame contract.

// maxBatchScenarios bounds the scenario-list mode; a larger batch is better
// expressed as several requests (the cache makes re-submission free).
const maxBatchScenarios = 100

// batchRequest is the body of POST /v1/batch. Exactly one mode must be
// set: Scenarios (list mode) or Grid/GridJSON (grid mode).
type batchRequest struct {
	// Scenarios lists what to run: each element is either a JSON string
	// (a registered scenario name) or a JSON object (an inline scenario
	// definition, the docs/SCENARIOS.md schema).
	Scenarios []json.RawMessage `json:"scenarios,omitempty"`
	// Grid names a registered 2-D grid scenario; GridJSON inlines one.
	Grid     string          `json:"grid,omitempty"`
	GridJSON json.RawMessage `json:"grid_json,omitempty"`
	// Refine switches grid mode to adaptive refinement: instead of solving
	// every cell, the scenario's seed grid is refined where the surface
	// bends (internal/refine) and the stream carries lattice points and
	// leaf cells instead of dense cells. The resulting surrogate is cached,
	// warming GET /v1/query.
	Refine bool `json:"refine,omitempty"`
	// Workers overrides the solve's internal parallelism. Execution-only:
	// it does not participate in any cache key.
	Workers int `json:"workers,omitempty"`
}

// scenarioFrame is one completed scenario in list mode.
type scenarioFrame struct {
	Index int `json:"index"`
	RunResponse
}

// errorFrame reports one failed unit without tearing down the stream:
// list-mode scenario failures carry their index and the stream continues;
// grid-mode failures are terminal (the final done frame never arrives).
type errorFrame struct {
	Index *int   `json:"index,omitempty"`
	Error string `json:"error"`
}

// gridHeaderFrame opens a grid-mode stream with the resolved geometry, so
// clients can allocate before any cell arrives.
type gridHeaderFrame struct {
	Grid gridInfo `json:"grid"`
}

type gridInfo struct {
	Name   string    `json:"name"`
	Title  string    `json:"title"`
	XAxis  string    `json:"x_axis"`
	YAxis  string    `json:"y_axis"`
	Xs     []float64 `json:"xs"`
	Ys     []float64 `json:"ys"`
	Layers []string  `json:"layers"`
	Cells  int       `json:"cells"`
	// Refine marks a refined stream: Xs/Ys are the seed grid, Cells counts
	// seed cells, and the frames that follow are points and leaves, not
	// dense cells.
	Refine bool `json:"refine,omitempty"`
}

// cellFrame is one solved or cache-served grid cell. Trace carries the
// request's trace ID when the server runs with Options.Trace.
type cellFrame struct {
	Cell  scenario.Cell `json:"cell"`
	Cache string        `json:"cache"` // "hit" or "miss"
	Trace string        `json:"trace,omitempty"`
}

// listDoneFrame closes a list-mode stream.
type listDoneFrame struct {
	Done      bool    `json:"done"`
	Results   int     `json:"results"`
	Errors    int     `json:"errors"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// gridDoneFrame closes a grid-mode stream. Solved is 0 on a fully warm
// re-run — the number CI asserts on.
type gridDoneFrame struct {
	Done      bool    `json:"done"`
	Cells     int     `json:"cells"`
	Solved    int     `json:"solved"`
	CacheHits int     `json:"cache_hits"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// ndjsonWriter serializes frames to the response, one JSON object per
// line, flushing after every frame so results stream instead of buffering.
// Each frame's serialize+write+flush time feeds the
// pubopt_batch_frame_write_seconds histogram (nil metrics skips it).
type ndjsonWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher
	metrics *metrics
	started bool
}

func newNDJSONWriter(w http.ResponseWriter, m *metrics) *ndjsonWriter {
	flusher, _ := w.(http.Flusher)
	return &ndjsonWriter{w: w, flusher: flusher, metrics: m}
}

// frame writes one NDJSON frame. The first frame commits the 200 status
// and the x-ndjson content type; errors after that point must travel as
// error frames, not status codes.
func (nw *ndjsonWriter) frame(v any) error {
	start := time.Now()
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("serializing frame: %w", err)
	}
	if !nw.started {
		nw.w.Header().Set("Content-Type", "application/x-ndjson")
		nw.w.WriteHeader(http.StatusOK)
		nw.started = true
	}
	if _, err := nw.w.Write(append(b, '\n')); err != nil {
		return err
	}
	if nw.flusher != nil {
		nw.flusher.Flush()
	}
	if nw.metrics != nil {
		nw.metrics.observeFrame(time.Since(start).Seconds())
	}
	return nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeJSONBody(w, r, &req, false); err != nil {
		writeError(w, bodyErrorStatus(err), "%v", err)
		return
	}
	listMode := len(req.Scenarios) > 0
	gridMode := req.Grid != "" || len(req.GridJSON) > 0
	if listMode == gridMode {
		writeError(w, http.StatusBadRequest, "give exactly one of \"scenarios\" (a list of names or inline definitions) or \"grid\"/\"grid_json\" (one 2-D grid scenario)")
		return
	}
	if req.Grid != "" && len(req.GridJSON) > 0 {
		writeError(w, http.StatusBadRequest, "give only one of \"grid\" (a registered name) or \"grid_json\" (an inline definition)")
		return
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.solveWorkers
	}
	if listMode {
		if req.Refine {
			writeError(w, http.StatusBadRequest, "\"refine\" applies to grid mode only")
			return
		}
		s.batchScenarios(w, r, req.Scenarios, workers)
		return
	}
	if req.Refine {
		s.batchGridRefined(w, r, &req, workers)
		return
	}
	s.batchGrid(w, r, &req, workers)
}

// ---------------------------------------------------------------------------
// List mode.

// batchScenarios solves each listed scenario through the same cache path as
// POST /v1/runs, streaming one frame per completion in request order. A bad
// element (unknown name, invalid inline definition, failed solve) becomes
// an error frame carrying its index; the rest of the batch continues.
func (s *Server) batchScenarios(w http.ResponseWriter, r *http.Request, list []json.RawMessage, workers int) {
	if len(list) > maxBatchScenarios {
		writeError(w, http.StatusRequestEntityTooLarge, "batch lists at most %d scenarios, got %d", maxBatchScenarios, len(list))
		return
	}
	nw := newNDJSONWriter(w, s.metrics)
	start := time.Now()
	results, errs := 0, 0
	for i := range list {
		if r.Context().Err() != nil {
			return // client went away; stop solving
		}
		i := i
		frame := s.solveBatchEntry(r, i, list[i], workers)
		if ef, isErr := frame.(*errorFrame); isErr {
			errs++
			s.logger.Warn("batch entry failed",
				"index", i, "trace", obs.TraceID(r.Context()), "error", ef.Error)
		} else {
			results++
		}
		if err := nw.frame(frame); err != nil {
			return // mid-stream write failure: the client is gone
		}
	}
	//pubopt:allow(streamcheck): terminal summary frame; the stream ends either way and there is nothing left to abort
	nw.frame(&listDoneFrame{
		Done: true, Results: results, Errors: errs,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1e3,
	})
}

// solveBatchEntry resolves one list element (name or inline definition) and
// solves it through the cache, returning the frame to stream. Each entry is
// metered and flight-recorded like a standalone run, under the batch
// request's trace ID.
func (s *Server) solveBatchEntry(r *http.Request, index int, raw json.RawMessage, workers int) any {
	errf := func(format string, args ...any) *errorFrame {
		return &errorFrame{Index: &index, Error: fmt.Sprintf(format, args...)}
	}
	var key string
	var getScenario func() (*scenario.Scenario, error)
	var name string
	if err := json.Unmarshal(raw, &name); err == nil {
		k, ok := s.scenarioKeys[name]
		if !ok {
			return errf("unknown scenario %q", name)
		}
		key = k
		getScenario = func() (*scenario.Scenario, error) {
			sc, ok := scenario.Get(name)
			if !ok {
				return nil, fmt.Errorf("scenario %q vanished from the registry", name)
			}
			return sc, nil
		}
	} else {
		sc, err := scenario.Load(strings.NewReader(string(raw)))
		if err != nil {
			return errf("%v", err)
		}
		canon, err := sc.CanonicalJSON()
		if err != nil {
			return errf("serializing scenario: %v", err)
		}
		key, err = cache.Key("run/scenario/v1", json.RawMessage(canon))
		if err != nil {
			return errf("%v", err)
		}
		getScenario = func() (*scenario.Scenario, error) { return sc, nil }
		name = sc.Name
	}

	reqStart := time.Now()
	// delta is only written when the solve closure runs, and DoContext runs
	// it in this goroutine (coalesced callers never execute it), so no lock.
	var delta obs.SolveStats
	val, status, err := s.store.DoContext(r.Context(), key, func() (any, error) {
		s.metrics.solveStarted()
		defer s.metrics.solveFinished()
		var sink obs.Counters
		sc, err := getScenario()
		if err != nil {
			return nil, err
		}
		if sc.IsGrid() {
			return nil, fmt.Errorf("scenario %q is a 2-D grid; submit it via the \"grid\" field", sc.Name)
		}
		if sc.IsDynamic() {
			return nil, fmt.Errorf("scenario %q is a dynamics simulation; stream it via POST /v1/simulate", sc.Name)
		}
		tables, err := s.runScenario(sc, workers, &sink)
		delta = sink.Snapshot()
		s.counters.Add(delta)
		if err != nil {
			return nil, err
		}
		return &RunResult{Kind: "scenario", Name: sc.Name, Title: sc.Title, Tables: tablesToWire(tables)}, nil
	})
	elapsed := time.Since(reqStart)
	outcome := status.String()
	if err != nil {
		outcome = "error"
	}
	s.metrics.observeSolve(outcome, elapsed.Seconds())
	ev := obs.Event{
		Time: time.Now(), Trace: obs.TraceID(r.Context()), Kind: "run",
		Name: name, Key: shortKey(key), Outcome: outcome,
		DurationMS: float64(elapsed.Microseconds()) / 1e3,
		Solver:     delta,
	}
	if err != nil {
		ev.Error = err.Error()
		s.recorder.Record(ev)
		return errf("solve failed: %v", err)
	}
	s.recorder.Record(ev)
	resp := RunResponse{
		RunResult: *val.(*RunResult),
		Cache:     status.String(),
		ElapsedMS: float64(elapsed.Microseconds()) / 1e3,
	}
	if s.trace {
		resp.Trace = obs.TraceID(r.Context())
	}
	return &scenarioFrame{Index: index, RunResponse: resp}
}

// ---------------------------------------------------------------------------
// Grid mode.

// solvedCell pairs a solved cell with its cache key so the streaming loop
// can insert it as it emits the frame.
type solvedCell struct {
	cell scenario.Cell
	key  string
}

// batchGrid streams a grid scenario cell by cell: header frame, cached
// cells first (they cost one map probe each), then solved cells in
// completion order, then the summary. Solving distributes rows across
// workers by work stealing with one warm-started solver per worker, and
// only rows with at least one missing cell are visited.
func (s *Server) batchGrid(w http.ResponseWriter, r *http.Request, req *batchRequest, workers int) {
	sc, errStatus, err := s.resolveGridScenario(req.Grid, req.GridJSON)
	if err != nil {
		writeError(w, errStatus, "%v", err)
		return
	}
	job, err := sc.CompileGrid()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Content-address every cell up front; the key layout is row-major.
	keys := make([]string, job.Cells())
	cols := len(job.Xs)
	for row := 0; row < len(job.Ys); row++ {
		for col := 0; col < cols; col++ {
			k, err := cache.Key("batch/cell/v1", job.CellSpec(row, col))
			if err != nil {
				writeError(w, http.StatusInternalServerError, "hashing cell (%d,%d): %v", row, col, err)
				return
			}
			keys[row*cols+col] = k
		}
	}

	nw := newNDJSONWriter(w, s.metrics)
	start := time.Now()
	trace := obs.TraceID(r.Context())
	frameTrace := ""
	if s.trace {
		frameTrace = trace
	}
	if err := nw.frame(&gridHeaderFrame{Grid: gridInfo{
		Name: sc.Name, Title: sc.Title,
		XAxis: job.XAxis, YAxis: job.YAxis,
		Xs: job.Xs, Ys: job.Ys, Layers: job.Layers, Cells: job.Cells(),
	}}); err != nil {
		return
	}

	// Probe phase: stream hits immediately, collect misses per row.
	hits := 0
	missing := make(map[int][]int) // row -> missing columns, ascending
	var missRows []int
	for row := 0; row < len(job.Ys); row++ {
		for col := 0; col < cols; col++ {
			if r.Context().Err() != nil {
				return // client gone mid-probe: stop streaming cached cells
			}
			val, ok := s.store.Lookup(keys[row*cols+col])
			if !ok {
				if len(missing[row]) == 0 {
					missRows = append(missRows, row)
				}
				missing[row] = append(missing[row], col)
				continue
			}
			hits++
			// The cached Cell carries the row/col of whichever grid solved
			// it first; its content address covers only physics, so a
			// resized or reordered grid can hit cells whose stored indices
			// no longer match. Re-anchor to this request's geometry before
			// streaming.
			cell := val.(scenario.Cell)
			cell.Row, cell.Col = row, col
			if err := nw.frame(&cellFrame{Cell: cell, Cache: cache.Hit.String(), Trace: frameTrace}); err != nil {
				return
			}
		}
	}

	// Solve phase: only rows with holes, warm-started along each row. The
	// stopped flag aborts promptly when the client disconnects — workers
	// poll it per cell, so at most one in-flight cell per worker completes
	// after cancellation.
	solved := 0
	// gridDelta collects the solve workers' kernel telemetry; zero when the
	// grid was fully cached.
	var gridDelta obs.SolveStats
	if len(missRows) > 0 {
		if workers > len(missRows) {
			workers = len(missRows)
		}
		var stopped atomic.Bool
		cellCh := make(chan solvedCell, cols)
		solveErr := make(chan error, 1)
		// gridDelta is written before the goroutine body returns, which
		// happens-before the deferred close(cellCh), which happens-before the
		// stream loop observing the closed channel — so reading it after the
		// loop is safe without a lock.
		ctx := r.Context()
		go func() {
			defer close(cellCh)
			defer func() {
				if p := recover(); p != nil {
					select {
					case solveErr <- fmt.Errorf("grid solve panicked: %v", p):
					default:
					}
				}
			}()
			// A grid solve occupies one worker-pool slot, like any pooled
			// solve: its internal row parallelism plays the role of a
			// solve's per-solve parallelism, so concurrent cold grids queue
			// instead of oversubscribing the CPU. A client that vanishes
			// while queued gives its slot wait up via the request context.
			release, err := s.store.ReserveContext(ctx)
			if err != nil {
				return
			}
			defer release()
			s.metrics.solveStarted()
			defer s.metrics.solveFinished()
			state := make([]*scenario.GridWorker, workers)
			sweep.RunRowsContext(ctx, workers, len(missRows), func(worker, ri int) {
				if state[worker] == nil {
					state[worker] = job.NewWorker()
				}
				row := missRows[ri]
				for _, col := range missing[row] {
					if stopped.Load() {
						return
					}
					cell := state[worker].SolveCell(row, col)
					cellCh <- solvedCell{cell: cell, key: keys[row*cols+col]}
				}
			})
			for _, gw := range state {
				if gw != nil {
					gridDelta.Accumulate(gw.Stats())
				}
			}
			s.counters.Add(gridDelta)
		}()

	stream:
		for {
			select {
			case c, ok := <-cellCh:
				if !ok {
					break stream
				}
				s.store.Put(c.key, c.cell)
				solved++
				s.recorder.Record(obs.Event{
					Time: time.Now(), Trace: trace, Kind: "cell", Name: sc.Name,
					Key: shortKey(c.key), Outcome: cache.Miss.String(),
				})
				if err := nw.frame(&cellFrame{Cell: c.cell, Cache: cache.Miss.String(), Trace: frameTrace}); err != nil {
					stopped.Store(true)
				}
			case <-ctx.Done():
				stopped.Store(true)
				// Drain so the workers can finish their in-flight cells and
				// the goroutine exits; solved-but-unstreamed cells still
				// enter the cache — the work is not wasted.
				for c := range cellCh {
					s.store.Put(c.key, c.cell)
					solved++
				}
				break stream
			}
		}
		select {
		case err := <-solveErr:
			s.logger.Error("batch grid failed", "grid", sc.Name, "trace", trace, "error", err)
			s.recorder.Record(obs.Event{
				Time: time.Now(), Trace: trace, Kind: "grid", Name: sc.Name,
				Outcome: "error", Error: err.Error(),
				DurationMS: float64(time.Since(start).Microseconds()) / 1e3,
			})
			s.metrics.observeSolve("error", time.Since(start).Seconds())
			//pubopt:allow(streamcheck): terminal error frame right before return; the stream is over regardless
			nw.frame(&errorFrame{Error: err.Error()})
			return
		default:
		}
		if r.Context().Err() != nil {
			return // client gone: no summary frame
		}
	}

	elapsed := time.Since(start)
	// The whole grid request is one solve-duration observation: "miss" if
	// anything was solved, "hit" for a fully warm replay.
	outcome := cache.Miss.String()
	if solved == 0 {
		outcome = cache.Hit.String()
	}
	s.metrics.observeSolve(outcome, elapsed.Seconds())
	s.recorder.Record(obs.Event{
		Time: time.Now(), Trace: trace, Kind: "grid", Name: sc.Name,
		Outcome: outcome, DurationMS: float64(elapsed.Microseconds()) / 1e3,
		Solver: gridDelta,
	})
	s.logger.Info("batch grid served",
		"grid", sc.Name, "cells", job.Cells(), "solved", solved, "cached", hits,
		"elapsed_s", elapsed.Seconds(), "solves", gridDelta.Solves,
		"evals", gridDelta.Evals, "trace", trace)
	//pubopt:allow(streamcheck): terminal summary frame; the stream ends either way and there is nothing left to abort
	nw.frame(&gridDoneFrame{
		Done: true, Cells: job.Cells(), Solved: solved, CacheHits: hits,
		ElapsedMS: float64(elapsed.Microseconds()) / 1e3,
	})
}

// resolveGridScenario materializes a grid scenario from its registered name
// or inline JSON, enforcing that it actually declares a grid. Shared by the
// batch grid modes and /v1/query.
func (s *Server) resolveGridScenario(name string, raw json.RawMessage) (*scenario.Scenario, int, error) {
	var sc *scenario.Scenario
	if name != "" {
		got, ok := s.scenarios[name]
		if !ok {
			return nil, http.StatusNotFound, fmt.Errorf("unknown scenario %q", name)
		}
		sc = got
	} else {
		got, err := scenario.Load(strings.NewReader(string(raw)))
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		sc = got
	}
	if sc.IsDynamic() {
		return nil, http.StatusBadRequest, fmt.Errorf("scenario %q is a dynamics simulation; stream it via POST /v1/simulate", sc.Name)
	}
	if !sc.IsGrid() {
		return nil, http.StatusBadRequest, fmt.Errorf("scenario %q declares a 1-D sweep; use \"scenarios\" for it or add a sweep.grid axis", sc.Name)
	}
	return sc, 0, nil
}
