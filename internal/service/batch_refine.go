package service

import (
	"errors"
	"net/http"
	"time"

	"github.com/netecon-sim/publicoption/internal/cache"
	"github.com/netecon-sim/publicoption/internal/obs"
	"github.com/netecon-sim/publicoption/internal/refine"
)

// POST /v1/batch with "refine": true — the adaptive-refinement stream. The
// grid's declared axes seed a refinement run (internal/refine): the stream
// opens with the seed geometry, then carries every materialized lattice
// point and every finalized leaf cell as they are merged (deterministic
// order, any worker count), and closes with the refinement telemetry and
// the surrogate's verified error bound. The finished surrogate is cached
// under the scenario's content address, so a subsequent GET /v1/query on
// the same grid answers without solving; lattice points ride the same
// per-cell equilibrium cache as dense batch cells.

// pointFrame is one materialized lattice point of a refined stream.
type pointFrame struct {
	Point refinePoint `json:"point"`
	// Cache is "hit" for points served by the per-cell cache, "miss" for
	// points the run solved.
	Cache string `json:"cache"`
	Trace string `json:"trace,omitempty"`
}

type refinePoint struct {
	X      float64            `json:"x"`
	Y      float64            `json:"y"`
	Values map[string]float64 `json:"values"`
}

// leafFrame is one finalized leaf cell: the surrogate's bilinear patch over
// [X0,X1]×[Y0,Y1], refined Depth levels below the seed grid. Screened
// leaves were accepted by the cheap interpolant screen (no center solve).
type leafFrame struct {
	Leaf refineLeaf `json:"leaf"`
}

type refineLeaf struct {
	X0       float64 `json:"x0"`
	Y0       float64 `json:"y0"`
	X1       float64 `json:"x1"`
	Y1       float64 `json:"y1"`
	Depth    int     `json:"depth"`
	Screened bool    `json:"screened,omitempty"`
}

// refineDoneFrame closes a refined stream. Refine carries the run's full
// telemetry (points solved vs reused, splits, leaf-depth histogram);
// Verified/MaxError/Tolerance state the surrogate's error contract.
type refineDoneFrame struct {
	Done bool `json:"done"`
	// FineXs × FineYs is the virtual fine-lattice resolution the refined
	// surface resolves — the dense grid it replaces.
	FineXs    int             `json:"fine_xs"`
	FineYs    int             `json:"fine_ys"`
	Verified  bool            `json:"verified"`
	MaxError  float64         `json:"max_error"`
	Tolerance float64         `json:"tolerance"`
	Refine    obs.RefineStats `json:"refine"`
	ElapsedMS float64         `json:"elapsed_ms"`
}

// errClientGone marks a mid-stream write failure: the client disconnected,
// so the refinement run is aborted without logging an error.
var errClientGone = errors.New("client disconnected mid-stream")

// batchGridRefined streams an adaptive-refinement run of a grid scenario.
// Unlike the dense path, frames are emitted straight from the engine's
// sequential merge on this goroutine — the engine's own worker pool solves
// rows in parallel underneath.
func (s *Server) batchGridRefined(w http.ResponseWriter, r *http.Request, req *batchRequest, workers int) {
	sc, errStatus, err := s.resolveGridScenario(req.Grid, req.GridJSON)
	if err != nil {
		writeError(w, errStatus, "%v", err)
		return
	}
	job, err := sc.CompileGrid()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	surrKey, err := s.surrogateKey(sc)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	nw := newNDJSONWriter(w, s.metrics)
	start := time.Now()
	ctx := r.Context()
	trace := obs.TraceID(ctx)
	frameTrace := ""
	if s.trace {
		frameTrace = trace
	}
	if err := nw.frame(&gridHeaderFrame{Grid: gridInfo{
		Name: sc.Name, Title: sc.Title,
		XAxis: job.XAxis, YAxis: job.YAxis,
		Xs: job.Xs, Ys: job.Ys, Layers: job.Layers, Cells: job.Cells(),
		Refine: true,
	}}); err != nil {
		return
	}

	// A refinement run occupies one worker-pool slot like any pooled solve;
	// its internal row parallelism is the per-solve parallelism.
	release, err := s.store.ReserveContext(ctx)
	if err != nil {
		return // client gone while queued
	}
	s.metrics.solveStarted()
	var sink obs.Counters
	prob, flush := job.RefineProblem(&sink)
	lookup, store := s.cellHooks(job)
	res, err := refine.Run(ctx, prob, job.RefineSpec(), refine.Options{
		Workers: workers,
		Lookup:  lookup,
		Store:   store,
		OnPoint: func(p refine.Point) error {
			outcome := cache.Miss.String()
			if p.Reused {
				outcome = cache.Hit.String()
			}
			if err := nw.frame(&pointFrame{
				Point: refinePoint{X: p.X, Y: p.Y, Values: job.ValuesMap(p.Values)},
				Cache: outcome, Trace: frameTrace,
			}); err != nil {
				return errClientGone
			}
			return nil
		},
		OnLeaf: func(l refine.Leaf) error {
			if err := nw.frame(&leafFrame{Leaf: refineLeaf{
				X0: l.X0, Y0: l.Y0, X1: l.X1, Y1: l.Y1,
				Depth: l.Depth, Screened: l.Screened,
			}}); err != nil {
				return errClientGone
			}
			return nil
		},
	})
	flush()
	release()
	s.metrics.solveFinished()
	delta := sink.Snapshot()
	s.counters.Add(delta)
	elapsed := time.Since(start)
	if err != nil {
		if errors.Is(err, errClientGone) || ctx.Err() != nil {
			return // no client to tell
		}
		s.logger.Error("batch refine failed", "grid", sc.Name, "trace", trace, "error", err)
		s.recorder.Record(obs.Event{
			Time: time.Now(), Trace: trace, Kind: "grid", Name: sc.Name,
			Outcome: "error", Error: err.Error(),
			DurationMS: float64(elapsed.Microseconds()) / 1e3,
		})
		s.metrics.observeSolve("error", elapsed.Seconds())
		//pubopt:allow(streamcheck): terminal error frame right before return; the stream is over regardless
		nw.frame(&errorFrame{Error: err.Error()})
		return
	}

	st := res.Stats()
	s.refineCounters.Add(st)
	// Cache the surrogate so GET /v1/query answers this grid solve-free
	// from now on.
	s.store.Put(surrKey, res)
	outcome := cache.Miss.String()
	if st.PointsSolved+st.ProbeSolves == 0 {
		outcome = cache.Hit.String()
	}
	s.metrics.observeSolve(outcome, elapsed.Seconds())
	s.recorder.Record(obs.Event{
		Time: time.Now(), Trace: trace, Kind: "grid", Name: sc.Name,
		Key: shortKey(surrKey), Outcome: outcome,
		DurationMS: float64(elapsed.Microseconds()) / 1e3,
		Solver:     delta,
	})
	fineXs, fineYs := res.FineDims()
	s.logger.Info("batch refine served",
		"grid", sc.Name, "fine_cells", fineXs*fineYs,
		"points_solved", st.PointsSolved, "points_reused", st.PointsReused,
		"probes", st.ProbeSolves, "leaves", st.Leaves(),
		"verified", res.Verified(), "max_error", res.MaxError(),
		"elapsed_s", elapsed.Seconds(), "solves", delta.Solves, "trace", trace)
	//pubopt:allow(streamcheck): terminal summary frame; the stream ends either way and there is nothing left to abort
	nw.frame(&refineDoneFrame{
		Done: true, FineXs: fineXs, FineYs: fineYs,
		Verified: res.Verified(), MaxError: res.MaxError(), Tolerance: res.Tolerance(),
		Refine:    st,
		ElapsedMS: float64(elapsed.Microseconds()) / 1e3,
	})
}
