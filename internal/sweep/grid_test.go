package sweep

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRunRowsCoversEveryRowOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const rows = 37
		var mu sync.Mutex
		visits := make([]int, rows)
		maxWorker := 0
		RunRows(workers, rows, func(worker, row int) {
			mu.Lock()
			visits[row]++
			if worker > maxWorker {
				maxWorker = worker
			}
			mu.Unlock()
		})
		for row, n := range visits {
			if n != 1 {
				t.Fatalf("workers=%d: row %d visited %d times", workers, row, n)
			}
		}
		if workers > 0 && maxWorker >= workers && workers <= rows {
			t.Fatalf("workers=%d: worker index %d out of range", workers, maxWorker)
		}
	}
}

func TestRunRowsZeroRows(t *testing.T) {
	called := false
	RunRows(4, 0, func(worker, row int) { called = true })
	if called {
		t.Fatal("run called with zero rows")
	}
}

func TestRunRowsStealsFromSlowWorkers(t *testing.T) {
	// Row 0 is artificially slow; with 2 workers the fast worker must pick
	// up the remaining rows instead of waiting, so the slow worker ends up
	// with far fewer rows than an even pre-split would give it.
	const rows = 20
	gate := make(chan struct{})
	var mu sync.Mutex
	perWorker := make(map[int]int)
	RunRows(2, rows, func(worker, row int) {
		if row == 0 {
			<-gate // parked until every other row is claimable
		}
		mu.Lock()
		perWorker[worker]++
		if row == 1 {
			// The other worker reached row 1, so rows are flowing; release
			// the parked one.
			close(gate)
		}
		mu.Unlock()
	})
	total := 0
	for _, n := range perWorker {
		total += n
	}
	if total != rows {
		t.Fatalf("ran %d rows, want %d", total, rows)
	}
	for worker, n := range perWorker {
		if n == rows/2 {
			t.Logf("worker %d took exactly half the rows; stealing untestable this run", worker)
		}
	}
}

func TestRunRowsPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if fmt.Sprint(r) != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	RunRows(3, 10, func(worker, row int) {
		if row == 4 {
			panic("boom")
		}
	})
}

func TestGridWriteCSVLongForm(t *testing.T) {
	g := NewGrid("t", "poshare", "nu", []float64{0.1, 0.2}, []float64{1, 2}, []string{"phi"})
	for r := range g.Ys {
		for c := range g.Xs {
			g.Layers[0].Z[r][c] = float64(10*r + c)
		}
	}
	var b strings.Builder
	if err := g.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "layer,poshare,nu,value\n" +
		"phi,0.1,1,0\n" +
		"phi,0.2,1,1\n" +
		"phi,0.1,2,10\n" +
		"phi,0.2,2,11\n"
	if b.String() != want {
		t.Fatalf("got:\n%s\nwant:\n%s", b.String(), want)
	}
	if g.Cells() != 4 {
		t.Fatalf("Cells() = %d, want 4", g.Cells())
	}
}

func TestGridWriteCSVShapeMismatch(t *testing.T) {
	g := NewGrid("t", "x", "y", []float64{1, 2}, []float64{3}, []string{"phi"})
	g.Layers[0].Z[0] = g.Layers[0].Z[0][:1] // corrupt the row width
	if err := g.WriteCSV(&strings.Builder{}); err == nil {
		t.Fatal("mismatched layer shape not rejected")
	}
}

func TestGridRowExtraction(t *testing.T) {
	g := NewGrid("t", "poshare", "nu", []float64{0.1, 0.2, 0.3}, []float64{5, 7}, []string{"phi", "share/a"})
	for c := range g.Xs {
		g.Layers[0].Z[1][c] = float64(c) * 2
	}
	s, err := g.Row("phi", 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.X[2] != 0.3 || s.Y[2] != 4 {
		t.Fatalf("unexpected row series %+v", s)
	}
	if _, err := g.Row("nope", 0); err == nil {
		t.Fatal("unknown layer not rejected")
	}
	if _, err := g.Row("phi", 9); err == nil {
		t.Fatal("out-of-range row not rejected")
	}
}

// failWriter errors after n bytes, exercising the CSV flush path: csv.Writer
// buffers through bufio, so small tables only touch the destination at
// Flush time and the error must be read back from cw.Error().
type failWriter struct{ n int }

var errSink = errors.New("sink failed")

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errSink
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errSink
	}
	f.n -= len(p)
	return len(p), nil
}

func TestTableWriteCSVReturnsFlushError(t *testing.T) {
	tbl := &Table{XLabel: "x", YLabel: "y"}
	s := Series{Name: "s"}
	s.Append(1, 2)
	tbl.Add(s)
	err := tbl.WriteCSV(&failWriter{n: 3})
	if !errors.Is(err, errSink) {
		t.Fatalf("flush error lost: %v", err)
	}
}

func TestGridWriteCSVReturnsFlushError(t *testing.T) {
	g := NewGrid("t", "x", "y", []float64{1}, []float64{2}, []string{"phi"})
	err := g.WriteCSV(&failWriter{n: 3})
	if !errors.Is(err, errSink) {
		t.Fatalf("flush error lost: %v", err)
	}
}
