package sweep

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
)

func TestSeriesAppend(t *testing.T) {
	var s Series
	s.Append(1, 2)
	s.Append(3, 4)
	if s.Len() != 2 || s.X[1] != 3 || s.Y[1] != 4 {
		t.Fatalf("series = %+v", s)
	}
}

func TestMap(t *testing.T) {
	s := Map("sq", []float64{1, 2, 3}, func(x float64) float64 { return x * x })
	if s.Name != "sq" || s.Len() != 3 || s.Y[2] != 9 {
		t.Fatalf("Map = %+v", s)
	}
}

func TestWriteCSV(t *testing.T) {
	tbl := Table{Title: "t", XLabel: "c", YLabel: "psi"}
	tbl.Add(Series{Name: "nu=20", X: []float64{0, 0.5}, Y: []float64{1, 2}})
	tbl.Add(Series{Name: "nu=50", X: []float64{0, 0.5}, Y: []float64{3, 4}})
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wantLines := []string{"series,c,psi", "nu=20,0,1", "nu=20,0.5,2", "nu=50,0,3", "nu=50,0.5,4"}
	for _, w := range wantLines {
		if !strings.Contains(out, w) {
			t.Errorf("CSV missing %q:\n%s", w, out)
		}
	}
}

func TestWriteCSVMismatchedSeries(t *testing.T) {
	tbl := Table{XLabel: "x", YLabel: "y"}
	tbl.Add(Series{Name: "bad", X: []float64{1}, Y: []float64{1, 2}})
	if err := tbl.WriteCSV(&bytes.Buffer{}); err == nil {
		t.Fatal("expected error for mismatched series")
	}
}

func TestRunParallelRunsAll(t *testing.T) {
	var count atomic.Int64
	tasks := make([]func(), 100)
	for i := range tasks {
		tasks[i] = func() { count.Add(1) }
	}
	RunParallel(8, tasks)
	if count.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", count.Load())
	}
}

func TestRunParallelSequentialFallback(t *testing.T) {
	order := make([]int, 0, 3)
	tasks := []func(){
		func() { order = append(order, 0) },
		func() { order = append(order, 1) },
		func() { order = append(order, 2) },
	}
	RunParallel(1, tasks)
	if len(order) != 3 || order[0] != 0 || order[2] != 2 {
		t.Fatalf("sequential order broken: %v", order)
	}
}

func TestRunParallelPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	RunParallel(4, []func(){
		func() {},
		func() { panic("boom") },
		func() {},
		func() {},
		func() {},
	})
}
