// Package sweep provides the parameter-sweep machinery behind the figure
// reproductions: named series, figure tables, 2-D grids, long-form CSV
// export, and two small parallel runners.
//
// Concurrency note: the game solvers in internal/core keep warm-start state
// (partition warm starts plus their alloc.Workspace equilibrium kernels)
// and are not safe for concurrent use. Sweeps along a single curve are
// sequential by design (each point warm-starts the next); parallelism is
// applied across independent curves via RunParallel, with one solver per
// task. 2-D grids parallelize across rows via the work-stealing RunRows,
// with one solver — and therefore one set of workspaces — per worker and
// warm starts along each row.
package sweep

import (
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
)

// Series is one named curve of a figure: parallel X/Y slices in model
// units (X is typically a sweep axis such as per-capita capacity ν or the
// premium price c; Y a surplus Φ/Ψ, a market share, or a utilization).
type Series struct {
	Name string
	X, Y []float64
}

// Append adds a point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Table is a reproduced figure: a set of series over a common x-axis
// quantity. XLabel names the swept axis ("nu", "price", ...), YLabel the
// recorded metric ("phi", "share", ...); both flow into CSV headers and
// chart legends unchanged.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Add appends a series to the table.
func (t *Table) Add(s Series) { t.Series = append(t.Series, s) }

// WriteCSV emits the table in long form: series,x,y — one row per point,
// trivially loadable by any plotting tool.
func (t *Table) WriteCSV(w io.Writer) error {
	return writeLongCSV(w, "CSV", []string{"series", t.XLabel, t.YLabel}, func(write func(row []string) error) error {
		for _, s := range t.Series {
			if len(s.X) != len(s.Y) {
				return fmt.Errorf("sweep: series %q has mismatched lengths %d/%d", s.Name, len(s.X), len(s.Y))
			}
			for i := range s.X {
				row := []string{
					s.Name,
					strconv.FormatFloat(s.X[i], 'g', 10, 64),
					strconv.FormatFloat(s.Y[i], 'g', 10, 64),
				}
				if err := write(row); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// writeLongCSV centralizes the header/rows/flush choreography shared by the
// long-form CSV writers (Table.WriteCSV, Grid.WriteCSV). what qualifies the
// error messages ("CSV" for tables, "grid CSV" for grids); emit streams the
// data rows through write and may return its own shape errors verbatim.
func writeLongCSV(w io.Writer, what string, header []string, emit func(write func(row []string) error) error) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("sweep: writing %s header: %w", what, err)
	}
	write := func(row []string) error {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("sweep: writing %s row: %w", what, err)
		}
		return nil
	}
	if err := emit(write); err != nil {
		return err
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		// Flush is the only point buffered bytes actually reach w, so a
		// short write (full disk, closed pipe) surfaces here, not above.
		return fmt.Errorf("sweep: flushing %s: %w", what, err)
	}
	return nil
}

// RunParallel executes the tasks concurrently on up to workers goroutines
// (0 means GOMAXPROCS) and blocks until all complete. Each task must be
// self-contained (own solver instances); panics propagate to the caller.
func RunParallel(workers int, tasks []func()) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for _, task := range tasks {
			task()
		}
		return
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first any
	)
	ch := make(chan func())
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for task := range ch {
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if first == nil {
								first = r
							}
							mu.Unlock()
						}
					}()
					task()
				}()
			}
		}()
	}
	for _, task := range tasks {
		ch <- task
	}
	close(ch)
	wg.Wait()
	if first != nil {
		panic(first)
	}
}

// Map evaluates f over xs sequentially (warm-start friendly) and returns
// the resulting series.
func Map(name string, xs []float64, f func(x float64) float64) Series {
	s := Series{Name: name}
	for _, x := range xs {
		s.Append(x, f(x))
	}
	return s
}
