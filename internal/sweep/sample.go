package sweep

import (
	"sort"

	"github.com/netecon-sim/publicoption/internal/numeric"
)

// SampleIndices deterministically picks min(k, n) distinct indices from
// [0, n), returned in ascending order. The same (n, k, seed) always yields
// the same subset, so samplers built on it (spot-checking sweep cells,
// subsampling grid rows) are reproducible; ascending order preserves the
// warm-start friendliness of the original traversal.
func SampleIndices(n, k int, seed uint64) []int {
	if n <= 0 || k <= 0 {
		return nil
	}
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := numeric.NewRNG(seed).Perm(n)[:k]
	sort.Ints(out)
	return out
}
