package sweep

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
)

// Grid is a reproduced 2-D parameter study: a rectangle of cells over a
// column axis (Xs, e.g. the Public Option share γ) and a row axis (Ys,
// e.g. per-capita capacity ν), carrying one scalar field per recorded
// quantity (Layers). It is the 2-D counterpart of Table, produced by
// scenario grid sweeps and rendered by plot.Heatmap or WriteCSV.
type Grid struct {
	// Title is the human description, typically the scenario title.
	Title string
	// XLabel and YLabel name the column and row axes (the sweep axis
	// constants: "nu", "poshare", "sigma", ...).
	XLabel, YLabel string
	// Xs are the column-axis values (one per column), Ys the row-axis
	// values (one per row). Both hold resolved model units — absolute ν,
	// not fractions of saturation.
	Xs, Ys []float64
	// Layers are the recorded scalar fields, e.g. "phi" (per-capita
	// consumer surplus Φ) or "share/incumbent" (one layer per provider for
	// per-provider metrics).
	Layers []GridLayer
}

// GridLayer is one scalar field over the grid's cells.
type GridLayer struct {
	// Name identifies the quantity: a market-level metric name ("phi") or
	// metric/provider for per-provider metrics ("psi/incumbent").
	Name string
	// Z holds the cell values in row-major order: Z[row][col] is the value
	// at (Ys[row], Xs[col]).
	Z [][]float64
}

// NewGrid allocates a grid with the given axes and zero-filled layers.
func NewGrid(title, xLabel, yLabel string, xs, ys []float64, layers []string) *Grid {
	g := &Grid{
		Title:  title,
		XLabel: xLabel,
		YLabel: yLabel,
		Xs:     append([]float64(nil), xs...),
		Ys:     append([]float64(nil), ys...),
	}
	for _, name := range layers {
		z := make([][]float64, len(ys))
		for r := range z {
			z[r] = make([]float64, len(xs))
		}
		g.Layers = append(g.Layers, GridLayer{Name: name, Z: z})
	}
	return g
}

// Cells returns the number of cells (rows × columns).
func (g *Grid) Cells() int { return len(g.Xs) * len(g.Ys) }

// Layer returns the named layer, or nil.
func (g *Grid) Layer(name string) *GridLayer {
	for i := range g.Layers {
		if g.Layers[i].Name == name {
			return &g.Layers[i]
		}
	}
	return nil
}

// Row extracts one row of a layer as a Table series over the column axis —
// the bridge back to 1-D tooling (a grid row at fixed ν is exactly a 1-D
// sweep at that ν).
func (g *Grid) Row(layer string, row int) (Series, error) {
	l := g.Layer(layer)
	if l == nil {
		return Series{}, fmt.Errorf("sweep: grid has no layer %q", layer)
	}
	if row < 0 || row >= len(g.Ys) {
		return Series{}, fmt.Errorf("sweep: grid row %d outside [0,%d)", row, len(g.Ys))
	}
	s := Series{Name: fmt.Sprintf("%s@%s=%g", layer, g.YLabel, g.Ys[row])}
	for c, x := range g.Xs {
		s.Append(x, l.Z[row][c])
	}
	return s, nil
}

// WriteCSV emits the grid in long form: layer,<xlabel>,<ylabel>,value —
// one row per (layer, cell), trivially pivotable into a heatmap by any
// plotting tool.
func (g *Grid) WriteCSV(w io.Writer) error {
	return writeLongCSV(w, "grid CSV", []string{"layer", g.XLabel, g.YLabel, "value"}, func(write func(row []string) error) error {
		for _, l := range g.Layers {
			if len(l.Z) != len(g.Ys) {
				return fmt.Errorf("sweep: grid layer %q has %d rows, want %d", l.Name, len(l.Z), len(g.Ys))
			}
			for r, rowVals := range l.Z {
				if len(rowVals) != len(g.Xs) {
					return fmt.Errorf("sweep: grid layer %q row %d has %d columns, want %d", l.Name, r, len(rowVals), len(g.Xs))
				}
				for c, v := range rowVals {
					row := []string{
						l.Name,
						strconv.FormatFloat(g.Xs[c], 'g', 10, 64),
						strconv.FormatFloat(g.Ys[r], 'g', 10, 64),
						strconv.FormatFloat(v, 'g', 10, 64),
					}
					if err := write(row); err != nil {
						return err
					}
				}
			}
		}
		return nil
	})
}

// RunRows executes rows 0..rows-1 across up to workers goroutines with work
// stealing: every worker repeatedly claims the next unclaimed row from a
// shared counter, so a worker that lands on cheap rows takes more of them
// and no worker idles while rows remain. This is the grid counterpart of
// RunParallel's task list — rows are independent (only cells *within* a row
// share warm-start state), so the unit of distribution is the row.
//
// run(worker, row) is called with the claiming worker's index in
// [0,workers), letting callers keep one warm solver per worker across all
// the rows that worker claims. Workers run sequentially within themselves;
// panics propagate to the caller after all workers drain.
//
//pubopt:hotpath
func RunRows(workers, rows int, run func(worker, row int)) {
	RunRowsContext(nil, workers, rows, run)
}

// RunRowsContext is RunRows with cooperative cancellation: once ctx is done
// no worker claims another row (rows already claimed run to completion, so
// per-worker solver state is never abandoned mid-cell). A nil ctx never
// cancels and behaves exactly like RunRows.
//
//pubopt:hotpath
func RunRowsContext(ctx context.Context, workers, rows int, run func(worker, row int)) {
	if rows <= 0 {
		return
	}
	if workers <= 0 || workers > rows {
		workers = rows
	}
	if workers == 1 {
		for row := 0; row < rows; row++ {
			if ctx != nil && ctx.Err() != nil {
				return
			}
			run(0, row)
		}
		return
	}
	var (
		next  atomic.Int64
		wg    sync.WaitGroup
		mu    sync.Mutex
		first any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//pubopt:allow(hotpathalloc): one worker closure per sweep, amortized over every row it claims
		go func(worker int) {
			defer wg.Done()
			//pubopt:allow(hotpathalloc): panic-capture closure, one per worker per sweep
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if first == nil {
						first = r
					}
					mu.Unlock()
					// Starve the other workers so one poisoned row does not
					// leave the runner spinning through the rest.
					next.Store(int64(rows))
				}
			}()
			for {
				if ctx != nil && ctx.Err() != nil {
					return
				}
				row := int(next.Add(1)) - 1
				if row >= rows {
					return
				}
				run(worker, row)
			}
		}(w)
	}
	wg.Wait()
	if first != nil {
		panic(first)
	}
}
