package sweep

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunRowsContextCancel: after cancellation no new rows are claimed, but
// rows already running finish (solver state is never abandoned mid-cell).
func TestRunRowsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	var once sync.Once
	RunRowsContext(ctx, 2, 100, func(worker, row int) {
		ran.Add(1)
		once.Do(cancel)
	})
	if n := ran.Load(); n < 1 || n > 3 {
		// At most one in-flight row per worker after the cancel, plus the
		// canceling row itself.
		t.Fatalf("ran %d rows after early cancel, want 1..3", n)
	}
}

// TestRunRowsContextPreCanceled: a dead context runs nothing.
func TestRunRowsContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	RunRowsContext(ctx, 4, 50, func(worker, row int) {
		t.Error("row ran under a dead context")
	})
	// Single-worker path too.
	RunRowsContext(ctx, 1, 50, func(worker, row int) {
		t.Error("row ran under a dead context (sequential path)")
	})
}

// TestRunRowsContextNil: nil context means run everything, like RunRows.
func TestRunRowsContextNil(t *testing.T) {
	var ran atomic.Int64
	RunRowsContext(nil, 3, 20, func(worker, row int) { ran.Add(1) })
	if ran.Load() != 20 {
		t.Fatalf("nil-context run covered %d/20 rows", ran.Load())
	}
}
