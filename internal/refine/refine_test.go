package refine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"github.com/netecon-sim/publicoption/internal/numeric"
)

// funcSolver adapts plain functions to PointSolver — one per layer.
type funcSolver struct {
	fs     []func(x, y float64) float64
	solves *int32 // optional shared solve counter (merge-phase reads only)
}

func (s *funcSolver) Solve(x, y float64) []float64 {
	out := make([]float64, len(s.fs))
	for i, f := range s.fs {
		out[i] = f(x, y)
	}
	return out
}

func problemOf(nx, ny int, fs ...func(x, y float64) float64) Problem {
	layers := make([]string, len(fs))
	for i := range fs {
		layers[i] = fmt.Sprintf("layer%d", i)
	}
	return Problem{
		Title:  "test",
		XLabel: "x", YLabel: "y",
		Xs:     numeric.Linspace(0, 1, nx),
		Ys:     numeric.Linspace(0, 1, ny),
		Layers: layers,
		NewSolver: func() PointSolver {
			return &funcSolver{fs: fs}
		},
	}
}

func TestPlanarFieldSolvesOnlySeedGrid(t *testing.T) {
	plane := func(x, y float64) float64 { return 2*x + 3*y - 1 }
	prob := problemOf(5, 4, plane)
	res, err := Run(context.Background(), prob, Spec{Tol: 0.01, MaxDepth: 3, Probes: 16}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats()
	if st.CellsSplit != 0 {
		t.Fatalf("planar field split %d cells, want 0", st.CellsSplit)
	}
	if st.PointsSolved != 5*4 {
		t.Fatalf("solved %d lattice points, want the 20 seed knots only", st.PointsSolved)
	}
	if st.ProbeSolves != 16 {
		t.Fatalf("solved %d probes, want 16", st.ProbeSolves)
	}
	if st.LeafDepths[0] != 4*3 {
		t.Fatalf("depth-0 leaves = %d, want 12", st.LeafDepths[0])
	}
	if !res.Verified() {
		t.Fatalf("planar surrogate not verified (maxErr=%g)", res.MaxError())
	}
	// Bilinear reproduces a plane exactly.
	for _, p := range [][2]float64{{0, 0}, {1, 1}, {0.3, 0.7}, {0.123, 0.456}} {
		got, err := res.At(p[0], p[1], 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-plane(p[0], p[1])) > 1e-12 {
			t.Fatalf("At(%v) = %g, want %g", p, got, plane(p[0], p[1]))
		}
	}
}

func TestKinkConcentratesSplits(t *testing.T) {
	const a = 0.475 // between knots of a 5-knot axis
	kink := func(x, y float64) float64 { return math.Abs(x - a) }
	prob := problemOf(5, 5, kink)
	res, err := Run(context.Background(), prob, Spec{Tol: 0.05, MaxDepth: 4, Probes: 32}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats()
	if st.CellsSplit == 0 {
		t.Fatal("kinked field refined nothing")
	}
	// Splits must concentrate on the kink column: every split cell spans it.
	for _, l := range res.Leaves() {
		if l.Depth > 0 && (l.X1 < a-0.26 || l.X0 > a+0.26) {
			t.Fatalf("deep leaf [%g,%g]×[%g,%g] far from the kink at x=%g", l.X0, l.X1, l.Y0, l.Y1, a)
		}
	}
	// Sub-linear: far fewer solves than the depth-equivalent dense lattice.
	nx, ny := res.FineDims()
	dense := uint64(nx * ny)
	if st.PointsSolved >= dense/2 {
		t.Fatalf("solved %d of %d dense points — refinement is not sub-linear", st.PointsSolved, dense)
	}
	// The surrogate tracks the field within tolerance away from knot dust.
	for _, p := range [][2]float64{{0.1, 0.2}, {0.9, 0.9}, {a, 0.5}, {0.51, 0.37}} {
		got, err := res.At(p[0], p[1], 0)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(got-kink(p[0], p[1])) / res.Scale(0); d > res.Tolerance() {
			t.Fatalf("At(%v) normalized error %g > tol %g", p, d, res.Tolerance())
		}
	}
}

func TestIndicatorLayerForcesSplits(t *testing.T) {
	lin := func(x, y float64) float64 { return x - 0.5 } // sign change at x=0.5, inside a cell of a 4-knot axis
	probNoInd := problemOf(4, 4, lin)
	spec := Spec{Tol: 0.01, MaxDepth: 3, Probes: -1}
	res, err := Run(context.Background(), probNoInd, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats().CellsSplit != 0 {
		t.Fatalf("linear field split %d cells without an indicator", res.Stats().CellsSplit)
	}
	spec.IndicatorLayer = "layer0"
	res, err = Run(context.Background(), probNoInd, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats()
	if st.CellsSplit < 3 {
		t.Fatalf("indicator forced only %d splits, want ≥ 3 (one per row of the crossing column)", st.CellsSplit)
	}
	for _, l := range res.Leaves() {
		if l.Depth > 0 && (l.X1 < 0.5-1e-9 || l.X0 > 0.5+1e-9) {
			t.Fatalf("indicator split leaf [%g,%g] does not touch the x=0.5 boundary", l.X0, l.X1)
		}
	}
	if res.Verified() {
		t.Fatal("Probes<0 must leave the surrogate unverified")
	}
}

func TestUnknownIndicatorLayerErrors(t *testing.T) {
	prob := problemOf(3, 3, func(x, y float64) float64 { return x })
	_, err := Run(context.Background(), prob, Spec{IndicatorLayer: "nope"}, Options{})
	if err == nil {
		t.Fatal("unknown indicator layer must error")
	}
}

func TestOutOfRangeModes(t *testing.T) {
	prob := problemOf(3, 3, func(x, y float64) float64 { return x + y })
	res, err := Run(context.Background(), prob, Spec{Probes: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range [][2]float64{{-0.1, 0.5}, {1.1, 0.5}, {0.5, -0.1}, {0.5, 1.1}, {math.NaN(), 0.5}} {
		if _, err := res.At(p[0], p[1], 0); !errors.Is(err, numeric.ErrOutOfRange) {
			t.Fatalf("At(%v) error = %v, want ErrOutOfRange", p, err)
		}
		if _, err := res.Values(p[0], p[1]); !errors.Is(err, numeric.ErrOutOfRange) {
			t.Fatalf("Values(%v) error = %v, want ErrOutOfRange", p, err)
		}
	}
	// Clamp mode answers from the nearest edge.
	if got := res.AtClamped(-5, 0.5, 0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("AtClamped(-5, 0.5) = %g, want 0.5", got)
	}
	if got := res.AtClamped(2, 2, 0); math.Abs(got-2) > 1e-12 {
		t.Fatalf("AtClamped(2, 2) = %g, want 2", got)
	}
}

func TestDoctoredSurrogateFailsVerification(t *testing.T) {
	prob := problemOf(4, 4, func(x, y float64) float64 { return x + 2*y })
	spec := Spec{Tol: 0.01, MaxDepth: 2, Probes: 32}
	res, err := Run(context.Background(), prob, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified() {
		t.Fatalf("healthy surrogate must verify (maxErr=%g)", res.MaxError())
	}
	// Doctor the surrogate: shift every stored knot value. The solver
	// truth is unchanged, so re-running the probe pass must catch it.
	for _, v := range res.points {
		v[0] += 10 * res.Scale(0)
	}
	if err := res.reverify(context.Background(), Options{}); err != nil {
		t.Fatal(err)
	}
	if res.Verified() {
		t.Fatal("doctored surrogate still verified — the error bound is not falsifiable")
	}
	if res.MaxError() < 5 {
		t.Fatalf("doctored MaxError = %g, want ≈ 10", res.MaxError())
	}
}

func TestDeterministicAcrossWorkers(t *testing.T) {
	wavy := func(x, y float64) float64 { return math.Sin(3*x) * math.Cos(2*y) }
	spec := Spec{Tol: 0.005, MaxDepth: 3, Probes: 16}
	var baseline []byte
	var baseStats any
	for _, workers := range []int{1, 4, 16} {
		res, err := Run(context.Background(), problemOf(4, 4, wavy), spec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Flatten(25, 25).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = buf.Bytes()
			baseStats = res.Stats()
			continue
		}
		if !bytes.Equal(baseline, buf.Bytes()) {
			t.Fatalf("workers=%d produced different flattened CSV bytes", workers)
		}
		if !reflect.DeepEqual(baseStats, res.Stats()) {
			t.Fatalf("workers=%d produced different stats: %+v vs %+v", workers, res.Stats(), baseStats)
		}
	}
}

func TestLookupStoreRoundTrip(t *testing.T) {
	wavy := func(x, y float64) float64 { return math.Sin(3*x) * math.Cos(2*y) }
	spec := Spec{Tol: 0.005, MaxDepth: 3, Probes: 16}
	type xy struct{ x, y float64 }
	stored := map[xy][]float64{}
	first, err := Run(context.Background(), problemOf(4, 4, wavy), spec, Options{
		Store: func(x, y float64, vals []float64) {
			stored[xy{x, y}] = append([]float64(nil), vals...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := uint64(len(stored)), first.Stats().PointsSolved+first.Stats().ProbeSolves; got != want {
		t.Fatalf("Store saw %d points, stats say %d solved", got, want)
	}
	// Warm re-run: everything must come from Lookup, nothing re-solves.
	warm, err := Run(context.Background(), problemOf(4, 4, wavy), spec, Options{
		Lookup: func(x, y float64) ([]float64, bool) {
			v, ok := stored[xy{x, y}]
			if !ok {
				return nil, false
			}
			return append([]float64(nil), v...), true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.PointsSolved != 0 || st.ProbeSolves != 0 {
		t.Fatalf("warm run solved %d points + %d probes, want 0", st.PointsSolved, st.ProbeSolves)
	}
	if warm.MaxError() != first.MaxError() || warm.Verified() != first.Verified() {
		t.Fatal("warm run disagrees with cold run")
	}
}

func TestCallbackErrorsAbort(t *testing.T) {
	prob := problemOf(3, 3, func(x, y float64) float64 { return x * y })
	boom := errors.New("boom")
	if _, err := Run(context.Background(), prob, Spec{}, Options{
		OnPoint: func(p Point) error { return boom },
	}); !errors.Is(err, boom) {
		t.Fatalf("OnPoint error not propagated: %v", err)
	}
	if _, err := Run(context.Background(), prob, Spec{}, Options{
		OnLeaf: func(l Leaf) error { return boom },
	}); !errors.Is(err, boom) {
		t.Fatalf("OnLeaf error not propagated: %v", err)
	}
}

func TestContextCancellationStopsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	prob := problemOf(4, 4, func(x, y float64) float64 { return math.Sin(9 * x * y) })
	prob.NewSolver = func() PointSolver {
		return &funcSolver{fs: []func(x, y float64) float64{func(x, y float64) float64 {
			n++
			if n > 5 {
				cancel()
			}
			return math.Sin(9 * x * y)
		}}}
	}
	if _, err := Run(ctx, prob, Spec{Tol: 1e-6, MaxDepth: 4, Probes: 8}, Options{Workers: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run returned %v, want context.Canceled", err)
	}
}

func TestZeroAllocHotPaths(t *testing.T) {
	// The curvature estimator's inner kernel...
	xs := numeric.Linspace(0, 1, 9)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Sin(3 * x)
	}
	pch := numeric.NewPCHIP(xs, ys)
	lin := numeric.NewLinearInterp(xs, ys)
	var sink float64
	if allocs := testing.AllocsPerRun(200, func() {
		sink += screenDev(pch, lin, 0.37)
	}); allocs != 0 {
		t.Fatalf("screenDev allocates %v per run, want 0", allocs)
	}
	// ...and the surrogate evaluation behind warm /v1/query and Flatten.
	res, err := Run(context.Background(), problemOf(4, 4, func(x, y float64) float64 { return math.Sin(3*x) * y }),
		Spec{Tol: 0.01, MaxDepth: 3, Probes: -1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		sink += res.eval(0.371, 0.642, 0)
	}); allocs != 0 {
		t.Fatalf("surrogate eval allocates %v per run, want 0", allocs)
	}
	_ = sink
}

func TestFlattenMatchesTruthWithinTolerance(t *testing.T) {
	f := func(x, y float64) float64 { return math.Sin(4*x) + 0.5*math.Cos(3*y) }
	res, err := Run(context.Background(), problemOf(5, 5, f), Spec{Tol: 0.02, MaxDepth: 4, Probes: 64}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified() {
		t.Fatalf("smooth field did not verify: maxErr=%g tol=%g", res.MaxError(), res.Tolerance())
	}
	nx, ny := res.FineDims()
	g := res.Flatten(nx, ny)
	worst := 0.0
	for row, y := range g.Ys {
		for col, x := range g.Xs {
			if d := math.Abs(g.Layers[0].Z[row][col]-f(x, y)) / res.Scale(0); d > worst {
				worst = d
			}
		}
	}
	// The dense flattened output tracks the truth within tolerance (small
	// slack: probes bound the error statistically, not pointwise).
	if worst > 1.5*res.Tolerance() {
		t.Fatalf("flattened max normalized error %g exceeds tolerance %g", worst, res.Tolerance())
	}
}
