// Package refine is the adaptive 2-D grid engine: it solves a coarse seed
// grid, estimates local curvature per metric layer from internal/numeric
// interpolants, and recursively splits only the cells where curvature (or a
// sign change in a designated indicator layer) exceeds tolerance, down to a
// depth cap. The refined quadtree doubles as an interpolating surrogate —
// bilinear patches over leaf cells with a solver-verified error bound — so
// grid cost scales with the number of *interesting* cells instead of the
// output resolution, and off-grid point queries usually never solve.
//
// # Lattice
//
// All refinement happens on a virtual fine lattice: with a depth cap D each
// seed cell spans S0 = 1<<D lattice steps per axis, so a seed grid of
// nx × ny knots covers a (nx−1)·S0+1 × (ny−1)·S0+1 lattice. Lattice
// coordinates are exact integers; the model coordinate of lattice column ix
// is xs[c] + (xs[c+1]−xs[c])·r/S0 with c = ix/S0, r = ix%S0, which handles
// non-uniform seed axes and makes shared cell edges land on identical
// floats regardless of which neighbor solved them first.
//
// # Determinism
//
// Refinement proceeds in depth waves. Each wave collects every lattice
// point it needs, dedupes and sorts them by (row, column), and solves one
// task per lattice row — a fresh solver per task, points in ascending
// column order so the equilibrium kernel warm-starts along the row exactly
// like a dense grid sweep. Tasks run on a worker pool, but results are
// merged sequentially in sorted order, so the refined tree, the surrogate,
// and every callback sequence are byte-identical for any worker count.
//
// # Error contract
//
// A cell is accepted as a leaf either by the cheap screen (the PCHIP and
// linear interpolants through its bounding rows and columns agree to well
// within tolerance and no indicator sign change is visible at its corners)
// or by the center test (a solved center point agrees with the bilinear
// prediction within Tol/2). After refinement, a budgeted sample of off-knot
// probe points is solved and compared against the surrogate; MaxError
// reports the worst normalized error observed anywhere, and Verified is
// true only when probing ran and stayed within Tol. Errors are normalized
// per layer by the layer's value range over the seed grid.
package refine

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/obs"
	"github.com/netecon-sim/publicoption/internal/sweep"
)

// Defaults for Spec fields left zero.
const (
	DefaultTol      = 0.01
	DefaultMaxDepth = 4
	DefaultProbes   = 32
)

// Refinement thresholds, as fractions of Spec.Tol. Splitting at Tol/2
// leaves headroom so off-center surrogate errors inside an accepted leaf
// stay within Tol; the screen accepts only cells an order of magnitude
// flatter than that.
const (
	splitFrac  = 0.5
	screenFrac = 0.125
)

// PointSolver produces the metric layers at one grid point. Implementations
// are single-goroutine (the engine creates one per row task via
// Problem.NewSolver) and must be deterministic: identical (x, y) must yield
// identical values, or refinement loses its byte-reproducibility contract.
type PointSolver interface {
	// Solve returns one value per Problem.Layers entry, in order.
	Solve(x, y float64) []float64
}

// Problem describes the surface to refine.
type Problem struct {
	// Title is the human description, carried into flattened grids.
	Title string
	// XLabel and YLabel name the column and row axes.
	XLabel, YLabel string
	// Xs and Ys are the seed-grid axes in resolved model units: strictly
	// increasing, at least two knots each.
	Xs, Ys []float64
	// Layers names the metric layers every solve produces.
	Layers []string
	// NewSolver builds a fresh point solver. The engine calls it lazily —
	// once per row task that has at least one cache-missing point.
	NewSolver func() PointSolver
}

// Spec is the refinement policy. The zero value of each field selects its
// default; see the package constants.
type Spec struct {
	// Tol is the relative tolerance: normalized surrogate errors up to Tol
	// are acceptable. 0 selects DefaultTol.
	Tol float64 `json:"tolerance,omitempty"`
	// MaxDepth caps refinement depth (a depth-d leaf is 2^d× finer than a
	// seed cell per axis). 0 selects DefaultMaxDepth; values above
	// obs.MaxRefineDepth are clamped.
	MaxDepth int `json:"max_depth,omitempty"`
	// Probes is the verification budget: how many off-knot points to solve
	// and compare against the surrogate after refinement. 0 selects
	// DefaultProbes; negative disables verification (Verified stays false).
	Probes int `json:"probes,omitempty"`
	// IndicatorLayer optionally names a layer whose sign change (crossing
	// IndicatorValue) marks a regime boundary: any cell whose samples
	// straddle the value is split regardless of curvature.
	IndicatorLayer string `json:"indicator_layer,omitempty"`
	// IndicatorValue is the level whose crossing the indicator tracks
	// (typically 0, e.g. a welfare difference layer).
	IndicatorValue float64 `json:"indicator_value,omitempty"`
	// Seed seeds the probe-point generator. 0 selects 1.
	Seed uint64 `json:"seed,omitempty"`
}

// withDefaults resolves zero fields to their defaults and clamps the depth.
func (s Spec) withDefaults() Spec {
	if s.Tol <= 0 {
		s.Tol = DefaultTol
	}
	if s.MaxDepth <= 0 {
		s.MaxDepth = DefaultMaxDepth
	}
	if s.MaxDepth > obs.MaxRefineDepth {
		s.MaxDepth = obs.MaxRefineDepth
	}
	if s.Probes == 0 {
		s.Probes = DefaultProbes
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Point is one materialized lattice point, delivered to Options.OnPoint in
// deterministic (row, column) merge order.
type Point struct {
	X, Y float64
	// Values holds one value per Problem.Layers entry. The slice is owned
	// by the engine; callbacks must not retain or mutate it past the call.
	Values []float64
	// Reused reports that the point came from Options.Lookup, not a solve.
	Reused bool
}

// Leaf is one finalized leaf cell, delivered to Options.OnLeaf in
// deterministic finalization order (by depth wave, then row-major).
type Leaf struct {
	// X0..Y1 bound the cell in model units.
	X0, Y0, X1, Y1 float64
	// Depth is the refinement depth (0 = unsplit seed cell).
	Depth int
	// Corners holds, per layer, the corner values [v00, v10, v01, v11] at
	// (X0,Y0), (X1,Y0), (X0,Y1), (X1,Y1).
	Corners [][4]float64
	// Screened reports the cell was accepted by the interpolant screen
	// alone, without spending a center solve.
	Screened bool
}

// Options carries the run environment: parallelism, cache hooks, and
// streaming callbacks. All callbacks are invoked on the Run goroutine.
type Options struct {
	// Workers bounds solve parallelism (0 = GOMAXPROCS).
	Workers int
	// Lookup, when set, is consulted before every solve — the bridge to the
	// content-addressed equilibrium cache. The returned slice becomes owned
	// by the engine. Lookup may be called concurrently from row tasks.
	Lookup func(x, y float64) ([]float64, bool)
	// Store, when set, receives every freshly solved point (lattice and
	// probe), in deterministic order, on the Run goroutine.
	Store func(x, y float64, values []float64)
	// OnPoint, when set, streams every materialized lattice point. A
	// non-nil error aborts the run.
	OnPoint func(p Point) error
	// OnLeaf, when set, streams every finalized leaf. A non-nil error
	// aborts the run.
	OnLeaf func(l Leaf) error
}

// cellNode is one quadtree node over the lattice. Children (when child ≥ 0)
// are stored contiguously in quadrant order: +0 = (lo x, lo y), +1 = (hi x,
// lo y), +2 = (lo x, hi y), +3 = (hi x, hi y).
type cellNode struct {
	ix, iy   int32 // lattice coords of the lower-left corner
	span     int32 // lattice steps per side
	depth    int32
	child    int32 // index of the first child in Result.cells; -1 = leaf
	screened bool
}

// Result is the refined quadtree plus its interpolating surrogate.
type Result struct {
	prob Problem
	spec Spec // resolved (defaults applied)

	s0     int // lattice span of one seed cell = 1 << spec.MaxDepth
	w, h   int // fine lattice dimensions
	nSeedX int // seed cells per row = len(Xs)-1

	points map[int64][]float64 // lattice key -> one value per layer
	cells  []cellNode          // roots first (row-major), then children by wave

	scale     []float64 // per-layer normalization (seed-grid value range)
	indicator int       // indicator layer index, -1 if unset

	stats     obs.RefineStats
	centerErr float64   // worst accepted center-test error (normalized)
	probeErr  float64   // worst probe error (normalized)
	layerErr  []float64 // worst probe error per layer
	verified  bool
}

// engine carries the transient refinement state that the finished Result
// does not need.
type engine struct {
	r   *Result
	opt Options
	// rows and cols index solved lattice points: rows[iy] is the sorted
	// list of lattice columns with a solved point in lattice row iy.
	rows map[int][]int
	cols map[int][]int
}

// Run refines prob under spec and returns the surrogate.
func Run(ctx context.Context, prob Problem, spec Spec, opt Options) (*Result, error) {
	if err := validateProblem(prob); err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	indicator := -1
	if spec.IndicatorLayer != "" {
		for i, name := range prob.Layers {
			if name == spec.IndicatorLayer {
				indicator = i
			}
		}
		if indicator < 0 {
			return nil, fmt.Errorf("refine: indicator layer %q is not among the problem layers %v", spec.IndicatorLayer, prob.Layers)
		}
	}
	s0 := 1 << spec.MaxDepth
	r := &Result{
		prob:      prob,
		spec:      spec,
		s0:        s0,
		w:         (len(prob.Xs)-1)*s0 + 1,
		h:         (len(prob.Ys)-1)*s0 + 1,
		nSeedX:    len(prob.Xs) - 1,
		points:    make(map[int64][]float64),
		indicator: indicator,
		layerErr:  make([]float64, len(prob.Layers)),
	}
	e := &engine{
		r:    r,
		opt:  opt,
		rows: make(map[int][]int),
		cols: make(map[int][]int),
	}

	// Wave 0: the seed grid.
	seed := make([]latticePt, 0, len(prob.Xs)*len(prob.Ys))
	for cy := 0; cy < len(prob.Ys); cy++ {
		for cx := 0; cx < len(prob.Xs); cx++ {
			seed = append(seed, latticePt{ix: cx * s0, iy: cy * s0})
		}
	}
	if err := e.solveWave(ctx, seed); err != nil {
		return nil, err
	}
	r.computeScales()

	// Roots, row-major, so Result.eval can index them directly.
	frontier := make([]int32, 0, r.nSeedX*(len(prob.Ys)-1))
	for cy := 0; cy < len(prob.Ys)-1; cy++ {
		for cx := 0; cx < r.nSeedX; cx++ {
			r.cells = append(r.cells, cellNode{
				ix: int32(cx * s0), iy: int32(cy * s0), span: int32(s0), child: -1,
			})
			frontier = append(frontier, int32(len(r.cells)-1))
		}
	}

	for depth := 0; depth < spec.MaxDepth && len(frontier) > 0; depth++ {
		next, err := e.refineWave(ctx, frontier)
		if err != nil {
			return nil, err
		}
		frontier = next
	}
	// Cells still on the frontier hit the depth cap: finalize them as
	// leaves without spending further solves.
	for _, ci := range frontier {
		if err := e.finalizeLeaf(ci); err != nil {
			return nil, err
		}
	}

	if spec.Probes > 0 {
		if err := r.reverify(ctx, opt); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func validateProblem(p Problem) error {
	if len(p.Xs) < 2 || len(p.Ys) < 2 {
		return errors.New("refine: seed grid needs at least 2 knots per axis")
	}
	for _, axis := range [][]float64{p.Xs, p.Ys} {
		for i := 1; i < len(axis); i++ {
			if axis[i] <= axis[i-1] {
				return errors.New("refine: seed axes must be strictly increasing")
			}
		}
	}
	if len(p.Layers) == 0 {
		return errors.New("refine: problem has no layers")
	}
	if p.NewSolver == nil {
		return errors.New("refine: problem has no solver factory")
	}
	return nil
}

// latticePt is a point request on the virtual fine lattice.
type latticePt struct{ ix, iy int }

// key maps lattice coordinates to the points-map key.
func (r *Result) key(ix, iy int) int64 { return int64(iy)*int64(r.w) + int64(ix) }

// coordX converts a lattice column to its model coordinate, exactly at seed
// knots and linearly within a seed cell (handles non-uniform seed axes).
func (r *Result) coordX(ix int) float64 { return latticeCoord(r.prob.Xs, ix, r.s0) }

// coordY converts a lattice row to its model coordinate.
func (r *Result) coordY(iy int) float64 { return latticeCoord(r.prob.Ys, iy, r.s0) }

//pubopt:hotpath
func latticeCoord(knots []float64, i, s0 int) float64 {
	c := i / s0
	rem := i % s0
	if rem == 0 {
		return knots[c]
	}
	return knots[c] + (knots[c+1]-knots[c])*float64(rem)/float64(s0)
}

// computeScales derives the per-layer error normalization from the seed
// grid: a layer's scale is its value range, floored so a (near-)constant
// layer measures against its magnitude instead of exploding.
func (r *Result) computeScales() {
	n := len(r.prob.Layers)
	r.scale = make([]float64, n)
	mins := make([]float64, n)
	maxs := make([]float64, n)
	first := true
	for cy := 0; cy < len(r.prob.Ys); cy++ {
		for cx := 0; cx < len(r.prob.Xs); cx++ {
			v := r.points[r.key(cx*r.s0, cy*r.s0)]
			for li := 0; li < n; li++ {
				if first || v[li] < mins[li] {
					mins[li] = v[li]
				}
				if first || v[li] > maxs[li] {
					maxs[li] = v[li]
				}
			}
			first = false
		}
	}
	for li := 0; li < n; li++ {
		s := maxs[li] - mins[li]
		mag := maxs[li]
		if -mins[li] > mag {
			mag = -mins[li]
		}
		if mag < 1 {
			mag = 1
		}
		if s < 1e-9*mag {
			s = mag
		}
		r.scale[li] = s
	}
}

// solveWave materializes every requested lattice point that is not already
// solved: dedupe, sort by (row, column), solve one task per lattice row
// (fresh solver, ascending column = warm-started like a dense sweep row),
// then merge sequentially in sorted order.
func (e *engine) solveWave(ctx context.Context, reqs []latticePt) error {
	r := e.r
	sort.Slice(reqs, func(a, b int) bool {
		if reqs[a].iy != reqs[b].iy {
			return reqs[a].iy < reqs[b].iy
		}
		return reqs[a].ix < reqs[b].ix
	})
	// Dedupe and drop already-solved points.
	todo := reqs[:0]
	for i, p := range reqs {
		if i > 0 && p == reqs[i-1] {
			continue
		}
		if _, done := r.points[r.key(p.ix, p.iy)]; done {
			continue
		}
		todo = append(todo, p)
	}
	if len(todo) == 0 {
		return nil
	}

	// Group into one task per lattice row.
	type rowTask struct {
		iy     int
		ixs    []int
		vals   [][]float64
		reused []bool
	}
	var groups []*rowTask
	for _, p := range todo {
		if len(groups) == 0 || groups[len(groups)-1].iy != p.iy {
			groups = append(groups, &rowTask{iy: p.iy})
		}
		g := groups[len(groups)-1]
		g.ixs = append(g.ixs, p.ix)
	}
	tasks := make([]func(), len(groups))
	for gi := range groups {
		g := groups[gi]
		g.vals = make([][]float64, len(g.ixs))
		g.reused = make([]bool, len(g.ixs))
		tasks[gi] = func() {
			var solver PointSolver
			y := r.coordY(g.iy)
			for k, ix := range g.ixs {
				if ctx != nil && ctx.Err() != nil {
					return
				}
				x := r.coordX(ix)
				if e.opt.Lookup != nil {
					if v, ok := e.opt.Lookup(x, y); ok {
						g.vals[k] = v
						g.reused[k] = true
						continue
					}
				}
				if solver == nil {
					solver = r.prob.NewSolver()
				}
				g.vals[k] = solver.Solve(x, y)
			}
		}
	}
	sweep.RunParallel(e.opt.Workers, tasks)
	if ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}

	// Sequential merge in sorted order: the only place points, rows/cols
	// indexes, stats, and callbacks are touched, so the run is
	// worker-count independent.
	for _, g := range groups {
		y := r.coordY(g.iy)
		for k, ix := range g.ixs {
			v := g.vals[k]
			if len(v) != len(r.prob.Layers) {
				return fmt.Errorf("refine: solver returned %d values, want %d layers", len(v), len(r.prob.Layers))
			}
			r.points[r.key(ix, g.iy)] = v
			e.rows[g.iy] = insertSorted(e.rows[g.iy], ix)
			e.cols[ix] = insertSorted(e.cols[ix], g.iy)
			x := r.coordX(ix)
			if g.reused[k] {
				r.stats.PointsReused++
			} else {
				r.stats.PointsSolved++
				if e.opt.Store != nil {
					e.opt.Store(x, y, v)
				}
			}
			if e.opt.OnPoint != nil {
				if err := e.opt.OnPoint(Point{X: x, Y: y, Values: v, Reused: g.reused[k]}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// insertSorted inserts v into ascending slice s (no duplicates expected —
// solveWave only merges unsolved points).
func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// axisFit caches the curvature evidence along one lattice row or column for
// the duration of a wave: the per-layer PCHIP and linear interpolants
// through its solved points, plus a per-knot second-difference estimate of
// the local linear-interpolation error. The two signals are complementary —
// the interpolant disagreement tracks smooth curvature, while the secant
// slope change catches kinks that a shape-preserving cubic flattens over.
type axisFit struct {
	ok    bool // enough knots to measure curvature (≥ 3)
	knots []float64
	pch   []*numeric.PCHIP
	lin   []*numeric.LinearInterp
	est   [][]float64 // per layer, per knot: |Δsecant|·max(h)/8 at that knot
}

// fitAxis builds (or returns the cached) curvature evidence for one lattice
// row (horizontal) or column at lattice index at.
func (e *engine) fitAxis(cache map[int]*axisFit, idx []int, horizontal bool, at int) *axisFit {
	if f, ok := cache[at]; ok {
		return f
	}
	f := &axisFit{}
	cache[at] = f
	if len(idx) < 3 {
		return f
	}
	r := e.r
	knots := make([]float64, len(idx))
	for k, i := range idx {
		if horizontal {
			knots[k] = r.coordX(i)
		} else {
			knots[k] = r.coordY(i)
		}
	}
	n := len(r.prob.Layers)
	f.knots = knots
	f.pch = make([]*numeric.PCHIP, n)
	f.lin = make([]*numeric.LinearInterp, n)
	f.est = make([][]float64, n)
	ys := make([]float64, len(idx))
	for li := 0; li < n; li++ {
		for k, i := range idx {
			var key int64
			if horizontal {
				key = r.key(i, at)
			} else {
				key = r.key(at, i)
			}
			ys[k] = r.points[key][li]
		}
		f.pch[li] = numeric.NewPCHIP(knots, ys)
		f.lin[li] = numeric.NewLinearInterp(knots, ys)
		est := make([]float64, len(idx))
		for j := 1; j < len(idx)-1; j++ {
			h0 := knots[j] - knots[j-1]
			h1 := knots[j+1] - knots[j]
			ds := (ys[j+1]-ys[j])/h1 - (ys[j]-ys[j-1])/h0
			if ds < 0 {
				ds = -ds
			}
			h := h0
			if h1 > h {
				h = h1
			}
			est[j] = ds * h / 8
		}
		f.est[li] = est
	}
	f.ok = true
	return f
}

// screenDev is the curvature estimator's inner kernel: how far the
// shape-preserving cubic departs from the linear interpolant at the probe
// abscissa. This is evaluated 4×layers times per frontier cell per wave,
// so it must not allocate.
//
//pubopt:hotpath
func screenDev(p *numeric.PCHIP, l *numeric.LinearInterp, at float64) float64 {
	d := p.At(at) - l.At(at)
	if d < 0 {
		d = -d
	}
	return d
}

// refineWave screens, center-tests, and splits one depth level of the
// frontier, returning the next frontier.
func (e *engine) refineWave(ctx context.Context, frontier []int32) ([]int32, error) {
	r := e.r
	tol := r.spec.Tol
	rowFits := make(map[int]*axisFit)
	colFits := make(map[int]*axisFit)

	// Phase 1: the cheap screen. Cells flat enough along their bounding
	// rows and columns (and with no indicator crossing at their corners)
	// become leaves without a center solve.
	candidates := frontier[:0]
	for _, ci := range frontier {
		c := &r.cells[ci]
		ix, iy, span := int(c.ix), int(c.iy), int(c.span)
		screened := !e.straddlesIndicatorCorners(ix, iy, span)
		if screened {
			dev, ok := e.cellDev(rowFits, colFits, ix, iy, span)
			if !ok || dev > tol*screenFrac {
				screened = false
			}
		}
		if screened {
			c.screened = true
			r.stats.CellsInterpolated++
			if err := e.finalizeLeaf(ci); err != nil {
				return nil, err
			}
			continue
		}
		candidates = append(candidates, ci)
	}

	// Phase 2: solve the candidates' centers in one wave.
	reqs := make([]latticePt, 0, len(candidates))
	for _, ci := range candidates {
		c := &r.cells[ci]
		h := int(c.span) / 2
		reqs = append(reqs, latticePt{ix: int(c.ix) + h, iy: int(c.iy) + h})
	}
	if err := e.solveWave(ctx, reqs); err != nil {
		return nil, err
	}

	// Phase 3: the center test. Accept the cell when the solved center
	// agrees with the bilinear prediction; otherwise mark it for splitting.
	var splits []int32
	for _, ci := range candidates {
		c := &r.cells[ci]
		ix, iy, span := int(c.ix), int(c.iy), int(c.span)
		h := span / 2
		v00 := r.points[r.key(ix, iy)]
		v10 := r.points[r.key(ix+span, iy)]
		v01 := r.points[r.key(ix, iy+span)]
		v11 := r.points[r.key(ix+span, iy+span)]
		vc := r.points[r.key(ix+h, iy+h)]
		split := false
		errC := 0.0
		for li := range r.prob.Layers {
			pred := 0.25 * (v00[li] + v10[li] + v01[li] + v11[li])
			d := (vc[li] - pred) / r.scale[li]
			if d < 0 {
				d = -d
			}
			if d > errC {
				errC = d
			}
		}
		if errC > tol*splitFrac {
			split = true
		}
		if r.indicator >= 0 && !split {
			li := r.indicator
			v := r.spec.IndicatorValue
			min, max := vc[li], vc[li]
			for _, s := range [4]float64{v00[li], v10[li], v01[li], v11[li]} {
				if s < min {
					min = s
				}
				if s > max {
					max = s
				}
			}
			if min < v && max > v {
				split = true
			}
		}
		if !split {
			r.stats.CellsVerified++
			if errC > r.centerErr {
				r.centerErr = errC
			}
			if err := e.finalizeLeaf(ci); err != nil {
				return nil, err
			}
			continue
		}
		splits = append(splits, ci)
	}

	// Phase 4: split. Solve the edge midpoints (centers are already in),
	// then create the four children.
	reqs = reqs[:0]
	for _, ci := range splits {
		c := &r.cells[ci]
		ix, iy, span := int(c.ix), int(c.iy), int(c.span)
		h := span / 2
		reqs = append(reqs,
			latticePt{ix: ix + h, iy: iy},
			latticePt{ix: ix + h, iy: iy + span},
			latticePt{ix: ix, iy: iy + h},
			latticePt{ix: ix + span, iy: iy + h},
		)
	}
	if err := e.solveWave(ctx, reqs); err != nil {
		return nil, err
	}
	next := make([]int32, 0, 4*len(splits))
	for _, ci := range splits {
		// Note: appending to r.cells may reallocate, so re-resolve the
		// node after the append.
		ix, iy := r.cells[ci].ix, r.cells[ci].iy
		h := r.cells[ci].span / 2
		d := r.cells[ci].depth + 1
		first := int32(len(r.cells))
		r.cells = append(r.cells,
			cellNode{ix: ix, iy: iy, span: h, depth: d, child: -1},
			cellNode{ix: ix + h, iy: iy, span: h, depth: d, child: -1},
			cellNode{ix: ix, iy: iy + h, span: h, depth: d, child: -1},
			cellNode{ix: ix + h, iy: iy + h, span: h, depth: d, child: -1},
		)
		r.cells[ci].child = first
		r.stats.CellsSplit++
		next = append(next, first, first+1, first+2, first+3)
	}
	return next, nil
}

// cellDev measures the worst normalized PCHIP-vs-linear disagreement over
// the cell's bounding rows (probed at the cell's x quarter/mid/three-quarter
// points) and columns (likewise in y). ok is false when any bounding axis
// has too few solved points to measure curvature — such cells must not be
// screen-accepted.
func (e *engine) cellDev(rowFits, colFits map[int]*axisFit, ix, iy, span int) (float64, bool) {
	r := e.r
	x0, x1 := r.coordX(ix), r.coordX(ix+span)
	y0, y1 := r.coordY(iy), r.coordY(iy+span)
	fits := [4]*axisFit{
		e.fitAxis(rowFits, e.rows[iy], true, iy),
		e.fitAxis(rowFits, e.rows[iy+span], true, iy+span),
		e.fitAxis(colFits, e.cols[ix], false, ix),
		e.fitAxis(colFits, e.cols[ix+span], false, ix+span),
	}
	los := [4]float64{x0, x0, y0, y0}
	his := [4]float64{x1, x1, y1, y1}
	dev := 0.0
	for fi, f := range fits {
		if !f.ok {
			return 0, false
		}
		lo, hi := los[fi], his[fi]
		for _, frac := range [3]float64{0.25, 0.5, 0.75} {
			at := lo + (hi-lo)*frac
			for li := range r.prob.Layers {
				d := screenDev(f.pch[li], f.lin[li], at) / r.scale[li]
				if d > dev {
					dev = d
				}
			}
		}
		// Second-difference evidence at every knot the cell spans.
		jlo := sort.SearchFloat64s(f.knots, lo)
		for j := jlo; j < len(f.knots) && f.knots[j] <= hi; j++ {
			for li := range r.prob.Layers {
				if d := f.est[li][j] / r.scale[li]; d > dev {
					dev = d
				}
			}
		}
	}
	return dev, true
}

// straddlesIndicatorCorners reports whether the indicator layer's corner
// values straddle the indicator level — a regime boundary visibly crossing
// the cell, which must never be screen-accepted.
func (e *engine) straddlesIndicatorCorners(ix, iy, span int) bool {
	r := e.r
	if r.indicator < 0 {
		return false
	}
	li := r.indicator
	v := r.spec.IndicatorValue
	v00 := r.points[r.key(ix, iy)][li]
	v10 := r.points[r.key(ix+span, iy)][li]
	v01 := r.points[r.key(ix, iy+span)][li]
	v11 := r.points[r.key(ix+span, iy+span)][li]
	min, max := v00, v00
	for _, s := range [3]float64{v10, v01, v11} {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	return min < v && max > v
}

// finalizeLeaf records the leaf's depth in the histogram and streams it.
func (e *engine) finalizeLeaf(ci int32) error {
	r := e.r
	c := &r.cells[ci]
	d := int(c.depth)
	if d > obs.MaxRefineDepth {
		d = obs.MaxRefineDepth
	}
	r.stats.LeafDepths[d]++
	if e.opt.OnLeaf == nil {
		return nil
	}
	ix, iy, span := int(c.ix), int(c.iy), int(c.span)
	leaf := Leaf{
		X0: r.coordX(ix), X1: r.coordX(ix + span),
		Y0: r.coordY(iy), Y1: r.coordY(iy + span),
		Depth:    int(c.depth),
		Screened: c.screened,
		Corners:  make([][4]float64, len(r.prob.Layers)),
	}
	v00 := r.points[r.key(ix, iy)]
	v10 := r.points[r.key(ix+span, iy)]
	v01 := r.points[r.key(ix, iy+span)]
	v11 := r.points[r.key(ix+span, iy+span)]
	for li := range leaf.Corners {
		leaf.Corners[li] = [4]float64{v00[li], v10[li], v01[li], v11[li]}
	}
	return e.opt.OnLeaf(leaf)
}
