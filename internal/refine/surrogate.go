package refine

import (
	"context"
	"fmt"
	"sort"

	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/obs"
	"github.com/netecon-sim/publicoption/internal/sweep"
)

// Stats returns the run's telemetry (work done, leaf-depth histogram).
func (r *Result) Stats() obs.RefineStats { return r.stats }

// ResolvedSpec returns the spec with defaults applied.
func (r *Result) ResolvedSpec() Spec { return r.spec }

// Tolerance returns the resolved relative tolerance.
func (r *Result) Tolerance() float64 { return r.spec.Tol }

// Layers returns the metric layer names, in solver order.
func (r *Result) Layers() []string { return r.prob.Layers }

// LayerIndex returns the index of the named layer, or -1.
func (r *Result) LayerIndex(name string) int {
	for i, n := range r.prob.Layers {
		if n == name {
			return i
		}
	}
	return -1
}

// Bounds returns the surrogate's domain.
func (r *Result) Bounds() (x0, x1, y0, y1 float64) {
	return r.prob.Xs[0], r.prob.Xs[len(r.prob.Xs)-1], r.prob.Ys[0], r.prob.Ys[len(r.prob.Ys)-1]
}

// FineDims returns the virtual fine-lattice dimensions — the resolution at
// which a dense solve would be depth-equivalent to this refinement.
func (r *Result) FineDims() (nx, ny int) { return r.w, r.h }

// Scale returns the per-layer error normalization (the layer's seed-grid
// value range, floored).
func (r *Result) Scale(layer int) float64 { return r.scale[layer] }

// MaxError returns the worst normalized surrogate error observed anywhere:
// the accepted center-test errors during refinement and, when verification
// ran, the off-knot probe errors.
func (r *Result) MaxError() float64 {
	if r.probeErr > r.centerErr {
		return r.probeErr
	}
	return r.centerErr
}

// LayerErrors returns the worst observed probe error per layer (normalized).
// All zeros when verification was disabled.
func (r *Result) LayerErrors() []float64 {
	return append([]float64(nil), r.layerErr...)
}

// Verified reports whether probe verification ran and every observed error
// stayed within tolerance. Callers promising the error bound (the /v1/query
// surrogate path) must fall back to a real solve when this is false.
func (r *Result) Verified() bool { return r.verified }

// seedCell locates the seed-cell index containing x (clamped to the edge
// cells), such that knots[i] ≤ x ≤ knots[i+1] for in-range x.
//
//pubopt:hotpath
func seedCell(knots []float64, x float64) int {
	i := sort.SearchFloat64s(knots, x)
	if i > 0 {
		i--
	}
	if i > len(knots)-2 {
		i = len(knots) - 2
	}
	return i
}

// eval descends the quadtree to the leaf containing (x, y) and evaluates
// its bilinear patch for one layer. Callers guarantee (x, y) in bounds.
// This is the surrogate's inner loop — a warm /v1/query and every flattened
// cell go through it — so it must not allocate.
//
//pubopt:hotpath
func (r *Result) eval(x, y float64, layer int) float64 {
	ci := int32(seedCell(r.prob.Ys, y)*r.nSeedX + seedCell(r.prob.Xs, x))
	for r.cells[ci].child >= 0 {
		c := &r.cells[ci]
		h := c.span >> 1
		q := c.child
		if x >= r.coordX(int(c.ix+h)) {
			q += 1
		}
		if y >= r.coordY(int(c.iy+h)) {
			q += 2
		}
		ci = q
	}
	c := &r.cells[ci]
	ix, iy, span := int(c.ix), int(c.iy), int(c.span)
	x0, x1 := r.coordX(ix), r.coordX(ix+span)
	y0, y1 := r.coordY(iy), r.coordY(iy+span)
	tx := (x - x0) / (x1 - x0)
	ty := (y - y0) / (y1 - y0)
	v00 := r.points[r.key(ix, iy)][layer]
	v10 := r.points[r.key(ix+span, iy)][layer]
	v01 := r.points[r.key(ix, iy+span)][layer]
	v11 := r.points[r.key(ix+span, iy+span)][layer]
	return (v00*(1-tx)+v10*tx)*(1-ty) + (v01*(1-tx)+v11*tx)*ty
}

// checkBounds rejects queries outside the surrogate's domain (or NaN),
// wrapping numeric.ErrOutOfRange so callers can errors.Is it.
func (r *Result) checkBounds(x, y float64) error {
	x0, x1, y0, y1 := r.Bounds()
	if x < x0 || x > x1 || x != x { //pubopt:allow(floatcmp): x != x is the NaN test
		return fmt.Errorf("%w: %s=%g outside [%g, %g]", numeric.ErrOutOfRange, r.prob.XLabel, x, x0, x1)
	}
	if y < y0 || y > y1 || y != y { //pubopt:allow(floatcmp): y != y is the NaN test
		return fmt.Errorf("%w: %s=%g outside [%g, %g]", numeric.ErrOutOfRange, r.prob.YLabel, y, y0, y1)
	}
	return nil
}

// At evaluates one layer of the surrogate in checked mode: out-of-domain
// queries error with numeric.ErrOutOfRange instead of clamping, because the
// solver-verified error bound says nothing outside the refined domain.
func (r *Result) At(x, y float64, layer int) (float64, error) {
	if layer < 0 || layer >= len(r.prob.Layers) {
		return 0, fmt.Errorf("refine: layer index %d outside [0,%d)", layer, len(r.prob.Layers))
	}
	if err := r.checkBounds(x, y); err != nil {
		return 0, err
	}
	return r.eval(x, y, layer), nil
}

// AtClamped evaluates one layer in clamp mode: the query is clamped into
// the domain first (rendering-friendly, mirrors numeric.Interpolator.At).
func (r *Result) AtClamped(x, y float64, layer int) float64 {
	cx, cy := r.clamp(x, y)
	return r.eval(cx, cy, layer)
}

func (r *Result) clamp(x, y float64) (float64, float64) {
	x0, x1, y0, y1 := r.Bounds()
	if !(x > x0) { //pubopt:allow(floatcmp): NaN-safe clamp
		x = x0
	}
	if x > x1 {
		x = x1
	}
	if !(y > y0) { //pubopt:allow(floatcmp): NaN-safe clamp
		y = y0
	}
	if y > y1 {
		y = y1
	}
	return x, y
}

// Values evaluates every layer at (x, y) in checked mode.
func (r *Result) Values(x, y float64) ([]float64, error) {
	if err := r.checkBounds(x, y); err != nil {
		return nil, err
	}
	out := make([]float64, len(r.prob.Layers))
	for li := range out {
		out[li] = r.eval(x, y, li)
	}
	return out, nil
}

// Flatten renders the refined surface as a dense nx × ny grid — the bridge
// back to the existing heatmap and CSV tooling. Resolutions below 2 per
// axis are raised to 2.
func (r *Result) Flatten(nx, ny int) *sweep.Grid {
	if nx < 2 {
		nx = 2
	}
	if ny < 2 {
		ny = 2
	}
	x0, x1, y0, y1 := r.Bounds()
	g := sweep.NewGrid(r.prob.Title, r.prob.XLabel, r.prob.YLabel,
		numeric.Linspace(x0, x1, nx), numeric.Linspace(y0, y1, ny), r.prob.Layers)
	for row, y := range g.Ys {
		for col, x := range g.Xs {
			// Clamp against floating-point dust at the Linspace endpoints.
			cx, cy := r.clamp(x, y)
			for li := range g.Layers {
				g.Layers[li].Z[row][col] = r.eval(cx, cy, li)
			}
		}
	}
	return g
}

// Leaves materializes the leaf cells in deterministic creation order
// (roots row-major, then children by refinement wave).
func (r *Result) Leaves() []Leaf {
	var out []Leaf
	for i := range r.cells {
		c := &r.cells[i]
		if c.child >= 0 {
			continue
		}
		ix, iy, span := int(c.ix), int(c.iy), int(c.span)
		leaf := Leaf{
			X0: r.coordX(ix), X1: r.coordX(ix + span),
			Y0: r.coordY(iy), Y1: r.coordY(iy + span),
			Depth:    int(c.depth),
			Screened: c.screened,
			Corners:  make([][4]float64, len(r.prob.Layers)),
		}
		v00 := r.points[r.key(ix, iy)]
		v10 := r.points[r.key(ix+span, iy)]
		v01 := r.points[r.key(ix, iy+span)]
		v11 := r.points[r.key(ix+span, iy+span)]
		for li := range leaf.Corners {
			leaf.Corners[li] = [4]float64{v00[li], v10[li], v01[li], v11[li]}
		}
		out = append(out, leaf)
	}
	return out
}

// reverify runs the solver-verified error bound: solve spec.Probes off-knot
// points (deterministically drawn from spec.Seed) and compare each against
// the surrogate. Probes flow through the Lookup/Store hooks like lattice
// points, so a warm re-verification solves nothing. Resets and recomputes
// probeErr/layerErr/verified — the falsifiability tests rely on a doctored
// surrogate failing here.
func (r *Result) reverify(ctx context.Context, opt Options) error {
	r.probeErr = 0
	for i := range r.layerErr {
		r.layerErr[i] = 0
	}
	r.verified = false
	if r.spec.Probes <= 0 {
		return nil
	}
	x0, x1, y0, y1 := r.Bounds()
	rng := numeric.NewRNG(r.spec.Seed)
	type probe struct{ x, y float64 }
	probes := make([]probe, r.spec.Probes)
	for i := range probes {
		probes[i] = probe{x: rng.Uniform(x0, x1), y: rng.Uniform(y0, y1)}
	}
	// Solve in (y, x) order — warm-start friendly and independent of the
	// draw order above.
	sort.Slice(probes, func(a, b int) bool {
		if probes[a].y != probes[b].y { //pubopt:allow(floatcmp): distinct RNG draws; ties only need *an* order
			return probes[a].y < probes[b].y
		}
		return probes[a].x < probes[b].x
	})
	var solver PointSolver
	for _, p := range probes {
		if ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		var truth []float64
		if opt.Lookup != nil {
			if v, ok := opt.Lookup(p.x, p.y); ok {
				truth = v
				r.stats.PointsReused++
			}
		}
		if truth == nil {
			if solver == nil {
				solver = r.prob.NewSolver()
			}
			truth = solver.Solve(p.x, p.y)
			if len(truth) != len(r.prob.Layers) {
				return fmt.Errorf("refine: solver returned %d values, want %d layers", len(truth), len(r.prob.Layers))
			}
			r.stats.ProbeSolves++
			if opt.Store != nil {
				opt.Store(p.x, p.y, truth)
			}
		}
		for li := range r.prob.Layers {
			d := (truth[li] - r.eval(p.x, p.y, li)) / r.scale[li]
			if d < 0 {
				d = -d
			}
			if d > r.layerErr[li] {
				r.layerErr[li] = d
			}
			if d > r.probeErr {
				r.probeErr = d
			}
		}
	}
	r.verified = r.probeErr <= r.spec.Tol
	return nil
}
