package dynamics

import (
	"testing"

	"github.com/netecon-sim/publicoption/internal/scenario"
)

// BenchmarkSimulate times full built-in trajectories and reports the
// per-tick cost — the number CI publishes in BENCH_dynamics.json. The
// -benchmem allocs/op figure is the whole-run budget: per tick it is
// dominated by the TickRecord's result slices (inherent: records are
// returned to the caller), while the tick-internal hot path (scalePop,
// advanceShares) is pinned allocation-free by TestTickHotPathZeroAlloc and
// the hotpathalloc analyzer.
func BenchmarkSimulate(b *testing.B) {
	for _, name := range []string{"dyn-convergence", "dyn-demand-shock"} {
		sc, ok := scenario.Get(name)
		if !ok {
			b.Fatalf("built-in scenario %q missing", name)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(sc, Options{}); err != nil {
					b.Fatal(err)
				}
			}
			perTick := float64(b.Elapsed().Nanoseconds()) / float64(b.N*sc.Dynamics.Ticks)
			b.ReportMetric(perTick, "ns/tick")
		})
	}
}

// TestTickHotPathZeroAlloc pins the //pubopt:hotpath functions — the only
// per-tick code that runs outside the solver kernels — at zero heap
// allocations, the dynamic counterpart of the hotpathalloc static gate.
func TestTickHotPathZeroAlloc(t *testing.T) {
	sc, ok := scenario.Get("dyn-convergence")
	if !ok {
		t.Fatal("built-in scenario dyn-convergence missing")
	}
	e, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	e.Step() // warm every lazily-built buffer
	target := append([]float64(nil), e.shares...)
	if allocs := testing.AllocsPerRun(100, func() {
		e.scalePop(1.25)
		e.advanceShares(target)
	}); allocs != 0 {
		t.Fatalf("tick hot path allocates %v times per run, want 0", allocs)
	}
}
