package dynamics

import (
	"github.com/netecon-sim/publicoption/internal/core"
	"github.com/netecon-sim/publicoption/internal/scenario"
)

// The optimizer phase: pluggable per-provider re-pricing policies. All
// policies move only the premium price c — κ is structural (the paper's
// competition chapters hold it fixed while price carries the strategy) —
// and all evaluate candidates against the *pre-tick* market state, so
// providers move simultaneously.

// repriceFor returns provider k's next premium price under its policy.
func (e *Engine) repriceFor(k int) float64 {
	p := e.policies[k]
	cur := e.strats[k].C
	switch p.Kind {
	case scenario.PolicyBestResponse:
		c, _ := e.bestCandidate(k, p)
		return c
	case scenario.PolicyGradient:
		g := e.priceGradient(k, p)
		return e.clampPrice(cur + p.Gain*g)
	case scenario.PolicySticky:
		// Adopt the local best response only when it clears the stickiness
		// threshold — the "don't churn prices for crumbs" reconcile policy.
		c, best := e.bestCandidate(k, p)
		if best-e.objective(k, p, cur) > p.Threshold {
			return c
		}
		return cur
	}
	return cur // fixed
}

// clampPrice bounds a candidate price to [0, vMax]: negative prices are
// outside the model, and any price above the highest CP valuation sells to
// nobody, so the box keeps runaway gradient steps on the meaningful range.
func (e *Engine) clampPrice(c float64) float64 {
	if c < 0 {
		return 0
	}
	if c > e.vMax {
		return e.vMax
	}
	return c
}

// bestCandidate searches the local price grid cur + j·Step, j ∈ −2..2,
// and returns the objective-maximizing candidate and its value. Candidates
// ascend, and only a strictly better value displaces the incumbent best, so
// ties resolve to the lowest price — the consumer-friendly tiebreak, and a
// deterministic one.
func (e *Engine) bestCandidate(k int, p scenario.PolicySpec) (float64, float64) {
	cur := e.strats[k].C
	bestC, bestV := 0.0, 0.0
	first := true
	for j := -2; j <= 2; j++ {
		c := e.clampPrice(cur + float64(j)*p.Step)
		v := e.objective(k, p, c)
		if first || v > bestV {
			bestC, bestV = c, v
			first = false
		}
	}
	return bestC, bestV
}

// priceGradient estimates ∂objective/∂c at the current price by central
// finite difference of width Step (forward difference against the c ≥ 0
// boundary).
func (e *Engine) priceGradient(k int, p scenario.PolicySpec) float64 {
	cur := e.strats[k].C
	d := p.Step
	if cur < d {
		return (e.objective(k, p, cur+d) - e.objective(k, p, cur)) / d
	}
	return (e.objective(k, p, cur+d) - e.objective(k, p, cur-d)) / (2 * d)
}

// objective evaluates provider k's policy objective at candidate price c,
// holding everything else at the pre-tick state.
func (e *Engine) objective(k int, p scenario.PolicySpec, c float64) float64 {
	cand := core.Strategy{Kappa: e.strats[k].Kappa, C: c}
	switch p.Objective {
	case scenario.ObjectiveShare:
		// What share would migration settle on if k played c and everyone
		// else stood pat? One full market solve per candidate.
		nuBar := e.nuBar()
		e.market.NuBar = nuBar
		isps := e.buildISPs(nuBar)
		isps[k].Strategy = cand
		var out *core.MarketOutcome
		if len(isps) == 2 {
			out = e.market.SolveDuopoly(isps[0], isps[1])
		} else {
			out = e.market.SolveMarket(append([]core.ISP(nil), isps...))
		}
		return out.Shares[k]
	default: // scenario.ObjectiveRevenue
		// Per-subscriber premium revenue Ψ at the provider's current share:
		// the myopic "what do my existing subscribers pay" view. The share
		// factor is common to every candidate, so it cannot move the argmax
		// and is left out.
		m := e.shares[k]
		if m < shareFloor {
			m = shareFloor
		}
		nu := e.caps[k] / m
		if sat := e.workPop.TotalUnconstrainedPerCapita(); nu > 1e4*sat {
			nu = 1e4 * sat
		}
		if e.polWarm == nil {
			e.polWarm = make([][]bool, len(e.names))
		}
		eq := e.solver.CompetitiveFrom(cand, nu, e.workPop, e.polWarm[k])
		e.polWarm[k] = append(e.polWarm[k][:0], eq.InPremium...)
		return eq.Psi()
	}
}
