// Package dynamics runs scenarios through discrete time: a deterministic
// tick loop shaped as the collector→optimizer→actuator reconcile pattern of
// cluster autoscalers, applied to the Ma–Misra market.
//
// Each tick:
//
//  1. collector — the traffic process scales every CP's unconstrained
//     throughput θ̂_i by a multiplier that is a pure function of the tick,
//     producing the demand the providers actually observe;
//  2. optimizer — each provider's policy (fixed, best-response, gradient,
//     sticky) proposes a new premium price from last tick's market state,
//     evaluated on the warm alloc.Workspace kernel via core.Solver;
//  3. actuator — the Public Option's autoscaler moves its absolute capacity
//     toward the level that would hold its subscribers' M/M/1 sojourn time
//     at the configured target (mm1.CapacityForDelay);
//  4. market — the instantaneous Assumption-5 migration equilibrium m* is
//     solved at the new prices and capacities (core.Market), and consumer
//     shares partially adjust, m ← λ·m + (1−λ)·m*, with inertia λ;
//  5. observe — realized per-provider class equilibria at the adjusted
//     shares yield the tick's surplus, revenue, and utilization record.
//
// With fixed strategies, constant traffic, and no autoscaling, the loop's
// fixed point is exactly the static Theorem-1/Assumption-5 equilibrium, and
// partial adjustment contracts onto it geometrically (share error ∝ λ^t) —
// the agreement the fixed-point test battery pins to 1e-6.
//
// Determinism: the engine holds no wall-clock, no global RNG, and no map
// iteration; a trajectory is a pure function of (scenario, tick count).
// Run's worker knob exists for API symmetry with the static runners — ticks
// are inherently sequential (each consumes the previous state), so worker
// count never changes a trajectory, which the determinism tests assert.
package dynamics

import (
	"fmt"
	"math"

	"github.com/netecon-sim/publicoption/internal/core"
	"github.com/netecon-sim/publicoption/internal/mm1"
	"github.com/netecon-sim/publicoption/internal/obs"
	"github.com/netecon-sim/publicoption/internal/scenario"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// shareFloor bounds shares away from zero where per-subscriber capacity
// caps_k/m_k and the M/M/1 delay would be evaluated at an empty provider.
const shareFloor = 1e-6

// TickRecord is one tick's full observable outcome. It doubles as the
// resume state: Shares, Caps, Kappas, and Prices at the end of tick t are
// exactly the state tick t+1 starts from, so Engine.Restore can continue a
// trajectory from any record (the streaming service resumes cached runs
// this way).
type TickRecord struct {
	// Tick is the 0-based tick index.
	Tick int `json:"tick"`
	// Multiplier is the traffic multiplier the collector observed.
	Multiplier float64 `json:"multiplier"`
	// NuBar is the system per-capita capacity Σ_k caps_k after actuation.
	NuBar float64 `json:"nu_bar"`
	// Caps is each provider's absolute per-capita capacity after actuation.
	Caps []float64 `json:"caps"`
	// Kappas and Prices are each provider's strategy after re-pricing.
	Kappas []float64 `json:"kappas"`
	Prices []float64 `json:"prices"`
	// Shares are the consumer market shares after partial adjustment.
	Shares []float64 `json:"shares"`
	// Phi is the share-weighted per-capita consumer surplus Σ_k m_k·Φ_k.
	Phi float64 `json:"phi"`
	// PhiGap is the largest surplus spread max Φ_k − min Φ_k over providers
	// holding consumers — the migration disequilibrium still to be worked
	// off (0 at an Assumption-5 equilibrium, up to inertia).
	PhiGap float64 `json:"phi_gap"`
	// PhiPer, Psi, Util are per-provider: consumer surplus Φ_k, market-wide
	// per-capita premium revenue m_k·Ψ_k, and link utilization.
	PhiPer []float64 `json:"phi_per"`
	Psi    []float64 `json:"psi"`
	Util   []float64 `json:"util"`
	// PODelay is the Public Option subscribers' M/M/1 mean sojourn time
	// (absent without a Public Option provider).
	PODelay float64 `json:"po_delay,omitempty"`
	// Solver is the tick's solver-telemetry delta (this tick's work only).
	Solver obs.SolveStats `json:"solver"`
}

// Options controls execution, not meaning (mirrors scenario.RunOptions).
type Options struct {
	// Workers is accepted for symmetry with the static runners and ignored:
	// ticks are sequential by construction, so any worker count produces
	// the identical trajectory.
	Workers int
	// Stats, when non-nil, receives the run's total solver telemetry once
	// at the end of the run.
	Stats *obs.Counters
}

// Engine advances one dynamic scenario tick by tick. Create with New, call
// Step exactly Ticks() times (or use Run), and read Stats for telemetry.
// An Engine is single-goroutine, like the solvers it owns.
type Engine struct {
	sc   *scenario.Scenario
	spec *scenario.DynamicsSpec

	names    []string
	policies []scenario.PolicySpec // resolved, one per provider
	poIdx    int                   // Public Option index, -1 when absent
	inertia  float64
	vMax     float64 // highest CP valuation: prices above it sell nothing

	// Capacity is carried as absolute per-capita values so the actuator can
	// grow the Public Option without re-normalizing anyone else; the market
	// solver sees γ_k = caps_k/ν̄, which sums to 1 by construction.
	caps    []float64
	cap0PO  float64 // the Public Option's initial capacity (autoscale clamp base)
	strats  []core.Strategy
	shares  []float64
	tick    int
	basePop traffic.Population // declared θ̂ (never mutated)
	workPop traffic.Population // θ̂ scaled by the tick's multiplier

	solver  *core.Solver
	market  *core.Market
	obsWarm [][]bool // per-provider warm partitions for the observe phase
	polWarm [][]bool // per-provider warm partitions for policy probes

	// scratch reused across ticks
	nextPrices []float64
	nextShares []float64
	isps       []core.ISP
}

// New validates the scenario and builds an engine positioned before tick 0.
func New(sc *scenario.Scenario) (*Engine, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if !sc.IsDynamic() {
		return nil, fmt.Errorf("dynamics: scenario %q has no dynamics block; solve it with Run/RunGrid", sc.Name)
	}
	pop, err := sc.Population.Materialize()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		sc:      sc,
		spec:    sc.Dynamics,
		poIdx:   -1,
		inertia: sc.Dynamics.Inertia,
		basePop: pop,
		workPop: append(traffic.Population(nil), pop...),
		solver:  core.NewSolver(nil),
	}
	for _, cp := range pop {
		if cp.V > e.vMax {
			e.vMax = cp.V
		}
	}
	nuBar := sc.Sweep.Nu
	if sc.Sweep.OfSaturation {
		nuBar *= pop.TotalUnconstrainedPerCapita()
	}
	k := len(sc.Providers)
	e.names = make([]string, k)
	e.caps = make([]float64, k)
	e.strats = make([]core.Strategy, k)
	e.shares = make([]float64, k)
	e.policies = make([]scenario.PolicySpec, k)
	e.obsWarm = make([][]bool, k)
	e.nextPrices = make([]float64, k)
	e.nextShares = make([]float64, k)
	e.isps = make([]core.ISP, k)
	for i, p := range sc.Providers {
		e.names[i] = p.Name
		e.caps[i] = p.Gamma * nuBar
		// Shares start at capacity shares: the homogeneous-strategy
		// equilibrium of Lemma 4 and the natural "day 0" of an entrant
		// sized by its build-out.
		e.shares[i] = p.Gamma
		if p.PublicOption {
			e.poIdx = i
			e.strats[i] = core.PublicOption
			e.cap0PO = e.caps[i]
		} else {
			e.strats[i] = core.Strategy{Kappa: p.Kappa, C: p.C}
		}
		e.policies[i] = scenario.PolicySpec{Kind: scenario.PolicyFixed}
		if len(sc.Dynamics.Policies) > 0 {
			e.policies[i] = sc.Dynamics.Policies[i].WithDefaults()
		}
	}
	// The market solver shares workPop, so the collector's in-place θ̂
	// scaling is visible to every solve without copying.
	e.market = core.NewMarket(e.solver, e.workPop, nuBar)
	return e, nil
}

// Ticks returns the configured tick count.
func (e *Engine) Ticks() int { return e.spec.Ticks }

// Tick returns the next tick index Step will run.
func (e *Engine) Tick() int { return e.tick }

// Providers returns the provider names, in declaration order.
func (e *Engine) Providers() []string { return e.names }

// Stats returns the engine's cumulative solver telemetry.
func (e *Engine) Stats() obs.SolveStats { return e.solver.Stats() }

// Restore positions the engine to continue after rec: the next Step runs
// tick rec.Tick+1 from rec's shares, capacities, and strategies. Solver
// warm-start state is rebuilt from scratch, so a restored trajectory may
// differ from an uninterrupted one in the last ~1e-9 of each solve (the
// warm bracket's path dependence); everything economically meaningful is
// identical.
func (e *Engine) Restore(rec TickRecord) error {
	if rec.Tick < 0 || rec.Tick >= e.spec.Ticks {
		return fmt.Errorf("dynamics: restore tick %d outside [0, %d)", rec.Tick, e.spec.Ticks)
	}
	k := len(e.names)
	if len(rec.Shares) != k || len(rec.Caps) != k || len(rec.Kappas) != k || len(rec.Prices) != k {
		return fmt.Errorf("dynamics: restore record shape mismatch (%d providers)", k)
	}
	copy(e.shares, rec.Shares)
	copy(e.caps, rec.Caps)
	for i := range e.strats {
		e.strats[i] = core.Strategy{Kappa: rec.Kappas[i], C: rec.Prices[i]}
	}
	e.tick = rec.Tick + 1
	return nil
}

// scalePop applies the collector's demand multiplier in place.
//
//pubopt:hotpath
func (e *Engine) scalePop(mult float64) {
	base := e.basePop
	work := e.workPop
	for i := range work {
		work[i].ThetaHat = base[i].ThetaHat * mult
	}
}

// advanceShares partially adjusts shares toward the instantaneous migration
// equilibrium target and renormalizes the sum to exactly 1.
//
//pubopt:hotpath
func (e *Engine) advanceShares(target []float64) {
	lambda := e.inertia
	var sum float64
	for i := range e.shares {
		e.shares[i] = lambda*e.shares[i] + (1-lambda)*target[i]
		sum += e.shares[i]
	}
	inv := 1 / sum
	for i := range e.shares {
		e.shares[i] *= inv
	}
}

// nuBar returns the current system per-capita capacity Σ caps.
func (e *Engine) nuBar() float64 {
	var s float64
	for _, c := range e.caps {
		s += c
	}
	return s
}

// buildISPs fills the scratch ISP slice from current caps and strategies.
// The last γ is forced to the exact complement so the market solver's
// Σγ = 1 invariant holds bit-for-bit regardless of rounding in caps.
func (e *Engine) buildISPs(nuBar float64) []core.ISP {
	rest := 1.0
	for i := range e.isps {
		g := e.caps[i] / nuBar
		if i == len(e.isps)-1 {
			g = rest
		}
		rest -= g
		e.isps[i] = core.ISP{Name: e.names[i], Gamma: g, Strategy: e.strats[i]}
	}
	return e.isps
}

// solveMarket computes the instantaneous migration equilibrium at the
// current prices, capacities, and (scaled) demand.
func (e *Engine) solveMarket() *core.MarketOutcome {
	nuBar := e.nuBar()
	e.market.NuBar = nuBar
	isps := e.buildISPs(nuBar)
	if len(isps) == 2 {
		return e.market.SolveDuopoly(isps[0], isps[1])
	}
	return e.market.SolveMarket(append([]core.ISP(nil), isps...))
}

// observe solves provider k's realized class equilibrium at its adjusted
// share, warm-started from the previous tick's observation of the same
// provider.
func (e *Engine) observe(k int) *core.ClassEquilibrium {
	m := e.shares[k]
	if m < shareFloor {
		m = shareFloor
	}
	nu := e.caps[k] / m
	// Same saturation cap as core.Market.phiAtShare: far past saturation
	// the equilibrium is flat, and an uncapped ν → ∞ would stall the class
	// solver on a vanishing provider.
	if sat := e.workPop.TotalUnconstrainedPerCapita(); nu > 1e4*sat {
		nu = 1e4 * sat
	}
	eq := e.solver.CompetitiveFrom(e.strats[k], nu, e.workPop, e.obsWarm[k])
	e.obsWarm[k] = append(e.obsWarm[k][:0], eq.InPremium...)
	return eq
}

// Step advances one tick and returns its record. Panics if called past the
// configured tick count.
func (e *Engine) Step() TickRecord {
	if e.tick >= e.spec.Ticks {
		panic(fmt.Sprintf("dynamics: Step past tick %d of scenario %q", e.spec.Ticks, e.sc.Name))
	}
	t := e.tick
	prevStats := e.solver.Stats()

	// 1. Collector: observe this tick's demand.
	mult := e.spec.Multiplier(t)
	e.scalePop(mult)

	// 2. Optimizer: every policy proposes its price from the *same*
	// pre-tick state (simultaneous moves), then all apply at once.
	e.market.NuBar = e.nuBar()
	for k := range e.policies {
		e.nextPrices[k] = e.repriceFor(k)
	}
	for k := range e.strats {
		e.strats[k].C = e.nextPrices[k]
	}

	// 3. Actuator: autoscale the Public Option toward its delay target.
	if e.spec.Autoscale != nil && e.poIdx >= 0 {
		a := e.spec.Autoscale.WithDefaults()
		m := e.shares[e.poIdx]
		if m < shareFloor {
			m = shareFloor
		}
		// Capacity that would serve the whole population at target delay,
		// scaled down to the slice actually subscribed here.
		desired := mm1.CapacityForDelay(a.DelayTarget, e.workPop) * m
		next := e.caps[e.poIdx] + a.Gain*(desired-e.caps[e.poIdx])
		if lo := a.Min * e.cap0PO; next < lo {
			next = lo
		}
		if hi := a.Max * e.cap0PO; next > hi {
			next = hi
		}
		e.caps[e.poIdx] = next
	}

	// 4. Market: instantaneous migration equilibrium, then inert adjustment.
	out := e.solveMarket()
	copy(e.nextShares, out.Shares)
	e.advanceShares(e.nextShares)

	// 5. Observe realized outcomes at the adjusted shares.
	rec := TickRecord{
		Tick:       t,
		Multiplier: mult,
		NuBar:      e.nuBar(),
		Caps:       append([]float64(nil), e.caps...),
		Kappas:     make([]float64, len(e.strats)),
		Prices:     make([]float64, len(e.strats)),
		Shares:     append([]float64(nil), e.shares...),
		PhiPer:     make([]float64, len(e.names)),
		Psi:        make([]float64, len(e.names)),
		Util:       make([]float64, len(e.names)),
	}
	for k := range e.strats {
		rec.Kappas[k] = e.strats[k].Kappa
		rec.Prices[k] = e.strats[k].C
	}
	phiLo, phiHi := math.Inf(1), math.Inf(-1)
	for k := range e.names {
		eq := e.observe(k)
		rec.PhiPer[k] = eq.Phi()
		rec.Psi[k] = eq.Psi() * e.shares[k]
		rec.Util[k] = eq.Utilization()
		rec.Phi += e.shares[k] * rec.PhiPer[k]
		if e.shares[k] > shareFloor {
			phiLo = math.Min(phiLo, rec.PhiPer[k])
			phiHi = math.Max(phiHi, rec.PhiPer[k])
		}
	}
	if phiHi >= phiLo {
		rec.PhiGap = phiHi - phiLo
	}
	if e.poIdx >= 0 {
		m := e.shares[e.poIdx]
		if m < shareFloor {
			m = shareFloor
		}
		rec.PODelay = mm1.Solve(e.caps[e.poIdx]/m, e.workPop).W
	}
	rec.Solver = e.solver.Stats().Since(prevStats)
	e.tick++
	return rec
}

// Run executes the scenario's full trajectory. The Options worker knob is
// documentation-grade only (see Options.Workers); Stats receives the run's
// solver telemetry once at the end.
func Run(sc *scenario.Scenario, opt Options) (*Trajectory, error) {
	e, err := New(sc)
	if err != nil {
		return nil, err
	}
	tr := &Trajectory{
		Name:      sc.Name,
		Title:     sc.Title,
		Providers: append([]string(nil), e.names...),
		Metrics:   append([]string(nil), sc.Sweep.Metrics...),
		Ticks:     make([]TickRecord, 0, e.Ticks()),
	}
	for e.Tick() < e.Ticks() {
		tr.Ticks = append(tr.Ticks, e.Step())
	}
	if opt.Stats != nil {
		opt.Stats.Add(e.Stats())
	}
	return tr, nil
}
