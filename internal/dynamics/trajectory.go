package dynamics

import (
	"fmt"
	"math"

	"github.com/netecon-sim/publicoption/internal/core"
	"github.com/netecon-sim/publicoption/internal/scenario"
	"github.com/netecon-sim/publicoption/internal/sweep"
)

// Trajectory is a completed simulation run: one TickRecord per tick, plus
// the labels needed to render it without the scenario in hand.
type Trajectory struct {
	Name      string       `json:"name"`
	Title     string       `json:"title"`
	Providers []string     `json:"providers"`
	Metrics   []string     `json:"metrics,omitempty"`
	Ticks     []TickRecord `json:"ticks"`
}

// metrics resolves the recorded metric list with the scenario default.
func (tr *Trajectory) metrics() []string {
	if len(tr.Metrics) == 0 {
		return []string{scenario.MetricPhi}
	}
	return tr.Metrics
}

// Tables renders the trajectory as time-series tables (X = tick): one table
// per recorded metric, plus a controls table carrying prices, capacities,
// the traffic multiplier, and — when a Public Option is present — its M/M/1
// delay. Tables serialize with sweep.Table.WriteCSV and render with the
// root package's chart helpers, exactly like static sweep results.
func (tr *Trajectory) Tables() []*sweep.Table {
	var tables []*sweep.Table
	perProvider := func(title, yLabel string, value func(rec *TickRecord, k int) float64) *sweep.Table {
		t := &sweep.Table{Title: title, XLabel: "tick", YLabel: yLabel}
		for k, name := range tr.Providers {
			s := sweep.Series{Name: name}
			for i := range tr.Ticks {
				s.Append(float64(tr.Ticks[i].Tick), value(&tr.Ticks[i], k))
			}
			t.Add(s)
		}
		return t
	}
	for _, m := range tr.metrics() {
		switch m {
		case scenario.MetricPhi:
			t := &sweep.Table{Title: tr.Title + " — consumer surplus", XLabel: "tick", YLabel: "phi"}
			phi := sweep.Series{Name: "phi"}
			gap := sweep.Series{Name: "phi_gap"}
			for i := range tr.Ticks {
				phi.Append(float64(tr.Ticks[i].Tick), tr.Ticks[i].Phi)
				gap.Append(float64(tr.Ticks[i].Tick), tr.Ticks[i].PhiGap)
			}
			t.Add(phi)
			t.Add(gap)
			tables = append(tables, t)
		case scenario.MetricPsi:
			tables = append(tables, perProvider(tr.Title+" — ISP revenue", "psi",
				func(rec *TickRecord, k int) float64 { return rec.Psi[k] }))
		case scenario.MetricShare:
			tables = append(tables, perProvider(tr.Title+" — market shares", "share",
				func(rec *TickRecord, k int) float64 { return rec.Shares[k] }))
		case scenario.MetricUtilization:
			tables = append(tables, perProvider(tr.Title+" — utilization", "utilization",
				func(rec *TickRecord, k int) float64 { return rec.Util[k] }))
		}
	}
	ctrl := &sweep.Table{Title: tr.Title + " — controls", XLabel: "tick", YLabel: "value"}
	mult := sweep.Series{Name: "multiplier"}
	nuBar := sweep.Series{Name: "nu_bar"}
	for i := range tr.Ticks {
		mult.Append(float64(tr.Ticks[i].Tick), tr.Ticks[i].Multiplier)
		nuBar.Append(float64(tr.Ticks[i].Tick), tr.Ticks[i].NuBar)
	}
	ctrl.Add(mult)
	ctrl.Add(nuBar)
	for k, name := range tr.Providers {
		s := sweep.Series{Name: "price/" + name}
		for i := range tr.Ticks {
			s.Append(float64(tr.Ticks[i].Tick), tr.Ticks[i].Prices[k])
		}
		ctrl.Add(s)
	}
	if tr.hasPODelay() {
		s := sweep.Series{Name: "po_delay"}
		for i := range tr.Ticks {
			s.Append(float64(tr.Ticks[i].Tick), tr.Ticks[i].PODelay)
		}
		ctrl.Add(s)
	}
	tables = append(tables, ctrl)
	return tables
}

// hasPODelay reports whether any tick recorded a Public Option delay.
func (tr *Trajectory) hasPODelay() bool {
	for i := range tr.Ticks {
		if tr.Ticks[i].PODelay > 0 {
			return true
		}
	}
	return false
}

// GridLayers are the per-provider heatmap layers Grid renders.
var GridLayers = []string{"share", "price", "psi", "util"}

// Grid renders the trajectory as a providers×ticks heatmap grid (one row
// per provider, one column per tick) with a layer per per-provider series —
// the `pubopt simulate -format heatmap` view.
func (tr *Trajectory) Grid() *sweep.Grid {
	xs := make([]float64, len(tr.Ticks))
	for i := range tr.Ticks {
		xs[i] = float64(tr.Ticks[i].Tick)
	}
	ys := make([]float64, len(tr.Providers))
	for k := range tr.Providers {
		ys[k] = float64(k)
	}
	g := sweep.NewGrid(tr.Title, "tick", "provider", xs, ys, GridLayers)
	for i := range tr.Ticks {
		rec := &tr.Ticks[i]
		for k := range tr.Providers {
			g.Layer("share").Z[k][i] = rec.Shares[k]
			g.Layer("price").Z[k][i] = rec.Prices[k]
			g.Layer("psi").Z[k][i] = rec.Psi[k]
			g.Layer("util").Z[k][i] = rec.Util[k]
		}
	}
	return g
}

// Converged reports whether the trajectory settled: over the final window+1
// records, no share, price, or capacity moved by more than tol between
// consecutive ticks. False when the trajectory is shorter than the window.
func (tr *Trajectory) Converged(window int, tol float64) bool {
	if window < 1 || len(tr.Ticks) < window+1 {
		return false
	}
	for i := len(tr.Ticks) - window; i < len(tr.Ticks); i++ {
		prev, cur := &tr.Ticks[i-1], &tr.Ticks[i]
		for k := range cur.Shares {
			if math.Abs(cur.Shares[k]-prev.Shares[k]) > tol ||
				math.Abs(cur.Prices[k]-prev.Prices[k]) > tol ||
				math.Abs(cur.Caps[k]-prev.Caps[k]) > tol {
				return false
			}
		}
	}
	return true
}

// FixedPointGap measures how far a tick record sits from the static
// Theorem-1/Assumption-5 equilibrium of its own frozen state: the market is
// re-solved one-shot at the record's capacities, strategies, and traffic
// multiplier, and the largest per-provider share deviation is returned. A
// converged trajectory of a well-formed loop is a fixed point of the
// partial-adjustment map, so this gap contracts to solver tolerance — the
// invariant the fixed-point test battery asserts at 1e-6.
func FixedPointGap(sc *scenario.Scenario, rec TickRecord) (float64, error) {
	e, err := New(sc)
	if err != nil {
		return 0, err
	}
	if len(rec.Shares) != len(e.names) {
		return 0, fmt.Errorf("dynamics: record has %d providers, scenario %q has %d", len(rec.Shares), sc.Name, len(e.names))
	}
	e.scalePop(rec.Multiplier)
	copy(e.caps, rec.Caps)
	for k := range e.strats {
		e.strats[k] = core.Strategy{Kappa: rec.Kappas[k], C: rec.Prices[k]}
	}
	out := e.solveMarket()
	var gap float64
	for k := range out.Shares {
		gap = math.Max(gap, math.Abs(out.Shares[k]-rec.Shares[k]))
	}
	return gap, nil
}
