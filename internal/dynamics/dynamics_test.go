package dynamics

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"github.com/netecon-sim/publicoption/internal/obs"
	"github.com/netecon-sim/publicoption/internal/scenario"
)

func getScenario(t *testing.T, name string) *scenario.Scenario {
	t.Helper()
	sc, ok := scenario.Get(name)
	if !ok {
		t.Fatalf("built-in scenario %q missing", name)
	}
	return sc
}

func runScenario(t *testing.T, sc *scenario.Scenario, workers int) *Trajectory {
	t.Helper()
	tr, err := Run(sc, Options{Workers: workers})
	if err != nil {
		t.Fatalf("Run(%s): %v", sc.Name, err)
	}
	if len(tr.Ticks) != sc.Dynamics.Ticks {
		t.Fatalf("Run(%s): %d ticks, want %d", sc.Name, len(tr.Ticks), sc.Dynamics.Ticks)
	}
	return tr
}

// TestFixedPointAgreement is the battery's headline invariant: every
// convergent built-in dynamic scenario's trajectory limit is a fixed point
// of the loop, and a fixed point of partial adjustment is exactly the
// static Theorem-1/Assumption-5 equilibrium of its own frozen state — so
// re-solving the market one-shot at the final record must reproduce the
// final shares within 1e-6.
func TestFixedPointAgreement(t *testing.T) {
	converged := 0
	for _, name := range scenario.DynamicsNames() {
		sc := getScenario(t, name)
		tr := runScenario(t, sc, 0)
		if !tr.Converged(5, 1e-9) {
			t.Logf("%s: transient at tick %d (by design for shock/cycle scenarios)", name, len(tr.Ticks))
			continue
		}
		converged++
		last := tr.Ticks[len(tr.Ticks)-1]
		gap, err := FixedPointGap(sc, last)
		if err != nil {
			t.Fatalf("%s: FixedPointGap: %v", name, err)
		}
		if gap > 1e-6 {
			t.Errorf("%s: converged trajectory sits %g from the static equilibrium, want ≤ 1e-6", name, gap)
		}
	}
	if converged == 0 {
		t.Fatal("no built-in dynamic scenario converged; the fixed-point battery asserted nothing")
	}
}

// TestFixedPointGapFalsifiable doctors the loop and checks the battery's
// metric actually fires: a trajectory whose shares are nudged off the
// migration equilibrium every tick (a biased actuator) must report a gap
// far above the 1e-6 agreement bound, and so must a hand-perturbed record.
// Without this, a FixedPointGap that silently returned 0 would pass the
// agreement test vacuously.
func TestFixedPointGapFalsifiable(t *testing.T) {
	sc := getScenario(t, "dyn-convergence")
	e, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	var last TickRecord
	for e.Tick() < e.Ticks() {
		last = e.Step()
		// Doctored loop: drain 0.5% of provider 0's share into provider 1
		// after every tick, as a buggy actuator would.
		e.shares[0] -= 0.005
		e.shares[1] += 0.005
		last.Shares[0] -= 0.005
		last.Shares[1] += 0.005
	}
	gap, err := FixedPointGap(sc, last)
	if err != nil {
		t.Fatal(err)
	}
	if gap <= 1e-6 {
		t.Fatalf("doctored trajectory reports gap %g; the agreement test could never fail", gap)
	}

	// And a single perturbed record, independent of the loop.
	tr := runScenario(t, sc, 0)
	rec := tr.Ticks[len(tr.Ticks)-1]
	rec.Shares = append([]float64(nil), rec.Shares...)
	rec.Shares[0] += 1e-3
	rec.Shares[1] -= 1e-3
	gap, err = FixedPointGap(sc, rec)
	if err != nil {
		t.Fatal(err)
	}
	if gap <= 1e-6 {
		t.Fatalf("perturbed record reports gap %g, want > 1e-6", gap)
	}
}

// TestTrajectoryDeterministic pins the determinism contract: the same
// scenario (including a seeded noise process) produces the bit-identical
// trajectory on every run and for every worker count — Options.Workers is
// execution-only and ticks are sequential by construction.
func TestTrajectoryDeterministic(t *testing.T) {
	sc := getScenario(t, "dyn-demand-shock")
	sc.Dynamics.Traffic = &scenario.TrafficSpec{
		Process: scenario.TrafficNoise, Amplitude: 0.3, Seed: 11,
	}
	marshal := func(tr *Trajectory) string {
		b, err := json.Marshal(tr)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	base := marshal(runScenario(t, sc, 0))
	for _, workers := range []int{1, 4, 16} {
		if got := marshal(runScenario(t, sc, workers)); got != base {
			t.Fatalf("trajectory differs at workers=%d", workers)
		}
	}
	if got := marshal(runScenario(t, sc, 0)); got != base {
		t.Fatal("identical reruns produced different trajectories")
	}

	// Falsifiability of the comparison itself: a different noise seed must
	// change the trajectory.
	sc.Dynamics.Traffic.Seed = 12
	if got := marshal(runScenario(t, sc, 0)); got == base {
		t.Fatal("different noise seeds produced identical trajectories")
	}
}

// TestRestoreContinuesTrajectory checks TickRecord's role as resume state:
// a fresh engine restored from a mid-run record and stepped to the end
// lands on the uninterrupted trajectory (within the warm-start tolerance
// Engine.Restore documents — warm brackets are path-dependent at ~1e-9 per
// solve, so economically the trajectories are identical).
func TestRestoreContinuesTrajectory(t *testing.T) {
	for _, name := range []string{"dyn-convergence", "dyn-demand-shock"} {
		sc := getScenario(t, name)
		full := runScenario(t, sc, 0)
		mid := len(full.Ticks) / 2

		e, err := New(sc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := e.Restore(full.Ticks[mid]); err != nil {
			t.Fatalf("%s: Restore: %v", name, err)
		}
		if e.Tick() != mid+1 {
			t.Fatalf("%s: restored to tick %d, want %d", name, e.Tick(), mid+1)
		}
		var last TickRecord
		for e.Tick() < e.Ticks() {
			last = e.Step()
		}
		want := full.Ticks[len(full.Ticks)-1]
		for k := range want.Shares {
			if math.Abs(last.Shares[k]-want.Shares[k]) > 1e-6 {
				t.Errorf("%s: resumed share[%d]=%g, uninterrupted %g", name, k, last.Shares[k], want.Shares[k])
			}
			if math.Abs(last.Caps[k]-want.Caps[k]) > 1e-6 {
				t.Errorf("%s: resumed caps[%d]=%g, uninterrupted %g", name, k, last.Caps[k], want.Caps[k])
			}
			if math.Abs(last.Prices[k]-want.Prices[k]) > 1e-6 {
				t.Errorf("%s: resumed price[%d]=%g, uninterrupted %g", name, k, last.Prices[k], want.Prices[k])
			}
		}
	}
}

// TestRestoreRejectsBadRecords pins Restore's input contract.
func TestRestoreRejectsBadRecords(t *testing.T) {
	sc := getScenario(t, "dyn-convergence")
	e, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	rec := e.Step()
	if err := e.Restore(TickRecord{Tick: -1}); err == nil {
		t.Error("negative tick accepted")
	}
	if err := e.Restore(TickRecord{Tick: sc.Dynamics.Ticks}); err == nil {
		t.Error("past-the-end tick accepted")
	}
	bad := rec
	bad.Shares = bad.Shares[:1]
	if err := e.Restore(bad); err == nil {
		t.Error("shape-mismatched record accepted")
	}
}

// TestTickInvariants checks per-tick sanity over every builtin: shares
// sum to 1 and stay in [0,1], prices stay within [0, v_max], capacities
// stay positive, and the solver telemetry delta is attributed per tick.
func TestTickInvariants(t *testing.T) {
	for _, name := range scenario.DynamicsNames() {
		sc := getScenario(t, name)
		var sink obs.Counters
		tr, err := Run(sc, Options{Stats: &sink})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var tickSolves uint64
		for i := range tr.Ticks {
			rec := &tr.Ticks[i]
			var sum float64
			for k, m := range rec.Shares {
				if m < 0 || m > 1 || math.IsNaN(m) {
					t.Fatalf("%s tick %d: share[%d]=%g", name, rec.Tick, k, m)
				}
				sum += m
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("%s tick %d: shares sum to %g", name, rec.Tick, sum)
			}
			for k, c := range rec.Prices {
				if c < 0 || math.IsNaN(c) {
					t.Fatalf("%s tick %d: price[%d]=%g", name, rec.Tick, k, c)
				}
			}
			for k, cap := range rec.Caps {
				if !(cap > 0) {
					t.Fatalf("%s tick %d: caps[%d]=%g", name, rec.Tick, k, cap)
				}
			}
			if rec.Solver.Solves == 0 {
				t.Fatalf("%s tick %d: no per-tick solver delta recorded", name, rec.Tick)
			}
			tickSolves += rec.Solver.Solves
		}
		// The per-tick deltas must tile the run total exactly.
		if total := sink.Snapshot().Solves; total != tickSolves {
			t.Fatalf("%s: tick deltas sum to %d solves, run total %d", name, tickSolves, total)
		}
	}
}

// TestGradientStaysWithinPriceBounds pins the oscillation scenario's
// interior limit cycle: the gradient re-pricer must keep moving (no
// convergence) yet never slam into the clamps [0, v_max] — a degenerate
// clamp-to-clamp ping-pong would make the scenario meaningless.
func TestGradientStaysWithinPriceBounds(t *testing.T) {
	sc := getScenario(t, "dyn-oscillation")
	tr := runScenario(t, sc, 0)
	if tr.Converged(5, 1e-9) {
		t.Fatal("dyn-oscillation converged; it exists to exhibit a limit cycle")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range tr.Ticks {
		c := tr.Ticks[i].Prices[0]
		lo = math.Min(lo, c)
		hi = math.Max(hi, c)
	}
	if !(lo > 0.01) || !(hi < 0.99) {
		t.Fatalf("oscillation prices span [%g, %g]; the cycle must stay interior", lo, hi)
	}
	if hi-lo < 0.05 {
		t.Fatalf("oscillation price swing %g too small to be a limit cycle", hi-lo)
	}
}

// TestNewRejectsStaticScenario pins the dispatch boundary from this side;
// scenario.Run holds the mirror-image rejection.
func TestNewRejectsStaticScenario(t *testing.T) {
	sc := getScenario(t, "public-option-duopoly")
	if _, err := New(sc); err == nil || !strings.Contains(err.Error(), "dynamics") {
		t.Fatalf("static scenario accepted by dynamics.New (err=%v)", err)
	}
}

// TestStepPanicsPastEnd pins the engine's hard stop.
func TestStepPanicsPastEnd(t *testing.T) {
	sc := getScenario(t, "dyn-convergence")
	sc.Dynamics.Ticks = 1
	e, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	defer func() {
		if recover() == nil {
			t.Error("Step past the configured tick count did not panic")
		}
	}()
	e.Step()
}

// TestTablesAndGridShapes checks the render surface: one table per
// recorded metric plus the controls table, and a providers×ticks grid with
// every layer filled.
func TestTablesAndGridShapes(t *testing.T) {
	sc := getScenario(t, "dyn-po-entry")
	tr := runScenario(t, sc, 0)
	tables := tr.Tables()
	if want := len(sc.Sweep.Metrics) + 1; len(tables) != want {
		t.Fatalf("Tables: %d tables, want %d (metrics + controls)", len(tables), want)
	}
	for _, tbl := range tables {
		if len(tbl.Series) == 0 {
			t.Fatalf("table %q has no series", tbl.Title)
		}
		for _, s := range tbl.Series {
			if len(s.X) != len(tr.Ticks) {
				t.Fatalf("table %q series %q has %d points, want %d", tbl.Title, s.Name, len(s.X), len(tr.Ticks))
			}
		}
	}
	g := tr.Grid()
	if len(g.Xs) != len(tr.Ticks) || len(g.Ys) != len(tr.Providers) {
		t.Fatalf("Grid: %dx%d, want %dx%d", len(g.Xs), len(g.Ys), len(tr.Ticks), len(tr.Providers))
	}
	if len(g.Layers) != len(GridLayers) {
		t.Fatalf("Grid: %d layers, want %d", len(g.Layers), len(GridLayers))
	}
}
