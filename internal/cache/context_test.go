package cache

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestDoContextCoalescedCancel: a coalesced waiter whose context dies
// returns immediately with ctx.Err while the in-flight solve completes and
// still populates the cache for later callers.
func TestDoContextCoalescedCancel(t *testing.T) {
	s := New(8, 0)
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Do("k", func() (any, error) {
			close(started)
			<-release
			return 42, nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, status, err := s.DoContext(ctx, "k", func() (any, error) {
		t.Error("coalesced caller must not solve")
		return nil, nil
	})
	if status != Coalesced || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got status %v err %v", status, err)
	}

	close(release)
	wg.Wait()
	v, status, err := s.DoContext(context.Background(), "k", nil)
	if err != nil || status != Hit || v != 42 {
		t.Fatalf("original solve did not populate cache: %v %v %v", v, status, err)
	}
}

// TestDoContextPoolWaitCancel: a would-be solver that cannot get a pool
// slot before its context dies gives up without solving.
func TestDoContextPoolWaitCancel(t *testing.T) {
	s := New(8, 1) // one-slot pool
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Do("occupant", func() (any, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, status, err := s.DoContext(ctx, "blocked", func() (any, error) {
		t.Error("solve ran despite canceled pool wait")
		return nil, nil
	})
	if status != Miss || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled pool wait got status %v err %v", status, err)
	}
	close(release)
	wg.Wait()

	// The failed flight must not be cached and must not wedge the key.
	v, status, err := s.Do("blocked", func() (any, error) { return 7, nil })
	if err != nil || status != Miss || v != 7 {
		t.Fatalf("key wedged after canceled flight: %v %v %v", v, status, err)
	}
}

// TestReserveContext covers the cancellable pool reservation.
func TestReserveContext(t *testing.T) {
	unbounded := New(0, 0)
	rel, err := unbounded.ReserveContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()

	s := New(0, 1)
	rel, err = s.ReserveContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ReserveContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("full pool with dead context returned %v", err)
	}
	rel()
	rel, err = s.ReserveContext(context.Background())
	if err != nil {
		t.Fatalf("slot not released: %v", err)
	}
	rel()
}
