package cache

import (
	"fmt"
	"testing"
	"time"
)

func TestPutAndLookup(t *testing.T) {
	s := New(2, 0)
	if _, ok := s.Lookup("a"); ok {
		t.Fatal("empty store reported a hit")
	}
	s.Put("a", 1)
	v, ok := s.Lookup("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Lookup(a) = %v, %v after Put", v, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats after one miss and one hit: %+v", st)
	}

	// Put obeys the LRU bound like solved results do.
	s.Put("b", 2)
	s.Put("c", 3) // evicts "a" (b was inserted after a's probe-touch)
	st = s.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats after overflow: %+v", st)
	}
	if _, ok := s.Get("c"); !ok {
		t.Fatal("most recent Put evicted")
	}
}

func TestPutDisabledCache(t *testing.T) {
	s := New(0, 0) // caching disabled
	s.Put("a", 1)
	if _, ok := s.Lookup("a"); ok {
		t.Fatal("disabled cache stored a Put")
	}
}

func TestLookupDoesNotCoalesce(t *testing.T) {
	// A Lookup during an in-flight Do of the same key must return a miss
	// immediately instead of blocking on the flight.
	s := New(4, 0)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Do("k", func() (any, error) {
			close(started)
			<-release
			return 42, nil
		})
	}()
	<-started
	if _, ok := s.Lookup("k"); ok {
		t.Fatal("Lookup hit a key that is still solving")
	}
	close(release)
	<-done
	if v, ok := s.Lookup("k"); !ok || v.(int) != 42 {
		t.Fatalf("Lookup after solve = %v, %v", v, ok)
	}
}

func TestPutOverwriteKeepsSingleEntry(t *testing.T) {
	s := New(4, 0)
	for i := 0; i < 3; i++ {
		s.Put("k", i)
	}
	if st := s.Stats(); st.Entries != 1 {
		t.Fatalf("repeated Put of one key left %d entries", st.Entries)
	}
	if v, _ := s.Get("k"); v.(int) != 2 {
		t.Fatalf("Put did not overwrite: %v", v)
	}
}

func TestKeyDistinguishesCellSpecs(t *testing.T) {
	type spec struct {
		X float64 `json:"x"`
		Y float64 `json:"y"`
	}
	a, err := Key("batch/cell/v1", spec{X: 1, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Key("batch/cell/v1", spec{X: 1, Y: 3})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Key("batch/cell/v1", spec{X: 1, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("distinct cells share a key")
	}
	if a != c {
		t.Fatal("identical cells disagree on the key")
	}
	if fmt.Sprintf("%x", a) == "" {
		t.Fatal("empty key")
	}
}

func TestReserveBoundsConcurrency(t *testing.T) {
	s := New(0, 1)
	release := s.Reserve()
	acquired := make(chan struct{})
	go func() {
		r := s.Reserve()
		close(acquired)
		r()
	}()
	select {
	case <-acquired:
		t.Fatal("second Reserve succeeded while the only slot was held")
	case <-time.After(20 * time.Millisecond):
	}
	release()
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("released slot was never re-acquired")
	}

	// Unbounded stores hand out no-op slots without blocking.
	u := New(0, 0)
	r1 := u.Reserve()
	r2 := u.Reserve()
	r1()
	r2()
}
