package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestKeyDeterministicAndDistinct(t *testing.T) {
	type spec struct {
		Name string  `json:"name"`
		Nu   float64 `json:"nu"`
	}
	a1, err := Key("scenario", spec{Name: "x", Nu: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := Key("scenario", spec{Name: "x", Nu: 0.4})
	if a1 != a2 {
		t.Fatalf("identical specs hash differently: %s vs %s", a1, a2)
	}
	b, _ := Key("scenario", spec{Name: "x", Nu: 0.5})
	if a1 == b {
		t.Fatal("distinct specs collide")
	}
	// Length-prefixing: part boundaries must matter.
	c1, _ := Key("ab", "c")
	c2, _ := Key("a", "bc")
	if c1 == c2 {
		t.Fatal(`Key("ab","c") == Key("a","bc")`)
	}
}

func TestDoHitMiss(t *testing.T) {
	s := New(8, 0)
	calls := 0
	solve := func() (any, error) { calls++; return 42, nil }

	v, st, err := s.Do("k", solve)
	if err != nil || v != 42 || st != Miss {
		t.Fatalf("first Do = (%v, %v, %v), want (42, miss, nil)", v, st, err)
	}
	v, st, err = s.Do("k", solve)
	if err != nil || v != 42 || st != Hit {
		t.Fatalf("second Do = (%v, %v, %v), want (42, hit, nil)", v, st, err)
	}
	if calls != 1 {
		t.Fatalf("solve ran %d times, want 1", calls)
	}
	if got := s.Stats(); got.Hits != 1 || got.Misses != 1 || got.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", got)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	s := New(8, 0)
	boom := errors.New("boom")
	calls := 0
	_, _, err := s.Do("k", func() (any, error) { calls++; return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	_, st, err := s.Do("k", func() (any, error) { calls++; return 7, nil })
	if err != nil || st != Miss {
		t.Fatalf("retry after error = (%v, %v), want (miss, nil)", st, err)
	}
	if calls != 2 {
		t.Fatalf("solve ran %d times, want 2 (errors must not be cached)", calls)
	}
}

func TestPanicRecoveredToError(t *testing.T) {
	s := New(8, 0)
	_, _, err := s.Do("k", func() (any, error) { panic("poison") })
	if err == nil {
		t.Fatal("panicking solve returned nil error")
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("panicked solve was cached")
	}
}

func TestLRUEvictionBoundsEntries(t *testing.T) {
	const max = 4
	s := New(max, 0)
	for i := 0; i < 3*max; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, _, err := s.Do(key, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Entries != max {
		t.Fatalf("entries = %d, want LRU bound %d", st.Entries, max)
	}
	if st.Evictions != 2*max {
		t.Fatalf("evictions = %d, want %d", st.Evictions, 2*max)
	}
	// The oldest keys are gone, the newest survive.
	if _, ok := s.Get("k0"); ok {
		t.Fatal("oldest key survived eviction")
	}
	if _, ok := s.Get(fmt.Sprintf("k%d", 3*max-1)); !ok {
		t.Fatal("newest key was evicted")
	}
}

func TestLRUTouchOnHit(t *testing.T) {
	s := New(2, 0)
	s.Do("a", func() (any, error) { return 1, nil })
	s.Do("b", func() (any, error) { return 2, nil })
	s.Do("a", func() (any, error) { t.Fatal("unexpected solve"); return nil, nil }) // touch a
	s.Do("c", func() (any, error) { return 3, nil })                                // evicts b, not a
	if _, ok := s.Get("a"); !ok {
		t.Fatal("recently used key evicted")
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("least recently used key survived")
	}
}

func TestSingleflightCoalescesIdenticalKeys(t *testing.T) {
	const waiters = 16
	s := New(8, 0)
	var calls atomic.Int64
	release := make(chan struct{})
	entered := make(chan struct{})

	solve := func() (any, error) {
		calls.Add(1)
		close(entered)
		<-release
		return "result", nil
	}

	var wg sync.WaitGroup
	statuses := make([]Status, waiters)
	values := make([]any, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			values[i], statuses[i], errs[i] = s.Do("k", solve)
		}()
	}
	<-entered // the first solve is running; everyone else must coalesce
	// Give the remaining goroutines a chance to reach Do. They either see
	// the inflight entry (coalesced) or, if scheduled after release, a hit;
	// in no interleaving may solve run twice.
	release <- struct{}{}
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("solve ran %d times for one key under %d concurrent requests, want exactly 1", n, waiters)
	}
	var misses int
	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if values[i] != "result" {
			t.Fatalf("waiter %d got %v", i, values[i])
		}
		if statuses[i] == Miss {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d waiters reported miss, want exactly 1 (the solver)", misses)
	}
}

func TestSingleflightPropagatesErrorToWaiters(t *testing.T) {
	s := New(8, 0)
	boom := errors.New("boom")
	release := make(chan struct{})
	entered := make(chan struct{})
	go s.Do("k", func() (any, error) { close(entered); <-release; return nil, boom })
	<-entered
	done := make(chan error)
	go func() {
		_, _, err := s.Do("k", func() (any, error) { t.Error("waiter must not solve"); return nil, nil })
		done <- err
	}()
	// Let the waiter coalesce, then release the solver.
	for s.Stats().Coalesced == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-done; !errors.Is(err, boom) {
		t.Fatalf("coalesced waiter got %v, want the solver's error", err)
	}
}

func TestWorkerPoolBoundsConcurrentSolves(t *testing.T) {
	const workers = 2
	const jobs = 10
	s := New(jobs, workers)
	var inFlight, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Do(fmt.Sprintf("k%d", i), func() (any, error) {
				n := inFlight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				// Hold the slot long enough for contention to be observable.
				for j := 0; j < 1000; j++ {
					_ = j
				}
				inFlight.Add(-1)
				return i, nil
			})
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent solves, pool bound is %d", p, workers)
	}
	if st := s.Stats(); st.Misses != jobs {
		t.Fatalf("misses = %d, want %d distinct solves", st.Misses, jobs)
	}
}

func TestZeroMaxDisablesCachingButKeepsSingleflight(t *testing.T) {
	s := New(0, 0)
	calls := 0
	s.Do("k", func() (any, error) { calls++; return 1, nil })
	_, st, _ := s.Do("k", func() (any, error) { calls++; return 1, nil })
	if st != Miss || calls != 2 {
		t.Fatalf("max=0 store cached (status %v, %d calls)", st, calls)
	}
	if got := s.Stats(); got.Entries != 0 {
		t.Fatalf("max=0 store holds %d entries", got.Entries)
	}
}
