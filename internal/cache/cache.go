// Package cache provides the content-addressed result store behind the
// pubopt HTTP service: solved scenario and experiment outcomes keyed by the
// canonical JSON hash of their full specification.
//
// The store combines three mechanisms that together make a solver safe to
// put behind heavy traffic:
//
//   - an LRU bound on the number of cached results, so memory stays fixed
//     no matter how many distinct queries arrive;
//   - singleflight deduplication, so a thundering herd of identical
//     requests triggers exactly one solve while the rest wait for it;
//   - a bounded worker pool around the solve itself, so concurrent
//     *distinct* requests cannot oversubscribe the CPU (each solve already
//     parallelizes internally via sweep.RunParallel).
//
// Results are treated as immutable once stored: the model is deterministic,
// so a key never goes stale and there is no TTL. Failed solves are not
// cached — errors propagate to every coalesced waiter and the next request
// retries.
package cache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
)

// Key hashes the parts into a content address: each part is serialized to
// canonical JSON (struct fields in declaration order, maps sorted by key —
// the encoding/json guarantees) and the concatenation is SHA-256 hashed.
// Two requests share a key exactly when their specifications are
// byte-identical under canonical serialization.
func Key(parts ...any) (string, error) {
	h := sha256.New()
	for i, p := range parts {
		b, err := json.Marshal(p)
		if err != nil {
			return "", fmt.Errorf("cache: serializing key part %d: %w", i, err)
		}
		// Length-prefix each part so ("ab","c") and ("a","bc") differ.
		fmt.Fprintf(h, "%d:", len(b))
		h.Write(b)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Status classifies how Do satisfied a request.
type Status int

const (
	// Miss: this call executed the solve (and cached the result on success).
	Miss Status = iota
	// Hit: the result was already cached.
	Hit
	// Coalesced: an identical solve was already in flight; this call waited
	// for it instead of solving again.
	Coalesced
)

// String returns the lowercase label used in API responses and metrics.
func (s Status) String() string {
	switch s {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "miss"
	}
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Hits       uint64 // requests served from the cache
	Misses     uint64 // requests that executed a solve
	Coalesced  uint64 // requests that waited on an in-flight identical solve
	Evictions  uint64 // entries dropped by the LRU bound
	Entries    int    // current cached entries
	MaxEntries int    // the LRU bound (0 = caching disabled)
}

// flight is one in-progress solve; waiters block on done and then read
// val/err (written exactly once before done is closed).
type flight struct {
	done chan struct{}
	val  any
	err  error
}

type entry struct {
	key string
	val any
}

// Store is a bounded, singleflight-deduplicating result cache. The zero
// value is not usable; construct with New.
type Store struct {
	sem chan struct{} // bounds concurrent solves; nil = unbounded

	mu        sync.Mutex
	entries   map[string]*list.Element
	ll        *list.List // front = most recently used
	inflight  map[string]*flight
	max       int
	hits      uint64
	misses    uint64
	coalesced uint64
	evictions uint64
}

// New returns a store holding at most maxEntries results (0 disables
// caching but keeps singleflight and the pool) and running at most workers
// solves concurrently (<= 0 means unbounded).
func New(maxEntries, workers int) *Store {
	s := &Store{
		entries:  make(map[string]*list.Element),
		ll:       list.New(),
		inflight: make(map[string]*flight),
		max:      maxEntries,
	}
	if workers > 0 {
		s.sem = make(chan struct{}, workers)
	}
	return s
}

// Reserve blocks until a worker-pool slot is free and returns its release
// func (a no-op pair when the pool is unbounded). It lets callers that
// execute solves outside Do — the batch endpoint's grid path, which runs
// its own row-parallel solve — count against the same concurrency bound as
// pooled solves.
func (s *Store) Reserve() (release func()) {
	if s.sem == nil {
		return func() {}
	}
	s.sem <- struct{}{}
	return func() { <-s.sem }
}

// ReserveContext is Reserve with cancellable waiting: when ctx ends before
// a pool slot frees up, it returns ctx.Err() and no slot is held.
func (s *Store) ReserveContext(ctx context.Context) (release func(), err error) {
	if s.sem == nil {
		return func() {}, nil
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Do returns the cached value for key, or executes solve to produce it.
// Concurrent calls with the same key run solve exactly once: the first
// caller solves (inside the worker pool), the rest block until it finishes
// and share its value or error. A panic inside solve is recovered into an
// error so one poisonous request cannot take the server down.
func (s *Store) Do(key string, solve func() (any, error)) (any, Status, error) {
	return s.DoContext(context.Background(), key, solve)
}

// DoContext is Do with cancellable waiting. A coalesced caller whose ctx
// ends before the in-flight solve completes returns ctx.Err() immediately —
// the solve itself keeps running for the remaining waiters and still
// populates the cache. A solving caller whose ctx ends while it waits for a
// worker-pool slot gives up before solving; its error propagates to every
// waiter coalesced onto it (failed solves are never cached, so the next
// request retries).
func (s *Store) DoContext(ctx context.Context, key string, solve func() (any, error)) (any, Status, error) {
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.ll.MoveToFront(el)
		s.hits++
		val := el.Value.(*entry).val
		s.mu.Unlock()
		return val, Hit, nil
	}
	if f, ok := s.inflight[key]; ok {
		s.coalesced++
		s.mu.Unlock()
		select {
		case <-f.done:
			return f.val, Coalesced, f.err
		case <-ctx.Done():
			return nil, Coalesced, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.misses++
	s.mu.Unlock()

	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			f.err = ctx.Err()
			s.mu.Lock()
			delete(s.inflight, key)
			s.mu.Unlock()
			close(f.done)
			return nil, Miss, f.err
		}
	}
	f.val, f.err = runSafe(solve)
	if s.sem != nil {
		<-s.sem
	}

	s.mu.Lock()
	delete(s.inflight, key)
	if f.err == nil {
		s.add(key, f.val)
	}
	s.mu.Unlock()
	close(f.done)
	return f.val, Miss, f.err
}

// Get returns the cached value without solving. It is a silent peek: the
// hit/miss counters are untouched (use Lookup for counted probes).
func (s *Store) Get(key string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Lookup returns the cached value for key, counting the probe as a hit or
// miss in Stats. It never solves and never coalesces — callers that plan to
// produce missing values themselves (the batch endpoint's per-cell path,
// where misses are solved in warm-started row batches rather than one
// singleflight each) probe with Lookup and insert with Put.
func (s *Store) Lookup(key string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put stores val under key without solving, subject to the same LRU bound
// as solved results (a no-op when caching is disabled). Put does not
// deduplicate against in-flight solves of the same key: the model is
// deterministic, so a racing solve writes the same bytes.
func (s *Store) Put(key string, val any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.add(key, val)
}

// add inserts under s.mu, evicting from the LRU tail past the bound.
func (s *Store) add(key string, val any) {
	if s.max <= 0 {
		return
	}
	if el, ok := s.entries[key]; ok {
		el.Value.(*entry).val = val
		s.ll.MoveToFront(el)
		return
	}
	s.entries[key] = s.ll.PushFront(&entry{key: key, val: val})
	for s.ll.Len() > s.max {
		back := s.ll.Back()
		s.ll.Remove(back)
		delete(s.entries, back.Value.(*entry).key)
		s.evictions++
	}
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:       s.hits,
		Misses:     s.misses,
		Coalesced:  s.coalesced,
		Evictions:  s.evictions,
		Entries:    s.ll.Len(),
		MaxEntries: s.max,
	}
}

func runSafe(solve func() (any, error)) (val any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cache: solve panicked: %v", r)
		}
	}()
	return solve()
}
