package core

import (
	"math"
	"os"
	"testing"
)

// goldenCase pins one solver output to its exact value at the time the
// floatcmp sweep landed (PR 7). The float-comparison refactor — routing
// κ sentinels through Strategy helpers and the market interpolation guard
// through numeric.AlmostEqual — must be behavior-preserving, and these
// goldens are the proof: any drift in the solved equilibria fails here.
//
// Regenerate (after an INTENDED numeric change only) with:
//
//	PUBOPT_PRINT_GOLDENS=1 go test ./internal/core/ -run TestSolverGoldens -v
type goldenCase struct {
	name string
	got  float64
	want float64
}

func solverGoldens() []goldenCase {
	pop := ensemble(7, 90)
	sat := pop.TotalUnconstrainedPerCapita()
	s := NewSolver(nil)

	interior := s.Competitive(Strategy{Kappa: 0.55, C: 0.4}, 0.4*sat, pop)
	kzero := s.Competitive(Strategy{Kappa: 0, C: 0.5}, 0.4*sat, pop)
	kone := s.Competitive(Strategy{Kappa: 1, C: 0.4}, 0.4*sat, pop)
	trivZero := s.Trivial(Strategy{Kappa: 0, C: 0.5}, 0.4*sat, pop)
	trivOne := s.Trivial(Strategy{Kappa: 1, C: 0.4}, 0.4*sat, pop)

	mk := NewMarket(s, pop, 0.4*sat)
	duo := mk.SolveDuopoly(
		ISP{Name: "i", Gamma: 0.6, Strategy: Strategy{Kappa: 1, C: 0.3}},
		ISP{Name: "po", Gamma: 0.4, Strategy: PublicOption},
	)
	tri := mk.SolveMarket([]ISP{
		{Name: "a", Gamma: 0.5, Strategy: Strategy{Kappa: 0.7, C: 0.35}},
		{Name: "b", Gamma: 0.3, Strategy: Strategy{Kappa: 1, C: 0.5}},
		{Name: "po", Gamma: 0.2, Strategy: PublicOption},
	})
	sub := mk.SolveSubsidizedDuopoly(
		SubsidizedISP{ISP: ISP{Name: "i", Gamma: 0.5, Strategy: Strategy{Kappa: 1, C: 0.3}}, Sigma: 0.6},
		SubsidizedISP{ISP: ISP{Name: "po", Gamma: 0.5, Strategy: PublicOption}},
	)

	return []goldenCase{
		{"interior/phi", interior.Phi(), 19.383454125739334},
		{"interior/psi", interior.Psi(), 2.1100233758832427},
		{"interior/premium", float64(interior.PremiumCount()), 25},
		{"kappa0/phi", kzero.Phi(), 19.230511150496834},
		{"kappa0/psi", kzero.Psi(), 0},
		{"kappa1/phi", kone.Phi(), 19.794412317234368},
		{"kappa1/premium", float64(kone.PremiumCount()), 50},
		{"trivial0/phi", trivZero.Phi(), 19.230511150496827},
		{"trivial1/phi", trivOne.Phi(), 19.794412317234368},
		{"duopoly/share0", duo.Shares[0], 0.6125391458704359},
		{"duopoly/phi", duo.Phi, 19.914356855081639},
		{"triopoly/share0", tri.Shares[0], 0.47696206122668811},
		{"triopoly/share1", tri.Shares[1], 0.33001415184368194},
		{"triopoly/phi", tri.Phi, 19.974629546309217},
		{"subsidy/share0", sub.Shares[0], 0.53106184670077172},
		{"subsidy/grossPhi", sub.GrossPhi, 19.703825041753419},
	}
}

func TestSolverGoldens(t *testing.T) {
	cases := solverGoldens()
	if os.Getenv("PUBOPT_PRINT_GOLDENS") != "" {
		for _, c := range cases {
			t.Logf("{%q, ..., %.17g},", c.name, c.got)
		}
		return
	}
	for _, c := range cases {
		if math.Float64bits(c.got) != math.Float64bits(c.want) {
			t.Errorf("%s = %.17g, want exactly %.17g (solver output drifted)", c.name, c.got, c.want)
		}
	}
}
