package core

import (
	"fmt"
	"math"

	"github.com/netecon-sim/publicoption/internal/numeric"
)

// The paper's §VI closes with a caveat to the idealized market-share
// objective: "ISPs might be able to use the CP-side revenue to subsidize
// the service fees for consumers so as to increase market share." This file
// implements that extension: consumers choose ISPs by total per-capita
// value Φ_I + σ_I·Ψ_I, where σ_I ∈ [0, 1] is the fraction of premium
// revenue ISP I rebates to its subscribers. σ = 0 recovers the paper's
// baseline model (Assumption 5 on Φ alone).
//
// The interesting question — answered by TestSubsidy* and the
// subsidized-duopoly example code — is whether a differentiating incumbent
// can use rebates to beat the Public Option while still hurting gross
// consumer surplus. Under full rebating the answer is structurally limited:
// the rebate is a transfer from CPs, who recover it from consumers outside
// the model, so the regulator's view of Φ alone still favors the Public
// Option.

// SubsidizedISP pairs an ISP with a rebate fraction σ.
type SubsidizedISP struct {
	ISP
	Sigma float64 // fraction of premium revenue rebated to subscribers, in [0, 1]
}

// Validate reports the first invalid parameter.
func (s SubsidizedISP) Validate() error {
	if s.Sigma < 0 || s.Sigma > 1 || math.IsNaN(s.Sigma) {
		return fmt.Errorf("core: subsidy fraction σ=%g outside [0,1]", s.Sigma)
	}
	return s.ISP.Validate()
}

// SubsidizedOutcome is a consumer-migration equilibrium under rebates.
type SubsidizedOutcome struct {
	ISPs   []SubsidizedISP
	Shares []float64
	Eqs    []*ClassEquilibrium
	// Value is the equalized per-capita consumer value Φ + σ·Ψ.
	Value float64
	// GrossPhi is the market's per-capita consumer surplus *excluding*
	// rebates — the quantity the paper's welfare analysis ranks regimes by.
	GrossPhi float64
}

// valueAtShare returns ISP k's per-capita consumer value at share m: the
// class-game surplus plus the rebated fraction of premium revenue (both per
// subscriber of this ISP).
func (mk *Market) valueAtShare(isp SubsidizedISP, m float64) (float64, *ClassEquilibrium) {
	phi, eq := mk.phiAtShare(isp.ISP, m)
	return phi + isp.Sigma*eq.Psi(), eq
}

// SolveSubsidizedDuopoly computes the migration equilibrium of two ISPs
// when consumers weigh rebates alongside surplus. The equalized quantity is
// Φ + σ·Ψ; the monotone structure of the baseline model carries over
// because Ψ, like Φ, is non-increasing in the ISP's own market share (more
// subscribers squeeze the same capacity). Plateau selection follows
// SolveDuopoly: capacity-proportional shares when consumers are indifferent
// at that split.
func (mk *Market) SolveSubsidizedDuopoly(a, b SubsidizedISP) *SubsidizedOutcome {
	for _, s := range []SubsidizedISP{a, b} {
		if err := s.Validate(); err != nil {
			panic(err)
		}
	}
	if a.Name == b.Name {
		panic("core: duopoly ISPs must have distinct names")
	}
	if math.Abs(a.Gamma+b.Gamma-1) > 1e-9 {
		panic(fmt.Sprintf("core: duopoly capacity shares must sum to 1, got %g", a.Gamma+b.Gamma))
	}
	gap := func(m float64) float64 {
		va, _ := mk.valueAtShare(a, m)
		vb, _ := mk.valueAtShare(b, 1-m)
		return va - vb
	}
	tol := mk.MigrationTol
	if tol <= 0 {
		tol = 1e-8
	}
	var m float64
	vGA, _ := mk.valueAtShare(a, a.Gamma)
	vGB, _ := mk.valueAtShare(b, b.Gamma)
	if math.Abs(vGA-vGB) <= 1e-9*math.Max(math.Max(vGA, vGB), 1) {
		m = a.Gamma
	} else {
		m = numeric.BisectDecreasing(gap, minShare, 1-minShare, tol)
	}
	va, eqA := mk.valueAtShare(a, m)
	vb, eqB := mk.valueAtShare(b, 1-m)
	out := &SubsidizedOutcome{
		ISPs:   []SubsidizedISP{a, b},
		Shares: []float64{m, 1 - m},
		Eqs:    []*ClassEquilibrium{eqA, eqB},
		Value:  math.Max(va, vb),
	}
	if m <= 2*minShare {
		out.Shares = []float64{0, 1}
		out.Value = vb
	} else if m >= 1-2*minShare {
		out.Shares = []float64{1, 0}
		out.Value = va
	}
	out.GrossPhi = out.Shares[0]*eqA.Phi() + out.Shares[1]*eqB.Phi()
	return out
}
