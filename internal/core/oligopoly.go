package core

import (
	"math"

	"github.com/netecon-sim/publicoption/internal/numeric"
)

// StrategyGrid enumerates candidate strategies for best-response searches:
// the cartesian product of the κ and c sample points.
type StrategyGrid struct {
	Kappas []float64
	Cs     []float64
}

// DefaultStrategyGrid covers the strategy box the paper explores: κ from
// neutral to full premium, c across the CP revenue range [0, 1].
func DefaultStrategyGrid() StrategyGrid {
	return StrategyGrid{
		Kappas: []float64{0, 0.2, 0.4, 0.6, 0.8, 1},
		Cs:     numeric.Linspace(0, 1, 21),
	}
}

// Strategies materializes the grid.
func (g StrategyGrid) Strategies() []Strategy {
	out := make([]Strategy, 0, len(g.Kappas)*len(g.Cs))
	for _, k := range g.Kappas {
		for _, c := range g.Cs {
			out = append(out, Strategy{Kappa: k, C: c})
		}
	}
	return out
}

// BestResponse finds, over the strategy grid, ISP `who`'s market-share
// maximizing strategy against the fixed strategies of the other ISPs
// (Theorem 6's object). It returns the best strategy, the outcome under it,
// and the share it achieves. Ties prefer earlier grid entries, and hence —
// with DefaultStrategyGrid's ordering — more neutral strategies.
func (mk *Market) BestResponse(isps []ISP, who int, grid StrategyGrid) (Strategy, *MarketOutcome, float64) {
	var (
		bestS   Strategy
		bestOut *MarketOutcome
		bestM   = math.Inf(-1)
	)
	cand := append([]ISP(nil), isps...)
	for _, s := range grid.Strategies() {
		cand[who].Strategy = s
		out := mk.solveAny(cand)
		if m := out.Shares[who]; m > bestM+1e-12 {
			bestS, bestOut, bestM = s, out, m
		}
	}
	return bestS, bestOut, bestM
}

// BestResponseForSurplus is BestResponse with the consumer-surplus objective
// Φ instead of market share — the comparison object of Theorem 6.
func (mk *Market) BestResponseForSurplus(isps []ISP, who int, grid StrategyGrid) (Strategy, *MarketOutcome, float64) {
	var (
		bestS   Strategy
		bestOut *MarketOutcome
		bestPhi = math.Inf(-1)
	)
	cand := append([]ISP(nil), isps...)
	for _, s := range grid.Strategies() {
		cand[who].Strategy = s
		out := mk.solveAny(cand)
		if p := out.Phi; p > bestPhi+1e-12 {
			bestS, bestOut, bestPhi = s, out, p
		}
	}
	return bestS, bestOut, bestPhi
}

// solveAny picks the duopoly fast path when applicable.
func (mk *Market) solveAny(isps []ISP) *MarketOutcome {
	if len(isps) == 2 {
		return mk.SolveDuopoly(isps[0], isps[1])
	}
	return mk.SolveMarket(isps)
}

// NashResult is the outcome of iterated best response over strategies.
type NashResult struct {
	ISPs      []ISP // final strategies
	Outcome   *MarketOutcome
	Rounds    int
	Converged bool // true if a full round passed with no strategy change
}

// MarketShareNash runs iterated best response on the strategy grid until no
// ISP can improve its market share (a grid-restricted market-share Nash
// equilibrium, Definition 6) or maxRounds passes. Order is round-robin; the
// grid restriction makes existence a finite search rather than a theorem.
func (mk *Market) MarketShareNash(isps []ISP, grid StrategyGrid, maxRounds int) *NashResult {
	if maxRounds <= 0 {
		maxRounds = 10
	}
	cur := append([]ISP(nil), isps...)
	res := &NashResult{}
	for round := 1; round <= maxRounds; round++ {
		res.Rounds = round
		changed := false
		for who := range cur {
			before := cur[who].Strategy
			s, _, _ := mk.BestResponse(cur, who, grid)
			if s != before {
				cur[who].Strategy = s
				changed = true
			}
		}
		if !changed {
			res.Converged = true
			break
		}
	}
	res.ISPs = cur
	res.Outcome = mk.solveAny(cur)
	return res
}

// DeltaGap computes the paper's δ_s metric for ISP `who` from sampled
// deviation outcomes: the largest market-share advantage a deviation can
// deliver without also delivering more consumer surplus,
//
//	δ = sup{ m(s′) − m(s) : Φ(s′) ≤ Φ(s) }
//
// evaluated over all ordered pairs of grid strategies. Theorem 6 bounds the
// market-share loss of a surplus-maximizing ISP by this quantity.
func (mk *Market) DeltaGap(isps []ISP, who int, grid StrategyGrid) float64 {
	type point struct{ m, phi float64 }
	cand := append([]ISP(nil), isps...)
	var pts []point
	for _, s := range grid.Strategies() {
		cand[who].Strategy = s
		out := mk.solveAny(cand)
		pts = append(pts, point{m: out.Shares[who], phi: out.Phi})
	}
	var delta float64
	for _, a := range pts { // deviation s′
		for _, b := range pts { // reference s
			if a.phi <= b.phi+1e-12 {
				if d := a.m - b.m; d > delta {
					delta = d
				}
			}
		}
	}
	return delta
}

// EpsilonGapForStrategy evaluates ε_s (Eq. 9) for one ISP strategy on this
// market's population: the largest downward jump of Φ(ν, N, s) over the
// capacity grid.
func (mk *Market) EpsilonGapForStrategy(s Strategy, nuGrid []float64) float64 {
	solver := mk.Solver
	ys := make([]float64, len(nuGrid))
	var warm []bool
	for i, nu := range nuGrid {
		eq := solver.CompetitiveFrom(s, nu, mk.Pop, warm)
		warm = append(warm[:0], eq.InPremium...)
		ys[i] = eq.Phi()
	}
	return numeric.MaxDownwardGap(ys)
}
