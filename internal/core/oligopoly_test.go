package core

import (
	"math"
	"testing"

	"github.com/netecon-sim/publicoption/internal/numeric"
)

func smallGrid() StrategyGrid {
	return StrategyGrid{
		Kappas: []float64{0, 0.5, 1},
		Cs:     numeric.Linspace(0, 1, 6),
	}
}

func TestBestResponseImprovesShare(t *testing.T) {
	pop := ensemble(61, 60)
	sat := pop.TotalUnconstrainedPerCapita()
	mk := NewMarket(nil, pop, 0.35*sat)
	isps := []ISP{
		{Name: "i", Gamma: 0.5, Strategy: Strategy{Kappa: 1, C: 0.9}}, // bad start
		{Name: "j", Gamma: 0.5, Strategy: PublicOption},
	}
	start := mk.SolveDuopoly(isps[0], isps[1]).Shares[0]
	_, _, bestM := mk.BestResponse(isps, 0, smallGrid())
	if bestM < start-1e-9 {
		t.Fatalf("best response share %v worse than initial %v", bestM, start)
	}
	if bestM < 0.3 {
		t.Fatalf("best response against a public option should win a sizable share, got %v", bestM)
	}
}

func TestTheorem6ShareAndSurplusBestResponsesAligned(t *testing.T) {
	pop := ensemble(62, 60)
	sat := pop.TotalUnconstrainedPerCapita()
	mk := NewMarket(nil, pop, 0.35*sat)
	isps := []ISP{
		{Name: "i", Gamma: 0.5, Strategy: PublicOption},
		{Name: "j", Gamma: 0.5, Strategy: Strategy{Kappa: 0.5, C: 0.4}},
	}
	grid := smallGrid()
	_, outM, _ := mk.BestResponse(isps, 0, grid)
	_, outPhi, bestPhi := mk.BestResponseForSurplus(isps, 0, grid)
	delta := mk.DeltaGap(isps, 0, grid)

	// Theorem 6 (second half): the surplus-maximizing strategy loses at
	// most δ of market share against the share-maximizing one.
	if outPhi.Shares[0] < outM.Shares[0]-delta-1e-6 {
		t.Errorf("surplus BR share %v < share BR %v − δ=%v", outPhi.Shares[0], outM.Shares[0], delta)
	}
	// Theorem 6 (first half): the share-maximizing strategy delivers within
	// ε of the maximum surplus. ε is the competitor's curve discontinuity;
	// we bound it empirically by the observed Φ spread tolerance.
	if outM.Phi < bestPhi-0.05*math.Max(bestPhi, 1) {
		t.Errorf("share BR surplus %v far below max surplus %v", outM.Phi, bestPhi)
	}
}

func TestMarketShareNashConverges(t *testing.T) {
	pop := ensemble(63, 50)
	sat := pop.TotalUnconstrainedPerCapita()
	mk := NewMarket(nil, pop, 0.35*sat)
	isps := []ISP{
		{Name: "i", Gamma: 0.5, Strategy: Strategy{Kappa: 1, C: 0.8}},
		{Name: "j", Gamma: 0.5, Strategy: Strategy{Kappa: 1, C: 0.2}},
	}
	res := mk.MarketShareNash(isps, smallGrid(), 6)
	if !res.Converged {
		t.Skip("best-response dynamics did not settle on this grid (legitimate for coarse grids)")
	}
	// At a Nash point, neither ISP can improve its share on the grid.
	for who := range res.ISPs {
		cur := res.Outcome.Shares[who]
		_, _, best := mk.BestResponse(res.ISPs, who, smallGrid())
		if best > cur+1e-6 {
			t.Errorf("ISP %d can still improve share from %v to %v", who, cur, best)
		}
	}
}

func TestDeltaGapNonNegative(t *testing.T) {
	pop := ensemble(64, 40)
	sat := pop.TotalUnconstrainedPerCapita()
	mk := NewMarket(nil, pop, 0.3*sat)
	isps := []ISP{
		{Name: "i", Gamma: 0.5, Strategy: PublicOption},
		{Name: "j", Gamma: 0.5, Strategy: PublicOption},
	}
	if d := mk.DeltaGap(isps, 0, smallGrid()); d < 0 || d > 1 {
		t.Fatalf("δ = %v outside [0,1]", d)
	}
}

func TestEpsilonGapForStrategy(t *testing.T) {
	pop := ensemble(65, 60)
	sat := pop.TotalUnconstrainedPerCapita()
	mk := NewMarket(nil, pop, 0.3*sat)
	grid := numeric.Linspace(0.05*sat, 1.5*sat, 40)
	// Neutral strategy: ε = 0 (Theorem 2).
	if eps := mk.EpsilonGapForStrategy(PublicOption, grid); eps > 1e-9 {
		t.Errorf("neutral ε = %v, want 0", eps)
	}
	// Differentiated strategy: ε exists but stays small for large N
	// (§III-E: "when |N| is large, ε is quite small").
	eps := mk.EpsilonGapForStrategy(Strategy{Kappa: 0.5, C: 0.5}, grid)
	maxPhi := 0.0
	for i := range pop {
		maxPhi += pop[i].Phi * pop[i].UnconstrainedPerCapitaRate()
	}
	if eps < 0 || eps > 0.2*maxPhi {
		t.Errorf("differentiated ε = %v outside plausible range [0, %v]", eps, 0.2*maxPhi)
	}
}

func TestDefaultStrategyGrid(t *testing.T) {
	g := DefaultStrategyGrid()
	ss := g.Strategies()
	if len(ss) != len(g.Kappas)*len(g.Cs) {
		t.Fatalf("grid size %d, want %d", len(ss), len(g.Kappas)*len(g.Cs))
	}
	for _, s := range ss {
		if err := s.Validate(); err != nil {
			t.Fatalf("grid produced invalid strategy: %v", err)
		}
	}
}
