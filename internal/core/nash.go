package core

import (
	"math"

	"github.com/netecon-sim/publicoption/internal/alloc"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// nashUtility returns CP i's exact per-capita utility if the partition were
// premium (including CP i's own congestion externality — the Nash
// counterfactual of Lemma 2, as opposed to the throughput-taking estimate).
func (s *Solver) nashUtility(strategy Strategy, nu float64, pop traffic.Population, premium []bool, i int, joinPremium bool) float64 {
	s.kernels()
	old := premium[i]
	premium[i] = joinPremium
	o, p := s.splitScratch(pop, premium)
	premium[i] = old

	cp := &pop[i]
	if joinPremium {
		res := s.wsP.Solve(strategy.Kappa*nu, p)
		theta := thetaOf(res, cp.Name)
		return (cp.V - strategy.C) * cp.PerCapitaRate(theta)
	}
	res := s.wsO.Solve((1-strategy.Kappa)*nu, o)
	theta := thetaOf(res, cp.Name)
	return cp.V * cp.PerCapitaRate(theta)
}

// thetaOf finds the equilibrium throughput of the named CP inside a class
// result. Names are unique within a population by construction of the
// generators; archetype populations also have distinct names.
func thetaOf(res *alloc.Result, name string) float64 {
	for j := range res.Pop {
		if res.Pop[j].Name == name {
			return res.Theta[j]
		}
	}
	panic("core: CP not found in class result: " + name)
}

// Nash computes a Nash equilibrium (Definition 2) of the CP class-choice
// game by sequential best response: CPs revise their class one at a time
// (round robin), moving only on strict improvement — the tie-break prefers
// the ordinary class — until a full round passes with no move. The result
// reports convergence; maxRounds bounds the dynamics (each round is
// O(N · class solves), so keep populations small — use Competitive for the
// 1000-CP ensembles, as the paper does).
func (s *Solver) Nash(strategy Strategy, nu float64, pop traffic.Population, maxRounds int) *ClassEquilibrium {
	if err := strategy.Validate(); err != nil {
		panic(err)
	}
	if maxRounds <= 0 {
		maxRounds = 50
	}
	eq := &ClassEquilibrium{
		Strategy:  strategy,
		Nu:        nu,
		Pop:       pop,
		InPremium: make([]bool, len(pop)),
		Theta:     make([]float64, len(pop)),
		Converged: true,
	}
	if strategy.NoPremium() || len(pop) == 0 {
		s.finalize(eq)
		return eq
	}
	// Start from the affordability guess to shorten the dynamics.
	for i := range pop {
		eq.InPremium[i] = pop[i].V > strategy.C
	}
	for round := 0; round < maxRounds; round++ {
		eq.Iterations = round + 1
		moved := false
		for i := range pop {
			uO := s.nashUtility(strategy, nu, pop, eq.InPremium, i, false)
			uP := s.nashUtility(strategy, nu, pop, eq.InPremium, i, true)
			want := uP > uO // tie → ordinary
			if want != eq.InPremium[i] {
				eq.InPremium[i] = want
				moved = true
			}
		}
		if !moved {
			s.finalize(eq)
			return eq
		}
	}
	eq.Converged = false
	s.finalize(eq)
	return eq
}

// IsNash checks Definition 2 exactly: no single CP can strictly gain by
// switching classes (with ties resolved toward the ordinary class, a CP in
// the premium class must be strictly better off there). tol absorbs solver
// noise in the utility comparison.
func (s *Solver) IsNash(eq *ClassEquilibrium, tol float64) bool {
	if eq.Strategy.NoPremium() {
		return true // single class: nothing to deviate to
	}
	if tol <= 0 {
		tol = 1e-12
	}
	for i := range eq.Pop {
		uStay := s.nashUtility(eq.Strategy, eq.Nu, eq.Pop, eq.InPremium, i, eq.InPremium[i])
		uMove := s.nashUtility(eq.Strategy, eq.Nu, eq.Pop, eq.InPremium, i, !eq.InPremium[i])
		scale := math.Max(math.Abs(uStay), 1)
		if eq.InPremium[i] {
			// Definition 2 requires strict preference for the premium class
			// (a tie would send the CP to the ordinary class).
			if !(uStay > uMove+tol*scale) {
				return false
			}
		} else if uMove > uStay+tol*scale {
			// Ordinary membership tolerates ties.
			return false
		}
	}
	return true
}

// AllNash enumerates every Nash equilibrium of the class-choice game by
// exhaustive search over all 2^N partitions. It is exponential and panics
// for N > 20; it exists to validate the best-response and competitive
// solvers on small instances.
func (s *Solver) AllNash(strategy Strategy, nu float64, pop traffic.Population) []*ClassEquilibrium {
	if len(pop) > 20 {
		panic("core: AllNash is exponential; population too large")
	}
	var out []*ClassEquilibrium
	n := len(pop)
	premium := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			premium[i] = mask&(1<<i) != 0
		}
		eq := &ClassEquilibrium{
			Strategy:  strategy,
			Nu:        nu,
			Pop:       pop,
			InPremium: append([]bool(nil), premium...),
			Theta:     make([]float64, n),
			Converged: true,
		}
		s.finalize(eq)
		if s.IsNash(eq, 0) {
			out = append(out, eq)
		}
		if strategy.NoPremium() {
			break // only the all-ordinary partition is meaningful
		}
	}
	return out
}
