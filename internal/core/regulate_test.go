package core

import (
	"math"
	"strings"
	"testing"
)

func TestCompareRegimesHeadlineRanking(t *testing.T) {
	// The paper's monopoly-market claim (§IV-A regulatory implications):
	// Public Option ≥ network neutrality ≥ unregulated, in consumer
	// surplus, when capacity is abundant enough for the monopolist's greed
	// to bite.
	pop := ensemble(71, 150)
	sat := pop.TotalUnconstrainedPerCapita()
	cfg := RegimeConfig{
		GridN: 15,
		POGrid: &StrategyGrid{
			Kappas: []float64{0, 0.5, 1},
			Cs:     []float64{0, 0.2, 0.4, 0.6, 0.8, 1},
		},
	}
	outcomes := CompareRegimes(nil, 0.8*sat, pop, cfg)
	if len(outcomes) != 5 {
		t.Fatalf("got %d outcomes, want 5", len(outcomes))
	}
	order := RegimeRanking(outcomes, 1e-9)
	if err := CheckHeadlineRanking(order); err != nil {
		for _, oc := range outcomes {
			t.Logf("%-14s Φ=%.2f Ψ=%.2f s=%v %s", oc.Regime, oc.Phi, oc.Psi, oc.Strategy, oc.Detail)
		}
		t.Fatal(err)
	}
}

func TestCompareRegimesCapsImproveOnUnregulated(t *testing.T) {
	// With abundant capacity, both partial remedies must help consumers
	// relative to the unregulated optimum (that is why the paper proposes
	// them).
	pop := ensemble(72, 120)
	sat := pop.TotalUnconstrainedPerCapita()
	cfg := RegimeConfig{KappaCap: 0.3, PriceCap: 0.15, GridN: 12,
		POGrid: &StrategyGrid{Kappas: []float64{0, 1}, Cs: []float64{0, 0.3, 0.6}}}
	byRegime := map[Regime]RegimeOutcome{}
	for _, oc := range CompareRegimes(nil, 0.8*sat, pop, cfg) {
		byRegime[oc.Regime] = oc
	}
	un := byRegime[RegimeUnregulated]
	for _, r := range []Regime{RegimeKappaCap, RegimePriceCap} {
		if byRegime[r].Phi < un.Phi-1e-9 {
			t.Errorf("%v Φ=%v below unregulated Φ=%v", r, byRegime[r].Phi, un.Phi)
		}
	}
	// And the caps must cost the monopolist revenue (they bind).
	if byRegime[RegimeKappaCap].Psi > un.Psi+1e-9 {
		t.Errorf("κ-cap increased monopoly revenue")
	}
}

func TestRegimeStringAndRanking(t *testing.T) {
	for _, r := range []Regime{RegimeUnregulated, RegimeKappaCap, RegimePriceCap, RegimeNeutral, RegimePublicOption} {
		if strings.Contains(r.String(), "Regime(") {
			t.Errorf("missing String for %d", int(r))
		}
	}
	outcomes := []RegimeOutcome{
		{Regime: RegimeUnregulated, Phi: 1},
		{Regime: RegimeNeutral, Phi: 3},
		{Regime: RegimePublicOption, Phi: 5},
	}
	order := RegimeRanking(outcomes, 0)
	if order[0] != RegimePublicOption || order[2] != RegimeUnregulated {
		t.Fatalf("ranking = %v", order)
	}
	if err := CheckHeadlineRanking(order); err != nil {
		t.Fatal(err)
	}
	// A broken ranking must be detected.
	bad := []Regime{RegimeUnregulated, RegimeNeutral, RegimePublicOption}
	if err := CheckHeadlineRanking(bad); err == nil {
		t.Fatal("inverted ranking accepted")
	}
	// Missing regimes must be detected.
	if err := CheckHeadlineRanking([]Regime{RegimeNeutral}); err == nil {
		t.Fatal("incomplete ranking accepted")
	}
}

func TestRegimeSweepSeriesAligned(t *testing.T) {
	pop := ensemble(73, 60)
	sat := pop.TotalUnconstrainedPerCapita()
	cfg := RegimeConfig{GridN: 8,
		POGrid: &StrategyGrid{Kappas: []float64{0, 1}, Cs: []float64{0, 0.4, 0.8}}}
	nus := []float64{0.4 * sat, 0.8 * sat}
	series := RegimeSweep(nil, nus, pop, cfg)
	if len(series) != 5 {
		t.Fatalf("got %d regimes, want 5", len(series))
	}
	for r, ys := range series {
		if len(ys) != len(nus) {
			t.Errorf("%v series has %d points, want %d", r, len(ys), len(nus))
		}
		for _, y := range ys {
			if math.IsNaN(y) || y < 0 {
				t.Errorf("%v produced invalid Φ %v", r, y)
			}
		}
	}
	// Theorem 2 within each regime: more capacity, no less surplus (allow
	// tiny optimizer noise for the strategic regimes).
	for r, ys := range series {
		if ys[1] < ys[0]*(1-0.05) {
			t.Errorf("%v: Φ fell substantially with more capacity (%v -> %v)", r, ys[0], ys[1])
		}
	}
}
