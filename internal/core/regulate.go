package core

import (
	"fmt"

	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// Regime identifies one of the regulatory/market arrangements the paper
// compares (§III Regulatory Implications, §IV-A, §VI): the monopoly left
// alone, the two partial regulations the paper proposes as remedies, full
// network-neutrality regulation, and the non-regulatory Public Option.
type Regime int

const (
	// RegimeUnregulated is the monopolist playing its revenue-optimal
	// strategy (Theorem 4 territory: κ = 1 and a possibly
	// capacity-wasting price).
	RegimeUnregulated Regime = iota
	// RegimeKappaCap lets the monopolist optimize subject to κ ≤ cap — the
	// paper's first proposed limit ("κ cannot be too large, such that the
	// CPs in the ordinary class can obtain an appropriate amount of
	// capacity").
	RegimeKappaCap
	// RegimePriceCap lets the monopolist optimize subject to c ≤ cap — the
	// paper's second proposed limit ("limit the charge c so that enough
	// CPs would be able to join the premium class").
	RegimePriceCap
	// RegimeNeutral forces the network-neutral strategy (0, 0): one free
	// class, no differentiation.
	RegimeNeutral
	// RegimePublicOption splits the capacity with a Public Option ISP and
	// lets the incumbent best-respond for market share (§IV-A; Theorem 5
	// aligns that with consumer surplus).
	RegimePublicOption
)

// String implements fmt.Stringer.
func (r Regime) String() string {
	switch r {
	case RegimeUnregulated:
		return "unregulated"
	case RegimeKappaCap:
		return "kappa-cap"
	case RegimePriceCap:
		return "price-cap"
	case RegimeNeutral:
		return "neutral"
	case RegimePublicOption:
		return "public-option"
	default:
		return fmt.Sprintf("Regime(%d)", int(r))
	}
}

// RegimeOutcome is the consumer and ISP surplus a regime delivers on a
// fixed workload and capacity.
type RegimeOutcome struct {
	Regime   Regime
	Strategy Strategy // the strategy the incumbent ends up playing
	Phi      float64  // per-capita consumer surplus
	Psi      float64  // per-capita incumbent revenue (market-wide)
	Share    float64  // incumbent market share (1 except under the Public Option)
	Detail   string   // regime-specific annotation
}

// RegimeConfig parameterizes CompareRegimes.
type RegimeConfig struct {
	KappaCap float64 // κ ceiling for RegimeKappaCap (default 0.5)
	PriceCap float64 // c ceiling for RegimePriceCap (default 0.3)
	POShare  float64 // Public Option capacity share (default 0.5)
	CHi      float64 // price search ceiling (default 1)
	GridN    int     // optimizer grid resolution (default 40)
	// POGrid is the strategy grid the incumbent searches against the
	// Public Option; nil uses DefaultStrategyGrid.
	POGrid *StrategyGrid
}

func (c *RegimeConfig) setDefaults() {
	if c.KappaCap <= 0 || c.KappaCap > 1 {
		c.KappaCap = 0.5
	}
	if c.PriceCap <= 0 {
		c.PriceCap = 0.3
	}
	if c.POShare <= 0 || c.POShare >= 1 {
		c.POShare = 0.5
	}
	if c.CHi <= 0 {
		c.CHi = 1
	}
	if c.GridN <= 0 {
		c.GridN = 40
	}
}

// CompareRegimes evaluates every regulatory regime on the same population
// and per-capita capacity, producing the paper's headline comparison: in a
// monopolistic market, consumer surplus should rank
//
//	Public Option ≥ neutral regulation ≥ partial caps ≥ unregulated
//
// (Theorem 5 and the §III/§VI discussion; the caps land between the
// extremes depending on how tight they are). Results come back in the
// regime order above's reverse — unregulated first — so tables read in
// increasing intervention.
func CompareRegimes(solver *Solver, nu float64, pop traffic.Population, cfg RegimeConfig) []RegimeOutcome {
	cfg.setDefaults()
	if solver == nil {
		solver = NewSolver(nil)
	}
	out := make([]RegimeOutcome, 0, 5)

	// Unregulated monopoly: revenue-optimal (κ, c).
	mono := NewMonopoly(solver)
	sU, eqU := mono.OptimalStrategy(cfg.CHi, nu, pop, 10, cfg.GridN)
	out = append(out, RegimeOutcome{
		Regime: RegimeUnregulated, Strategy: sU,
		Phi: eqU.Phi(), Psi: eqU.Psi(), Share: 1,
		Detail: fmt.Sprintf("utilization %.0f%%", 100*eqU.Utilization()),
	})

	// κ-capped monopoly: optimize c at the cap (revenue is monotone in κ,
	// Theorem 4, so the cap binds).
	cK, eqK := mono.OptimalPrice(cfg.KappaCap, cfg.CHi, nu, pop, cfg.GridN)
	out = append(out, RegimeOutcome{
		Regime: RegimeKappaCap, Strategy: Strategy{Kappa: cfg.KappaCap, C: cK},
		Phi: eqK.Phi(), Psi: eqK.Psi(), Share: 1,
		Detail: fmt.Sprintf("κ ≤ %.2g", cfg.KappaCap),
	})

	// Price-capped monopoly: κ = 1 (dominant), c at most the cap; revenue
	// is increasing in c on the capped range or peaks inside it.
	cP, eqP := mono.OptimalPrice(1, cfg.PriceCap, nu, pop, cfg.GridN)
	out = append(out, RegimeOutcome{
		Regime: RegimePriceCap, Strategy: Strategy{Kappa: 1, C: cP},
		Phi: eqP.Phi(), Psi: eqP.Psi(), Share: 1,
		Detail: fmt.Sprintf("c ≤ %.2g", cfg.PriceCap),
	})

	// Full neutrality: single free class.
	eqN := solver.Competitive(PublicOption, nu, pop)
	out = append(out, RegimeOutcome{
		Regime: RegimeNeutral, Strategy: PublicOption,
		Phi: eqN.Phi(), Psi: 0, Share: 1,
	})

	// Public Option: the incumbent holds 1−POShare of capacity and
	// best-responds for market share.
	grid := DefaultStrategyGrid()
	if cfg.POGrid != nil {
		grid = *cfg.POGrid
	}
	mk := NewMarket(solver, pop, nu)
	mk.MigrationTol = 1e-6
	isps := []ISP{
		{Name: "incumbent", Gamma: 1 - cfg.POShare, Strategy: Strategy{Kappa: 1, C: 0.5}},
		{Name: "public-option", Gamma: cfg.POShare, Strategy: PublicOption},
	}
	sPO, outPO, _ := mk.BestResponse(isps, 0, grid)
	out = append(out, RegimeOutcome{
		Regime: RegimePublicOption, Strategy: sPO,
		Phi: outPO.Phi, Psi: outPO.Eqs[0].Psi() * outPO.Shares[0],
		Share:  outPO.Shares[0],
		Detail: fmt.Sprintf("PO holds γ=%.2g", cfg.POShare),
	})
	return out
}

// RegimeRanking extracts the regimes ordered by descending consumer
// surplus; ties (within tol) preserve the intervention order.
func RegimeRanking(outcomes []RegimeOutcome, tol float64) []Regime {
	ranked := append([]RegimeOutcome(nil), outcomes...)
	// Insertion sort (stable, tiny slice).
	for i := 1; i < len(ranked); i++ {
		for j := i; j > 0 && ranked[j].Phi > ranked[j-1].Phi+tol; j-- {
			ranked[j], ranked[j-1] = ranked[j-1], ranked[j]
		}
	}
	order := make([]Regime, len(ranked))
	for i, r := range ranked {
		order[i] = r.Regime
	}
	return order
}

// indexOf returns the position of regime r in the ranking, or -1.
func indexOf(order []Regime, r Regime) int {
	for i, x := range order {
		if x == r {
			return i
		}
	}
	return -1
}

// CheckHeadlineRanking verifies the paper's monopoly-market claim on a
// ranking: the Public Option must not be ranked below neutral regulation,
// and neutral regulation must not be ranked below the unregulated monopoly.
// It returns nil when the claim holds.
func CheckHeadlineRanking(order []Regime) error {
	po := indexOf(order, RegimePublicOption)
	ne := indexOf(order, RegimeNeutral)
	un := indexOf(order, RegimeUnregulated)
	if po < 0 || ne < 0 || un < 0 {
		return fmt.Errorf("core: ranking missing a headline regime: %v", order)
	}
	if po > ne {
		return fmt.Errorf("core: Public Option ranked below neutral regulation: %v", order)
	}
	if ne > un {
		return fmt.Errorf("core: neutral regulation ranked below unregulated monopoly: %v", order)
	}
	return nil
}

// RegimeSweep evaluates CompareRegimes across capacities, returning one
// Φ series per regime (the object behind the "regimes" experiment).
func RegimeSweep(solver *Solver, nus []float64, pop traffic.Population, cfg RegimeConfig) map[Regime][]float64 {
	out := make(map[Regime][]float64)
	for _, nu := range nus {
		for _, oc := range CompareRegimes(solver, nu, pop, cfg) {
			out[oc.Regime] = append(out[oc.Regime], oc.Phi)
		}
	}
	return out
}

// Ensure numeric is linked for the package's solvers even when only
// regulate.go is exercised (grid search uses it indirectly).
var _ = numeric.DefaultTol
