package core

import (
	"fmt"
	"math"
	"sync"

	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// MarketOutcome is an equilibrium of the second-stage multi-ISP game
// (M, µ, N, s_I) under Assumption 5: consumers have migrated until the
// per-capita consumer surplus is equal across every ISP holding consumers.
type MarketOutcome struct {
	ISPs   []ISP
	NuBar  float64 // system per-capita capacity ν = µ/M
	Shares []float64
	// Eqs[k] is the CP class equilibrium at ISP k given its equilibrium
	// per-capita capacity ν_k = γ_k·ν̄ / m_k.
	Eqs []*ClassEquilibrium
	// Phi is the equalized per-capita consumer surplus (the surplus every
	// consumer experiences in equilibrium).
	Phi float64
}

// Share returns the market share of the ISP with the given name, or NaN.
func (o *MarketOutcome) Share(name string) float64 {
	for k := range o.ISPs {
		if o.ISPs[k].Name == name {
			return o.Shares[k]
		}
	}
	return math.NaN()
}

// Eq returns the class equilibrium of the named ISP, or nil.
func (o *MarketOutcome) Eq(name string) *ClassEquilibrium {
	for k := range o.ISPs {
		if o.ISPs[k].Name == name {
			return o.Eqs[k]
		}
	}
	return nil
}

// String summarizes the outcome.
func (o *MarketOutcome) String() string {
	s := fmt.Sprintf("market(ν̄=%g, Φ=%.4g", o.NuBar, o.Phi)
	for k := range o.ISPs {
		s += fmt.Sprintf(", %s: m=%.4f", o.ISPs[k].Name, o.Shares[k])
	}
	return s + ")"
}

// minShare bounds market shares away from 0 and 1 in the bisections: an ISP
// with vanishing share has per-capita capacity γν̄/m → ∞, where its surplus
// has already saturated at MaxPhi, so nothing changes below this floor.
const minShare = 1e-9

// Market solves consumer-migration equilibria for a fixed population and
// system capacity. It caches per-ISP surplus evaluations through warm
// starts; create one Market per (pop, ν̄) study.
type Market struct {
	Solver *Solver
	Pop    traffic.Population
	NuBar  float64
	// MigrationTol is the absolute market-share tolerance of the consumer
	// migration bisection (Assumption 5). The default 1e-8 resolves shares
	// far beyond anything the experiments read; loosen it for speed in
	// large sweeps.
	MigrationTol float64
	warm         map[string][]bool // per-ISP warm-start partitions
}

// NewMarket returns a market solver (nil solver for defaults).
func NewMarket(s *Solver, pop traffic.Population, nuBar float64) *Market {
	if s == nil {
		s = NewSolver(nil)
	}
	if nuBar < 0 || math.IsNaN(nuBar) {
		panic(fmt.Sprintf("core: market with ν̄=%g", nuBar))
	}
	return &Market{Solver: s, Pop: pop, NuBar: nuBar, MigrationTol: 1e-8, warm: make(map[string][]bool)}
}

// phiAtShare returns ISP k's per-capita consumer surplus when it holds
// market share m, together with the class equilibrium that produced it.
func (mk *Market) phiAtShare(isp ISP, m float64) (float64, *ClassEquilibrium) {
	if m < minShare {
		m = minShare
	}
	nu := isp.Gamma * mk.NuBar / m
	// Far beyond saturation the surplus is constant, so cap ν to keep the
	// class solver finite as m → 0. The cap must be generous: a two-class
	// ISP's surplus keeps growing until its *ordinary class alone* covers
	// the population's unconstrained demand, i.e. up to sat/(1−κ); 10⁴·sat
	// covers every κ ≤ 0.9999.
	if sat := mk.Pop.TotalUnconstrainedPerCapita(); nu > 1e4*sat {
		nu = 1e4 * sat
	}
	eq := mk.Solver.CompetitiveFrom(isp.Strategy, nu, mk.Pop, mk.warm[isp.Name])
	mk.warm[isp.Name] = append(mk.warm[isp.Name][:0], eq.InPremium...)
	return eq.Phi(), eq
}

// SolveDuopoly computes the migration equilibrium of two ISPs by direct
// bisection on ISP a's market share: the gap Φ_a(m) − Φ_b(1−m) is
// non-increasing in m (Theorem 2 via ν_a = γ_a·ν̄/m), so the equalization
// point is unique up to the discontinuities of the class game. Boundary
// cases clamp: if even an infinitesimal share of consumers at a experiences
// less surplus than b provides to everyone, a's share is 0 (the paper's
// c_I = 1 corner where "all consumers move to ISP J").
func (mk *Market) SolveDuopoly(a, b ISP) *MarketOutcome {
	for _, isp := range []ISP{a, b} {
		if err := isp.Validate(); err != nil {
			panic(err)
		}
	}
	if a.Name == b.Name {
		panic("core: duopoly ISPs must have distinct names")
	}
	if math.Abs(a.Gamma+b.Gamma-1) > 1e-9 {
		panic(fmt.Sprintf("core: duopoly capacity shares must sum to 1, got %g", a.Gamma+b.Gamma))
	}
	gap := func(m float64) float64 {
		phiA, _ := mk.phiAtShare(a, m)
		phiB, _ := mk.phiAtShare(b, 1-m)
		return phiA - phiB
	}
	tol := mk.MigrationTol
	if tol <= 0 {
		tol = 1e-8
	}
	// Equilibrium selection on indifference plateaus: when both ISPs
	// already deliver equal surplus at the capacity-proportional split
	// (typically because capacity is abundant and both saturate), every
	// split is an equilibrium of Assumption 5 — there is no migration
	// pressure at all. Select the capacity-proportional point, consistent
	// with Lemma 4's homogeneous-strategy equilibrium; otherwise bisect.
	var m float64
	phiAtGammaA, _ := mk.phiAtShare(a, a.Gamma)
	phiAtGammaB, _ := mk.phiAtShare(b, b.Gamma)
	if math.Abs(phiAtGammaA-phiAtGammaB) <= 1e-9*math.Max(math.Max(phiAtGammaA, phiAtGammaB), 1) {
		m = a.Gamma
	} else {
		m = numeric.BisectDecreasing(gap, minShare, 1-minShare, tol)
	}
	phiA, eqA := mk.phiAtShare(a, m)
	phiB, eqB := mk.phiAtShare(b, 1-m)
	out := &MarketOutcome{
		ISPs:   []ISP{a, b},
		NuBar:  mk.NuBar,
		Shares: []float64{m, 1 - m},
		Eqs:    []*ClassEquilibrium{eqA, eqB},
		// The equalized level; at a clamped boundary the market level is
		// the surplus of the ISP serving (essentially) everyone.
		Phi: math.Max(phiA, phiB),
	}
	if m <= 2*minShare {
		out.Shares = []float64{0, 1}
		out.Phi = phiB
	} else if m >= 1-2*minShare {
		out.Shares = []float64{1, 0}
		out.Phi = phiA
	}
	return out
}

// shareCurvePoints is the resolution of the per-ISP share→surplus curves
// SolveMarket precomputes.
const shareCurvePoints = 96

// SolveMarket computes the migration equilibrium for any number of ISPs by
// surplus-level equalization: it precomputes each ISP's (non-increasing)
// surplus-vs-share curve Φ_k(m), then bisects on the common surplus level
// Φ* for Σ_k m_k(Φ*) = 1, where m_k(Φ*) is the largest share at which ISP k
// still delivers Φ*. ISPs whose best achievable surplus is below Φ* hold no
// consumers. Shares are finally renormalized to absorb interpolation error.
//
// Capacity shares must sum to 1 (within tolerance). For two ISPs,
// SolveDuopoly is exact and faster.
func (mk *Market) SolveMarket(isps []ISP) *MarketOutcome {
	if len(isps) == 0 {
		panic("core: SolveMarket needs at least one ISP")
	}
	var gammaSum float64
	names := make(map[string]bool, len(isps))
	for _, isp := range isps {
		if err := isp.Validate(); err != nil {
			panic(err)
		}
		if names[isp.Name] {
			panic("core: ISPs must have distinct names, duplicate " + isp.Name)
		}
		names[isp.Name] = true
		gammaSum += isp.Gamma
	}
	if math.Abs(gammaSum-1) > 1e-9 {
		panic(fmt.Sprintf("core: capacity shares must sum to 1, got %g", gammaSum))
	}
	if len(isps) == 1 {
		phi, eq := mk.phiAtShare(isps[0], 1)
		return &MarketOutcome{ISPs: isps, NuBar: mk.NuBar, Shares: []float64{1}, Eqs: []*ClassEquilibrium{eq}, Phi: phi}
	}

	// Precompute Φ_k over a share grid, dense near zero where the curve
	// moves fastest (ν_k = γ_k·ν̄/m).
	grid := shareGrid()
	phiCurves := make([][]float64, len(isps))
	var phiMax float64
	for k, isp := range isps {
		curve := make([]float64, len(grid))
		for j, m := range grid {
			curve[j], _ = mk.phiAtShare(isp, m)
		}
		// Enforce monotone non-increasing in m (solver noise and class-jump
		// discontinuities can wiggle): take the running max from the right,
		// which is the correct upper envelope for share inversion.
		for j := len(curve) - 2; j >= 0; j-- {
			if curve[j] < curve[j+1] {
				curve[j] = curve[j+1]
			}
		}
		phiCurves[k] = curve
		if curve[0] > phiMax {
			phiMax = curve[0]
		}
	}
	// m_k(Φ*): largest share with Φ_k(m) >= Φ*.
	shareAt := func(k int, phiStar float64) float64 {
		curve := phiCurves[k]
		if phiStar > curve[0] {
			return 0 // cannot deliver this surplus at any share
		}
		if phiStar <= curve[len(curve)-1] {
			return 1 // delivers it even serving everyone
		}
		// Binary search the first grid index with Φ < Φ*, then invert
		// linearly inside the bracketing cell.
		lo, hi := 0, len(curve)-1
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if curve[mid] >= phiStar {
				lo = mid
			} else {
				hi = mid
			}
		}
		// A (near-)flat bracketing cell means the curve saturates there
		// and the inversion below is ill-conditioned; snap to the cell's
		// right edge instead of dividing by a vanishing difference.
		if numeric.AlmostEqual(curve[lo], curve[hi], numeric.DefaultTol) {
			return grid[hi]
		}
		t := (curve[lo] - phiStar) / (curve[lo] - curve[hi])
		return grid[lo] + t*(grid[hi]-grid[lo])
	}
	total := func(phiStar float64) float64 {
		var s float64
		for k := range isps {
			s += shareAt(k, phiStar)
		}
		return s
	}
	// Σ m_k(Φ*) is non-increasing in Φ*; find Σ = 1.
	phiStar := numeric.BisectDecreasing(func(p float64) float64 { return total(p) - 1 }, 0, phiMax, 1e-12*math.Max(phiMax, 1))

	out := &MarketOutcome{ISPs: isps, NuBar: mk.NuBar, Phi: phiStar}
	out.Shares = make([]float64, len(isps))
	var sum float64
	for k := range isps {
		out.Shares[k] = shareAt(k, phiStar)
		sum += out.Shares[k]
	}
	if sum > 0 {
		for k := range out.Shares {
			out.Shares[k] /= sum
		}
	}
	out.Eqs = make([]*ClassEquilibrium, len(isps))
	for k, isp := range isps {
		_, out.Eqs[k] = mk.phiAtShare(isp, math.Max(out.Shares[k], minShare))
	}
	return out
}

// shareGrid returns the market-share sample points for SolveMarket:
// geometric spacing below 0.1 (where ν and hence Φ change fastest) and
// linear spacing above. The grid is deterministic, so it is built once and
// shared; callers must treat it as read-only.
func shareGrid() []float64 {
	shareGridOnce.Do(func() {
		var grid []float64
		m := 1e-4
		for m < 0.1 {
			grid = append(grid, m)
			m *= 1.35
		}
		for _, m := range numeric.Linspace(0.1, 1, shareCurvePoints-len(grid)) {
			grid = append(grid, m)
		}
		shareGridCache = grid
	})
	return shareGridCache
}

var (
	shareGridOnce  sync.Once
	shareGridCache []float64
)
