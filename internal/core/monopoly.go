package core

import (
	"math"

	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// Monopoly analyzes the two-stage Stackelberg game (M, µ, N, I) of §III: a
// single last-mile ISP announces s = (κ, c), then the CPs partition into
// classes, and the ISP's payoff is the premium revenue Ψ.
type Monopoly struct {
	Solver *Solver
	// Warm enables warm-started CP equilibria across Outcome calls made by
	// the optimizers and sweeps (safe because the optimizers sweep smoothly).
	warm []bool
}

// NewMonopoly returns a monopoly analyzer over the given class-game solver
// (nil for defaults).
func NewMonopoly(s *Solver) *Monopoly {
	if s == nil {
		s = NewSolver(nil)
	}
	return &Monopoly{Solver: s}
}

// Outcome computes the CP competitive equilibrium the strategy induces on
// per-capita capacity ν. Sweeping callers benefit from the internal warm
// start; call ResetWarm between unrelated sweeps.
func (m *Monopoly) Outcome(s Strategy, nu float64, pop traffic.Population) *ClassEquilibrium {
	eq := m.Solver.CompetitiveFrom(s, nu, pop, m.warm)
	m.warm = append(m.warm[:0], eq.InPremium...)
	return eq
}

// ResetWarm clears the warm-start partition.
func (m *Monopoly) ResetWarm() { m.warm = nil }

// OptimalPrice maximizes the ISP surplus Ψ over the price c ∈ [0, cHi] at
// fixed κ, by grid search with golden-section refinement (the revenue curve
// is piecewise smooth with kinks where CPs enter/leave the premium class, so
// the grid localizes the global peak and the refinement sharpens it). It
// returns the best price and its outcome.
func (m *Monopoly) OptimalPrice(kappa, cHi, nu float64, pop traffic.Population, gridN int) (float64, *ClassEquilibrium) {
	if gridN <= 0 {
		gridN = 100
	}
	m.ResetWarm()
	obj := func(c float64) float64 {
		return m.Outcome(Strategy{Kappa: kappa, C: c}, nu, pop).Psi()
	}
	best, _ := numeric.RefineMax(obj, 0, cHi, gridN, 1e-9*math.Max(cHi, 1))
	m.ResetWarm()
	eq := m.Outcome(Strategy{Kappa: kappa, C: best}, nu, pop)
	return best, eq
}

// OptimalStrategy maximizes Ψ over the full strategy box
// [0,1] × [0, cHi] with a (kGrid+1)×(cGrid+1) grid followed by Nelder–Mead
// polish. Theorem 4 predicts the optimum sits at κ = 1; the optimizer does
// not assume it, so the theorem can be checked against this search.
func (m *Monopoly) OptimalStrategy(cHi, nu float64, pop traffic.Population, kGrid, cGrid int) (Strategy, *ClassEquilibrium) {
	if kGrid <= 0 {
		kGrid = 10
	}
	if cGrid <= 0 {
		cGrid = 40
	}
	obj := func(kappa, c float64) float64 {
		m.ResetWarm() // κ jumps around: warm starts would mislead
		return m.Outcome(Strategy{Kappa: kappa, C: c}, nu, pop).Psi()
	}
	k0, c0, _ := numeric.GridMax2D(obj, 0, 1, 0, cHi, kGrid, cGrid)
	k, c, _ := numeric.NelderMead2D(obj, k0, c0, 0, 1, 0, cHi, 1e-7, 200)
	// Keep whichever of the grid point and the polished point is better —
	// Nelder–Mead can slide off a kink.
	if obj(k0, c0) > obj(k, c) {
		k, c = k0, c0
	}
	m.ResetWarm()
	best := Strategy{Kappa: k, C: c}
	return best, m.Outcome(best, nu, pop)
}

// RevenueCurve samples Ψ and Φ across a price grid at fixed κ (the Figure 4
// object). The sweep warm-starts along the grid.
func (m *Monopoly) RevenueCurve(kappa float64, cGrid []float64, nu float64, pop traffic.Population) (psi, phi []float64) {
	psi = make([]float64, len(cGrid))
	phi = make([]float64, len(cGrid))
	m.ResetWarm()
	for i, c := range cGrid {
		eq := m.Outcome(Strategy{Kappa: kappa, C: c}, nu, pop)
		psi[i] = eq.Psi()
		phi[i] = eq.Phi()
	}
	m.ResetWarm()
	return psi, phi
}

// CapacityCurve samples Ψ and Φ across a per-capita capacity grid at fixed
// strategy (the Figure 5 object).
func (m *Monopoly) CapacityCurve(s Strategy, nuGrid []float64, pop traffic.Population) (psi, phi []float64) {
	psi = make([]float64, len(nuGrid))
	phi = make([]float64, len(nuGrid))
	m.ResetWarm()
	for i, nu := range nuGrid {
		eq := m.Outcome(s, nu, pop)
		psi[i] = eq.Psi()
		phi[i] = eq.Phi()
	}
	m.ResetWarm()
	return psi, phi
}

// CheckTheorem4 verifies the dominance claim of Theorem 4 on a price grid:
// for every price c, revenue under (κ, c) must not exceed revenue under
// (1, c) beyond tolerance. It returns the worst observed violation (a
// non-positive value means the theorem held on the grid).
func (m *Monopoly) CheckTheorem4(kappas, prices []float64, nu float64, pop traffic.Population) float64 {
	worst := math.Inf(-1)
	for _, c := range prices {
		m.ResetWarm()
		full := m.Solver.Trivial(Strategy{Kappa: 1, C: c}, nu, pop).Psi()
		for _, k := range kappas {
			m.ResetWarm()
			partial := m.Outcome(Strategy{Kappa: k, C: c}, nu, pop).Psi()
			if v := partial - full; v > worst {
				worst = v
			}
		}
	}
	m.ResetWarm()
	return worst
}
