package core

import (
	"testing"

	"github.com/netecon-sim/publicoption/internal/traffic"
)

// Competitive-equilibrium benchmarks: the unit of work every market solve,
// monopoly grid and 2-D sweep repeats. CI extracts these (with -benchmem)
// into BENCH_core.json alongside the alloc kernel and grid-cell probes.

func benchSetup() (*Solver, Strategy, float64, traffic.Population) {
	pop := traffic.PaperPopulation(traffic.PhiCorrelated) // 1000 CPs
	return NewSolver(nil), Strategy{Kappa: 0.5, C: 0.4}, 100.0, pop
}

// BenchmarkCompetitiveEquilibrium1000 solves the full class game from the
// affordability initial partition each iteration — the cold unit of work.
func BenchmarkCompetitiveEquilibrium1000(b *testing.B) {
	s, strat, nu, pop := benchSetup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Competitive(strat, nu, pop)
	}
}

// BenchmarkCompetitiveWarmSweep1000 sweeps the premium price with the
// warm-start partition threaded point to point — the exact shape of
// RevenueCurve, OptimalPrice and the grid row runners.
func BenchmarkCompetitiveWarmSweep1000(b *testing.B) {
	s, strat, nu, pop := benchSetup()
	prices := []float64{0.38, 0.4, 0.42}
	warm := s.Competitive(strat, nu, pop).InPremium
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		strat.C = prices[i%len(prices)]
		eq := s.CompetitiveFrom(strat, nu, pop, warm)
		warm = eq.InPremium
	}
}
