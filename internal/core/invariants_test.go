package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/netecon-sim/publicoption/internal/numeric"
)

// Property suite: structural invariants of the class game that must hold
// for every strategy, capacity and population — the backbone guarantees the
// experiments lean on.

func TestClassGameInvariantsQuick(t *testing.T) {
	rng := numeric.NewRNG(201)
	solver := NewSolver(nil)
	f := func() bool {
		pop := ensemble(rng.Uint64(), 5+rng.Intn(60))
		sat := pop.TotalUnconstrainedPerCapita()
		strat := Strategy{Kappa: rng.Float64(), C: rng.Uniform(0, 1.2)}
		nu := rng.Uniform(0, 1.5*sat)
		eq := solver.Competitive(strat, nu, pop)

		// 1. Carried traffic never exceeds capacity.
		carried := eq.Ordinary.Aggregate() + eq.Premium.Aggregate()
		if carried > nu*(1+1e-6)+1e-9 {
			t.Logf("over-capacity: carried %v > ν %v", carried, nu)
			return false
		}
		// 2. Revenue is the premium rate times the price.
		if psi := eq.Psi(); math.Abs(psi-strat.C*eq.Premium.Aggregate()) > 1e-9*math.Max(psi, 1) {
			t.Logf("Ψ inconsistency")
			return false
		}
		// 3. Surplus is bounded by the saturation value.
		maxPhi := 0.0
		for i := range pop {
			maxPhi += pop[i].Phi * pop[i].UnconstrainedPerCapitaRate()
		}
		if phi := eq.Phi(); phi < -1e-9 || phi > maxPhi*(1+1e-6) {
			t.Logf("Φ %v outside [0, %v]", phi, maxPhi)
			return false
		}
		// 4. Per-CP θ respects Axiom 1 inside each class.
		for i := range pop {
			if eq.Theta[i] < 0 || eq.Theta[i] > pop[i].ThetaHat*(1+1e-9) {
				t.Logf("θ_%d out of range", i)
				return false
			}
		}
		// 5. Premium members must afford the price (no CP pays more than it
		// earns — it could always take the free class; allow the
		// indifference band).
		for i := range pop {
			if eq.InPremium[i] && eq.CPUtility(i) < -eq.EpsUsed*utilityScale(&pop[i], strat.C)-1e-12 {
				t.Logf("CP %d in premium with negative utility %v", i, eq.CPUtility(i))
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDuopolyInvariantsQuick(t *testing.T) {
	rng := numeric.NewRNG(203)
	f := func() bool {
		pop := ensemble(rng.Uint64(), 20+rng.Intn(40))
		sat := pop.TotalUnconstrainedPerCapita()
		mk := NewMarket(nil, pop, rng.Uniform(0.05, 1.5)*sat)
		mk.MigrationTol = 1e-6
		gammaA := rng.Uniform(0.2, 0.8)
		out := mk.SolveDuopoly(
			ISP{Name: "a", Gamma: gammaA, Strategy: Strategy{Kappa: rng.Float64(), C: rng.Float64()}},
			ISP{Name: "b", Gamma: 1 - gammaA, Strategy: PublicOption},
		)
		// Shares form a distribution.
		if math.Abs(out.Shares[0]+out.Shares[1]-1) > 1e-9 {
			return false
		}
		if out.Shares[0] < 0 || out.Shares[0] > 1 {
			return false
		}
		// The market surplus is within the achievable range.
		maxPhi := 0.0
		for i := range pop {
			maxPhi += pop[i].Phi * pop[i].UnconstrainedPerCapitaRate()
		}
		return out.Phi >= -1e-9 && out.Phi <= maxPhi*(1+1e-6)
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Against a Public Option, interior equilibria equalize surplus: whenever
// both ISPs hold meaningful share, their per-subscriber Φ agree.
func TestDuopolyEqualizationQuick(t *testing.T) {
	rng := numeric.NewRNG(205)
	f := func() bool {
		pop := ensemble(rng.Uint64(), 30+rng.Intn(30))
		sat := pop.TotalUnconstrainedPerCapita()
		mk := NewMarket(nil, pop, rng.Uniform(0.2, 0.6)*sat)
		mk.MigrationTol = 1e-9
		out := mk.SolveDuopoly(
			ISP{Name: "a", Gamma: 0.5, Strategy: Strategy{Kappa: 1, C: rng.Uniform(0, 0.5)}},
			ISP{Name: "b", Gamma: 0.5, Strategy: PublicOption},
		)
		if out.Shares[0] < 0.05 || out.Shares[0] > 0.95 {
			return true // boundary equilibrium: equalization not required
		}
		phiA, phiB := out.Eqs[0].Phi(), out.Eqs[1].Phi()
		return math.Abs(phiA-phiB) <= 5e-3*math.Max(phiB, 1)
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
