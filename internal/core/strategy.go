// Package core implements the strategic games of the Ma–Misra "Public
// Option" paper — the primary contribution of the reproduction.
//
// Three layers of game are built on top of the rate-equilibrium substrate
// (internal/alloc):
//
//   - The CP class-choice game (§III-B/C/D): given an ISP strategy s = (κ, c)
//     that splits capacity into a free ordinary class and a priced premium
//     class, the content providers simultaneously pick classes. Both of the
//     paper's solution concepts are implemented — the competitive
//     (throughput-taking, Definition 3) equilibrium used for all numerics,
//     and the Nash equilibrium (Definition 2) via sequential best response
//     and exhaustive enumeration for small populations.
//
//   - The monopoly Stackelberg game (§III): the ISP moves first, choosing
//     (κ, c) to maximize premium revenue Ψ, anticipating the CP equilibrium.
//
//   - The multi-ISP market game (§IV): consumers migrate between ISPs until
//     per-capita consumer surplus equalizes (Assumption 5); ISPs choose
//     strategies to maximize market share. The Public Option ISP is the
//     fixed strategy (0, 0).
//
// All quantities are per capita (ν = µ/M); Theorem 3 and Lemma 3 make this
// without loss of generality.
package core

import (
	"fmt"
	"math"
)

// Strategy is an ISP's service-differentiation strategy s = (κ, c): the
// fraction κ of capacity dedicated to the premium class and the per-unit
// traffic price c charged to premium content providers (§III-A). κ = 0
// means a single free class — the network-neutral strategy.
type Strategy struct {
	Kappa float64 // premium capacity fraction κ ∈ [0, 1]
	C     float64 // premium price c ≥ 0 (per unit traffic)
}

// PublicOption is the strategy of a Public Option ISP (Definition 5): no
// capacity split, no charge — neutral to all content providers.
var PublicOption = Strategy{Kappa: 0, C: 0}

// NoPremium reports whether the strategy reserves no premium capacity, so
// the class game degenerates to a single best-effort class. The comparison
// is exact by design: κ is a configuration input, and only the literal 0
// removes the premium class — a tolerance here would silently erase a
// tiny-but-real premium carve-out. Every κ = 0 structural branch in the
// solvers routes through this helper (and AllPremium for κ = 1) so the
// sentinel semantics live in exactly one annotated place.
func (s Strategy) NoPremium() bool {
	return s.Kappa == 0 //pubopt:allow(floatcmp): κ=0 is the exact no-premium sentinel; a nearby κ is a real (tiny) premium class
}

// AllPremium reports whether the strategy dedicates all capacity to the
// premium class (κ = 1), starving the ordinary class entirely. Exact for
// the same reason as NoPremium.
func (s Strategy) AllPremium() bool {
	return s.Kappa == 1 //pubopt:allow(floatcmp): κ=1 is the exact all-premium sentinel of §III-C
}

// FreePremium reports whether the premium class costs nothing, so every CP
// can afford it and the price mechanism is inert.
func (s Strategy) FreePremium() bool {
	return s.C == 0 //pubopt:allow(floatcmp): c=0 is the exact free-premium sentinel; any positive price excludes someone
}

// Neutral reports whether the strategy is economically neutral: either no
// premium capacity or a free premium class (no CP pays, no CP is
// disadvantaged by ability to pay).
func (s Strategy) Neutral() bool { return s.NoPremium() || s.FreePremium() }

// Validate reports the first parameter violation, or nil.
func (s Strategy) Validate() error {
	if s.Kappa < 0 || s.Kappa > 1 || math.IsNaN(s.Kappa) {
		return fmt.Errorf("core: strategy κ=%g outside [0,1]", s.Kappa)
	}
	if s.C < 0 || math.IsNaN(s.C) || math.IsInf(s.C, 0) {
		return fmt.Errorf("core: strategy c=%g, want finite and >= 0", s.C)
	}
	return nil
}

// String implements fmt.Stringer.
func (s Strategy) String() string { return fmt.Sprintf("(κ=%.3g, c=%.3g)", s.Kappa, s.C) }

// ISP describes one competing ISP in the oligopolistic analysis: its share
// γ_I of the total last-mile capacity and its differentiation strategy.
type ISP struct {
	Name     string
	Gamma    float64 // capacity share γ_I = µ_I/µ ∈ (0, 1]
	Strategy Strategy
}

// Validate reports the first parameter violation, or nil.
func (i ISP) Validate() error {
	if !(i.Gamma > 0 && i.Gamma <= 1) {
		return fmt.Errorf("core: ISP %q capacity share γ=%g outside (0,1]", i.Name, i.Gamma)
	}
	return i.Strategy.Validate()
}
