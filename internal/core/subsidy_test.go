package core

import (
	"math"
	"testing"
)

func TestSubsidyZeroMatchesBaseline(t *testing.T) {
	pop := ensemble(81, 80)
	sat := pop.TotalUnconstrainedPerCapita()
	mk := NewMarket(nil, pop, 0.4*sat)
	a := ISP{Name: "i", Gamma: 0.5, Strategy: Strategy{Kappa: 1, C: 0.3}}
	b := ISP{Name: "po", Gamma: 0.5, Strategy: PublicOption}
	base := mk.SolveDuopoly(a, b)
	sub := mk.SolveSubsidizedDuopoly(
		SubsidizedISP{ISP: a, Sigma: 0},
		SubsidizedISP{ISP: b, Sigma: 0},
	)
	if math.Abs(base.Shares[0]-sub.Shares[0]) > 1e-6 {
		t.Fatalf("σ=0 shares differ: %v vs %v", base.Shares[0], sub.Shares[0])
	}
}

func TestSubsidyBuysMarketShare(t *testing.T) {
	// §VI: rebating premium revenue must attract consumers relative to
	// pocketing it.
	pop := ensemble(82, 80)
	sat := pop.TotalUnconstrainedPerCapita()
	mk := NewMarket(nil, pop, 0.4*sat)
	a := ISP{Name: "i", Gamma: 0.5, Strategy: Strategy{Kappa: 1, C: 0.3}}
	b := ISP{Name: "po", Gamma: 0.5, Strategy: PublicOption}
	noRebate := mk.SolveSubsidizedDuopoly(
		SubsidizedISP{ISP: a, Sigma: 0}, SubsidizedISP{ISP: b, Sigma: 0})
	fullRebate := mk.SolveSubsidizedDuopoly(
		SubsidizedISP{ISP: a, Sigma: 1}, SubsidizedISP{ISP: b, Sigma: 0})
	if fullRebate.Shares[0] <= noRebate.Shares[0] {
		t.Fatalf("full rebate share %v not above no-rebate share %v",
			fullRebate.Shares[0], noRebate.Shares[0])
	}
}

func TestSubsidyCannotMaskGrossSurplusLoss(t *testing.T) {
	// A rebating incumbent with a consumer-hostile strategy gains share,
	// but the regulator's gross-Φ view must still see the damage relative
	// to the neutral benchmark.
	pop := ensemble(83, 80)
	sat := pop.TotalUnconstrainedPerCapita()
	nuBar := 0.4 * sat
	mk := NewMarket(nil, pop, nuBar)
	hostile := ISP{Name: "i", Gamma: 0.5, Strategy: Strategy{Kappa: 1, C: 0.85}}
	po := ISP{Name: "po", Gamma: 0.5, Strategy: PublicOption}
	out := mk.SolveSubsidizedDuopoly(
		SubsidizedISP{ISP: hostile, Sigma: 1}, SubsidizedISP{ISP: po, Sigma: 0})
	neutralPhi := NewSolver(nil).Competitive(PublicOption, nuBar, pop).Phi()
	if out.GrossPhi >= neutralPhi {
		t.Fatalf("gross Φ %v should fall below the neutral benchmark %v under a hostile rebater",
			out.GrossPhi, neutralPhi)
	}
}

func TestSubsidyValidation(t *testing.T) {
	pop := ensemble(84, 10)
	mk := NewMarket(nil, pop, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for σ > 1")
		}
	}()
	mk.SolveSubsidizedDuopoly(
		SubsidizedISP{ISP: ISP{Name: "a", Gamma: 0.5, Strategy: PublicOption}, Sigma: 1.5},
		SubsidizedISP{ISP: ISP{Name: "b", Gamma: 0.5, Strategy: PublicOption}, Sigma: 0},
	)
}
