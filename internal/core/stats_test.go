package core

import "testing"

// TestSolverStats pins the class-game telemetry contract: Stats sums the
// three kernels' counters, grows monotonically across solves, and stays
// safe on a solver that has not yet built its kernels.
func TestSolverStats(t *testing.T) {
	var bare Solver
	if !bare.Stats().Zero() {
		t.Fatalf("zero-value solver stats %+v, want zero", bare.Stats())
	}

	pop := ensemble(4, 60)
	nu := 0.4 * pop.TotalUnconstrainedPerCapita()
	s := NewSolver(nil)
	eq := s.Competitive(Strategy{Kappa: 0.5, C: 0.4}, nu, pop)
	if !eq.Converged {
		t.Fatal("solve did not converge")
	}
	st := s.Stats()
	if st.Solves == 0 || st.Evals == 0 {
		t.Fatalf("competitive solve left stats empty: %+v", st)
	}
	// The dynamics re-solve both class equilibria every move: far more
	// kernel solves than the two finalize calls.
	if st.Solves < 4 {
		t.Fatalf("only %d kernel solves recorded for a full dynamics run", st.Solves)
	}

	// A second solve only adds.
	s.Competitive(Strategy{Kappa: 0.3, C: 0.5}, nu, pop)
	st2 := s.Stats()
	d := st2.Since(st)
	if d.Solves == 0 || d.Evals == 0 {
		t.Fatalf("second solve added nothing: delta %+v (before %+v, after %+v)", d, st, st2)
	}
}
