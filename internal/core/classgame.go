package core

import (
	"bytes"
	"fmt"
	"math"
	"slices"

	"github.com/netecon-sim/publicoption/internal/alloc"
	"github.com/netecon-sim/publicoption/internal/econ"
	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/obs"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// Solver computes CP class-choice equilibria. The zero value is not usable;
// construct with NewSolver. Alloc must not be mutated after the first
// solve: the solver binds reusable equilibrium workspaces to it.
//
// A Solver owns warm-started alloc.Workspace kernels (one per class, one
// for post-join verification) plus the split/join scratch buffers of the
// competitive dynamics, so repeated solves — price grids, capacity sweeps,
// migration bisections — run without per-iteration allocation. It is not
// safe for concurrent use; sweeps create one Solver per worker.
type Solver struct {
	Alloc   alloc.Allocator
	MaxIter int // iteration budget for the competitive fixed point
	// EpsUtil is the relative utility-indifference band: a CP switches
	// classes only when the switch gains more than EpsUtil times its utility
	// scale. CPs inside the band are treated as indifferent, which is what
	// terminates the discrete dynamics at marginal CPs. The solver widens
	// the band automatically (reported in ClassEquilibrium.EpsUsed) if
	// best-gain dynamics still cycle.
	EpsUtil float64

	// Equilibrium kernels: one warm level per class (the ordinary and
	// premium levels evolve separately along the dynamics) and one for
	// post-join counterfactuals.
	wsO, wsP, wsJoin *alloc.Workspace
	// Scratch: class partitions, the members∪{cp} join buffer, and the
	// visited-partition set of the cycle detector.
	ordBuf, premBuf traffic.Population
	joinBuf         traffic.Population
	seen            partitionSet
	// cycles counts partition-cycle restarts across the solver's lifetime:
	// phase-1 mover-cap halvings and phase-2 indifference-band widenings.
	// Surfaced through Stats alongside the kernels' counters.
	cycles uint64
}

// NewSolver returns a Solver using mechanism a (nil means the paper's
// max-min mechanism) with default iteration budget and tolerance.
func NewSolver(a alloc.Allocator) *Solver {
	if a == nil {
		a = alloc.MaxMin{}
	}
	s := &Solver{Alloc: a, MaxIter: 600, EpsUtil: 1e-9}
	s.kernels()
	return s
}

// kernels creates the equilibrium workspaces (lazily, so hand-rolled
// Solver literals keep working).
func (s *Solver) kernels() {
	if s.wsO == nil {
		s.wsO = alloc.NewWorkspace(s.Alloc)
		s.wsP = alloc.NewWorkspace(s.Alloc)
		s.wsJoin = alloc.NewWorkspace(s.Alloc)
	}
}

// Stats returns the solver's cumulative telemetry: the summed counters of
// its three equilibrium kernels plus the class-dynamics cycle restarts.
// Like the kernels themselves, the counters are single-goroutine state;
// callers aggregating across workers go through an obs.Counters sink.
func (s *Solver) Stats() obs.SolveStats {
	var st obs.SolveStats
	if s.wsO != nil {
		st.Accumulate(s.wsO.Stats())
		st.Accumulate(s.wsP.Stats())
		st.Accumulate(s.wsJoin.Stats())
	}
	st.CycleRestarts += s.cycles
	return st
}

// splitScratch partitions pop by membership flags into the solver's
// reusable class buffers, preserving order. The returned slices alias the
// scratch and are valid until the next splitScratch call; results that
// outlive an iteration (finalize) clone what they keep.
func (s *Solver) splitScratch(pop traffic.Population, premium []bool) (ordinary, prem traffic.Population) {
	s.ordBuf = s.ordBuf[:0]
	s.premBuf = s.premBuf[:0]
	for i := range pop {
		if premium[i] {
			s.premBuf = append(s.premBuf, pop[i])
		} else {
			s.ordBuf = append(s.ordBuf, pop[i])
		}
	}
	return s.ordBuf, s.premBuf
}

// ClassEquilibrium is the outcome of the CP simultaneous-move game at one
// ISP under strategy s = (κ, c) on per-capita capacity ν: a partition of the
// CPs into the ordinary and premium classes together with the rate
// equilibria inside each class.
type ClassEquilibrium struct {
	Strategy Strategy
	Nu       float64            // the ISP's per-capita capacity ν_I
	Pop      traffic.Population // full CP population (index space for InPremium/Theta)
	// InPremium[i] reports whether CP i joined the premium class.
	InPremium []bool
	// Theta[i] is CP i's equilibrium per-user throughput in its class.
	Theta []float64
	// Ordinary and Premium are the intra-class rate equilibria. Their Pop
	// fields are the class sub-populations in original order.
	Ordinary, Premium *alloc.Result
	// Converged is false when the competitive fixed point hit its iteration
	// budget without stabilizing (the returned state is the final iterate).
	Converged bool
	// Iterations is the number of fixed-point iterations performed.
	Iterations int
	// EpsUsed is the relative utility-indifference band the equilibrium was
	// accepted at (≥ the solver's EpsUtil; larger if dynamics forced the
	// band to widen). Every CP's class choice is optimal up to EpsUsed times
	// its utility scale.
	EpsUsed float64
}

// PremiumCount returns the number of premium CPs.
func (e *ClassEquilibrium) PremiumCount() int {
	n := 0
	for _, p := range e.InPremium {
		if p {
			n++
		}
	}
	return n
}

// Phi returns the per-capita consumer surplus of the two-class system:
// Φ((1−κ)ν, O) + Φ(κν, P) (§III-D).
func (e *ClassEquilibrium) Phi() float64 {
	return econ.Phi(e.Ordinary) + econ.Phi(e.Premium)
}

// Psi returns the per-capita ISP surplus Ψ = c·λ_P/M (§III-A).
func (e *ClassEquilibrium) Psi() float64 {
	return econ.Revenue(e.Premium, e.Strategy.C)
}

// PremiumRate returns λ_P/M, the per-capita aggregate premium throughput.
func (e *ClassEquilibrium) PremiumRate() float64 { return e.Premium.Aggregate() }

// Utilization returns total carried traffic divided by ν (1 when ν = 0).
func (e *ClassEquilibrium) Utilization() float64 {
	if e.Nu <= 0 {
		return 1
	}
	return (e.Ordinary.Aggregate() + e.Premium.Aggregate()) / e.Nu
}

// CPUtility returns CP i's per-capita utility u_i/M (Eq. 4) at the
// equilibrium.
func (e *ClassEquilibrium) CPUtility(i int) float64 {
	price := 0.0
	if e.InPremium[i] {
		price = e.Strategy.C
	}
	return econ.CPUtilityPerCapita(&e.Pop[i], e.Theta[i], price)
}

// String summarizes the equilibrium.
func (e *ClassEquilibrium) String() string {
	return fmt.Sprintf("classeq(s=%v, ν=%g, premium=%d/%d, Φ=%.4g, Ψ=%.4g, converged=%t)",
		e.Strategy, e.Nu, e.PremiumCount(), len(e.Pop), e.Phi(), e.Psi(), e.Converged)
}

// classLevel returns the operating level a class advertises to prospective
// members under the throughput-taking screening estimate.
//
// A congested class advertises its true water level — exactly the paper's
// max-min estimate θ̃ = min(θ̂, θ_N). A class with spare capacity (empty, or
// unconstrained members) advertises the unconstrained level of the full
// population: its own members' level would understate what an outsider with
// a larger θ̂ could draw from the spare capacity. The screening estimate
// only needs to be an upper bound on the true post-join value, because every
// candidate move is verified against the exact post-join level before being
// taken. A class with zero capacity advertises nothing. hiFull is the
// unconstrained level of the full population (precomputed once per solve).
func (s *Solver) classLevel(res *alloc.Result, capacity, hiFull float64) float64 {
	if len(res.Pop) > 0 && res.Constrained {
		return res.Level
	}
	if capacity > 0 {
		return hiFull
	}
	return 0
}

// postJoinTheta returns the per-user throughput CP cp would actually get if
// it joined the class currently holding members (with the given capacity):
// the rate equilibrium of members ∪ {cp}. This is the paper's Assumption 3
// with a rational-expectations (exact ex-post) estimator. The joined
// population lives in the solver's reusable join buffer, and the solve runs
// on the warm post-join kernel.
func (s *Solver) postJoinTheta(cp *traffic.CP, capacity float64, members traffic.Population) float64 {
	s.kernels()
	s.joinBuf = append(s.joinBuf[:0], members...)
	s.joinBuf = append(s.joinBuf, *cp)
	res := s.wsJoin.Solve(capacity, s.joinBuf)
	return res.Theta[len(s.joinBuf)-1]
}

// classCurve caches one class's aggregate-rate map τ ↦ λ_class(τ) so that
// many post-join queries against the same class cost O(1) class sweeps
// instead of a full bisection each. The interpolant provides the shape; the
// answer is sharpened with offset-corrected exact evaluations, so results
// match postJoinTheta to solver tolerance.
type classCurve struct {
	alloc   alloc.Allocator
	members traffic.Population
	cap     float64
	hi      float64 // level at which every CP in the *full* population is unconstrained
	interp  *numeric.PCHIP
	total   float64 // λ_class(hi): the class's total unconstrained rate
}

const classCurveSamples = 96

// newClassCurve samples the class's aggregate rate across levels.
func (s *Solver) newClassCurve(members traffic.Population, capacity float64, full traffic.Population) *classCurve {
	hi := s.Alloc.LevelHi(full)
	if hi <= 0 {
		hi = 1
	}
	c := &classCurve{alloc: s.Alloc, members: members, cap: capacity, hi: hi}
	xs := numeric.Linspace(0, hi, classCurveSamples)
	ys := make([]float64, len(xs))
	for i, tau := range xs {
		ys[i] = c.exact(tau)
	}
	c.interp = numeric.NewPCHIP(xs, ys)
	c.total = ys[len(ys)-1]
	return c
}

// exact returns λ_class(tau) by direct summation, through the mechanism's
// bulk fast path.
func (c *classCurve) exact(tau float64) float64 {
	return alloc.AggregateAt(c.alloc, tau, c.members)
}

// postJoinTheta returns the level-form throughput cp would get after joining
// this class: the root of λ_class(τ) + λ_cp(τ) = capacity (or the
// unconstrained rate when capacity covers everyone). It uses the cached
// interpolant for bisection and corrects the interpolation error with exact
// evaluations until the residual is at solver tolerance.
func (c *classCurve) postJoinTheta(cp *traffic.CP) float64 {
	if c.cap <= 0 {
		return 0
	}
	own := func(tau float64) float64 {
		return alloc.EvalPerCapitaRate(cp, alloc.EvalRate(c.alloc, tau, cp))
	}
	if c.total+own(c.hi) <= c.cap {
		return c.alloc.RateAt(c.hi, cp) // everyone unconstrained
	}
	resTol := 1e-11 * math.Max(c.cap, 1)
	offset := 0.0
	tau := 0.0
	for k := 0; k < 8; k++ {
		tau = numeric.Bisect(func(t float64) float64 {
			return c.interp.At(t) + offset + own(t) - c.cap
		}, 0, c.hi, 1e-13*c.hi)
		residual := c.exact(tau) + own(tau) - c.cap
		if math.Abs(residual) <= resTol {
			break
		}
		// Freeze the interpolation error at tau into the offset and
		// re-solve; the error is smooth and small, so this converges in a
		// couple of rounds.
		offset = c.exact(tau) - c.interp.At(tau)
	}
	return c.alloc.RateAt(tau, cp)
}

// switchGain evaluates the competitive joining condition (Definition 3,
// restated in utility form to avoid the division in Eq. 8): the per-capita
// utility gain of the premium class over the ordinary class,
//
//	gain = α_i·[(v_i − c)·ρ̃_i(premium) − v_i·ρ̃_i(ordinary)]
//
// with ρ̃ computed from each class's advertised level. A CP strictly prefers
// premium iff gain > 0; ties go to the ordinary class, the paper's
// tie-breaking convention.
func (s *Solver) switchGain(cp *traffic.CP, c, levelO, levelP float64) float64 {
	rhoO := alloc.EvalRho(cp, alloc.EvalRate(s.Alloc, levelO, cp))
	rhoP := alloc.EvalRho(cp, alloc.EvalRate(s.Alloc, levelP, cp))
	return cp.Alpha * ((cp.V-c)*rhoP - cp.V*rhoO)
}

// utilityScale bounds the magnitude of a CP's achievable utility; the
// indifference band is relative to it.
func utilityScale(cp *traffic.CP, c float64) float64 {
	v := math.Max(math.Abs(cp.V), math.Abs(cp.V-c))
	return cp.Alpha*v*cp.ThetaHat + 1e-300
}

// Competitive computes a competitive equilibrium of the game (ν, pop, s):
// Definition 3 of the paper with a rational-expectations estimator — each
// CP's estimate ρ̃_i of its ex-post throughput (Assumption 3) is the exact
// rate equilibrium of the target class including itself. Under this
// estimator the competitive conditions (Eq. 8) coincide with the Nash
// conditions (Eq. 7), which is the paper's own point that for large
// populations the two concepts agree; the value of the competitive solver
// is that it reaches the equilibrium in near-linear time instead of the
// Nash solver's quadratic sweep.
//
// The dynamics run in two phases:
//
//  1. Screening phase: every CP evaluates both classes at their current
//     advertised levels — an optimistic estimate that ignores the CP's own
//     congestion contribution and therefore upper-bounds the true switch
//     gain — and all CPs whose apparent gain exceeds the indifference band
//     move simultaneously. This settles the bulk of the population in a few
//     iterations. The phase ends when it stops making progress (no movers,
//     a revisited partition, or the iteration cap).
//
//  2. Sequential phase: candidates are screened by apparent gain in
//     descending order, and each is verified against the exact post-join
//     level of its target class before moving; one CP moves per iteration.
//     A CP whose verified gain exceeds the band strictly improves its own
//     utility by moving, so the single-mover dynamics cannot immediately
//     revisit a state through the same CP; if the partition nevertheless
//     cycles (through interleaved movers), the indifference band widens and
//     the dynamics continue. When no candidate survives verification, the
//     state is an equilibrium: no CP can gain more than the band by
//     switching, accounting for its own effect.
//
// The result is an ε-equilibrium with ε reported in EpsUsed (≥ the solver's
// EpsUtil; wider only if cycling forced it). The returned state is always a
// feasible class system — the intra-class allocations are exact rate
// equilibria regardless of convergence.
func (s *Solver) Competitive(strategy Strategy, nu float64, pop traffic.Population) *ClassEquilibrium {
	return s.CompetitiveFrom(strategy, nu, pop, nil)
}

// CompetitiveFrom is Competitive with a warm-start partition (may be nil).
// Passing the previous equilibrium's InPremium when sweeping a parameter
// cuts the iteration count to a handful, since partitions move slowly along
// sweeps.
func (s *Solver) CompetitiveFrom(strategy Strategy, nu float64, pop traffic.Population, warm []bool) *ClassEquilibrium {
	if err := strategy.Validate(); err != nil {
		panic(err)
	}
	if nu < 0 || math.IsNaN(nu) {
		panic(fmt.Sprintf("core: Competitive called with ν=%g", nu))
	}
	s.kernels()
	eq := &ClassEquilibrium{
		Strategy:  strategy,
		Nu:        nu,
		Pop:       pop,
		InPremium: make([]bool, len(pop)),
		Theta:     make([]float64, len(pop)),
		Converged: true,
	}
	if len(pop) == 0 {
		eq.Ordinary = alloc.Solve(s.Alloc, (1-strategy.Kappa)*nu, nil)
		eq.Premium = alloc.Solve(s.Alloc, strategy.Kappa*nu, nil)
		return eq
	}
	// κ = 0: no premium class exists; the trivial profile (N, ∅).
	if strategy.NoPremium() {
		s.finalize(eq)
		return eq
	}

	// Initial partition.
	if warm != nil && len(warm) == len(pop) {
		copy(eq.InPremium, warm)
	} else {
		for i := range pop {
			eq.InPremium[i] = pop[i].V > strategy.C
		}
	}

	capO := (1 - strategy.Kappa) * nu
	capP := strategy.Kappa * nu
	// The unconstrained level of the full population is what an uncongested
	// class advertises; it is a function of (mechanism, pop) only, so hoist
	// it out of the dynamics.
	hiFull := s.Alloc.LevelHi(pop)
	levels := func(premium []bool) (lO, lP float64) {
		o, p := s.splitScratch(pop, premium)
		resO := s.wsO.Solve(capO, o)
		lO = s.classLevel(resO, capO, hiFull)
		resP := s.wsP.Solve(capP, p)
		lP = s.classLevel(resP, capP, hiFull)
		return lO, lP
	}

	eps := s.EpsUtil
	if eps <= 0 {
		eps = 1e-9
	}
	type mover struct {
		idx  int
		gain float64 // apparent utility improvement of switching, always > 0
	}
	// screen collects CPs whose switch looks profitable at the advertised
	// class levels (an upper bound on the true gain), best first.
	movers := make([]mover, 0, len(pop))
	screen := func(lO, lP float64) []mover {
		movers = movers[:0]
		for i := range pop {
			g := s.switchGain(&pop[i], strategy.C, lO, lP)
			band := eps * utilityScale(&pop[i], strategy.C)
			switch {
			case !eq.InPremium[i] && g > band:
				movers = append(movers, mover{idx: i, gain: g})
			case eq.InPremium[i] && g < -band:
				movers = append(movers, mover{idx: i, gain: -g})
			}
		}
		// Generic sort: unlike sort.Slice it reflects nothing and allocates
		// nothing, and screen runs once per dynamics iteration.
		slices.SortFunc(movers, func(a, b mover) int {
			switch {
			case a.gain > b.gain:
				return -1
			case a.gain < b.gain:
				return 1
			}
			return 0
		})
		return movers
	}

	lO, lP := levels(eq.InPremium)
	s.seen.reset()
	s.seen.add(eq.InPremium)

	// Phase 1: simultaneous screened moves with an adaptive mover cap.
	// Oscillation means a block of CPs overshot together; halving the cap
	// splits the block until the dynamics glide. The cap reaching 1 hands
	// over to the verified sequential phase for the endgame.
	const phase1Budget = 80
	cap1 := len(pop)
	for iter := 1; iter <= phase1Budget && cap1 > 1; iter++ {
		eq.Iterations = iter
		ms := screen(lO, lP)
		if len(ms) == 0 {
			eq.EpsUsed = eps
			s.finalize(eq)
			return eq
		}
		if len(ms) > cap1 {
			ms = ms[:cap1]
		}
		for _, m := range ms {
			eq.InPremium[m.idx] = !eq.InPremium[m.idx]
		}
		lO, lP = levels(eq.InPremium)
		if s.seen.add(eq.InPremium) {
			s.cycles++
			cap1 /= 2 // oscillating: shrink the block
			s.seen.reset()
			s.seen.add(eq.InPremium)
		}
	}

	// Phase 2: sequential verified moves. Candidate verification reuses a
	// cached aggregate-rate curve per class per iteration, so scanning even
	// dozens of marginal candidates costs a couple of class sweeps rather
	// than a full equilibrium solve each.
	s.seen.reset()
	s.seen.add(eq.InPremium)
	for iter := eq.Iterations + 1; iter <= s.MaxIter; iter++ {
		eq.Iterations = iter
		ms := screen(lO, lP)
		movedIdx := -1
		if len(ms) > 0 {
			o, p := s.splitScratch(pop, eq.InPremium)
			// Class curves are built lazily: when the top candidate passes
			// verification (the common case mid-churn), one direct solve is
			// cheaper than sampling the curve; the cached curve pays off
			// when many marginal candidates must be scanned.
			var curveO, curveP *classCurve
			for mi, m := range ms {
				cp := &pop[m.idx]
				// Verify against the exact post-join level of the target
				// class (Assumption 3 with rational expectations).
				targetPremium := !eq.InPremium[m.idx]
				price := 0.0
				if targetPremium {
					price = strategy.C
				}
				var theta float64
				if mi == 0 {
					members, capacity := o, capO
					if targetPremium {
						members, capacity = p, capP
					}
					theta = s.postJoinTheta(cp, capacity, members)
				} else {
					if targetPremium {
						if curveP == nil {
							curveP = s.newClassCurve(p, capP, pop)
						}
						theta = curveP.postJoinTheta(cp)
					} else {
						if curveO == nil {
							curveO = s.newClassCurve(o, capO, pop)
						}
						theta = curveO.postJoinTheta(cp)
					}
				}
				uTarget := (cp.V - price) * cp.Alpha * alloc.EvalRho(cp, theta)
				// Current utility at the exact current level (the CP is
				// already counted in its own class).
				curLevel, curPrice := lO, 0.0
				if eq.InPremium[m.idx] {
					curLevel, curPrice = lP, strategy.C
				}
				uCur := (cp.V - curPrice) * cp.Alpha * alloc.EvalRho(cp, alloc.EvalRate(s.Alloc, curLevel, cp))
				if uTarget-uCur > eps*utilityScale(cp, strategy.C) {
					eq.InPremium[m.idx] = targetPremium
					movedIdx = m.idx
					break
				}
			}
		}
		if movedIdx < 0 {
			// No candidate survives post-join verification: equilibrium.
			eq.EpsUsed = eps
			s.finalize(eq)
			return eq
		}
		lO, lP = levels(eq.InPremium)
		if s.seen.add(eq.InPremium) {
			s.cycles++
			eps *= 8 // interleaved cycle: widen the indifference band
			s.seen.reset()
			s.seen.add(eq.InPremium)
		}
	}
	eq.Converged = false
	eq.EpsUsed = eps
	s.finalize(eq)
	return eq
}

// Trivial computes the degenerate strategy profiles of the paper without
// iteration: for κ = 0 it is (N, ∅); for κ = 1 it is ({i : v_i ≤ c}, rest)
// (§III-C). For interior κ it falls back to Competitive.
func (s *Solver) Trivial(strategy Strategy, nu float64, pop traffic.Population) *ClassEquilibrium {
	switch {
	case strategy.NoPremium():
		return s.Competitive(strategy, nu, pop)
	case strategy.AllPremium():
		eq := &ClassEquilibrium{
			Strategy:  strategy,
			Nu:        nu,
			Pop:       pop,
			InPremium: make([]bool, len(pop)),
			Theta:     make([]float64, len(pop)),
			Converged: true,
		}
		for i := range pop {
			eq.InPremium[i] = pop[i].V > strategy.C
		}
		s.finalize(eq)
		return eq
	default:
		return s.Competitive(strategy, nu, pop)
	}
}

// finalize computes the exact intra-class equilibria and the per-CP θ for
// the current partition. The intra-class solves run on the warm kernels;
// the results are cloned because ClassEquilibrium retains them past the
// solver's next use of the workspaces.
func (s *Solver) finalize(eq *ClassEquilibrium) {
	s.kernels()
	o, p := s.splitScratch(eq.Pop, eq.InPremium)
	eq.Ordinary = s.wsO.Solve((1-eq.Strategy.Kappa)*eq.Nu, o).Clone()
	eq.Premium = s.wsP.Solve(eq.Strategy.Kappa*eq.Nu, p).Clone()
	oi, pi := 0, 0
	for i := range eq.Pop {
		if eq.InPremium[i] {
			eq.Theta[i] = eq.Premium.Theta[pi]
			pi++
		} else {
			eq.Theta[i] = eq.Ordinary.Theta[oi]
			oi++
		}
	}
}

// split partitions pop by membership flags, preserving order, into freshly
// allocated slices. Hot paths use Solver.splitScratch; this stays for the
// cold callers (the Nash enumerator) that hold both halves across nested
// solves.
func split(pop traffic.Population, premium []bool) (ordinary, prem traffic.Population) {
	for i := range pop {
		if premium[i] {
			prem = append(prem, pop[i])
		} else {
			ordinary = append(ordinary, pop[i])
		}
	}
	return ordinary, prem
}

// partitionSet tracks the class partitions the dynamics have visited, for
// cycle detection. Membership bits are packed into a reused buffer and
// hashed with 64-bit FNV-1a; the packed key is stored per hash bucket and
// compared on lookup, so a hash collision can never report a phantom cycle
// (a false positive would spuriously shrink the phase-1 mover cap or widen
// the indifference band). Revisit checks allocate nothing; only the first
// visit of a partition stores a copy of its packed key.
type partitionSet struct {
	m   map[uint64][][]byte
	buf []byte
}

// reset empties the set.
func (ps *partitionSet) reset() {
	if ps.m == nil || len(ps.m) > 0 {
		ps.m = make(map[uint64][][]byte, 64)
	}
}

// add records the partition and reports whether it was already present.
func (ps *partitionSet) add(premium []bool) bool {
	n := (len(premium) + 7) / 8
	if cap(ps.buf) < n {
		ps.buf = make([]byte, n)
	}
	b := ps.buf[:n]
	for i := range b {
		b[i] = 0
	}
	for i, p := range premium {
		if p {
			b[i/8] |= 1 << (i % 8)
		}
	}
	const offset64, prime64 = uint64(14695981039346656037), uint64(1099511628211)
	h := offset64
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	for _, k := range ps.m[h] {
		if bytes.Equal(k, b) {
			return true
		}
	}
	ps.m[h] = append(ps.m[h], append([]byte(nil), b...))
	return false
}

// VerifyCompetitive counts the CPs whose class choice violates the
// ε-equilibrium condition (Definition 3 under the rational-expectations
// estimator, equivalently Definition 2): a violation is a CP that would gain
// strictly more than eps times its utility scale by switching classes, where
// the target class is evaluated at its exact post-join level. eps <= 0 uses
// the equilibrium's own EpsUsed. A converged equilibrium has zero violations
// at its EpsUsed by construction.
func (s *Solver) VerifyCompetitive(eq *ClassEquilibrium, eps float64) int {
	if eq.Strategy.NoPremium() {
		return 0 // single class: nothing to choose
	}
	if eps <= 0 {
		eps = eq.EpsUsed
	}
	capO := (1 - eq.Strategy.Kappa) * eq.Nu
	capP := eq.Strategy.Kappa * eq.Nu
	o, p := s.splitScratch(eq.Pop, eq.InPremium)
	violations := 0
	for i := range eq.Pop {
		cp := &eq.Pop[i]
		var uCur, uTarget float64
		if eq.InPremium[i] {
			uCur = (cp.V - eq.Strategy.C) * cp.Alpha * cp.Rho(eq.Theta[i])
			uTarget = cp.V * cp.Alpha * cp.Rho(s.postJoinTheta(cp, capO, o))
		} else {
			uCur = cp.V * cp.Alpha * cp.Rho(eq.Theta[i])
			uTarget = (cp.V - eq.Strategy.C) * cp.Alpha * cp.Rho(s.postJoinTheta(cp, capP, p))
		}
		if uTarget-uCur > eps*utilityScale(cp, eq.Strategy.C) {
			violations++
		}
	}
	return violations
}
