package core

import (
	"testing"

	"github.com/netecon-sim/publicoption/internal/numeric"
)

func TestNashSequentialConverges(t *testing.T) {
	pop := ensemble(31, 12)
	sat := pop.TotalUnconstrainedPerCapita()
	s := NewSolver(nil)
	for _, strat := range []Strategy{
		{Kappa: 0.5, C: 0.3},
		{Kappa: 0.8, C: 0.1},
		{Kappa: 1, C: 0.5},
	} {
		eq := s.Nash(strat, 0.4*sat, pop, 0)
		if !eq.Converged {
			t.Errorf("strategy %v: best-response dynamics did not converge", strat)
			continue
		}
		if !s.IsNash(eq, 1e-9) {
			t.Errorf("strategy %v: converged state is not a Nash equilibrium", strat)
		}
	}
}

func TestNashKappaZeroTrivial(t *testing.T) {
	pop := ensemble(32, 8)
	s := NewSolver(nil)
	eq := s.Nash(Strategy{Kappa: 0, C: 0.5}, 1, pop, 0)
	if eq.PremiumCount() != 0 || !eq.Converged {
		t.Fatal("κ=0 Nash should be the trivial all-ordinary profile")
	}
	if !s.IsNash(eq, 0) {
		t.Fatal("trivial profile must verify as Nash")
	}
}

func TestAllNashContainsSequentialResult(t *testing.T) {
	pop := ensemble(33, 9)
	sat := pop.TotalUnconstrainedPerCapita()
	s := NewSolver(nil)
	strat := Strategy{Kappa: 0.6, C: 0.25}
	nu := 0.3 * sat

	all := s.AllNash(strat, nu, pop)
	if len(all) == 0 {
		t.Fatal("no Nash equilibrium found by enumeration")
	}
	seq := s.Nash(strat, nu, pop, 0)
	if !seq.Converged {
		t.Fatal("sequential dynamics did not converge")
	}
	found := false
	for _, eq := range all {
		same := true
		for i := range pop {
			if eq.InPremium[i] != seq.InPremium[i] {
				same = false
				break
			}
		}
		if same {
			found = true
			break
		}
	}
	if !found {
		t.Error("sequential Nash result not among enumerated equilibria")
	}
}

func TestCompetitiveAgreesWithNashOnSmallGames(t *testing.T) {
	// With the rational-expectations estimator, the competitive conditions
	// coincide with the Nash conditions, so the competitive solver's
	// fixed point must verify as a Nash equilibrium.
	s := NewSolver(nil)
	rng := numeric.NewRNG(99)
	for trial := 0; trial < 10; trial++ {
		pop := ensemble(rng.Uint64(), 6+rng.Intn(6))
		sat := pop.TotalUnconstrainedPerCapita()
		strat := Strategy{Kappa: rng.Uniform(0.2, 1), C: rng.Uniform(0, 0.8)}
		nu := rng.Uniform(0.1, 1.2) * sat
		eq := s.Competitive(strat, nu, pop)
		if !eq.Converged {
			t.Errorf("trial %d: competitive did not converge", trial)
			continue
		}
		if v := s.VerifyCompetitive(eq, 1e-9); v != 0 {
			t.Errorf("trial %d (s=%v, ν=%.3g): %d equilibrium violations", trial, strat, nu, v)
		}
	}
}

func TestAllNashPanicsOnLargePopulation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := NewSolver(nil)
	s.AllNash(Strategy{Kappa: 1, C: 0.5}, 1, ensemble(35, 21))
}

func TestNashUtilityTieBreak(t *testing.T) {
	// A CP with v = c gets zero premium utility: it must end up ordinary
	// under the tie-break (zero ordinary utility with zero capacity is not
	// *worse*).
	pop := ensemble(36, 10)
	pop[3].V = 0.4
	s := NewSolver(nil)
	eq := s.Nash(Strategy{Kappa: 1, C: 0.4}, 0.3*pop.TotalUnconstrainedPerCapita(), pop, 0)
	if eq.InPremium[3] {
		t.Fatal("CP with v = c must not pay for the premium class")
	}
}
