package core

import (
	"math"
	"testing"

	"github.com/netecon-sim/publicoption/internal/numeric"
)

func TestDuopolySymmetricSplit(t *testing.T) {
	// Two identical neutral ISPs must split the market evenly (below
	// saturation, where Φ is strictly increasing and the split unique).
	pop := ensemble(51, 80)
	sat := pop.TotalUnconstrainedPerCapita()
	mk := NewMarket(nil, pop, 0.5*sat)
	out := mk.SolveDuopoly(
		ISP{Name: "a", Gamma: 0.5, Strategy: PublicOption},
		ISP{Name: "b", Gamma: 0.5, Strategy: PublicOption},
	)
	if math.Abs(out.Shares[0]-0.5) > 1e-6 {
		t.Fatalf("symmetric duopoly shares = %v", out.Shares)
	}
	// Equal surpluses at the equilibrium.
	if math.Abs(out.Eqs[0].Phi()-out.Eqs[1].Phi()) > 1e-6*math.Max(out.Phi, 1) {
		t.Fatalf("Φ not equalized: %v vs %v", out.Eqs[0].Phi(), out.Eqs[1].Phi())
	}
}

func TestDuopolyShareTracksCapacity(t *testing.T) {
	// With identical strategies, market share is proportional to capacity
	// (the duopoly instance of Lemma 4).
	pop := ensemble(52, 80)
	sat := pop.TotalUnconstrainedPerCapita()
	mk := NewMarket(nil, pop, 0.4*sat)
	out := mk.SolveDuopoly(
		ISP{Name: "big", Gamma: 0.7, Strategy: PublicOption},
		ISP{Name: "small", Gamma: 0.3, Strategy: PublicOption},
	)
	if math.Abs(out.Shares[0]-0.7) > 1e-6 || math.Abs(out.Shares[1]-0.3) > 1e-6 {
		t.Fatalf("shares = %v, want capacity proportions (0.7, 0.3)", out.Shares)
	}
}

func TestDuopolyUnaffordablePriceLosesMarket(t *testing.T) {
	// The paper's c_I = 1 corner (Figure 7): with κ_I = 1 and a price no CP
	// can pay, ISP I's surplus is 0 and all consumers move to the Public
	// Option.
	pop := ensemble(53, 80)
	sat := pop.TotalUnconstrainedPerCapita()
	mk := NewMarket(nil, pop, 0.5*sat)
	out := mk.SolveDuopoly(
		ISP{Name: "greedy", Gamma: 0.5, Strategy: Strategy{Kappa: 1, C: 1.01}},
		ISP{Name: "public", Gamma: 0.5, Strategy: PublicOption},
	)
	if out.Shares[0] != 0 || out.Shares[1] != 1 {
		t.Fatalf("shares = %v, want (0, 1)", out.Shares)
	}
	if out.Phi <= 0 {
		t.Fatal("public option must still deliver positive surplus")
	}
}

func TestDuopolyAgainstPublicOptionModeratePrice(t *testing.T) {
	// A moderately priced differentiated ISP coexists with the Public
	// Option; its share stays close to one half (paper: "slightly over 50%"
	// under scarcity, at most ~50% when abundant).
	pop := ensemble(54, 100)
	sat := pop.TotalUnconstrainedPerCapita()
	mk := NewMarket(nil, pop, 0.3*sat)
	out := mk.SolveDuopoly(
		ISP{Name: "strategic", Gamma: 0.5, Strategy: Strategy{Kappa: 1, C: 0.2}},
		ISP{Name: "public", Gamma: 0.5, Strategy: PublicOption},
	)
	m := out.Shares[0]
	if m < 0.2 || m > 0.8 {
		t.Fatalf("strategic ISP share = %v, expected interior equilibrium", m)
	}
	// Surpluses equalized (both ISPs active).
	phiA, phiB := out.Eqs[0].Phi(), out.Eqs[1].Phi()
	if math.Abs(phiA-phiB) > 1e-4*math.Max(phiA, 1) {
		t.Fatalf("Φ not equalized: %v vs %v", phiA, phiB)
	}
}

func TestTheorem5PublicOptionAlignsIncentives(t *testing.T) {
	// Against a Public Option, the strategy maximizing ISP I's market share
	// also (near-)maximizes consumer surplus: argmax_m and argmax_Φ agree
	// up to the class-game discontinuity ε.
	pop := ensemble(55, 80)
	sat := pop.TotalUnconstrainedPerCapita()
	mk := NewMarket(nil, pop, 0.35*sat)
	public := ISP{Name: "public", Gamma: 0.5, Strategy: PublicOption}
	grid := StrategyGrid{
		Kappas: []float64{0, 0.5, 1},
		Cs:     numeric.Linspace(0, 1, 11),
	}
	var bestM, phiAtBestM float64
	bestM = math.Inf(-1)
	var bestPhi float64
	for _, s := range grid.Strategies() {
		out := mk.SolveDuopoly(ISP{Name: "i", Gamma: 0.5, Strategy: s}, public)
		if out.Shares[0] > bestM {
			bestM, phiAtBestM = out.Shares[0], out.Phi
		}
		if out.Phi > bestPhi {
			bestPhi = out.Phi
		}
	}
	// Theorem 5: Φ at the market-share maximizer equals the maximum Φ (up
	// to the numerical ε of the class game and grid resolution).
	if phiAtBestM < bestPhi*(1-0.02) {
		t.Errorf("Φ at share-maximizing strategy = %v, max Φ = %v: misaligned beyond ε", phiAtBestM, bestPhi)
	}
}

func TestSolveMarketMatchesDuopoly(t *testing.T) {
	pop := ensemble(56, 60)
	sat := pop.TotalUnconstrainedPerCapita()
	mk := NewMarket(nil, pop, 0.4*sat)
	a := ISP{Name: "a", Gamma: 0.6, Strategy: Strategy{Kappa: 1, C: 0.3}}
	b := ISP{Name: "b", Gamma: 0.4, Strategy: PublicOption}
	duo := mk.SolveDuopoly(a, b)
	gen := mk.SolveMarket([]ISP{a, b})
	if math.Abs(duo.Shares[0]-gen.Shares[0]) > 0.02 {
		t.Fatalf("duopoly %v vs general market %v shares differ", duo.Shares, gen.Shares)
	}
	if math.Abs(duo.Phi-gen.Phi) > 0.02*math.Max(duo.Phi, 1) {
		t.Fatalf("Φ levels differ: %v vs %v", duo.Phi, gen.Phi)
	}
}

func TestLemma4HomogeneousStrategiesProportionalShares(t *testing.T) {
	pop := ensemble(57, 60)
	sat := pop.TotalUnconstrainedPerCapita()
	mk := NewMarket(nil, pop, 0.4*sat)
	s := Strategy{Kappa: 0.5, C: 0.3}
	isps := []ISP{
		{Name: "x", Gamma: 0.5, Strategy: s},
		{Name: "y", Gamma: 0.3, Strategy: s},
		{Name: "z", Gamma: 0.2, Strategy: s},
	}
	out := mk.SolveMarket(isps)
	for k, isp := range isps {
		if math.Abs(out.Shares[k]-isp.Gamma) > 0.02 {
			t.Errorf("ISP %s share %v, want γ=%v (Lemma 4)", isp.Name, out.Shares[k], isp.Gamma)
		}
	}
}

func TestSolveMarketSingleISP(t *testing.T) {
	pop := ensemble(58, 40)
	mk := NewMarket(nil, pop, 5)
	out := mk.SolveMarket([]ISP{{Name: "only", Gamma: 1, Strategy: PublicOption}})
	if out.Shares[0] != 1 {
		t.Fatalf("single ISP share = %v", out.Shares[0])
	}
}

func TestMarketPanics(t *testing.T) {
	pop := ensemble(59, 10)
	mk := NewMarket(nil, pop, 5)
	cases := []struct {
		name string
		f    func()
	}{
		{"duplicate-names", func() {
			mk.SolveDuopoly(ISP{Name: "a", Gamma: 0.5, Strategy: PublicOption}, ISP{Name: "a", Gamma: 0.5, Strategy: PublicOption})
		}},
		{"bad-gamma-sum", func() {
			mk.SolveDuopoly(ISP{Name: "a", Gamma: 0.5, Strategy: PublicOption}, ISP{Name: "b", Gamma: 0.6, Strategy: PublicOption})
		}},
		{"empty-market", func() { mk.SolveMarket(nil) }},
		{"invalid-strategy", func() {
			mk.SolveDuopoly(ISP{Name: "a", Gamma: 0.5, Strategy: Strategy{Kappa: 2}}, ISP{Name: "b", Gamma: 0.5, Strategy: PublicOption})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.f()
		})
	}
}

func TestMarketOutcomeAccessors(t *testing.T) {
	pop := ensemble(60, 30)
	mk := NewMarket(nil, pop, 3)
	out := mk.SolveDuopoly(
		ISP{Name: "a", Gamma: 0.5, Strategy: PublicOption},
		ISP{Name: "b", Gamma: 0.5, Strategy: PublicOption},
	)
	if math.IsNaN(out.Share("a")) || out.Eq("a") == nil {
		t.Fatal("named accessors broken")
	}
	if !math.IsNaN(out.Share("zzz")) || out.Eq("zzz") != nil {
		t.Fatal("missing names should return NaN/nil")
	}
	if out.String() == "" {
		t.Fatal("String() empty")
	}
}
