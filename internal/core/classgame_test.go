package core

import (
	"math"
	"testing"

	"github.com/netecon-sim/publicoption/internal/alloc"
	"github.com/netecon-sim/publicoption/internal/econ"
	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

func ensemble(seed uint64, n int) traffic.Population {
	cfg := traffic.PaperEnsemble(traffic.PhiCorrelated)
	cfg.N = n
	return cfg.Generate(numeric.NewRNG(seed))
}

func TestCompetitiveKappaZeroIsNeutral(t *testing.T) {
	pop := ensemble(1, 80)
	nu := 0.5 * pop.TotalUnconstrainedPerCapita()
	s := NewSolver(nil)
	eq := s.Competitive(Strategy{Kappa: 0, C: 0.5}, nu, pop)
	if !eq.Converged {
		t.Fatal("κ=0 must converge trivially")
	}
	if eq.PremiumCount() != 0 {
		t.Fatalf("κ=0 put %d CPs in premium", eq.PremiumCount())
	}
	// Surplus must equal the single-class surplus of the whole population.
	if got, want := eq.Phi(), econ.PhiAt(alloc.MaxMin{}, nu, pop); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("Φ = %v, want neutral %v", got, want)
	}
	if eq.Psi() != 0 {
		t.Fatal("κ=0 must give zero ISP revenue")
	}
}

func TestCompetitiveKappaOneAffordabilityPartition(t *testing.T) {
	pop := ensemble(2, 80)
	nu := 0.3 * pop.TotalUnconstrainedPerCapita()
	s := NewSolver(nil)
	c := 0.4
	eq := s.Competitive(Strategy{Kappa: 1, C: c}, nu, pop)
	if !eq.Converged {
		t.Fatal("κ=1 did not converge")
	}
	for i := range pop {
		if eq.InPremium[i] != (pop[i].V > c) {
			t.Fatalf("CP %d (v=%v): premium=%t, want affordability v>c", i, pop[i].V, eq.InPremium[i])
		}
		if !eq.InPremium[i] && eq.Theta[i] != 0 {
			t.Fatalf("ordinary CP %d has θ=%v with zero ordinary capacity", i, eq.Theta[i])
		}
	}
}

func TestCompetitiveRevenueRegimes(t *testing.T) {
	pop := ensemble(3, 100)
	sat := pop.TotalUnconstrainedPerCapita()
	nu := 0.2 * sat // scarce: premium congested at low prices
	s := NewSolver(nil)

	// Regime 1: small c, capacity fully used → Ψ = c·ν (Figure 4's linear
	// segment).
	eqLow := s.Competitive(Strategy{Kappa: 1, C: 0.05}, nu, pop)
	if got, want := eqLow.Psi(), 0.05*nu; math.Abs(got-want) > 1e-6*want {
		t.Errorf("low-price Ψ = %v, want c·ν = %v", got, want)
	}
	// Regime 2: c above every v → empty premium, zero revenue.
	eqHigh := s.Competitive(Strategy{Kappa: 1, C: 1.5}, nu, pop)
	if eqHigh.PremiumCount() != 0 || eqHigh.Psi() != 0 {
		t.Errorf("unaffordable price kept %d CPs, Ψ=%v", eqHigh.PremiumCount(), eqHigh.Psi())
	}
}

func TestCompetitiveInteriorKappaConverges(t *testing.T) {
	pop := ensemble(4, 120)
	sat := pop.TotalUnconstrainedPerCapita()
	s := NewSolver(nil)
	for _, kappa := range []float64{0.2, 0.5, 0.9} {
		for _, c := range []float64{0.1, 0.45, 0.8} {
			for _, frac := range []float64{0.1, 0.4, 0.9, 1.5} {
				eq := s.Competitive(Strategy{Kappa: kappa, C: c}, frac*sat, pop)
				if !eq.Converged {
					t.Errorf("(κ=%v,c=%v,ν=%v·sat): not converged after %d iters, %d violations",
						kappa, c, frac, eq.Iterations, s.VerifyCompetitive(eq, 0))
					continue
				}
				if v := s.VerifyCompetitive(eq, 0); v != 0 {
					t.Errorf("(κ=%v,c=%v,ν=%v·sat): converged but %d violations at ε=%v", kappa, c, frac, v, eq.EpsUsed)
				}
				// The band should stay modest: CPs are near-optimal.
				if eq.EpsUsed > 1e-3 {
					t.Errorf("(κ=%v,c=%v,ν=%v·sat): indifference band widened to %v", kappa, c, frac, eq.EpsUsed)
				}
			}
		}
	}
}

func TestCompetitiveWarmStartConsistency(t *testing.T) {
	pop := ensemble(5, 90)
	nu := 0.35 * pop.TotalUnconstrainedPerCapita()
	s := NewSolver(nil)
	strat := Strategy{Kappa: 0.6, C: 0.3}
	cold := s.Competitive(strat, nu, pop)
	warm := s.CompetitiveFrom(strat, nu, pop, cold.InPremium)
	if warm.Iterations > 1 {
		t.Errorf("warm start from the equilibrium should converge immediately, took %d", warm.Iterations)
	}
	for i := range pop {
		if cold.InPremium[i] != warm.InPremium[i] {
			t.Fatalf("warm start changed the equilibrium at CP %d", i)
		}
	}
}

func TestCompetitiveEmptyPopulation(t *testing.T) {
	s := NewSolver(nil)
	eq := s.Competitive(Strategy{Kappa: 0.5, C: 0.5}, 10, nil)
	if !eq.Converged || eq.Phi() != 0 || eq.Psi() != 0 {
		t.Fatal("empty population should give a trivial zero equilibrium")
	}
}

func TestCompetitivePanicsOnBadInput(t *testing.T) {
	s := NewSolver(nil)
	for _, tc := range []struct {
		name  string
		strat Strategy
		nu    float64
	}{
		{"bad-kappa", Strategy{Kappa: 1.2, C: 0}, 1},
		{"bad-c", Strategy{Kappa: 0.5, C: -1}, 1},
		{"bad-nu", Strategy{Kappa: 0.5, C: 0.5}, -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			s.Competitive(tc.strat, tc.nu, ensemble(6, 5))
		})
	}
}

func TestFreePremiumClassAttractsCPs(t *testing.T) {
	// With c = 0 and κ = 0.5, the premium class is just extra capacity:
	// CPs spread out so that both classes carry traffic.
	pop := ensemble(7, 80)
	nu := 0.3 * pop.TotalUnconstrainedPerCapita()
	s := NewSolver(nil)
	eq := s.Competitive(Strategy{Kappa: 0.5, C: 0}, nu, pop)
	if eq.PremiumCount() == 0 || eq.PremiumCount() == len(pop) {
		t.Fatalf("free premium class should split the CPs, got %d/%d", eq.PremiumCount(), len(pop))
	}
	if eq.Psi() != 0 {
		t.Fatal("free premium class must earn nothing")
	}
	// Total carried traffic must still fill the link.
	if u := eq.Utilization(); math.Abs(u-1) > 1e-6 {
		t.Fatalf("utilization = %v, want 1 (work conservation across classes)", u)
	}
}

func TestTheorem3ScaleInvariance(t *testing.T) {
	// The equilibrium depends on (M, µ) only through ν: solving the scaled
	// system must reproduce the partition and surpluses (Theorem 3 +
	// Lemma 3). The per-capita API enforces this structurally; this test
	// pins the wrapper arithmetic.
	pop := ensemble(8, 60)
	nuI := 0.4 * pop.TotalUnconstrainedPerCapita()
	s := NewSolver(nil)
	strat := Strategy{Kappa: 0.7, C: 0.25}
	base := s.Competitive(strat, nuI, pop)
	for _, xi := range []float64{0.5, 2, 100} {
		m := 1000.0 * xi
		mu := nuI * 1000.0 * xi
		scaled := s.Competitive(strat, mu/m, pop)
		for i := range pop {
			if base.InPremium[i] != scaled.InPremium[i] {
				t.Fatalf("ξ=%v: partition differs at CP %d", xi, i)
			}
		}
		if math.Abs(base.Phi()-scaled.Phi()) > 1e-9*math.Max(base.Phi(), 1) {
			t.Fatalf("ξ=%v: Φ differs (%v vs %v)", xi, base.Phi(), scaled.Phi())
		}
		if math.Abs(base.Psi()-scaled.Psi()) > 1e-9*math.Max(base.Psi(), 1) {
			t.Fatalf("ξ=%v: Ψ differs", xi)
		}
	}
}

func TestClassEquilibriumAccessors(t *testing.T) {
	pop := ensemble(9, 40)
	nu := 0.3 * pop.TotalUnconstrainedPerCapita()
	s := NewSolver(nil)
	eq := s.Competitive(Strategy{Kappa: 0.5, C: 0.2}, nu, pop)
	// CPUtility must be consistent with class membership and θ.
	for i := range pop {
		price := 0.0
		if eq.InPremium[i] {
			price = 0.2
		}
		want := (pop[i].V - price) * pop[i].PerCapitaRate(eq.Theta[i])
		if got := eq.CPUtility(i); math.Abs(got-want) > 1e-12 {
			t.Fatalf("CPUtility(%d) = %v, want %v", i, got, want)
		}
	}
	if got := eq.PremiumRate(); got < 0 || got > nu+1e-9 {
		t.Fatalf("premium rate %v outside [0, ν]", got)
	}
	if str := eq.String(); str == "" {
		t.Fatal("String() empty")
	}
}

func TestTrivialMatchesCompetitiveAtExtremes(t *testing.T) {
	pop := ensemble(10, 70)
	nu := 0.4 * pop.TotalUnconstrainedPerCapita()
	s := NewSolver(nil)
	for _, strat := range []Strategy{{Kappa: 0, C: 0.3}, {Kappa: 1, C: 0.3}} {
		a := s.Trivial(strat, nu, pop)
		b := s.Competitive(strat, nu, pop)
		for i := range pop {
			if a.InPremium[i] != b.InPremium[i] {
				t.Fatalf("strategy %v: trivial and competitive disagree at CP %d", strat, i)
			}
		}
		if math.Abs(a.Psi()-b.Psi()) > 1e-9*math.Max(a.Psi(), 1) {
			t.Fatalf("strategy %v: Ψ differs", strat)
		}
	}
}
