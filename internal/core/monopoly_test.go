package core

import (
	"math"
	"testing"

	"github.com/netecon-sim/publicoption/internal/numeric"
)

func TestTheorem4KappaOneDominates(t *testing.T) {
	pop := ensemble(41, 100)
	sat := pop.TotalUnconstrainedPerCapita()
	m := NewMonopoly(nil)
	kappas := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	prices := []float64{0.1, 0.3, 0.5, 0.7}
	for _, frac := range []float64{0.15, 0.5, 1.1} {
		worst := m.CheckTheorem4(kappas, prices, frac*sat, pop)
		// Allow solver tolerance: a violation must exceed a sliver of the
		// revenue scale to count.
		if worst > 1e-6*sat {
			t.Errorf("ν=%.3g·sat: Theorem 4 violated by %v (κ<1 beat κ=1)", frac, worst)
		}
	}
}

func TestOptimalStrategyPicksFullPremium(t *testing.T) {
	// Theorem 4: an optimal strategy exists at κ = 1. The optimizer may
	// return any revenue-equivalent strategy, so compare revenues, not κ.
	pop := ensemble(42, 100)
	sat := pop.TotalUnconstrainedPerCapita()
	m := NewMonopoly(nil)
	nu := 0.3 * sat
	sBest, eqBest := m.OptimalStrategy(1, nu, pop, 5, 20)
	_, eqK1 := m.OptimalPrice(1, 1, nu, pop, 60)
	if eqBest.Psi() < eqK1.Psi()*(1-1e-6) {
		t.Errorf("full search found Ψ=%v < κ=1 search Ψ=%v (s=%v)", eqBest.Psi(), eqK1.Psi(), sBest)
	}
}

func TestRevenueCurveRegimes(t *testing.T) {
	// The three pricing regimes of Figure 4 under κ=1.
	pop := ensemble(43, 150)
	sat := pop.TotalUnconstrainedPerCapita()
	m := NewMonopoly(nil)
	nu := 0.2 * sat // scarce capacity
	grid := numeric.Linspace(0, 1, 51)
	psi, phi := m.RevenueCurve(1, grid, nu, pop)

	// Regime 1: Ψ = c·ν on the low-price linear segment.
	for i, c := range grid[:5] {
		if math.Abs(psi[i]-c*nu) > 1e-6*math.Max(c*nu, 1) {
			t.Errorf("Ψ(%g) = %v, want c·ν = %v (linear regime)", c, psi[i], c*nu)
		}
	}
	// Regime 2: at c = 1 no CP can afford the class (v < 1 a.s.).
	if last := psi[len(psi)-1]; last > 1e-9 {
		t.Errorf("Ψ(1) = %v, want 0", last)
	}
	// Φ collapses alongside: consumer surplus at c=1 is 0 under κ=1.
	if last := phi[len(phi)-1]; last > 1e-9 {
		t.Errorf("Φ(1) = %v, want 0", last)
	}
	// Revenue has an interior maximum (rises from 0, returns to 0).
	peak := numeric.ArgMax(psi)
	if peak == 0 || peak == len(psi)-1 {
		t.Errorf("revenue peak at boundary index %d", peak)
	}
}

func TestMonopolyMisalignmentWhenAbundant(t *testing.T) {
	// §III-E regime 3: with abundant capacity, the revenue-optimal price
	// hurts consumer surplus relative to cheap access.
	pop := ensemble(44, 150)
	sat := pop.TotalUnconstrainedPerCapita()
	m := NewMonopoly(nil)
	nu := 0.8 * sat
	cBest, eqBest := m.OptimalPrice(1, 1, nu, pop, 80)
	m.ResetWarm()
	eqCheap := m.Outcome(Strategy{Kappa: 1, C: 0.02}, nu, pop)
	if cBest < 0.1 {
		t.Skipf("optimal price %v too low to exhibit misalignment on this draw", cBest)
	}
	if eqBest.Phi() >= eqCheap.Phi() {
		t.Errorf("abundant capacity: Φ at optimal price (%v) should fall below Φ at near-free access (%v)",
			eqBest.Phi(), eqCheap.Phi())
	}
}

func TestCapacityCurveRegimes(t *testing.T) {
	// Figure 5's shape for a fixed (κ, c): Ψ rises (premium congested),
	// peaks, then falls as CPs defect to the ordinary class; Φ keeps
	// growing with capacity overall.
	pop := ensemble(45, 120)
	sat := pop.TotalUnconstrainedPerCapita()
	m := NewMonopoly(nil)
	grid := numeric.Linspace(0.02*sat, 2*sat, 40)
	psi, phi := m.CapacityCurve(Strategy{Kappa: 0.5, C: 0.5}, grid, pop)

	peak := numeric.ArgMax(psi)
	if peak == 0 {
		t.Error("Ψ should rise initially with ν")
	}
	if last := psi[len(psi)-1]; last > psi[peak]*0.8 {
		t.Errorf("Ψ should decay well below its peak at abundant ν: %v vs peak %v", last, psi[peak])
	}
	// Φ ends near its saturation value.
	finalPhi := phi[len(phi)-1]
	wantPhi := 0.0
	for i := range pop {
		wantPhi += pop[i].Phi * pop[i].UnconstrainedPerCapitaRate()
	}
	if math.Abs(finalPhi-wantPhi) > 1e-6*wantPhi {
		t.Errorf("Φ at 2·sat = %v, want saturation %v", finalPhi, wantPhi)
	}
	// Φ broadly increases: its largest downward gap is small relative to
	// its range (the ε_s of Eq. 9 — "when |N| is large, ε is quite small").
	if gap := numeric.MaxDownwardGap(phi); gap > 0.15*wantPhi {
		t.Errorf("Φ(ν) has an implausibly large drop: %v of range %v", gap, wantPhi)
	}
}

func TestHigherKappaHigherRevenue(t *testing.T) {
	// Theorem 4's second claim, on the κ ladder at fixed c (checked in the
	// aggregate: revenue at κ' > κ should not be smaller beyond tolerance
	// when the premium set only grows — we check the monotone trend).
	pop := ensemble(46, 100)
	sat := pop.TotalUnconstrainedPerCapita()
	m := NewMonopoly(nil)
	nu := 0.25 * sat
	prev := -1.0
	for _, kappa := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		m.ResetWarm()
		psi := m.Outcome(Strategy{Kappa: kappa, C: 0.3}, nu, pop).Psi()
		if psi < prev-1e-6*sat {
			t.Errorf("revenue fell from %v to %v when κ rose to %v", prev, psi, kappa)
		}
		prev = psi
	}
}

func TestOptimalPriceWarmReset(t *testing.T) {
	// OptimalPrice must not leak warm-start state between calls: two
	// identical calls return identical answers.
	pop := ensemble(47, 80)
	nu := 0.3 * pop.TotalUnconstrainedPerCapita()
	m := NewMonopoly(nil)
	c1, eq1 := m.OptimalPrice(1, 1, nu, pop, 40)
	c2, eq2 := m.OptimalPrice(1, 1, nu, pop, 40)
	if c1 != c2 || eq1.Psi() != eq2.Psi() {
		t.Fatalf("OptimalPrice not deterministic: (%v,%v) vs (%v,%v)", c1, eq1.Psi(), c2, eq2.Psi())
	}
}
