// Package traffic defines the content-provider (CP) side of the Ma–Misra
// three-party ecosystem model (§II): CP parameter records, the paper's named
// archetypes (Google-, Netflix- and Skype-type providers from §II-D), and
// the random CP ensembles used by every numerical experiment (§III-E).
//
// All throughputs are per-user and unit-agnostic; the experiments follow the
// paper and use either a [0,1] scale (random ensembles) or Kbps (the
// three-archetype example of Figure 3). Because the model is scale invariant
// (Axiom 4), only ratios matter.
package traffic

import (
	"fmt"
	"math"

	"github.com/netecon-sim/publicoption/internal/demand"
)

// CP describes one content provider.
//
// The five scalar parameters are exactly the paper's: popularity α_i (the
// fraction of consumers who ever access this CP), unconstrained per-user
// throughput θ̂_i, per-unit-traffic revenue v_i (what the CP earns per unit
// of delivered traffic, from ads, sales or subscriptions), per-unit-traffic
// consumer utility φ_i, and a demand curve (normalized; the paper's Eq. 3
// family carries the sensitivity β_i).
type CP struct {
	Name     string       // display label, e.g. "netflix" or "cp-017"
	Alpha    float64      // popularity α ∈ (0, 1]
	ThetaHat float64      // unconstrained per-user throughput θ̂ > 0
	V        float64      // per-unit-traffic revenue v ≥ 0
	Phi      float64      // per-unit-traffic consumer utility φ ≥ 0
	Curve    demand.Curve // normalized demand curve d(ω)
}

// Validate reports the first model-consistency violation, or nil.
func (c *CP) Validate() error {
	switch {
	case !(c.Alpha > 0 && c.Alpha <= 1):
		return fmt.Errorf("traffic: CP %q has α=%g outside (0,1]", c.Name, c.Alpha)
	case !(c.ThetaHat > 0) || math.IsInf(c.ThetaHat, 0):
		return fmt.Errorf("traffic: CP %q has θ̂=%g, want positive finite", c.Name, c.ThetaHat)
	case c.V < 0 || math.IsNaN(c.V):
		return fmt.Errorf("traffic: CP %q has v=%g, want >= 0", c.Name, c.V)
	case c.Phi < 0 || math.IsNaN(c.Phi):
		return fmt.Errorf("traffic: CP %q has φ=%g, want >= 0", c.Name, c.Phi)
	case c.Curve == nil:
		return fmt.Errorf("traffic: CP %q has no demand curve", c.Name)
	}
	return nil
}

// DemandAt returns d_i(θ), the fraction of this CP's users still active at
// per-user throughput theta.
func (c *CP) DemandAt(theta float64) float64 {
	return c.Curve.At(theta / c.ThetaHat)
}

// Rho returns ρ_i(θ) = d_i(θ)·θ, the per-capita throughput over the CP's own
// user base at achieved per-user throughput theta (Eq. 5 divided by α_i M).
func (c *CP) Rho(theta float64) float64 {
	if theta <= 0 {
		return 0
	}
	if theta > c.ThetaHat {
		theta = c.ThetaHat
	}
	return c.DemandAt(theta) * theta
}

// PerCapitaRate returns α_i·d_i(θ)·θ, CP i's contribution to the aggregate
// per-capita throughput (Eq. 1 divided by M).
func (c *CP) PerCapitaRate(theta float64) float64 {
	return c.Alpha * c.Rho(theta)
}

// UnconstrainedPerCapitaRate returns λ̂_i / M = α_i·θ̂_i, the per-capita
// throughput this CP would consume on an uncongested link.
func (c *CP) UnconstrainedPerCapitaRate() float64 {
	return c.Alpha * c.ThetaHat
}

// Beta returns the throughput sensitivity β when the CP uses the paper's
// exponential demand family, and ok=false otherwise.
func (c *CP) Beta() (beta float64, ok bool) {
	e, ok := c.Curve.(demand.Exponential)
	if !ok {
		return 0, false
	}
	return e.Beta, true
}

// Population is an ordered collection of content providers. Order is
// significant only for reproducibility of iteration; the model treats the
// set symmetrically.
type Population []CP

// Validate reports the first invalid CP, or nil.
func (p Population) Validate() error {
	for i := range p {
		if err := p[i].Validate(); err != nil {
			return fmt.Errorf("index %d: %w", i, err)
		}
	}
	return nil
}

// TotalUnconstrainedPerCapita returns Σ_i α_i·θ̂_i, the per-capita capacity ν
// at which the link stops being a bottleneck (the saturation point of
// Theorem 2).
func (p Population) TotalUnconstrainedPerCapita() float64 {
	var sum float64
	for i := range p {
		sum += p[i].UnconstrainedPerCapitaRate()
	}
	return sum
}

// MaxThetaHat returns the largest unconstrained per-user throughput in the
// population, the upper end of any water-filling search. It returns 0 for an
// empty population.
func (p Population) MaxThetaHat() float64 {
	var m float64
	for i := range p {
		if p[i].ThetaHat > m {
			m = p[i].ThetaHat
		}
	}
	return m
}

// Subset returns the sub-population with the given indices (shared backing
// records; CPs are treated as immutable once created).
func (p Population) Subset(idx []int) Population {
	out := make(Population, 0, len(idx))
	for _, i := range idx {
		out = append(out, p[i])
	}
	return out
}

// Names returns the CP names in order.
func (p Population) Names() []string {
	out := make([]string, len(p))
	for i := range p {
		out[i] = p[i].Name
	}
	return out
}
