package traffic

import "github.com/netecon-sim/publicoption/internal/demand"

// The three archetype CPs of §II-D of the paper, used in Figure 3. The
// parameters (α_i, θ̂_i, β_i) are the paper's; θ̂ is expressed in Kbps using
// the paper's own calibration (§II-A: Netflix HD ≈ 5 Mbps unconstrained,
// Google search ≈ 600 Kbps — the figure's stylized values are 1 Mbps /
// 10 Mbps / 3 Mbps on a 0–6000 Kbps per-capita capacity axis).
//
// Revenue v and consumer utility φ are not used by Figure 3 (no pricing);
// the values chosen here follow the paper's qualitative discussion — search
// monetizes well per byte, video poorly — and give the archetypes sensible
// defaults for the pricing examples.

// Google returns a Google-type CP: universally accessed (α = 1), low
// unconstrained throughput, nearly insensitive to congestion (β = 0.1).
func Google() CP {
	return CP{
		Name:     "google",
		Alpha:    1.0,
		ThetaHat: 1000, // Kbps
		V:        0.9,
		Phi:      0.2,
		Curve:    demand.Exponential{Beta: 0.1},
	}
}

// Netflix returns a Netflix-type CP: moderately popular (α = 0.3), very high
// unconstrained throughput, throughput-sensitive (β = 3).
func Netflix() CP {
	return CP{
		Name:     "netflix",
		Alpha:    0.3,
		ThetaHat: 10000, // Kbps
		V:        0.3,
		Phi:      0.6,
		Curve:    demand.Exponential{Beta: 3},
	}
}

// Skype returns a Skype-type CP: half the population uses it (α = 0.5),
// medium unconstrained throughput, extremely throughput-sensitive (β = 5).
func Skype() CP {
	return CP{
		Name:     "skype",
		Alpha:    0.5,
		ThetaHat: 3000, // Kbps
		V:        0.2,
		Phi:      1.0,
		Curve:    demand.Exponential{Beta: 5},
	}
}

// Archetypes returns the Figure 3 population {Google, Netflix, Skype} in the
// paper's order (CP 1, CP 2, CP 3).
func Archetypes() Population {
	return Population{Google(), Netflix(), Skype()}
}
