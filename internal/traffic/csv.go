package traffic

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/netecon-sim/publicoption/internal/demand"
)

// csvHeader is the column layout used by WriteCSV/ReadCSV.
var csvHeader = []string{"name", "alpha", "theta_hat", "v", "phi", "beta"}

// WriteCSV serializes a population to CSV with one row per CP. Only
// populations whose demand curves are the paper's exponential family can be
// serialized, because β is the curve's full parameterization; other families
// produce an error.
func WriteCSV(w io.Writer, p Population) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("traffic: writing CSV header: %w", err)
	}
	for i := range p {
		beta, ok := p[i].Beta()
		if !ok {
			return fmt.Errorf("traffic: CP %q uses non-exponential demand %s; not CSV-serializable", p[i].Name, p[i].Curve.Name())
		}
		row := []string{
			p[i].Name,
			formatFloat(p[i].Alpha),
			formatFloat(p[i].ThetaHat),
			formatFloat(p[i].V),
			formatFloat(p[i].Phi),
			formatFloat(beta),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("traffic: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a population previously written by WriteCSV and validates
// every CP.
func ReadCSV(r io.Reader) (Population, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("traffic: reading CSV header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("traffic: CSV column %d is %q, want %q", i, header[i], want)
		}
	}
	var pop Population
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("traffic: reading CSV line %d: %w", line, err)
		}
		vals := make([]float64, 5)
		for i := 0; i < 5; i++ {
			v, err := strconv.ParseFloat(row[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("traffic: CSV line %d column %s: %w", line, csvHeader[i+1], err)
			}
			vals[i] = v
		}
		cp := CP{
			Name:     row[0],
			Alpha:    vals[0],
			ThetaHat: vals[1],
			V:        vals[2],
			Phi:      vals[3],
			Curve:    demand.Exponential{Beta: vals[4]},
		}
		if err := cp.Validate(); err != nil {
			return nil, fmt.Errorf("traffic: CSV line %d: %w", line, err)
		}
		pop = append(pop, cp)
	}
	return pop, nil
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', 17, 64)
}
