package traffic

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/netecon-sim/publicoption/internal/demand"
	"github.com/netecon-sim/publicoption/internal/numeric"
)

func TestCPValidate(t *testing.T) {
	good := Google()
	if err := good.Validate(); err != nil {
		t.Fatalf("archetype invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*CP)
	}{
		{"alpha-zero", func(c *CP) { c.Alpha = 0 }},
		{"alpha-above-1", func(c *CP) { c.Alpha = 1.1 }},
		{"thetahat-zero", func(c *CP) { c.ThetaHat = 0 }},
		{"thetahat-negative", func(c *CP) { c.ThetaHat = -1 }},
		{"v-negative", func(c *CP) { c.V = -0.1 }},
		{"phi-negative", func(c *CP) { c.Phi = -0.1 }},
		{"nil-curve", func(c *CP) { c.Curve = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cp := Google()
			tc.mutate(&cp)
			if err := cp.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestRhoProperties(t *testing.T) {
	cp := Netflix()
	if got := cp.Rho(0); got != 0 {
		t.Errorf("Rho(0) = %v, want 0", got)
	}
	// At full throughput, everyone stays: ρ = θ̂.
	if got := cp.Rho(cp.ThetaHat); math.Abs(got-cp.ThetaHat) > 1e-9 {
		t.Errorf("Rho(θ̂) = %v, want %v", got, cp.ThetaHat)
	}
	// Above θ̂ the rate clamps (Axiom 1).
	if got := cp.Rho(2 * cp.ThetaHat); math.Abs(got-cp.ThetaHat) > 1e-9 {
		t.Errorf("Rho(2θ̂) = %v, want %v", got, cp.ThetaHat)
	}
}

func TestPerCapitaRateScalesWithAlpha(t *testing.T) {
	cp := Skype()
	theta := 0.8 * cp.ThetaHat
	if got, want := cp.PerCapitaRate(theta), cp.Alpha*cp.Rho(theta); math.Abs(got-want) > 1e-12 {
		t.Errorf("PerCapitaRate = %v, want %v", got, want)
	}
}

func TestUnconstrainedPerCapitaRate(t *testing.T) {
	pop := Archetypes()
	// 1*1000 + 0.3*10000 + 0.5*3000 = 5500 Kbps, the paper's saturation
	// point for Figure 3 (its axis runs to 6000).
	if got := pop.TotalUnconstrainedPerCapita(); math.Abs(got-5500) > 1e-9 {
		t.Fatalf("total unconstrained per-capita = %v, want 5500", got)
	}
}

func TestArchetypeParametersMatchPaper(t *testing.T) {
	g, n, s := Google(), Netflix(), Skype()
	checks := []struct {
		name      string
		got, want float64
	}{
		{"google-alpha", g.Alpha, 1},
		{"netflix-alpha", n.Alpha, 0.3},
		{"skype-alpha", s.Alpha, 0.5},
		{"google-thetahat", g.ThetaHat, 1000},
		{"netflix-thetahat", n.ThetaHat, 10000},
		{"skype-thetahat", s.ThetaHat, 3000},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	betas := map[string]float64{"google": 0.1, "netflix": 3, "skype": 5}
	for _, cp := range Archetypes() {
		beta, ok := cp.Beta()
		if !ok {
			t.Fatalf("%s: non-exponential curve", cp.Name)
		}
		if beta != betas[cp.Name] {
			t.Errorf("%s β = %v, want %v", cp.Name, beta, betas[cp.Name])
		}
	}
}

func TestPaperEnsembleStatistics(t *testing.T) {
	pop := PaperPopulation(PhiCorrelated)
	if len(pop) != 1000 {
		t.Fatalf("population size %d, want 1000", len(pop))
	}
	if err := pop.Validate(); err != nil {
		t.Fatal(err)
	}
	// E[Σ α θ̂] = 1000 · 1/4 = 250 (§III-E); the realized draw should be
	// within a few percent.
	total := pop.TotalUnconstrainedPerCapita()
	if total < 225 || total > 275 {
		t.Errorf("total unconstrained per-capita = %v, want ≈ 250", total)
	}
	var alphaSum, vSum, betaSum float64
	for i := range pop {
		alphaSum += pop[i].Alpha
		vSum += pop[i].V
		beta, _ := pop[i].Beta()
		betaSum += beta
	}
	if m := alphaSum / 1000; m < 0.45 || m > 0.55 {
		t.Errorf("mean α = %v, want ≈ 0.5", m)
	}
	if m := vSum / 1000; m < 0.45 || m > 0.55 {
		t.Errorf("mean v = %v, want ≈ 0.5", m)
	}
	if m := betaSum / 1000; m < 4.5 || m > 5.5 {
		t.Errorf("mean β = %v, want ≈ 5", m)
	}
}

func TestPhiSettings(t *testing.T) {
	corr := PaperPopulation(PhiCorrelated)
	indep := PaperPopulation(PhiIndependent)
	if len(corr) != len(indep) {
		t.Fatal("settings should share population size")
	}
	// The appendix keeps CP characteristics identical and only redraws φ.
	for i := range corr {
		if corr[i].Alpha != indep[i].Alpha || corr[i].ThetaHat != indep[i].ThetaHat || corr[i].V != indep[i].V {
			t.Fatalf("CP %d characteristics differ between φ settings", i)
		}
		beta, _ := corr[i].Beta()
		if corr[i].Phi > beta {
			t.Fatalf("correlated φ=%v exceeds β=%v", corr[i].Phi, beta)
		}
		if indep[i].Phi > 10 {
			t.Fatalf("independent φ=%v exceeds 10", indep[i].Phi)
		}
	}
	// φ must actually differ between the settings for most CPs.
	differ := 0
	for i := range corr {
		if corr[i].Phi != indep[i].Phi {
			differ++
		}
	}
	if differ < 900 {
		t.Errorf("only %d/1000 φ values differ between settings", differ)
	}
}

func TestEnsembleDeterminism(t *testing.T) {
	a := PaperEnsemble(PhiCorrelated).Generate(numeric.NewRNG(7))
	b := PaperEnsemble(PhiCorrelated).Generate(numeric.NewRNG(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("CP %d differs across identical seeds", i)
		}
	}
	c := PaperEnsemble(PhiCorrelated).Generate(numeric.NewRNG(8))
	same := 0
	for i := range a {
		if a[i].Alpha == c[i].Alpha {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d identical α draws", same)
	}
}

func TestSubsetAndNames(t *testing.T) {
	pop := Archetypes()
	sub := pop.Subset([]int{2, 0})
	if len(sub) != 2 || sub[0].Name != "skype" || sub[1].Name != "google" {
		t.Fatalf("Subset = %v", sub.Names())
	}
	names := pop.Names()
	if strings.Join(names, ",") != "google,netflix,skype" {
		t.Fatalf("Names = %v", names)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	pop := PaperEnsemble(PhiCorrelated).Generate(numeric.NewRNG(3))[:50]
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pop); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(pop) {
		t.Fatalf("round trip size %d, want %d", len(back), len(pop))
	}
	for i := range pop {
		if pop[i] != back[i] {
			t.Fatalf("CP %d did not round-trip: %+v vs %+v", i, pop[i], back[i])
		}
	}
}

func TestWriteCSVRejectsNonExponential(t *testing.T) {
	pop := Population{{
		Name: "odd", Alpha: 0.5, ThetaHat: 1, V: 0, Phi: 0,
		Curve: demand.Constant{},
	}}
	if err := WriteCSV(&bytes.Buffer{}, pop); err == nil {
		t.Fatal("expected serialization error for non-exponential curve")
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",         // no header
		"x,y\n1,2", // wrong column count
		"name,alpha,theta_hat,v,phi,beta\nbad,notanumber,1,1,1,1", // parse error
		"name,alpha,theta_hat,v,phi,beta\nbad,2,1,1,1,1",          // invalid α
	}
	for i, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// Property: ρ is non-decreasing in θ for random ensemble CPs (this is
// Assumption 1 lifted through Eq. 5, the property the equilibrium solver
// depends on).
func TestRhoMonotoneQuick(t *testing.T) {
	rng := numeric.NewRNG(55)
	pop := PaperEnsemble(PhiCorrelated).Generate(rng)
	f := func() bool {
		cp := &pop[rng.Intn(len(pop))]
		a := rng.Uniform(0, cp.ThetaHat)
		b := rng.Uniform(0, cp.ThetaHat)
		if a > b {
			a, b = b, a
		}
		return cp.Rho(a) <= cp.Rho(b)+1e-12
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
