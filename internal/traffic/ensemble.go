package traffic

import (
	"fmt"

	"github.com/netecon-sim/publicoption/internal/demand"
	"github.com/netecon-sim/publicoption/internal/numeric"
)

// PhiSetting selects how the per-unit-traffic consumer utility φ_i is drawn
// in the random ensembles of §III-E and the appendix.
type PhiSetting int

const (
	// PhiCorrelated is the main-text setting: φ_i ~ U[0, β_i], biasing
	// utility toward throughput-sensitive CPs ("throughput-sensitive
	// applications, e.g. Skype, bring more utility to consumers").
	PhiCorrelated PhiSetting = iota
	// PhiIndependent is the appendix setting: φ_i ~ U[0, U[0, 10]], the same
	// scale but independent of β_i (Figures 9–12).
	PhiIndependent
)

// String implements fmt.Stringer.
func (s PhiSetting) String() string {
	switch s {
	case PhiCorrelated:
		return "phi~U[0,beta]"
	case PhiIndependent:
		return "phi~U[0,U[0,10]]"
	default:
		return fmt.Sprintf("PhiSetting(%d)", int(s))
	}
}

// EnsembleConfig parameterizes the random CP populations of the paper's
// evaluation. The zero value is not useful; use PaperEnsemble for the
// published configuration.
type EnsembleConfig struct {
	N          int        // number of CPs
	AlphaHi    float64    // α ~ U(0, AlphaHi]
	ThetaHatHi float64    // θ̂ ~ U(0, ThetaHatHi]
	VHi        float64    // v ~ U[0, VHi]
	BetaHi     float64    // β ~ U[0, BetaHi]
	Phi        PhiSetting // utility model
}

// PaperEnsemble is the configuration of §III-E: 1000 CPs with α, θ̂, v
// uniform on [0,1] and β uniform on [0,10]. At this configuration the
// expected total unconstrained per-capita throughput is N·E[α]·E[θ̂] = 250,
// the paper's "ν needs to be around 250 to satisfy all unconstrained
// throughput".
func PaperEnsemble(phi PhiSetting) EnsembleConfig {
	return EnsembleConfig{
		N:          1000,
		AlphaHi:    1,
		ThetaHatHi: 1,
		VHi:        1,
		BetaHi:     10,
		Phi:        phi,
	}
}

// Generate draws a random population from the configuration using rng. The
// draw order per CP is fixed (α, θ̂, v, β, then φ) so a given seed always
// produces the same population regardless of the utility setting's internal
// draws.
func (cfg EnsembleConfig) Generate(rng *numeric.RNG) Population {
	if cfg.N <= 0 {
		panic("traffic: ensemble size must be positive")
	}
	pop := make(Population, cfg.N)
	for i := range pop {
		alpha := rng.UniformOpen(0, cfg.AlphaHi)
		thetaHat := rng.UniformOpen(0, cfg.ThetaHatHi)
		v := rng.Uniform(0, cfg.VHi)
		beta := rng.Uniform(0, cfg.BetaHi)
		var phi float64
		switch cfg.Phi {
		case PhiCorrelated:
			phi = rng.Uniform(0, beta)
		case PhiIndependent:
			phi = rng.Uniform(0, rng.Uniform(0, 10))
		default:
			panic(fmt.Sprintf("traffic: unknown phi setting %v", cfg.Phi))
		}
		pop[i] = CP{
			Name:     fmt.Sprintf("cp-%04d", i),
			Alpha:    alpha,
			ThetaHat: thetaHat,
			V:        v,
			Phi:      phi,
			Curve:    demand.Exponential{Beta: beta},
		}
	}
	return pop
}

// DefaultSeed is the seed used by all published experiments in this
// repository. Change it (or pass your own RNG) to study seed sensitivity.
const DefaultSeed = 20111206 // CoNEXT 2011 started December 6, 2011.

// PaperPopulation returns the deterministic 1000-CP population used by the
// figure reproductions, under the given φ setting. Both settings share the
// same (α, θ̂, v, β) draws — as in the paper's appendix, "the characteristics
// of the CPs are the same as our previous experiments" — because the φ draw
// happens after the four characteristic draws and consumes fresh randomness.
func PaperPopulation(phi PhiSetting) Population {
	// Use a dedicated sub-stream per setting so the shared draws coincide:
	// generate characteristics first, then overwrite φ.
	rng := numeric.NewRNG(DefaultSeed)
	base := PaperEnsemble(PhiCorrelated).Generate(rng)
	if phi == PhiCorrelated {
		return base
	}
	RedrawPhiIndependent(base, DefaultSeed+1)
	return base
}

// RedrawPhiIndependent overwrites every CP's φ with the appendix's
// independent draw φ ~ U[0, U[0,10]], consuming a dedicated RNG stream
// seeded with seed so the CP characteristics (drawn elsewhere) are
// untouched. PaperPopulation and the scenario engine share this convention;
// change it here and both stay in lockstep.
func RedrawPhiIndependent(pop Population, seed uint64) {
	phiRNG := numeric.NewRNG(seed)
	for i := range pop {
		pop[i].Phi = phiRNG.Uniform(0, phiRNG.Uniform(0, 10))
	}
}
