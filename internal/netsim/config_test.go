package netsim

import (
	"math"
	"testing"
)

func TestConfigSetDefaults(t *testing.T) {
	cases := []struct {
		name    string
		in      Config
		want    Config // ignored when wantErr
		wantErr bool
	}{
		{
			name: "zero config fills every default",
			in:   Config{Capacity: 100},
			want: Config{
				Capacity: 100, Buffer: 10, Step: 1e-3,
				Warmup: 10, Measure: 20, Seed: 1, MSS: 0.1,
			},
		},
		{
			name: "explicit values survive",
			in: Config{
				Capacity: 50, Buffer: 2, Step: 1e-4,
				Warmup: 1, Measure: 2, Seed: 9, Discipline: RED, MSS: 0.5,
			},
			want: Config{
				Capacity: 50, Buffer: 2, Step: 1e-4,
				Warmup: 1, Measure: 2, Seed: 9, Discipline: RED, MSS: 0.5,
			},
		},
		{
			name: "buffer and MSS scale with capacity",
			in:   Config{Capacity: 4000},
			want: Config{
				Capacity: 4000, Buffer: 400, Step: 1e-3,
				Warmup: 10, Measure: 20, Seed: 1, MSS: 4,
			},
		},
		{name: "zero capacity", in: Config{}, wantErr: true},
		{name: "negative capacity", in: Config{Capacity: -1}, wantErr: true},
		{name: "infinite capacity", in: Config{Capacity: math.Inf(1)}, wantErr: true},
		{name: "negative infinite capacity", in: Config{Capacity: math.Inf(-1)}, wantErr: true},
		{name: "NaN capacity", in: Config{Capacity: math.NaN()}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.in
			err := cfg.setDefaults()
			if tc.wantErr {
				if err == nil {
					t.Fatalf("setDefaults(%+v) accepted an invalid capacity", tc.in)
				}
				return
			}
			if err != nil {
				t.Fatalf("setDefaults(%+v): %v", tc.in, err)
			}
			if cfg != tc.want {
				t.Fatalf("setDefaults(%+v) = %+v, want %+v", tc.in, cfg, tc.want)
			}
		})
	}
}

func TestDisciplineStringAllBranches(t *testing.T) {
	cases := []struct {
		d    Discipline
		want string
	}{
		{DropTail, "droptail"},
		{RED, "red"},
		{Discipline(7), "Discipline(7)"},
	}
	for _, tc := range cases {
		if got := tc.d.String(); got != tc.want {
			t.Errorf("Discipline(%d).String() = %q, want %q", int(tc.d), got, tc.want)
		}
	}
}
