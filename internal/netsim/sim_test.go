package netsim

import (
	"math"
	"testing"

	"github.com/netecon-sim/publicoption/internal/traffic"
)

func TestTwoEqualFlowsShareEvenly(t *testing.T) {
	cfg := Config{Capacity: 100}
	flows := []Flow{
		{Name: "a", RTT: 0.05},
		{Name: "b", RTT: 0.05},
	}
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jain < 0.98 {
		t.Errorf("Jain = %v, want near 1 for equal flows", res.Jain)
	}
	for _, f := range res.Flows {
		if f.Rate < 40 || f.Rate > 60 {
			t.Errorf("flow %s rate %v, want ≈ 50", f.Name, f.Rate)
		}
	}
	if res.Utilization < 0.9 {
		t.Errorf("utilization %v, want > 0.9", res.Utilization)
	}
}

func TestManyFlowsMaxMin(t *testing.T) {
	cfg := Config{Capacity: 100}
	var flows []Flow
	for i := 0; i < 20; i++ {
		flows = append(flows, Flow{Name: "f", RTT: 0.05})
	}
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	rep := CompareMaxMin(res, flows, cfg.Capacity)
	if rep.MaxRelErr > 0.2 {
		t.Errorf("worst deviation from max-min %v, want < 20%%", rep.MaxRelErr)
	}
	if res.Jain < 0.95 {
		t.Errorf("Jain = %v", res.Jain)
	}
}

func TestCappedFlowsWaterFill(t *testing.T) {
	// One tightly capped flow; the elastic flows share the remainder. The
	// max-min reference: capped flow pinned at its cap, others at the
	// water level.
	cfg := Config{Capacity: 100}
	flows := []Flow{
		{Name: "capped", RTT: 0.05, Cap: 5},
		{Name: "e1", RTT: 0.05},
		{Name: "e2", RTT: 0.05},
		{Name: "e3", RTT: 0.05},
	}
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if r := res.Flows[0].Rate; math.Abs(r-5) > 1 {
		t.Errorf("capped flow rate %v, want ≈ 5", r)
	}
	rep := CompareMaxMin(res, flows, cfg.Capacity)
	if rep.MaxRelErr > 0.2 {
		t.Errorf("max-min deviation %v", rep.MaxRelErr)
	}
}

func TestRTTBias(t *testing.T) {
	// AIMD favors short RTTs; the paper acknowledges this ("differing round
	// trip times ... can result in different bandwidths") while using
	// max-min as the first-order model. The bias must appear and point the
	// right way.
	cfg := Config{Capacity: 100}
	flows := []Flow{
		{Name: "short", RTT: 0.02},
		{Name: "long", RTT: 0.1},
	}
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[0].Rate <= res.Flows[1].Rate {
		t.Errorf("short-RTT flow (%v) should outrun long-RTT flow (%v)",
			res.Flows[0].Rate, res.Flows[1].Rate)
	}
}

func TestUncongestedLinkDeliversCaps(t *testing.T) {
	cfg := Config{Capacity: 1000}
	flows := []Flow{
		{Name: "a", RTT: 0.05, Cap: 10},
		{Name: "b", RTT: 0.05, Cap: 20},
	}
	res, err := Run(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Flows[0].Rate-10) > 1 || math.Abs(res.Flows[1].Rate-20) > 2 {
		t.Errorf("uncongested rates = %v, %v; want caps 10, 20", res.Flows[0].Rate, res.Flows[1].Rate)
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := Config{Capacity: 50, Seed: 42}
	flows := []Flow{{Name: "a", RTT: 0.03}, {Name: "b", RTT: 0.07}}
	r1, err1 := Run(cfg, flows)
	r2, err2 := Run(cfg, flows)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range r1.Flows {
		if r1.Flows[i].Rate != r2.Flows[i].Rate {
			t.Fatal("same seed, different rates")
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Capacity: 0}, []Flow{{RTT: 0.05}}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := Run(Config{Capacity: 10}, nil); err != ErrNoFlows {
		t.Errorf("empty flows: err = %v, want ErrNoFlows", err)
	}
	if _, err := Run(Config{Capacity: 10}, []Flow{{RTT: 0}}); err == nil {
		t.Error("zero RTT accepted")
	}
	if _, err := Run(Config{Capacity: 10}, []Flow{{RTT: 0.05, Cap: math.NaN()}}); err == nil {
		t.Error("NaN cap accepted")
	}
}

func TestMaxMinRatesAnalytic(t *testing.T) {
	// capacity 100, caps (10, 30, ∞, ∞): water level solves
	// 10 + 30 + 2τ = 100 → wait, 30 > τ? τ = 30: 10+30+60 = 100. So
	// τ = 30 exactly: rates (10, 30, 30, 30).
	rates := MaxMinRates(100, []float64{10, 30, 0, 0})
	want := []float64{10, 30, 30, 30}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1e-6 {
			t.Fatalf("rates = %v, want %v", rates, want)
		}
	}
	// All capped, abundant capacity: everyone gets their cap.
	rates = MaxMinRates(100, []float64{5, 10})
	if rates[0] != 5 || rates[1] != 10 {
		t.Fatalf("abundant: rates = %v", rates)
	}
	// Empty and zero-capacity cases.
	if out := MaxMinRates(0, []float64{5}); out[0] != 0 {
		t.Fatal("zero capacity should allocate nothing")
	}
	if out := MaxMinRates(10, nil); len(out) != 0 {
		t.Fatal("no flows should yield empty allocation")
	}
}

func TestDemandEquilibriumMatchesAnalytic(t *testing.T) {
	// Close the demand/TCP loop on a scaled-down archetype population and
	// compare with the analytic Theorem 1 equilibrium. This is the
	// cross-substrate integration test for Assumption 2.
	pop := traffic.Archetypes()
	const m = 40
	nu := 2000.0 // Kbps per capita; heavily congested (saturation 5500)
	res, err := SolveDemandEquilibrium(DemandConfig{
		Pop:      pop,
		M:        m,
		Capacity: nu * m,
		Rounds:   10,
		Sim:      Config{Warmup: 5, Measure: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRelErr > 0.15 {
		t.Errorf("TCP-loop θ deviates from analytic by %v (θ: %v, analytic: %v)",
			res.MaxRelErr, res.Theta, res.Analytic)
	}
}

func TestDemandEquilibriumUncongested(t *testing.T) {
	pop := traffic.Archetypes()
	const m = 20
	res, err := SolveDemandEquilibrium(DemandConfig{
		Pop:      pop,
		M:        m,
		Capacity: 8000 * m, // above saturation 5500
		Rounds:   6,
		Sim:      Config{Warmup: 5, Measure: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pop {
		if res.Theta[i] < 0.85*pop[i].ThetaHat {
			t.Errorf("uncongested θ_%d = %v, want ≈ θ̂ = %v", i, res.Theta[i], pop[i].ThetaHat)
		}
	}
}

func TestDemandEquilibriumValidation(t *testing.T) {
	if _, err := SolveDemandEquilibrium(DemandConfig{M: 0, Pop: traffic.Archetypes(), Capacity: 10}); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := SolveDemandEquilibrium(DemandConfig{M: 5, Capacity: 10}); err == nil {
		t.Error("empty population accepted")
	}
}

func TestREDImprovesOrMatchesFairness(t *testing.T) {
	// RED de-synchronizes AIMD halvings; with many flows its Jain index
	// should be at least in the same band as droptail's and the standing
	// queue shorter.
	flows := make([]Flow, 16)
	for i := range flows {
		flows[i] = Flow{Name: "f", RTT: 0.05}
	}
	dt, err := Run(Config{Capacity: 100, Seed: 5}, flows)
	if err != nil {
		t.Fatal(err)
	}
	red, err := Run(Config{Capacity: 100, Seed: 5, Discipline: RED}, flows)
	if err != nil {
		t.Fatal(err)
	}
	if red.Jain < dt.Jain-0.05 {
		t.Errorf("RED Jain %v far below droptail %v", red.Jain, dt.Jain)
	}
	if red.AvgQueue >= dt.AvgQueue {
		t.Errorf("RED standing queue %v not below droptail %v", red.AvgQueue, dt.AvgQueue)
	}
	if red.Utilization < 0.85 {
		t.Errorf("RED utilization %v too low", red.Utilization)
	}
}

func TestDisciplineString(t *testing.T) {
	if DropTail.String() != "droptail" || RED.String() != "red" {
		t.Fatal("Discipline String broken")
	}
}

func TestREDStillMaxMinWithCaps(t *testing.T) {
	flows := []Flow{
		{Name: "capped", RTT: 0.05, Cap: 10},
		{Name: "e1", RTT: 0.05},
		{Name: "e2", RTT: 0.05},
	}
	res, err := Run(Config{Capacity: 100, Discipline: RED}, flows)
	if err != nil {
		t.Fatal(err)
	}
	rep := CompareMaxMin(res, flows, 100)
	if rep.MaxRelErr > 0.25 {
		t.Errorf("RED max-min deviation %v too large", rep.MaxRelErr)
	}
}

func TestSingleFlowTakesLink(t *testing.T) {
	res, err := Run(Config{Capacity: 50}, []Flow{{Name: "solo", RTT: 0.04}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[0].Rate < 45 {
		t.Errorf("solo flow rate %v, want ≈ capacity 50", res.Flows[0].Rate)
	}
}

func TestTinyBufferStillConverges(t *testing.T) {
	// A buffer below one MSS forces constant loss pressure; the simulation
	// must stay finite and keep reasonable utilization.
	flows := []Flow{{Name: "a", RTT: 0.05}, {Name: "b", RTT: 0.05}}
	res, err := Run(Config{Capacity: 100, Buffer: 0.05}, flows)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Flows {
		if math.IsNaN(f.Rate) || f.Rate < 0 {
			t.Fatalf("flow rate %v invalid under tiny buffer", f.Rate)
		}
	}
	if res.Utilization < 0.5 {
		t.Errorf("utilization %v collapsed under tiny buffer", res.Utilization)
	}
}

func TestManyFlowsStayFair(t *testing.T) {
	flows := make([]Flow, 100)
	for i := range flows {
		flows[i] = Flow{Name: "f", RTT: 0.05}
	}
	res, err := Run(Config{Capacity: 200}, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jain < 0.9 {
		t.Errorf("Jain %v with 100 flows", res.Jain)
	}
	if res.Utilization < 0.9 {
		t.Errorf("utilization %v with 100 flows", res.Utilization)
	}
}

func TestExtremeRTTHeterogeneityBounded(t *testing.T) {
	// 1 ms vs 1 s RTTs: the short flow dominates but the long flow is not
	// starved to zero, and nothing diverges.
	flows := []Flow{
		{Name: "lan", RTT: 0.001},
		{Name: "geo", RTT: 1.0},
	}
	res, err := Run(Config{Capacity: 100, Measure: 40}, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[0].Rate <= res.Flows[1].Rate {
		t.Error("RTT bias direction wrong")
	}
	if res.Flows[1].Rate <= 0 {
		t.Error("long-RTT flow fully starved")
	}
	if total := res.Flows[0].Rate + res.Flows[1].Rate; total > 105 {
		t.Errorf("delivered %v exceeds capacity", total)
	}
}
