package netsim

import (
	"fmt"
	"math"
	"testing"

	"github.com/netecon-sim/publicoption/internal/alloc"
	"github.com/netecon-sim/publicoption/internal/demand"
	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// randomInstance draws a small capped-flow instance: n flows with caps in
// [5, 60) and a capacity that leaves the link either congested or not.
func randomInstance(rng *numeric.RNG) (capacity float64, caps []float64) {
	n := 3 + rng.Intn(6) // 3..8 flows
	caps = make([]float64, n)
	var sum float64
	for i := range caps {
		caps[i] = rng.Uniform(5, 60)
		sum += caps[i]
	}
	// Half the draws congested (capacity below the cap sum), half not.
	capacity = rng.Uniform(0.3, 1.4) * sum
	return capacity, caps
}

// TestMaxMinRatesMatchesAllocSolve pins the two independent max-min
// implementations — the simulator's per-flow water-fill (MaxMinRates) and
// the equilibrium kernel's Theorem 1 solve (alloc.Solve) — to each other on
// randomized instances. A unit-α, constant-demand population of M = 1
// consumer fields exactly one flow per CP, so the kernel's per-CP θ profile
// IS the per-flow max-min allocation; the two must agree to numerical
// precision, not just within simulation noise.
func TestMaxMinRatesMatchesAllocSolve(t *testing.T) {
	rng := numeric.NewRNG(7)
	for trial := 0; trial < 50; trial++ {
		capacity, caps := randomInstance(rng)
		pop := make(traffic.Population, len(caps))
		for i, c := range caps {
			pop[i] = traffic.CP{
				Name: fmt.Sprintf("cp%d", i), Alpha: 1, ThetaHat: c,
				Curve: demand.Constant{},
			}
		}
		want := MaxMinRates(capacity, caps)
		got := alloc.Solve(alloc.MaxMin{}, capacity, pop)
		for i := range caps {
			if math.Abs(got.Theta[i]-want[i]) > 1e-9*(1+want[i]) {
				t.Fatalf("trial %d (capacity %.6g, caps %v): alloc θ_%d = %.12g, water-fill %.12g",
					trial, capacity, caps, i, got.Theta[i], want[i])
			}
		}
		if total, wantTotal := sum(want), math.Min(capacity, sum(caps)); math.Abs(total-wantTotal) > 1e-6*(1+wantTotal) {
			t.Fatalf("trial %d: water-fill delivers %.12g, work conservation wants %.12g", trial, total, wantTotal)
		}
	}
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// TestSimulatedMaxMinMatchesSolver closes the loop at the packet level on a
// few seeded random instances: the converged AIMD allocation must land near
// the kernel's θ profile. Tolerances are loose (this is stochastic
// dynamics, with short windows to keep the test fast), but tight enough to
// fail if the simulator converged to a different fairness point — e.g.
// proportional instead of max-min sharing of a capped mix.
func TestSimulatedMaxMinMatchesSolver(t *testing.T) {
	rng := numeric.NewRNG(11)
	for trial := 0; trial < 4; trial++ {
		capacity, caps := randomInstance(rng)
		flows := make([]Flow, len(caps))
		for i, c := range caps {
			flows[i] = Flow{Name: fmt.Sprintf("f%d", i), RTT: 0.05, Cap: c}
		}
		res, err := Run(Config{Capacity: capacity, Seed: uint64(trial + 1), Warmup: 5, Measure: 15}, flows)
		if err != nil {
			t.Fatal(err)
		}
		want := MaxMinRates(capacity, caps)
		// Judge errors against the largest fair share, not each flow's own
		// rate: tightly capped flows sit exactly at their cap and tiny
		// absolute wobbles would otherwise dominate relatively.
		var scale float64
		for _, w := range want {
			scale = math.Max(scale, w)
		}
		for i := range caps {
			if diff := math.Abs(res.Flows[i].Rate - want[i]); diff > 0.25*scale {
				t.Errorf("trial %d (capacity %.6g, caps %v): flow %d rate %.4g, max-min %.4g (off by %.2f×scale)",
					trial, capacity, caps, i, res.Flows[i].Rate, want[i], diff/scale)
			}
		}
	}
}
