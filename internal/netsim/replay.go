package netsim

import (
	"errors"
	"fmt"
	"math"

	"github.com/netecon-sim/publicoption/internal/alloc"
)

// ErrNoDemand is returned by PlanEquilibrium when the equilibrium has no
// active demand to replay: every CP's demand rounds to zero flows at the
// plan's scale (e.g. a starved class whose throughput killed all demand).
var ErrNoDemand = errors.New("netsim: equilibrium has no active demand to replay")

// PlanConfig parameterizes the fluid→packet realization of an equilibrium.
type PlanConfig struct {
	// TargetFlows is the approximate total flow count to realize; the
	// consumer population M is chosen (scale invariance, Axiom 4) so the
	// demand-weighted flow counts sum near it. Default 192.
	TargetFlows int
	// RTT is every flow's base round-trip time in seconds. Default 0.05.
	RTT float64
}

// Plan is a fluid rate equilibrium realized as a finite AIMD flow
// population at an absolute-capacity bottleneck: CP i fields
// round(α_i·M·d_i(θ_i)) flows, each application-capped at θ̂_i.
//
// For a constrained link the replay capacity is Σ n_i·θ_i — work
// conservation restated on the *discrete* flow set — so flow-count rounding
// does not shift the water level the simulator should converge to; the
// fluid reference per-flow rates are then exactly the equilibrium's θ_i.
type Plan struct {
	Flows  []Flow    // the discrete flow population
	Owner  []int     // Owner[f] indexes the CP of flow f in the equilibrium's Pop
	Counts []int     // flows per CP: round(α_i·M·d_i(θ_i))
	Theta  []float64 // fluid reference per-flow rate per CP (the equilibrium θ_i)
	// M is the consumer population the plan scaled to, Capacity the
	// absolute link capacity µ′ of the replay, RTT the common base RTT.
	M        float64
	Capacity float64
	RTT      float64
}

// PlanEquilibrium realizes the fluid equilibrium eq as a packet-level
// replay plan. It errors on empty or zero-capacity equilibria and returns
// ErrNoDemand when no CP's demand rounds to a single flow.
func PlanEquilibrium(eq *alloc.Result, cfg PlanConfig) (*Plan, error) {
	if eq == nil || len(eq.Pop) == 0 {
		return nil, fmt.Errorf("netsim: cannot plan an empty equilibrium")
	}
	if len(eq.Theta) != len(eq.Pop) {
		return nil, fmt.Errorf("netsim: equilibrium has %d θ values for %d CPs", len(eq.Theta), len(eq.Pop))
	}
	if !(eq.Nu > 0) || math.IsInf(eq.Nu, 0) {
		return nil, fmt.Errorf("netsim: equilibrium capacity ν=%g, want positive finite", eq.Nu)
	}
	target := cfg.TargetFlows
	if target <= 0 {
		target = 192
	}
	rtt := cfg.RTT
	if rtt <= 0 {
		rtt = 0.05
	}
	// Flows per consumer: Σ α_i·d_i(θ_i). Scale invariance lets us pick M
	// freely, so pick it to land the total flow count near the target.
	var density float64
	for i := range eq.Pop {
		density += eq.Pop[i].Alpha * eq.Pop[i].DemandAt(eq.Theta[i])
	}
	if !(density > 0) {
		return nil, ErrNoDemand
	}
	m := float64(target) / density
	p := &Plan{
		M:      m,
		RTT:    rtt,
		Counts: make([]int, len(eq.Pop)),
		Theta:  append([]float64(nil), eq.Theta...),
	}
	var demandSum float64 // Σ n_i·θ_i, the discrete fluid throughput
	for i := range eq.Pop {
		cp := &eq.Pop[i]
		n := int(math.Round(cp.Alpha * m * cp.DemandAt(eq.Theta[i])))
		p.Counts[i] = n
		demandSum += float64(n) * eq.Theta[i]
		for k := 0; k < n; k++ {
			p.Flows = append(p.Flows, Flow{
				Name: fmt.Sprintf("%s/%d", cp.Name, k),
				RTT:  rtt,
				Cap:  cp.ThetaHat,
			})
			p.Owner = append(p.Owner, i)
		}
	}
	if len(p.Flows) == 0 || !(demandSum > 0) {
		return nil, ErrNoDemand
	}
	if eq.Constrained {
		p.Capacity = demandSum
	} else {
		// Unconstrained: any capacity above the total demand yields the
		// same fluid rates (every flow runs at its cap), so clamp the
		// headroom to keep the simulator's quanta (MSS, buffer)
		// proportionate to the traffic — solver-side ν can exceed demand
		// by orders of magnitude (e.g. the market solver's ν cap).
		p.Capacity = eq.Nu * m
		if lim := 1.25 * demandSum; p.Capacity > lim {
			p.Capacity = lim
		}
	}
	return p, nil
}

// SimConfig returns simulator settings sized to the plan: the replay
// capacity, the given seed, and a segment size giving a typical flow a
// window of ~16 segments. (The Config default of Capacity/1000 starves
// per-flow windows below one segment once flow counts reach the hundreds,
// clamping rates at the minimum window.)
func (p *Plan) SimConfig(seed uint64) Config {
	cfg := Config{Capacity: p.Capacity, Seed: seed}
	mss := p.Capacity * p.RTT / (float64(len(p.Flows)) * 16)
	if def := p.Capacity / 1000; mss > def {
		mss = def // few flows: the default segment size is already fine
	}
	cfg.MSS = mss
	return cfg
}

// MeasureByOwner aggregates a replay's measured per-flow rates by owning
// CP: meanRate[i] is CP i's mean per-flow delivered rate (its packet-level
// θ_i), delivered[i] its total delivered rate. CPs with no flows get zero.
func (p *Plan) MeasureByOwner(res *Result) (meanRate, delivered []float64, err error) {
	if res == nil || len(res.Flows) != len(p.Flows) {
		return nil, nil, fmt.Errorf("netsim: result has %d flows, plan has %d", len(res.Flows), len(p.Flows))
	}
	n := len(p.Counts)
	meanRate = make([]float64, n)
	delivered = make([]float64, n)
	for f := range res.Flows {
		delivered[p.Owner[f]] += res.Flows[f].Rate
	}
	for i, c := range p.Counts {
		if c > 0 {
			meanRate[i] = delivered[i] / float64(c)
		}
	}
	return meanRate, delivered, nil
}
