package netsim

import (
	"math"

	"github.com/netecon-sim/publicoption/internal/numeric"
)

// MaxMinRates returns the analytic max-min fair allocation of capacity
// among flows with the given rate caps (math.Inf(1) or 0 for uncapped):
// every flow receives min(cap, τ) where the water level τ exhausts capacity
// (or all caps, whichever binds first). This is the reference the simulator
// is validated against.
func MaxMinRates(capacity float64, caps []float64) []float64 {
	n := len(caps)
	out := make([]float64, n)
	if n == 0 || capacity <= 0 {
		return out
	}
	eff := make([]float64, n)
	total := 0.0
	finiteMax := 0.0
	for i, c := range caps {
		if c <= 0 || math.IsInf(c, 1) {
			eff[i] = math.Inf(1)
		} else {
			eff[i] = c
			if c > finiteMax {
				finiteMax = c
			}
		}
		if !math.IsInf(eff[i], 1) {
			total += eff[i]
		}
	}
	hasUncapped := false
	for i := range eff {
		if math.IsInf(eff[i], 1) {
			hasUncapped = true
			break
		}
	}
	if !hasUncapped && capacity >= total {
		copy(out, eff)
		return out
	}
	// Water level: Σ min(cap_i, τ) = capacity. With uncapped flows present
	// the sum is unbounded in τ, so a solution always exists; otherwise
	// capacity < Σcaps guarantees one below max(caps).
	hi := finiteMax
	if hasUncapped {
		hi = capacity // an uncapped flow can at most take the whole link
	}
	tau := numeric.Bisect(func(t float64) float64 {
		var s float64
		for i := range eff {
			s += math.Min(eff[i], t)
		}
		return s - capacity
	}, 0, hi, 1e-12*math.Max(hi, 1))
	for i := range eff {
		out[i] = math.Min(eff[i], tau)
	}
	return out
}

// FairnessReport compares measured flow rates against the analytic max-min
// allocation.
type FairnessReport struct {
	Analytic  []float64 // per-flow max-min reference
	MaxRelErr float64   // worst |measured − analytic| / water level
	Jain      float64   // Jain index of the measured uncapped rates
}

// CompareMaxMin builds a FairnessReport for a simulation result. Relative
// error is measured against the analytic water level (not per-flow values,
// which may be near zero for tightly capped flows).
func CompareMaxMin(res *Result, flows []Flow, capacity float64) FairnessReport {
	caps := make([]float64, len(flows))
	for i := range flows {
		caps[i] = flows[i].Cap
	}
	analytic := MaxMinRates(capacity, caps)
	level := 0.0
	for _, a := range analytic {
		if a > level {
			level = a
		}
	}
	rep := FairnessReport{Analytic: analytic, Jain: res.Jain}
	for i := range flows {
		err := math.Abs(res.Flows[i].Rate-analytic[i]) / math.Max(level, 1e-300)
		if err > rep.MaxRelErr {
			rep.MaxRelErr = err
		}
	}
	return rep
}
