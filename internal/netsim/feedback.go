package netsim

import (
	"fmt"
	"math"

	"github.com/netecon-sim/publicoption/internal/alloc"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// DemandConfig couples the fluid AIMD simulator with the paper's demand
// functions: the number of active flows per content provider follows the
// demand d_i(θ_i) at the throughput the simulator last delivered, closing
// the loop whose fixed point is the paper's rate equilibrium (Theorem 1).
type DemandConfig struct {
	Pop      traffic.Population // content providers
	M        int                // consumer population size (keep modest: flows ≈ Σ α_i·M)
	Capacity float64            // absolute link capacity µ (so ν = µ/M)
	Rounds   int                // fixed-point iterations; default 12
	Damping  float64            // θ update damping in (0,1]; default 0.5
	Sim      Config             // per-round simulator settings (Capacity is overwritten)
}

// DemandResult reports the closed-loop equilibrium and its analytic
// reference.
type DemandResult struct {
	Theta      []float64 // per-CP per-user throughput from the simulator loop
	FlowCounts []int     // final active flows per CP
	Analytic   []float64 // alloc.Solve (max-min, Theorem 1) reference θ
	// Compared[i] is false when CP i's analytic equilibrium demand rounds
	// to fewer than two flows at this M: the analytic model is a continuum,
	// and a CP that cannot field even a couple of discrete flows has no
	// meaningful simulated throughput to compare (its θ oscillates with its
	// 0↔1 flow count). Such CPs are excluded from MaxRelErr.
	Compared  []bool
	MaxRelErr float64 // worst |Theta − Analytic| / max θ̂ over compared CPs
}

// SolveDemandEquilibrium iterates simulator rounds against the demand
// functions until the per-CP throughputs settle, then compares with the
// analytic rate equilibrium of the alloc package. It is the integration
// test target bridging the two substrates; agreement within a few percent
// validates Assumption 2 end to end.
func SolveDemandEquilibrium(cfg DemandConfig) (*DemandResult, error) {
	if cfg.M <= 0 {
		return nil, fmt.Errorf("netsim: M=%d, want > 0", cfg.M)
	}
	if len(cfg.Pop) == 0 {
		return nil, fmt.Errorf("netsim: empty population")
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 12
	}
	if cfg.Damping <= 0 || cfg.Damping > 1 {
		cfg.Damping = 0.5
	}
	cfg.Sim.Capacity = cfg.Capacity

	n := len(cfg.Pop)
	theta := make([]float64, n)
	for i := range cfg.Pop {
		theta[i] = cfg.Pop[i].ThetaHat
	}
	counts := make([]int, n)
	for round := 0; round < cfg.Rounds; round++ {
		var flows []Flow
		var owner []int
		for i := range cfg.Pop {
			cp := &cfg.Pop[i]
			counts[i] = int(math.Round(cp.Alpha * float64(cfg.M) * cp.DemandAt(theta[i])))
			for k := 0; k < counts[i]; k++ {
				flows = append(flows, Flow{
					Name: fmt.Sprintf("%s/%d", cp.Name, k),
					RTT:  0.05,
					Cap:  cp.ThetaHat,
				})
				owner = append(owner, i)
			}
		}
		if len(flows) == 0 {
			break
		}
		cfg.Sim.Seed = uint64(round + 1)
		res, err := Run(cfg.Sim, flows)
		if err != nil {
			return nil, err
		}
		// Per-CP throughput: mean over its flows.
		sum := make([]float64, n)
		cnt := make([]int, n)
		for f := range flows {
			sum[owner[f]] += res.Flows[f].Rate
			cnt[owner[f]]++
		}
		for i := range cfg.Pop {
			target := cfg.Pop[i].ThetaHat // CPs with no active flows would be uncongested
			if cnt[i] > 0 {
				target = sum[i] / float64(cnt[i])
			}
			theta[i] += cfg.Damping * (target - theta[i])
			if theta[i] > cfg.Pop[i].ThetaHat {
				theta[i] = cfg.Pop[i].ThetaHat
			}
		}
	}

	analytic := alloc.Solve(alloc.MaxMin{}, cfg.Capacity/float64(cfg.M), cfg.Pop)
	out := &DemandResult{
		Theta:      theta,
		FlowCounts: counts,
		Analytic:   analytic.Theta,
		Compared:   make([]bool, n),
	}
	scale := cfg.Pop.MaxThetaHat()
	for i := range theta {
		cp := &cfg.Pop[i]
		analyticFlows := cp.Alpha * float64(cfg.M) * cp.DemandAt(analytic.Theta[i])
		if analyticFlows < 2 {
			continue
		}
		out.Compared[i] = true
		if err := math.Abs(theta[i]-analytic.Theta[i]) / scale; err > out.MaxRelErr {
			out.MaxRelErr = err
		}
	}
	return out, nil
}
