package obs

import "sync/atomic"

// MaxRefineDepth is the hard cap on adaptive-grid refinement depth. A depth-d
// leaf covers 1/4^d of a seed cell, so 8 levels already resolve a seed cell
// 256× finer per axis — beyond that the fixed-size depth histogram (and the
// solver's own tolerances) stop being meaningful. internal/refine clamps
// configured depths to this value.
const MaxRefineDepth = 8

// RefineStats is the refinement engine's telemetry block: how much work an
// adaptive grid run did and where it stopped. Like SolveStats it is the hot
// tier — plain counters owned by one engine run, incremented with ordinary
// adds, aggregated cross-goroutine only via RefineCounters.
type RefineStats struct {
	// PointsSolved counts lattice points (and probe points) materialized by a
	// kernel solve during this run.
	PointsSolved uint64 `json:"points_solved,omitempty"`
	// PointsReused counts lattice/probe points served by the caller's Lookup
	// hook (the content-addressed equilibrium cache) instead of a solve.
	PointsReused uint64 `json:"points_reused,omitempty"`
	// CellsSplit counts cells whose curvature or indicator test forced a
	// split into four children.
	CellsSplit uint64 `json:"cells_split,omitempty"`
	// CellsInterpolated counts leaf cells accepted by the cheap interpolant
	// screen alone — no center solve was spent on them.
	CellsInterpolated uint64 `json:"cells_interpolated,omitempty"`
	// CellsVerified counts leaf cells accepted the expensive way: a solved
	// center point agreed with the bilinear prediction within tolerance.
	CellsVerified uint64 `json:"cells_verified,omitempty"`
	// ProbeSolves counts the off-knot verification probes that actually
	// solved (probes served by Lookup count into PointsReused).
	ProbeSolves uint64 `json:"probe_solves,omitempty"`
	// LeafDepths is the refinement-depth histogram: LeafDepths[d] leaves were
	// finalized at depth d (0 = an unsplit seed cell).
	LeafDepths [MaxRefineDepth + 1]uint64 `json:"leaf_depths"`
}

// Leaves returns the total number of leaf cells across all depths.
func (s RefineStats) Leaves() uint64 {
	var n uint64
	for _, d := range s.LeafDepths {
		n += d
	}
	return n
}

// Accumulate adds d's counters into s.
func (s *RefineStats) Accumulate(d RefineStats) {
	s.PointsSolved += d.PointsSolved
	s.PointsReused += d.PointsReused
	s.CellsSplit += d.CellsSplit
	s.CellsInterpolated += d.CellsInterpolated
	s.CellsVerified += d.CellsVerified
	s.ProbeSolves += d.ProbeSolves
	for i := range s.LeafDepths {
		s.LeafDepths[i] += d.LeafDepths[i]
	}
}

// RefineCounters is the cross-goroutine aggregation sink for RefineStats —
// the refinement counterpart of Counters, fed once per run by the HTTP
// service and rendered as pubopt_refine_* Prometheus counters. The zero
// value is ready to use; a nil *RefineCounters is a valid no-op sink.
type RefineCounters struct {
	pointsSolved      atomic.Uint64
	pointsReused      atomic.Uint64
	cellsSplit        atomic.Uint64
	cellsInterpolated atomic.Uint64
	cellsVerified     atomic.Uint64
	probeSolves       atomic.Uint64
	leafDepths        [MaxRefineDepth + 1]atomic.Uint64
}

// Add publishes a stats delta into the sink. Safe for concurrent use; a
// no-op on a nil receiver so call sites never need to branch.
func (c *RefineCounters) Add(d RefineStats) {
	if c == nil {
		return
	}
	if d.PointsSolved > 0 {
		c.pointsSolved.Add(d.PointsSolved)
	}
	if d.PointsReused > 0 {
		c.pointsReused.Add(d.PointsReused)
	}
	if d.CellsSplit > 0 {
		c.cellsSplit.Add(d.CellsSplit)
	}
	if d.CellsInterpolated > 0 {
		c.cellsInterpolated.Add(d.CellsInterpolated)
	}
	if d.CellsVerified > 0 {
		c.cellsVerified.Add(d.CellsVerified)
	}
	if d.ProbeSolves > 0 {
		c.probeSolves.Add(d.ProbeSolves)
	}
	for i := range d.LeafDepths {
		if d.LeafDepths[i] > 0 {
			c.leafDepths[i].Add(d.LeafDepths[i])
		}
	}
}

// Snapshot returns a point-in-time copy of the aggregated counters.
func (c *RefineCounters) Snapshot() RefineStats {
	if c == nil {
		return RefineStats{}
	}
	s := RefineStats{
		PointsSolved:      c.pointsSolved.Load(),
		PointsReused:      c.pointsReused.Load(),
		CellsSplit:        c.cellsSplit.Load(),
		CellsInterpolated: c.cellsInterpolated.Load(),
		CellsVerified:     c.cellsVerified.Load(),
		ProbeSolves:       c.probeSolves.Load(),
	}
	for i := range s.LeafDepths {
		s.LeafDepths[i] = c.leafDepths[i].Load()
	}
	return s
}
