package obs

import (
	"sync"
	"time"
)

// Event is one recorded solve-path span: what happened, for whom, how long
// it took, and what the solver did to produce it. Events are the flight
// recorder's unit and double as the wire shape of GET /debug/events.
type Event struct {
	// Seq is the recorder's monotonically increasing sequence number;
	// gaps in a scrape mean events were overwritten between reads.
	Seq uint64 `json:"seq"`
	// Time is when the span ended (the event is recorded at completion).
	Time time.Time `json:"time"`
	// Trace is the request's trace ID ("" for non-HTTP callers).
	Trace string `json:"trace,omitempty"`
	// Kind classifies the span: "run" (a /v1/runs or batch-list solve),
	// "experiment", "cell" (one grid cell), or "grid" (a whole grid solve).
	Kind string `json:"kind"`
	// Name is the scenario name, experiment ID, or grid name; for cells it
	// is "name[row,col]".
	Name string `json:"name"`
	// Key is a prefix of the content-address cache key, when the span went
	// through the equilibrium cache.
	Key string `json:"key,omitempty"`
	// Outcome is how the cache satisfied the span: "hit", "miss",
	// "coalesced", or "error".
	Outcome string `json:"outcome,omitempty"`
	// DurationMS is the span's wall time in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	// Error carries the failure message for Outcome "error".
	Error string `json:"error,omitempty"`
	// Solver is the solver-telemetry delta attributed to this span (zero
	// for cache hits: no solver ran).
	Solver SolveStats `json:"solver,omitempty"`
}

// Recorder is the bounded in-memory flight recorder: a fixed-capacity ring
// of the last N solve events. Recording is O(1), allocation-free after the
// ring fills, and holds its mutex only across the slot write — never across
// I/O or solver work (the lockhold analyzer patrols this package).
//
// A nil *Recorder is a valid disabled recorder: Record is a no-op and
// Events returns nil.
type Recorder struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever recorded; buf[(next-1) % cap] is newest
}

// NewRecorder returns a recorder keeping the last n events; n <= 0 returns
// nil (disabled).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		return nil
	}
	return &Recorder{buf: make([]Event, 0, n)}
}

// Record stores the event, assigning its sequence number and evicting the
// oldest event once the ring is full.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e.Seq = r.next
	r.next++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[e.Seq%uint64(cap(r.buf))] = e
	}
	r.mu.Unlock()
}

// Events returns a copy of the recorded events, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	start := r.next % uint64(cap(r.buf))
	out = append(out, r.buf[start:]...)
	return append(out, r.buf[:start]...)
}

// Cap returns the ring capacity (0 when disabled).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return cap(r.buf)
}

// Recorded returns how many events have ever been recorded (including
// overwritten ones).
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}
