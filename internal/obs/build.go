package obs

import "runtime/debug"

// BuildInfo is what pubopt_build_info and the startup log line report about
// the running binary. Values degrade to "unknown" outside module builds
// (e.g. ad-hoc `go run` of a file set).
type BuildInfo struct {
	// Version is the main module's version ("(devel)" for a working-tree
	// build, a tag for a released one).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision and Modified come from the VCS stamp when present.
	Revision string `json:"revision,omitempty"`
	Modified bool   `json:"modified,omitempty"`
}

// Build returns the binary's build information.
func Build() BuildInfo {
	info := BuildInfo{Version: "unknown", GoVersion: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.GoVersion = bi.GoVersion
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}
