package obs

import (
	"context"
	"encoding/json"
	"log/slog"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestSolveStatsAccumulateAndSince(t *testing.T) {
	var total SolveStats
	a := SolveStats{Solves: 2, Constrained: 1, Evals: 30, WarmBrackets: 1, ColdBrackets: 1, Bisections: 3, Residual: 1e-13}
	b := SolveStats{Solves: 1, Evals: 5, WarmBrackets: 1, CycleRestarts: 2, Residual: 2e-14}
	total.Accumulate(a)
	total.Accumulate(b)
	want := SolveStats{Solves: 3, Constrained: 1, Evals: 35, WarmBrackets: 2, ColdBrackets: 1, Bisections: 3, CycleRestarts: 2, Residual: 2e-14}
	if total != want {
		t.Fatalf("accumulated %+v, want %+v", total, want)
	}
	// Accumulating an idle block must not clobber the residual.
	total.Accumulate(SolveStats{})
	if total.Residual != 2e-14 {
		t.Fatalf("idle accumulate overwrote residual: %g", total.Residual)
	}

	d := total.Since(a)
	if d.Solves != 1 || d.Evals != 5 || d.WarmBrackets != 1 || d.CycleRestarts != 2 {
		t.Fatalf("delta %+v", d)
	}
	if d.Residual != total.Residual {
		t.Fatalf("Since residual = %g, want current value %g", d.Residual, total.Residual)
	}
	if !(SolveStats{}).Zero() || total.Zero() {
		t.Fatal("Zero misclassifies")
	}
}

func TestCountersConcurrentAndNil(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(SolveStats{Solves: 1, Evals: 3, Bisections: 1})
			}
		}()
	}
	wg.Wait()
	got := c.Snapshot()
	if got.Solves != 8000 || got.Evals != 24000 || got.Bisections != 8000 {
		t.Fatalf("snapshot %+v", got)
	}

	var nilC *Counters
	nilC.Add(SolveStats{Solves: 1}) // must not panic
	if !nilC.Snapshot().Zero() {
		t.Fatal("nil Counters snapshot not zero")
	}
}

func TestTraceIDs(t *testing.T) {
	re := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if !re.MatchString(id) {
			t.Fatalf("trace ID %q is not 16 hex digits", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}

	ctx := context.Background()
	if TraceID(ctx) != "" {
		t.Fatal("empty context carries a trace ID")
	}
	ctx = WithTraceID(ctx, "deadbeefdeadbeef")
	if got := TraceID(ctx); got != "deadbeefdeadbeef" {
		t.Fatalf("TraceID = %q", got)
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(3)
	if r.Cap() != 3 {
		t.Fatalf("cap %d", r.Cap())
	}
	for i := 0; i < 5; i++ {
		r.Record(Event{Kind: "run", Name: string(rune('a' + i))})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	// Oldest first, holding the last 3 of the 5 recorded.
	for i, want := range []string{"c", "d", "e"} {
		if evs[i].Name != want {
			t.Fatalf("event %d = %q, want %q (events %+v)", i, evs[i].Name, want, evs)
		}
		if evs[i].Seq != uint64(i+2) {
			t.Fatalf("event %d seq = %d, want %d", i, evs[i].Seq, i+2)
		}
	}
	if r.Recorded() != 5 {
		t.Fatalf("recorded %d, want 5", r.Recorded())
	}

	// Partial fill returns only what exists, in order.
	r2 := NewRecorder(8)
	r2.Record(Event{Name: "x"})
	r2.Record(Event{Name: "y"})
	evs = r2.Events()
	if len(evs) != 2 || evs[0].Name != "x" || evs[1].Name != "y" {
		t.Fatalf("partial ring events %+v", evs)
	}
}

func TestRecorderDisabled(t *testing.T) {
	for _, r := range []*Recorder{nil, NewRecorder(0), NewRecorder(-5)} {
		r.Record(Event{Kind: "run"}) // must not panic
		if r.Events() != nil || r.Cap() != 0 || r.Recorded() != 0 {
			t.Fatalf("disabled recorder leaked state: %v %d %d", r.Events(), r.Cap(), r.Recorded())
		}
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(Event{Kind: "cell"})
				_ = r.Events()
			}
		}()
	}
	wg.Wait()
	if r.Recorded() != 2000 {
		t.Fatalf("recorded %d, want 2000", r.Recorded())
	}
	if len(r.Events()) != 64 {
		t.Fatalf("ring holds %d, want 64", len(r.Events()))
	}
}

func TestEventJSONOmitsEmpty(t *testing.T) {
	b, err := json.Marshal(Event{Kind: "run", Name: "x", DurationMS: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, forbidden := range []string{"trace", "key", "outcome", "error"} {
		if strings.Contains(s, `"`+forbidden+`"`) {
			t.Errorf("empty field %q serialized: %s", forbidden, s)
		}
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "ERROR": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestNewLogger(t *testing.T) {
	var text, js strings.Builder
	lg, err := NewLogger(&text, slog.LevelInfo, "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "k", "v")
	lg.Debug("hidden")
	if !strings.Contains(text.String(), "msg=hello") || !strings.Contains(text.String(), "k=v") {
		t.Fatalf("text log: %q", text.String())
	}
	if strings.Contains(text.String(), "hidden") {
		t.Fatal("debug line leaked at info level")
	}

	lg, err = NewLogger(&js, slog.LevelDebug, "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hello", "k", 1)
	var line map[string]any
	if err := json.Unmarshal([]byte(js.String()), &line); err != nil {
		t.Fatalf("json log is not JSON: %q (%v)", js.String(), err)
	}
	if line["msg"] != "hello" || line["k"] != float64(1) {
		t.Fatalf("json log line %v", line)
	}

	if _, err := NewLogger(&text, slog.LevelInfo, "xml"); err == nil {
		t.Fatal("NewLogger accepted unknown format")
	}

	NopLogger().Error("discarded", "k", "v") // must not panic, writes nowhere
}

func TestBuild(t *testing.T) {
	b := Build()
	if b.GoVersion == "" || b.Version == "" {
		t.Fatalf("build info has empty fields: %+v", b)
	}
}
