// Package obs is pubopt's observability layer: solver telemetry counters,
// request trace IDs, a bounded in-memory flight recorder, and structured
// logging helpers. It is stdlib-only and dependency-free — every other
// layer (internal/alloc, internal/core, internal/scenario, internal/service,
// cmd/pubopt) imports obs, so obs imports nothing of theirs.
//
// The package splits telemetry into two tiers matching the repo's
// performance contract (docs/PERFORMANCE.md):
//
//   - SolveStats is the hot tier: a plain counter block owned by each
//     solver workspace and incremented with ordinary integer adds on the
//     //pubopt:hotpath solve kernel. No atomics, no locks, no allocation,
//     no time reads — the warm-kernel 0 allocs/op gate and the detrand
//     analyzer both hold with it enabled.
//   - Counters is the cold tier: an atomic sink that aggregates SolveStats
//     deltas across goroutines. Solvers publish into it once per task, row,
//     or request — never per solve iteration — so contention is amortized
//     away from the kernel.
//
// Trace IDs, the Recorder, and the slog helpers serve the HTTP layer; see
// docs/OBSERVABILITY.md for the full model.
package obs

import "sync/atomic"

// SolveStats is the allocation-free solver telemetry block: what the
// equilibrium kernel (alloc.Workspace) and the class-game solver
// (core.Solver) count about their own work. All fields are cumulative over
// the owning solver's lifetime; sample with Since to get per-solve or
// per-cell deltas.
//
// The counters are deliberately plain (no atomics): a SolveStats belongs to
// exactly one solver, and solvers are single-goroutine by contract. Cross-
// goroutine aggregation goes through Counters.
type SolveStats struct {
	// Solves counts completed equilibrium solves (Workspace.Solve calls).
	Solves uint64 `json:"solves,omitempty"`
	// Constrained counts the solves where the link was a bottleneck and a
	// root search actually ran (the rest short-circuit to θ̂).
	Constrained uint64 `json:"constrained,omitempty"`
	// Evals counts aggregate-rate-map evaluations — the root-finder's unit
	// of work (each is one pass over the flattened CP population).
	Evals uint64 `json:"evals,omitempty"`
	// WarmBrackets counts constrained solves that reused the previous
	// level as a warm bracket probe.
	WarmBrackets uint64 `json:"warm_brackets,omitempty"`
	// ColdBrackets counts constrained solves bracketed from scratch (first
	// solve on a workspace, or a warm level outside the usable range).
	ColdBrackets uint64 `json:"cold_brackets,omitempty"`
	// Bisections counts safeguard bisection steps inside the hybrid
	// Illinois/secant search: stagnation-forced halvings plus secant steps
	// that left the bracket. A healthy warm sweep shows ~0.
	Bisections uint64 `json:"bisections,omitempty"`
	// CycleRestarts counts partition-cycle restarts in the class-choice
	// dynamics (core.Solver): phase-1 mover-cap halvings and phase-2
	// indifference-band widenings triggered by a revisited partition.
	CycleRestarts uint64 `json:"cycle_restarts,omitempty"`
	// Residual is the aggregate-rate residual bound |λ(ℓ)−ν| at the last
	// accepted equilibrium level — not a counter; it carries the most
	// recent solve's value (0 for uncongested solves and exact roots).
	Residual float64 `json:"residual,omitempty"`
}

// Accumulate adds d's counters into s. Residual keeps d's value when d has
// performed any solve (last-writer-wins, matching its "most recent solve"
// semantics).
func (s *SolveStats) Accumulate(d SolveStats) {
	s.Solves += d.Solves
	s.Constrained += d.Constrained
	s.Evals += d.Evals
	s.WarmBrackets += d.WarmBrackets
	s.ColdBrackets += d.ColdBrackets
	s.Bisections += d.Bisections
	s.CycleRestarts += d.CycleRestarts
	if d.Solves > 0 {
		s.Residual = d.Residual
	}
}

// Since returns the counter deltas accumulated after prev was sampled from
// the same stats block. Residual is the current (most recent) value, not a
// difference.
func (s SolveStats) Since(prev SolveStats) SolveStats {
	return SolveStats{
		Solves:        s.Solves - prev.Solves,
		Constrained:   s.Constrained - prev.Constrained,
		Evals:         s.Evals - prev.Evals,
		WarmBrackets:  s.WarmBrackets - prev.WarmBrackets,
		ColdBrackets:  s.ColdBrackets - prev.ColdBrackets,
		Bisections:    s.Bisections - prev.Bisections,
		CycleRestarts: s.CycleRestarts - prev.CycleRestarts,
		Residual:      s.Residual,
	}
}

// Zero reports whether the block holds no recorded work at all.
func (s SolveStats) Zero() bool {
	return s.Solves == 0 && s.Evals == 0 && s.CycleRestarts == 0
}

// Counters is the cross-goroutine aggregation sink for SolveStats: sweep
// workers, grid workers, and the HTTP service publish their solvers'
// deltas into one Counters with atomic adds. The zero value is ready to
// use; a nil *Counters is a valid no-op sink.
//
// Residual is not aggregated — a last-writer race across workers would be
// meaningless; read per-solver residuals from the flight recorder instead.
type Counters struct {
	solves        atomic.Uint64
	constrained   atomic.Uint64
	evals         atomic.Uint64
	warmBrackets  atomic.Uint64
	coldBrackets  atomic.Uint64
	bisections    atomic.Uint64
	cycleRestarts atomic.Uint64
}

// Add publishes a stats delta into the sink. Safe for concurrent use; a
// no-op on a nil receiver so call sites never need to branch.
func (c *Counters) Add(d SolveStats) {
	if c == nil {
		return
	}
	if d.Solves > 0 {
		c.solves.Add(d.Solves)
	}
	if d.Constrained > 0 {
		c.constrained.Add(d.Constrained)
	}
	if d.Evals > 0 {
		c.evals.Add(d.Evals)
	}
	if d.WarmBrackets > 0 {
		c.warmBrackets.Add(d.WarmBrackets)
	}
	if d.ColdBrackets > 0 {
		c.coldBrackets.Add(d.ColdBrackets)
	}
	if d.Bisections > 0 {
		c.bisections.Add(d.Bisections)
	}
	if d.CycleRestarts > 0 {
		c.cycleRestarts.Add(d.CycleRestarts)
	}
}

// Snapshot returns a point-in-time copy of the aggregated counters.
// Residual is always 0 (see the type comment).
func (c *Counters) Snapshot() SolveStats {
	if c == nil {
		return SolveStats{}
	}
	return SolveStats{
		Solves:        c.solves.Load(),
		Constrained:   c.constrained.Load(),
		Evals:         c.evals.Load(),
		WarmBrackets:  c.warmBrackets.Load(),
		ColdBrackets:  c.coldBrackets.Load(),
		Bisections:    c.bisections.Load(),
		CycleRestarts: c.cycleRestarts.Load(),
	}
}
