package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Structured logging: the service and `pubopt serve` log through log/slog
// with a small, fixed field vocabulary (docs/OBSERVABILITY.md lists it).
// This file only builds handlers; field conventions live at the call sites.

// LogFormats are the accepted -log-format values.
const (
	LogText = "text"
	LogJSON = "json"
)

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds a slog.Logger writing to w at the given level in the
// given format ("text" or "json").
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case LogText, "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case LogJSON:
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
}

// NopLogger returns a logger that discards everything — the default when a
// caller passes no logger, so call sites never nil-check.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}
