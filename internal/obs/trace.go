package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// Trace IDs are 64-bit values rendered as 16 lowercase hex digits. They
// identify one request end to end: the access log line, the solve log line,
// the flight-recorder events, and the optional `trace` fields on /v1/batch
// NDJSON frames all carry the same ID, so an operator can pivot from any
// one of them to the rest.
//
// IDs are generated from a process-unique random base XORed with a
// monotonic counter: collision-free within a process, overwhelmingly
// unlikely to collide across replicas, and — deliberately — not derived
// from wall-clock time, so ID generation never perturbs solver
// determinism even if it leaks into a solver package by accident.

// traceBase is the per-process random component of trace IDs.
var traceBase = func() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively unreachable; degrade to
		// counter-only IDs (still unique in-process) rather than failing.
		return 0
	}
	return binary.LittleEndian.Uint64(b[:])
}()

var traceCounter atomic.Uint64

// NewTraceID returns a fresh 16-hex-digit trace ID.
func NewTraceID() string {
	n := traceCounter.Add(1)
	// splitmix64-style finalizer spreads the counter across all bits so
	// consecutive IDs do not share a prefix.
	x := traceBase ^ (n * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return fmt.Sprintf("%016x", x)
}

// traceKey is the context key carrying the request's trace ID.
type traceKey struct{}

// WithTraceID returns a context carrying the trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceID returns the context's trace ID, or "" when the context carries
// none (a non-HTTP caller, or tracing disabled).
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}
