// Package mm1 implements the M/M/1-delay abstraction of congestion that the
// network-economics literature preceding the paper builds on (Choi–Kim [8],
// discussed in §V of the paper). It exists as a baseline: the paper argues
// that faithfully modelling closed-loop transport (TCP ≈ max-min, the alloc
// package) is "a more appropriate approach" than abstracting congestion as
// queueing delay, and the ablation benchmarks compare the two abstractions
// on the same content-provider populations.
//
// In this model a service class is an M/M/1 queue: per-capita offered load
// λ = Σ_i λ_i against per-capita capacity ν gives mean sojourn time
// W = 1/(ν − λ). Content provider i's users tolerate delay with sensitivity
// γ_i (mapped from the paper's throughput sensitivity β_i), so its load is
//
//	λ_i(W) = λ̂_i · exp(−γ_i · W)
//
// with λ̂_i = α_i·θ̂_i the unconstrained per-capita load. The congestion
// equilibrium is the unique W solving λ(W) = ν − 1/W.
package mm1

import (
	"fmt"
	"math"

	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// gamma maps a CP to its delay sensitivity: the paper's β_i when the CP uses
// the exponential demand family, 1 otherwise.
func gamma(cp *traffic.CP) float64 {
	if beta, ok := cp.Beta(); ok {
		return math.Max(beta, 1e-6)
	}
	return 1
}

// Equilibrium is the M/M/1 congestion equilibrium of one service class.
type Equilibrium struct {
	Nu    float64   // class per-capita capacity
	W     float64   // mean sojourn time (delay)
	Loads []float64 // per-CP carried per-capita load λ_i
	Pop   traffic.Population
}

// TotalLoad returns Σ λ_i.
func (e *Equilibrium) TotalLoad() float64 { return numeric.Sum(e.Loads) }

// Phi returns the per-capita consumer surplus Σ φ_i·λ_i under the delay
// abstraction (utility per unit carried traffic, as in the paper).
func (e *Equilibrium) Phi() float64 {
	terms := make([]float64, len(e.Loads))
	for i := range e.Loads {
		terms[i] = e.Pop[i].Phi * e.Loads[i]
	}
	return numeric.Sum(terms)
}

// Solve computes the class equilibrium on per-capita capacity nu. A class
// with no capacity or no members carries nothing (W is +Inf and 0
// respectively by convention).
func Solve(nu float64, pop traffic.Population) *Equilibrium {
	if nu < 0 || math.IsNaN(nu) {
		panic(fmt.Sprintf("mm1: Solve with ν=%g", nu))
	}
	eq := &Equilibrium{Nu: nu, Pop: pop, Loads: make([]float64, len(pop))}
	if len(pop) == 0 {
		return eq
	}
	//pubopt:allow(floatcmp): ν=0 is the exact zero-capacity sentinel; any positive ν yields finite delay
	if nu == 0 {
		eq.W = math.Inf(1)
		return eq
	}
	loadAt := func(w float64) float64 {
		var s float64
		for i := range pop {
			s += pop[i].UnconstrainedPerCapitaRate() * math.Exp(-gamma(&pop[i])*w)
		}
		return s
	}
	// Root of f(W) = load(W) − (ν − 1/W), strictly decreasing on (1/ν, ∞).
	f := func(w float64) float64 { return loadAt(w) - nu + 1/w }
	lo := 1/nu + 1e-15
	hi := lo * 2
	for f(hi) > 0 && hi < 1e18 {
		hi *= 2
	}
	w := numeric.BisectDecreasing(f, lo, hi, 1e-12*hi)
	eq.W = w
	for i := range pop {
		eq.Loads[i] = pop[i].UnconstrainedPerCapitaRate() * math.Exp(-gamma(&pop[i])*w)
	}
	return eq
}

// CapacityForDelay inverts Solve in capacity: the per-capita capacity ν at
// which the class equilibrium's mean sojourn time equals w exactly,
//
//	ν = λ(w) + 1/w = Σ_i λ̂_i·exp(−γ_i·w) + 1/w,
//
// in closed form — at delay w every CP's carried load is determined, and the
// queue's residual capacity over that load must be 1/w. It is the actuator
// primitive of internal/dynamics autoscaling: Solve(CapacityForDelay(w, pop),
// pop).W == w up to root-finder tolerance. Panics on non-positive or
// non-finite w (matching Solve's domain: any ν > 0 yields finite positive W).
func CapacityForDelay(w float64, pop traffic.Population) float64 {
	if !(w > 0) || math.IsInf(w, 0) {
		panic(fmt.Sprintf("mm1: CapacityForDelay with W=%g", w))
	}
	nu := 1 / w
	for i := range pop {
		nu += pop[i].UnconstrainedPerCapitaRate() * math.Exp(-gamma(&pop[i])*w)
	}
	return nu
}

// ClassOutcome is the M/M/1 analogue of the core package's two-class
// equilibrium: a premium M/M/1 queue priced at c and a free ordinary queue.
type ClassOutcome struct {
	Kappa, C  float64
	Nu        float64
	InPremium []bool
	Ordinary  *Equilibrium
	Premium   *Equilibrium
	Pop       traffic.Population
}

// Psi returns the ISP's per-capita premium revenue c·λ_P.
func (o *ClassOutcome) Psi() float64 { return o.C * o.Premium.TotalLoad() }

// Phi returns the combined per-capita consumer surplus of both classes.
func (o *ClassOutcome) Phi() float64 { return o.Ordinary.Phi() + o.Premium.Phi() }

// SolveClasses computes a class-choice equilibrium under the delay
// abstraction with the same sequential better-response dynamics as the core
// package: a CP joins the premium queue iff (v−c)·e^(−γW_P) > v·e^(−γW_O),
// i.e. the delay advantage is worth the price. maxIter bounds the dynamics.
func SolveClasses(kappa, c, nu float64, pop traffic.Population, maxIter int) *ClassOutcome {
	if kappa < 0 || kappa > 1 || c < 0 {
		panic(fmt.Sprintf("mm1: invalid strategy (κ=%g, c=%g)", kappa, c))
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	out := &ClassOutcome{Kappa: kappa, C: c, Nu: nu, Pop: pop, InPremium: make([]bool, len(pop))}
	for i := range pop {
		out.InPremium[i] = kappa > 0 && pop[i].V > c
	}
	split := func() (o, p traffic.Population) {
		for i := range pop {
			if out.InPremium[i] {
				p = append(p, pop[i])
			} else {
				o = append(o, pop[i])
			}
		}
		return o, p
	}
	for iter := 0; iter < maxIter; iter++ {
		o, p := split()
		eqO := Solve((1-kappa)*nu, o)
		eqP := Solve(kappa*nu, p)
		moved := false
		for i := range pop {
			cp := &pop[i]
			uO := cp.V * math.Exp(-gamma(cp)*eqO.W)
			uP := (cp.V - c) * math.Exp(-gamma(cp)*eqP.W)
			want := uP > uO
			if want != out.InPremium[i] {
				out.InPremium[i] = want
				moved = true
				break // one CP per round: the stable Gauss–Seidel regime
			}
		}
		if !moved {
			break
		}
	}
	o, p := split()
	out.Ordinary = Solve((1-kappa)*nu, o)
	out.Premium = Solve(kappa*nu, p)
	return out
}
