package mm1

import (
	"math"
	"testing"
)

// Property battery for the queueing primitives the dynamics actuator leans
// on. Each property is checked over several seeded ensembles and a capacity
// grid, so a regression in the root finder or the closed-form inverse shows
// up as a law violation, not a drifted constant.

// TestLittlesLawResidual pins the M/M/1 identity at the solved point: the
// residual capacity over the carried load is exactly the service headroom,
// W·(ν − λ) = 1. This is Little's law combined with the exponential-server
// sojourn time — the relation CapacityForDelay inverts in closed form.
func TestLittlesLawResidual(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		pop := ensemble(seed, 60)
		for _, nu := range []float64{0.5, 1, 2, 5, 10, 40} {
			eq := Solve(nu, pop)
			if r := math.Abs(eq.W*(eq.Nu-eq.TotalLoad()) - 1); r > 1e-9 {
				t.Errorf("seed %d ν=%g: |W·(ν−λ)−1| = %g, want < 1e-9", seed, nu, r)
			}
		}
	}
}

// TestUtilizationAndLoadMonotoneInCapacity checks the monotone structure
// of utilization ρ = λ/ν: carried load strictly grows with capacity (lower
// delay unlocks suppressed demand), ρ stays strictly inside (0, 1) — the
// queue never saturates and never idles with demand present — and ρ obeys
// the exact identity ρ = 1 − 1/(ν·W). Note ρ itself is deliberately NOT
// asserted monotone: it rises from ≈0 at tiny ν (where W ≈ 1/ν and nearly
// all demand is suppressed), peaks, and only then falls toward λ̂/ν — a
// shape this test pins by checking ρ is unimodal-bounded, not decreasing.
func TestUtilizationAndLoadMonotoneInCapacity(t *testing.T) {
	for seed := uint64(4); seed <= 6; seed++ {
		pop := ensemble(seed, 60)
		prevLoad := 0.0
		for _, nu := range []float64{0.25, 0.5, 1, 2, 4, 8, 16, 64} {
			eq := Solve(nu, pop)
			rho := eq.TotalLoad() / eq.Nu
			if rho <= 0 || rho >= 1 {
				t.Fatalf("seed %d ν=%g: utilization %g outside (0, 1)", seed, nu, rho)
			}
			if r := math.Abs(rho - (1 - 1/(eq.Nu*eq.W))); r > 1e-9 {
				t.Errorf("seed %d ν=%g: ρ identity residual %g, want < 1e-9", seed, nu, r)
			}
			if eq.TotalLoad() <= prevLoad {
				t.Errorf("seed %d ν=%g: carried load %g did not grow from %g", seed, nu, eq.TotalLoad(), prevLoad)
			}
			prevLoad = eq.TotalLoad()
		}
		// Far past saturation the unlocked demand is exhausted: utilization
		// must be strictly falling between well-provisioned capacities.
		hi1 := Solve(64, pop)
		hi2 := Solve(128, pop)
		if r1, r2 := hi1.TotalLoad()/hi1.Nu, hi2.TotalLoad()/hi2.Nu; r2 >= r1 {
			t.Errorf("seed %d: utilization %g→%g did not fall in the well-provisioned regime", seed, r1, r2)
		}
	}
}

// TestDelayBlowsUpAsCapacityVanishes checks W → ∞ as ν → 0⁺ (ρ → 1): the
// queue saturates and the sojourn time grows without bound, monotonically.
func TestDelayBlowsUpAsCapacityVanishes(t *testing.T) {
	pop := ensemble(7, 40)
	prev := 0.0
	for _, nu := range []float64{1, 0.1, 0.01, 1e-3, 1e-4, 1e-5} {
		eq := Solve(nu, pop)
		if eq.W <= prev {
			t.Fatalf("ν=%g: W=%g did not grow from %g as capacity shrank", nu, eq.W, prev)
		}
		prev = eq.W
	}
	if prev < 1e4 {
		t.Fatalf("W(ν=1e-5) = %g; delay must blow up toward saturation", prev)
	}
}

// TestCapacityForDelayInvertsSolve pins the closed-form inverse against the
// root finder from both directions: Solve at the returned capacity lands on
// the requested delay, and CapacityForDelay at a solved delay returns the
// capacity (each within root-finder tolerance).
func TestCapacityForDelayInvertsSolve(t *testing.T) {
	for seed := uint64(8); seed <= 10; seed++ {
		pop := ensemble(seed, 60)
		for _, w := range []float64{0.02, 0.1, 0.5, 1, 5, 50} {
			nu := CapacityForDelay(w, pop)
			if !(nu > 1/w) {
				t.Fatalf("seed %d W=%g: capacity %g below the bare headroom 1/W", seed, w, nu)
			}
			if got := Solve(nu, pop).W; math.Abs(got-w) > 1e-6*w {
				t.Errorf("seed %d: Solve(CapacityForDelay(%g)).W = %g", seed, w, got)
			}
		}
		for _, nu := range []float64{0.5, 2, 10} {
			eq := Solve(nu, pop)
			if got := CapacityForDelay(eq.W, pop); math.Abs(got-nu) > 1e-6*nu {
				t.Errorf("seed %d: CapacityForDelay(Solve(%g).W) = %g", seed, nu, got)
			}
		}
	}
}

// TestCapacityForDelayMonotoneAndEmpty: a tighter delay target needs more
// capacity, and with no subscribers the queue still needs 1/W of service
// headroom to answer in W.
func TestCapacityForDelayMonotoneAndEmpty(t *testing.T) {
	pop := ensemble(11, 60)
	prev := math.Inf(1)
	for _, w := range []float64{0.05, 0.1, 0.5, 1, 10} {
		nu := CapacityForDelay(w, pop)
		if nu >= prev {
			t.Fatalf("W=%g: capacity %g did not fall as the target loosened from %g", w, nu, prev)
		}
		prev = nu
	}
	if got, want := CapacityForDelay(0.25, nil), 4.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("empty population: CapacityForDelay(0.25) = %g, want %g", got, want)
	}
}

// TestCapacityForDelayPanicsOutsideDomain pins the domain contract shared
// with Solve: only positive finite delays are meaningful.
func TestCapacityForDelayPanicsOutsideDomain(t *testing.T) {
	pop := ensemble(12, 10)
	for _, w := range []float64{0, -1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CapacityForDelay(%g) did not panic", w)
				}
			}()
			CapacityForDelay(w, pop)
		}()
	}
}
