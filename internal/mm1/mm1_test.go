package mm1

import (
	"math"
	"testing"

	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

func ensemble(seed uint64, n int) traffic.Population {
	cfg := traffic.PaperEnsemble(traffic.PhiCorrelated)
	cfg.N = n
	return cfg.Generate(numeric.NewRNG(seed))
}

func TestSolveStability(t *testing.T) {
	pop := ensemble(1, 50)
	eq := Solve(5, pop)
	// The carried load must leave headroom 1/W: λ = ν − 1/W < ν.
	if eq.TotalLoad() >= eq.Nu {
		t.Fatalf("load %v >= capacity %v (unstable queue)", eq.TotalLoad(), eq.Nu)
	}
	if eq.W <= 0 {
		t.Fatalf("W = %v, want positive", eq.W)
	}
	// Self-consistency: λ(W) = ν − 1/W.
	if got, want := eq.TotalLoad(), eq.Nu-1/eq.W; math.Abs(got-want) > 1e-6*eq.Nu {
		t.Fatalf("fixed point violated: λ=%v, ν−1/W=%v", got, want)
	}
}

func TestSolveMoreCapacityLessDelay(t *testing.T) {
	pop := ensemble(2, 50)
	prevW := math.Inf(1)
	prevPhi := -1.0
	for _, nu := range []float64{1, 2, 5, 10, 50} {
		eq := Solve(nu, pop)
		if eq.W >= prevW {
			t.Fatalf("delay did not fall with capacity: %v -> %v at ν=%v", prevW, eq.W, nu)
		}
		if phi := eq.Phi(); phi < prevPhi {
			t.Fatalf("surplus fell with capacity at ν=%v", nu)
		} else {
			prevPhi = phi
		}
		prevW = eq.W
	}
}

func TestSolveEdgeCases(t *testing.T) {
	pop := ensemble(3, 10)
	if eq := Solve(0, pop); !math.IsInf(eq.W, 1) || eq.TotalLoad() != 0 {
		t.Error("ν=0 should give infinite delay, zero load")
	}
	if eq := Solve(5, nil); eq.TotalLoad() != 0 || eq.Phi() != 0 {
		t.Error("empty population should carry nothing")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative ν accepted")
		}
	}()
	Solve(-1, pop)
}

func TestSolveClassesKappaZero(t *testing.T) {
	pop := ensemble(4, 40)
	out := SolveClasses(0, 0.5, 5, pop, 0)
	for i, p := range out.InPremium {
		if p {
			t.Fatalf("CP %d in premium under κ=0", i)
		}
	}
	if out.Psi() != 0 {
		t.Fatal("κ=0 revenue must be zero")
	}
}

func TestSolveClassesRevenuePeaksInterior(t *testing.T) {
	pop := ensemble(5, 60)
	nu := 3.0
	var prev float64
	peaked := false
	for _, c := range numeric.Linspace(0.02, 0.98, 25) {
		out := SolveClasses(1, c, nu, pop, 0)
		psi := out.Psi()
		if psi < prev {
			peaked = true
		}
		prev = psi
	}
	if !peaked {
		t.Error("M/M/1 revenue curve should peak and decline within c ∈ (0,1)")
	}
	// At unaffordable prices the premium queue is empty.
	out := SolveClasses(1, 1.2, nu, pop, 0)
	if out.Psi() != 0 {
		t.Errorf("Ψ at c=1.2 is %v, want 0", out.Psi())
	}
}

func TestSolveClassesPremiumHasLowerDelay(t *testing.T) {
	// Whenever both queues carry CPs, the premium queue must offer lower
	// delay — otherwise nobody would pay.
	pop := ensemble(6, 60)
	out := SolveClasses(0.5, 0.3, 4, pop, 0)
	nP := 0
	for _, p := range out.InPremium {
		if p {
			nP++
		}
	}
	if nP == 0 || nP == len(pop) {
		t.Skip("degenerate partition on this draw")
	}
	if out.Premium.W >= out.Ordinary.W {
		t.Errorf("premium delay %v >= ordinary delay %v", out.Premium.W, out.Ordinary.W)
	}
}

func TestSolveClassesPanicsOnBadStrategy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SolveClasses(1.5, 0, 1, ensemble(7, 5), 0)
}

// The headline qualitative difference between the abstractions (§V): under
// M/M/1 the queue always leaves capacity headroom (λ < ν strictly, delay
// cost), while the TCP/max-min model is work-conserving (λ = ν under
// congestion). The ablation bench quantifies this; here we pin it.
func TestMM1NeverWorkConserving(t *testing.T) {
	pop := ensemble(8, 80)
	for _, nu := range []float64{1, 5, 20} {
		eq := Solve(nu, pop)
		if eq.TotalLoad() > eq.Nu*(1-1e-9) {
			t.Fatalf("M/M/1 carried the full capacity at ν=%v", nu)
		}
	}
}
