package analysis

// The fixture harness: a dependency-free stand-in for
// golang.org/x/tools/go/analysis/analysistest. Each fixture is a directory
// under testdata/ holding one package; expected findings are written as
// trailing comments on the offending line:
//
//	x := make([]int, 4) // want "make allocates"
//
// The quoted string is a regexp matched against the diagnostic message;
// several `// want "a" "b"` patterns on one line expect several findings.
// Lines without a want comment must produce no finding. Dependencies of a
// fixture package live under <fixture>/src/<importpath>/ and are
// type-checked recursively; everything else resolves through the stdlib
// source importer.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches one expectation inside a `// want ...` comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// fixtureLoader typechecks fixture packages, resolving example.com/...
// imports from the fixture's src/ tree and everything else from the
// standard library's source.
type fixtureLoader struct {
	fset   *token.FileSet
	root   string // fixture dir
	std    types.Importer
	loaded map[string]*types.Package
	info   *types.Info
	files  map[string][]*ast.File // import path -> parsed files
}

func newFixtureLoader(fset *token.FileSet, root string) *fixtureLoader {
	return &fixtureLoader{
		fset:   fset,
		root:   root,
		std:    importer.ForCompiler(fset, "source", nil),
		loaded: make(map[string]*types.Package),
		info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Uses:       make(map[*ast.Ident]types.Object),
			Defs:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
		files: make(map[string][]*ast.File),
	}
}

func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.root, "src", filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, err := l.check(path, dir)
		if err != nil {
			return nil, err
		}
		l.loaded[path] = pkg
		return pkg, nil
	}
	return l.std.Import(path)
}

// check parses and typechecks the package in dir under the given import
// path, recording type info into the shared Info maps.
func (l *fixtureLoader) check(path, dir string) (*types.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %s: no .go files in %s", path, dir)
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, l.info)
	if err != nil {
		return nil, fmt.Errorf("typechecking fixture %s: %w", path, err)
	}
	l.files[path] = files
	return pkg, nil
}

// loadFixture typechecks testdata/<name> as package path pkgPath.
func loadFixture(t *testing.T, name, pkgPath string) (*Package, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	root := filepath.Join("testdata", name)
	l := newFixtureLoader(fset, root)
	pkg, err := l.check(pkgPath, root)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{
		Fset:    fset,
		Files:   l.files[pkgPath],
		Pkg:     pkg,
		PkgPath: pkgPath,
		Info:    l.info,
	}, fset
}

// fixtureDiags runs analyzers over a fixture and returns the surviving
// diagnostics, for tests that assert on counts rather than want comments.
func fixtureDiags(t *testing.T, name, pkgPath string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	pkg, _ := loadFixture(t, name, pkgPath)
	diags, err := Run(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// runFixture typechecks testdata/<name> as package path pkgPath, runs the
// analyzers through the production Run entry point (so suppression
// filtering is exercised), and diffs findings against want comments.
func runFixture(t *testing.T, name, pkgPath string, analyzers ...*Analyzer) {
	t.Helper()
	fpkg, fset := loadFixture(t, name, pkgPath)
	files := fpkg.Files

	diags, err := Run(fpkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}

	type expectation struct {
		file    string
		line    int
		pattern string
	}
	var wants []expectation
	for _, f := range files {
		tf := fset.File(f.Pos())
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx+len("// want "):], -1) {
					wants = append(wants, expectation{
						file:    filepath.Base(tf.Name()),
						line:    tf.Line(c.Pos()),
						pattern: m[1],
					})
				}
			}
		}
	}

	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		file, line := filepath.Base(pos.Filename), pos.Line
		found := false
		for i, w := range wants {
			if matched[i] || w.file != file || w.line != line {
				continue
			}
			re, err := regexp.Compile(w.pattern)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", file, line, w.pattern, err)
			}
			if re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding at %s:%d: [%s] %s", file, line, d.Analyzer, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("missing finding at %s:%d matching %q", w.file, w.line, w.pattern)
		}
	}
}
