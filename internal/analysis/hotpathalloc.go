package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathMarker is the directive that opts a function into hotpathalloc
// scrutiny. Place it in the function's doc comment:
//
//	// flatAggregate is the devirtualized inner loop.
//	//
//	//pubopt:hotpath
//	func (w *Workspace) flatAggregate(level float64) float64 { ... }
const HotPathMarker = "//pubopt:hotpath"

// HotPathAlloc enforces the 0 allocs/op contract of the warm solve path
// (internal/alloc.Workspace, the BulkAllocator fast paths, sweep.RunRows's
// per-cell work, internal/refine's curvature screen and surrogate
// evaluation) at vet time, before the CI benchmark gate can even run.
//
// Inside a function marked //pubopt:hotpath it flags every construct the gc
// compiler turns into a heap allocation on at least some escape-analysis
// outcome:
//
//   - slice and map composite literals, and &T{...} (heap-escaping literal);
//   - make and new;
//   - append (growth allocates; preallocate in the workspace instead);
//   - func literals capturing enclosing variables (closure allocation);
//   - any call into package fmt (formatting allocates and boxes);
//   - implicit interface conversions at call sites and explicit
//     conversions to interface types (boxing).
//
// One-time setup cost inside a hot function (e.g. a per-call worker spawn
// amortized over thousands of cells) is suppressed explicitly with
// //pubopt:allow(hotpathalloc): <why this is not per-iteration>.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocation-inducing constructs in //pubopt:hotpath functions",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcDocMarked(fd, HotPathMarker) {
				continue
			}
			checkHotPathBody(pass, fd)
		}
	}
	return nil
}

func checkHotPathBody(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "hot path: slice literal allocates")
			case *types.Map:
				pass.Reportf(n.Pos(), "hot path: map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "hot path: &composite literal escapes to the heap")
				}
			}
		case *ast.FuncLit:
			if capturesEnclosing(info, fd, n) {
				pass.Reportf(n.Pos(), "hot path: func literal captures enclosing variables (closure allocates)")
			}
		case *ast.CallExpr:
			checkHotPathCall(pass, n)
		}
		return true
	})
}

// checkHotPathCall flags allocating builtins, fmt calls, and interface
// boxing at call boundaries.
func checkHotPathCall(pass *Pass, call *ast.CallExpr) {
	info := pass.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "make":
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				pass.Reportf(call.Pos(), "hot path: make allocates; reuse a workspace buffer")
				return
			}
		case "new":
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				pass.Reportf(call.Pos(), "hot path: new allocates; reuse a workspace field")
				return
			}
		case "append":
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				pass.Reportf(call.Pos(), "hot path: append may grow and allocate; preallocate to capacity")
				return
			}
		}
	}

	if path, name := calleePkgPath(info, call); path == "fmt" {
		pass.Reportf(call.Pos(), "hot path: fmt.%s allocates; move formatting off the hot path", name)
		return
	}

	// Explicit conversion to an interface type: I(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) {
			if len(call.Args) == 1 && !types.IsInterface(info.TypeOf(call.Args[0])) {
				pass.Reportf(call.Pos(), "hot path: conversion to interface boxes its operand")
			}
		}
		return
	}

	// Implicit boxing: a concrete argument passed to an interface parameter.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice: no boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "hot path: argument boxes %s into interface %s", at, pt)
	}
}

// capturesEnclosing reports whether lit references a variable declared in
// fd's scope outside lit itself — the condition under which the compiler
// must heap-allocate a closure (and usually the captured variables too).
func capturesEnclosing(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Declared inside the enclosing function but outside the literal?
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			captured = true
		}
		return true
	})
	return captured
}
