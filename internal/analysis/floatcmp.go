package analysis

import (
	"go/ast"
	"go/token"
)

// FloatCmp bans ==, != and switch dispatch on floating-point operands.
//
// The equilibrium maps in this repo are continuous functions solved to a
// tolerance (numeric.DefaultTol); two floats that are "the same" for any
// economic purpose routinely differ in the last bits, so exact comparison
// is almost always a latent bug — the class of bug that made ~13 files
// drift before this analyzer existed. Semantic comparisons must go through
// the tolerance helpers in internal/numeric (AlmostEqual, or a named
// domain predicate such as core.Strategy.Neutral that documents its exact
// check once).
//
// Deliberate exact comparisons remain legal — IEEE-754 equality is exact
// and well-defined — but each one must say why:
//
//	if fx == 0 { //pubopt:allow(floatcmp): exact root, no tolerance needed
//
// Test files are exempt: tests legitimately pin exact values.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "forbid ==/!=/switch on float operands outside tolerance helpers and tests",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if exprIsFloat(pass.Info, n.X) || exprIsFloat(pass.Info, n.Y) {
					pass.Reportf(n.Pos(), "float compared with %s; use a numeric tolerance helper (or annotate a deliberate exact check)", n.Op)
				}
			case *ast.SwitchStmt:
				if n.Tag != nil && exprIsFloat(pass.Info, n.Tag) {
					pass.Reportf(n.Tag.Pos(), "switch on a float value compares exactly; use if/else with tolerance helpers")
				}
			}
			return true
		})
	}
	return nil
}
