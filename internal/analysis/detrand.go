package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// detRandPackages are the package-path suffixes detrand patrols: everything
// on the solve path whose output must be bit-reproducible from a seed. The
// content-addressed cache (internal/cache) and the Tier-2 validation
// harness both assume that identical inputs produce identical bytes; a
// stray math/rand global or wall-clock read silently breaks that contract.
var detRandPackages = []string{
	"internal/alloc",
	"internal/core",
	"internal/dynamics",
	"internal/mm1",
	"internal/scenario",
	"internal/sweep",
	"internal/traffic",
	"internal/netsim",
	"internal/numeric",
	"internal/refine",
}

// detRandSeededConstructors are the math/rand functions that are allowed:
// they build an explicitly seeded generator rather than touching the
// package-global source.
var detRandSeededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes a *Rand; the source is already explicit
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// DetRand keeps ambient nondeterminism out of the solver packages:
//
//   - no math/rand (or math/rand/v2) package-level functions — they draw
//     from the global, non-seeded source; plumb a seeded *rand.Rand (see
//     internal/numeric/rng.go) instead;
//   - no time.Now / time.Since / time.Until — solver output must not
//     depend on the wall clock (timing belongs in callers, benchmarks,
//     and the service layer);
//   - no iteration over maps except order-insensitive collection loops
//     (gathering keys for sorting, counting, deleting) — map range order
//     is randomized by the runtime, so any other use leaks it into
//     results.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid ambient randomness, wall-clock reads, and map-order dependence in solver packages",
	Run:  runDetRand,
}

func runDetRand(pass *Pass) error {
	patrolled := false
	for _, suffix := range detRandPackages {
		if strings.HasSuffix(pass.PkgPath, suffix) {
			patrolled = true
			break
		}
	}
	if !patrolled {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDetRandCall(pass, n)
			case *ast.RangeStmt:
				checkDetRandRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkDetRandCall(pass *Pass, call *ast.CallExpr) {
	path, name := calleePkgPath(pass.Info, call)
	switch path {
	case "math/rand", "math/rand/v2":
		// Methods on *rand.Rand resolve here too; only package-level
		// functions touch the global source, so require a direct
		// package-qualified selector.
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || pkgOf(pass.Info, sel) == nil {
			return
		}
		if !detRandSeededConstructors[name] {
			pass.Reportf(call.Pos(), "%s.%s draws from the global random source; plumb a seeded *rand.Rand through instead", path, name)
		}
	case "time":
		switch name {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "time.%s reads the wall clock inside a solver package; results must be reproducible from the seed alone", name)
		}
	}
}

// checkDetRandRange flags `for ... range m` over a map unless the body is
// an order-insensitive collection loop.
func checkDetRandRange(pass *Pass, rs *ast.RangeStmt) {
	t := pass.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if mapRangeOrderInsensitive(rs) {
		return
	}
	pass.Reportf(rs.Pos(), "range over a map has randomized order; sort the keys first (or keep the body to order-insensitive collection)")
}

// mapRangeOrderInsensitive recognizes loop bodies whose effect cannot
// depend on iteration order: every statement appends to a slice, deletes
// from a map, or increments/decrements a counter. (Gather-then-sort, the
// canonical deterministic pattern, is exactly the append form.)
func mapRangeOrderInsensitive(rs *ast.RangeStmt) bool {
	if len(rs.Body.List) == 0 {
		return true
	}
	for _, st := range rs.Body.List {
		switch st := st.(type) {
		case *ast.AssignStmt:
			// x = append(x, ...) — including += for counters.
			if len(st.Lhs) == 1 && len(st.Rhs) == 1 {
				if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
						continue
					}
				}
				if st.Tok.IsOperator() && st.Tok.String() == "+=" {
					continue
				}
			}
			return false
		case *ast.IncDecStmt:
			continue
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
					continue
				}
			}
			return false
		default:
			return false
		}
	}
	return true
}
