package analysis

import "testing"

// Each analyzer gets one fixture demonstrating at least one true-positive
// catch and one allowed pattern (including the suppression-comment path).
// Fixture package paths mimic the real repo layout so the path-gated
// analyzers (detrand, lockhold, streamcheck) see themselves in scope.

func TestHotPathAlloc(t *testing.T) {
	runFixture(t, "hotpathalloc", "example.com/internal/alloc", HotPathAlloc)
}

func TestFloatCmp(t *testing.T) {
	runFixture(t, "floatcmp", "example.com/internal/core", FloatCmp)
}

func TestDetRand(t *testing.T) {
	runFixture(t, "detrand", "example.com/internal/core", DetRand)
}

// TestDetRandOutOfScope pins the gate: the same file in an unpatrolled
// package (the service layer legitimately reads the clock for metrics)
// produces no findings, so every `// want` expectation must fail — which
// we assert by running against a package path outside the patrol list and
// expecting zero diagnostics from the analyzer itself.
func TestDetRandOutOfScope(t *testing.T) {
	diags := fixtureDiags(t, "detrand", "example.com/internal/service", DetRand)
	if len(diags) != 0 {
		t.Fatalf("detrand fired outside its patrolled packages: %v", diags)
	}
}

func TestLockHold(t *testing.T) {
	runFixture(t, "lockhold", "example.com/internal/cache", LockHold)
}

// TestLockHoldPatrolsObs pins the scope extension: internal/obs holds the
// flight recorder's mutex on every solve, so it is patrolled like the
// cache and service packages.
func TestLockHoldPatrolsObs(t *testing.T) {
	runFixture(t, "lockhold", "example.com/internal/obs", LockHold)
}

func TestLockHoldOutOfScope(t *testing.T) {
	diags := fixtureDiags(t, "lockhold", "example.com/internal/alloc", LockHold)
	if len(diags) != 0 {
		t.Fatalf("lockhold fired outside its patrolled packages: %v", diags)
	}
}

func TestStreamCheck(t *testing.T) {
	runFixture(t, "streamcheck", "example.com/internal/service", StreamCheck)
}

func TestStreamCheckOutOfScope(t *testing.T) {
	diags := fixtureDiags(t, "streamcheck", "example.com/internal/sweep", StreamCheck)
	if len(diags) != 0 {
		t.Fatalf("streamcheck fired outside its patrolled package: %v", diags)
	}
}

func TestAllowCheck(t *testing.T) {
	runFixture(t, "allowcheck", "example.com/internal/core", AllowCheck)
}

// TestAllowSyntax pins the reason requirement at the regexp level: a bare
// directive, with or without trailing whitespace, never counts as a valid
// suppression.
func TestAllowSyntax(t *testing.T) {
	invalid := []string{
		"//pubopt:allow(floatcmp)",
		"//pubopt:allow(floatcmp):",
		"//pubopt:allow(floatcmp):   ",
		"//pubopt:allow(floatcmp) no colon",
		"//pubopt:allow(float cmp): reason",
	}
	for _, s := range invalid {
		if allowRe.MatchString(s) {
			t.Errorf("allowRe accepted %q; suppressions must carry a reason", s)
		}
	}
	valid := "//pubopt:allow(hotpathalloc): grow path runs once"
	m := allowRe.FindStringSubmatch(valid)
	if m == nil || m[1] != "hotpathalloc" {
		t.Errorf("allowRe rejected the canonical form %q", valid)
	}
}

// TestSuiteNamesUnique guards the allow-comment namespace.
func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Suite() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) < 5 {
		t.Fatalf("suite has %d analyzers, want at least 5", len(seen))
	}
}
