package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// lockHoldPackages are the package-path suffixes lockhold patrols. The
// cache store's mutex serializes every request's fast path, the service
// metrics mutex sits inside each HTTP handler, and the flight recorder's
// mutex is taken on every solve; blocking under any of them turns one slow
// solve into a server-wide stall.
var lockHoldPackages = []string{
	"internal/cache",
	"internal/service",
	"internal/obs",
}

// lockHoldSolverPackages identify "a solver call": any call into the model
// layers. Solves take milliseconds to minutes — never acceptable under a
// serving-path mutex.
var lockHoldSolverPackages = []string{
	"internal/alloc",
	"internal/core",
	"internal/dynamics",
	"internal/mm1",
	"internal/scenario",
	"internal/sweep",
	"internal/experiment",
	"internal/validate",
	"internal/netsim",
}

// lockHoldIOPackages identify blocking or I/O-shaped calls. Pure
// formatting (fmt.Sprintf, fmt.Errorf) is fine; writer-directed calls are
// not.
var lockHoldIOPackages = map[string]bool{
	"os":       true,
	"io":       true,
	"bufio":    true,
	"net":      true,
	"net/http": true,
}

// LockHold forbids blocking work while holding the internal/cache or
// internal/service mutexes: solver calls, channel operations, select,
// sync waits, and I/O. Critical sections in these packages must stay
// O(map probe): take a snapshot under the lock, release, then do the slow
// thing (the pattern Store.Do already follows).
//
// The analysis is intra-procedural and syntactic about lock regions: a
// region opens at x.Lock()/x.RLock() on a sync.Mutex/RWMutex-typed
// receiver and closes at the matching x.Unlock()/x.RUnlock(); a deferred
// unlock holds to the end of the function.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc:  "forbid solver calls, channel ops, and I/O while holding cache/service mutexes",
	Run:  runLockHold,
}

func runLockHold(pass *Pass) error {
	patrolled := false
	for _, suffix := range lockHoldPackages {
		if strings.HasSuffix(pass.PkgPath, suffix) {
			patrolled = true
			break
		}
	}
	if !patrolled {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkLockRegions(pass, fd.Body, newHeldSet())
			}
		}
	}
	return nil
}

// heldSet tracks which mutexes are held, keyed by the printed receiver
// expression ("s.mu").
type heldSet map[string]bool

func newHeldSet() heldSet { return make(heldSet) }

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func (h heldSet) any() bool {
	for _, v := range h {
		if v {
			return true
		}
	}
	return false
}

// checkLockRegions walks a statement list, threading the held-mutex state
// through sequential statements and recursing into nested blocks.
// Branches are analyzed with a copy of the state; a branch that cannot
// fall through (ends in return/panic) does not affect the state after the
// construct, while unlocks on fall-through paths do. This is deliberately
// optimistic — it exists to catch the "solve under the cache mutex" class
// of mistake, not to prove lock correctness.
func checkLockRegions(pass *Pass, block *ast.BlockStmt, held heldSet) {
	for _, st := range block.List {
		lockHoldStmt(pass, st, held)
	}
}

func lockHoldStmt(pass *Pass, st ast.Stmt, held heldSet) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if name, op, ok := mutexOp(pass.Info, st.X); ok {
			switch op {
			case "Lock", "RLock":
				held[name] = true
			case "Unlock", "RUnlock":
				held[name] = false
			}
			return
		}
		lockHoldExpr(pass, st.X, held)
	case *ast.DeferStmt:
		if name, op, ok := mutexOp(pass.Info, st.Call); ok && (op == "Unlock" || op == "RUnlock") {
			// Deferred unlock: the mutex stays held for the remainder of
			// the function body; keep scanning with it held.
			_ = name
			return
		}
		lockHoldExpr(pass, st.Call, held)
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			lockHoldExpr(pass, rhs, held)
		}
	case *ast.DeclStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				lockHoldExpr(pass, e, held)
				return false
			}
			return true
		})
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			lockHoldExpr(pass, r, held)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			lockHoldStmt(pass, st.Init, held)
		}
		lockHoldExpr(pass, st.Cond, held)
		body := held.clone()
		checkLockRegions(pass, st.Body, body)
		if !terminates(st.Body) {
			mergeUnlocks(held, body)
		}
		if st.Else != nil {
			els := held.clone()
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				checkLockRegions(pass, e, els)
				if !terminates(e) {
					mergeUnlocks(held, els)
				}
			case *ast.IfStmt:
				lockHoldStmt(pass, e, els)
				mergeUnlocks(held, els)
			}
		}
	case *ast.ForStmt:
		if st.Init != nil {
			lockHoldStmt(pass, st.Init, held)
		}
		if st.Cond != nil {
			lockHoldExpr(pass, st.Cond, held)
		}
		checkLockRegions(pass, st.Body, held.clone())
	case *ast.RangeStmt:
		lockHoldExpr(pass, st.X, held)
		checkLockRegions(pass, st.Body, held.clone())
	case *ast.BlockStmt:
		checkLockRegions(pass, st, held)
	case *ast.SwitchStmt:
		if st.Tag != nil {
			lockHoldExpr(pass, st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := held.clone()
				for _, s := range cc.Body {
					lockHoldStmt(pass, s, inner)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := held.clone()
				for _, s := range cc.Body {
					lockHoldStmt(pass, s, inner)
				}
			}
		}
	case *ast.SelectStmt:
		if held.any() {
			pass.Reportf(st.Pos(), "select while holding %s blocks every other request; release the mutex first", heldNames(held))
		}
	case *ast.SendStmt:
		if held.any() {
			pass.Reportf(st.Pos(), "channel send while holding %s; release the mutex first", heldNames(held))
		}
		lockHoldExpr(pass, st.Value, held)
	case *ast.GoStmt:
		// Spawning is non-blocking; the goroutine body runs without the
		// caller's locks, so scan it with a fresh state.
		if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
			checkLockRegions(pass, fl.Body, newHeldSet())
		}
	case *ast.LabeledStmt:
		lockHoldStmt(pass, st.Stmt, held)
	}
}

// lockHoldExpr flags blocking expressions (channel receives, solver and
// I/O calls) evaluated while a mutex is held, and recurses into nested
// calls. Func literals are scanned with a fresh state only when invoked
// directly; stored closures run later, without the lock necessarily held.
func lockHoldExpr(pass *Pass, e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && held.any() {
				pass.Reportf(n.Pos(), "channel receive while holding %s; release the mutex first", heldNames(held))
			}
		case *ast.CallExpr:
			if !held.any() {
				return true
			}
			path, name := calleePkgPath(pass.Info, n)
			if path == "" {
				return true
			}
			for _, solver := range lockHoldSolverPackages {
				if strings.HasSuffix(path, solver) {
					pass.Reportf(n.Pos(), "solver call %s.%s while holding %s; snapshot under the lock and solve outside it", path[strings.LastIndex(path, "/")+1:], name, heldNames(held))
					return true
				}
			}
			if lockHoldIOPackages[path] {
				pass.Reportf(n.Pos(), "%s.%s (blocking/I/O) while holding %s; release the mutex first", path, name, heldNames(held))
				return true
			}
			if path == "fmt" && strings.HasPrefix(name, "Fprint") {
				pass.Reportf(n.Pos(), "fmt.%s writes to an io.Writer while holding %s; format after releasing", name, heldNames(held))
			}
			if path == "sync" && name == "Wait" {
				pass.Reportf(n.Pos(), "sync WaitGroup.Wait while holding %s deadlocks waiters; release the mutex first", heldNames(held))
			}
		}
		return true
	})
}

// mutexOp recognizes x.Lock()/x.Unlock()/x.RLock()/x.RUnlock() calls on a
// sync.Mutex or sync.RWMutex receiver and returns the printed receiver
// name and the operation.
func mutexOp(info *types.Info, e ast.Expr) (name, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return "", "", false
	}
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", "", false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return exprString(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}

// mergeUnlocks applies unlocks observed on a fall-through branch to the
// outer state: if the branch released a mutex, treat it as released after
// the construct (optimistic, minimizes false positives).
func mergeUnlocks(outer, branch heldSet) {
	for k, v := range branch {
		if !v {
			outer[k] = false
		}
	}
}

// terminates reports whether a block's last statement unconditionally
// leaves the function (return or panic), so its lock effects never reach
// the code after the enclosing if.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func heldNames(held heldSet) string {
	var names []string
	for k, v := range held {
		if v {
			names = append(names, k)
		}
	}
	if len(names) == 0 {
		return "a mutex"
	}
	// Deterministic order for stable diagnostics.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ", ")
}

// exprString renders a selector chain ("s.mu") for region matching and
// diagnostics; non-ident forms collapse to a stable placeholder.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	default:
		return "<expr>"
	}
}
