package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// streamCheckPackage is the package-path suffix streamcheck patrols: the
// HTTP layer, whose NDJSON batch endpoint streams frames for minutes at a
// time.
const streamCheckPackage = "internal/service"

// StreamCheck hardens the streaming writers in internal/service:
//
//  1. The error results of frame-producing calls — (*json.Encoder).Encode,
//     (*bufio.Writer).Flush, and the service's own ndjsonWriter.frame —
//     must be checked. A dropped write error means the handler keeps
//     solving cells for a client that hung up.
//
//  2. Any loop that writes frames must consult its request context
//     (ctx.Err(), ctx.Done(), or r.Context()) somewhere in the loop, so a
//     disconnected client stops the work promptly instead of after the
//     whole batch.
var StreamCheck = &Analyzer{
	Name: "streamcheck",
	Doc:  "NDJSON frame writers must check Encode/Flush/frame errors and honor context cancellation",
	Run:  runStreamCheck,
}

func runStreamCheck(pass *Pass) error {
	if !strings.HasSuffix(pass.PkgPath, streamCheckPackage) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		checkDiscardedFrameErrors(pass, f)
		checkStreamingLoops(pass, f)
	}
	return nil
}

// checkDiscardedFrameErrors flags frame-producing calls whose error result
// is dropped — either a bare expression statement or an assignment to _.
func checkDiscardedFrameErrors(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if name, ok := frameCall(pass.Info, call); ok {
					pass.Reportf(call.Pos(), "%s error discarded; a failed frame write means the client is gone — check it and stop streaming", name)
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				name, ok := frameCall(pass.Info, call)
				if !ok {
					continue
				}
				// Single-call assignment: the last LHS receives the error.
				if len(st.Rhs) == 1 && len(st.Lhs) > 0 {
					if id, ok := st.Lhs[len(st.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
						pass.Reportf(call.Pos(), "%s error assigned to _; check it and stop streaming on failure", name)
					}
				} else if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(call.Pos(), "%s error assigned to _; check it and stop streaming on failure", name)
				}
			}
		}
		return true
	})
}

// frameCall reports whether call is a frame-producing call whose error
// must be checked, returning a short name for diagnostics.
func frameCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if _, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); !ok {
		return "", false
	}
	path, name := calleePkgPath(info, call)
	switch {
	case path == "encoding/json" && name == "Encode":
		return "(*json.Encoder).Encode", true
	case path == "bufio" && name == "Flush":
		return "(*bufio.Writer).Flush", true
	case name == "frame" && strings.HasSuffix(path, streamCheckPackage):
		return "ndjsonWriter.frame", true
	}
	return "", false
}

// checkStreamingLoops flags for/range loops that write frames without
// consulting a context inside the loop.
func checkStreamingLoops(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch st := n.(type) {
		case *ast.ForStmt:
			body = st.Body
		case *ast.RangeStmt:
			body = st.Body
		default:
			return true
		}
		if !loopWritesFrames(pass.Info, body) {
			return true
		}
		if loopChecksContext(pass.Info, body) {
			return true
		}
		pass.Reportf(n.Pos(), "streaming loop writes frames without consulting the request context; check ctx.Err()/ctx.Done() each iteration so a disconnect stops the work")
		return true
	})
}

func loopWritesFrames(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := frameCall(info, call); ok {
				found = true
			}
		}
		return !found
	})
	return found
}

// loopChecksContext looks for any use of a context.Context inside the
// loop: ctx.Err(), <-ctx.Done(), r.Context().Err(), a select case on
// Done(), etc. Any method call on a context counts.
func loopChecksContext(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		t := info.TypeOf(sel.X)
		if t == nil {
			return true
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
				found = true
			}
		}
		return !found
	})
	return found
}
