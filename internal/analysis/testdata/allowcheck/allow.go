// Package allowfixture exercises allowcheck: suppression comments must be
// well-formed, name a known analyzer, and carry a reason.
package allowfixture

//pubopt:allow(floatcmp): a well-formed suppression parses silently
var a = 1.0

//pubopt:allow(floatcmp) missing the colon and reason // want "malformed suppression"
var b = 2.0

//pubopt:allow(nosuchcheck): names nothing in the suite // want "unknown analyzer"
var c = 3.0

//pubopt:allow (floatcmp): stray space breaks the directive // want "malformed suppression"
var d = 4.0

//pubopt:allow(FloatCmp): analyzer names are lowercase // want "malformed suppression"
var e = 5.0
