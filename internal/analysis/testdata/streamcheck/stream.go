// Package streamfixture exercises streamcheck. Its fixture package path
// ends in internal/service, so it is patrolled.
package streamfixture

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
)

type ndjsonWriter struct {
	enc *json.Encoder
}

func (nw *ndjsonWriter) frame(v any) error {
	return nw.enc.Encode(v)
}

type cell struct {
	Row, Col int
	Value    float64
}

func badWriter(w io.Writer, cells []cell) {
	enc := json.NewEncoder(w)
	bw := bufio.NewWriter(w)
	enc.Encode(cells[0])     // want "Encode error discarded"
	_ = enc.Encode(cells[1]) // want "Encode error assigned to _"
	bw.Flush()               // want "Flush error discarded"
}

func badLoop(nw *ndjsonWriter, cells []cell) {
	for _, c := range cells { // want "streaming loop writes frames without consulting the request context"
		nw.frame(c) // want "frame error discarded"
	}
}

func goodLoop(ctx context.Context, nw *ndjsonWriter, cells []cell) error {
	for _, c := range cells {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err := nw.frame(c); err != nil {
			return err
		}
	}
	return nil
}

func goodSelectLoop(ctx context.Context, nw *ndjsonWriter, in <-chan cell) error {
	for {
		select {
		case c, ok := <-in:
			if !ok {
				return nil
			}
			if err := nw.frame(c); err != nil {
				return err
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// goodTerminal shows the annotated exception: a best-effort terminal frame
// after the stream's real work, where the error genuinely has no consumer.
func goodTerminal(nw *ndjsonWriter, done any) {
	//pubopt:allow(streamcheck): terminal frame; the stream ends either way
	nw.frame(done)
}
