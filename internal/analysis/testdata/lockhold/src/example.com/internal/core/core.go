// Package core is a stand-in solver layer for the lockhold fixture.
package core

// Solve stands in for any model-layer entry point.
func Solve(nu float64) float64 { return nu / 2 }
