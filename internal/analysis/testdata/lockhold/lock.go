// Package lockfixture exercises lockhold. Its fixture package path ends
// in internal/cache, so it is patrolled.
package lockfixture

import (
	"fmt"
	"os"
	"sync"

	"example.com/internal/core"
)

type store struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	entries map[string]float64
	ch      chan float64
	wg      sync.WaitGroup
}

func (s *store) bad(key string) float64 {
	s.mu.Lock()
	v := core.Solve(1.0)            // want "solver call core.Solve while holding s.mu"
	s.ch <- v                       // want "channel send while holding s.mu"
	r := <-s.ch                     // want "channel receive while holding s.mu"
	fmt.Fprintf(os.Stderr, "%g", r) // want "fmt.Fprintf writes to an io.Writer while holding s.mu"
	s.wg.Wait()                     // want "WaitGroup.Wait while holding s.mu"
	select {                        // want "select while holding s.mu"
	case x := <-s.ch:
		r += x
	default:
	}
	s.mu.Unlock()
	s.entries[key] = r
	return v
}

func (s *store) badDeferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- core.Solve(2) // want "channel send while holding s.mu" "solver call core.Solve while holding s.mu"
}

// good is the snapshot-then-work pattern the serving path must follow:
// O(map probe) under the lock, everything slow outside it.
func (s *store) good(key string) float64 {
	s.mu.Lock()
	v, ok := s.entries[key]
	s.mu.Unlock()
	if !ok {
		v = core.Solve(1.0)
		s.ch <- v
		s.mu.Lock()
		s.entries[key] = v
		s.mu.Unlock()
	}
	fmt.Fprintf(os.Stderr, "%g", v)
	return v
}

// goodEarlyReturn mirrors Store.Do: branches that unlock and return do not
// poison the fall-through path, and the unconditional unlock ends the
// region before the channel ops.
func (s *store) goodEarlyReturn(key string) float64 {
	s.mu.Lock()
	if v, ok := s.entries[key]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	v := <-s.ch
	return v
}

// goodRead shows an RWMutex read section with pure map work, plus an
// annotated deliberate exception.
func (s *store) goodRead(key string) float64 {
	s.rw.RLock()
	defer s.rw.RUnlock()
	//pubopt:allow(lockhold): cold init path, runs once under startup lock
	v := core.Solve(3)
	return v + s.entries[key]
}
