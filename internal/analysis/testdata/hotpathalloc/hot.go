// Package hotfixture exercises hotpathalloc: allocation-inducing
// constructs inside //pubopt:hotpath functions are findings; the same
// constructs in unmarked functions, and annotated one-time setup, are not.
package hotfixture

import "fmt"

type workspace struct {
	buf   []float64
	total float64
}

type evaluator interface {
	eval(x float64) float64
}

type linear struct{ gain float64 }

func (l linear) eval(x float64) float64 { return l.gain * x }

// solveHot is the deliberately-broken hot function: every construct the
// benchmark gate would catch as allocs/op is flagged statically here.
//
//pubopt:hotpath
func (w *workspace) solveHot(n int, e evaluator) float64 {
	scratch := make([]float64, n)          // want "make allocates"
	extra := new(float64)                  // want "new allocates"
	tmp := []float64{1, 2, 3}              // want "slice literal allocates"
	seen := map[int]bool{}                 // want "map literal allocates"
	w.buf = append(w.buf, 1.0)             // want "append may grow"
	fmt.Printf("n=%d\n", n)                // want "fmt.Printf allocates"
	box := evaluator(linear{})             // want "conversion to interface boxes"
	sink(linear{gain: 2})                  // want "boxes .*linear into interface"
	f := func() float64 { return w.total } // want "captures enclosing variables"
	p := &point{x: 1}                      // want "escapes to the heap"
	_ = scratch
	_ = extra
	_ = tmp
	_ = seen
	_ = box
	_ = p
	return f() + e.eval(1)
}

type point struct{ x float64 }

func sink(e evaluator) float64 { return e.eval(0) }

// solveWarm is the allocation-free shape the contract wants: reuse of
// workspace buffers, devirtualized arithmetic, non-capturing literals.
//
//pubopt:hotpath
func (w *workspace) solveWarm(level float64) float64 {
	var sum float64
	for i := range w.buf {
		v := w.buf[i] * level
		if v > 1 {
			v = 1
		}
		sum += v
	}
	w.total = sum
	square := func(x float64) float64 { return x * x } // no capture: no finding
	return square(sum)
}

// solveSetup shows the suppression convention: a per-call setup cost,
// amortized over the whole solve, is annotated with its justification.
//
//pubopt:hotpath
func (w *workspace) solveSetup(n int) float64 {
	if cap(w.buf) < n {
		//pubopt:allow(hotpathalloc): grow path runs once per population size, not per solve
		w.buf = make([]float64, n)
	}
	w.buf = w.buf[:n]
	return float64(len(w.buf))
}

// coldHelper is unmarked: the same constructs are fine off the hot path.
func coldHelper(n int) []float64 {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, float64(i))
	}
	fmt.Println(len(out))
	return out
}
