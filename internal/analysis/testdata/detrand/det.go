// Package detfixture exercises detrand. Its fixture package path ends in
// internal/core, so it is patrolled.
package detfixture

import (
	"math/rand"
	"sort"
	"time"
)

func bad(m map[string]float64) float64 {
	x := rand.Float64()                // want "draws from the global random source"
	n := rand.Intn(10)                 // want "draws from the global random source"
	rand.Shuffle(n, func(i, j int) {}) // want "draws from the global random source"
	t := time.Now()                    // want "reads the wall clock"
	d := time.Since(t)                 // want "reads the wall clock"
	var sum float64
	for _, v := range m { // want "range over a map has randomized order"
		sum -= v / (sum + 1) // order-dependent accumulation
	}
	return x + float64(n) + d.Seconds() + sum
}

func good(m map[string]float64, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	x := rng.Float64() // methods on a seeded *Rand are fine

	// Gather-then-sort: the canonical deterministic map walk.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}

	// Order-insensitive counting is fine too.
	count := 0
	for range m {
		count++
	}
	return x + sum + float64(count)
}
