// Package cmpfixture exercises floatcmp: exact float comparisons are
// findings unless annotated; int/string/bool comparisons and tolerance
// helpers are not.
package cmpfixture

import "math"

type level float64

const eps = 1e-9

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func bad(a, b float64, l level) bool {
	if a == b { // want "float compared with =="
		return true
	}
	if a != 0 { // want "float compared with !="
		return false
	}
	if l == 1.5 { // want "float compared with =="
		return true
	}
	switch a { // want "switch on a float value"
	case 0:
		return false
	}
	return a+b == 2*b // want "float compared with =="
}

func good(a, b float64, n int, s string) bool {
	if almostEqual(a, b, eps) {
		return true
	}
	if n == 0 || s == "x" || (a > 0) == (b > 0) {
		return false
	}
	if a == 0 { //pubopt:allow(floatcmp): exact zero is the ν=0 sentinel here
		return true
	}
	return a < b || a >= b
}
