// Package analysis is pubopt's repo-specific static-analysis suite: a small,
// dependency-free counterpart of golang.org/x/tools/go/analysis that encodes
// the codebase's load-bearing invariants as compiler-adjacent checks.
//
// The suite exists because several correctness properties of this repository
// are invisible to the type system and were previously enforced only by
// convention or caught late by benchmarks:
//
//   - the warm equilibrium kernel must stay at 0 allocs/op (hotpathalloc);
//   - floating-point values must never be compared with ==/!= outside
//     deliberate, documented sentinel checks (floatcmp);
//   - every solve must be bit-reproducible from a seed, so solver packages
//     may not consult ambient randomness, wall-clock time, or map iteration
//     order (detrand);
//   - the cache and service mutexes must never be held across solver calls,
//     channel operations, or I/O (lockhold);
//   - NDJSON streaming writers must check frame errors and honor context
//     cancellation (streamcheck);
//   - suppression comments must name a real analyzer and carry a reason
//     (allowcheck).
//
// The analyzers run over fully type-checked packages, driven either by
// cmd/pubopt-vet (the `go vet -vettool` adapter) or by the analysistest
// fixture harness in this package's tests. See docs/ANALYSIS.md for the
// rules, rationale, and suppression convention.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check. It mirrors the x/tools analysis.Analyzer
// surface that this repo needs: a name (used in diagnostics and in
// //pubopt:allow suppressions), a one-line doc string, and a Run function.
type Analyzer struct {
	// Name is the analyzer's identifier: lowercase, no spaces. It is the
	// <analyzer> in `//pubopt:allow(<analyzer>): <reason>`.
	Name string
	// Doc is the one-line rule statement shown by `pubopt-vet help`.
	Doc string
	// Run inspects the package and reports findings through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// Pkg is the type-checked package; PkgPath is its canonical import path
	// (analyzers gate on it, e.g. detrand only patrols solver packages).
	Pkg     *types.Package
	PkgPath string
	Info    *types.Info
	// report receives raw diagnostics; the driver applies suppression.
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, attributed to the analyzer that produced it.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Suite returns the full analyzer suite in reporting order. The slice is
// freshly allocated; callers may filter it.
func Suite() []*Analyzer {
	return []*Analyzer{
		HotPathAlloc,
		FloatCmp,
		DetRand,
		LockHold,
		StreamCheck,
		AllowCheck,
	}
}

// suiteNames returns the set of valid analyzer names for allow-comment
// validation.
func suiteNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Suite() {
		names[a.Name] = true
	}
	return names
}

// ---------------------------------------------------------------------------
// Suppression: //pubopt:allow(<analyzer>): <reason>
//
// A finding is suppressed when an allow comment naming its analyzer sits on
// the same line (trailing comment) or on the line directly above it
// (standalone comment). The reason is mandatory; allowcheck flags malformed
// or unknown-analyzer forms so a suppression can never silently rot.

// allowRe matches a well-formed suppression. Submatch 1 is the analyzer
// name, submatch 2 the reason.
var allowRe = regexp.MustCompile(`^//pubopt:allow\(([a-z]+)\):\s*(\S.*)$`)

// allowPrefix is what identifies an intended suppression even when
// malformed, so allowcheck can reject near-misses instead of ignoring them.
const allowPrefix = "//pubopt:allow"

// allowSite is one parsed suppression comment.
type allowSite struct {
	analyzer string
	line     int // line the comment sits on
}

// allowIndex maps a file to its suppression sites.
type allowIndex map[*token.File][]allowSite

// buildAllowIndex collects every well-formed allow comment in the files.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := make(allowIndex)
	for _, f := range files {
		tf := fset.File(f.Pos())
		if tf == nil {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				idx[tf] = append(idx[tf], allowSite{analyzer: m[1], line: tf.Line(c.Pos())})
			}
		}
	}
	return idx
}

// suppressed reports whether d is covered by an allow comment for its
// analyzer on the diagnostic's line or the line directly above.
func (idx allowIndex) suppressed(fset *token.FileSet, d Diagnostic) bool {
	tf := fset.File(d.Pos)
	if tf == nil {
		return false
	}
	line := tf.Line(d.Pos)
	for _, s := range idx[tf] {
		if s.analyzer == d.Analyzer && (s.line == line || s.line == line-1) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Runner.

// Package bundles everything the runner needs about one type-checked
// package. It is the seam between the two drivers (the vet-protocol adapter
// in cmd/pubopt-vet and the test fixture harness) and the analyzers.
type Package struct {
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	PkgPath string
	Info    *types.Info
}

// Run executes the analyzers over pkg, applies the suppression convention,
// and returns the surviving diagnostics sorted by position. Analyzer errors
// (not findings) abort the run.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	idx := buildAllowIndex(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			PkgPath:  pkg.PkgPath,
			Info:     pkg.Info,
		}
		pass.report = func(d Diagnostic) {
			if !idx.suppressed(pkg.Fset, d) {
				out = append(out, d)
			}
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis %s: %w", a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// ---------------------------------------------------------------------------
// Shared AST/type helpers used by several analyzers.

// isTestFile reports whether pos sits in a _test.go file. Most analyzers
// exempt tests: the invariants protect production determinism and the hot
// path, while tests legitimately compare exact floats, use wall-clock
// timeouts, and allocate freely.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	tf := fset.File(pos)
	return tf != nil && strings.HasSuffix(tf.Name(), "_test.go")
}

// pkgOf resolves the package a selector's qualifier identifies, e.g. the
// `rand` in rand.Intn. It returns nil when the expression is not a direct
// package-qualified reference.
func pkgOf(info *types.Info, sel *ast.SelectorExpr) *types.Package {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return nil
	}
	return pn.Imported()
}

// calleePkgPath returns the import path of the package that declares the
// function or method called by call, and the callee's name. It resolves
// both package-level calls (pkg.F(...)) and method calls (x.M(...)); it
// returns "" for builtins, calls of function-typed variables, and other
// anonymous callees.
func calleePkgPath(info *types.Info, call *ast.CallExpr) (path, name string) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			// Method or field call: attribute to the declaring package.
			if f, ok := sel.Obj().(*types.Func); ok && f.Pkg() != nil {
				return f.Pkg().Path(), f.Name()
			}
			return "", ""
		}
		if p := pkgOf(info, fn); p != nil {
			return p.Path(), fn.Sel.Name
		}
	case *ast.Ident:
		if f, ok := info.Uses[fn].(*types.Func); ok && f.Pkg() != nil {
			return f.Pkg().Path(), f.Name()
		}
	}
	return "", ""
}

// isFloat reports whether t's core type is an untyped or typed float.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// exprIsFloat reports whether e's static type is floating point.
func exprIsFloat(info *types.Info, e ast.Expr) bool {
	return isFloat(info.TypeOf(e))
}

// funcDocMarked reports whether a function declaration carries the marker
// directive (e.g. //pubopt:hotpath) in its doc comment group.
func funcDocMarked(fd *ast.FuncDecl, marker string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), marker) {
			return true
		}
	}
	return false
}
