package analysis

import "strings"

// AllowCheck validates the suppression convention itself. Every comment
// that starts with //pubopt:allow must be the full form
//
//	//pubopt:allow(<analyzer>): <reason>
//
// with <analyzer> naming a real analyzer in the suite and a non-empty
// reason. Near-misses (missing reason, unknown analyzer, stray spaces in
// the directive) are flagged rather than silently ignored, so a
// suppression can never rot into a no-op while appearing to work.
var AllowCheck = &Analyzer{
	Name: "allowcheck",
	Doc:  "suppression comments must name a real analyzer and carry a reason",
}

// Run is attached in init to break the initializer cycle
// AllowCheck → runAllowCheck → Suite → AllowCheck.
func init() { AllowCheck.Run = runAllowCheck }

func runAllowCheck(pass *Pass) error {
	names := suiteNames()
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				m := allowRe.FindStringSubmatch(text)
				if m == nil {
					pass.Reportf(c.Pos(), "malformed suppression %q; want //pubopt:allow(<analyzer>): <reason>", text)
					continue
				}
				if !names[m[1]] {
					pass.Reportf(c.Pos(), "suppression names unknown analyzer %q; known: %s", m[1], strings.Join(sortedSuiteNames(), ", "))
				}
			}
		}
	}
	return nil
}

func sortedSuiteNames() []string {
	var out []string
	for _, a := range Suite() {
		out = append(out, a.Name)
	}
	// Suite order is already the documentation order; keep it.
	return out
}
