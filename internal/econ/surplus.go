// Package econ implements the economic accounting of the Ma–Misra model:
// per-capita consumer surplus Φ (Eq. 2), ISP surplus Ψ (§III-A), content
// provider utilities (Eq. 4), welfare decompositions, and the
// surplus-discontinuity metric ε_s (Eq. 9) that quantifies how far
// market-share incentives can drift from consumer surplus in the
// oligopolistic analysis (Theorem 6).
//
// Everything is per capita, consistent with the alloc package: multiply by
// the consumer mass M for absolute surpluses. Per-capita quantities are the
// right invariants because the whole model is scale independent (Axiom 4).
package econ

import (
	"github.com/netecon-sim/publicoption/internal/alloc"
	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// Phi returns the per-capita consumer surplus (Eq. 2) of a rate equilibrium:
//
//	Φ = Σ_i φ_i · α_i · d_i(θ_i) · θ_i
//
// The sum streams through a Kahan accumulator: Phi sits on the market
// solvers' hot path (one evaluation per migration-bisection iteration), so
// it must not allocate.
func Phi(res *alloc.Result) float64 {
	var k numeric.Kahan
	for i := range res.Theta {
		k.Add(res.Pop[i].Phi * res.PerCapitaRate(i))
	}
	return k.Value()
}

// PhiAt solves the rate equilibrium of (ν, pop) under mechanism a and
// returns its per-capita consumer surplus. It is the function Φ(ν, N) whose
// monotonicity is Theorem 2.
func PhiAt(a alloc.Allocator, nu float64, pop traffic.Population) float64 {
	return Phi(alloc.Solve(a, nu, pop))
}

// MaxPhi returns the saturation value Σ_i φ_i·α_i·θ̂_i that Φ reaches once
// per-capita capacity covers all unconstrained throughput (Theorem 2's
// strict-increase region ends here).
func MaxPhi(pop traffic.Population) float64 {
	terms := make([]float64, len(pop))
	for i := range pop {
		terms[i] = pop[i].Phi * pop[i].UnconstrainedPerCapitaRate()
	}
	return numeric.Sum(terms)
}

// Revenue returns the per-capita ISP surplus Ψ = c · Σ_i α_i·d_i(θ_i)·θ_i of
// a premium-class equilibrium priced at c: res must be the equilibrium of
// the premium class's population on the premium class's capacity. Like
// Aggregate and Phi it is called per finalized cell, so the compensated
// sum runs inline without allocating.
func Revenue(res *alloc.Result, c float64) float64 {
	return c * res.Aggregate()
}

// CPUtilityPerCapita returns u_i/M (Eq. 4) for a CP achieving per-user
// throughput theta while paying price (0 for the ordinary class, c for the
// premium class):
//
//	u_i/M = (v_i − price) · α_i · d_i(θ_i) · θ_i
func CPUtilityPerCapita(cp *traffic.CP, theta, price float64) float64 {
	return (cp.V - price) * cp.PerCapitaRate(theta)
}

// Welfare aggregates the per-capita surplus of every party in one class
// equilibrium: consumers (Φ), the ISP's CP-side revenue (Ψ at price c) and
// the CPs' net utilities. The identity Welfare = Φ + Σ_i v_i·α_i·ρ_i holds
// because the price c is a pure transfer from CPs to the ISP.
type Welfare struct {
	Consumer float64 // Φ
	ISP      float64 // Ψ
	CPs      float64 // Σ u_i / M
}

// Total returns the sum of all parties' per-capita surplus.
func (w Welfare) Total() float64 { return w.Consumer + w.ISP + w.CPs }

// WelfareOf computes the welfare decomposition of a class equilibrium at
// price c (use c = 0 for an ordinary/neutral class).
func WelfareOf(res *alloc.Result, c float64) Welfare {
	w := Welfare{Consumer: Phi(res), ISP: Revenue(res, c)}
	terms := make([]float64, len(res.Theta))
	for i := range res.Theta {
		terms[i] = CPUtilityPerCapita(&res.Pop[i], res.Theta[i], c)
	}
	w.CPs = numeric.Sum(terms)
	return w
}
