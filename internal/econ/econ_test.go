package econ

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/netecon-sim/publicoption/internal/alloc"
	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

func ensemble(seed uint64, n int) traffic.Population {
	cfg := traffic.PaperEnsemble(traffic.PhiCorrelated)
	cfg.N = n
	return cfg.Generate(numeric.NewRNG(seed))
}

func TestPhiAtSaturation(t *testing.T) {
	pop := traffic.Archetypes()
	total := pop.TotalUnconstrainedPerCapita()
	phi := PhiAt(alloc.MaxMin{}, total, pop)
	if want := MaxPhi(pop); math.Abs(phi-want) > 1e-9*want {
		t.Fatalf("Φ at saturation = %v, want MaxPhi = %v", phi, want)
	}
	// Beyond saturation Φ stays at the maximum.
	if phi2 := PhiAt(alloc.MaxMin{}, 2*total, pop); math.Abs(phi2-phi) > 1e-12 {
		t.Fatalf("Φ beyond saturation moved: %v vs %v", phi2, phi)
	}
}

func TestPhiZeroCapacity(t *testing.T) {
	if phi := PhiAt(alloc.MaxMin{}, 0, traffic.Archetypes()); phi != 0 {
		t.Fatalf("Φ(0) = %v, want 0", phi)
	}
}

func TestPhiHandComputed(t *testing.T) {
	// Single CP with constant demand: Φ = φ·α·θ with θ = min(ν/..., θ̂).
	// With d ≡ 1 the equilibrium under max-min gives α·θ = min(ν, α·θ̂).
	pop := traffic.Population{{
		Name: "one", Alpha: 0.5, ThetaHat: 10, V: 1, Phi: 2,
		Curve: constantCurve{},
	}}
	// Congested: ν = 2 < α·θ̂ = 5, so α·d·θ = 2, Φ = φ·2 = 4.
	if phi := PhiAt(alloc.MaxMin{}, 2, pop); math.Abs(phi-4) > 1e-9 {
		t.Fatalf("Φ = %v, want 4", phi)
	}
	// Uncongested: Φ = φ·α·θ̂ = 2·5 = 10.
	if phi := PhiAt(alloc.MaxMin{}, 100, pop); math.Abs(phi-10) > 1e-9 {
		t.Fatalf("Φ = %v, want 10", phi)
	}
}

type constantCurve struct{}

func (constantCurve) At(omega float64) float64 {
	if omega < 0 {
		return 0
	}
	return 1
}
func (constantCurve) Name() string { return "const" }

func TestRevenueLinearInPrice(t *testing.T) {
	pop := ensemble(5, 50)
	res := alloc.Solve(alloc.MaxMin{}, 3, pop)
	r1 := Revenue(res, 0.2)
	r2 := Revenue(res, 0.4)
	if math.Abs(r2-2*r1) > 1e-12*math.Max(r2, 1) {
		t.Fatalf("revenue not linear in c: %v vs %v", r1, r2)
	}
	if Revenue(res, 0) != 0 {
		t.Fatal("zero price must give zero revenue")
	}
}

func TestRevenueEqualsPriceTimesThroughputWhenCongested(t *testing.T) {
	pop := ensemble(6, 80)
	nu := 0.3 * pop.TotalUnconstrainedPerCapita()
	res := alloc.Solve(alloc.MaxMin{}, nu, pop)
	// Work conservation: revenue = c·ν when the class is congested (the
	// paper's "Ψ = cν" regime in Figure 4).
	if got, want := Revenue(res, 0.7), 0.7*nu; math.Abs(got-want) > 1e-6*want {
		t.Fatalf("Ψ = %v, want c·ν = %v", got, want)
	}
}

func TestCPUtilityPerCapita(t *testing.T) {
	pop := traffic.Archetypes()
	cp := &pop[0]
	theta := cp.ThetaHat // uncongested
	u := CPUtilityPerCapita(cp, theta, 0)
	if want := cp.V * cp.Alpha * cp.ThetaHat; math.Abs(u-want) > 1e-12 {
		t.Fatalf("ordinary utility = %v, want %v", u, want)
	}
	up := CPUtilityPerCapita(cp, theta, 0.3)
	if want := (cp.V - 0.3) * cp.Alpha * cp.ThetaHat; math.Abs(up-want) > 1e-12 {
		t.Fatalf("premium utility = %v, want %v", up, want)
	}
	// Price above v makes premium utility negative.
	if CPUtilityPerCapita(cp, theta, cp.V+0.5) >= 0 {
		t.Fatal("utility should be negative when c > v")
	}
}

func TestWelfareDecomposition(t *testing.T) {
	pop := ensemble(9, 60)
	nu := 0.5 * pop.TotalUnconstrainedPerCapita()
	res := alloc.Solve(alloc.MaxMin{}, nu, pop)
	c := 0.25
	w := WelfareOf(res, c)
	// The transfer identity: ISP revenue + CP utilities = Σ v_i·α_i·ρ_i,
	// independent of c.
	gross := 0.0
	for i := range pop {
		gross += pop[i].V * res.PerCapitaRate(i)
	}
	if math.Abs(w.ISP+w.CPs-gross) > 1e-9*math.Max(gross, 1) {
		t.Fatalf("ISP+CPs = %v, want gross CP value %v", w.ISP+w.CPs, gross)
	}
	if math.Abs(w.Total()-(w.Consumer+gross)) > 1e-9 {
		t.Fatalf("total welfare %v should equal Φ + gross %v", w.Total(), w.Consumer+gross)
	}
}

// Theorem 2: Φ(ν) non-decreasing, strictly increasing below saturation.
func TestTheorem2OnPaperWorkloads(t *testing.T) {
	pops := map[string]traffic.Population{
		"archetypes": traffic.Archetypes(),
		"ensemble":   ensemble(11, 100),
	}
	for name, pop := range pops {
		total := pop.TotalUnconstrainedPerCapita()
		grid := numeric.Linspace(0, 1.3*total, 80)
		if err := CheckTheorem2(alloc.MaxMin{}, pop, grid, 0); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestTheorem2AcrossMechanisms(t *testing.T) {
	pop := ensemble(13, 40)
	total := pop.TotalUnconstrainedPerCapita()
	grid := numeric.Linspace(0, 1.2*total, 50)
	for _, a := range []alloc.Allocator{
		alloc.MaxMin{},
		alloc.AlphaFair{Alpha: 1},
		alloc.AlphaFair{Alpha: 2, Weights: alloc.WeightByThetaHat},
		alloc.PerCPMaxMin{},
	} {
		if err := CheckTheorem2(a, pop, grid, 1e-6); err != nil {
			t.Errorf("%s: %v", a.Name(), err)
		}
	}
}

func TestEpsilonGapZeroForNeutralSystem(t *testing.T) {
	pop := ensemble(15, 60)
	total := pop.TotalUnconstrainedPerCapita()
	grid := numeric.Linspace(0, 1.2*total, 60)
	gap := EpsilonGap(func(nu float64) float64 {
		return PhiAt(alloc.MaxMin{}, nu, pop)
	}, grid)
	if gap > 1e-9 {
		t.Fatalf("neutral system ε-gap = %v, want 0 (Theorem 2)", gap)
	}
}

func TestEpsilonGapDetectsDrops(t *testing.T) {
	// A synthetic Φ with a drop of 0.5 at ν = 5.
	phi := func(nu float64) float64 {
		if nu < 5 {
			return nu
		}
		return nu - 0.5
	}
	// Grid sampling can miss the drop by up to one step (here 0.01).
	gap := EpsilonGap(phi, numeric.Linspace(0, 10, 1001))
	if gap < 0.5-0.011 || gap > 0.5 {
		t.Fatalf("ε-gap = %v, want within one grid step of 0.5", gap)
	}
}

// Property: Φ is monotone in ν for random ensembles (Theorem 2, sampled).
func TestPhiMonotoneQuick(t *testing.T) {
	rng := numeric.NewRNG(91)
	f := func() bool {
		pop := ensemble(rng.Uint64(), 1+rng.Intn(25))
		total := pop.TotalUnconstrainedPerCapita()
		a := rng.Uniform(0, 1.2*total)
		b := rng.Uniform(0, 1.2*total)
		if a > b {
			a, b = b, a
		}
		return PhiAt(alloc.MaxMin{}, a, pop) <= PhiAt(alloc.MaxMin{}, b, pop)+1e-9
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: welfare transfer identity holds for random prices.
func TestWelfareTransferIdentityQuick(t *testing.T) {
	rng := numeric.NewRNG(93)
	pop := ensemble(17, 50)
	nu := 0.4 * pop.TotalUnconstrainedPerCapita()
	res := alloc.Solve(alloc.MaxMin{}, nu, pop)
	w0 := WelfareOf(res, 0)
	f := func() bool {
		c := rng.Uniform(0, 2)
		w := WelfareOf(res, c)
		return math.Abs(w.Total()-w0.Total()) < 1e-9*math.Max(w0.Total(), 1)
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
