package econ

import (
	"fmt"

	"github.com/netecon-sim/publicoption/internal/alloc"
	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// EpsilonGap evaluates the paper's discontinuity metric ε_s (Eq. 9) on a
// capacity grid:
//
//	ε_s = sup{ Φ(ν₁, N, s) − Φ(ν₂, N, s) : ν₁ < ν₂ }
//
// the largest downward move of the consumer-surplus curve as capacity grows.
// For a single-class (neutral) system Theorem 2 makes ε_s = 0; with two
// service classes, CPs hopping between classes can make Φ drop at isolated
// capacities, and ε_s measures the worst such drop. phiAt must return
// Φ(ν, N, s) for the strategy under study; nuGrid should be sorted
// ascending and dense enough to catch the class-switch points.
func EpsilonGap(phiAt func(nu float64) float64, nuGrid []float64) float64 {
	ys := make([]float64, len(nuGrid))
	for i, nu := range nuGrid {
		ys[i] = phiAt(nu)
	}
	return numeric.MaxDownwardGap(ys)
}

// CheckTheorem2 numerically verifies Theorem 2 for a neutral (single class,
// no pricing) system: Φ(ν) must be non-decreasing everywhere and strictly
// increasing while the link is still a bottleneck, provided some CP carries
// positive utility. It returns nil on success or a description of the first
// violation. The tolerance tol absorbs solver error.
func CheckTheorem2(a alloc.Allocator, pop traffic.Population, nuGrid []float64, tol float64) error {
	if tol <= 0 {
		tol = 1e-9
	}
	saturation := pop.TotalUnconstrainedPerCapita()
	maxPhi := MaxPhi(pop)
	// Strictness holds when every CP carries utility: the capacity increase
	// reaches some CP (Theorem 2's proof), and that CP's φ_i > 0 turns it
	// into surplus. With some φ_i = 0 the curve may be legitimately flat.
	strict := len(pop) > 0
	for i := range pop {
		if pop[i].Phi <= 0 {
			strict = false
			break
		}
	}
	prevPhi := 0.0
	prevNu := 0.0
	for k, nu := range nuGrid {
		phi := PhiAt(a, nu, pop)
		if phi < -tol || phi > maxPhi*(1+1e-6)+tol {
			return fmt.Errorf("econ: Φ(%g) = %g outside [0, MaxPhi=%g]", nu, phi, maxPhi)
		}
		if k > 0 {
			if phi < prevPhi-tol*maxf(prevPhi, 1) {
				return fmt.Errorf("econ: Φ decreased from %g at ν=%g to %g at ν=%g", prevPhi, prevNu, phi, nu)
			}
			// Strict increase below saturation.
			if strict && nu < saturation && prevNu < nu {
				if phi <= prevPhi && phi < maxPhi*(1-1e-9) {
					return fmt.Errorf("econ: Φ flat (%g) between ν=%g and ν=%g below saturation %g", phi, prevNu, nu, saturation)
				}
			}
		}
		prevPhi, prevNu = phi, nu
	}
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
