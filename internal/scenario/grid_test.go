package scenario

import (
	"math"
	"strings"
	"testing"
)

// tinyGridScenario is a cheap, fully explicit grid for engine tests: a
// two-CP constant-demand population under incumbent-vs-Public-Option entry,
// swept over γ (columns) × ν (rows).
func tinyGridScenario(t *testing.T) *Scenario {
	t.Helper()
	s, err := LoadString(`{
		"name": "tiny-grid", "title": "tiny γ×ν grid",
		"population": {"kind": "explicit", "cps": [
			{"name": "wide", "alpha": 1, "theta_hat": 2, "v": 0.5, "phi": 1,
			 "demand": {"family": "constant"}},
			{"name": "fat", "alpha": 0.5, "theta_hat": 4, "v": 0.5, "phi": 0.5,
			 "demand": {"family": "constant"}}
		]},
		"providers": [
			{"name": "incumbent", "gamma": 0.5, "kappa": 1, "c": 0.4},
			{"name": "po", "gamma": 0.5, "public_option": true}
		],
		"sweep": {"axis": "poshare", "lo": 0.2, "hi": 0.4, "points": 3,
		          "metrics": ["phi", "share"],
		          "grid": {"axis": "nu", "values": [1, 2]}}
	}`)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGridValidationRejects(t *testing.T) {
	base := `{
		"name": "t", "title": "t",
		"population": {"kind": "paper"},
		"providers": [
			{"name": "a", "gamma": 0.5, "kappa": 1, "c": 0.4},
			{"name": "po", "gamma": 0.5, "public_option": true}
		],
		"sweep": SWEEP
	}`
	cases := []struct {
		name  string
		sweep string
		want  string
	}{
		{"duplicate axes", `{"axis": "nu", "lo": 0.1, "hi": 1, "points": 3,
			"grid": {"axis": "nu", "lo": 0.2, "hi": 0.8, "points": 2}}`,
			"duplicates the sweep axis"},
		{"unknown row axis", `{"axis": "nu", "lo": 0.1, "hi": 1, "points": 3,
			"grid": {"axis": "volume", "points": 2}}`,
			"unknown grid row axis"},
		{"empty row grid", `{"axis": "nu", "lo": 0.1, "hi": 1, "points": 3,
			"grid": {"axis": "poshare"}}`,
			"empty sweep grid"},
		{"non-finite row bound", `{"axis": "nu", "lo": 0.1, "hi": 1, "points": 3,
			"grid": {"axis": "poshare", "lo": 0.1, "hi": 1e999, "points": 2}}`,
			""}, // 1e999 overflows float64: the JSON decoder rejects it first

		{"NaN explicit column value", `{"axis": "nu", "values": [0.5, NaN],
			"grid": {"axis": "poshare", "lo": 0.1, "hi": 0.4, "points": 2}}`,
			""}, // NaN is not even valid JSON: any parse error is fine
		{"reversed row bounds", `{"axis": "nu", "lo": 0.1, "hi": 1, "points": 3,
			"grid": {"axis": "poshare", "lo": 0.4, "hi": 0.1, "points": 3}}`,
			"hi > lo"},
		{"row value outside domain", `{"axis": "nu", "lo": 0.1, "hi": 1, "points": 3,
			"grid": {"axis": "poshare", "values": [0.5, 1.5]}}`,
			"outside (0,1)"},
		{"missing fixed nu", `{"axis": "price", "lo": 0, "hi": 1, "points": 3,
			"grid": {"axis": "kappa", "lo": 0, "hi": 1, "points": 2}}`,
			"fixed capacity"},
		{"non-finite fixed nu", `{"axis": "price", "lo": 0, "hi": 1, "points": 3, "nu": 1e999,
			"grid": {"axis": "kappa", "lo": 0, "hi": 1, "points": 2}}`,
			""}, // 1e999 overflows float64: the JSON decoder rejects it
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadString(strings.Replace(base, "SWEEP", tc.sweep, 1))
			if err == nil {
				t.Fatalf("invalid grid sweep accepted")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestGridValidationNonFiniteProgrammatic(t *testing.T) {
	// JSON cannot express NaN/Inf, but scenarios built in code can; the
	// validator must still reject them.
	s := tinyGridScenario(t)
	s.Sweep.Grid.Values = []float64{1, math.NaN()}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("NaN row value accepted (err=%v)", err)
	}
	s = tinyGridScenario(t)
	s.Sweep.Grid.Values = []float64{1, math.Inf(1)}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("Inf row value accepted (err=%v)", err)
	}
	s = tinyGridScenario(t)
	s.Sweep.Lo, s.Sweep.Hi, s.Sweep.Points, s.Sweep.Values = math.Inf(-1), 1, 4, nil
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("-Inf column bound accepted (err=%v)", err)
	}
}

func TestGridValidationAxisConstraintsApplyToRowAxis(t *testing.T) {
	// The row axis must satisfy the same market-shape constraints as the
	// column axis: a poshare row axis needs a Public Option second.
	_, err := LoadString(`{
		"name": "t", "title": "t",
		"population": {"kind": "paper"},
		"providers": [
			{"name": "a", "gamma": 0.5, "kappa": 1, "c": 0.4},
			{"name": "b", "gamma": 0.5}
		],
		"sweep": {"axis": "price", "lo": 0, "hi": 1, "points": 3, "nu": 0.4,
		          "of_saturation": true,
		          "grid": {"axis": "poshare", "lo": 0.1, "hi": 0.4, "points": 2}}
	}`)
	if err == nil || !strings.Contains(err.Error(), "Public Option") {
		t.Fatalf("poshare row axis without a Public Option accepted (err=%v)", err)
	}
}

func TestGridValidationRejectsRegulationAndBatch(t *testing.T) {
	_, err := LoadString(`{
		"name": "t", "title": "t",
		"population": {"kind": "paper"},
		"regulation": {},
		"sweep": {"axis": "nu", "values": [0.4], "of_saturation": true,
		          "grid": {"axis": "poshare", "values": [0.3]}}
	}`)
	if err == nil || !strings.Contains(err.Error(), "regulation comparisons do not support grid") {
		t.Fatalf("regulation grid accepted (err=%v)", err)
	}
	_, err = LoadString(`{
		"name": "t", "title": "t",
		"population": {"kind": "ensemble", "n": 1000, "batch": 500},
		"providers": [{"name": "a", "gamma": 1}],
		"sweep": {"axis": "nu", "values": [0.4], "of_saturation": true,
		          "grid": {"axis": "kappa", "values": [0.5]}}
	}`)
	if err == nil || !strings.Contains(err.Error(), "batched populations sweep capacity only") {
		t.Fatalf("batched grid accepted (err=%v)", err)
	}
}

func TestRunRejectsGridAndRunGridRejectsSweep(t *testing.T) {
	s := tinyGridScenario(t)
	if _, err := s.Run(RunOptions{Workers: 1}); err == nil || !strings.Contains(err.Error(), "RunGrid") {
		t.Fatalf("Run accepted a grid scenario (err=%v)", err)
	}
	flat, err := LoadString(`{
		"name": "flat", "title": "flat",
		"population": {"kind": "archetypes"},
		"providers": [{"name": "a", "gamma": 1}],
		"sweep": {"axis": "nu", "values": [1000]}
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flat.RunGrid(RunOptions{Workers: 1}); err == nil || !strings.Contains(err.Error(), "Run") {
		t.Fatalf("RunGrid accepted a 1-D scenario (err=%v)", err)
	}
}

func TestCompileGridLayersAndCells(t *testing.T) {
	job, err := tinyGridScenario(t).CompileGrid()
	if err != nil {
		t.Fatal(err)
	}
	if job.Cells() != 6 {
		t.Fatalf("Cells() = %d, want 6", job.Cells())
	}
	want := []string{"phi", "share/incumbent", "share/po"}
	if len(job.Layers) != len(want) {
		t.Fatalf("layers %v, want %v", job.Layers, want)
	}
	for i := range want {
		if job.Layers[i] != want[i] {
			t.Fatalf("layers %v, want %v", job.Layers, want)
		}
	}
	if job.XAxis != AxisPOShare || job.YAxis != AxisNu {
		t.Fatalf("axes %s×%s, want poshare×nu", job.XAxis, job.YAxis)
	}
}

func TestGridRowMatchesOneDimensionalSweep(t *testing.T) {
	// A grid row at fixed ν must reproduce the 1-D sweep at that ν: same
	// cells, same physics, different execution path (work-stealing row
	// runner + shared warm solver vs chunked 1-D sweep).
	s := tinyGridScenario(t)
	g, err := s.RunGrid(RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	for row, nu := range []float64{1, 2} {
		oneD := tinyGridScenario(t)
		oneD.Sweep.Grid = nil
		oneD.Sweep.Nu = nu
		tables, err := oneD.Run(RunOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		// tables[0] is phi (one series); tables[1] is share (per provider).
		phiRow, err := g.Row("phi", row)
		if err != nil {
			t.Fatal(err)
		}
		for i := range phiRow.X {
			want := tables[0].Series[0].Y[i]
			if diff := math.Abs(phiRow.Y[i] - want); diff > 1e-6*(1+math.Abs(want)) {
				t.Errorf("phi(γ=%g, ν=%g) = %g via grid, %g via 1-D sweep",
					phiRow.X[i], nu, phiRow.Y[i], want)
			}
		}
		shareRow, err := g.Row("share/po", row)
		if err != nil {
			t.Fatal(err)
		}
		for i := range shareRow.X {
			want := tables[1].Series[1].Y[i]
			if diff := math.Abs(shareRow.Y[i] - want); diff > 1e-6*(1+math.Abs(want)) {
				t.Errorf("share_po(γ=%g, ν=%g) = %g via grid, %g via 1-D sweep",
					shareRow.X[i], nu, shareRow.Y[i], want)
			}
		}
	}
}

func TestGridDeterministicAcrossWorkerCounts(t *testing.T) {
	s := tinyGridScenario(t)
	g1, err := s.RunGrid(RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	g4, err := tinyGridScenario(t).RunGrid(RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for li := range g1.Layers {
		for r := range g1.Ys {
			for c := range g1.Xs {
				a, b := g1.Layers[li].Z[r][c], g4.Layers[li].Z[r][c]
				if diff := math.Abs(a - b); diff > 1e-6*(1+math.Abs(a)) {
					t.Errorf("layer %s cell (%d,%d): %g with 1 worker, %g with 4",
						g1.Layers[li].Name, r, c, a, b)
				}
			}
		}
	}
}

func TestCellSpecStableUnderGridResize(t *testing.T) {
	// Growing the grid must keep coincident cells' content addresses:
	// CellSpec ignores the grid bounds and cosmetic fields.
	a := tinyGridScenario(t)
	jobA, err := a.CompileGrid()
	if err != nil {
		t.Fatal(err)
	}
	b := tinyGridScenario(t)
	b.Name = "renamed"
	b.Title = "another title"
	b.Sweep.Grid.Values = []float64{1, 1.5, 2} // one new row, two old
	jobB, err := b.CompileGrid()
	if err != nil {
		t.Fatal(err)
	}
	// (row 0, col 0) of A is (ν=1, γ=0.2); in B that cell is still row 0.
	sa, sb := jobA.CellSpec(0, 0), jobB.CellSpec(0, 0)
	if sa.X != sb.X || sa.Y != sb.Y || sa.XAxis != sb.XAxis || sa.YAxis != sb.YAxis {
		t.Fatalf("coincident cells differ: %+v vs %+v", sa, sb)
	}
	// ν=2 moved from row 1 to row 2 but addresses the same cell.
	sa, sb = jobA.CellSpec(1, 2), jobB.CellSpec(2, 2)
	if sa.X != sb.X || sa.Y != sb.Y {
		t.Fatalf("relocated cell differs: %+v vs %+v", sa, sb)
	}
	// A changed provider strategy must change the spec.
	c := tinyGridScenario(t)
	c.Providers[0].C = 0.5
	jobC, err := c.CompileGrid()
	if err != nil {
		t.Fatal(err)
	}
	if jobC.CellSpec(0, 0).Providers[0].C == jobA.CellSpec(0, 0).Providers[0].C {
		t.Fatal("provider edit did not reach the cell spec")
	}
}

func TestBuiltinGridRowMatchesPublicOptionSizing(t *testing.T) {
	// The acceptance check of the γ×ν built-in: its ν=0.4·sat row must
	// match the existing 1-D public-option-sizing sweep (which fixes
	// ν=0.4·sat) point for point.
	if testing.Short() {
		t.Skip("solves two paper-population sweeps")
	}
	grid2d, ok := Get("po-sizing-gamma-nu")
	if !ok {
		t.Fatal("missing built-in po-sizing-gamma-nu")
	}
	// Keep only the ν=0.4 row so the test stays fast.
	grid2d.Sweep.Grid.Values = []float64{0.4}
	g, err := grid2d.RunGrid(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	oneD, ok := Get("public-option-sizing")
	if !ok {
		t.Fatal("missing built-in public-option-sizing")
	}
	tables, err := oneD.Run(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	phiRow, err := g.Row("phi", 0)
	if err != nil {
		t.Fatal(err)
	}
	phi1D := tables[0].Series[0]
	if phiRow.Len() != phi1D.Len() {
		t.Fatalf("grid row has %d points, 1-D sweep %d", phiRow.Len(), phi1D.Len())
	}
	for i := range phiRow.X {
		if diff := math.Abs(phiRow.Y[i] - phi1D.Y[i]); diff > 1e-6*(1+math.Abs(phi1D.Y[i])) {
			t.Errorf("Φ(γ=%g): grid %g vs 1-D %g", phiRow.X[i], phiRow.Y[i], phi1D.Y[i])
		}
	}
}
