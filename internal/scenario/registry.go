package scenario

import (
	"bytes"
	"fmt"
	"sort"
)

// The built-in registry: one named scenario per figure regime of
// internal/experiment plus market structures from the related literature —
// public-option entry under consumer rebates, asymmetric duopoly, a
// large-N oligopoly over a batched 10⁵-CP ensemble, and 2-D grid scenarios
// (γ×ν sizing, σ×ν rebates, c×κ strategy maps) for the region-shaped
// questions the welfare literature studies.
//
// Built-ins declare capacity as fractions of the population's saturation
// Σ α_i·θ̂_i (OfSaturation) wherever the population is random, so editing the
// ensemble rescales the sweep automatically; the archetype scenario uses the
// paper's absolute Kbps axis.

var builtins = []*Scenario{
	{
		Name:  "neutral-baseline",
		Title: "Neutral monopoly: consumer surplus vs capacity",
		Description: "A single network-neutral ISP (strategy (0,0)) serving the paper's " +
			"1000-CP ensemble. Φ(ν) is strictly increasing until capacity covers all " +
			"unconstrained demand, then flat — the shape Theorem 2 proves.",
		Reference:  "Ma & Misra §II-C, Theorem 2; baseline for Figures 4-5",
		Population: PopulationSpec{Kind: "paper"},
		Providers:  []ProviderSpec{{Name: "neutral", Gamma: 1}},
		Sweep: SweepSpec{
			Axis: AxisNu, Lo: 0.1, Hi: 1.2, Points: 12, OfSaturation: true,
			Metrics: []string{MetricPhi, MetricUtilization},
		},
	},
	{
		Name:  "archetypes-capacity",
		Title: "Google/Netflix/Skype archetypes: demand saturation vs capacity (Kbps)",
		Description: "The three §II-D archetype CPs under a neutral ISP on the paper's " +
			"absolute Kbps axis. Google-type demand saturates first, then Skype-type, " +
			"Netflix-type last — the Figure 3 ordering.",
		Reference:  "Ma & Misra §II-D, Figure 3",
		Population: PopulationSpec{Kind: "archetypes"},
		Providers:  []ProviderSpec{{Name: "neutral", Gamma: 1}},
		Sweep: SweepSpec{
			Axis: AxisNu, Values: []float64{250, 500, 1000, 2000, 3000, 4000, 5000, 5500},
			Metrics: []string{MetricPhi, MetricUtilization},
		},
	},
	{
		Name:  "monopoly-price-sweep",
		Title: "Monopoly premium pricing: revenue and consumer surplus vs price",
		Description: "A monopolist with all capacity premium (κ=1) sweeps the premium " +
			"price c. Revenue Ψ peaks at an interior price while consumer surplus Φ " +
			"falls — the §III conflict that motivates regulation or a Public Option.",
		Reference:  "Ma & Misra §III, Figure 4",
		Population: PopulationSpec{Kind: "paper"},
		Providers:  []ProviderSpec{{Name: "monopolist", Gamma: 1, Kappa: 1}},
		Sweep: SweepSpec{
			Axis: AxisPrice, Lo: 0, Hi: 1, Points: 21, Nu: 0.4, OfSaturation: true,
			Metrics: []string{MetricPhi, MetricPsi, MetricUtilization},
		},
	},
	{
		Name:  "monopoly-capacity",
		Title: "Monopoly under fixed pricing: surplus vs capacity",
		Description: "The monopolist holds (κ=1, c=0.4) while per-capita capacity grows. " +
			"Past a point, extra capacity feeds the premium class only through demand the " +
			"price suppresses — utilization and consumer surplus stall below the neutral " +
			"benchmark (compare neutral-baseline).",
		Reference:  "Ma & Misra §III-E, Figure 5",
		Population: PopulationSpec{Kind: "paper"},
		Providers:  []ProviderSpec{{Name: "monopolist", Gamma: 1, Kappa: 1, C: 0.4}},
		Sweep: SweepSpec{
			Axis: AxisNu, Lo: 0.1, Hi: 1.2, Points: 12, OfSaturation: true,
			Metrics: []string{MetricPhi, MetricPsi, MetricUtilization},
		},
	},
	{
		Name:  "monopoly-phi-independent",
		Title: "Monopoly pricing when consumer utility is independent of sensitivity",
		Description: "The appendix robustness check: φ drawn independently of β instead " +
			"of correlated. The qualitative pricing conflict of monopoly-price-sweep " +
			"survives the change of utility model.",
		Reference:  "Ma & Misra appendix, Figures 9-10",
		Population: PopulationSpec{Kind: "paper", Phi: "independent"},
		Providers:  []ProviderSpec{{Name: "monopolist", Gamma: 1, Kappa: 1}},
		Sweep: SweepSpec{
			Axis: AxisPrice, Lo: 0, Hi: 1, Points: 21, Nu: 0.4, OfSaturation: true,
			Metrics: []string{MetricPhi, MetricPsi},
		},
	},
	{
		Name:  "public-option-duopoly",
		Title: "Strategic incumbent vs Public Option: shares and surplus vs price",
		Description: "An incumbent with κ=1 sweeps its premium price against a " +
			"Public Option of equal capacity. Overpricing sends consumers to the " +
			"neutral entrant — chasing market share disciplines the incumbent " +
			"without regulation (Theorem 5).",
		Reference:  "Ma & Misra §IV-A, Figures 7-8, Theorem 5",
		Population: PopulationSpec{Kind: "paper"},
		Providers: []ProviderSpec{
			{Name: "incumbent", Gamma: 0.5, Kappa: 1},
			{Name: "public-option", Gamma: 0.5, PublicOption: true},
		},
		Sweep: SweepSpec{
			Axis: AxisPrice, Lo: 0, Hi: 1, Points: 11, Nu: 0.4, OfSaturation: true,
			Metrics: []string{MetricPhi, MetricPsi, MetricShare},
		},
	},
	{
		Name:  "public-option-sizing",
		Title: "How much Public Option capacity is enough?",
		Description: "The incumbent plays (κ=1, c=0.4) while the Public Option's " +
			"capacity share γ grows from 5% to 50%. Even a small entrant moves " +
			"market surplus — the §VI sizing question.",
		Reference:  "Ma & Misra §VI; ablation-pubopt-capacity",
		Population: PopulationSpec{Kind: "paper"},
		Providers: []ProviderSpec{
			{Name: "incumbent", Gamma: 0.5, Kappa: 1, C: 0.4},
			{Name: "public-option", Gamma: 0.5, PublicOption: true},
		},
		Sweep: SweepSpec{
			Axis: AxisPOShare, Lo: 0.05, Hi: 0.5, Points: 10, Nu: 0.4, OfSaturation: true,
			Metrics: []string{MetricPhi, MetricShare},
		},
	},
	{
		Name:  "public-option-subsidy",
		Title: "Public Option entry when the incumbent rebates premium revenue",
		Description: "The §VI caveat made quantitative: the incumbent (κ=1, c=0.5) " +
			"rebates a fraction σ of CP-side revenue to subscribers, competing with a " +
			"Public Option on consumer value Φ+σΨ. Rebates buy back share, but the " +
			"regulator's gross-surplus view still favors the entrant — the " +
			"non-neutrality profitability question of the related literature.",
		Reference:  "Ma & Misra §VI; Lotfi et al., non-neutrality profitability",
		Population: PopulationSpec{Kind: "paper"},
		Providers: []ProviderSpec{
			{Name: "incumbent", Gamma: 0.5, Kappa: 1, C: 0.5},
			{Name: "public-option", Gamma: 0.5, PublicOption: true},
		},
		Sweep: SweepSpec{
			Axis: AxisSigma, Lo: 0, Hi: 1, Points: 11, Nu: 0.4, OfSaturation: true,
			Metrics: []string{MetricPhi, MetricShare, MetricPsi},
		},
	},
	{
		Name:  "asymmetric-duopoly",
		Title: "Asymmetric duopoly: a large differentiator vs a small neutral rival",
		Description: "A 70%-capacity incumbent selling priority (κ=1, c=0.5) against a " +
			"30% neutral competitor, across capacities. Market structure — not just " +
			"regulation — decides how much differentiation the market bears, the " +
			"duopoly question the related welfare literature studies.",
		Reference:  "Ma & Misra §IV-B; Chaturvedi et al., welfare under duopoly",
		Population: PopulationSpec{Kind: "ensemble", N: 300, Seed: 7},
		Providers: []ProviderSpec{
			{Name: "incumbent", Gamma: 0.7, Kappa: 1, C: 0.5},
			{Name: "neutral-rival", Gamma: 0.3},
		},
		Sweep: SweepSpec{
			Axis: AxisNu, Lo: 0.15, Hi: 0.9, Points: 8, OfSaturation: true,
			Metrics: []string{MetricPhi, MetricShare},
		},
	},
	{
		Name:  "oligopoly-symmetric",
		Title: "Four-ISP oligopoly with homogeneous strategies (Lemma 4)",
		Description: "Four ISPs with equal strategies (κ=0.5, c=0.3) and capacity shares " +
			"0.4/0.3/0.2/0.1. Under homogeneous strategies market shares track capacity " +
			"shares exactly at every ν — Lemma 4, the investment-incentive result.",
		Reference:  "Ma & Misra §IV-B, Lemma 4",
		Population: PopulationSpec{Kind: "ensemble", N: 300, Seed: 7},
		Providers: []ProviderSpec{
			{Name: "isp-a", Gamma: 0.4, Kappa: 0.5, C: 0.3},
			{Name: "isp-b", Gamma: 0.3, Kappa: 0.5, C: 0.3},
			{Name: "isp-c", Gamma: 0.2, Kappa: 0.5, C: 0.3},
			{Name: "isp-d", Gamma: 0.1, Kappa: 0.5, C: 0.3},
		},
		Sweep: SweepSpec{
			Axis: AxisNu, Lo: 0.2, Hi: 0.8, Points: 6, OfSaturation: true,
			Metrics: []string{MetricPhi, MetricShare},
		},
	},
	{
		Name:  "oligopoly-large-n",
		Title: "Five neutral ISPs serving a 100,000-CP ensemble (batched)",
		Description: "A large-N stress scenario: 10⁵ content providers generated in " +
			"10,000-CP batches, served by five neutral ISPs of unequal capacity. " +
			"Neutral homogeneity makes the equilibrium Lemma 4's: shares equal " +
			"capacity shares and surplus follows the pooled water-fill, evaluated " +
			"batch-parallel without materializing per-CP state.",
		Reference:  "ROADMAP scale goal; Ma & Misra §IV-B, Lemma 4",
		Population: PopulationSpec{Kind: "ensemble", N: 100000, Seed: 42, Batch: 10000},
		Providers: []ProviderSpec{
			{Name: "isp-a", Gamma: 0.3},
			{Name: "isp-b", Gamma: 0.25},
			{Name: "isp-c", Gamma: 0.2},
			{Name: "isp-d", Gamma: 0.15},
			{Name: "isp-e", Gamma: 0.1},
		},
		Sweep: SweepSpec{
			Axis: AxisNu, Lo: 0.1, Hi: 1.2, Points: 12, OfSaturation: true,
			Metrics: []string{MetricPhi, MetricShare, MetricUtilization},
		},
	},
	{
		Name:  "po-sizing-gamma-nu",
		Title: "Public Option sizing: consumer surplus over γ×ν",
		Description: "The paper's central sizing question made two-dimensional: how much " +
			"Public Option capacity share γ disciplines a (κ=1, c=0.4) incumbent, and how " +
			"does the answer move with per-capita capacity ν? Each row is exactly the 1-D " +
			"public-option-sizing sweep at that row's ν; the γ threshold where surplus " +
			"recovers shifts left as capacity scarcity bites harder.",
		Reference:  "Ma & Misra §VI; extends public-option-sizing; Chaturvedi et al., regime maps over 2-D parameter regions",
		Population: PopulationSpec{Kind: "paper"},
		Providers: []ProviderSpec{
			{Name: "incumbent", Gamma: 0.5, Kappa: 1, C: 0.4},
			{Name: "public-option", Gamma: 0.5, PublicOption: true},
		},
		Sweep: SweepSpec{
			Axis: AxisPOShare, Lo: 0.05, Hi: 0.5, Points: 10, OfSaturation: true,
			Metrics: []string{MetricPhi, MetricShare},
			Grid:    &GridSpec{Axis: AxisNu, Values: []float64{0.2, 0.3, 0.4, 0.6}},
		},
	},
	{
		Name:  "po-rebate-sigma-nu",
		Title: "Rebating incumbent vs Public Option: surplus over σ×ν",
		Description: "The §VI caveat as a 2-D map: an incumbent (κ=1, c=0.5) rebates a " +
			"fraction σ of premium revenue to subscribers while per-capita capacity ν " +
			"varies. Shows where rebates buy back enough share to blunt the Public " +
			"Option's discipline — the profitability region the related non-neutrality " +
			"literature characterizes.",
		Reference:  "Ma & Misra §VI; Lotfi et al., non-neutrality profitability regions",
		Population: PopulationSpec{Kind: "paper"},
		Providers: []ProviderSpec{
			{Name: "incumbent", Gamma: 0.5, Kappa: 1, C: 0.5},
			{Name: "public-option", Gamma: 0.5, PublicOption: true},
		},
		Sweep: SweepSpec{
			Axis: AxisSigma, Lo: 0, Hi: 1, Points: 6, OfSaturation: true,
			Metrics: []string{MetricPhi, MetricShare},
			Grid:    &GridSpec{Axis: AxisNu, Values: []float64{0.25, 0.4, 0.6}},
		},
	},
	{
		Name:  "duopoly-price-kappa",
		Title: "Incumbent strategy map vs a Public Option: revenue over c×κ",
		Description: "The incumbent's full strategy space (premium price c × premium " +
			"capacity fraction κ) against an equal-capacity Public Option at fixed ν. " +
			"The revenue layer maps where differentiation pays at all; the share layer " +
			"shows consumers defecting as either lever overreaches (Theorem 5's " +
			"discipline, cell by cell).",
		Reference:  "Ma & Misra §IV-A, Figures 7-8, Theorem 5",
		Population: PopulationSpec{Kind: "paper"},
		Providers: []ProviderSpec{
			{Name: "incumbent", Gamma: 0.5, Kappa: 1, C: 0.5},
			{Name: "public-option", Gamma: 0.5, PublicOption: true},
		},
		Sweep: SweepSpec{
			Axis: AxisPrice, Lo: 0, Hi: 1, Points: 9, Nu: 0.4, OfSaturation: true,
			Metrics: []string{MetricPhi, MetricPsi, MetricShare},
			Grid:    &GridSpec{Axis: AxisKappa, Lo: 0.25, Hi: 1, Points: 4},
		},
	},
	{
		Name:  "regimes-comparison",
		Title: "Consumer surplus by regulatory regime vs capacity",
		Description: "The headline comparison: unregulated monopoly, κ-cap, price-cap, " +
			"full neutrality, and the Public Option on the same population and " +
			"capacities. Expected ranking: Public Option ≥ neutral ≥ caps ≥ " +
			"unregulated (Theorem 5) — the welfare-regulation comparison the related " +
			"literature frames as regimes, here expressed as one scenario.",
		Reference:  "Ma & Misra §III/§VI, Theorem 5; Chaturvedi et al., welfare of neutrality regulation",
		Population: PopulationSpec{Kind: "paper"},
		Regulation: &RegulationSpec{},
		Sweep: SweepSpec{
			Axis: AxisNu, Values: []float64{0.2, 0.4, 0.6, 0.8}, OfSaturation: true,
			Metrics: []string{MetricPhi, MetricPsi},
		},
	},
	{
		Name:  "dyn-convergence",
		Title: "Dynamics: inert consumers converge to the Theorem-1 duopoly equilibrium",
		Description: "The public-option-duopoly market run through the reconcile loop with " +
			"fixed strategies, constant traffic, and migration inertia 0.5: shares start at " +
			"capacity shares and contract geometrically onto the static Assumption-5 " +
			"equilibrium. The trajectory limit is pinned to the one-shot solve within 1e-6 " +
			"by the fixed-point test battery.",
		Reference:  "Ma & Misra §IV-A, Theorem 5; docs/DYNAMICS.md",
		Population: PopulationSpec{Kind: "ensemble", N: 160, Seed: 7},
		Providers: []ProviderSpec{
			{Name: "incumbent", Gamma: 0.5, Kappa: 1, C: 0.5},
			{Name: "public-option", Gamma: 0.5, PublicOption: true},
		},
		Dynamics: &DynamicsSpec{Ticks: 48, Inertia: 0.5},
		Sweep: SweepSpec{
			Axis: AxisTime, Nu: 0.4, OfSaturation: true,
			Metrics: []string{MetricPhi, MetricShare},
		},
	},
	{
		Name:  "dyn-oscillation",
		Title: "Dynamics: an overshooting gradient re-pricer limit-cycles around the optimum",
		Description: "A monopolist (κ=1) re-prices by finite-difference gradient ascent on " +
			"premium revenue with a deliberately overshooting gain. Each tick the price " +
			"leaps past the revenue peak and back — a bounded limit cycle, not convergence: " +
			"the canonical failure mode of aggressive reconcile loops.",
		Reference:  "Ma & Misra §III, Figure 4; docs/DYNAMICS.md",
		Population: PopulationSpec{Kind: "ensemble", N: 160, Seed: 7},
		Providers: []ProviderSpec{
			{Name: "monopolist", Gamma: 1, Kappa: 1, C: 0.1},
		},
		Dynamics: &DynamicsSpec{
			Ticks:    40,
			Policies: []PolicySpec{{Kind: PolicyGradient, Step: 0.02, Gain: 0.01}},
		},
		Sweep: SweepSpec{
			Axis: AxisTime, Nu: 0.4, OfSaturation: true,
			Metrics: []string{MetricPhi, MetricPsi},
		},
	},
	{
		Name:  "dyn-demand-shock",
		Title: "Dynamics: a 50% demand surge against a sticky incumbent and an autoscaled Public Option",
		Description: "Traffic steps up 1.5× at tick 15. The incumbent re-prices only when a " +
			"local search finds a revenue gain past its stickiness threshold; the Public " +
			"Option's actuator grows capacity toward an M/M/1 delay target as its " +
			"subscribers' load rises. Watch capacity, shares, and surplus re-equilibrate " +
			"after the shock.",
		Reference:  "ROADMAP adjustment-dynamics question; docs/DYNAMICS.md",
		Population: PopulationSpec{Kind: "ensemble", N: 160, Seed: 7},
		Providers: []ProviderSpec{
			{Name: "incumbent", Gamma: 0.5, Kappa: 1, C: 0.5},
			{Name: "public-option", Gamma: 0.5, PublicOption: true},
		},
		Dynamics: &DynamicsSpec{
			Ticks:   40,
			Inertia: 0.6,
			Traffic: &TrafficSpec{Process: TrafficStep, At: 15, To: 1.5},
			Policies: []PolicySpec{
				{Kind: PolicySticky, Step: 0.05, Threshold: 0.002},
				{Kind: PolicyFixed},
			},
			Autoscale: &AutoscaleSpec{DelayTarget: 0.25},
		},
		Sweep: SweepSpec{
			Axis: AxisTime, Nu: 0.4, OfSaturation: true,
			Metrics: []string{MetricPhi, MetricShare},
		},
	},
	{
		Name:  "dyn-po-entry",
		Title: "Dynamics: a small Public Option entrant autoscales into a disciplining force",
		Description: "The Public Option enters with 5% of capacity against a (κ=1, c=0.6) " +
			"incumbent. Every tick its delay-target actuator adds capacity as subscribers " +
			"arrive (up to 10× its entry size) while consumers migrate with inertia 0.5 — " +
			"the §VI sizing question asked as a trajectory instead of a sweep.",
		Reference:  "Ma & Misra §VI; extends public-option-sizing; docs/DYNAMICS.md",
		Population: PopulationSpec{Kind: "ensemble", N: 160, Seed: 7},
		Providers: []ProviderSpec{
			{Name: "incumbent", Gamma: 0.95, Kappa: 1, C: 0.6},
			{Name: "public-option", Gamma: 0.05, PublicOption: true},
		},
		Dynamics: &DynamicsSpec{
			Ticks:     40,
			Inertia:   0.5,
			Autoscale: &AutoscaleSpec{DelayTarget: 0.2, Max: 10},
		},
		Sweep: SweepSpec{
			Axis: AxisTime, Nu: 0.4, OfSaturation: true,
			Metrics: []string{MetricPhi, MetricShare},
		},
	},
}

func init() {
	seen := make(map[string]bool, len(builtins))
	for _, s := range builtins {
		if seen[s.Name] {
			panic("scenario: duplicate built-in " + s.Name)
		}
		seen[s.Name] = true
		if err := s.Validate(); err != nil {
			panic(fmt.Sprintf("scenario: invalid built-in: %v", err))
		}
	}
}

// Names returns the built-in scenario names, sorted.
func Names() []string {
	out := make([]string, len(builtins))
	for i, s := range builtins {
		out[i] = s.Name
	}
	sort.Strings(out)
	return out
}

// GridNames returns the names of the built-in 2-D grid scenarios, sorted.
func GridNames() []string {
	var out []string
	for _, s := range builtins {
		if s.IsGrid() {
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}

// DynamicsNames returns the names of the built-in dynamic scenarios, sorted.
func DynamicsNames() []string {
	var out []string
	for _, s := range builtins {
		if s.IsDynamic() {
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}

// All returns deep copies of every built-in scenario, sorted by name.
func All() []*Scenario {
	out := make([]*Scenario, 0, len(builtins))
	for _, name := range Names() {
		s, _ := Get(name)
		out = append(out, s)
	}
	return out
}

// Get returns a deep copy of the named built-in scenario, so callers can
// modify it freely before running.
func Get(name string) (*Scenario, bool) {
	for _, s := range builtins {
		if s.Name == name {
			js, err := s.JSON()
			if err != nil {
				panic(fmt.Sprintf("scenario: built-in %s does not marshal: %v", name, err))
			}
			dup, err := Load(bytes.NewReader(js))
			if err != nil {
				panic(fmt.Sprintf("scenario: built-in %s does not round-trip: %v", name, err))
			}
			return dup, true
		}
	}
	return nil, false
}
