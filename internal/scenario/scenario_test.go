package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// Every built-in must survive marshal → unmarshal → deep-equal: scenarios
// are data, and the registry is the reference corpus for the JSON schema.
func TestBuiltinsRoundTrip(t *testing.T) {
	for _, s := range All() {
		js, err := s.JSON()
		if err != nil {
			t.Fatalf("%s: marshal: %v", s.Name, err)
		}
		back, err := Load(strings.NewReader(string(js)))
		if err != nil {
			t.Fatalf("%s: reload: %v", s.Name, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Errorf("%s: round-trip changed the scenario:\n%s", s.Name, js)
		}
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 10 {
		t.Fatalf("registry has %d scenarios, want >= 10: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Errorf("names not sorted: %q before %q", names[i-1], names[i])
		}
	}
	s, ok := Get("oligopoly-large-n")
	if !ok {
		t.Fatal("missing built-in oligopoly-large-n")
	}
	if s.Population.N != 100000 || s.Population.Batch <= 0 {
		t.Errorf("oligopoly-large-n should be a batched 1e5-CP ensemble, got n=%d batch=%d",
			s.Population.N, s.Population.Batch)
	}
	// Get returns copies: mutating one must not leak into the registry.
	s.Title = "mutated"
	s2, _ := Get("oligopoly-large-n")
	if s2.Title == "mutated" {
		t.Error("Get leaked a mutable reference to the registry")
	}
	if _, ok := Get("no-such-scenario"); ok {
		t.Error("Get returned a scenario for an unknown name")
	}
}

// valid returns a minimal well-formed scenario mutated per test case.
func valid() *Scenario {
	return &Scenario{
		Name:  "t",
		Title: "t",
		Population: PopulationSpec{Kind: "explicit", CPs: []CPSpec{
			{Name: "a", Alpha: 0.5, ThetaHat: 1, V: 0.5, Phi: 0.5,
				Demand: DemandSpec{Family: "exponential", Beta: 2}},
		}},
		Providers: []ProviderSpec{{Name: "isp", Gamma: 1}},
		Sweep:     SweepSpec{Axis: AxisNu, Values: []float64{0.1, 0.3}},
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string // substring of the expected error
	}{
		{"zero capacity on nu axis", func(s *Scenario) {
			s.Sweep.Values = []float64{0, 0.3}
		}, "non-positive"},
		{"zero fixed capacity on price axis", func(s *Scenario) {
			s.Sweep = SweepSpec{Axis: AxisPrice, Lo: 0, Hi: 1, Points: 3}
		}, "positive fixed capacity"},
		{"unknown demand family", func(s *Scenario) {
			s.Population.CPs[0].Demand = DemandSpec{Family: "hyperbolic"}
		}, "unknown demand family"},
		{"exponential without beta", func(s *Scenario) {
			s.Population.CPs[0].Demand = DemandSpec{Family: "exponential"}
		}, "beta"},
		{"empty CP population", func(s *Scenario) {
			s.Population.CPs = nil
		}, "no CPs"},
		{"unknown population kind", func(s *Scenario) {
			s.Population = PopulationSpec{Kind: "census"}
		}, "unknown population kind"},
		{"missing population kind", func(s *Scenario) {
			s.Population = PopulationSpec{}
		}, "population kind missing"},
		{"unknown phi setting", func(s *Scenario) {
			s.Population.Phi = "lognormal"
		}, "phi setting"},
		{"capacity shares not summing to 1", func(s *Scenario) {
			s.Providers = []ProviderSpec{{Name: "a", Gamma: 0.5}, {Name: "b", Gamma: 0.6}}
		}, "sum to"},
		{"alpha out of range", func(s *Scenario) {
			s.Population.CPs[0].Alpha = 1.5
		}, "popularity"},
		{"duplicate provider names", func(s *Scenario) {
			s.Providers = []ProviderSpec{{Name: "a", Gamma: 0.5}, {Name: "a", Gamma: 0.5}}
		}, "duplicate provider"},
		{"no providers and no regulation", func(s *Scenario) {
			s.Providers = nil
		}, "at least one provider"},
		{"unknown axis", func(s *Scenario) {
			s.Sweep.Axis = "temperature"
		}, "unknown sweep axis"},
		{"unknown metric", func(s *Scenario) {
			s.Sweep.Metrics = []string{"entropy"}
		}, "unknown metric"},
		{"duplicate metric", func(s *Scenario) {
			s.Sweep.Metrics = []string{"phi", "phi"}
		}, "duplicate metric"},
		{"empty grid", func(s *Scenario) {
			s.Sweep.Values = nil
		}, "empty sweep grid"},
		{"batched non-neutral provider", func(s *Scenario) {
			s.Population = PopulationSpec{Kind: "ensemble", N: 100, Batch: 50}
			s.Providers = []ProviderSpec{{Name: "isp", Gamma: 1, Kappa: 0.5, C: 0.3}}
		}, "only neutral"},
		{"batched strategy axis", func(s *Scenario) {
			s.Population = PopulationSpec{Kind: "ensemble", N: 100, Batch: 50}
			s.Sweep = SweepSpec{Axis: AxisPrice, Lo: 0, Hi: 1, Points: 3, Nu: 10}
		}, "sweep capacity only"},
		{"batch larger than ensemble", func(s *Scenario) {
			s.Population = PopulationSpec{Kind: "ensemble", N: 100, Batch: 500}
		}, "exceeds ensemble size"},
		{"sigma axis with one provider", func(s *Scenario) {
			s.Sweep = SweepSpec{Axis: AxisSigma, Lo: 0, Hi: 1, Points: 3, Nu: 1}
		}, "exactly two"},
		{"poshare axis without public option", func(s *Scenario) {
			s.Providers = []ProviderSpec{{Name: "a", Gamma: 0.5}, {Name: "b", Gamma: 0.5}}
			s.Sweep = SweepSpec{Axis: AxisPOShare, Lo: 0.1, Hi: 0.5, Points: 3, Nu: 1}
		}, "Public Option"},
		{"two best responders", func(s *Scenario) {
			s.Providers = []ProviderSpec{
				{Name: "a", Gamma: 0.5, BestResponse: true},
				{Name: "b", Gamma: 0.5, BestResponse: true},
			}
		}, "at most one"},
		{"regulation with providers", func(s *Scenario) {
			s.Regulation = &RegulationSpec{}
		}, "drop the providers"},
		{"regulation with unknown regime", func(s *Scenario) {
			s.Providers = nil
			s.Regulation = &RegulationSpec{Regimes: []string{"laissez-faire"}}
		}, "unknown regime"},
		{"regulation on a strategy axis", func(s *Scenario) {
			s.Providers = nil
			s.Regulation = &RegulationSpec{}
			s.Sweep = SweepSpec{Axis: AxisPrice, Lo: 0, Hi: 1, Points: 3, Nu: 1}
		}, "axis must be"},
		{"missing name", func(s *Scenario) {
			s.Name = ""
		}, "missing name"},
		{"path-hostile name", func(s *Scenario) {
			s.Name = "../evil"
		}, "lower-kebab-case"},
		{"best responder on a strategy axis", func(s *Scenario) {
			s.Providers[0].BestResponse = true
			s.Sweep = SweepSpec{Axis: AxisPrice, Lo: 0, Hi: 1, Points: 3, Nu: 1}
		}, "best-responds"},
		{"batched non-ensemble population", func(s *Scenario) {
			s.Population = PopulationSpec{Kind: "paper", Batch: 100}
		}, "cannot be batched"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := valid()
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted an invalid scenario")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			if _, err := s.Run(RunOptions{}); err == nil {
				t.Error("Run accepted what Validate rejected")
			}
		})
	}
}

func TestValidAccepts(t *testing.T) {
	if err := valid().Validate(); err != nil {
		t.Fatalf("minimal scenario rejected: %v", err)
	}
}

// Hand-written JSON must reject unknown fields — silent typos in scenario
// files would otherwise run the wrong experiment.
func TestLoadRejectsUnknownFields(t *testing.T) {
	_, err := LoadString(`{"name":"x","title":"x","popluation":{"kind":"paper"}}`)
	if err == nil {
		t.Fatal("Load accepted a misspelled field")
	}
}

func TestLoadValidates(t *testing.T) {
	_, err := LoadString(`{"name":"x","title":"x",
		"population":{"kind":"paper"},
		"providers":[{"name":"isp","gamma":1}],
		"sweep":{"axis":"nu","values":[0]}}`)
	if err == nil || !strings.Contains(err.Error(), "non-positive") {
		t.Fatalf("Load skipped validation: %v", err)
	}
}

// The JSON wire names are the schema documented in docs/SCENARIOS.md;
// renaming a field is a breaking change that must be deliberate.
func TestWireFormat(t *testing.T) {
	s := valid()
	s.Sweep.OfSaturation = true
	s.Sweep.Nu = 2
	js, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"name"`, `"title"`, `"population"`, `"kind"`, `"cps"`, `"alpha"`,
		`"theta_hat"`, `"demand"`, `"family"`, `"beta"`, `"providers"`,
		`"gamma"`, `"sweep"`, `"axis"`, `"values"`, `"of_saturation"`, `"nu"`,
	} {
		if !strings.Contains(string(js), key) {
			t.Errorf("wire format missing %s:\n%s", key, js)
		}
	}
}
