package scenario

import (
	"fmt"

	"github.com/netecon-sim/publicoption/internal/alloc"
	"github.com/netecon-sim/publicoption/internal/core"
	"github.com/netecon-sim/publicoption/internal/sweep"
)

// SampleOptions controls equilibrium sampling (SampleEquilibria).
type SampleOptions struct {
	// MaxCells bounds how many sweep positions are solved; 0 means 3. The
	// subset is a deterministic function of (cell count, MaxCells, Seed).
	MaxCells int
	// Seed drives the cell subsample; 0 means 1.
	Seed uint64
}

// LinkEquilibrium is one bottleneck-link rate equilibrium inside a solved
// scenario cell: a provider's ordinary or premium class, with the fluid
// per-capita equilibrium (alloc.Result) that class settled into. It is the
// replayable unit of packet-level validation — everything a simulator needs
// (class capacity ν, sub-population, θ profile) in one detached value.
type LinkEquilibrium struct {
	// Scenario is the scenario name, Cell the sweep position it was solved
	// at ("nu=2000" or "poshare=0.3,nu=0.132").
	Scenario string
	Cell     string
	// Provider labels the link's owner: the ISP name, the regime name for
	// regulation scenarios, or regime:isp for the public-option regime.
	Provider string
	// Class is "ordinary" or "premium".
	Class string
	// Share is the provider's consumer market share at this cell.
	Share float64
	// Eq is the class rate equilibrium, cloned and detached from all solver
	// state. Its Nu is the class per-capita capacity over the provider's
	// subscribers; Pop is the class sub-population.
	Eq *alloc.Result
}

// Link renders the provider/class label used in reports.
func (l *LinkEquilibrium) Link() string { return l.Provider + "/" + l.Class }

// sampleCell is one solvable sweep position: the absolute per-capita
// capacity plus the strategic axis assignments of the cell.
type sampleCell struct {
	nu    float64
	axes  []axisValue
	label string
}

// SampleEquilibria solves a deterministic subsample of the scenario's sweep
// cells and returns every non-empty class equilibrium found there — the
// equilibrium sampling hook behind internal/validate and `pubopt validate`.
//
// All scenario shapes that keep per-CP equilibria are supported: 1-D
// sweeps, 2-D grids, best-response and rebate games, and regime
// comparisons (each listed regime contributes its own links per sampled
// capacity). Batched populations are rejected: their streaming water-fill
// never materializes a per-CP equilibrium to replay.
func (s *Scenario) SampleEquilibria(opt SampleOptions) ([]LinkEquilibrium, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Population.Batch > 0 {
		return nil, fmt.Errorf("scenario %q: batched populations stream their water-fill and keep no per-CP equilibrium to sample", s.Name)
	}
	if s.IsDynamic() {
		return nil, fmt.Errorf("scenario %q: dynamics simulations have per-tick equilibria, not sweep cells; there is nothing static to sample", s.Name)
	}
	maxCells := opt.MaxCells
	if maxCells <= 0 {
		maxCells = 3
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	pop, err := s.Population.Materialize()
	if err != nil {
		return nil, err
	}
	cells := s.sampleCells(pop.TotalUnconstrainedPerCapita())
	picked := sweep.SampleIndices(len(cells), maxCells, seed)

	var out []LinkEquilibrium
	emit := func(c sampleCell, name string, share float64, eq *core.ClassEquilibrium) {
		if eq == nil {
			return
		}
		for _, cl := range []struct {
			name string
			res  *alloc.Result
		}{{"ordinary", eq.Ordinary}, {"premium", eq.Premium}} {
			if cl.res == nil || len(cl.res.Pop) == 0 || !(cl.res.Nu > 0) {
				continue // empty class, or a zero-capacity class (κ = 0 or 1)
			}
			out = append(out, LinkEquilibrium{
				Scenario: s.Name, Cell: c.label, Provider: name,
				Class: cl.name, Share: share, Eq: cl.res.Clone(),
			})
		}
	}

	if s.Regulation != nil {
		rc := s.Regulation.withDefaults()
		regimes := rc.Regimes
		if len(regimes) == 0 {
			regimes = allRegimes
		}
		// One warm solver per regime, capacities in ascending order — the
		// same traversal shape as runRegimes.
		for _, regime := range regimes {
			rs := newRegimeSolver(pop, rc)
			for _, ci := range picked {
				c := cells[ci]
				_, eqs := rs.solveAt(regime, c.nu)
				for _, pe := range eqs {
					emit(c, pe.name, pe.share, pe.eq)
				}
			}
		}
		return out, nil
	}

	solver := core.NewSolver(nil)
	var mk *core.Market
	for _, ci := range picked {
		c := cells[ci]
		if mk == nil {
			mk = core.NewMarket(solver, pop, c.nu)
			mk.MigrationTol = 1e-7
		} else {
			mk.NuBar = c.nu // keeps the per-ISP warm partitions
		}
		_, eqs := s.solveAtEx(mk, c.axes)
		for _, pe := range eqs {
			emit(c, pe.name, pe.share, pe.eq)
		}
	}
	return out, nil
}

// sampleCells enumerates the scenario's sweep positions — one per 1-D sweep
// point, one per 2-D grid cell in row-major order — with every ν resolved
// to absolute model units (mirroring runMarket and CompileGrid).
func (s *Scenario) sampleCells(sat float64) []sampleCell {
	label := func(axis string, v float64) string { return fmt.Sprintf("%s=%.6g", axis, v) }
	fixedNu := s.Sweep.Nu
	if s.Sweep.OfSaturation && !s.sweepsAxis(AxisNu) {
		fixedNu *= sat
	}
	xs := s.Sweep.XValues()
	if s.Sweep.Axis == AxisNu {
		xs = s.resolveNu(xs, sat)
	}
	if !s.IsGrid() {
		cells := make([]sampleCell, len(xs))
		for i, x := range xs {
			c := sampleCell{nu: fixedNu, label: label(s.Sweep.Axis, x)}
			if s.Sweep.Axis == AxisNu {
				c.nu = x
			} else {
				c.axes = []axisValue{{s.Sweep.Axis, x}}
			}
			cells[i] = c
		}
		return cells
	}
	ys := s.Sweep.Grid.RowValues()
	if s.Sweep.Grid.Axis == AxisNu {
		ys = s.resolveNu(ys, sat)
	}
	cells := make([]sampleCell, 0, len(xs)*len(ys))
	for _, y := range ys {
		for _, x := range xs {
			c := sampleCell{nu: fixedNu, label: label(s.Sweep.Axis, x) + "," + label(s.Sweep.Grid.Axis, y)}
			if s.Sweep.Axis == AxisNu {
				c.nu = x
			} else {
				c.axes = append(c.axes, axisValue{s.Sweep.Axis, x})
			}
			if s.Sweep.Grid.Axis == AxisNu {
				c.nu = y
			} else {
				c.axes = append(c.axes, axisValue{s.Sweep.Grid.Axis, y})
			}
			cells = append(cells, c)
		}
	}
	return cells
}
