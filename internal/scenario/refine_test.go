package scenario

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/netecon-sim/publicoption/internal/obs"
	"github.com/netecon-sim/publicoption/internal/refine"
)

func TestRefineValidationRejects(t *testing.T) {
	base := `{
		"name": "t", "title": "t",
		"population": {"kind": "paper"},
		"providers": [
			{"name": "a", "gamma": 0.5, "kappa": 1, "c": 0.4},
			{"name": "po", "gamma": 0.5, "public_option": true}
		],
		"sweep": SWEEP
	}`
	grid2x2 := `{"axis": "poshare", "lo": 0.1, "hi": 0.4, "points": 2,
		"metrics": ["phi", "share"],
		"grid": {"axis": "nu", "values": [0.5, 1], "refine": REFINE}}`
	cases := []struct {
		name   string
		refine string
		want   string
	}{
		{"negative tolerance", `{"tolerance": -0.5}`, "refine.tolerance"},
		{"depth beyond hard cap", `{"max_depth": 9}`, "refine.max_depth"},
		{"probes below -1", `{"probes": -2}`, "refine.probes"},
		{"unknown indicator layer", `{"indicator_layer": "psi/nobody"}`,
			"not an output layer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sweep := strings.Replace(grid2x2, "REFINE", tc.refine, 1)
			_, err := LoadString(strings.Replace(base, "SWEEP", sweep, 1))
			if err == nil {
				t.Fatal("invalid refine block accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	t.Run("single-point axis cannot seed", func(t *testing.T) {
		sweep := `{"axis": "poshare", "lo": 0.1, "hi": 0.4, "points": 2,
			"grid": {"axis": "nu", "values": [1], "refine": {}}}`
		_, err := LoadString(strings.Replace(base, "SWEEP", sweep, 1))
		if err == nil || !strings.Contains(err.Error(), "at least 2 points per axis") {
			t.Fatalf("1-row refined grid accepted (err=%v)", err)
		}
	})

	t.Run("empty block is valid and selects defaults", func(t *testing.T) {
		sweep := strings.Replace(grid2x2, "REFINE", "{}", 1)
		s, err := LoadString(strings.Replace(base, "SWEEP", sweep, 1))
		if err != nil {
			t.Fatal(err)
		}
		spec := refine.Spec{}
		job, err := s.CompileGrid()
		if err != nil {
			t.Fatal(err)
		}
		spec = job.RefineSpec()
		if spec.Tol != 0 || spec.MaxDepth != 0 || spec.Probes != 0 {
			t.Fatalf("empty refine block should lower to the zero Spec, got %+v", spec)
		}
		if s.Sweep.Grid.Refine == nil {
			t.Fatal("refine block lost in load")
		}
	})

	t.Run("indicator layer accepts per-provider names", func(t *testing.T) {
		sweep := strings.Replace(grid2x2, "REFINE",
			`{"indicator_layer": "share/po", "indicator_value": 0.25}`, 1)
		if _, err := LoadString(strings.Replace(base, "SWEEP", sweep, 1)); err != nil {
			t.Fatalf("valid per-provider indicator rejected: %v", err)
		}
	})
}

func TestRefineBlockChangesContentAddress(t *testing.T) {
	a := tinyGridScenario(t)
	b := tinyGridScenario(t)
	b.Sweep.Grid.Refine = &RefineSpec{Tolerance: 0.02}
	ca, err := a.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ca, cb) {
		t.Fatal("adding a refine block did not change the canonical bytes")
	}
	if bytes.Contains(ca, []byte("refine")) {
		t.Fatal("nil refine block leaked into canonical JSON — dense-grid content addresses changed")
	}
}

// tinyRefinedScenario is tinyGridScenario with a third ν row (the engine
// needs >= 2 intervals per axis for curvature estimation to have anything
// to chew on) and a refine block.
func tinyRefinedScenario(t *testing.T) *Scenario {
	t.Helper()
	s := tinyGridScenario(t)
	s.Sweep.Grid.Values = []float64{0.5, 1, 2}
	s.Sweep.Grid.Refine = &RefineSpec{Tolerance: 0.02, MaxDepth: 3, Probes: 8}
	return s
}

func TestRunGridRefinedDeterministicAcrossWorkers(t *testing.T) {
	// Satellite: refinement must be deterministic and worker-count
	// independent — byte-identical flattened CSV for 1, 4, and 16 workers.
	var want []byte
	var wantStats obs.RefineStats
	for _, workers := range []int{1, 4, 16} {
		s := tinyRefinedScenario(t)
		res, err := s.RunGridRefined(RunOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := res.Flatten(17, 9).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want, wantStats = buf.Bytes(), res.Stats()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("workers=%d produced different flattened CSV bytes", workers)
		}
		if res.Stats() != wantStats {
			t.Fatalf("workers=%d stats diverge: %+v vs %+v", workers, res.Stats(), wantStats)
		}
	}
	if wantStats.PointsSolved == 0 {
		t.Fatal("no points solved")
	}
}

func TestRunGridRefinedPublishesSolverStats(t *testing.T) {
	s := tinyRefinedScenario(t)
	var counters obs.Counters
	res, err := s.RunGridRefined(RunOptions{Workers: 2, Stats: &counters})
	if err != nil {
		t.Fatal(err)
	}
	snap := counters.Snapshot()
	if snap.Solves == 0 {
		t.Fatal("refined run published no solver telemetry")
	}
	st := res.Stats()
	if st.PointsSolved+st.ProbeSolves == 0 {
		t.Fatal("refined run solved nothing")
	}
}

// latticeCoords reproduces the engine's virtual fine lattice for an axis:
// index i lives in knot cell i/s0 at fraction (i%s0)/s0.
func latticeCoords(knots []float64, s0 int) []float64 {
	n := (len(knots)-1)*s0 + 1
	out := make([]float64, n)
	for i := range out {
		c, rem := i/s0, i%s0
		if c == len(knots)-1 {
			c, rem = c-1, s0
		}
		out[i] = knots[c] + (knots[c+1]-knots[c])*float64(rem)/float64(s0)
	}
	return out
}

func TestRefinedPoSizingBudgetAndEquivalence(t *testing.T) {
	// ISSUE acceptance: refining po-sizing-gamma-nu to the depth-4
	// fine-lattice resolution (145×49 = 7105 cells) must spend at most 15%
	// of the dense solve budget, and the surrogate must agree with direct
	// kernel solves within the configured tolerance on a lattice audit.
	if testing.Short() {
		t.Skip("refined po-sizing run in -short mode")
	}
	s, ok := Get("po-sizing-gamma-nu")
	if !ok {
		t.Fatal("po-sizing-gamma-nu not in registry")
	}
	s.Sweep.Grid.Refine = &RefineSpec{Tolerance: 0.01, MaxDepth: 4, Probes: 32}

	res, err := s.RunGridRefined(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w, h := res.FineDims()
	if w != 145 || h != 49 {
		t.Fatalf("fine lattice %d×%d, want 145×49", w, h)
	}
	st := res.Stats()
	spent := st.PointsSolved + st.ProbeSolves
	budget := uint64(w * h * 15 / 100)
	if spent > budget {
		t.Fatalf("refinement spent %d solves (lattice %d + probes %d), budget is %d (15%% of %d)",
			spent, st.PointsSolved, st.ProbeSolves, budget, w*h)
	}
	if !res.Verified() {
		t.Fatalf("surrogate failed its own probe verification: max error %g > tol %g",
			res.MaxError(), res.Tolerance())
	}

	// Audit a strided sub-lattice of the virtual fine grid against direct
	// solves through the same worker path the dense runner uses.
	job, err := s.CompileGrid()
	if err != nil {
		t.Fatal(err)
	}
	s0x := (w - 1) / (len(job.Xs) - 1)
	s0y := (h - 1) / (len(job.Ys) - 1)
	xs := latticeCoords(job.Xs, s0x)
	ys := latticeCoords(job.Ys, s0y)
	worker := job.NewWorker()
	var worst float64
	var audited int
	for iy := 0; iy < h; iy += 6 {
		for ix := 0; ix < w; ix += 8 {
			truth, ok := job.ValuesSlice(worker.SolveAt(xs[ix], ys[iy]))
			if !ok {
				t.Fatalf("worker returned incomplete layer set at (%g, %g)", xs[ix], ys[iy])
			}
			got, err := res.Values(xs[ix], ys[iy])
			if err != nil {
				t.Fatalf("surrogate rejected in-range point (%g, %g): %v", xs[ix], ys[iy], err)
			}
			for li := range truth {
				e := math.Abs(got[li]-truth[li]) / res.Scale(li)
				if e > worst {
					worst = e
				}
			}
			audited++
		}
	}
	// The probe contract bounds error at random points by tol; the strided
	// audit hits the same interpolation regime, with a little headroom for
	// points the probe draw happened not to sample.
	if limit := 1.5 * res.Tolerance(); worst > limit {
		t.Fatalf("lattice audit: worst normalized error %g exceeds %g (%d points audited)",
			worst, limit, audited)
	}
	if audited < 100 {
		t.Fatalf("audit covered only %d points", audited)
	}
	t.Logf("spent %d/%d solves (%.1f%%), audit worst error %.4g over %d points, leaves %d",
		spent, w*h, 100*float64(spent)/float64(w*h), worst, audited, res.Stats().Leaves())
}
