package scenario

import (
	"math"
	"testing"
)

// FuzzDynamicsSpec drives the loader specifically at the dynamics schema
// extension. Same contract as FuzzScenarioValidate — garbage is rejected
// with an error, never a panic; an accepted scenario revalidates cleanly;
// its canonical JSON round-trips — plus one dynamics-specific invariant:
// anything accepted with a dynamics block must look dynamic from every
// dispatch predicate (IsDynamic true, IsGrid false), so the static runners
// and the streaming endpoints can never both claim it.
//
// The seed corpus is the dynamic half of the registry plus
// deliberately-broken dynamics shapes along each validation edge.
func FuzzDynamicsSpec(f *testing.F) {
	for _, name := range DynamicsNames() {
		s, ok := Get(name)
		if !ok {
			f.Fatalf("dynamic builtin %q missing", name)
		}
		js, err := s.JSON()
		if err != nil {
			f.Fatalf("%s: marshal: %v", name, err)
		}
		f.Add(string(js))
	}
	f.Add(`{"name":"x","title":"x","dynamics":{"ticks":0}}`)
	f.Add(`{"name":"x","title":"x","dynamics":{"ticks":100001}}`)
	f.Add(`{"name":"x","title":"x","dynamics":{"ticks":5,"inertia":1}}`)
	f.Add(`{"name":"x","title":"x","dynamics":{"ticks":5,"traffic":{"process":"tidal"}}}`)
	f.Add(`{"name":"x","title":"x","dynamics":{"ticks":5,"traffic":{"process":"step","at":9,"to":2}}}`)
	f.Add(`{"name":"x","title":"x","dynamics":{"ticks":5,"traffic":{"process":"diurnal","amplitude":1.5,"period":1}}}`)
	f.Add(`{"name":"x","title":"x","dynamics":{"ticks":5,"policies":[{"kind":"greedy"}]}}`)
	f.Add(`{"name":"x","title":"x","dynamics":{"ticks":5,"autoscale":{"delay_target":-1}}}`)
	f.Add(`{"name":"x","title":"x","sweep":{"axis":"time","points":10},"dynamics":{"ticks":5}}`)
	f.Add(`{"name":"x","title":"x","sweep":{"axis":"time"}}`)
	f.Fuzz(func(t *testing.T, js string) {
		s, err := LoadString(js)
		if err != nil {
			return // rejected: the only requirement is no panic
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted scenario fails revalidation: %v\ninput: %s", err, js)
		}
		if s.IsDynamic() {
			if s.IsGrid() {
				t.Fatalf("scenario is both dynamic and grid\ninput: %s", js)
			}
			// Multiplier must stay total over the whole configured run:
			// pure, finite, positive for every valid tick.
			for _, tick := range []int{0, s.Dynamics.Ticks / 2, s.Dynamics.Ticks - 1} {
				if m := s.Dynamics.Multiplier(tick); !(m > 0) || math.IsInf(m, 0) {
					t.Fatalf("tick %d multiplier %g not positive-finite\ninput: %s", tick, m, js)
				}
			}
		}
		out, err := s.JSON()
		if err != nil {
			t.Fatalf("accepted scenario does not marshal: %v\ninput: %s", err, js)
		}
		if _, err := LoadString(string(out)); err != nil {
			t.Fatalf("canonical form rejected on reload: %v\ncanonical: %s", err, out)
		}
	})
}
