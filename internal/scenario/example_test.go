package scenario_test

import (
	"fmt"
	"os"

	"github.com/netecon-sim/publicoption/internal/scenario"
)

// The registry ships named scenarios for every figure regime of the paper
// plus market structures from the related literature; Get returns a
// modifiable copy.
func ExampleGet() {
	s, ok := scenario.Get("public-option-sizing")
	if !ok {
		panic("missing built-in")
	}
	fmt.Println(s.Title)
	fmt.Printf("axis %s over [%g, %g], %d providers\n",
		s.Sweep.Axis, s.Sweep.Lo, s.Sweep.Hi, len(s.Providers))
	// Output:
	// How much Public Option capacity is enough?
	// axis poshare over [0.05, 0.5], 2 providers
}

// Scenarios are plain JSON: Load parses and validates in one step, so a
// typo'd field or an impossible market is caught before any solving.
func ExampleLoad() {
	s, err := scenario.LoadString(`{
		"name": "my-duopoly",
		"title": "An even neutral duopoly",
		"population": {"kind": "ensemble", "n": 100, "seed": 3},
		"providers": [
			{"name": "east", "gamma": 0.5},
			{"name": "west", "gamma": 0.5}
		],
		"sweep": {"axis": "nu", "lo": 0.2, "hi": 0.8, "points": 4,
		          "of_saturation": true, "metrics": ["phi", "share"]}
	}`)
	if err != nil {
		panic(err)
	}
	fmt.Println(s.Name, "-", len(s.Providers), "providers")

	_, err = scenario.LoadString(`{
		"name": "broken", "title": "zero capacity",
		"population": {"kind": "paper"},
		"providers": [{"name": "isp", "gamma": 1}],
		"sweep": {"axis": "nu", "values": [0]}
	}`)
	fmt.Println(err)
	// Output:
	// my-duopoly - 2 providers
	// scenario "broken": capacity sweep contains non-positive ν=0
}

// Declaring a "grid" row axis inside the sweep turns a 1-D scenario into a
// 2-D grid: every (column, row) pair becomes one cell, solved by RunGrid on
// a work-stealing row runner, and the result is a sweep.Grid with one layer
// per metric. Here a fully neutral duopoly makes the surplus analytic: both
// ISPs play (0,0), so the migration equilibrium is homogeneous (Lemma 4)
// and Φ depends only on ν — each grid row is constant, equal to the 1-D
// neutral values (2/3 water level at ν=1; unconstrained at ν=4).
func ExampleScenario_RunGrid() {
	s, err := scenario.LoadString(`{
		"name": "grid-demo", "title": "neutral duopoly over gamma and nu",
		"population": {"kind": "explicit", "cps": [
			{"name": "wide", "alpha": 1, "theta_hat": 2, "v": 0.5, "phi": 1,
			 "demand": {"family": "constant"}},
			{"name": "fat", "alpha": 0.5, "theta_hat": 4, "v": 0.5, "phi": 0.5,
			 "demand": {"family": "constant"}}
		]},
		"providers": [
			{"name": "neutral-a", "gamma": 0.75},
			{"name": "po", "gamma": 0.25, "public_option": true}
		],
		"sweep": {"axis": "poshare", "values": [0.25, 0.5],
		          "grid": {"axis": "nu", "values": [1, 4]}}
	}`)
	if err != nil {
		panic(err)
	}
	grid, err := s.RunGrid(scenario.RunOptions{Workers: 1})
	if err != nil {
		panic(err)
	}
	if err := grid.WriteCSV(os.Stdout); err != nil {
		panic(err)
	}
	// Output:
	// layer,poshare,nu,value
	// phi,0.25,1,0.8333333333
	// phi,0.5,1,0.8333333333
	// phi,0.25,4,3
	// phi,0.5,4,3
}

// Run compiles a scenario into parallel solver sweeps and returns standard
// sweep tables; WriteCSV emits the long-form series,x,y schema every
// figure reproduction uses. Constant demand makes this output analytic:
// at ν=1 the water level is 2/3 (1·τ + 0.5·τ = 1), at ν=4 the link stops
// being a bottleneck.
func ExampleScenario_Run() {
	s, err := scenario.LoadString(`{
		"name": "tiny", "title": "two constant-demand CPs",
		"population": {"kind": "explicit", "cps": [
			{"name": "wide", "alpha": 1, "theta_hat": 2, "v": 0.5, "phi": 1,
			 "demand": {"family": "constant"}},
			{"name": "fat", "alpha": 0.5, "theta_hat": 4, "v": 0.5, "phi": 0.5,
			 "demand": {"family": "constant"}}
		]},
		"providers": [{"name": "neutral", "gamma": 1}],
		"sweep": {"axis": "nu", "values": [1, 4], "metrics": ["phi"]}
	}`)
	if err != nil {
		panic(err)
	}
	tables, err := s.Run(scenario.RunOptions{Workers: 1})
	if err != nil {
		panic(err)
	}
	if err := tables[0].WriteCSV(os.Stdout); err != nil {
		panic(err)
	}
	// Output:
	// series,nu,phi
	// phi,1,0.8333333333
	// phi,4,3
}
