package scenario

import (
	"fmt"
	"testing"
)

// benchGridScenario is a representative mid-size grid: a 200-CP random
// ensemble under incumbent-vs-Public-Option entry, γ (6 columns) × ν
// (4 rows) = 24 cells. Small enough for CI, large enough that the row
// runner's warm starts and work stealing dominate setup cost.
func benchGridScenario() *Scenario {
	return &Scenario{
		Name:       "bench-grid",
		Title:      "bench grid",
		Population: PopulationSpec{Kind: "ensemble", N: 200, Seed: 7},
		Providers: []ProviderSpec{
			{Name: "incumbent", Gamma: 0.5, Kappa: 1, C: 0.4},
			{Name: "public-option", Gamma: 0.5, PublicOption: true},
		},
		Sweep: SweepSpec{
			Axis: AxisPOShare, Lo: 0.1, Hi: 0.5, Points: 6, OfSaturation: true,
			Metrics: []string{MetricPhi, MetricShare},
			Grid:    &GridSpec{Axis: AxisNu, Values: []float64{0.2, 0.35, 0.5, 0.65}},
		},
	}
}

// BenchmarkGridRun times the full 2-D grid pipeline — compile, materialize,
// work-stealing row runner, layer assembly — per worker count. CI extracts
// this into BENCH_grid.json so the grid runner's perf trajectory is
// recorded across PRs.
func BenchmarkGridRun(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := benchGridScenario()
			cells := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := s.RunGrid(RunOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				cells = g.Cells()
			}
			b.ReportMetric(float64(cells), "cells")
		})
	}
}

// BenchmarkGridDense and BenchmarkGridRefined race the two routes to the
// same target resolution: the dense runner solving every cell of a 41×25
// grid, versus adaptive refinement growing the bench seed grid (6×4) to the
// equivalent depth-3 fine lattice (41×25) and interpolating the rest. Both
// report solved-cells/op so CI's BENCH_grid.json records the solve budget
// alongside wall time.
func BenchmarkGridDense(b *testing.B) {
	s := benchGridScenario()
	s.Sweep.Points = 41
	s.Sweep.Grid.Values = nil
	s.Sweep.Grid.Lo, s.Sweep.Grid.Hi, s.Sweep.Grid.Points = 0.2, 0.65, 25
	solved := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := s.RunGrid(RunOptions{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		solved = g.Cells()
	}
	b.ReportMetric(float64(solved), "solved-cells/op")
}

func BenchmarkGridRefined(b *testing.B) {
	s := benchGridScenario()
	s.Sweep.Grid.Refine = &RefineSpec{Tolerance: 0.01, MaxDepth: 3, Probes: 16}
	var solved uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.RunGridRefined(RunOptions{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		st := res.Stats()
		solved = st.PointsSolved + st.ProbeSolves
	}
	b.ReportMetric(float64(solved), "solved-cells/op")
}

// BenchmarkGridCellSolve times one warm cell solve in isolation — the unit
// the batch endpoint pays per cache miss.
func BenchmarkGridCellSolve(b *testing.B) {
	job, err := benchGridScenario().CompileGrid()
	if err != nil {
		b.Fatal(err)
	}
	w := job.NewWorker()
	w.SolveCell(0, 0) // prime the warm partitions
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.SolveCell(0, i%len(job.Xs))
	}
}
