package scenario

import (
	"fmt"

	"github.com/netecon-sim/publicoption/internal/core"
	"github.com/netecon-sim/publicoption/internal/obs"
	"github.com/netecon-sim/publicoption/internal/sweep"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// GridJob is a compiled 2-D grid scenario: the materialized CP population,
// both axes resolved to absolute model units, the output layer names, and a
// per-worker cell solver. The runner (RunGrid) and the serving layer's
// per-cell-cached batch endpoint both execute cells through a GridJob, so
// a cell solved locally and a cell solved behind the HTTP cache are the
// same computation.
//
// Cells are independent across rows; within a row they share warm-start
// state (each cell seeds the next along the column axis). The intended
// execution shape is therefore: one GridWorker per OS worker, rows
// distributed by work stealing (sweep.RunRows), columns sequential.
type GridJob struct {
	// Xs are the resolved column-axis values (absolute ν for a "nu" axis,
	// never fractions of saturation), Ys the resolved row-axis values.
	Xs, Ys []float64
	// XAxis and YAxis are the Axis* constants of the column and row axes.
	XAxis, YAxis string
	// Layers names the scalar fields each cell produces, in output order:
	// "phi" for the market-level consumer surplus Φ, metric/provider (e.g.
	// "share/incumbent") for per-provider metrics.
	Layers []string

	scenario *Scenario
	pop      traffic.Population
	// fixedNu is the resolved absolute per-capita capacity ν when neither
	// axis is "nu"; 0 otherwise (the axis supplies ν per cell).
	fixedNu float64
}

// Cell is the outcome of one grid cell: its position, its resolved
// coordinates, and one value per layer.
type Cell struct {
	// Row and Col index into the job's Ys and Xs.
	Row int `json:"row"`
	Col int `json:"col"`
	// X and Y are the resolved coordinates (absolute model units).
	X float64 `json:"x"`
	Y float64 `json:"y"`
	// Values holds one scalar per layer name (see GridJob.Layers).
	Values map[string]float64 `json:"values"`
}

// CellSpec is the content-addressable specification of one grid cell: the
// parts of the scenario that change the solved numbers (population,
// providers, metrics) plus the cell's resolved absolute coordinates —
// and nothing else. Cosmetic fields (name, title, description, reference)
// and the grid's own bounds are deliberately excluded, so re-running an
// edited grid re-solves only cells whose physics actually changed: growing
// a 10×10 grid to 20×20 re-uses every coincident cell, and renaming the
// scenario re-uses all of them.
type CellSpec struct {
	Population PopulationSpec `json:"population"`
	Providers  []ProviderSpec `json:"providers"`
	XAxis      string         `json:"x_axis"`
	X          float64        `json:"x"`
	YAxis      string         `json:"y_axis"`
	Y          float64        `json:"y"`
	// Nu is the fixed absolute per-capita capacity ν; 0 when one of the
	// axes is "nu" (the coordinate supplies it).
	Nu      float64  `json:"nu,omitempty"`
	Metrics []string `json:"metrics"`
}

// CompileGrid validates the scenario and compiles its 2-D sweep into a
// grid job. Non-grid scenarios are rejected (use Run).
func (s *Scenario) CompileGrid() (*GridJob, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !s.IsGrid() {
		return nil, fmt.Errorf("scenario %q: declares a 1-D sweep (axis %q); solve it with Run", s.Name, s.Sweep.Axis)
	}
	pop, err := s.Population.Materialize()
	if err != nil {
		return nil, err
	}
	sat := pop.TotalUnconstrainedPerCapita()
	j := &GridJob{
		XAxis:    s.Sweep.Axis,
		YAxis:    s.Sweep.Grid.Axis,
		Xs:       s.Sweep.XValues(),
		Ys:       s.Sweep.Grid.RowValues(),
		scenario: s,
		pop:      pop,
	}
	if j.XAxis == AxisNu {
		j.Xs = s.resolveNu(j.Xs, sat)
	}
	if j.YAxis == AxisNu {
		j.Ys = s.resolveNu(j.Ys, sat)
	}
	if j.XAxis != AxisNu && j.YAxis != AxisNu {
		j.fixedNu = s.Sweep.Nu
		if s.Sweep.OfSaturation {
			j.fixedNu *= sat
		}
	}
	for _, m := range s.Sweep.metrics() {
		if m == MetricPhi {
			j.Layers = append(j.Layers, MetricPhi)
			continue
		}
		for _, p := range s.Providers {
			j.Layers = append(j.Layers, m+"/"+p.Name)
		}
	}
	return j, nil
}

// Cells returns the total cell count (rows × columns).
func (j *GridJob) Cells() int { return len(j.Xs) * len(j.Ys) }

// CellSpec returns the content address of cell (row, col) — what the batch
// endpoint hashes into the equilibrium cache key.
func (j *GridJob) CellSpec(row, col int) CellSpec {
	return j.CellSpecAt(j.Xs[col], j.Ys[row])
}

// CellSpecAt returns the content address of the point at resolved
// coordinates (x, y). It is coordinate-based, not index-based, so adaptive
// refinement shares cache entries with any dense grid whose lattice lands
// on the same coordinates.
func (j *GridJob) CellSpecAt(x, y float64) CellSpec {
	return CellSpec{
		Population: j.scenario.Population,
		Providers:  j.scenario.Providers,
		XAxis:      j.XAxis,
		X:          x,
		YAxis:      j.YAxis,
		Y:          y,
		Nu:         j.fixedNu,
		Metrics:    j.scenario.Sweep.metrics(),
	}
}

// NewGrid allocates the zero-filled result grid matching this job.
func (j *GridJob) NewGrid() *sweep.Grid {
	return sweep.NewGrid(j.scenario.Title, j.XAxis, j.YAxis, j.Xs, j.Ys, j.Layers)
}

// GridWorker owns one warm-started solver (and, through it, the reusable
// allocation-free equilibrium workspaces). Workers are not safe for
// concurrent use; create one per goroutine with NewWorker and feed it cells
// in column order within a row to get the warm-start benefit.
type GridWorker struct {
	job *GridJob
	mk  *core.Market
}

// NewWorker returns a fresh worker with its own solver state.
func (j *GridJob) NewWorker() *GridWorker { return &GridWorker{job: j} }

// Stats returns the worker's cumulative solver telemetry (zero before the
// first SolveCell builds the market). Workers are single-goroutine; callers
// aggregating across workers publish each worker's stats to an obs.Counters
// sink after the sweep drains.
func (w *GridWorker) Stats() obs.SolveStats {
	if w.mk == nil {
		return obs.SolveStats{}
	}
	return w.mk.Solver.Stats()
}

// SolveCell solves cell (row, col) and returns its layer values.
func (w *GridWorker) SolveCell(row, col int) Cell {
	j := w.job
	x, y := j.Xs[col], j.Ys[row]
	return Cell{Row: row, Col: col, X: x, Y: y, Values: w.SolveAt(x, y)}
}

// SolveAt solves the market at arbitrary resolved coordinates (x, y) — not
// necessarily on the grid's own lattice — and returns the layer values.
// This is the adaptive refinement entry point: refined lattice points and
// verification probes land between the seed knots. Axis domains are convex,
// so any point between validated grid bounds is itself valid.
func (w *GridWorker) SolveAt(x, y float64) map[string]float64 {
	j := w.job
	nu := j.fixedNu
	var axes []axisValue
	if j.XAxis == AxisNu {
		nu = x
	} else {
		axes = append(axes, axisValue{j.XAxis, x})
	}
	if j.YAxis == AxisNu {
		nu = y
	} else {
		axes = append(axes, axisValue{j.YAxis, y})
	}
	if w.mk == nil {
		w.mk = core.NewMarket(core.NewSolver(nil), j.pop, nu)
		w.mk.MigrationTol = 1e-7
	} else {
		w.mk.NuBar = nu // keeps the per-ISP warm partitions
	}
	pt := j.scenario.solveAt(w.mk, axes)
	return j.cellValues(pt)
}

// cellValues flattens a solved point into the job's layer map.
func (j *GridJob) cellValues(pt point) map[string]float64 {
	vals := make(map[string]float64, len(j.Layers))
	for _, m := range j.scenario.Sweep.metrics() {
		if m == MetricPhi {
			vals[MetricPhi] = pt.phi
			continue
		}
		for k, p := range j.scenario.Providers {
			var v float64
			switch m {
			case MetricPsi:
				v = pt.psi[k]
			case MetricShare:
				v = pt.share[k]
			case MetricUtilization:
				v = pt.util[k]
			}
			vals[m+"/"+p.Name] = v
		}
	}
	return vals
}

// RunGrid validates and solves a 2-D grid scenario: rows are distributed
// across workers by work stealing (sweep.RunRows), each worker reuses one
// warm-started solver for every row it claims, and cells within a row
// warm-start each other along the column axis. The result is one grid with
// one layer per recorded metric (per metric and provider for per-provider
// metrics).
func (s *Scenario) RunGrid(opt RunOptions) (*sweep.Grid, error) {
	job, err := s.CompileGrid()
	if err != nil {
		return nil, err
	}
	g := job.NewGrid()
	workers := opt.workers()
	if workers > len(job.Ys) {
		workers = len(job.Ys)
	}
	state := make([]*GridWorker, workers)
	sweep.RunRows(workers, len(job.Ys), func(worker, row int) {
		if state[worker] == nil {
			state[worker] = job.NewWorker()
		}
		for col := range job.Xs {
			cell := state[worker].SolveCell(row, col)
			for li, name := range job.Layers {
				g.Layers[li].Z[row][col] = cell.Values[name]
			}
		}
	})
	if opt.Stats != nil {
		for _, w := range state {
			if w != nil {
				opt.Stats.Add(w.Stats())
			}
		}
	}
	return g, nil
}
