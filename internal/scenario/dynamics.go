package scenario

import (
	"fmt"
	"math"

	"github.com/netecon-sim/publicoption/internal/numeric"
)

// Dynamics extends the scenario schema from static snapshots to discrete-
// time market simulations: the same population and providers, advanced tick
// by tick through a collector→optimizer→actuator reconcile loop
// (internal/dynamics). A scenario with a Dynamics block sweeps the "time"
// axis — each sweep position is one tick — and is solved by dynamics.Run,
// streamed by POST /v1/simulate, or rendered by `pubopt simulate`; the
// static runners (Run, RunGrid, SampleEquilibria) reject it.

// AxisTime is the sweep axis of dynamic scenarios: simulation ticks
// t = 0, 1, …, Ticks−1. It is valid only alongside a Dynamics block, whose
// Ticks field defines the grid (Points and Values must stay unset).
const AxisTime = "time"

// Dynamics tick-count bound: a /v1/simulate request streams one frame per
// tick, so the bound keeps a single request's work and output finite.
const maxDynamicsTicks = 100000

// DynamicsSpec declares the simulation loop of a dynamic scenario: how many
// ticks to run, how realized traffic varies over time (the collector's
// observation), how providers re-price (the optimizer's policies), how
// sluggishly consumers migrate, and how the Public Option autoscales its
// capacity (the actuator).
type DynamicsSpec struct {
	// Ticks is the number of simulation steps (1 ≤ Ticks ≤ 100000).
	Ticks int `json:"ticks"`
	// Inertia is the consumer-migration stickiness λ ∈ [0, 1): each tick
	// market shares move m(t+1) = λ·m(t) + (1−λ)·m*(t), where m* is the
	// instantaneous Assumption-5 migration equilibrium. 0 jumps straight to
	// m* every tick; values near 1 migrate slowly.
	Inertia float64 `json:"inertia,omitempty"`
	// Traffic selects the time-varying demand process; nil holds demand
	// constant at the declared population.
	Traffic *TrafficSpec `json:"traffic,omitempty"`
	// Policies assigns one re-pricing policy per provider, in provider
	// order. Empty freezes every provider at its declared strategy; when
	// set, it must list exactly one policy per provider (the Public Option
	// must be "fixed" — it never prices by definition).
	Policies []PolicySpec `json:"policies,omitempty"`
	// Autoscale, when set, lets the Public Option adjust its absolute
	// capacity toward an M/M/1 delay target (internal/mm1). Requires a
	// Public Option provider.
	Autoscale *AutoscaleSpec `json:"autoscale,omitempty"`
}

// Traffic processes.
const (
	TrafficConstant = "constant" // multiplier 1 every tick
	TrafficDiurnal  = "diurnal"  // 1 + A·sin(2πt/P)
	TrafficStep     = "step"     // 1 until tick At, then To
	TrafficRamp     = "ramp"     // linear 1 → To over the run
	TrafficNoise    = "noise"    // 1 + A·(2u_t − 1), u_t seeded per tick
)

// TrafficSpec is the time-varying demand process: each tick every CP's
// unconstrained throughput θ̂_i is scaled by a multiplier that depends only
// on (spec, tick) — stateless in time, so a simulation can resume from any
// cached tick without replaying the process.
type TrafficSpec struct {
	// Process is one of the Traffic* constants.
	Process string `json:"process"`
	// Amplitude is the relative swing A of "diurnal" and "noise", in [0, 1).
	Amplitude float64 `json:"amplitude,omitempty"`
	// Period is the tick period P of "diurnal" (≥ 2).
	Period int `json:"period,omitempty"`
	// At is the tick the "step" process switches at (0 ≤ At < Ticks).
	At int `json:"at,omitempty"`
	// To is the terminal multiplier of "step" and "ramp" (> 0, finite).
	To float64 `json:"to,omitempty"`
	// Seed drives the per-tick draws of "noise" (0 is a valid seed).
	Seed uint64 `json:"seed,omitempty"`
}

// Multiplier returns the demand multiplier applied to every θ̂_i at tick t.
// It is a pure function of (spec, t): the "noise" process derives each
// tick's draw from a fresh tick-keyed RNG rather than advancing a stream,
// so trajectories resume mid-run bit-identically.
func (d *DynamicsSpec) Multiplier(t int) float64 {
	tr := d.Traffic
	if tr == nil {
		return 1
	}
	switch tr.Process {
	case TrafficDiurnal:
		return 1 + tr.Amplitude*math.Sin(2*math.Pi*float64(t)/float64(tr.Period))
	case TrafficStep:
		if t >= tr.At {
			return tr.To
		}
		return 1
	case TrafficRamp:
		if d.Ticks <= 1 {
			return tr.To
		}
		f := float64(t) / float64(d.Ticks-1)
		if f > 1 {
			f = 1
		}
		return 1 + (tr.To-1)*f
	case TrafficNoise:
		u := numeric.NewRNG(tr.Seed ^ (0x9e3779b97f4a7c15 * uint64(t+1))).Float64()
		return 1 + tr.Amplitude*(2*u-1)
	}
	return 1 // "constant" (and the zero value, which Validate rejects)
}

// Policy kinds.
const (
	PolicyFixed        = "fixed"         // hold the declared strategy
	PolicyBestResponse = "best-response" // local price search, argmax objective
	PolicyGradient     = "gradient"      // finite-difference gradient ascent
	PolicySticky       = "sticky"        // best-response adopted only past a threshold
)

// Policy objectives.
const (
	ObjectiveRevenue = "revenue" // per-capita premium revenue Ψ·m at the current share
	ObjectiveShare   = "share"   // market share after migration (a full market solve per candidate)
)

// PolicySpec is one provider's re-pricing policy. Policies adjust only the
// premium price c; the premium capacity fraction κ stays declared (the
// paper's differentiation games move along the price axis).
type PolicySpec struct {
	// Kind is one of the Policy* constants; "" means "fixed".
	Kind string `json:"kind,omitempty"`
	// Objective is what the policy climbs: "revenue" (default) or "share".
	Objective string `json:"objective,omitempty"`
	// Step is the price search radius of "best-response"/"sticky" and the
	// finite-difference width of "gradient" (> 0; 0 means 0.05).
	Step float64 `json:"step,omitempty"`
	// Gain multiplies the gradient update c ← c + Gain·∂objective/∂c
	// (> 0; 0 means 0.5). Overshooting gains are how oscillation
	// scenarios are built.
	Gain float64 `json:"gain,omitempty"`
	// Threshold is the minimum objective improvement a "sticky" provider
	// requires before it re-prices (≥ 0; 0 means 0.01).
	Threshold float64 `json:"threshold,omitempty"`
}

// kind resolves the policy kind with "" meaning "fixed".
func (p PolicySpec) kind() string {
	if p.Kind == "" {
		return PolicyFixed
	}
	return p.Kind
}

// AutoscaleSpec is the actuator: each tick the Public Option's absolute
// per-capita capacity moves a fraction Gain of the way toward the capacity
// that would hold its subscribers' M/M/1 delay at DelayTarget
// (mm1.CapacityForDelay scaled by its market share), clamped to
// [Min, Max] × its initial capacity.
type AutoscaleSpec struct {
	// DelayTarget is the mean-sojourn-time target W* (> 0, finite).
	DelayTarget float64 `json:"delay_target"`
	// Gain is the per-tick adjustment fraction in (0, 1]; 0 means 0.5.
	Gain float64 `json:"gain,omitempty"`
	// Min and Max bound capacity as multiples of the Public Option's
	// initial capacity: 0 < Min ≤ 1 ≤ Max. 0 means 0.25 and 4.
	Min float64 `json:"min,omitempty"`
	Max float64 `json:"max,omitempty"`
}

// WithDefaults returns the spec with unset knobs filled in, so the engine
// and documentation resolve defaults identically. It never mutates the
// receiver — canonical JSON (and hence cache keys) keeps the sparse form.
func (a AutoscaleSpec) WithDefaults() AutoscaleSpec {
	if a.Gain <= 0 || a.Gain > 1 {
		a.Gain = 0.5
	}
	if a.Min <= 0 || a.Min > 1 {
		a.Min = 0.25
	}
	if a.Max < 1 {
		a.Max = 4
	}
	return a
}

// WithDefaults resolves the policy's unset numeric knobs.
func (p PolicySpec) WithDefaults() PolicySpec {
	p.Kind = p.kind()
	if p.Objective == "" {
		p.Objective = ObjectiveRevenue
	}
	if p.Step <= 0 {
		p.Step = 0.05
	}
	if p.Gain <= 0 {
		p.Gain = 0.5
	}
	if p.Threshold <= 0 {
		p.Threshold = 0.01
	}
	return p
}

// IsDynamic reports whether the scenario declares a dynamics simulation
// (solve with the internal/dynamics engine, not Run/RunGrid).
func (s *Scenario) IsDynamic() bool { return s.Dynamics != nil }

var validTrafficProcesses = map[string]bool{
	TrafficConstant: true, TrafficDiurnal: true, TrafficStep: true,
	TrafficRamp: true, TrafficNoise: true,
}

var validPolicyKinds = map[string]bool{
	PolicyFixed: true, PolicyBestResponse: true, PolicyGradient: true, PolicySticky: true,
}

var validObjectives = map[string]bool{
	"": true, ObjectiveRevenue: true, ObjectiveShare: true,
}

// validateDynamics vets the Dynamics block against the rest of the
// scenario. It runs after validateProviders, so provider shapes are sound.
func (s *Scenario) validateDynamics() error {
	d := s.Dynamics
	if d.Ticks < 1 || d.Ticks > maxDynamicsTicks {
		return fmt.Errorf("scenario %q: dynamics ticks %d outside [1, %d]", s.Name, d.Ticks, maxDynamicsTicks)
	}
	if d.Inertia < 0 || d.Inertia >= 1 || math.IsNaN(d.Inertia) {
		return fmt.Errorf("scenario %q: dynamics inertia %g outside [0, 1)", s.Name, d.Inertia)
	}
	if s.Population.Batch > 0 {
		return fmt.Errorf("scenario %q: dynamics simulations do not support batched populations (each tick re-evaluates the full market)", s.Name)
	}
	for _, p := range s.Providers {
		if p.BestResponse {
			return fmt.Errorf("scenario %q: dynamics scenarios re-price through policies; drop best_response on %q", s.Name, p.Name)
		}
		if p.Sigma > 0 {
			return fmt.Errorf("scenario %q: dynamics simulations do not support revenue rebates (%q has sigma=%g)", s.Name, p.Name, p.Sigma)
		}
	}
	if err := d.validateTraffic(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if err := s.validatePolicies(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if d.Autoscale != nil {
		po := -1
		for i, p := range s.Providers {
			if p.PublicOption {
				po = i
			}
		}
		if po < 0 {
			return fmt.Errorf("scenario %q: dynamics autoscale needs a Public Option provider", s.Name)
		}
		a := d.Autoscale
		if !(a.DelayTarget > 0) || math.IsInf(a.DelayTarget, 0) {
			return fmt.Errorf("scenario %q: autoscale delay_target %g must be positive and finite", s.Name, a.DelayTarget)
		}
		if a.Gain < 0 || a.Gain > 1 || math.IsNaN(a.Gain) {
			return fmt.Errorf("scenario %q: autoscale gain %g outside [0, 1]", s.Name, a.Gain)
		}
		if a.Min < 0 || a.Min > 1 || math.IsNaN(a.Min) {
			return fmt.Errorf("scenario %q: autoscale min %g outside (0, 1] (0 means the 0.25 default)", s.Name, a.Min)
		}
		if a.Max < 0 || math.IsInf(a.Max, 0) || math.IsNaN(a.Max) || (a.Max > 0 && a.Max < 1) {
			return fmt.Errorf("scenario %q: autoscale max %g must be ≥ 1 (0 means the 4 default)", s.Name, a.Max)
		}
	}
	return nil
}

func (d *DynamicsSpec) validateTraffic() error {
	tr := d.Traffic
	if tr == nil {
		return nil
	}
	if !validTrafficProcesses[tr.Process] {
		return fmt.Errorf("unknown traffic process %q", tr.Process)
	}
	switch tr.Process {
	case TrafficDiurnal:
		if tr.Amplitude < 0 || tr.Amplitude >= 1 || math.IsNaN(tr.Amplitude) {
			return fmt.Errorf("diurnal traffic amplitude %g outside [0, 1)", tr.Amplitude)
		}
		if tr.Period < 2 {
			return fmt.Errorf("diurnal traffic period %d must be at least 2 ticks", tr.Period)
		}
	case TrafficStep:
		if tr.At < 0 || tr.At >= d.Ticks {
			return fmt.Errorf("step traffic switches at tick %d, outside [0, %d)", tr.At, d.Ticks)
		}
		if !(tr.To > 0) || math.IsInf(tr.To, 0) {
			return fmt.Errorf("step traffic multiplier to=%g must be positive and finite", tr.To)
		}
	case TrafficRamp:
		if !(tr.To > 0) || math.IsInf(tr.To, 0) {
			return fmt.Errorf("ramp traffic multiplier to=%g must be positive and finite", tr.To)
		}
	case TrafficNoise:
		if tr.Amplitude < 0 || tr.Amplitude >= 1 || math.IsNaN(tr.Amplitude) {
			return fmt.Errorf("noise traffic amplitude %g outside [0, 1)", tr.Amplitude)
		}
	}
	return nil
}

func (s *Scenario) validatePolicies() error {
	d := s.Dynamics
	if len(d.Policies) == 0 {
		return nil
	}
	if len(d.Policies) != len(s.Providers) {
		return fmt.Errorf("dynamics policies list %d entries for %d providers (one per provider, in order)", len(d.Policies), len(s.Providers))
	}
	for i, p := range d.Policies {
		prov := s.Providers[i]
		if !validPolicyKinds[p.kind()] {
			return fmt.Errorf("provider %q: unknown policy kind %q", prov.Name, p.Kind)
		}
		if !validObjectives[p.Objective] {
			return fmt.Errorf("provider %q: unknown policy objective %q", prov.Name, p.Objective)
		}
		if prov.PublicOption && p.kind() != PolicyFixed {
			return fmt.Errorf("provider %q: the Public Option is neutral by definition and cannot re-price (policy %q)", prov.Name, p.kind())
		}
		for _, knob := range []struct {
			name  string
			value float64
		}{{"step", p.Step}, {"gain", p.Gain}, {"threshold", p.Threshold}} {
			if knob.value < 0 || math.IsNaN(knob.value) || math.IsInf(knob.value, 0) {
				return fmt.Errorf("provider %q: policy %s %g must be non-negative and finite", prov.Name, knob.name, knob.value)
			}
		}
	}
	return nil
}
