package scenario

import (
	"testing"

	"github.com/netecon-sim/publicoption/internal/obs"
)

// TestRunPublishesSolverStats wires an obs.Counters sink into a 1-D sweep
// and a 2-D grid and requires both to publish kernel work: the telemetry
// path must see every solve the runner performs.
func TestRunPublishesSolverStats(t *testing.T) {
	s := &Scenario{
		Name: "stats-1d", Title: "stats",
		Population: smallEnsemble(40),
		Providers:  []ProviderSpec{{Name: "isp", Gamma: 1, Kappa: 0.5, C: 0.4}},
		Sweep: SweepSpec{
			Axis: AxisNu, Lo: 0.2, Hi: 0.8, Points: 4, OfSaturation: true,
			Metrics: []string{MetricPhi},
		},
	}
	var sink obs.Counters
	if _, err := s.Run(RunOptions{Workers: 2, Stats: &sink}); err != nil {
		t.Fatal(err)
	}
	st := sink.Snapshot()
	if st.Solves == 0 || st.Evals == 0 {
		t.Fatalf("1-D sweep published no solver work: %+v", st)
	}

	g := &Scenario{
		Name: "stats-grid", Title: "stats grid",
		Population: smallEnsemble(30),
		Providers:  []ProviderSpec{{Name: "isp", Gamma: 1, Kappa: 0.5}},
		Sweep: SweepSpec{
			Axis: AxisPrice, Lo: 0.2, Hi: 0.6, Points: 3, Nu: 0.4, OfSaturation: true,
			Metrics: []string{MetricPhi},
			Grid:    &GridSpec{Axis: AxisNu, Lo: 0.3, Hi: 0.7, Points: 3},
		},
	}
	var gridSink obs.Counters
	if _, err := g.RunGrid(RunOptions{Workers: 2, Stats: &gridSink}); err != nil {
		t.Fatal(err)
	}
	gs := gridSink.Snapshot()
	if gs.Solves == 0 || gs.Evals == 0 {
		t.Fatalf("grid run published no solver work: %+v", gs)
	}

	// Regime scenarios publish per-curve.
	r := &Scenario{
		Name: "stats-regimes", Title: "stats regimes",
		Population: smallEnsemble(30),
		Regulation: &RegulationSpec{Regimes: []string{"neutral", "kappa-cap"}},
		Sweep: SweepSpec{
			Axis: AxisNu, Lo: 0.3, Hi: 0.6, Points: 2, OfSaturation: true,
			Metrics: []string{MetricPhi},
		},
	}
	var regimeSink obs.Counters
	if _, err := r.Run(RunOptions{Workers: 2, Stats: &regimeSink}); err != nil {
		t.Fatal(err)
	}
	if rs := regimeSink.Snapshot(); rs.Solves == 0 {
		t.Fatalf("regime run published no solver work: %+v", rs)
	}
}
