package scenario

import "testing"

// FuzzScenarioValidate drives the JSON loader with arbitrary input. The
// contract under fuzzing: garbage is rejected with an error, never a panic;
// an accepted scenario revalidates cleanly (validation is idempotent and
// Load left the struct in a consistent state); and its canonical JSON form
// is accepted back, so anything the loader admits can round-trip through
// the batch endpoint and the on-disk scenario files.
//
// The seed corpus is the whole built-in registry — the reference corpus for
// the schema — plus a few deliberately-broken shapes.
func FuzzScenarioValidate(f *testing.F) {
	for _, s := range All() {
		js, err := s.JSON()
		if err != nil {
			f.Fatalf("%s: marshal: %v", s.Name, err)
		}
		f.Add(string(js))
	}
	f.Add(`{}`)
	f.Add(`{"name":"x","title":"x"}`)
	f.Add(`{"name":"x","title":"x","population":{"kind":"paper","n":-3}}`)
	f.Add(`not json at all`)
	f.Add(`{"name":"x","title":"x","sweep":{"axis":"nu","from":1,"to":0,"points":0}}`)
	f.Fuzz(func(t *testing.T, js string) {
		s, err := LoadString(js)
		if err != nil {
			return // rejected: the only requirement is no panic
		}
		if s == nil {
			t.Fatal("LoadString returned nil scenario with nil error")
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted scenario fails revalidation: %v\ninput: %s", err, js)
		}
		out, err := s.JSON()
		if err != nil {
			t.Fatalf("accepted scenario does not marshal: %v\ninput: %s", err, js)
		}
		if _, err := LoadString(string(out)); err != nil {
			t.Fatalf("canonical form rejected on reload: %v\ncanonical: %s", err, out)
		}
	})
}
