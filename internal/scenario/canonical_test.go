package scenario

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/netecon-sim/publicoption/internal/traffic"
)

func TestCanonicalJSONDeterministicAndCompact(t *testing.T) {
	s1, ok := Get("neutral-baseline")
	if !ok {
		t.Fatal("missing built-in neutral-baseline")
	}
	s2, _ := Get("neutral-baseline")
	c1, err := s1.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s2.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, c2) {
		t.Fatal("two copies of the same scenario serialize differently")
	}
	var compacted bytes.Buffer
	if err := json.Compact(&compacted, c1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, compacted.Bytes()) {
		t.Fatal("canonical form is not compact")
	}

	// Round-trip through the pretty form and back: same canonical bytes.
	pretty, err := s1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := Load(bytes.NewReader(pretty))
	if err != nil {
		t.Fatal(err)
	}
	c3, err := reloaded.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, c3) {
		t.Fatalf("canonical bytes changed across a JSON round-trip:\n%s\nvs\n%s", c1, c3)
	}

	// Canonical bytes are themselves a loadable scenario.
	if _, err := Load(bytes.NewReader(c1)); err != nil {
		t.Fatalf("canonical form does not load: %v", err)
	}
}

func TestCanonicalJSONDistinguishesScenarios(t *testing.T) {
	a, _ := Get("neutral-baseline")
	b, _ := Get("neutral-baseline")
	b.Sweep.Points++
	ca, _ := a.CanonicalJSON()
	cb, _ := b.CanonicalJSON()
	if bytes.Equal(ca, cb) {
		t.Fatal("scenarios with different sweeps share canonical bytes")
	}
}

func TestApplyEnsembleOverrides(t *testing.T) {
	t.Run("noop when both zero", func(t *testing.T) {
		s, _ := Get("archetypes-capacity")
		before, _ := s.CanonicalJSON()
		if err := s.ApplyEnsembleOverrides(0, 0); err != nil {
			t.Fatal(err)
		}
		after, _ := s.CanonicalJSON()
		if !bytes.Equal(before, after) {
			t.Fatal("zero overrides mutated the scenario")
		}
	})
	t.Run("paper becomes seeded ensemble", func(t *testing.T) {
		s, _ := Get("neutral-baseline")
		if s.Population.Kind != "paper" {
			t.Fatalf("precondition: neutral-baseline population is %q", s.Population.Kind)
		}
		if err := s.ApplyEnsembleOverrides(42, 77); err != nil {
			t.Fatal(err)
		}
		if s.Population.Kind != "ensemble" || s.Population.Seed != 42 || s.Population.N != 77 {
			t.Fatalf("override result: %+v", s.Population)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("overridden scenario invalid: %v", err)
		}
	})
	t.Run("ensemble keeps kind", func(t *testing.T) {
		s := &Scenario{
			Name: "t", Title: "t",
			Population: PopulationSpec{Kind: "ensemble", N: 100, Seed: 1},
			Providers:  []ProviderSpec{{Name: "p", Gamma: 1}},
			Sweep:      SweepSpec{Axis: AxisNu, Values: []float64{1}},
		}
		if err := s.ApplyEnsembleOverrides(9, 0); err != nil {
			t.Fatal(err)
		}
		if s.Population.Kind != "ensemble" || s.Population.Seed != 9 || s.Population.N != 100 {
			t.Fatalf("override result: %+v", s.Population)
		}
	})
	t.Run("non-random populations reject overrides", func(t *testing.T) {
		for _, name := range []string{"archetypes-capacity"} {
			s, _ := Get(name)
			if err := s.ApplyEnsembleOverrides(7, 0); err == nil {
				t.Fatalf("%s accepted a seed override without a random population", name)
			}
		}
	})
	t.Run("negative size rejected", func(t *testing.T) {
		s, _ := Get("neutral-baseline")
		if err := s.ApplyEnsembleOverrides(0, -5); err == nil {
			t.Fatal("negative ensemble size accepted")
		}
	})
	t.Run("batched size floor enforced via Validate", func(t *testing.T) {
		s, _ := Get("oligopoly-large-n")
		if s.Population.Batch == 0 {
			t.Skip("oligopoly-large-n no longer batched")
		}
		if err := s.ApplyEnsembleOverrides(0, s.Population.Batch-1); err == nil {
			t.Fatal("shrinking a batched ensemble below its batch size passed validation")
		}
	})
}

func TestApplyEnsembleOverridesChangesDraw(t *testing.T) {
	run := func(seed uint64) []float64 {
		s, _ := Get("neutral-baseline")
		if err := s.ApplyEnsembleOverrides(seed, 30); err != nil {
			t.Fatal(err)
		}
		tables, err := s.Run(RunOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return tables[0].Series[0].Y
	}
	a, b, c := run(1), run(1), run(2)
	if !equalFloats(a, b) {
		t.Fatal("same seed, different results")
	}
	if equalFloats(a, c) {
		t.Fatal("different seeds produced identical results")
	}
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDefaultEnsembleEqualsPaperPopulation pins the premise behind
// ApplyEnsembleOverrides' paper->ensemble switch: a default-parameter
// ensemble must reproduce the "paper" population exactly, under BOTH φ
// settings. The independent setting is the regression case — its φ redraw
// must come from a separate stream (PaperPopulation's convention), not
// shift the characteristic draws.
func TestDefaultEnsembleEqualsPaperPopulation(t *testing.T) {
	for _, phi := range []string{"", "independent"} {
		paper := PopulationSpec{Kind: "paper", Phi: phi}
		ens := PopulationSpec{Kind: "ensemble", Phi: phi}
		a, err := paper.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		b, err := ens.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("phi=%q: sizes %d vs %d", phi, len(a), len(b))
		}
		for i := range a {
			if a[i].Alpha != b[i].Alpha || a[i].ThetaHat != b[i].ThetaHat ||
				a[i].V != b[i].V || a[i].Phi != b[i].Phi {
				t.Fatalf("phi=%q: CP %d differs: paper %+v vs ensemble %+v", phi, i, a[i], b[i])
			}
		}
	}
}

func TestOverrideWithDefaultsPreservesPhiIndependentOutput(t *testing.T) {
	// Re-specifying the effective defaults must not change the result, even
	// for the φ-independent appendix scenario.
	baseline, _ := Get("monopoly-phi-independent")
	overridden, _ := Get("monopoly-phi-independent")
	if err := overridden.ApplyEnsembleOverrides(traffic.DefaultSeed, 1000); err != nil {
		t.Fatal(err)
	}
	a, err := baseline.Population.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := overridden.Population.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Alpha != b[i].Alpha || a[i].ThetaHat != b[i].ThetaHat ||
			a[i].V != b[i].V || a[i].Phi != b[i].Phi {
			t.Fatalf("CP %d differs after a defaults-only override", i)
		}
	}
}

func TestCanonicalJSONMatchesWireLoad(t *testing.T) {
	// A scenario arriving over the wire as raw JSON and the same scenario
	// from the registry must content-address identically — the property the
	// service's cache relies on.
	s, _ := Get("monopoly-price-sweep")
	canon, err := s.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var raw json.RawMessage = canon
	loaded, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := loaded.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canon, c2) {
		t.Fatal("wire round-trip changed the canonical form")
	}
}
