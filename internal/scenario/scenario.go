// Package scenario turns market experiments into data. A Scenario is a
// plain, JSON-round-trippable description of one study over the Ma–Misra
// model: which ISPs compete (monopoly, duopoly, N-firm oligopoly, with or
// without a Public Option entrant), which CP population they serve (named
// archetypes, the paper's random ensembles, or an explicit list with any
// demand family from internal/demand), which regulatory regimes apply
// (internal/core/regulate.go), and which axis is swept.
//
// Scenarios decouple "what market to study" from "how to solve it": the
// registry ships the regimes of every figure in internal/experiment plus
// market structures from the related literature (asymmetric duopolies,
// large-N oligopolies, revenue-rebating incumbents), and Run compiles any
// scenario — built-in or loaded from JSON — into warm-started solver sweeps
// parallelized with sweep.RunParallel. Large CP populations (10⁵–10⁶) are
// generated and evaluated in fixed-size batches so memory stays bounded.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/netecon-sim/publicoption/internal/core"
	"github.com/netecon-sim/publicoption/internal/demand"
	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// Scenario is one declarative market experiment. The zero value is invalid;
// construct scenarios literally, load them with Load, or copy a built-in
// from the registry (Get) and modify it.
type Scenario struct {
	// Name is the registry key, lower-kebab-case (e.g. "public-option-sizing").
	Name string `json:"name"`
	// Title is the one-line human description used as table titles.
	Title string `json:"title"`
	// Description expands on what the scenario models and what to expect.
	Description string `json:"description,omitempty"`
	// Reference ties the scenario to a paper figure, section, or related work.
	Reference string `json:"reference,omitempty"`
	// Population declares the CP side of the market.
	Population PopulationSpec `json:"population"`
	// Providers declares the ISP side: one entry is a monopoly, two a
	// duopoly, more an oligopoly. Capacity shares must sum to 1. Empty is
	// allowed only for regime-comparison scenarios (Regulation != nil),
	// where the market structure is implied by each regime.
	Providers []ProviderSpec `json:"providers,omitempty"`
	// Regulation, when set, switches the scenario to a regime comparison:
	// instead of solving the declared providers, each listed regulatory
	// regime is solved per sweep point (the sweep axis must be "nu").
	Regulation *RegulationSpec `json:"regulation,omitempty"`
	// Dynamics, when set, switches the scenario to a discrete-time market
	// simulation (internal/dynamics): the sweep axis must be "time" and the
	// scenario is solved tick-by-tick rather than point-by-point.
	Dynamics *DynamicsSpec `json:"dynamics,omitempty"`
	// Sweep declares the x-axis and the metrics to record.
	Sweep SweepSpec `json:"sweep"`
}

// PopulationSpec declares the content-provider population.
type PopulationSpec struct {
	// Kind selects the source: "paper" (the published 1000-CP ensemble),
	// "archetypes" (the §II-D Google/Netflix/Skype trio), "ensemble" (a
	// random draw parameterized below), or "explicit" (the CPs field).
	Kind string `json:"kind"`
	// Phi selects the consumer-utility model for ensembles: "correlated"
	// (default, φ ~ U[0,β]) or "independent" (φ ~ U[0,U[0,10]]).
	Phi string `json:"phi,omitempty"`
	// N is the ensemble size (Kind "ensemble"; 0 means 1000).
	N int `json:"n,omitempty"`
	// Seed is the ensemble seed (0 means the published default).
	Seed uint64 `json:"seed,omitempty"`
	// AlphaHi, ThetaHatHi, VHi, BetaHi override the ensemble's draw ranges;
	// 0 means the paper's value (1, 1, 1, 10 respectively).
	AlphaHi    float64 `json:"alpha_hi,omitempty"`
	ThetaHatHi float64 `json:"theta_hat_hi,omitempty"`
	VHi        float64 `json:"v_hi,omitempty"`
	BetaHi     float64 `json:"beta_hi,omitempty"`
	// Batch, when positive, generates the ensemble in fixed-size batches
	// and evaluates equilibria batch-by-batch, bounding memory for
	// 10⁵–10⁶-CP populations. Batched populations support only neutral
	// providers (the streaming water-fill has no premium class).
	Batch int `json:"batch,omitempty"`
	// CPs is the explicit population (Kind "explicit").
	CPs []CPSpec `json:"cps,omitempty"`
}

// CPSpec is one explicit content provider.
type CPSpec struct {
	Name     string     `json:"name"`
	Alpha    float64    `json:"alpha"`     // popularity α ∈ (0,1]
	ThetaHat float64    `json:"theta_hat"` // unconstrained per-user throughput θ̂ > 0
	V        float64    `json:"v"`         // per-unit-traffic revenue v ≥ 0
	Phi      float64    `json:"phi"`       // per-unit-traffic consumer utility φ ≥ 0
	Demand   DemandSpec `json:"demand"`
}

// DemandSpec is a tagged union over the demand families of internal/demand.
type DemandSpec struct {
	// Family is one of "exponential", "constant", "linear", "power",
	// "smoothstep".
	Family string `json:"family"`
	// Beta is the exponential family's throughput sensitivity β.
	Beta float64 `json:"beta,omitempty"`
	// Floor is the linear family's demand at ω = 0.
	Floor float64 `json:"floor,omitempty"`
	// Gamma is the power family's elasticity exponent.
	Gamma float64 `json:"gamma,omitempty"`
	// T and K are the smoothstep family's threshold and steepness.
	T float64 `json:"t,omitempty"`
	K float64 `json:"k,omitempty"`
}

// Curve materializes the demand curve, rejecting unknown families.
func (d DemandSpec) Curve() (demand.Curve, error) {
	switch d.Family {
	case "exponential":
		if !(d.Beta > 0) {
			return nil, fmt.Errorf("scenario: exponential demand needs beta > 0, got %g", d.Beta)
		}
		return demand.Exponential{Beta: d.Beta}, nil
	case "constant":
		return demand.Constant{}, nil
	case "linear":
		if d.Floor < 0 || d.Floor > 1 {
			return nil, fmt.Errorf("scenario: linear demand floor %g outside [0,1]", d.Floor)
		}
		return demand.Linear{Floor: d.Floor}, nil
	case "power":
		if d.Gamma < 0 {
			return nil, fmt.Errorf("scenario: power demand needs gamma >= 0, got %g", d.Gamma)
		}
		return demand.Power{Gamma: d.Gamma}, nil
	case "smoothstep":
		if !(d.T > 0 && d.T < 1) || !(d.K > 0) {
			return nil, fmt.Errorf("scenario: smoothstep demand needs t in (0,1) and k > 0, got t=%g k=%g", d.T, d.K)
		}
		return demand.SmoothStep{T: d.T, K: d.K}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown demand family %q", d.Family)
	}
}

// ProviderSpec is one ISP in the market.
type ProviderSpec struct {
	Name string `json:"name"`
	// Gamma is the ISP's share of total last-mile capacity, in (0,1];
	// shares must sum to 1 across providers.
	Gamma float64 `json:"gamma"`
	// Kappa and C are the differentiation strategy s = (κ, c). Ignored when
	// PublicOption is set (the Public Option plays (0,0) by definition).
	Kappa float64 `json:"kappa,omitempty"`
	C     float64 `json:"c,omitempty"`
	// PublicOption marks a neutral Public Option entrant (Definition 5).
	PublicOption bool `json:"public_option,omitempty"`
	// BestResponse lets this provider search a small strategy grid for its
	// market-share best response at every sweep point instead of playing
	// the fixed (Kappa, C). At most one provider may best-respond.
	BestResponse bool `json:"best_response,omitempty"`
	// Sigma is the fraction of premium revenue rebated to subscribers
	// (the §VI subsidy extension); 0 recovers the paper's baseline.
	Sigma float64 `json:"sigma,omitempty"`
}

// RegulationSpec switches a scenario to comparing regulatory regimes on the
// same population and capacity (the paper's §III/§VI headline comparison).
type RegulationSpec struct {
	// Regimes lists which regimes to solve: any of "unregulated",
	// "kappa-cap", "price-cap", "neutral", "public-option". Empty means
	// all five.
	Regimes []string `json:"regimes,omitempty"`
	// KappaCap is the κ ceiling for "kappa-cap" (0 means 0.5).
	KappaCap float64 `json:"kappa_cap,omitempty"`
	// PriceCap is the c ceiling for "price-cap" (0 means 0.3).
	PriceCap float64 `json:"price_cap,omitempty"`
	// POShare is the Public Option's capacity share for "public-option"
	// (0 means 0.5).
	POShare float64 `json:"po_share,omitempty"`
	// GridN is the monopoly-optimizer grid resolution (0 means 30).
	GridN int `json:"grid_n,omitempty"`
}

// Sweep axes.
const (
	AxisNu      = "nu"      // per-capita capacity ν
	AxisPrice   = "price"   // premium price c of the first provider
	AxisKappa   = "kappa"   // premium capacity fraction κ of the first provider
	AxisPOShare = "poshare" // the Public Option's capacity share γ
	AxisSigma   = "sigma"   // revenue-rebate fraction σ of the first provider
)

// Metrics recordable per sweep point.
const (
	MetricPhi         = "phi"         // per-capita consumer surplus Φ
	MetricPsi         = "psi"         // per-capita ISP revenue Ψ (market-wide)
	MetricShare       = "share"       // market share per provider
	MetricUtilization = "utilization" // link utilization per provider
)

// SweepSpec declares the x-axis, its value grid, the metrics to record,
// and — optionally — a second swept axis (Grid) that turns the 1-D sweep
// into a 2-D grid of cells.
type SweepSpec struct {
	// Axis is one of the Axis* constants. In a 2-D grid it is the column
	// axis — the axis cells warm-start along.
	Axis string `json:"axis"`
	// Lo, Hi, Points define an evenly spaced grid; Values overrides it with
	// an explicit grid. All values must be finite.
	Lo     float64   `json:"lo,omitempty"`
	Hi     float64   `json:"hi,omitempty"`
	Points int       `json:"points,omitempty"`
	Values []float64 `json:"values,omitempty"`
	// OfSaturation scales every ν quantity in the sweep — the value grid of
	// a "nu" axis (column or row) and the fixed Nu below — by the
	// population's saturation capacity Σ α_i·θ̂_i, making capacity
	// declarations portable across populations.
	OfSaturation bool `json:"of_saturation,omitempty"`
	// Nu is the fixed per-capita capacity ν, required when no swept axis is
	// "nu" and ignored otherwise.
	Nu float64 `json:"nu,omitempty"`
	// Metrics lists what to record; empty means just "phi".
	Metrics []string `json:"metrics,omitempty"`
	// Grid, when set, adds a row axis: the scenario is solved at every
	// (column, row) cell pair and the result is a 2-D grid (sweep.Grid)
	// instead of 1-D tables. Run rejects grid scenarios — use RunGrid.
	Grid *GridSpec `json:"grid,omitempty"`
}

// GridSpec declares the second (row) axis of a 2-D grid sweep: any Axis*
// constant distinct from the primary sweep axis, with its own value grid.
// The canonical sizing question — how large must the Public Option be to
// discipline the incumbent — is a γ×ν grid: Axis "poshare" columns against
// a GridSpec of "nu" rows.
type GridSpec struct {
	// Axis is one of the Axis* constants, distinct from the sweep's Axis.
	Axis string `json:"axis"`
	// Lo, Hi, Points define an evenly spaced row grid; Values overrides it
	// with an explicit grid. All values must be finite. A "nu" row axis
	// inherits the sweep's OfSaturation scaling.
	Lo     float64   `json:"lo,omitempty"`
	Hi     float64   `json:"hi,omitempty"`
	Points int       `json:"points,omitempty"`
	Values []float64 `json:"values,omitempty"`
	// Refine, when set, declares the adaptive-refinement policy: the grid's
	// cells become the seed of an internal/refine run instead of the final
	// resolution. Absent fields take the refine package defaults, so an
	// empty block {} is valid. Being part of the scenario, the block flows
	// into CanonicalJSON — and therefore into the surrogate's content
	// address — while leaving unrefined scenarios' addresses untouched.
	Refine *RefineSpec `json:"refine,omitempty"`
}

// axisValues materializes an evenly spaced or explicit value grid; explicit
// values win over Lo/Hi/Points.
func axisValues(lo, hi float64, points int, values []float64) []float64 {
	if len(values) > 0 {
		return append([]float64(nil), values...)
	}
	if points <= 0 {
		return nil
	}
	if points == 1 {
		return []float64{lo}
	}
	return numeric.Linspace(lo, hi, points)
}

// XValues returns the sweep's column-axis values (a fresh slice).
func (s SweepSpec) XValues() []float64 {
	return axisValues(s.Lo, s.Hi, s.Points, s.Values)
}

// RowValues returns the row-axis values (a fresh slice).
func (g GridSpec) RowValues() []float64 {
	return axisValues(g.Lo, g.Hi, g.Points, g.Values)
}

func (s SweepSpec) metrics() []string {
	if len(s.Metrics) == 0 {
		return []string{MetricPhi}
	}
	return s.Metrics
}

var validAxes = map[string]bool{
	AxisNu: true, AxisPrice: true, AxisKappa: true, AxisPOShare: true, AxisSigma: true,
}

var validMetrics = map[string]bool{
	MetricPhi: true, MetricPsi: true, MetricShare: true, MetricUtilization: true,
}

var validRegimes = map[string]bool{
	"unregulated": true, "kappa-cap": true, "price-cap": true,
	"neutral": true, "public-option": true,
}

// Validate reports the first specification error, or nil. Run validates
// before solving; call it directly to vet hand-written JSON early.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	// Names become registry keys and output filenames: keep them to
	// lower-kebab-case so they are safe in both roles.
	for _, r := range s.Name {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' {
			return fmt.Errorf("scenario: name %q must be lower-kebab-case ([a-z0-9-])", s.Name)
		}
	}
	if err := s.Population.validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if err := s.validateSweep(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if s.Dynamics != nil {
		if s.Regulation != nil {
			return fmt.Errorf("scenario %q: dynamics simulations declare explicit providers; drop the regulation block", s.Name)
		}
		if err := s.validateProviders(); err != nil {
			return err
		}
		return s.validateDynamics()
	}
	if s.Regulation != nil {
		if len(s.Providers) > 0 {
			return fmt.Errorf("scenario %q: regulation comparisons imply their own market structure; drop the providers list", s.Name)
		}
		if s.Sweep.Axis != AxisNu {
			return fmt.Errorf("scenario %q: regulation comparisons sweep capacity; axis must be %q, got %q", s.Name, AxisNu, s.Sweep.Axis)
		}
		if s.Sweep.Grid != nil {
			return fmt.Errorf("scenario %q: regulation comparisons do not support grid sweeps (each regime re-optimizes per ν)", s.Name)
		}
		if s.Population.Batch > 0 {
			return fmt.Errorf("scenario %q: regulation comparisons do not support batched populations", s.Name)
		}
		for _, r := range s.Regulation.Regimes {
			if !validRegimes[r] {
				return fmt.Errorf("scenario %q: unknown regime %q", s.Name, r)
			}
		}
		return nil
	}
	return s.validateProviders()
}

func (s *Scenario) validateProviders() error {
	if len(s.Providers) == 0 {
		return fmt.Errorf("scenario %q: needs at least one provider (or a regulation block)", s.Name)
	}
	var gammaSum float64
	names := make(map[string]bool, len(s.Providers))
	responders := 0
	for i, p := range s.Providers {
		if p.Name == "" {
			return fmt.Errorf("scenario %q: provider %d has no name", s.Name, i)
		}
		if names[p.Name] {
			return fmt.Errorf("scenario %q: duplicate provider name %q", s.Name, p.Name)
		}
		names[p.Name] = true
		if !(p.Gamma > 0 && p.Gamma <= 1) {
			return fmt.Errorf("scenario %q: provider %q capacity share γ=%g outside (0,1]", s.Name, p.Name, p.Gamma)
		}
		gammaSum += p.Gamma
		if p.Kappa < 0 || p.Kappa > 1 {
			return fmt.Errorf("scenario %q: provider %q κ=%g outside [0,1]", s.Name, p.Name, p.Kappa)
		}
		if p.C < 0 {
			return fmt.Errorf("scenario %q: provider %q price c=%g negative", s.Name, p.Name, p.C)
		}
		if p.Sigma < 0 || p.Sigma > 1 {
			return fmt.Errorf("scenario %q: provider %q rebate σ=%g outside [0,1]", s.Name, p.Name, p.Sigma)
		}
		if p.BestResponse {
			responders++
			if p.PublicOption {
				return fmt.Errorf("scenario %q: provider %q cannot both be the Public Option and best-respond", s.Name, p.Name)
			}
		}
	}
	if diff := gammaSum - 1; diff > 1e-9 || diff < -1e-9 {
		return fmt.Errorf("scenario %q: provider capacity shares sum to %g, want 1", s.Name, gammaSum)
	}
	if responders > 1 {
		return fmt.Errorf("scenario %q: at most one provider may best-respond, got %d", s.Name, responders)
	}
	rebates := false
	for _, p := range s.Providers {
		if p.Sigma > 0 {
			rebates = true
		}
	}
	if (rebates || s.sweepsAxis(AxisSigma)) && (len(s.Providers) != 2 || responders > 0) {
		return fmt.Errorf("scenario %q: revenue rebates need exactly two fixed-strategy providers", s.Name)
	}
	if s.Population.Batch > 0 {
		if s.Sweep.Axis != AxisNu || s.Sweep.Grid != nil {
			return fmt.Errorf("scenario %q: batched populations sweep capacity only (axes %s)", s.Name, s.axisList())
		}
		for _, p := range s.Providers {
			if !p.PublicOption && !(core.Strategy{Kappa: p.Kappa, C: p.C}).Neutral() {
				return fmt.Errorf("scenario %q: batched populations support only neutral providers, %q plays (κ=%g, c=%g)", s.Name, p.Name, p.Kappa, p.C)
			}
			if p.BestResponse || p.Sigma > 0 {
				return fmt.Errorf("scenario %q: batched populations support only fixed neutral providers (%q)", s.Name, p.Name)
			}
		}
	}
	// Axis-specific market-shape constraints apply to every swept axis: the
	// column axis and, for grid scenarios, the row axis.
	axes := []string{s.Sweep.Axis}
	if s.Sweep.Grid != nil {
		axes = append(axes, s.Sweep.Grid.Axis)
	}
	for _, axis := range axes {
		switch axis {
		case AxisPrice, AxisKappa:
			if s.Providers[0].PublicOption {
				return fmt.Errorf("scenario %q: axis %q sweeps the first provider's strategy, but it is the Public Option", s.Name, axis)
			}
			if s.Providers[0].BestResponse {
				return fmt.Errorf("scenario %q: axis %q sweeps the first provider's strategy, but it best-responds (the search would overwrite every sweep point)", s.Name, axis)
			}
		case AxisSigma:
			if len(s.Providers) != 2 {
				return fmt.Errorf("scenario %q: axis %q needs exactly two providers, got %d", s.Name, AxisSigma, len(s.Providers))
			}
		case AxisPOShare:
			if len(s.Providers) != 2 || !s.Providers[1].PublicOption {
				return fmt.Errorf("scenario %q: axis %q needs exactly two providers with the second a Public Option", s.Name, AxisPOShare)
			}
		}
	}
	return nil
}

// IsGrid reports whether the scenario declares a 2-D grid sweep (solve with
// RunGrid) rather than a 1-D sweep (solve with Run).
func (s *Scenario) IsGrid() bool { return s.Sweep.Grid != nil }

func (s *Scenario) validateSweep() error {
	sw := s.Sweep
	// The time axis exists only for dynamics scenarios, whose tick count —
	// not Lo/Hi/Points — defines the value grid.
	if s.Dynamics != nil {
		if sw.Axis != AxisTime {
			return fmt.Errorf("dynamics scenarios sweep simulation time; axis must be %q, got %q", AxisTime, sw.Axis)
		}
		if sw.Points != 0 || len(sw.Values) != 0 {
			return fmt.Errorf("the %q axis takes its grid from dynamics.ticks; drop points/values", AxisTime)
		}
		if sw.Grid != nil {
			return fmt.Errorf("dynamics scenarios do not support grid sweeps (time is the only axis)")
		}
	} else if sw.Axis == AxisTime {
		return fmt.Errorf("the %q axis needs a dynamics block", AxisTime)
	} else if !validAxes[sw.Axis] {
		return fmt.Errorf("unknown sweep axis %q", sw.Axis)
	}
	if s.Dynamics == nil {
		if err := validateAxisGrid(sw.Axis, sw.Lo, sw.Hi, sw.Points, sw.Values); err != nil {
			return err
		}
	}
	if sw.Grid != nil {
		if !validAxes[sw.Grid.Axis] {
			return fmt.Errorf("unknown grid row axis %q", sw.Grid.Axis)
		}
		if sw.Grid.Axis == sw.Axis {
			return fmt.Errorf("grid row axis %q duplicates the sweep axis (a grid needs two distinct axes)", sw.Grid.Axis)
		}
		if err := validateAxisGrid(sw.Grid.Axis, sw.Grid.Lo, sw.Grid.Hi, sw.Grid.Points, sw.Grid.Values); err != nil {
			return fmt.Errorf("grid row axis: %w", err)
		}
		// Refinement needs a 2-D seed: at least two knots per axis.
		if sw.Grid.Refine != nil {
			if len(sw.XValues()) < 2 || len(sw.Grid.RowValues()) < 2 {
				return fmt.Errorf("refine needs at least 2 points per axis to seed the grid")
			}
			if err := sw.Grid.Refine.validate(s.gridLayerNames()); err != nil {
				return err
			}
		}
	}
	seenMetric := make(map[string]bool, len(sw.Metrics))
	for _, m := range sw.metrics() {
		if !validMetrics[m] {
			return fmt.Errorf("unknown metric %q", m)
		}
		if seenMetric[m] {
			return fmt.Errorf("duplicate metric %q (tables are keyed by metric)", m)
		}
		seenMetric[m] = true
	}
	// A fixed per-capita capacity ν is needed exactly when no swept axis
	// supplies it; a zero Nu there is almost always a forgotten field.
	if !s.sweepsAxis(AxisNu) {
		if !(sw.Nu > 0) || math.IsInf(sw.Nu, 0) {
			return fmt.Errorf("axes %s need a finite, positive fixed capacity sweep.nu, got %g", s.axisList(), sw.Nu)
		}
	}
	return nil
}

// sweepsAxis reports whether axis is swept — as the column axis or, for
// grid scenarios, the row axis.
func (s *Scenario) sweepsAxis(axis string) bool {
	if s.Sweep.Axis == axis {
		return true
	}
	return s.Sweep.Grid != nil && s.Sweep.Grid.Axis == axis
}

// axisList renders the swept axes for error messages: `"price"` or
// `"price"×"kappa"` for grids.
func (s *Scenario) axisList() string {
	if s.Sweep.Grid == nil {
		return fmt.Sprintf("%q", s.Sweep.Axis)
	}
	return fmt.Sprintf("%q×%q", s.Sweep.Axis, s.Sweep.Grid.Axis)
}

// validateAxisGrid vets one swept axis' value grid: non-empty, finite,
// ordered bounds, and values inside the axis' model domain (ν > 0,
// γ ∈ (0,1), σ and κ ∈ [0,1], c ≥ 0).
func validateAxisGrid(axis string, lo, hi float64, points int, values []float64) error {
	for _, v := range []float64{lo, hi} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("axis %q has non-finite bound %g", axis, v)
		}
	}
	grid := axisValues(lo, hi, points, values)
	if len(grid) == 0 {
		return fmt.Errorf("empty sweep grid for axis %q (set points >= 1 or explicit values)", axis)
	}
	if len(values) == 0 && points >= 2 && !(hi > lo) {
		return fmt.Errorf("axis %q needs hi > lo, got [%g, %g]", axis, lo, hi)
	}
	for _, v := range grid {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("axis %q contains non-finite value %g", axis, v)
		}
	}
	switch axis {
	case AxisNu:
		// Capacity must be strictly positive everywhere: a zero-capacity
		// market has no equilibrium worth tabulating.
		for _, v := range grid {
			if !(v > 0) {
				return fmt.Errorf("capacity sweep contains non-positive ν=%g", v)
			}
		}
	case AxisPOShare:
		for _, v := range grid {
			if !(v > 0 && v < 1) {
				return fmt.Errorf("Public Option share sweep value %g outside (0,1)", v)
			}
		}
	case AxisSigma:
		for _, v := range grid {
			if v < 0 || v > 1 {
				return fmt.Errorf("rebate sweep value %g outside [0,1]", v)
			}
		}
	case AxisKappa:
		for _, v := range grid {
			if v < 0 || v > 1 {
				return fmt.Errorf("κ sweep value %g outside [0,1]", v)
			}
		}
	case AxisPrice:
		for _, v := range grid {
			if v < 0 {
				return fmt.Errorf("price sweep value %g negative", v)
			}
		}
	}
	return nil
}

func (p *PopulationSpec) validate() error {
	if p.Batch > 0 && p.Kind != "ensemble" {
		return fmt.Errorf("population kind %q cannot be batched (batching regenerates ensemble draws)", p.Kind)
	}
	switch p.Kind {
	case "paper", "archetypes":
		if len(p.CPs) > 0 {
			return fmt.Errorf("population kind %q does not take explicit cps", p.Kind)
		}
	case "ensemble":
		if p.N < 0 {
			return fmt.Errorf("ensemble population size n=%d negative", p.N)
		}
		if p.Batch < 0 {
			return fmt.Errorf("population batch size %d negative", p.Batch)
		}
		if p.Batch > 0 && p.size() < p.Batch {
			return fmt.Errorf("population batch size %d exceeds ensemble size %d", p.Batch, p.size())
		}
	case "explicit":
		if len(p.CPs) == 0 {
			return fmt.Errorf("explicit population has no CPs")
		}
		for i, cp := range p.CPs {
			if !(cp.Alpha > 0 && cp.Alpha <= 1) {
				return fmt.Errorf("cp %d (%s): popularity α=%g outside (0,1]", i, cp.Name, cp.Alpha)
			}
			if !(cp.ThetaHat > 0) {
				return fmt.Errorf("cp %d (%s): θ̂=%g, want positive", i, cp.Name, cp.ThetaHat)
			}
			if cp.V < 0 || cp.Phi < 0 {
				return fmt.Errorf("cp %d (%s): v=%g, φ=%g must be non-negative", i, cp.Name, cp.V, cp.Phi)
			}
			if _, err := cp.Demand.Curve(); err != nil {
				return fmt.Errorf("cp %d (%s): %w", i, cp.Name, err)
			}
		}
	case "":
		return fmt.Errorf("population kind missing (paper, archetypes, ensemble, or explicit)")
	default:
		return fmt.Errorf("unknown population kind %q", p.Kind)
	}
	switch p.Phi {
	case "", "correlated", "independent":
	default:
		return fmt.Errorf("unknown phi setting %q (correlated or independent)", p.Phi)
	}
	return nil
}

func (p *PopulationSpec) size() int {
	if p.N > 0 {
		return p.N
	}
	return 1000
}

func (p *PopulationSpec) phiSetting() traffic.PhiSetting {
	if p.Phi == "independent" {
		return traffic.PhiIndependent
	}
	return traffic.PhiCorrelated
}

func (p *PopulationSpec) seed() uint64 {
	if p.Seed != 0 {
		return p.Seed
	}
	return traffic.DefaultSeed
}

// ensembleConfig materializes the traffic ensemble configuration with the
// paper's draw ranges where unset.
func (p *PopulationSpec) ensembleConfig() traffic.EnsembleConfig {
	cfg := traffic.PaperEnsemble(p.phiSetting())
	cfg.N = p.size()
	if p.AlphaHi > 0 {
		cfg.AlphaHi = p.AlphaHi
	}
	if p.ThetaHatHi > 0 {
		cfg.ThetaHatHi = p.ThetaHatHi
	}
	if p.VHi > 0 {
		cfg.VHi = p.VHi
	}
	if p.BetaHi > 0 {
		cfg.BetaHi = p.BetaHi
	}
	return cfg
}

// generateEnsemble draws the non-batched random population. The
// independent-φ setting follows the appendix convention of
// traffic.PaperPopulation: the four CP characteristics come from the same
// stream as the correlated setting and φ is redrawn from a separate stream
// (seed+1) — so the CP characteristics match across φ settings, and a
// default-parameter "ensemble" is the "paper" population under either
// setting. (Batched ensembles keep their own per-batch seed streams and
// draw φ inline; they are a distinct, documented scheme.)
func (p *PopulationSpec) generateEnsemble() traffic.Population {
	cfg := p.ensembleConfig()
	if cfg.Phi != traffic.PhiIndependent {
		return cfg.Generate(numeric.NewRNG(p.seed()))
	}
	cfg.Phi = traffic.PhiCorrelated
	pop := cfg.Generate(numeric.NewRNG(p.seed()))
	traffic.RedrawPhiIndependent(pop, p.seed()+1)
	return pop
}

// Materialize builds the in-memory CP population. Batched ensembles are
// handled separately by the runner; Materialize on them returns the full
// population and is intended for tests and small N.
func (p *PopulationSpec) Materialize() (traffic.Population, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	switch p.Kind {
	case "paper":
		return traffic.PaperPopulation(p.phiSetting()), nil
	case "archetypes":
		return traffic.Archetypes(), nil
	case "ensemble":
		if p.Batch > 0 {
			return p.materializeBatched()
		}
		return p.generateEnsemble(), nil
	case "explicit":
		pop := make(traffic.Population, len(p.CPs))
		for i, cp := range p.CPs {
			curve, err := cp.Demand.Curve()
			if err != nil {
				return nil, err
			}
			name := cp.Name
			if name == "" {
				name = fmt.Sprintf("cp-%04d", i)
			}
			pop[i] = traffic.CP{
				Name: name, Alpha: cp.Alpha, ThetaHat: cp.ThetaHat,
				V: cp.V, Phi: cp.Phi, Curve: curve,
			}
		}
		if err := pop.Validate(); err != nil {
			return nil, err
		}
		return pop, nil
	}
	return nil, fmt.Errorf("scenario: unknown population kind %q", p.Kind)
}

// JSON renders the scenario as indented JSON.
func (s *Scenario) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// CanonicalJSON renders the scenario in its canonical serialized form:
// compact JSON with struct fields in declaration order and zero-valued
// optional fields omitted. Two scenarios have equal canonical bytes when
// their specifications match field-for-field; this is what
// content-addressed caches (internal/cache) hash to key solved results.
// Note the address is syntactic, not semantic: spelling out a default
// (e.g. "n": 1000 instead of omitting it) changes the bytes, so such a
// scenario re-solves into its own cache entry — a cost, never an error.
func (s *Scenario) CanonicalJSON() ([]byte, error) {
	return json.Marshal(s)
}

// ApplyEnsembleOverrides re-seeds (seed != 0) or re-sizes (n != 0) the
// scenario's random CP population in place — the scenario-level counterpart
// of the -seed/-cps experiment flags. The "paper" population is the default
// ensemble by another name, so overriding it switches the kind to
// "ensemble"; populations with no random draw (archetypes, explicit) reject
// overrides.
func (s *Scenario) ApplyEnsembleOverrides(seed uint64, n int) error {
	if seed == 0 && n == 0 {
		return nil
	}
	switch s.Population.Kind {
	case "paper":
		s.Population.Kind = "ensemble"
	case "ensemble":
	default:
		return fmt.Errorf("scenario %q: population kind %q has no ensemble seed or size to override", s.Name, s.Population.Kind)
	}
	if seed != 0 {
		s.Population.Seed = seed
	}
	if n != 0 {
		if n < 0 {
			return fmt.Errorf("scenario %q: ensemble size override %d is negative", s.Name, n)
		}
		s.Population.N = n
	}
	return s.Validate()
}

// Load parses a scenario from JSON and validates it.
func Load(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parsing JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadString is Load over a string, convenient for tests and examples.
func LoadString(js string) (*Scenario, error) {
	return Load(strings.NewReader(js))
}
