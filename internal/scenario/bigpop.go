package scenario

import (
	"math"

	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/sweep"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// Batched populations: the large-N path. A 10⁶-CP traffic.Population costs
// hundreds of bytes per CP (name string, demand interface); the batched
// representation keeps only the four scalars the neutral water-fill needs,
// packed in struct-of-arrays batches (32 B/CP), and generates them one
// batch at a time so the peak overhead is a single batch of full CP records.
//
// The neutral (single free class) equilibrium is exactly the max-min rate
// equilibrium of Theorem 1: find the water level τ with
// Σ_i α_i·d_i(min(τ,θ̂_i))·min(τ,θ̂_i) = min(ν, Σ α_i θ̂_i). The aggregate is
// a sum of per-CP terms, so it is evaluated batch-by-batch — and in parallel
// across batches — without ever holding per-CP equilibrium state.

// popBatch is one compact batch of the ensemble. Demand is the paper's
// exponential family (the only family the random ensembles draw).
type popBatch struct {
	alpha, thetaHat, phi, beta []float64
}

// rho returns d(θ)·θ at water level tau for CP i of the batch.
func (b *popBatch) rho(i int, tau float64) float64 {
	th := b.thetaHat[i]
	if tau >= th {
		return th // d(θ̂) = 1
	}
	if tau <= 0 {
		return 0
	}
	omega := tau / th
	return math.Exp(-b.beta[i]*(1/omega-1)) * tau
}

// batchedPop is a CP ensemble materialized as compact batches.
type batchedPop struct {
	batches     []popBatch
	saturation  float64 // Σ α_i·θ̂_i
	maxThetaHat float64
	maxPhi      float64 // Σ φ_i·α_i·θ̂_i
}

// newBatchedPop generates the ensemble batch-by-batch. Batch b draws from
// seed+b, so the population is reproducible for a given (seed, batch size)
// and batches are independent streams.
func newBatchedPop(cfg traffic.EnsembleConfig, seed uint64, batchSize int) *batchedPop {
	total := cfg.N
	bp := &batchedPop{}
	for off, b := 0, 0; off < total; off, b = off+batchSize, b+1 {
		n := batchSize
		if total-off < n {
			n = total - off
		}
		gcfg := cfg
		gcfg.N = n
		pop := gcfg.Generate(numeric.NewRNG(seed + uint64(b)))
		batch := popBatch{
			alpha:    make([]float64, n),
			thetaHat: make([]float64, n),
			phi:      make([]float64, n),
			beta:     make([]float64, n),
		}
		for i := range pop {
			batch.alpha[i] = pop[i].Alpha
			batch.thetaHat[i] = pop[i].ThetaHat
			batch.phi[i] = pop[i].Phi
			beta, ok := pop[i].Beta()
			if !ok {
				panic("scenario: batched ensembles draw exponential demand only")
			}
			batch.beta[i] = beta
			bp.saturation += pop[i].Alpha * pop[i].ThetaHat
			bp.maxPhi += pop[i].Phi * pop[i].Alpha * pop[i].ThetaHat
			if pop[i].ThetaHat > bp.maxThetaHat {
				bp.maxThetaHat = pop[i].ThetaHat
			}
		}
		bp.batches = append(bp.batches, batch)
	}
	return bp
}

// materializeBatched rebuilds the exact batched population as a full
// traffic.Population — the reference object batched evaluation must agree
// with. Intended for tests and small N.
func (p *PopulationSpec) materializeBatched() (traffic.Population, error) {
	cfg := p.ensembleConfig()
	total := cfg.N
	var pop traffic.Population
	for off, b := 0, 0; off < total; off, b = off+p.Batch, b+1 {
		gcfg := cfg
		gcfg.N = min(p.Batch, total-off)
		pop = append(pop, gcfg.Generate(numeric.NewRNG(p.seed()+uint64(b)))...)
	}
	return pop, nil
}

// aggregates returns the per-capita aggregate rate Σ α_i·ρ_i(τ) and the
// consumer surplus Σ φ_i·α_i·ρ_i(τ) at water level tau, evaluated in
// parallel across batches on up to workers goroutines.
func (bp *batchedPop) aggregates(tau float64, workers int) (rate, phi float64) {
	rates := make([]float64, len(bp.batches))
	phis := make([]float64, len(bp.batches))
	tasks := make([]func(), len(bp.batches))
	for b := range bp.batches {
		b := b
		tasks[b] = func() {
			batch := &bp.batches[b]
			var r, p float64
			for i := range batch.alpha {
				ar := batch.alpha[i] * batch.rho(i, tau)
				r += ar
				p += batch.phi[i] * ar
			}
			rates[b], phis[b] = r, p
		}
	}
	sweep.RunParallel(workers, tasks)
	return numeric.Sum(rates), numeric.Sum(phis)
}

// neutralPoint is the batched neutral equilibrium at per-capita capacity nu:
// water level, consumer surplus Φ and utilization. tauLo warm-starts the
// bisection from the previous (smaller) capacity's level — Axiom 3
// guarantees the level is non-decreasing in ν.
func (bp *batchedPop) neutralPoint(nu, tauLo float64, workers int) (tau, phi, util float64) {
	if nu >= bp.saturation {
		// The link stops being a bottleneck: everyone unconstrained.
		return bp.maxThetaHat, bp.maxPhi, bp.saturation / nu
	}
	target := nu
	f := func(t float64) float64 {
		r, _ := bp.aggregates(t, workers)
		return r - target
	}
	tol := 1e-12 * math.Max(bp.maxThetaHat, 1)
	tau = numeric.Bisect(f, tauLo, bp.maxThetaHat, tol)
	rate, phi := bp.aggregates(tau, workers)
	return tau, phi, rate / nu
}
