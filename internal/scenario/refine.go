package scenario

import (
	"context"
	"fmt"
	"math"
	"sync"

	"github.com/netecon-sim/publicoption/internal/obs"
	"github.com/netecon-sim/publicoption/internal/refine"
)

// RefineSpec is the scenario-level adaptive-refinement policy — the JSON
// face of refine.Spec, attached to a grid sweep as sweep.grid.refine.
// Zero-valued fields take the refine package defaults.
type RefineSpec struct {
	// Tolerance is the relative error tolerance (per layer, normalized by
	// the layer's seed-grid value range). 0 selects refine.DefaultTol.
	Tolerance float64 `json:"tolerance,omitempty"`
	// MaxDepth caps refinement depth; 0 selects refine.DefaultMaxDepth,
	// values above obs.MaxRefineDepth are rejected.
	MaxDepth int `json:"max_depth,omitempty"`
	// Probes is the solver-verification budget; 0 selects
	// refine.DefaultProbes, -1 disables verification.
	Probes int `json:"probes,omitempty"`
	// IndicatorLayer optionally names a layer ("phi", "psi/incumbent", ...)
	// whose crossing of IndicatorValue marks a regime boundary that must be
	// refined regardless of curvature.
	IndicatorLayer string `json:"indicator_layer,omitempty"`
	// IndicatorValue is the crossed level (typically 0).
	IndicatorValue float64 `json:"indicator_value,omitempty"`
	// Seed seeds the deterministic probe generator; 0 selects 1.
	Seed uint64 `json:"seed,omitempty"`
}

// validate vets the block against the scenario's output layers.
func (r *RefineSpec) validate(layers []string) error {
	if math.IsNaN(r.Tolerance) || math.IsInf(r.Tolerance, 0) || r.Tolerance < 0 {
		return fmt.Errorf("refine.tolerance must be a finite value >= 0 (0 = default %g), got %g", refine.DefaultTol, r.Tolerance)
	}
	if r.MaxDepth < 0 || r.MaxDepth > obs.MaxRefineDepth {
		return fmt.Errorf("refine.max_depth must be in [0, %d] (0 = default %d), got %d", obs.MaxRefineDepth, refine.DefaultMaxDepth, r.MaxDepth)
	}
	if r.Probes < -1 {
		return fmt.Errorf("refine.probes must be >= -1 (-1 disables verification, 0 = default %d), got %d", refine.DefaultProbes, r.Probes)
	}
	if math.IsNaN(r.IndicatorValue) || math.IsInf(r.IndicatorValue, 0) {
		return fmt.Errorf("refine.indicator_value must be finite, got %g", r.IndicatorValue)
	}
	if r.IndicatorLayer != "" {
		found := false
		for _, l := range layers {
			if l == r.IndicatorLayer {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("refine.indicator_layer %q is not an output layer (have %v)", r.IndicatorLayer, layers)
		}
	}
	return nil
}

// spec lowers the scenario block to the engine's policy type.
func (r *RefineSpec) spec() refine.Spec {
	if r == nil {
		return refine.Spec{}
	}
	return refine.Spec{
		Tol:            r.Tolerance,
		MaxDepth:       r.MaxDepth,
		Probes:         r.Probes,
		IndicatorLayer: r.IndicatorLayer,
		IndicatorValue: r.IndicatorValue,
		Seed:           r.Seed,
	}
}

// gridLayerNames lists the output layers a grid run of this scenario
// produces, mirroring CompileGrid's layer construction without needing a
// materialized population.
func (s *Scenario) gridLayerNames() []string {
	var layers []string
	for _, m := range s.Sweep.metrics() {
		if m == MetricPhi {
			layers = append(layers, MetricPhi)
			continue
		}
		for _, p := range s.Providers {
			layers = append(layers, m+"/"+p.Name)
		}
	}
	return layers
}

// RefineSpec returns the job's refinement policy (zero value when the
// scenario declares no refine block — Run applies the defaults).
func (j *GridJob) RefineSpec() refine.Spec {
	return j.scenario.Sweep.Grid.Refine.spec()
}

// ValuesSlice flattens a cell's value map into layer order. ok is false
// when any layer is missing — a cache entry from an incompatible schema.
func (j *GridJob) ValuesSlice(vals map[string]float64) ([]float64, bool) {
	out := make([]float64, len(j.Layers))
	for i, name := range j.Layers {
		v, ok := vals[name]
		if !ok {
			return nil, false
		}
		out[i] = v
	}
	return out, true
}

// ValuesMap is the inverse of ValuesSlice.
func (j *GridJob) ValuesMap(vals []float64) map[string]float64 {
	out := make(map[string]float64, len(j.Layers))
	for i, name := range j.Layers {
		out[name] = vals[i]
	}
	return out
}

// gridPointSolver adapts a GridWorker to the engine's PointSolver.
type gridPointSolver struct{ w *GridWorker }

func (ps *gridPointSolver) Solve(x, y float64) []float64 {
	vals := ps.w.SolveAt(x, y)
	out, _ := ps.w.job.ValuesSlice(vals)
	return out
}

// RefineProblem adapts the compiled grid to the refinement engine. The
// returned flush publishes the accumulated solver telemetry of every worker
// the engine created into stats; call it exactly once, after the run.
func (j *GridJob) RefineProblem(stats *obs.Counters) (refine.Problem, func()) {
	var mu sync.Mutex
	var workers []*GridWorker
	prob := refine.Problem{
		Title:  j.scenario.Title,
		XLabel: j.XAxis,
		YLabel: j.YAxis,
		Xs:     j.Xs,
		Ys:     j.Ys,
		Layers: j.Layers,
		NewSolver: func() refine.PointSolver {
			w := j.NewWorker()
			mu.Lock()
			workers = append(workers, w)
			mu.Unlock()
			return &gridPointSolver{w: w}
		},
	}
	flush := func() {
		if stats == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		for _, w := range workers {
			stats.Add(w.Stats())
		}
		workers = nil
	}
	return prob, flush
}

// RunGridRefined validates and adaptively solves a 2-D grid scenario: the
// declared grid is the seed, and internal/refine splits only the cells
// where curvature (or the configured indicator crossing) exceeds tolerance.
// The result is a queryable surrogate; flatten it to any resolution with
// Result.Flatten. Scenarios without a refine block run with the package
// defaults.
func (s *Scenario) RunGridRefined(opt RunOptions) (*refine.Result, error) {
	return s.RunGridRefinedContext(context.Background(), opt, refine.Options{})
}

// RunGridRefinedContext is RunGridRefined with cooperative cancellation and
// engine hooks (cache Lookup/Store, point/leaf streaming). The hook fields
// of ropt are honored; its Workers field is overridden from opt.
func (s *Scenario) RunGridRefinedContext(ctx context.Context, opt RunOptions, ropt refine.Options) (*refine.Result, error) {
	job, err := s.CompileGrid()
	if err != nil {
		return nil, err
	}
	prob, flush := job.RefineProblem(opt.Stats)
	defer flush()
	ropt.Workers = opt.workers()
	return refine.Run(ctx, prob, job.RefineSpec(), ropt)
}
