package scenario

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/netecon-sim/publicoption/internal/alloc"
	"github.com/netecon-sim/publicoption/internal/core"
	"github.com/netecon-sim/publicoption/internal/econ"
	"github.com/netecon-sim/publicoption/internal/numeric"
)

// smallEnsemble is a quick random population spec shared by runner tests.
func smallEnsemble(n int) PopulationSpec {
	return PopulationSpec{Kind: "ensemble", N: n, Seed: 11}
}

// A neutral monopoly scenario must reproduce the plain rate-equilibrium
// surplus: the scenario engine adds orchestration, not physics.
func TestNeutralMonopolyMatchesDirectSolve(t *testing.T) {
	s := &Scenario{
		Name: "neutral-check", Title: "check",
		Population: smallEnsemble(60),
		Providers:  []ProviderSpec{{Name: "isp", Gamma: 1}},
		Sweep: SweepSpec{
			Axis: AxisNu, Lo: 0.2, Hi: 0.8, Points: 4, OfSaturation: true,
			Metrics: []string{MetricPhi, MetricUtilization},
		},
	}
	tables, err := s.Run(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pop, err := s.Population.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	phi := tables[0].Series[0]
	if phi.Len() != 4 {
		t.Fatalf("want 4 points, got %d", phi.Len())
	}
	for i := range phi.X {
		want := econ.PhiAt(alloc.MaxMin{}, phi.X[i], pop)
		if math.Abs(phi.Y[i]-want) > 1e-6*math.Max(want, 1) {
			t.Errorf("Φ(ν=%g) = %g, direct solve gives %g", phi.X[i], phi.Y[i], want)
		}
	}
	// Φ must be non-decreasing in ν (Theorem 2).
	for i := 1; i < phi.Len(); i++ {
		if phi.Y[i] < phi.Y[i-1]-1e-9 {
			t.Errorf("Φ decreased along ν: %v", phi.Y)
		}
	}
}

// The batched large-N path must agree with materializing the same batched
// ensemble and solving it directly — batching is a memory layout, not a
// model change.
func TestBatchedMatchesUnbatched(t *testing.T) {
	s := &Scenario{
		Name: "batched-check", Title: "check",
		Population: PopulationSpec{Kind: "ensemble", N: 240, Seed: 5, Batch: 70},
		Providers: []ProviderSpec{
			{Name: "big", Gamma: 0.6},
			{Name: "small", Gamma: 0.4},
		},
		Sweep: SweepSpec{
			Axis: AxisNu, Lo: 0.15, Hi: 1.1, Points: 5, OfSaturation: true,
			Metrics: []string{MetricPhi, MetricShare, MetricUtilization},
		},
	}
	tables, err := s.Run(RunOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	pop, err := s.Population.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(pop) != 240 {
		t.Fatalf("materialized batched population has %d CPs, want 240", len(pop))
	}
	phi := tables[0].Series[0]
	for i := range phi.X {
		want := econ.PhiAt(alloc.MaxMin{}, phi.X[i], pop)
		if math.Abs(phi.Y[i]-want) > 1e-6*math.Max(want, 1) {
			t.Errorf("batched Φ(ν=%g) = %g, unbatched solve gives %g", phi.X[i], phi.Y[i], want)
		}
	}
	// Lemma 4: neutral homogeneous providers hold their capacity shares.
	shares := tables[1]
	if len(shares.Series) != 2 {
		t.Fatalf("want 2 share series, got %d", len(shares.Series))
	}
	for k, gamma := range []float64{0.6, 0.4} {
		for _, y := range shares.Series[k].Y {
			if math.Abs(y-gamma) > 1e-12 {
				t.Errorf("share of provider %d = %g, want γ=%g", k, y, gamma)
			}
		}
	}
}

// A monopoly price sweep: revenue is zero at c=0, surplus falls as the
// price rises, and every metric table has the declared shape.
func TestMonopolyPriceSweep(t *testing.T) {
	s := &Scenario{
		Name: "mono-check", Title: "check",
		Population: smallEnsemble(60),
		Providers:  []ProviderSpec{{Name: "mono", Gamma: 1, Kappa: 1}},
		Sweep: SweepSpec{
			Axis: AxisPrice, Values: []float64{0, 0.3, 0.9}, Nu: 0.4, OfSaturation: true,
			Metrics: []string{MetricPhi, MetricPsi, MetricShare},
		},
	}
	tables, err := s.Run(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("want 3 tables, got %d", len(tables))
	}
	phi, psi, share := tables[0].Series[0], tables[1].Series[0], tables[2].Series[0]
	if psi.Y[0] != 0 {
		t.Errorf("Ψ at c=0 is %g, want 0", psi.Y[0])
	}
	if !(phi.Y[0] >= phi.Y[2]) {
		t.Errorf("Φ should not rise with price: %v", phi.Y)
	}
	for _, m := range share.Y {
		if m != 1 {
			t.Errorf("monopoly share %g, want 1", m)
		}
	}
	for _, series := range []struct {
		name string
		ys   []float64
	}{{"phi", phi.Y}, {"psi", psi.Y}} {
		for _, y := range series.ys {
			if math.IsNaN(y) || math.IsInf(y, 0) || y < 0 {
				t.Errorf("%s contains invalid value %g", series.name, y)
			}
		}
	}
}

// Duopoly with a Public Option: overpricing must bleed incumbent share.
func TestPublicOptionDuopolySweep(t *testing.T) {
	s := &Scenario{
		Name: "po-check", Title: "check",
		Population: smallEnsemble(60),
		Providers: []ProviderSpec{
			{Name: "incumbent", Gamma: 0.5, Kappa: 1},
			{Name: "po", Gamma: 0.5, PublicOption: true},
		},
		Sweep: SweepSpec{
			Axis: AxisPrice, Values: []float64{0.05, 2.5}, Nu: 0.4, OfSaturation: true,
			Metrics: []string{MetricShare, MetricPhi},
		},
	}
	tables, err := s.Run(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inc := tables[0].Series[0]
	po := tables[0].Series[1]
	for i := range inc.X {
		if math.Abs(inc.Y[i]+po.Y[i]-1) > 1e-6 {
			t.Errorf("shares at c=%g sum to %g", inc.X[i], inc.Y[i]+po.Y[i])
		}
	}
	if !(inc.Y[1] < inc.Y[0]) {
		t.Errorf("incumbent share should fall when overpricing: %v", inc.Y)
	}
}

// The subsidy axis: σ=0 must coincide with the baseline duopoly solution.
func TestSubsidySweepBaseline(t *testing.T) {
	pop := smallEnsemble(50)
	base := &Scenario{
		Name: "sub-base", Title: "check",
		Population: pop,
		Providers: []ProviderSpec{
			{Name: "incumbent", Gamma: 0.5, Kappa: 1, C: 0.4},
			{Name: "po", Gamma: 0.5, PublicOption: true},
		},
		Sweep: SweepSpec{
			Axis: AxisPrice, Values: []float64{0.4}, Nu: 0.4, OfSaturation: true,
			Metrics: []string{MetricShare},
		},
	}
	sub := &Scenario{
		Name: "sub-check", Title: "check",
		Population: pop,
		Providers: []ProviderSpec{
			{Name: "incumbent", Gamma: 0.5, Kappa: 1, C: 0.4},
			{Name: "po", Gamma: 0.5, PublicOption: true},
		},
		Sweep: SweepSpec{
			Axis: AxisSigma, Values: []float64{0, 1}, Nu: 0.4, OfSaturation: true,
			Metrics: []string{MetricShare},
		},
	}
	baseT, err := base.Run(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	subT, err := sub.Run(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m0 := baseT[0].Series[0].Y[0]
	mSub := subT[0].Series[0].Y[0]
	if math.Abs(m0-mSub) > 1e-4 {
		t.Errorf("σ=0 share %g differs from baseline duopoly share %g", mSub, m0)
	}
	// Full rebating should not lose the incumbent share.
	if subT[0].Series[0].Y[1] < mSub-1e-6 {
		t.Errorf("rebating reduced incumbent share: σ=0 → %g, σ=1 → %g", mSub, subT[0].Series[0].Y[1])
	}
}

// A regime-comparison scenario must agree with core.CompareRegimes run at
// the same configuration: the scenario engine decomposes the comparison
// into independent per-regime curves but may not change the answers.
func TestRegimesMatchCompareRegimes(t *testing.T) {
	spec := smallEnsemble(40)
	s := &Scenario{
		Name: "regimes-check", Title: "check",
		Population: spec,
		Regulation: &RegulationSpec{GridN: 8},
		Sweep: SweepSpec{
			Axis: AxisNu, Values: []float64{0.4}, OfSaturation: true,
			Metrics: []string{MetricPhi, MetricPsi},
		},
	}
	tables, err := s.Run(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	phiT := tables[0]
	if len(phiT.Series) != 5 {
		t.Fatalf("want 5 regime series, got %d", len(phiT.Series))
	}
	pop, err := spec.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	nu := 0.4 * pop.TotalUnconstrainedPerCapita()
	want := core.CompareRegimes(nil, nu, pop, core.RegimeConfig{
		GridN: 8,
		POGrid: &core.StrategyGrid{
			Kappas: []float64{0, 0.5, 1},
			Cs:     numeric.Linspace(0, 1, 11),
		},
	})
	byName := map[string]float64{}
	for _, series := range phiT.Series {
		byName[series.Name] = series.Y[0]
	}
	for _, oc := range want {
		got, ok := byName[oc.Regime.String()]
		if !ok {
			t.Fatalf("scenario output missing regime %s", oc.Regime)
		}
		if math.Abs(got-oc.Phi) > 1e-4*math.Max(oc.Phi, 1) {
			t.Errorf("%s: scenario Φ=%g, CompareRegimes Φ=%g", oc.Regime, got, oc.Phi)
		}
	}
}

// CSV output of scenario tables must carry the standard sweep schema.
func TestScenarioCSVSchema(t *testing.T) {
	s := valid()
	tables, err := s.Run(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tables[0].WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	if header != "series,nu,phi" {
		t.Errorf("CSV header %q, want series,nu,phi", header)
	}
}
