package scenario

import (
	"fmt"
	"runtime"

	"github.com/netecon-sim/publicoption/internal/core"
	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/obs"
	"github.com/netecon-sim/publicoption/internal/sweep"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// RunOptions controls scenario execution, not its meaning: everything that
// changes the modeled outcome lives in the Scenario itself.
type RunOptions struct {
	// Workers bounds parallelism (independent curves, grid chunks, or
	// population batches depending on the scenario). 0 means GOMAXPROCS.
	Workers int
	// Stats, when non-nil, receives each task solver's telemetry as tasks
	// finish (one atomic publish per chunk/curve/row-worker, never per
	// solve). Batched large-N scenarios run the water-fill instead of the
	// equilibrium kernels and publish nothing.
	Stats *obs.Counters
}

func (o RunOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// bestResponseGrid is the strategy grid searched by best-responding
// providers — the 3×11 grid the figure reproductions use (it brackets every
// best response observed in Figures 7–8 at a fraction of the cost of the
// full default grid).
func bestResponseGrid() core.StrategyGrid {
	return core.StrategyGrid{
		Kappas: []float64{0, 0.5, 1},
		Cs:     numeric.Linspace(0, 1, 11),
	}
}

// Run validates the scenario, compiles it into warm-started solver tasks,
// executes them via sweep.RunParallel, and returns one table per metric.
// Tables carry the scenario title and serialize with sweep.Table.WriteCSV.
// Grid scenarios (Sweep.Grid set) are 2-D and solve with RunGrid instead.
func (s *Scenario) Run(opt RunOptions) ([]*sweep.Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.IsGrid() {
		return nil, fmt.Errorf("scenario %q: declares a 2-D grid sweep (%s); solve it with RunGrid", s.Name, s.axisList())
	}
	if s.IsDynamic() {
		return nil, fmt.Errorf("scenario %q: declares a dynamics simulation; solve it with dynamics.Run", s.Name)
	}
	if s.Regulation != nil {
		return s.runRegimes(opt)
	}
	if s.Population.Kind == "ensemble" && s.Population.Batch > 0 {
		return s.runBatched(opt)
	}
	return s.runMarket(opt)
}

// nuGrid resolves the sweep's capacity values: the grid itself for the "nu"
// axis, scaled by the population's saturation when requested.
func (s *Scenario) resolveNu(values []float64, saturation float64) []float64 {
	if !s.Sweep.OfSaturation {
		return values
	}
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = v * saturation
	}
	return out
}

// point is the full outcome of one sweep position: market-level surplus
// plus per-provider metrics (for regime scenarios, "providers" are regimes).
type point struct {
	phi   float64
	psi   []float64
	share []float64
	util  []float64
}

// metricTables assembles one table per requested metric from the per-point
// results. The phi metric is market-level (one series); the others carry
// one series per curve name.
func (s *Scenario) metricTables(grid []float64, pts []point, curves []string) []*sweep.Table {
	var tables []*sweep.Table
	for _, m := range s.Sweep.metrics() {
		t := &sweep.Table{
			Title:  fmt.Sprintf("%s — %s", s.Title, m),
			XLabel: s.Sweep.Axis,
			YLabel: m,
		}
		if m == MetricPhi {
			series := sweep.Series{Name: "phi"}
			for i, p := range pts {
				series.Append(grid[i], p.phi)
			}
			t.Add(series)
		} else {
			for k, name := range curves {
				series := sweep.Series{Name: name}
				for i, p := range pts {
					var y float64
					switch m {
					case MetricPsi:
						y = p.psi[k]
					case MetricShare:
						y = p.share[k]
					case MetricUtilization:
						y = p.util[k]
					}
					series.Append(grid[i], y)
				}
				t.Add(series)
			}
		}
		tables = append(tables, t)
	}
	return tables
}

// chunkRanges splits n grid points into at most workers contiguous chunks.
// Each chunk becomes one task with its own solver, so warm starts stay
// within a monotone sub-sweep while chunks run in parallel.
func chunkRanges(n, workers int) [][2]int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var ranges [][2]int
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo < hi {
			ranges = append(ranges, [2]int{lo, hi})
		}
	}
	return ranges
}

// ---------------------------------------------------------------------------
// Provider-market scenarios (monopoly, duopoly, oligopoly, subsidies).

func (s *Scenario) runMarket(opt RunOptions) ([]*sweep.Table, error) {
	pop, err := s.Population.Materialize()
	if err != nil {
		return nil, err
	}
	grid := s.Sweep.XValues()
	fixedNu := s.Sweep.Nu
	if s.Sweep.Axis == AxisNu {
		grid = s.resolveNu(grid, pop.TotalUnconstrainedPerCapita())
	} else if s.Sweep.OfSaturation {
		fixedNu *= pop.TotalUnconstrainedPerCapita()
	}

	pts := make([]point, len(grid))
	curves := make([]string, len(s.Providers))
	for i, p := range s.Providers {
		curves[i] = p.Name
	}

	var tasks []func()
	for _, r := range chunkRanges(len(grid), opt.workers()) {
		lo, hi := r[0], r[1]
		tasks = append(tasks, func() {
			// One warm-started solver per chunk: points within a chunk are
			// adjacent on the axis, so each solve seeds the next.
			solver := core.NewSolver(nil)
			var mk *core.Market
			for i := lo; i < hi; i++ {
				nu := fixedNu
				if s.Sweep.Axis == AxisNu {
					nu = grid[i]
				}
				if mk == nil {
					mk = core.NewMarket(solver, pop, nu)
					mk.MigrationTol = 1e-7
				} else {
					mk.NuBar = nu // keeps the per-ISP warm partitions
				}
				pts[i] = s.solvePoint(mk, grid[i])
			}
			// The solver is chunk-local, so its lifetime stats are this
			// chunk's exact contribution.
			opt.Stats.Add(solver.Stats())
		})
	}
	sweep.RunParallel(opt.workers(), tasks)
	return s.metricTables(grid, pts, curves), nil
}

// axisValue is one swept-axis assignment of a sweep point or grid cell.
type axisValue struct {
	axis  string
	value float64
}

// solvePoint solves the declared market at one axis position x.
func (s *Scenario) solvePoint(mk *core.Market, x float64) point {
	return s.solveAt(mk, []axisValue{{s.Sweep.Axis, x}})
}

// solveAt solves the declared market with every listed axis assignment
// applied. The "nu" axis is positional, not strategic — callers encode it
// in mk.NuBar before the call, so it is skipped here. 1-D sweeps pass one
// assignment; grid cells pass both of theirs.
func (s *Scenario) solveAt(mk *core.Market, axes []axisValue) point {
	pt, _ := s.solveAtEx(mk, axes)
	return pt
}

// providerEq pairs one solved provider with its consumer market share and
// the class equilibrium behind its metrics — the sampler's handle on the
// actual per-link rate equilibria, which the metric tables flatten away.
type providerEq struct {
	name  string
	share float64
	eq    *core.ClassEquilibrium
}

// solveAtEx is solveAt returning, alongside the metric point, the solved
// per-provider class equilibria (safe to retain: the market solvers clone
// equilibria out of their workspaces before publishing them).
func (s *Scenario) solveAtEx(mk *core.Market, axes []axisValue) (point, []providerEq) {
	isps := make([]core.ISP, len(s.Providers))
	for i, p := range s.Providers {
		st := core.Strategy{Kappa: p.Kappa, C: p.C}
		if p.PublicOption {
			st = core.PublicOption
		}
		isps[i] = core.ISP{Name: p.Name, Gamma: p.Gamma, Strategy: st}
	}
	sigma0 := s.Providers[0].Sigma
	subsidized := sigma0 > 0 || (len(s.Providers) > 1 && s.Providers[1].Sigma > 0)
	for _, av := range axes {
		switch av.axis {
		case AxisPrice:
			isps[0].Strategy.C = av.value
		case AxisKappa:
			isps[0].Strategy.Kappa = av.value
		case AxisPOShare:
			isps[1].Gamma = av.value
			isps[0].Gamma = 1 - av.value
		case AxisSigma:
			sigma0 = av.value
			subsidized = true
		}
	}
	if subsidized {
		out := solveSubsidized(mk, isps, s.Providers, sigma0)
		eqs := make([]providerEq, len(out.ISPs))
		for k := range out.ISPs {
			eqs[k] = providerEq{out.ISPs[k].Name, out.Shares[k], out.Eqs[k]}
		}
		return subsidizedPoint(out), eqs
	}

	var out *core.MarketOutcome
	if who := bestResponder(s.Providers); who >= 0 {
		prev := mk.MigrationTol
		mk.MigrationTol = 1e-6
		_, out, _ = mk.BestResponse(isps, who, bestResponseGrid())
		mk.MigrationTol = prev
	} else if len(isps) == 1 {
		out = mk.SolveMarket(isps)
	} else if len(isps) == 2 {
		out = mk.SolveDuopoly(isps[0], isps[1])
	} else {
		out = mk.SolveMarket(isps)
	}
	eqs := make([]providerEq, len(out.ISPs))
	for k := range out.ISPs {
		eqs[k] = providerEq{out.ISPs[k].Name, out.Shares[k], out.Eqs[k]}
	}
	return outcomePoint(out), eqs
}

func bestResponder(providers []ProviderSpec) int {
	for i, p := range providers {
		if p.BestResponse {
			return i
		}
	}
	return -1
}

func outcomePoint(out *core.MarketOutcome) point {
	p := point{
		phi:   out.Phi,
		psi:   make([]float64, len(out.ISPs)),
		share: append([]float64(nil), out.Shares...),
		util:  make([]float64, len(out.ISPs)),
	}
	for k := range out.ISPs {
		if out.Eqs[k] != nil {
			p.psi[k] = out.Eqs[k].Psi() * out.Shares[k]
			p.util[k] = out.Eqs[k].Utilization()
		}
	}
	return p
}

// solveSubsidized solves the two-ISP rebate game (§VI extension) with the
// first provider rebating fraction sigma of premium revenue.
func solveSubsidized(mk *core.Market, isps []core.ISP, providers []ProviderSpec, sigma0 float64) *core.SubsidizedOutcome {
	a := core.SubsidizedISP{ISP: isps[0], Sigma: sigma0}
	b := core.SubsidizedISP{ISP: isps[1], Sigma: providers[1].Sigma}
	return mk.SolveSubsidizedDuopoly(a, b)
}

// subsidizedPoint flattens a rebate-game outcome into a metric point.
func subsidizedPoint(out *core.SubsidizedOutcome) point {
	p := point{
		phi:   out.GrossPhi,
		psi:   make([]float64, len(out.ISPs)),
		share: append([]float64(nil), out.Shares...),
		util:  make([]float64, len(out.ISPs)),
	}
	for k := range out.ISPs {
		if out.Eqs[k] != nil {
			p.psi[k] = out.Eqs[k].Psi() * out.Shares[k]
			p.util[k] = out.Eqs[k].Utilization()
		}
	}
	return p
}

// ---------------------------------------------------------------------------
// Regime-comparison scenarios.

var allRegimes = []string{"unregulated", "kappa-cap", "price-cap", "neutral", "public-option"}

func (s *Scenario) runRegimes(opt RunOptions) ([]*sweep.Table, error) {
	pop, err := s.Population.Materialize()
	if err != nil {
		return nil, err
	}
	grid := s.resolveNu(s.Sweep.XValues(), pop.TotalUnconstrainedPerCapita())
	regimes := s.Regulation.Regimes
	if len(regimes) == 0 {
		regimes = allRegimes
	}
	rc := s.Regulation.withDefaults()

	// One task per regime: each curve owns its solver and sweeps capacity
	// sequentially, warm-starting point to point.
	results := make([][]point, len(regimes))
	tasks := make([]func(), len(regimes))
	for r := range regimes {
		r := r
		tasks[r] = func() {
			results[r] = regimeCurve(regimes[r], grid, pop, rc, opt.Stats)
		}
	}
	sweep.RunParallel(opt.workers(), tasks)

	// Reassemble: curve k of the combined tables is regime k.
	pts := make([]point, len(grid))
	for i := range pts {
		pts[i] = point{
			psi:   make([]float64, len(regimes)),
			share: make([]float64, len(regimes)),
			util:  make([]float64, len(regimes)),
		}
		for r := range regimes {
			pts[i].psi[r] = results[r][i].psi[0]
			pts[i].share[r] = results[r][i].share[0]
			pts[i].util[r] = results[r][i].util[0]
		}
	}
	tables := s.metricTables(grid, pts, regimes)
	// The market-level phi differs per regime, so rebuild that table with
	// one series per regime.
	for ti, m := range s.Sweep.metrics() {
		if m != MetricPhi {
			continue
		}
		t := &sweep.Table{Title: tables[ti].Title, XLabel: s.Sweep.Axis, YLabel: m}
		for r, name := range regimes {
			series := sweep.Series{Name: name}
			for i := range grid {
				series.Append(grid[i], results[r][i].phi)
			}
			t.Add(series)
		}
		tables[ti] = t
	}
	return tables, nil
}

// withDefaults fills unset regulation knobs with the registry defaults, so
// the runner and the equilibrium sampler resolve regimes identically.
func (r RegulationSpec) withDefaults() RegulationSpec {
	if r.KappaCap <= 0 || r.KappaCap > 1 {
		r.KappaCap = 0.5
	}
	if r.PriceCap <= 0 {
		r.PriceCap = 0.3
	}
	if r.POShare <= 0 || r.POShare >= 1 {
		r.POShare = 0.5
	}
	if r.GridN <= 0 {
		r.GridN = 30
	}
	return r
}

// regimeSolver owns the warm-started solvers one regime curve reuses across
// capacities (mirroring core.CompareRegimes one regime at a time).
type regimeSolver struct {
	solver *core.Solver
	mono   *core.Monopoly
	pop    traffic.Population
	rc     RegulationSpec
}

func newRegimeSolver(pop traffic.Population, rc RegulationSpec) *regimeSolver {
	solver := core.NewSolver(nil)
	return &regimeSolver{solver: solver, mono: core.NewMonopoly(solver), pop: pop, rc: rc}
}

// solveAt solves one regulatory regime at capacity nu, returning the metric
// point and the class equilibria of the regime's implied market structure
// (the regulated monopolist, or the incumbent/Public Option pair).
func (rs *regimeSolver) solveAt(regime string, nu float64) (point, []providerEq) {
	var phi, psi, share, util float64
	share = 1
	var eqs []providerEq
	switch regime {
	case "unregulated":
		_, eq := rs.mono.OptimalStrategy(1, nu, rs.pop, 10, rs.rc.GridN)
		phi, psi, util = eq.Phi(), eq.Psi(), eq.Utilization()
		eqs = []providerEq{{regime, 1, eq}}
	case "kappa-cap":
		_, eq := rs.mono.OptimalPrice(rs.rc.KappaCap, 1, nu, rs.pop, rs.rc.GridN)
		phi, psi, util = eq.Phi(), eq.Psi(), eq.Utilization()
		eqs = []providerEq{{regime, 1, eq}}
	case "price-cap":
		_, eq := rs.mono.OptimalPrice(1, rs.rc.PriceCap, nu, rs.pop, rs.rc.GridN)
		phi, psi, util = eq.Phi(), eq.Psi(), eq.Utilization()
		eqs = []providerEq{{regime, 1, eq}}
	case "neutral":
		eq := rs.solver.Competitive(core.PublicOption, nu, rs.pop)
		phi, psi, util = eq.Phi(), 0, eq.Utilization()
		eqs = []providerEq{{regime, 1, eq}}
	case "public-option":
		mk := core.NewMarket(rs.solver, rs.pop, nu)
		mk.MigrationTol = 1e-6
		isps := []core.ISP{
			{Name: "incumbent", Gamma: 1 - rs.rc.POShare, Strategy: core.Strategy{Kappa: 1, C: 0.5}},
			{Name: "public-option", Gamma: rs.rc.POShare, Strategy: core.PublicOption},
		}
		_, o, _ := mk.BestResponse(isps, 0, bestResponseGrid())
		phi = o.Phi
		psi = o.Eqs[0].Psi() * o.Shares[0]
		share = o.Shares[0]
		util = o.Eqs[0].Utilization()
		eqs = []providerEq{
			{regime + ":" + o.ISPs[0].Name, o.Shares[0], o.Eqs[0]},
			{regime + ":" + o.ISPs[1].Name, o.Shares[1], o.Eqs[1]},
		}
	default:
		panic("scenario: unknown regime " + regime) // Validate rejects these
	}
	return point{phi: phi, psi: []float64{psi}, share: []float64{share}, util: []float64{util}}, eqs
}

// regimeCurve sweeps one regulatory regime across capacities with its own
// warm-started solver, publishing the curve's solver telemetry to stats
// (nil-safe) when done.
func regimeCurve(regime string, nus []float64, pop traffic.Population, rc RegulationSpec, stats *obs.Counters) []point {
	rs := newRegimeSolver(pop, rc)
	out := make([]point, len(nus))
	for i, nu := range nus {
		out[i], _ = rs.solveAt(regime, nu)
	}
	stats.Add(rs.solver.Stats())
	return out
}

// ---------------------------------------------------------------------------
// Batched large-N scenarios (neutral providers only).

func (s *Scenario) runBatched(opt RunOptions) ([]*sweep.Table, error) {
	bp := newBatchedPop(s.Population.ensembleConfig(), s.Population.seed(), s.Population.Batch)
	grid := s.resolveNu(s.Sweep.XValues(), bp.saturation)

	// With every provider neutral the migration game is Lemma 4's
	// homogeneous equilibrium: shares equal capacity shares and every ISP's
	// per-capita capacity is the system ν̄, so the market outcome is the
	// pooled rate equilibrium. The curve is sequential (each water level
	// warm-starts the next — Axiom 3); parallelism is across population
	// batches inside each point.
	pts := make([]point, len(grid))
	order := ascendingOrder(grid)
	tau := 0.0
	for _, i := range order {
		var phi, util float64
		tau, phi, util = bp.neutralPoint(grid[i], tau, opt.workers())
		p := point{
			phi:   phi,
			psi:   make([]float64, len(s.Providers)),
			share: make([]float64, len(s.Providers)),
			util:  make([]float64, len(s.Providers)),
		}
		for k, prov := range s.Providers {
			p.share[k] = prov.Gamma
			p.util[k] = util
		}
		pts[i] = p
	}
	curves := make([]string, len(s.Providers))
	for i, p := range s.Providers {
		curves[i] = p.Name
	}
	return s.metricTables(grid, pts, curves), nil
}

// ascendingOrder returns grid indices sorted by value so the water-fill
// warm start sees a monotone capacity sequence even for unsorted Values.
func ascendingOrder(grid []float64) []int {
	idx := make([]int, len(grid))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && grid[idx[j]] < grid[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// Saturation returns the population's saturation capacity Σ α_i·θ̂_i without
// materializing batched ensembles more than batch-by-batch.
func (s *Scenario) Saturation() (float64, error) {
	if s.Population.Kind == "ensemble" && s.Population.Batch > 0 {
		bp := newBatchedPop(s.Population.ensembleConfig(), s.Population.seed(), s.Population.Batch)
		return bp.saturation, nil
	}
	pop, err := s.Population.Materialize()
	if err != nil {
		return 0, err
	}
	return pop.TotalUnconstrainedPerCapita(), nil
}
