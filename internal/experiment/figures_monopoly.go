package experiment

import (
	"fmt"

	"github.com/netecon-sim/publicoption/internal/alloc"
	"github.com/netecon-sim/publicoption/internal/core"
	"github.com/netecon-sim/publicoption/internal/demand"
	"github.com/netecon-sim/publicoption/internal/sweep"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// Figure 4 / 7 capacity curves (per-capita ν) of the paper. They are
// calibrated against the 1000-CP ensemble's saturation point of ≈ 250; when
// a non-default ensemble is used (fast mode, custom sizes), scaledNus keeps
// the same *relative* positions so every pricing regime still appears.
var paperNus = []float64{20, 50, 100, 150, 200}

// paperSaturation is E[Σ α_i·θ̂_i] for the paper's ensemble (§III-E).
const paperSaturation = 250.0

// scaledNus rescales the paper's capacity grid to the realized saturation
// point of pop.
func scaledNus(pop traffic.Population) []float64 {
	scale := pop.TotalUnconstrainedPerCapita() / paperSaturation
	out := make([]float64, len(paperNus))
	for i, nu := range paperNus {
		out[i] = nu * scale
	}
	return out
}

// Figure 5 / 8 strategy grid: "various strategies s_I = (κ, c)".
var paperStrategies = []core.Strategy{
	{Kappa: 0.2, C: 0.2}, {Kappa: 0.5, C: 0.2}, {Kappa: 0.9, C: 0.2},
	{Kappa: 0.2, C: 0.5}, {Kappa: 0.5, C: 0.5}, {Kappa: 0.9, C: 0.5},
	{Kappa: 0.2, C: 0.8}, {Kappa: 0.5, C: 0.8}, {Kappa: 0.9, C: 0.8},
}

func init() {
	register(&Experiment{
		ID:    "fig2",
		Title: "Demand function d_i(ω_i) for throughput sensitivities β",
		Expect: "Exponential decay in congestion: at β=5 a 10% throughput " +
			"drop roughly halves demand; β=0.1 is nearly insensitive.",
		Run: runFig2,
	})
	register(&Experiment{
		ID:    "fig3",
		Title: "Throughput and demand under max-min fairness (3 archetype CPs) vs per-capita capacity ν",
		Expect: "As ν grows, Google-type demand saturates first, then " +
			"Skype-type, Netflix-type last; throughputs are monotone in ν.",
		Run: runFig3,
	})
	register(&Experiment{
		ID:    "fig4",
		Title: "Monopoly, κ=1: per-capita surplus Ψ and Φ vs premium price c",
		Expect: "Three regimes: Ψ = c·ν while the class is congested; a " +
			"revenue peak; then collapse as CPs become priced out. At " +
			"abundant ν the revenue-optimal price under-utilizes capacity " +
			"and hurts Φ.",
		Run: runFig4(traffic.PhiCorrelated, "fig4"),
	})
	register(&Experiment{
		ID:    "fig5",
		Title: "Monopoly: Ψ and Φ under strategies (κ,c) vs per-capita capacity ν",
		Expect: "Ψ rises while the premium class is congested, then decays " +
			"to zero as capacity becomes abundant (for small κ); higher κ " +
			"holds more revenue at the cost of Φ; Φ grows with ν with only " +
			"small downward glitches (ε_s).",
		Run: runFig5(traffic.PhiCorrelated, "fig5"),
	})
	register(&Experiment{
		ID:    "fig9",
		Title: "Appendix: Figure 4's Φ under φ ~ U[0,U[0,10]] (independent of β)",
		Expect: "Same qualitative regimes as Figure 4; CP decisions and Ψ " +
			"are unchanged because φ only weighs the surplus.",
		Run: runFig4(traffic.PhiIndependent, "fig9"),
	})
	register(&Experiment{
		ID:     "fig10",
		Title:  "Appendix: Figure 5's Φ under φ ~ U[0,U[0,10]]",
		Expect: "Same qualitative shapes as Figure 5.",
		Run:    runFig5(traffic.PhiIndependent, "fig10"),
	})
}

func runFig2(cfg Config) []*sweep.Table {
	betas := []float64{0.1, 0.5, 1, 2, 5, 10}
	omegas := cfg.grid(0.01, 1, 200, 50)
	tbl := &sweep.Table{
		Title:  "Fig 2: demand d(ω) = exp(-β(1/ω - 1))",
		XLabel: "omega",
		YLabel: "demand",
	}
	for _, beta := range betas {
		curve := demand.Exponential{Beta: beta}
		tbl.Add(sweep.Map(fmt.Sprintf("beta=%g", beta), omegas, curve.At))
	}
	return []*sweep.Table{tbl}
}

func runFig3(cfg Config) []*sweep.Table {
	pop := traffic.Archetypes()
	nus := cfg.grid(0, 6000, 241, 61)
	thetaTbl := &sweep.Table{
		Title:  "Fig 3 (top): achievable throughput θ_i under max-min vs ν (Kbps)",
		XLabel: "nu",
		YLabel: "theta",
	}
	demandTbl := &sweep.Table{
		Title:  "Fig 3 (bottom): demand d_i(θ_i) vs ν (Kbps)",
		XLabel: "nu",
		YLabel: "demand",
	}
	series := make([]sweep.Series, len(pop))
	dSeries := make([]sweep.Series, len(pop))
	for i := range pop {
		series[i] = sweep.Series{Name: pop[i].Name}
		dSeries[i] = sweep.Series{Name: pop[i].Name}
	}
	for _, nu := range nus {
		res := alloc.Solve(alloc.MaxMin{}, nu, pop)
		for i := range pop {
			series[i].Append(nu, res.Theta[i])
			dSeries[i].Append(nu, res.Demand(i))
		}
	}
	for i := range pop {
		thetaTbl.Add(series[i])
		demandTbl.Add(dSeries[i])
	}
	return []*sweep.Table{thetaTbl, demandTbl}
}

// runFig4 builds the Figure 4 (or appendix Figure 9) runner: κ=1 price
// sweeps for each paper capacity, parallel across capacities.
func runFig4(phi traffic.PhiSetting, name string) func(Config) []*sweep.Table {
	return func(cfg Config) []*sweep.Table {
		pop := cfg.population(phi)
		prices := cfg.grid(0, 1, 101, 21)
		psiTbl := &sweep.Table{
			Title:  fmt.Sprintf("%s (left): per-capita ISP surplus Ψ vs price c (κ=1)", name),
			XLabel: "c",
			YLabel: "psi",
		}
		phiTbl := &sweep.Table{
			Title:  fmt.Sprintf("%s (right): per-capita consumer surplus Φ vs price c (κ=1)", name),
			XLabel: "c",
			YLabel: "phi",
		}
		nus := scaledNus(pop)
		psiS := make([]sweep.Series, len(nus))
		phiS := make([]sweep.Series, len(nus))
		tasks := make([]func(), len(nus))
		for k, nu := range nus {
			k, nu := k, nu
			label := fmt.Sprintf("nu=%g", paperNus[k])
			tasks[k] = func() {
				mono := core.NewMonopoly(nil)
				psi, phiV := mono.RevenueCurve(1, prices, nu, pop)
				s1 := sweep.Series{Name: label}
				s2 := sweep.Series{Name: label}
				for i := range prices {
					s1.Append(prices[i], psi[i])
					s2.Append(prices[i], phiV[i])
				}
				psiS[k], phiS[k] = s1, s2
			}
		}
		sweep.RunParallel(cfg.Workers, tasks)
		for k := range nus {
			psiTbl.Add(psiS[k])
			phiTbl.Add(phiS[k])
		}
		return []*sweep.Table{psiTbl, phiTbl}
	}
}

// runFig5 builds the Figure 5 (or appendix Figure 10) runner: capacity
// sweeps for the 3×3 strategy grid, parallel across strategies.
func runFig5(phi traffic.PhiSetting, name string) func(Config) []*sweep.Table {
	return func(cfg Config) []*sweep.Table {
		pop := cfg.population(phi)
		scale := pop.TotalUnconstrainedPerCapita() / paperSaturation
		nus := cfg.grid(2*scale, 500*scale, 101, 26)
		psiTbl := &sweep.Table{
			Title:  fmt.Sprintf("%s: per-capita ISP surplus Ψ vs ν under strategies (κ,c)", name),
			XLabel: "nu",
			YLabel: "psi",
		}
		phiTbl := &sweep.Table{
			Title:  fmt.Sprintf("%s: per-capita consumer surplus Φ vs ν under strategies (κ,c)", name),
			XLabel: "nu",
			YLabel: "phi",
		}
		psiS := make([]sweep.Series, len(paperStrategies))
		phiS := make([]sweep.Series, len(paperStrategies))
		tasks := make([]func(), len(paperStrategies))
		for k, strat := range paperStrategies {
			k, strat := k, strat
			tasks[k] = func() {
				mono := core.NewMonopoly(nil)
				psi, phiV := mono.CapacityCurve(strat, nus, pop)
				label := fmt.Sprintf("k=%g,c=%g", strat.Kappa, strat.C)
				s1 := sweep.Series{Name: label}
				s2 := sweep.Series{Name: label}
				for i := range nus {
					s1.Append(nus[i], psi[i])
					s2.Append(nus[i], phiV[i])
				}
				psiS[k], phiS[k] = s1, s2
			}
		}
		sweep.RunParallel(cfg.Workers, tasks)
		for k := range paperStrategies {
			psiTbl.Add(psiS[k])
			phiTbl.Add(phiS[k])
		}
		return []*sweep.Table{psiTbl, phiTbl}
	}
}
