package experiment

import (
	"fmt"

	"github.com/netecon-sim/publicoption/internal/core"
	"github.com/netecon-sim/publicoption/internal/sweep"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

func init() {
	register(&Experiment{
		ID:    "fig7",
		Title: "Duopoly vs Public Option, κ_I=1: market share m_I, surplus Ψ_I, and Φ vs price c_I",
		Expect: "m_I rises slightly above 1/2 while the premium class stays " +
			"congested, then collapses; Ψ_I rises linearly then drops to " +
			"zero much more steeply than the monopoly's; Φ never falls to " +
			"zero (the Public Option backstop); peak Ψ_I can be lower at " +
			"ν=200 than at ν=150.",
		Run: runFig7(traffic.PhiCorrelated, "fig7"),
	})
	register(&Experiment{
		ID:    "fig8",
		Title: "Duopoly vs Public Option: Ψ_I, Φ and m_I under strategies (κ,c) vs ν",
		Expect: "Ψ_I collapses sharply past its peak (unlike the monopoly's " +
			"gradual decay); Φ is barely affected by ISP I's strategy; m_I " +
			"slightly exceeds 1/2 under scarcity and stays at or below 1/2 " +
			"when capacity is abundant.",
		Run: runFig8(traffic.PhiCorrelated, "fig8"),
	})
	register(&Experiment{
		ID:     "fig11",
		Title:  "Appendix: Figure 7 under φ ~ U[0,U[0,10]]",
		Expect: "Same qualitative behaviour as Figure 7.",
		Run:    runFig7(traffic.PhiIndependent, "fig11"),
	})
	register(&Experiment{
		ID:     "fig12",
		Title:  "Appendix: Figure 8 under φ ~ U[0,U[0,10]]",
		Expect: "Same qualitative behaviour as Figure 8.",
		Run:    runFig8(traffic.PhiIndependent, "fig12"),
	})
}

// runFig7 sweeps the duopoly game over ISP I's price at κ_I = 1 against a
// Public Option ISP of equal capacity, for each paper capacity.
func runFig7(phi traffic.PhiSetting, name string) func(Config) []*sweep.Table {
	return func(cfg Config) []*sweep.Table {
		pop := cfg.population(phi)
		prices := cfg.grid(0, 1, 51, 11)
		shareTbl := &sweep.Table{
			Title:  fmt.Sprintf("%s (left): ISP I market share m_I vs c_I (κ_I=1)", name),
			XLabel: "c", YLabel: "share",
		}
		psiTbl := &sweep.Table{
			Title:  fmt.Sprintf("%s (middle): ISP I per-capita surplus Ψ_I vs c_I (κ_I=1)", name),
			XLabel: "c", YLabel: "psi",
		}
		phiTbl := &sweep.Table{
			Title:  fmt.Sprintf("%s (right): per-capita consumer surplus Φ vs c_I (κ_I=1)", name),
			XLabel: "c", YLabel: "phi",
		}
		nus := scaledNus(pop)
		shareS := make([]sweep.Series, len(nus))
		psiS := make([]sweep.Series, len(nus))
		phiS := make([]sweep.Series, len(nus))
		tasks := make([]func(), len(nus))
		for k, nu := range nus {
			k, nu := k, nu
			label := fmt.Sprintf("nu=%g", paperNus[k])
			tasks[k] = func() {
				mk := core.NewMarket(nil, pop, nu)
				mk.MigrationTol = 1e-6
				s1 := sweep.Series{Name: label}
				s2 := sweep.Series{Name: label}
				s3 := sweep.Series{Name: label}
				for _, c := range prices {
					out := mk.SolveDuopoly(
						core.ISP{Name: "I", Gamma: 0.5, Strategy: core.Strategy{Kappa: 1, C: c}},
						core.ISP{Name: "PO", Gamma: 0.5, Strategy: core.PublicOption},
					)
					// Ψ_I is revenue per capita of the whole market: the
					// premium class serves ISP I's consumers only, so scale
					// its per-subscriber surplus by the market share.
					psi := out.Eqs[0].Psi() * out.Shares[0]
					s1.Append(c, out.Shares[0])
					s2.Append(c, psi)
					s3.Append(c, out.Phi)
				}
				shareS[k], psiS[k], phiS[k] = s1, s2, s3
			}
		}
		sweep.RunParallel(cfg.Workers, tasks)
		for k := range nus {
			shareTbl.Add(shareS[k])
			psiTbl.Add(psiS[k])
			phiTbl.Add(phiS[k])
		}
		return []*sweep.Table{shareTbl, psiTbl, phiTbl}
	}
}

// runFig8 sweeps the duopoly game over system capacity for the 3×3 strategy
// grid.
func runFig8(phi traffic.PhiSetting, name string) func(Config) []*sweep.Table {
	return func(cfg Config) []*sweep.Table {
		pop := cfg.population(phi)
		scale := pop.TotalUnconstrainedPerCapita() / paperSaturation
		nus := cfg.grid(2*scale, 500*scale, 51, 18)
		psiTbl := &sweep.Table{
			Title:  fmt.Sprintf("%s: ISP I per-capita surplus Ψ_I vs ν under strategies (κ,c)", name),
			XLabel: "nu", YLabel: "psi",
		}
		phiTbl := &sweep.Table{
			Title:  fmt.Sprintf("%s: per-capita consumer surplus Φ vs ν under strategies (κ,c)", name),
			XLabel: "nu", YLabel: "phi",
		}
		shareTbl := &sweep.Table{
			Title:  fmt.Sprintf("%s: ISP I market share m_I vs ν under strategies (κ,c)", name),
			XLabel: "nu", YLabel: "share",
		}
		psiS := make([]sweep.Series, len(paperStrategies))
		phiS := make([]sweep.Series, len(paperStrategies))
		shareS := make([]sweep.Series, len(paperStrategies))
		tasks := make([]func(), len(paperStrategies))
		for k, strat := range paperStrategies {
			k, strat := k, strat
			tasks[k] = func() {
				label := fmt.Sprintf("k=%g,c=%g", strat.Kappa, strat.C)
				s1 := sweep.Series{Name: label}
				s2 := sweep.Series{Name: label}
				s3 := sweep.Series{Name: label}
				for _, nu := range nus {
					mk := core.NewMarket(nil, pop, nu)
					mk.MigrationTol = 1e-6
					out := mk.SolveDuopoly(
						core.ISP{Name: "I", Gamma: 0.5, Strategy: strat},
						core.ISP{Name: "PO", Gamma: 0.5, Strategy: core.PublicOption},
					)
					s1.Append(nu, out.Eqs[0].Psi()*out.Shares[0])
					s2.Append(nu, out.Phi)
					s3.Append(nu, out.Shares[0])
				}
				psiS[k], phiS[k], shareS[k] = s1, s2, s3
			}
		}
		sweep.RunParallel(cfg.Workers, tasks)
		for k := range paperStrategies {
			psiTbl.Add(psiS[k])
			phiTbl.Add(phiS[k])
			shareTbl.Add(shareS[k])
		}
		return []*sweep.Table{psiTbl, phiTbl, shareTbl}
	}
}
