package experiment

import (
	"bytes"
	"math"
	"testing"

	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/sweep"
)

var fast = Config{Fast: true}

func findSeries(t *testing.T, tbl *sweep.Table, name string) sweep.Series {
	t.Helper()
	for _, s := range tbl.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("table %q missing series %q", tbl.Title, name)
	return sweep.Series{}
}

func TestRegistryComplete(t *testing.T) {
	wantFigures := []string{"fig2", "fig3", "fig4", "fig5", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"}
	for _, id := range wantFigures {
		if _, ok := Get(id); !ok {
			t.Errorf("missing figure experiment %s", id)
		}
	}
	wantOthers := []string{"regimes", "ablation-alphafair", "ablation-tcp", "ablation-mm1", "ablation-nash", "ablation-pubopt-capacity"}
	for _, id := range wantOthers {
		if _, ok := Get(id); !ok {
			t.Errorf("missing experiment %s", id)
		}
	}
	all := All()
	if len(all) != len(wantFigures)+len(wantOthers) {
		t.Errorf("registry has %d entries, want %d", len(all), len(wantFigures)+len(wantOthers))
	}
	// Sorted: figures in numeric order first.
	if all[0].ID != "fig2" || all[1].ID != "fig3" {
		t.Errorf("ordering broken: %s, %s", all[0].ID, all[1].ID)
	}
	for _, e := range all {
		if e.Title == "" || e.Expect == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("fig99"); ok {
		t.Fatal("unknown id found")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustRun should panic on unknown id")
		}
	}()
	MustRun("fig99", fast)
}

func TestFig2Shape(t *testing.T) {
	tables := MustRun("fig2", fast)
	if len(tables) != 1 {
		t.Fatalf("fig2 produced %d tables", len(tables))
	}
	tbl := tables[0]
	if len(tbl.Series) != 6 {
		t.Fatalf("fig2 has %d series, want 6 β values", len(tbl.Series))
	}
	// Paper observation: at ω=0.9, β=5 demand is roughly halved.
	s5 := findSeries(t, tbl, "beta=5")
	var at09 float64
	for i := range s5.X {
		if math.Abs(s5.X[i]-0.9) < 0.02 {
			at09 = s5.Y[i]
		}
	}
	if at09 < 0.4 || at09 > 0.65 {
		t.Errorf("β=5 demand at ω≈0.9 = %v, paper says ≈ halved", at09)
	}
	// Sensitivity ordering at mid-ω.
	mid := func(name string) float64 {
		s := findSeries(t, tbl, name)
		return s.Y[len(s.Y)/2]
	}
	if !(mid("beta=0.1") > mid("beta=1") && mid("beta=1") > mid("beta=10")) {
		t.Error("demand not ordered by sensitivity")
	}
}

func TestFig3Shape(t *testing.T) {
	tables := MustRun("fig3", fast)
	if len(tables) != 2 {
		t.Fatalf("fig3 produced %d tables", len(tables))
	}
	demands := tables[1]
	// Saturation order: google first, then skype, then netflix (§II-D).
	reach := func(name string) float64 {
		s := findSeries(t, demands, name)
		for i := range s.X {
			if s.Y[i] >= 0.95 {
				return s.X[i]
			}
		}
		return math.Inf(1)
	}
	g, n, sk := reach("google"), reach("netflix"), reach("skype")
	if !(g < sk && sk < n) {
		t.Errorf("demand saturation order google=%v skype=%v netflix=%v", g, sk, n)
	}
	// Throughputs are monotone in ν.
	for _, s := range tables[0].Series {
		if !numeric.IsMonotoneNonDecreasing(s.Y, 1e-6) {
			t.Errorf("θ series %s not monotone", s.Name)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	tables := MustRun("fig4", fast)
	if len(tables) != 2 {
		t.Fatalf("fig4 produced %d tables", len(tables))
	}
	psiTbl, phiTbl := tables[0], tables[1]
	if len(psiTbl.Series) != 5 || len(phiTbl.Series) != 5 {
		t.Fatalf("fig4 series counts: %d, %d; want 5 capacities", len(psiTbl.Series), len(phiTbl.Series))
	}
	for _, nuName := range []string{"nu=20", "nu=100", "nu=200"} {
		psi := findSeries(t, psiTbl, nuName)
		// Regime 1: Ψ starts at 0 and initially rises ≈ c·ν.
		if psi.Y[0] != 0 {
			t.Errorf("%s: Ψ(0) = %v", nuName, psi.Y[0])
		}
		if psi.Y[1] <= 0 {
			t.Errorf("%s: Ψ should rise with small c", nuName)
		}
		// Regime 2: Ψ collapses at c=1 (v ~ U[0,1]: nobody affords c=1).
		if last := psi.Y[len(psi.Y)-1]; last > 1e-9 {
			t.Errorf("%s: Ψ(1) = %v, want 0", nuName, last)
		}
	}
	// Misalignment regime: at ν=200, Φ decreases over some mid-price range
	// (the paper's third regime).
	phi200 := findSeries(t, phiTbl, "nu=200")
	if gap := numeric.MaxDownwardGap(phi200.Y); gap <= 0 {
		t.Error("ν=200: Φ(c) should decrease somewhere (misalignment regime)")
	}
}

func TestFig5Shape(t *testing.T) {
	tables := MustRun("fig5", fast)
	psiTbl, phiTbl := tables[0], tables[1]
	if len(psiTbl.Series) != 9 || len(phiTbl.Series) != 9 {
		t.Fatalf("fig5 series counts %d/%d, want 9 strategies", len(psiTbl.Series), len(phiTbl.Series))
	}
	// Small-κ strategies: revenue goes to ~zero at large ν (regime 3).
	psi := findSeries(t, psiTbl, "k=0.2,c=0.5")
	last := psi.Y[len(psi.Y)-1]
	peak := psi.Y[numeric.ArgMax(psi.Y)]
	if peak <= 0 {
		t.Fatal("k=0.2,c=0.5: no revenue anywhere")
	}
	if last > 0.25*peak {
		t.Errorf("k=0.2: Ψ at abundant ν = %v, want far below peak %v", last, peak)
	}
	// κ=0.9 holds more revenue than κ=0.2 at the end (paper: big κ
	// guarantees some revenue at the cost of Φ).
	psiBig := findSeries(t, psiTbl, "k=0.9,c=0.5")
	if psiBig.Y[len(psiBig.Y)-1] < last {
		t.Error("κ=0.9 should retain at least as much late revenue as κ=0.2")
	}
	// Φ grows overall: final Φ within each strategy is the max up to small ε.
	for _, s := range phiTbl.Series {
		gap := numeric.MaxDownwardGap(s.Y)
		_, hi := numeric.MinMax(s.Y)
		if gap > 0.25*hi {
			t.Errorf("fig5 %s: Φ drop %v too large vs max %v", s.Name, gap, hi)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	tables := MustRun("fig7", fast)
	if len(tables) != 3 {
		t.Fatalf("fig7 produced %d tables", len(tables))
	}
	shareTbl, psiTbl, phiTbl := tables[0], tables[1], tables[2]
	share := findSeries(t, shareTbl, "nu=100")
	// At c=1 all consumers leave ISP I.
	if lastShare := share.Y[len(share.Y)-1]; lastShare > 0.01 {
		t.Errorf("m_I at c=1 = %v, want ≈ 0", lastShare)
	}
	// Φ stays positive everywhere (the Public Option backstop).
	phi := findSeries(t, phiTbl, "nu=100")
	for i := range phi.Y {
		if phi.Y[i] <= 0 {
			t.Errorf("Φ(c=%v) = %v, must stay positive", phi.X[i], phi.Y[i])
		}
	}
	// Ψ_I rises then collapses to zero.
	psi := findSeries(t, psiTbl, "nu=100")
	if psi.Y[numeric.ArgMax(psi.Y)] <= 0 {
		t.Error("Ψ_I never positive")
	}
	if lastPsi := psi.Y[len(psi.Y)-1]; lastPsi > 1e-9 {
		t.Errorf("Ψ_I at c=1 = %v, want 0", lastPsi)
	}
}

func TestFig8Shape(t *testing.T) {
	tables := MustRun("fig8", fast)
	if len(tables) != 3 {
		t.Fatalf("fig8 produced %d tables", len(tables))
	}
	psiTbl, phiTbl, shareTbl := tables[0], tables[1], tables[2]
	if len(psiTbl.Series) != 9 {
		t.Fatalf("fig8 Ψ has %d series", len(psiTbl.Series))
	}
	// Shares stay within a sane band around 1/2 for moderate strategies.
	s := findSeries(t, shareTbl, "k=0.5,c=0.2")
	for i := range s.Y {
		if s.Y[i] < 0 || s.Y[i] > 1 {
			t.Fatalf("share out of range: %v", s.Y[i])
		}
	}
	// Φ is barely affected by ISP I's strategy: compare two strategies'
	// final Φ.
	a := findSeries(t, phiTbl, "k=0.2,c=0.2")
	b := findSeries(t, phiTbl, "k=0.9,c=0.8")
	fa, fb := a.Y[len(a.Y)-1], b.Y[len(b.Y)-1]
	if math.Abs(fa-fb) > 0.25*math.Max(fa, fb) {
		t.Errorf("Φ at abundant ν differs too much across strategies: %v vs %v", fa, fb)
	}
	// At abundant capacity a small-κ incumbent's premium class empties and
	// it becomes effectively neutral: the equilibrium selection returns the
	// even split (paper: "at most an equal share ... small value of κ").
	if last := s.Y[len(s.Y)-1]; math.Abs(last-0.5) > 0.05 {
		t.Errorf("k=0.5,c=0.2 abundant-ν share = %v, want ≈ 0.5", last)
	}
}

func TestAppendixFiguresRun(t *testing.T) {
	for _, id := range []string{"fig9", "fig10", "fig11", "fig12"} {
		tables := MustRun(id, fast)
		if len(tables) == 0 {
			t.Errorf("%s produced no tables", id)
		}
		for _, tbl := range tables {
			if len(tbl.Series) == 0 {
				t.Errorf("%s table %q empty", id, tbl.Title)
			}
			var buf bytes.Buffer
			if err := tbl.WriteCSV(&buf); err != nil {
				t.Errorf("%s CSV: %v", id, err)
			}
		}
	}
}

func TestAblationsRun(t *testing.T) {
	for _, id := range []string{"ablation-alphafair", "ablation-tcp", "ablation-mm1", "ablation-nash", "ablation-pubopt-capacity"} {
		tables := MustRun(id, fast)
		if len(tables) == 0 {
			t.Errorf("%s produced no tables", id)
			continue
		}
		for _, tbl := range tables {
			for _, s := range tbl.Series {
				if s.Len() == 0 {
					t.Errorf("%s series %q empty", id, s.Name)
				}
				for _, y := range s.Y {
					if math.IsNaN(y) || math.IsInf(y, 0) {
						t.Errorf("%s series %q has non-finite value", id, s.Name)
					}
				}
			}
		}
	}
}

func TestAblationMM1Headroom(t *testing.T) {
	tables := MustRun("ablation-mm1", fast)
	util := tables[0]
	mm := findSeries(t, util, "mm1")
	tcp := findSeries(t, util, "maxmin")
	for i := range mm.Y {
		if mm.Y[i] >= 1 {
			t.Errorf("M/M/1 utilization %v >= 1", mm.Y[i])
		}
	}
	// The max-min model is work conserving below saturation.
	if tcp.Y[0] < 0.999 {
		t.Errorf("max-min utilization below saturation = %v, want 1", tcp.Y[0])
	}
}

func TestConfigDefaults(t *testing.T) {
	var cfg Config
	if cfg.seed() == 0 {
		t.Error("default seed must be the repository seed")
	}
	if cfg.cps() != 1000 {
		t.Errorf("default ensemble size %d, want 1000", cfg.cps())
	}
	fastCfg := Config{Fast: true}
	if fastCfg.cps() != 120 {
		t.Errorf("fast ensemble size %d, want 120", fastCfg.cps())
	}
	if n := len(Config{Fast: true}.grid(0, 1, 100, 10)); n != 10 {
		t.Errorf("fast grid size %d, want 10", n)
	}
}

func TestDeterminism(t *testing.T) {
	a := MustRun("fig4", fast)
	b := MustRun("fig4", fast)
	for ti := range a {
		for si := range a[ti].Series {
			for i := range a[ti].Series[si].Y {
				if a[ti].Series[si].Y[i] != b[ti].Series[si].Y[i] {
					t.Fatalf("fig4 not deterministic at table %d series %d point %d", ti, si, i)
				}
			}
		}
	}
}
