package experiment

import (
	"fmt"

	"github.com/netecon-sim/publicoption/internal/alloc"
	"github.com/netecon-sim/publicoption/internal/core"
	"github.com/netecon-sim/publicoption/internal/econ"
	"github.com/netecon-sim/publicoption/internal/mm1"
	"github.com/netecon-sim/publicoption/internal/netsim"
	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/sweep"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

func init() {
	register(&Experiment{
		ID:    "ablation-alphafair",
		Title: "Allocation-mechanism ablation: Φ(ν) under max-min vs weighted α-fair vs per-CP max-min",
		Expect: "All mechanisms satisfy Axioms 1–4, so Φ is monotone under " +
			"each; the *level* differs because weighting shifts throughput " +
			"between heterogeneous CPs — the choice of neutral mechanism " +
			"matters even without pricing.",
		Run: runAblationAlphaFair,
	})
	register(&Experiment{
		ID:    "ablation-tcp",
		Title: "Assumption 2 validation: fluid AIMD rates vs analytic max-min",
		Expect: "Jain index near 1 and worst per-flow deviation within ~20% " +
			"of the water level across flow counts; the closed demand loop " +
			"lands within a few percent of the Theorem 1 equilibrium.",
		Run: runAblationTCP,
	})
	register(&Experiment{
		ID:    "ablation-mm1",
		Title: "Congestion-abstraction ablation: TCP/max-min model vs M/M/1 delay model (§V)",
		Expect: "The M/M/1 queue always leaves capacity headroom (utilization " +
			"< 1) while the max-min model is work-conserving; both produce " +
			"an interior revenue peak, but the M/M/1 revenue curve decays " +
			"smoothly where the max-min one has sharp affordability cliffs.",
		Run: runAblationMM1,
	})
	register(&Experiment{
		ID:    "ablation-nash",
		Title: "Solution-concept ablation: Nash (Def. 2) vs competitive (Def. 3) CP equilibria",
		Expect: "On small populations the two concepts coincide in premium " +
			"membership and surplus for almost every price — the paper's " +
			"justification for computing competitive equilibria only.",
		Run: runAblationNash,
	})
	register(&Experiment{
		ID:    "ablation-pubopt-capacity",
		Title: "Public Option capacity sweep (§VI): how much PO capacity disciplines a share-maximizing incumbent?",
		Expect: "Even a small Public Option (γ ≈ 0.1) disciplines a " +
			"share-maximizing incumbent: Φ is already near its ceiling at " +
			"tiny γ and stays roughly flat as the PO grows — capacity " +
			"sizing barely matters, the §VI claim. (At scarce capacity the " +
			"effect inverts slightly: differentiation helps consumers " +
			"there, the paper's exceptional case.)",
		Run: runAblationPubOptCapacity,
	})
}

func runAblationAlphaFair(cfg Config) []*sweep.Table {
	pop := traffic.Archetypes()
	nus := cfg.grid(50, 6000, 60, 20)
	mechs := []alloc.Allocator{
		alloc.MaxMin{},
		alloc.AlphaFair{Alpha: 1, Weights: alloc.WeightByThetaHat},
		alloc.AlphaFair{Alpha: 2, Weights: alloc.WeightByThetaHat},
		alloc.PerCPMaxMin{},
	}
	phiTbl := &sweep.Table{
		Title:  "Φ(ν) by allocation mechanism (archetype CPs)",
		XLabel: "nu", YLabel: "phi",
	}
	thetaTbl := &sweep.Table{
		Title:  "Netflix-type θ(ν) by allocation mechanism",
		XLabel: "nu", YLabel: "theta",
	}
	for _, mech := range mechs {
		phiS := sweep.Series{Name: mech.Name()}
		thS := sweep.Series{Name: mech.Name()}
		for _, nu := range nus {
			res := alloc.Solve(mech, nu, pop)
			phiS.Append(nu, econ.Phi(res))
			thS.Append(nu, res.Theta[1]) // netflix
		}
		phiTbl.Add(phiS)
		thetaTbl.Add(thS)
	}
	return []*sweep.Table{phiTbl, thetaTbl}
}

func runAblationTCP(cfg Config) []*sweep.Table {
	counts := []int{2, 5, 10, 20, 40}
	if cfg.Fast {
		counts = []int{2, 5, 10}
	}
	fairTbl := &sweep.Table{
		Title:  "AIMD vs analytic max-min: fairness across flow counts (capacity 100, equal RTT)",
		XLabel: "flows", YLabel: "metric",
	}
	jain := sweep.Series{Name: "jain"}
	maxErr := sweep.Series{Name: "max-rel-err"}
	util := sweep.Series{Name: "utilization"}
	for _, n := range counts {
		flows := make([]netsim.Flow, n)
		for i := range flows {
			flows[i] = netsim.Flow{Name: fmt.Sprintf("f%d", i), RTT: 0.05}
		}
		simCfg := netsim.Config{Capacity: 100}
		if cfg.Fast {
			simCfg.Warmup, simCfg.Measure = 3, 6
		}
		res, err := netsim.Run(simCfg, flows)
		if err != nil {
			panic(err)
		}
		rep := netsim.CompareMaxMin(res, flows, 100)
		jain.Append(float64(n), res.Jain)
		maxErr.Append(float64(n), rep.MaxRelErr)
		util.Append(float64(n), res.Utilization)
	}
	fairTbl.Add(jain)
	fairTbl.Add(maxErr)
	fairTbl.Add(util)

	// Closed demand loop vs Theorem 1 on the archetype population.
	loopTbl := &sweep.Table{
		Title:  "Demand/TCP closed loop vs analytic rate equilibrium (archetypes, ν=2000)",
		XLabel: "cp-index", YLabel: "theta",
	}
	dcfg := netsim.DemandConfig{
		Pop:      traffic.Archetypes(),
		M:        40,
		Capacity: 2000 * 40,
		Rounds:   10,
		Sim:      netsim.Config{Warmup: 5, Measure: 10},
	}
	if cfg.Fast {
		dcfg.Rounds = 5
		dcfg.Sim.Warmup, dcfg.Sim.Measure = 2, 4
	}
	res, err := netsim.SolveDemandEquilibrium(dcfg)
	if err != nil {
		panic(err)
	}
	analytic := sweep.Series{Name: "analytic"}
	simulated := sweep.Series{Name: "tcp-loop"}
	for i := range res.Theta {
		if !res.Compared[i] {
			continue
		}
		analytic.Append(float64(i), res.Analytic[i])
		simulated.Append(float64(i), res.Theta[i])
	}
	loopTbl.Add(analytic)
	loopTbl.Add(simulated)
	return []*sweep.Table{fairTbl, loopTbl}
}

func runAblationMM1(cfg Config) []*sweep.Table {
	pop := cfg.population(traffic.PhiCorrelated)
	sat := pop.TotalUnconstrainedPerCapita()
	nus := cfg.grid(0.02*sat, 1.2*sat, 40, 15)
	utilTbl := &sweep.Table{
		Title:  "Utilization vs ν: work-conserving max-min vs M/M/1 headroom",
		XLabel: "nu", YLabel: "utilization",
	}
	mm := sweep.Series{Name: "mm1"}
	tcp := sweep.Series{Name: "maxmin"}
	for _, nu := range nus {
		eq := mm1.Solve(nu, pop)
		mm.Append(nu, eq.TotalLoad()/nu)
		res := alloc.Solve(alloc.MaxMin{}, nu, pop)
		tcp.Append(nu, res.Utilization())
	}
	utilTbl.Add(tcp)
	utilTbl.Add(mm)

	nu := 0.2 * sat
	revTbl := &sweep.Table{
		Title:  fmt.Sprintf("Monopoly revenue curve Ψ(c) at ν=%.3g under both abstractions (κ=1)", nu),
		XLabel: "c", YLabel: "psi",
	}
	prices := cfg.grid(0, 1, 41, 11)
	mono := core.NewMonopoly(nil)
	psi, _ := mono.RevenueCurve(1, prices, nu, pop)
	s := sweep.Series{Name: "maxmin"}
	for i := range prices {
		s.Append(prices[i], psi[i])
	}
	revTbl.Add(s)
	sM := sweep.Series{Name: "mm1"}
	for _, c := range prices {
		out := mm1.SolveClasses(1, c, nu, pop, 0)
		sM.Append(c, out.Psi())
	}
	revTbl.Add(sM)
	return []*sweep.Table{utilTbl, revTbl}
}

func runAblationNash(cfg Config) []*sweep.Table {
	ecfg := traffic.PaperEnsemble(traffic.PhiCorrelated)
	ecfg.N = 12
	pop := ecfg.Generate(numeric.NewRNG(cfg.seed()))
	sat := pop.TotalUnconstrainedPerCapita()
	nu := 0.35 * sat
	prices := cfg.grid(0, 1, 21, 11)
	solver := core.NewSolver(nil)
	countTbl := &sweep.Table{
		Title:  "Premium membership count: Nash (Def. 2) vs competitive (Def. 3), N=12, κ=0.6",
		XLabel: "c", YLabel: "count",
	}
	phiTbl := &sweep.Table{
		Title:  "Consumer surplus Φ: Nash vs competitive, N=12, κ=0.6",
		XLabel: "c", YLabel: "phi",
	}
	nashCount := sweep.Series{Name: "nash"}
	compCount := sweep.Series{Name: "competitive"}
	nashPhi := sweep.Series{Name: "nash"}
	compPhi := sweep.Series{Name: "competitive"}
	for _, c := range prices {
		strat := core.Strategy{Kappa: 0.6, C: c}
		nash := solver.Nash(strat, nu, pop, 0)
		comp := solver.Competitive(strat, nu, pop)
		nashCount.Append(c, float64(nash.PremiumCount()))
		compCount.Append(c, float64(comp.PremiumCount()))
		nashPhi.Append(c, nash.Phi())
		compPhi.Append(c, comp.Phi())
	}
	countTbl.Add(nashCount)
	countTbl.Add(compCount)
	phiTbl.Add(nashPhi)
	phiTbl.Add(compPhi)
	return []*sweep.Table{countTbl, phiTbl}
}

func runAblationPubOptCapacity(cfg Config) []*sweep.Table {
	pop := cfg.population(traffic.PhiCorrelated)
	sat := pop.TotalUnconstrainedPerCapita()
	// Run where the monopoly misalignment bites (cf. the regimes
	// experiment): abundant enough that an unregulated incumbent would
	// under-utilize capacity.
	nuBar := 0.7 * sat
	gammas := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5}
	if cfg.Fast {
		gammas = []float64{0.1, 0.3, 0.5}
	}
	grid := core.StrategyGrid{
		Kappas: []float64{0, 0.5, 1},
		Cs:     numeric.Linspace(0, 1, 11),
	}
	tbl := &sweep.Table{
		Title:  "Public Option capacity sweep: incumbent best-responds for market share",
		XLabel: "gamma-po", YLabel: "value",
	}
	phiS := sweep.Series{Name: "phi-with-po"}
	phiMono := sweep.Series{Name: "phi-monopoly-optimal"}
	shareS := sweep.Series{Name: "po-share"}

	// Monopoly reference: the revenue-optimal strategy's Φ on the full
	// capacity (no Public Option).
	mono := core.NewMonopoly(nil)
	_, eqMono := mono.OptimalStrategy(1, nuBar, pop, 4, 10)
	for _, g := range gammas {
		mk := core.NewMarket(nil, pop, nuBar)
		mk.MigrationTol = 1e-6
		isps := []core.ISP{
			{Name: "incumbent", Gamma: 1 - g, Strategy: core.Strategy{Kappa: 1, C: 0.5}},
			{Name: "po", Gamma: g, Strategy: core.PublicOption},
		}
		_, out, _ := mk.BestResponse(isps, 0, grid)
		phiS.Append(g, out.Phi)
		shareS.Append(g, out.Shares[1])
		phiMono.Append(g, eqMono.Phi())
	}
	tbl.Add(phiS)
	tbl.Add(phiMono)
	tbl.Add(shareS)
	return []*sweep.Table{tbl}
}
