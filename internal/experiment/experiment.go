// Package experiment defines the reproduction of every figure in the
// paper's evaluation (Figures 2–5 and 7–12; Figures 1 and 6 are schematic
// diagrams) plus the ablation studies called out in DESIGN.md. Each
// experiment declares its workload and parameters and emits sweep tables —
// the same series the paper plots — renderable as ASCII charts or CSV.
//
// Experiments are deterministic: the same Config produces identical output.
// Config.Fast switches to reduced grids and smaller CP ensembles so the
// entire registry can run inside the test suite; the default configuration
// matches the paper (1000-CP ensembles, full grids) and is what the
// benchmark harness runs.
package experiment

import (
	"fmt"
	"sort"

	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/sweep"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// Config controls an experiment run.
type Config struct {
	// Seed for the CP ensemble draw. 0 uses the repository default
	// (traffic.DefaultSeed), which reproduces the published outputs.
	Seed uint64
	// CPs is the random-ensemble size. 0 means the paper's 1000 (or the
	// fast-mode default of 120 when Fast is set).
	CPs int
	// Fast selects reduced grids for use in tests. Shapes are preserved;
	// resolution is not.
	Fast bool
	// Workers bounds the parallelism across independent curves. 0 means
	// GOMAXPROCS.
	Workers int
}

func (c Config) seed() uint64 {
	if c.Seed == 0 {
		return traffic.DefaultSeed
	}
	return c.Seed
}

func (c Config) cps() int {
	if c.CPs > 0 {
		return c.CPs
	}
	if c.Fast {
		return 120
	}
	return 1000
}

// population draws the experiment ensemble under the given φ setting.
func (c Config) population(phi traffic.PhiSetting) traffic.Population {
	if c.seed() == traffic.DefaultSeed && c.cps() == 1000 {
		return traffic.PaperPopulation(phi)
	}
	cfg := traffic.PaperEnsemble(phi)
	cfg.N = c.cps()
	pop := cfg.Generate(numeric.NewRNG(c.seed()))
	if phi == traffic.PhiIndependent {
		// Match PaperPopulation's convention: same characteristics, φ
		// redrawn independently.
		phiRNG := numeric.NewRNG(c.seed() + 1)
		for i := range pop {
			pop[i].Phi = phiRNG.Uniform(0, phiRNG.Uniform(0, 10))
		}
	}
	return pop
}

// grid returns n evenly spaced points on [lo, hi], or nFast points in fast
// mode.
func (c Config) grid(lo, hi float64, n, nFast int) []float64 {
	if c.Fast {
		n = nFast
	}
	return numeric.Linspace(lo, hi, n)
}

// Experiment is one reproducible figure or ablation.
type Experiment struct {
	// ID is the registry key, e.g. "fig4" or "ablation-mm1".
	ID string
	// Title is the paper's caption (or the ablation's description).
	Title string
	// Expect describes the qualitative shape the paper reports, recorded so
	// EXPERIMENTS.md comparisons are self-contained.
	Expect string
	// Run executes the experiment and returns its tables.
	Run func(cfg Config) []*sweep.Table
}

var registry []*Experiment

func register(e *Experiment) {
	for _, old := range registry {
		if old.ID == e.ID {
			panic("experiment: duplicate id " + e.ID)
		}
	}
	registry = append(registry, e)
}

// All returns the registered experiments sorted by ID (figures first in
// numeric order, then ablations alphabetically).
func All() []*Experiment {
	out := append([]*Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return lessID(out[i].ID, out[j].ID) })
	return out
}

func lessID(a, b string) bool {
	fa, fb := figNum(a), figNum(b)
	switch {
	case fa >= 0 && fb >= 0:
		return fa < fb
	case fa >= 0:
		return true
	case fb >= 0:
		return false
	default:
		return a < b
	}
}

func figNum(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "fig%d", &n); err == nil {
		return n
	}
	return -1
}

// Get looks up an experiment by ID.
func Get(id string) (*Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return nil, false
}

// MustRun runs the experiment with the config, panicking on unknown IDs.
func MustRun(id string, cfg Config) []*sweep.Table {
	e, ok := Get(id)
	if !ok {
		panic("experiment: unknown id " + id)
	}
	return e.Run(cfg)
}
