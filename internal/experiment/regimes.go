package experiment

import (
	"github.com/netecon-sim/publicoption/internal/core"
	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/sweep"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// numericLinspace11 is the 11-point price grid shared by regime searches.
var numericLinspace11 = numeric.Linspace(0, 1, 11)

func init() {
	register(&Experiment{
		ID: "regimes",
		Title: "Headline comparison: consumer surplus under unregulated monopoly, " +
			"partial caps, network neutrality, and the Public Option",
		Expect: "The paper's central claim for monopolistic markets: " +
			"introducing a Public Option yields the highest consumer " +
			"surplus, network-neutral regulation comes second, and the " +
			"unregulated monopoly is worst; κ- and price-caps land in " +
			"between depending on tightness (§III/§IV-A/§VI, Theorem 5).",
		Run: runRegimes,
	})
}

func runRegimes(cfg Config) []*sweep.Table {
	pop := cfg.population(traffic.PhiCorrelated)
	scale := pop.TotalUnconstrainedPerCapita() / paperSaturation
	nus := []float64{50, 100, 150, 200}
	if cfg.Fast {
		nus = []float64{100, 200}
	}
	for i := range nus {
		nus[i] *= scale
	}
	// The incumbent's search grid against the Public Option: 3 capacity
	// splits × 11 prices keeps the full-size run in tens of seconds while
	// bracketing the best responses observed in Figure 7/8.
	rcfg := core.RegimeConfig{
		GridN: 30,
		POGrid: &core.StrategyGrid{
			Kappas: []float64{0, 0.5, 1},
			Cs:     numericLinspace11,
		},
	}
	if cfg.Fast {
		rcfg.GridN = 12
		rcfg.POGrid = &core.StrategyGrid{
			Kappas: []float64{0, 0.5, 1},
			Cs:     []float64{0, 0.2, 0.4, 0.6, 0.8, 1},
		}
	}
	solver := core.NewSolver(nil)
	regimes := []core.Regime{
		core.RegimeUnregulated, core.RegimeKappaCap, core.RegimePriceCap,
		core.RegimeNeutral, core.RegimePublicOption,
	}
	phiTbl := &sweep.Table{
		Title:  "Per-capita consumer surplus Φ by regulatory regime vs ν",
		XLabel: "nu", YLabel: "phi",
	}
	psiTbl := &sweep.Table{
		Title:  "Incumbent revenue Ψ by regulatory regime vs ν",
		XLabel: "nu", YLabel: "psi",
	}
	phiSeries := make(map[core.Regime]*sweep.Series)
	psiSeries := make(map[core.Regime]*sweep.Series)
	for _, r := range regimes {
		phiSeries[r] = &sweep.Series{Name: r.String()}
		psiSeries[r] = &sweep.Series{Name: r.String()}
	}
	for _, nu := range nus {
		for _, oc := range core.CompareRegimes(solver, nu, pop, rcfg) {
			phiSeries[oc.Regime].Append(nu, oc.Phi)
			psiSeries[oc.Regime].Append(nu, oc.Psi)
		}
	}
	for _, r := range regimes {
		phiTbl.Add(*phiSeries[r])
		psiTbl.Add(*psiSeries[r])
	}
	return []*sweep.Table{phiTbl, psiTbl}
}
