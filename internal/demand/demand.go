// Package demand implements the consumer demand functions of the Ma–Misra
// model (§II-A of the paper).
//
// A demand function d_i maps the throughput a content provider's users
// actually achieve to the fraction of its user base that keeps downloading.
// The paper's Assumption 1 requires d to be non-negative, continuous and
// non-decreasing on [0, θ̂_i] with d(θ̂_i) = 1.
//
// Every curve in this package is expressed over the normalized throughput
// ω = θ/θ̂ ∈ [0, 1] (the paper does the same when plotting Figure 2). This
// makes curves reusable across content providers with different
// unconstrained throughputs θ̂: the traffic package pairs a normalized curve
// with a θ̂ to obtain the dimensional demand d_i(θ_i) = Curve(θ_i/θ̂_i).
//
// The paper's evaluation uses exclusively the exponential-sensitivity family
// (Eq. 3); the other families here exist because the theory requires only
// Assumption 1, and the test suite exercises the axiomatic framework across
// all of them.
package demand

import (
	"fmt"
	"math"
)

// Curve is a normalized demand curve: At(ω) is the fraction of users that
// remain active when they achieve the fraction ω ∈ [0, 1] of their
// unconstrained throughput.
//
// Implementations must satisfy (the normalized restatement of) Assumption 1:
// At is non-negative, continuous and non-decreasing on [0, 1] with At(1) = 1.
// Validate checks these properties numerically.
type Curve interface {
	// At returns the demand level at normalized throughput omega. Callers
	// may pass values slightly outside [0,1] due to floating-point noise;
	// implementations clamp.
	At(omega float64) float64
	// Name identifies the family for diagnostics and rendered output.
	Name() string
}

// Exponential is the paper's demand family (Eq. 3):
//
//	d(ω) = exp(−β (1/ω − 1))
//
// β is the throughput sensitivity: large β models real-time content
// (Netflix, Skype) whose audience evaporates as soon as throughput degrades;
// small β models elastic content (web search) that tolerates slowdown.
// At ω = 0 the demand is 0 (taken as the continuous limit).
type Exponential struct {
	Beta float64 // sensitivity β > 0
}

// At evaluates Eq. 3 at normalized throughput omega.
func (e Exponential) At(omega float64) float64 {
	if omega <= 0 {
		return 0
	}
	if omega >= 1 {
		return 1
	}
	return math.Exp(-e.Beta * (1/omega - 1))
}

// Name implements Curve.
func (e Exponential) Name() string { return fmt.Sprintf("exp(β=%g)", e.Beta) }

// Constant is the fully throughput-insensitive demand d(ω) ≡ 1: every user
// keeps downloading no matter how congested the network is. It is the β → 0
// limit of Exponential and a useful degenerate case in tests.
type Constant struct{}

// At implements Curve.
func (Constant) At(omega float64) float64 {
	if omega < 0 {
		return 0 // d(0) may be anything in [0,1]; keep 0 below the domain
	}
	return 1
}

// Name implements Curve.
func (Constant) Name() string { return "constant" }

// Linear interpolates demand linearly from Floor at ω = 0 to 1 at ω = 1:
//
//	d(ω) = Floor + (1 − Floor)·ω
//
// Floor must lie in [0, 1].
type Linear struct {
	Floor float64
}

// At implements Curve.
func (l Linear) At(omega float64) float64 {
	switch {
	case omega <= 0:
		return l.Floor
	case omega >= 1:
		return 1
	}
	return l.Floor + (1-l.Floor)*omega
}

// Name implements Curve.
func (l Linear) Name() string { return fmt.Sprintf("linear(floor=%g)", l.Floor) }

// Power is the constant-elasticity family d(ω) = ω^Gamma with Gamma >= 0.
// Gamma = 0 degenerates to Constant; large Gamma concentrates all demand
// loss near ω = 1.
type Power struct {
	Gamma float64
}

// At implements Curve.
func (p Power) At(omega float64) float64 {
	switch {
	case omega <= 0:
		//pubopt:allow(floatcmp): γ=0 is the exact config sentinel that degenerates Power to the constant curve d≡1
		if p.Gamma == 0 {
			return 1
		}
		return 0
	case omega >= 1:
		return 1
	}
	return math.Pow(omega, p.Gamma)
}

// Name implements Curve.
func (p Power) Name() string { return fmt.Sprintf("power(γ=%g)", p.Gamma) }

// SmoothStep is a continuous approximation of threshold demand: users abandon
// the service almost entirely below the normalized threshold T and stay
// almost entirely above it, with logistic steepness K. It models strict
// real-time applications (the "performance cannot be tolerated" pattern of
// §II-D.1) while remaining continuous as Assumption 1 requires:
//
//	d(ω) = σ(K(ω−T)) / σ(K(1−T)),  σ(x) = 1/(1+e^−x)
type SmoothStep struct {
	T float64 // threshold in (0, 1)
	K float64 // steepness > 0
}

// At implements Curve.
func (s SmoothStep) At(omega float64) float64 {
	if omega >= 1 {
		return 1
	}
	if omega < 0 {
		omega = 0
	}
	sig := func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
	return sig(s.K*(omega-s.T)) / sig(s.K*(1-s.T))
}

// Name implements Curve.
func (s SmoothStep) Name() string { return fmt.Sprintf("smoothstep(T=%g,K=%g)", s.T, s.K) }

// Piecewise is a continuous piecewise-linear demand curve through the given
// knots. Knots must start at ω = 0, end at ω = 1 with demand 1, be strictly
// increasing in ω and non-decreasing in demand; NewPiecewise enforces this.
type Piecewise struct {
	omegas, levels []float64
}

// NewPiecewise constructs a piecewise-linear demand curve and validates the
// knot sequence against Assumption 1. The returned error describes the first
// violated requirement.
func NewPiecewise(omegas, levels []float64) (*Piecewise, error) {
	if len(omegas) != len(levels) || len(omegas) < 2 {
		return nil, fmt.Errorf("demand: need >= 2 knots with matching lengths, got %d/%d", len(omegas), len(levels))
	}
	//pubopt:allow(floatcmp): Assumption 1 pins the first knot at exactly ω=0; validation rejects anything else
	if omegas[0] != 0 {
		return nil, fmt.Errorf("demand: first knot must be at ω=0, got %g", omegas[0])
	}
	last := len(omegas) - 1
	//pubopt:allow(floatcmp): Assumption 1 pins the last knot at exactly ω=1
	if omegas[last] != 1 {
		return nil, fmt.Errorf("demand: last knot must be at ω=1, got %g", omegas[last])
	}
	//pubopt:allow(floatcmp): d(1)=1 is an exact normalization requirement, not a numeric coincidence
	if levels[last] != 1 {
		return nil, fmt.Errorf("demand: d(1) must be 1, got %g", levels[last])
	}
	for i := 1; i < len(omegas); i++ {
		if omegas[i] <= omegas[i-1] {
			return nil, fmt.Errorf("demand: knot abscissae must be strictly increasing at index %d", i)
		}
		if levels[i] < levels[i-1] {
			return nil, fmt.Errorf("demand: demand levels must be non-decreasing at index %d", i)
		}
	}
	for i, l := range levels {
		if l < 0 || l > 1 {
			return nil, fmt.Errorf("demand: level %g at knot %d outside [0,1]", l, i)
		}
	}
	return &Piecewise{
		omegas: append([]float64(nil), omegas...),
		levels: append([]float64(nil), levels...),
	}, nil
}

// At implements Curve.
func (p *Piecewise) At(omega float64) float64 {
	if omega <= 0 {
		return p.levels[0]
	}
	if omega >= 1 {
		return 1
	}
	// Linear scan: knot counts are tiny (a handful) so binary search would
	// be slower in practice.
	for i := 1; i < len(p.omegas); i++ {
		if omega <= p.omegas[i] {
			t := (omega - p.omegas[i-1]) / (p.omegas[i] - p.omegas[i-1])
			return p.levels[i-1] + t*(p.levels[i]-p.levels[i-1])
		}
	}
	return 1
}

// Name implements Curve.
func (p *Piecewise) Name() string { return fmt.Sprintf("piecewise(%d knots)", len(p.omegas)) }
