package demand

import (
	"fmt"
	"math"
)

// ValidateSamples is the default number of grid points used by Validate.
const ValidateSamples = 2048

// Validate checks a curve numerically against Assumption 1 of the paper on a
// grid of n points (n <= 1 uses ValidateSamples): the curve must be
// non-negative, bounded by 1, non-decreasing and approximately continuous on
// [0, 1], and must satisfy d(1) = 1. Continuity is checked as a bounded
// per-step jump: a genuinely discontinuous curve shows an O(1) jump between
// adjacent grid points regardless of n, while any Lipschitz curve's steps
// vanish as n grows; the threshold accepts steps up to 50/n.
//
// Validate returns nil if all checks pass, or an error naming the first
// violated property.
func Validate(c Curve, n int) error {
	if n <= 1 {
		n = ValidateSamples
	}
	prev := c.At(0)
	if prev < 0 || prev > 1 {
		return fmt.Errorf("demand %s: d(0) = %g outside [0,1]", c.Name(), prev)
	}
	maxStep := 50.0 / float64(n)
	if maxStep > 0.5 {
		maxStep = 0.5
	}
	for i := 1; i <= n; i++ {
		omega := float64(i) / float64(n)
		v := c.At(omega)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("demand %s: d(%g) is not finite", c.Name(), omega)
		}
		if v < 0 || v > 1+1e-12 {
			return fmt.Errorf("demand %s: d(%g) = %g outside [0,1]", c.Name(), omega, v)
		}
		if v < prev-1e-12 {
			return fmt.Errorf("demand %s: decreasing at ω=%g (%g -> %g)", c.Name(), omega, prev, v)
		}
		if v-prev > maxStep {
			return fmt.Errorf("demand %s: jump of %g at ω=%g suggests discontinuity", c.Name(), v-prev, omega)
		}
		prev = v
	}
	if d1 := c.At(1); math.Abs(d1-1) > 1e-9 {
		return fmt.Errorf("demand %s: d(1) = %g, want 1", c.Name(), d1)
	}
	return nil
}
