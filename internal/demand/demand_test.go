package demand

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/netecon-sim/publicoption/internal/numeric"
)

// allCurves returns one representative of every family, matched to the
// parameter ranges the experiments use.
func allCurves() []Curve {
	pw, err := NewPiecewise([]float64{0, 0.5, 1}, []float64{0, 0.2, 1})
	if err != nil {
		panic(err)
	}
	return []Curve{
		Exponential{Beta: 0.1},
		Exponential{Beta: 1},
		Exponential{Beta: 5},
		Exponential{Beta: 10},
		Constant{},
		Linear{Floor: 0},
		Linear{Floor: 0.3},
		Power{Gamma: 0.5},
		Power{Gamma: 3},
		SmoothStep{T: 0.7, K: 30},
		pw,
	}
}

func TestAllFamiliesSatisfyAssumption1(t *testing.T) {
	for _, c := range allCurves() {
		if err := Validate(c, 0); err != nil {
			t.Errorf("family %s violates Assumption 1: %v", c.Name(), err)
		}
	}
}

func TestExponentialMatchesPaperFormula(t *testing.T) {
	// Spot-check Eq. 3 against hand-computed values.
	e := Exponential{Beta: 5}
	// ω = 0.9: d = exp(-5(1/0.9 - 1)) = exp(-5/9) ≈ 0.5738
	if got, want := e.At(0.9), math.Exp(-5.0/9.0); math.Abs(got-want) > 1e-12 {
		t.Errorf("At(0.9) = %v, want %v", got, want)
	}
	// The paper's §II-D.1 observation: β=5 halves demand on ~10% drop.
	if d := e.At(0.9); d < 0.5 || d > 0.65 {
		t.Errorf("β=5 at 10%% throughput drop gives %v; paper says demand roughly halves", d)
	}
}

func TestExponentialBoundaries(t *testing.T) {
	e := Exponential{Beta: 2}
	if e.At(0) != 0 {
		t.Error("d(0) should be 0 (continuous limit)")
	}
	if e.At(1) != 1 {
		t.Error("d(1) should be 1")
	}
	if e.At(-0.5) != 0 || e.At(1.5) != 1 {
		t.Error("out-of-domain values should clamp")
	}
}

func TestExponentialSensitivityOrdering(t *testing.T) {
	// Higher β must give (weakly) lower demand at every interior ω —
	// that is what "more throughput-sensitive" means.
	betas := []float64{0.1, 0.5, 1, 2, 5, 10}
	for _, omega := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		prev := math.Inf(1)
		for _, b := range betas {
			d := Exponential{Beta: b}.At(omega)
			if d > prev+1e-15 {
				t.Fatalf("demand not decreasing in β at ω=%v", omega)
			}
			prev = d
		}
	}
}

func TestConstantCurve(t *testing.T) {
	c := Constant{}
	for _, omega := range []float64{0, 0.5, 1} {
		if c.At(omega) != 1 {
			t.Fatalf("Constant.At(%v) != 1", omega)
		}
	}
}

func TestLinearCurve(t *testing.T) {
	l := Linear{Floor: 0.4}
	if got := l.At(0); got != 0.4 {
		t.Errorf("At(0)=%v, want floor", got)
	}
	if got := l.At(0.5); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("At(0.5)=%v, want 0.7", got)
	}
	if got := l.At(1); got != 1 {
		t.Errorf("At(1)=%v, want 1", got)
	}
}

func TestPowerCurve(t *testing.T) {
	p := Power{Gamma: 2}
	if got := p.At(0.5); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("At(0.5)=%v, want 0.25", got)
	}
	z := Power{Gamma: 0}
	if z.At(0) != 1 || z.At(0.5) != 1 {
		t.Error("γ=0 should degenerate to constant demand")
	}
}

func TestSmoothStepBehavesLikeThreshold(t *testing.T) {
	s := SmoothStep{T: 0.6, K: 40}
	if d := s.At(0.2); d > 0.01 {
		t.Errorf("well below threshold, demand = %v, want ~0", d)
	}
	if d := s.At(0.95); d < 0.95 {
		t.Errorf("well above threshold, demand = %v, want ~1", d)
	}
	if s.At(1) != 1 {
		t.Error("d(1) must be exactly 1")
	}
}

func TestPiecewiseInterpolation(t *testing.T) {
	p, err := NewPiecewise([]float64{0, 0.25, 1}, []float64{0.1, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.At(0.125); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("At(0.125)=%v, want 0.3", got)
	}
	if got := p.At(0.625); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("At(0.625)=%v, want 0.75", got)
	}
}

func TestNewPiecewiseRejectsBadKnots(t *testing.T) {
	cases := []struct {
		name           string
		omegas, levels []float64
	}{
		{"too-few", []float64{0}, []float64{1}},
		{"mismatch", []float64{0, 1}, []float64{1}},
		{"not-starting-at-0", []float64{0.1, 1}, []float64{0, 1}},
		{"not-ending-at-1", []float64{0, 0.9}, []float64{0, 1}},
		{"d1-not-1", []float64{0, 1}, []float64{0, 0.9}},
		{"decreasing-levels", []float64{0, 0.5, 1}, []float64{0.5, 0.2, 1}},
		{"non-increasing-omegas", []float64{0, 0.5, 0.5, 1}, []float64{0, 0.1, 0.2, 1}},
		{"level-out-of-range", []float64{0, 0.5, 1}, []float64{-0.1, 0.5, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewPiecewise(tc.omegas, tc.levels); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	if err := Validate(badDecreasing{}, 0); err == nil {
		t.Error("Validate accepted a decreasing curve")
	}
	if err := Validate(badEndpoint{}, 0); err == nil {
		t.Error("Validate accepted d(1) != 1")
	}
	if err := Validate(badJump{}, 0); err == nil {
		t.Error("Validate accepted a discontinuous curve")
	}
	if err := Validate(badRange{}, 0); err == nil {
		t.Error("Validate accepted d > 1")
	}
}

type badDecreasing struct{}

func (badDecreasing) At(omega float64) float64 {
	if omega >= 1 {
		return 1
	}
	return 0.8 - 0.5*omega // decreasing interior
}
func (badDecreasing) Name() string { return "bad-decreasing" }

type badEndpoint struct{}

func (badEndpoint) At(omega float64) float64 { return 0.9 * omega }
func (badEndpoint) Name() string             { return "bad-endpoint" }

type badJump struct{}

func (badJump) At(omega float64) float64 {
	if omega < 0.5 {
		return 0
	}
	return 1
}
func (badJump) Name() string { return "bad-jump" }

type badRange struct{}

func (badRange) At(omega float64) float64 {
	if omega >= 1 {
		return 1
	}
	return 1.5 * omega
}
func (badRange) Name() string { return "bad-range" }

// Property: every family is monotone non-decreasing between random pairs.
func TestMonotonePropertyQuick(t *testing.T) {
	r := numeric.NewRNG(101)
	curves := allCurves()
	f := func() bool {
		c := curves[r.Intn(len(curves))]
		a, b := r.Float64(), r.Float64()
		if a > b {
			a, b = b, a
		}
		return c.At(a) <= c.At(b)+1e-12
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: all families stay within [0,1] for arbitrary (even out-of-domain)
// inputs.
func TestRangePropertyQuick(t *testing.T) {
	r := numeric.NewRNG(103)
	curves := allCurves()
	f := func() bool {
		c := curves[r.Intn(len(curves))]
		omega := r.Uniform(-2, 3)
		v := c.At(omega)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
