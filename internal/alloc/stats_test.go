package alloc

import (
	"math"
	"math/rand"
	"testing"
)

// TestWorkspaceStats pins the solver-telemetry contract: Solves counts every
// Solve call, Constrained the congested subset, Evals mirrors Evals(), the
// first constrained solve brackets cold, subsequent sweep solves bracket
// warm, and the recorded residual bounds the true |aggregate−ν| error.
func TestWorkspaceStats(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pop := randomPopulation(rng, 40)
	total := pop.TotalUnconstrainedPerCapita()
	w := NewWorkspace(MaxMin{})

	if !w.Stats().Zero() {
		t.Fatalf("fresh workspace stats %+v, want zero", w.Stats())
	}

	// Uncongested solve: counted, not constrained, no bracketing.
	w.Solve(2*total, pop)
	st := w.Stats()
	if st.Solves != 1 || st.Constrained != 0 || st.WarmBrackets+st.ColdBrackets != 0 {
		t.Fatalf("after uncongested solve: %+v", st)
	}

	// First constrained solve has no usable warm level for the constrained
	// range (warm level sits at hi): still counts a bracket.
	w.Reset()
	w.Solve(total/3, pop)
	st = w.Stats()
	if st.Solves != 2 || st.Constrained != 1 {
		t.Fatalf("after first constrained solve: %+v", st)
	}
	if st.ColdBrackets != 1 || st.WarmBrackets != 0 {
		t.Fatalf("first constrained solve should bracket cold: %+v", st)
	}
	if st.Evals == 0 || st.Evals != uint64(w.Evals()) {
		t.Fatalf("Evals mismatch: stats %d, Evals() %d", st.Evals, w.Evals())
	}

	// A sweep of nearby loads reuses the warm bracket every time.
	prev := st
	for k := 0; k < 10; k++ {
		nu := total * (1.0/3 + 0.01*float64(k+1))
		res := w.Solve(nu, pop)
		d := w.Stats().Since(prev)
		prev = w.Stats()
		if d.WarmBrackets != 1 || d.ColdBrackets != 0 {
			t.Fatalf("sweep solve %d bracketed cold: delta %+v", k, d)
		}
		// The recorded residual bounds the achieved work-conservation error.
		if agg := res.Aggregate(); math.Abs(agg-nu) > d.Residual+1e-9*total {
			t.Fatalf("sweep solve %d: |aggregate-ν| = %g exceeds recorded residual %g",
				k, math.Abs(agg-nu), d.Residual)
		}
	}

	// Reset drops the warm level, so the next solve brackets cold again.
	w.Reset()
	before := w.Stats()
	w.Solve(total/2, pop)
	if d := w.Stats().Since(before); d.ColdBrackets != 1 || d.WarmBrackets != 0 {
		t.Fatalf("post-Reset solve delta %+v, want one cold bracket", d)
	}
}

// TestWorkspaceStatsEmptyAndZeroNu covers the degenerate paths: an empty
// population and ν=0 count as solves without bracketing work.
func TestWorkspaceStatsEmptyAndZeroNu(t *testing.T) {
	w := NewWorkspace(nil)
	w.Solve(1, nil)
	if st := w.Stats(); st.Solves != 1 || st.Evals != 0 {
		t.Fatalf("empty-population stats %+v", st)
	}
	rng := rand.New(rand.NewSource(5))
	pop := randomPopulation(rng, 8)
	w.Solve(0, pop)
	st := w.Stats()
	if st.Solves != 2 || st.Constrained != 1 || st.Residual != 0 {
		t.Fatalf("ν=0 stats %+v", st)
	}
}
