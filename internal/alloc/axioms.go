package alloc

import (
	"fmt"
	"math"

	"github.com/netecon-sim/publicoption/internal/traffic"
)

// AxiomReport carries the outcome of checking one of the paper's axioms for
// a mechanism on a concrete workload.
type AxiomReport struct {
	Axiom  int // 1..4, the paper's numbering
	OK     bool
	Detail string // human-readable description of the first violation
}

func (r AxiomReport) String() string {
	status := "ok"
	if !r.OK {
		status = "VIOLATED: " + r.Detail
	}
	return fmt.Sprintf("axiom %d: %s", r.Axiom, status)
}

// CheckAxioms verifies a mechanism against Axioms 1–4 of the paper on the
// given population across the per-capita capacity grid nuGrid (which should
// be sorted ascending; the monotonicity check relies on it). The tolerance
// tol absorbs solver error; DefaultAxiomTol is suitable for workloads whose
// rates are O(1)–O(1e4).
//
// The checks are necessarily numerical — the axioms quantify over all
// capacities — but they are exactly the properties the equilibrium theory
// consumes, evaluated on the grid the experiments use.
func CheckAxioms(a Allocator, pop traffic.Population, nuGrid []float64, tol float64) []AxiomReport {
	if tol <= 0 {
		tol = DefaultAxiomTol
	}
	reports := make([]AxiomReport, 0, 4)
	total := pop.TotalUnconstrainedPerCapita()

	// Axiom 1: θ_i ≤ θ̂_i everywhere.
	ax1 := AxiomReport{Axiom: 1, OK: true}
	for _, nu := range nuGrid {
		res := Solve(a, nu, pop)
		for i := range pop {
			if res.Theta[i] > pop[i].ThetaHat*(1+tol) {
				ax1.OK = false
				ax1.Detail = fmt.Sprintf("θ_%d=%g exceeds θ̂=%g at ν=%g", i, res.Theta[i], pop[i].ThetaHat, nu)
				break
			}
			if res.Theta[i] < 0 {
				ax1.OK = false
				ax1.Detail = fmt.Sprintf("θ_%d=%g negative at ν=%g", i, res.Theta[i], nu)
				break
			}
		}
		if !ax1.OK {
			break
		}
	}
	reports = append(reports, ax1)

	// Axiom 2: work conservation, λ_N = min(ν, Σ λ̂).
	ax2 := AxiomReport{Axiom: 2, OK: true}
	for _, nu := range nuGrid {
		res := Solve(a, nu, pop)
		want := math.Min(nu, total)
		scale := math.Max(want, 1)
		if got := res.Aggregate(); math.Abs(got-want) > tol*scale {
			ax2.OK = false
			ax2.Detail = fmt.Sprintf("aggregate=%g, want min(ν,Σλ̂)=%g at ν=%g", got, want, nu)
			break
		}
	}
	reports = append(reports, ax2)

	// Axiom 3: monotonicity, θ_i non-decreasing in capacity.
	ax3 := AxiomReport{Axiom: 3, OK: true}
	prev := make([]float64, len(pop))
	for k, nu := range nuGrid {
		res := Solve(a, nu, pop)
		if k > 0 {
			for i := range pop {
				slack := tol * math.Max(pop[i].ThetaHat, 1)
				if res.Theta[i] < prev[i]-slack {
					ax3.OK = false
					ax3.Detail = fmt.Sprintf("θ_%d dropped from %g to %g between ν=%g and ν=%g", i, prev[i], res.Theta[i], nuGrid[k-1], nu)
					break
				}
			}
		}
		if !ax3.OK {
			break
		}
		copy(prev, res.Theta)
	}
	reports = append(reports, ax3)

	// Axiom 4: independence of scale — solving (ξM, ξµ) matches (M, µ).
	ax4 := AxiomReport{Axiom: 4, OK: true}
	for _, nu := range nuGrid {
		base := SolveSystem(a, 1000, nu*1000, pop)
		for _, xi := range []float64{0.25, 3, 17.5} {
			scaled := SolveSystem(a, 1000*xi, nu*1000*xi, pop)
			for i := range pop {
				slack := tol * math.Max(pop[i].ThetaHat, 1)
				if math.Abs(base.Theta[i]-scaled.Theta[i]) > slack {
					ax4.OK = false
					ax4.Detail = fmt.Sprintf("θ_%d differs between scales (%g vs %g) at ν=%g, ξ=%g", i, base.Theta[i], scaled.Theta[i], nu, xi)
					break
				}
			}
			if !ax4.OK {
				break
			}
		}
		if !ax4.OK {
			break
		}
	}
	reports = append(reports, ax4)
	return reports
}

// DefaultAxiomTol is the default numerical slack for CheckAxioms.
const DefaultAxiomTol = 1e-6

// AxiomsOK reports whether all axioms hold, with the first violation's
// description.
func AxiomsOK(reports []AxiomReport) (bool, string) {
	for _, r := range reports {
		if !r.OK {
			return false, r.String()
		}
	}
	return true, ""
}
