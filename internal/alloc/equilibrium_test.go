package alloc

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/netecon-sim/publicoption/internal/demand"
	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

func smallEnsemble(seed uint64, n int) traffic.Population {
	cfg := traffic.PaperEnsemble(traffic.PhiCorrelated)
	cfg.N = n
	return cfg.Generate(numeric.NewRNG(seed))
}

func TestSolveUncongested(t *testing.T) {
	pop := traffic.Archetypes()
	total := pop.TotalUnconstrainedPerCapita() // 5500
	res := Solve(MaxMin{}, total+100, pop)
	if res.Constrained {
		t.Fatal("system should be unconstrained")
	}
	for i := range pop {
		if res.Theta[i] != pop[i].ThetaHat {
			t.Errorf("θ_%d = %v, want θ̂ = %v", i, res.Theta[i], pop[i].ThetaHat)
		}
		if d := res.Demand(i); d != 1 {
			t.Errorf("demand_%d = %v, want 1", i, d)
		}
	}
	if agg := res.Aggregate(); math.Abs(agg-total) > 1e-9 {
		t.Errorf("aggregate = %v, want %v", agg, total)
	}
}

func TestSolveCongestedWorkConservation(t *testing.T) {
	pop := traffic.Archetypes()
	for _, nu := range []float64{10, 100, 500, 1000, 2500, 5000} {
		res := Solve(MaxMin{}, nu, pop)
		if !res.Constrained {
			t.Fatalf("ν=%v should be constrained", nu)
		}
		if agg := res.Aggregate(); math.Abs(agg-nu) > 1e-6*nu {
			t.Errorf("ν=%v: aggregate = %v, want full utilization", nu, agg)
		}
	}
}

func TestSolveZeroCapacity(t *testing.T) {
	pop := traffic.Archetypes()
	res := Solve(MaxMin{}, 0, pop)
	for i := range pop {
		if res.Theta[i] != 0 {
			t.Errorf("θ_%d = %v at ν=0, want 0", i, res.Theta[i])
		}
	}
	if res.Aggregate() != 0 {
		t.Error("aggregate should be 0 at ν=0")
	}
	if res.Utilization() != 1 {
		t.Error("utilization convention at ν=0 should be 1")
	}
}

func TestSolveEmptyPopulation(t *testing.T) {
	res := Solve(MaxMin{}, 100, nil)
	if len(res.Theta) != 0 || res.Constrained {
		t.Fatal("empty population should be trivially unconstrained")
	}
}

func TestSolvePanicsOnNegativeNu(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Solve(MaxMin{}, -1, traffic.Archetypes())
}

func TestSolveSystemMatchesPerCapita(t *testing.T) {
	pop := traffic.Archetypes()
	perCapita := Solve(MaxMin{}, 2000, pop)
	abs := SolveSystem(MaxMin{}, 5000, 2000*5000, pop)
	for i := range pop {
		if math.Abs(perCapita.Theta[i]-abs.Theta[i]) > 1e-9 {
			t.Errorf("θ_%d differs: %v vs %v", i, perCapita.Theta[i], abs.Theta[i])
		}
	}
}

// Theorem 1: the equilibrium is unique. We verify that the equilibrium level
// reached from different bisection sub-intervals containing the root gives
// the same θ profile, and that re-solving is deterministic.
func TestTheorem1Uniqueness(t *testing.T) {
	pop := smallEnsemble(3, 100)
	for _, nu := range []float64{1, 5, 10, 20} {
		a := Solve(MaxMin{}, nu, pop)
		b := Solve(MaxMin{}, nu, pop)
		for i := range pop {
			if a.Theta[i] != b.Theta[i] {
				t.Fatalf("non-deterministic equilibrium at ν=%v", nu)
			}
		}
		// Aggregate pins down the water level: any profile satisfying the
		// equilibrium conditions must have this aggregate (Axiom 2), and the
		// θ profile is a deterministic function of the level.
		if math.Abs(a.Aggregate()-math.Min(nu, pop.TotalUnconstrainedPerCapita())) > 1e-6*math.Max(nu, 1) {
			t.Fatalf("aggregate violates Axiom 2 at ν=%v", nu)
		}
	}
}

// Lemma 1: θ_i(ν) is non-decreasing and continuous in ν.
func TestLemma1MonotoneContinuousTheta(t *testing.T) {
	pop := traffic.Archetypes()
	grid := numeric.Linspace(0, 6000, 601)
	curves := ThetaCurve(MaxMin{}, grid, pop)
	for i, curve := range curves {
		if !numeric.IsMonotoneNonDecreasing(curve, 1e-6*pop[i].ThetaHat) {
			t.Errorf("θ_%d(ν) not monotone", i)
		}
	}
	// Continuity: a steep-but-continuous curve's largest grid jump shrinks
	// to zero as the grid is refined around it; a step discontinuity's jump
	// stays O(1). Locate the worst jump per CP and bisect the interval ten
	// times.
	for i := range pop {
		worst, at := 0.0, 0
		for j := 1; j < len(curves[i]); j++ {
			if d := curves[i][j] - curves[i][j-1]; d > worst {
				worst, at = d, j
			}
		}
		if worst == 0 {
			continue
		}
		lo, hi := grid[at-1], grid[at]
		thetaAt := func(nu float64) float64 { return Solve(MaxMin{}, nu, pop).Theta[i] }
		jump := worst
		for k := 0; k < 10; k++ {
			mid := (lo + hi) / 2
			l, m, h := thetaAt(lo), thetaAt(mid), thetaAt(hi)
			if m-l >= h-m {
				hi = mid
				jump = m - l
			} else {
				lo = mid
				jump = h - m
			}
		}
		// A step discontinuity keeps jump ≈ worst under refinement. A
		// continuous curve decays — though possibly slowly: near ν = 0 the
		// exponential demand family gives θ(ν) ~ c/ln(1/ν), whose grid jump
		// shrinks only logarithmically. 60% after ten halvings cleanly
		// separates the two.
		if jump > 0.6*worst+1e-9 {
			t.Errorf("θ_%d(ν): jump %v near ν=%v does not vanish under refinement (still %v)", i, worst, grid[at], jump)
		}
	}
}

// The Figure 3 shape: as ν grows, Google-type demand saturates first, then
// Skype-type, and Netflix-type last (§II-D).
func TestFig3DemandOrdering(t *testing.T) {
	pop := traffic.Archetypes() // google, netflix, skype
	reach := func(idx int) float64 {
		for _, nu := range numeric.Linspace(1, 6000, 2400) {
			res := Solve(MaxMin{}, nu, pop)
			if res.Demand(idx) >= 0.95 {
				return nu
			}
		}
		return math.Inf(1)
	}
	google, netflix, skype := reach(0), reach(1), reach(2)
	if !(google < skype && skype < netflix) {
		t.Fatalf("demand saturation order: google=%v skype=%v netflix=%v; want google < skype < netflix",
			google, skype, netflix)
	}
}

func TestMaxMinWaterLevelStructure(t *testing.T) {
	pop := traffic.Archetypes()
	res := Solve(MaxMin{}, 2000, pop)
	// Under per-user max-min every unconstrained-at-cap CP gets exactly the
	// water level; others get their cap.
	for i := range pop {
		want := math.Min(res.Level, pop[i].ThetaHat)
		if math.Abs(res.Theta[i]-want) > 1e-9 {
			t.Errorf("θ_%d = %v, want min(level, θ̂) = %v", i, res.Theta[i], want)
		}
	}
}

func TestAlphaFairUnitWeightsEqualsMaxMin(t *testing.T) {
	pop := smallEnsemble(9, 50)
	for _, alpha := range []float64{0.5, 1, 2, 8} {
		af := AlphaFair{Alpha: alpha}
		for _, nu := range []float64{1, 5, 15} {
			a := Solve(af, nu, pop)
			b := Solve(MaxMin{}, nu, pop)
			for i := range pop {
				if math.Abs(a.Theta[i]-b.Theta[i]) > 1e-8 {
					t.Fatalf("α=%v ν=%v: unit-weight α-fair deviates from max-min at CP %d: %v vs %v",
						alpha, nu, i, a.Theta[i], b.Theta[i])
				}
			}
		}
	}
}

func TestAlphaFairWeightsShiftAllocation(t *testing.T) {
	pop := traffic.Archetypes()
	weighted := AlphaFair{Alpha: 1, Weights: WeightByThetaHat}
	res := Solve(weighted, 2000, pop)
	base := Solve(MaxMin{}, 2000, pop)
	// Netflix (largest θ̂) must do strictly better under θ̂-weighted
	// proportional fairness than under max-min.
	if res.Theta[1] <= base.Theta[1] {
		t.Fatalf("weighting by θ̂ should favor Netflix: %v vs %v", res.Theta[1], base.Theta[1])
	}
	// And weights must not break work conservation.
	if math.Abs(res.Aggregate()-2000) > 1e-6*2000 {
		t.Fatalf("aggregate = %v, want 2000", res.Aggregate())
	}
}

func TestAlphaFairLargeAlphaApproachesMaxMin(t *testing.T) {
	pop := traffic.Archetypes()
	// Even with non-unit weights, α → ∞ kills the weight exponent.
	af := AlphaFair{Alpha: 200, Weights: WeightByThetaHat}
	a := Solve(af, 2000, pop)
	b := Solve(MaxMin{}, 2000, pop)
	for i := range pop {
		if math.Abs(a.Theta[i]-b.Theta[i]) > 0.05*pop[i].ThetaHat {
			t.Errorf("α=200: θ_%d = %v, max-min gives %v", i, a.Theta[i], b.Theta[i])
		}
	}
}

func TestAlphaFairPanicsOnBadParams(t *testing.T) {
	pop := traffic.Archetypes()
	for _, tc := range []struct {
		name string
		a    AlphaFair
	}{
		{"zero-alpha", AlphaFair{Alpha: 0}},
		{"negative-weight", AlphaFair{Alpha: 1, Weights: func(*traffic.CP) float64 { return -1 }}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			Solve(tc.a, 100, pop)
		})
	}
}

func TestPerCPMaxMinEqualizesAggregates(t *testing.T) {
	pop := traffic.Archetypes()
	res := Solve(PerCPMaxMin{}, 2000, pop)
	// Under per-CP max-min, congested CPs' per-capita aggregates equal the
	// level; others are capped below it.
	for i := range pop {
		y := res.PerCapitaRate(i)
		cap := pop[i].UnconstrainedPerCapitaRate()
		want := math.Min(res.Level, cap)
		if math.Abs(y-want) > 1e-5*math.Max(want, 1) {
			t.Errorf("CP %d aggregate %v, want min(level=%v, cap=%v)", i, y, res.Level, cap)
		}
	}
	if math.Abs(res.Aggregate()-2000) > 1e-5*2000 {
		t.Errorf("aggregate = %v, want 2000", res.Aggregate())
	}
}

func TestPerCPDiffersFromPerUserMaxMin(t *testing.T) {
	pop := traffic.Archetypes()
	perCP := Solve(PerCPMaxMin{}, 2000, pop)
	perUser := Solve(MaxMin{}, 2000, pop)
	// Netflix has small α and large θ̂: per-CP fairness must grant its users
	// strictly more per-user throughput than per-user max-min does.
	if perCP.Theta[1] <= perUser.Theta[1]*1.05 {
		t.Fatalf("expected per-CP max-min to favor Netflix users: %v vs %v", perCP.Theta[1], perUser.Theta[1])
	}
}

// Property-based: for random populations and random capacities, the
// equilibrium satisfies Axioms 1 and 2 under every mechanism.
func TestEquilibriumFeasibilityQuick(t *testing.T) {
	rng := numeric.NewRNG(77)
	mechanisms := []Allocator{MaxMin{}, AlphaFair{Alpha: 1}, AlphaFair{Alpha: 2, Weights: WeightByThetaHat}, PerCPMaxMin{}}
	f := func() bool {
		n := 1 + rng.Intn(30)
		pop := smallEnsemble(rng.Uint64(), n)
		total := pop.TotalUnconstrainedPerCapita()
		nu := rng.Uniform(0, 1.5*total)
		a := mechanisms[rng.Intn(len(mechanisms))]
		res := Solve(a, nu, pop)
		for i := range pop {
			if res.Theta[i] < 0 || res.Theta[i] > pop[i].ThetaHat*(1+1e-9) {
				return false
			}
		}
		want := math.Min(nu, total)
		return math.Abs(res.Aggregate()-want) <= 1e-6*math.Max(want, 1)
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property-based: Lemma 1 monotonicity in ν for random populations.
func TestLemma1Quick(t *testing.T) {
	rng := numeric.NewRNG(79)
	f := func() bool {
		pop := smallEnsemble(rng.Uint64(), 1+rng.Intn(20))
		nu1 := rng.Uniform(0, pop.TotalUnconstrainedPerCapita())
		nu2 := rng.Uniform(0, pop.TotalUnconstrainedPerCapita())
		if nu1 > nu2 {
			nu1, nu2 = nu2, nu1
		}
		a := Solve(MaxMin{}, nu1, pop)
		b := Solve(MaxMin{}, nu2, pop)
		for i := range pop {
			if a.Theta[i] > b.Theta[i]+1e-8*math.Max(pop[i].ThetaHat, 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Mixed demand families: the solver only needs Assumption 1, so equilibria
// must exist and be feasible for every family in the demand package.
func TestSolveAcrossDemandFamilies(t *testing.T) {
	pw, err := demand.NewPiecewise([]float64{0, 0.6, 1}, []float64{0, 0.3, 1})
	if err != nil {
		t.Fatal(err)
	}
	pop := traffic.Population{
		{Name: "exp", Alpha: 0.8, ThetaHat: 4, V: 0.5, Phi: 1, Curve: demand.Exponential{Beta: 3}},
		{Name: "const", Alpha: 0.5, ThetaHat: 2, V: 0.2, Phi: 0.4, Curve: demand.Constant{}},
		{Name: "linear", Alpha: 0.9, ThetaHat: 1, V: 0.8, Phi: 0.1, Curve: demand.Linear{Floor: 0.2}},
		{Name: "power", Alpha: 0.3, ThetaHat: 8, V: 0.1, Phi: 2, Curve: demand.Power{Gamma: 2}},
		{Name: "smoothstep", Alpha: 0.6, ThetaHat: 3, V: 0.6, Phi: 0.9, Curve: demand.SmoothStep{T: 0.5, K: 20}},
		{Name: "piecewise", Alpha: 0.4, ThetaHat: 5, V: 0.3, Phi: 0.7, Curve: pw},
	}
	if err := pop.Validate(); err != nil {
		t.Fatal(err)
	}
	total := pop.TotalUnconstrainedPerCapita()
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.8, 0.99, 1.2} {
		res := Solve(MaxMin{}, frac*total, pop)
		want := math.Min(frac*total, total)
		if math.Abs(res.Aggregate()-want) > 1e-6*math.Max(want, 1) {
			t.Errorf("mixed families at %v×total: aggregate %v, want %v", frac, res.Aggregate(), want)
		}
	}
}

// Failure injection: extreme parameter regimes must not break the solver.
func TestSolveExtremeParameters(t *testing.T) {
	cases := []struct {
		name string
		pop  traffic.Population
		nu   float64
	}{
		{"huge-thetahat", traffic.Population{{
			Name: "big", Alpha: 1, ThetaHat: 1e12, V: 1, Phi: 1,
			Curve: demand.Exponential{Beta: 1},
		}}, 1e6},
		{"tiny-alpha", traffic.Population{{
			Name: "rare", Alpha: 1e-9, ThetaHat: 1, V: 1, Phi: 1,
			Curve: demand.Exponential{Beta: 1},
		}}, 1e-12},
		{"huge-beta", traffic.Population{{
			Name: "brittle", Alpha: 0.5, ThetaHat: 1, V: 1, Phi: 1,
			Curve: demand.Exponential{Beta: 1e6},
		}}, 0.1},
		{"zero-beta-degenerate", traffic.Population{{
			Name: "flat", Alpha: 0.5, ThetaHat: 1, V: 1, Phi: 1,
			Curve: demand.Exponential{Beta: 0},
		}}, 0.1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := Solve(MaxMin{}, tc.nu, tc.pop)
			for i, th := range res.Theta {
				if math.IsNaN(th) || th < 0 || th > tc.pop[i].ThetaHat*(1+1e-9) {
					t.Fatalf("θ_%d = %v invalid", i, th)
				}
			}
			want := math.Min(tc.nu, tc.pop.TotalUnconstrainedPerCapita())
			if agg := res.Aggregate(); math.Abs(agg-want) > 1e-5*math.Max(want, 1e-12) {
				t.Fatalf("aggregate %v, want %v", agg, want)
			}
		})
	}
}

// A mixed population spanning nine orders of magnitude in θ̂ still solves
// cleanly — relative tolerances must not be swamped by the giant.
func TestSolveWideDynamicRange(t *testing.T) {
	pop := traffic.Population{
		{Name: "iot", Alpha: 1, ThetaHat: 1e-3, V: 0.5, Phi: 1, Curve: demand.Exponential{Beta: 0.5}},
		{Name: "web", Alpha: 1, ThetaHat: 1, V: 0.5, Phi: 1, Curve: demand.Exponential{Beta: 1}},
		{Name: "bulk", Alpha: 1, ThetaHat: 1e6, V: 0.5, Phi: 1, Curve: demand.Exponential{Beta: 2}},
	}
	total := pop.TotalUnconstrainedPerCapita()
	for _, frac := range []float64{1e-6, 1e-3, 0.5, 0.99} {
		res := Solve(MaxMin{}, frac*total, pop)
		if agg := res.Aggregate(); math.Abs(agg-frac*total) > 1e-5*frac*total {
			t.Errorf("frac %v: aggregate %v, want %v", frac, agg, frac*total)
		}
	}
}
