// Package alloc implements the rate-allocation side of the Ma–Misra model
// (§II-B, §II-C): rate-allocation mechanisms satisfying the paper's Axioms
// 1–4, and the rate-equilibrium solver of Theorem 1 that couples a mechanism
// with the content providers' demand functions.
//
// # Mechanisms as level maps
//
// Every mechanism here is expressed through a scalar operating level: the
// mechanism grants CP i the per-user throughput RateAt(level, i), which is
// continuous and non-decreasing in the level and clamped to [0, θ̂_i]
// (Axiom 1). For the paper's max-min fair mechanism the level is literally
// the water level τ with θ_i = min(θ̂_i, τ); for weighted α-fair mechanisms
// it is a monotone transform of the KKT shadow price of the capacity
// constraint. Work conservation (Axiom 2) then pins the level down: the
// solver bisects on it until the aggregate per-capita rate equals
// min(ν, Σ α_i θ̂_i). Monotonicity in capacity (Axiom 3) follows because a
// larger ν moves the level up, and scale independence (Axiom 4) is built in
// by formulating everything per capita (ν = µ/M).
//
// This "level" formulation is not a restriction in practice — it covers the
// whole Mo–Walrand α-fair family the paper appeals to (§II-D.2) — and it is
// what makes Theorem 1 constructive: the aggregate rate is a continuous
// non-decreasing function of a single scalar, so the equilibrium is a
// bisection away.
package alloc

import (
	"math"
	"strconv"

	"github.com/netecon-sim/publicoption/internal/traffic"
)

// Allocator is a rate-allocation mechanism (Definition 1 of the paper) in
// level form.
//
// Implementations must guarantee, for every valid CP:
//   - RateAt(level, cp) is continuous and non-decreasing in level;
//   - RateAt(0, cp) = 0 and RateAt(level, cp) ∈ [0, cp.ThetaHat] (Axiom 1);
//   - RateAt(LevelHi(pop), cp) = cp.ThetaHat for every cp in pop, so the
//     solver's bisection interval [0, LevelHi] always brackets the
//     work-conserving level.
type Allocator interface {
	// RateAt returns the per-user achievable throughput θ_i granted to cp at
	// the given operating level.
	RateAt(level float64, cp *traffic.CP) float64
	// LevelHi returns a level at which every CP in pop is unconstrained.
	LevelHi(pop traffic.Population) float64
	// Name identifies the mechanism in diagnostics and rendered output.
	Name() string
}

// MaxMin is the paper's default mechanism: per-user max-min fairness, the
// first-order model of TCP's AIMD bandwidth sharing (§II-D.2, citing
// Chiu–Jain and Mo–Walrand). Every active user receives the common water
// level τ, capped by their CP's unconstrained throughput:
//
//	θ_i = min(θ̂_i, τ)
type MaxMin struct{}

// RateAt implements Allocator.
func (MaxMin) RateAt(level float64, cp *traffic.CP) float64 {
	if level <= 0 {
		return 0
	}
	return math.Min(level, cp.ThetaHat)
}

// LevelHi implements Allocator.
func (MaxMin) LevelHi(pop traffic.Population) float64 { return pop.MaxThetaHat() }

// Name implements Allocator.
func (MaxMin) Name() string { return "maxmin" }

// AggregateAt implements BulkAllocator with a concrete-type loop: one
// min() and one devirtualized demand evaluation per CP, no interface
// dispatch.
func (MaxMin) AggregateAt(level float64, pop traffic.Population) float64 {
	if level <= 0 {
		return 0
	}
	var sum float64
	for i := range pop {
		sum += EvalPerCapitaRate(&pop[i], math.Min(level, pop[i].ThetaHat))
	}
	return sum
}

// RatesAt implements BulkAllocator.
func (MaxMin) RatesAt(level float64, pop traffic.Population, out []float64) {
	for i := range pop {
		if level <= 0 {
			out[i] = 0
			continue
		}
		out[i] = math.Min(level, pop[i].ThetaHat)
	}
}

// gains implements levelLinear: max-min is the unit-gain water fill.
func (MaxMin) gains(pop traffic.Population, out []float64) float64 {
	var hi float64
	for i := range pop {
		out[i] = 1
		if pop[i].ThetaHat > hi {
			hi = pop[i].ThetaHat
		}
	}
	return hi
}

// WeightFunc assigns a positive fairness weight to a CP. Weights model
// per-flow asymmetries that TCP exhibits in practice — shorter RTTs and
// larger receive windows grab proportionally more bandwidth (§II-D.2:
// "differing round trip times ... can result in different bandwidths").
type WeightFunc func(*traffic.CP) float64

// UnitWeights gives every CP weight 1 (the symmetric case).
func UnitWeights(*traffic.CP) float64 { return 1 }

// WeightByThetaHat weights a CP by its unconstrained throughput, modelling
// transport stacks tuned to the application's bandwidth appetite.
func WeightByThetaHat(cp *traffic.CP) float64 { return cp.ThetaHat }

// AlphaFair is the Mo–Walrand weighted α-proportionally-fair mechanism. The
// solution of
//
//	max Σ_i n_i w_i x_i^(1−α)/(1−α)   s.t.  Σ_i n_i x_i ≤ µ, 0 ≤ x_i ≤ θ̂_i
//
// has the KKT form x_i = min(θ̂_i, (w_i/p)^(1/α)) for the shadow price p of
// the capacity constraint. Substituting level = p^(−1/α) gives the level
// form x_i = min(θ̂_i, w_i^(1/α)·level). α = 1 is weighted proportional
// fairness; α → ∞ recovers max-min (the weight exponent vanishes).
//
// Alpha must be positive; a nil Weights uses UnitWeights, under which every
// α yields exactly the max-min allocation (all flows share one water level).
type AlphaFair struct {
	Alpha   float64
	Weights WeightFunc
}

func (a AlphaFair) weight(cp *traffic.CP) float64 {
	w := 1.0
	if a.Weights != nil {
		w = a.Weights(cp)
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		panic("alloc: AlphaFair weights must be positive and finite")
	}
	return w
}

func (a AlphaFair) exponent() float64 {
	if !(a.Alpha > 0) {
		panic("alloc: AlphaFair requires Alpha > 0")
	}
	return 1 / a.Alpha
}

// RateAt implements Allocator.
func (a AlphaFair) RateAt(level float64, cp *traffic.CP) float64 {
	if level <= 0 {
		return 0
	}
	x := math.Pow(a.weight(cp), a.exponent()) * level
	return math.Min(x, cp.ThetaHat)
}

// LevelHi implements Allocator.
func (a AlphaFair) LevelHi(pop traffic.Population) float64 {
	exp := a.exponent()
	var hi float64
	for i := range pop {
		need := pop[i].ThetaHat / math.Pow(a.weight(&pop[i]), exp)
		if need > hi {
			hi = need
		}
	}
	return hi
}

// AggregateAt implements BulkAllocator. The per-CP weight exponent
// w_i^(1/α) is recomputed per call, so repeated evaluations at many levels
// should go through a Workspace, which hoists it out of the loop; the win
// here is removing the double interface dispatch (mechanism + demand).
func (a AlphaFair) AggregateAt(level float64, pop traffic.Population) float64 {
	if level <= 0 {
		return 0
	}
	exp := a.exponent()
	var sum float64
	for i := range pop {
		x := math.Pow(a.weight(&pop[i]), exp) * level
		sum += EvalPerCapitaRate(&pop[i], math.Min(x, pop[i].ThetaHat))
	}
	return sum
}

// RatesAt implements BulkAllocator.
func (a AlphaFair) RatesAt(level float64, pop traffic.Population, out []float64) {
	exp := a.exponent()
	for i := range pop {
		if level <= 0 {
			out[i] = 0
			continue
		}
		x := math.Pow(a.weight(&pop[i]), exp) * level
		out[i] = math.Min(x, pop[i].ThetaHat)
	}
}

// gains implements levelLinear: g_i = w_i^(1/α), the KKT gain of the
// weighted α-fair level form. Weight validation (positivity) happens here,
// exactly as in RateAt.
func (a AlphaFair) gains(pop traffic.Population, out []float64) float64 {
	exp := a.exponent()
	var hi float64
	for i := range pop {
		g := math.Pow(a.weight(&pop[i]), exp)
		out[i] = g
		if need := pop[i].ThetaHat / g; need > hi {
			hi = need
		}
	}
	return hi
}

// Name implements Allocator.
func (a AlphaFair) Name() string {
	name := "alphafair(α=" + strconv.FormatFloat(a.Alpha, 'g', -1, 64)
	if a.Weights != nil {
		name += ",weighted"
	}
	return name + ")"
}
