package alloc

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/netecon-sim/publicoption/internal/demand"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// goldenMechanisms are the built-in mechanisms the kernel must reproduce.
func goldenMechanisms() []Allocator {
	return []Allocator{
		MaxMin{},
		AlphaFair{Alpha: 1},
		AlphaFair{Alpha: 2, Weights: WeightByThetaHat},
		AlphaFair{Alpha: 0.5, Weights: func(cp *traffic.CP) float64 { return 0.5 + cp.Alpha }},
		PerCPMaxMin{},
	}
}

// randomPopulation draws n CPs mixing every demand family, including the
// ones the flattened path does not special-case (SmoothStep, Piecewise).
func randomPopulation(rng *rand.Rand, n int) traffic.Population {
	pw, err := demand.NewPiecewise([]float64{0, 0.3, 0.7, 1}, []float64{0, 0.2, 0.9, 1})
	if err != nil {
		panic(err)
	}
	curves := []demand.Curve{
		demand.Exponential{Beta: 0.5},
		demand.Exponential{Beta: 5},
		demand.Constant{},
		demand.Linear{Floor: 0.25},
		demand.Power{Gamma: 2},
		demand.SmoothStep{T: 0.5, K: 12},
		pw,
	}
	pop := make(traffic.Population, n)
	for i := range pop {
		pop[i] = traffic.CP{
			Name:     fmt.Sprintf("cp-%03d", i),
			Alpha:    0.05 + 0.95*rng.Float64(),
			ThetaHat: 0.2 + 2.8*rng.Float64(),
			V:        rng.Float64(),
			Phi:      rng.Float64(),
			Curve:    curves[rng.Intn(len(curves))],
		}
	}
	return pop
}

// nuGridFor returns the capacity stations every population is solved at:
// ν = 0, a ν → 0 sliver, interior points, the saturation boundary and an
// uncongested excess.
func nuGridFor(pop traffic.Population) []float64 {
	total := pop.TotalUnconstrainedPerCapita()
	return []float64{0, 1e-12 * math.Max(total, 1), 0.1 * total, 0.5 * total, 0.9 * total, total, 1.5*total + 1}
}

// assertGolden requires the workspace result to match the reference Solve
// to 1e-9 in Level and Theta (relative to the level range / θ̂ scale).
func assertGolden(t *testing.T, ref, got *Result, hi float64, label string) {
	t.Helper()
	if got.Constrained != ref.Constrained {
		t.Fatalf("%s: Constrained = %t, reference %t", label, got.Constrained, ref.Constrained)
	}
	scale := math.Max(hi, 1)
	if d := math.Abs(got.Level - ref.Level); d > 1e-9*scale {
		t.Fatalf("%s: Level = %.15g, reference %.15g (Δ=%g > 1e-9·%g)", label, got.Level, ref.Level, d, scale)
	}
	if len(got.Theta) != len(ref.Theta) {
		t.Fatalf("%s: %d thetas, reference %d", label, len(got.Theta), len(ref.Theta))
	}
	for i := range ref.Theta {
		ts := math.Max(math.Max(ref.Pop[i].ThetaHat, hi), 1)
		if d := math.Abs(got.Theta[i] - ref.Theta[i]); d > 1e-9*ts {
			// θ can be ill-conditioned in the level where the demand curve
			// vanishes (PerCPMaxMin inverts α·d(θ)·θ, whose derivative → 0
			// as d → 0, so machine-level level differences blow up in θ).
			// There the economics — the per-CP equilibrium rate — is the
			// meaningful invariant; require it instead, to the same bar.
			cp := &ref.Pop[i]
			rg, rr := cp.PerCapitaRate(got.Theta[i]), cp.PerCapitaRate(ref.Theta[i])
			if rd := math.Abs(rg - rr); rd > 1e-9*math.Max(rr, 1) {
				t.Fatalf("%s: θ_%d = %.15g, reference %.15g (Δ=%g; rate Δ=%g)", label, i, got.Theta[i], ref.Theta[i], d, rd)
			}
		}
	}
}

// TestWorkspaceGoldenEquivalence sweeps every built-in mechanism across
// random populations and capacity stations, comparing the warm-started
// kernel against the reference bisection point by point. The workspace is
// reused across the whole sweep, so every solve after the first is warm.
func TestWorkspaceGoldenEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pops := []traffic.Population{
		nil, // empty
		randomPopulation(rng, 1),
		randomPopulation(rng, 2),
		randomPopulation(rng, 17),
		randomPopulation(rng, 120),
	}
	for _, mech := range goldenMechanisms() {
		w := NewWorkspace(mech)
		for pi, pop := range pops {
			hi := 1.0
			if len(pop) > 0 {
				hi = mech.LevelHi(pop)
			}
			for _, nu := range nuGridFor(pop) {
				label := fmt.Sprintf("%s/pop%d/ν=%g", mech.Name(), pi, nu)
				ref := Solve(mech, nu, pop)
				got := w.Solve(nu, pop)
				assertGolden(t, ref, got, hi, label)
				if want := math.Min(nu, pop.TotalUnconstrainedPerCapita()); len(pop) > 0 {
					if agg := got.Aggregate(); math.Abs(agg-want) > 1e-6*math.Max(want, 1) {
						t.Fatalf("%s: aggregate %g, want %g (work conservation)", label, agg, want)
					}
				}
			}
		}
	}
}

// TestWorkspaceWarmMatchesCold solves a fine monotone capacity sweep twice —
// once with a single warm workspace, once with a cold workspace per point —
// and requires identical-to-tolerance answers plus a smaller evaluation
// budget for the warm pass (a handful of aggregate evaluations per solve,
// versus the old fixed bisection's ~43).
func TestWorkspaceWarmMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pop := randomPopulation(rng, 60)
	total := pop.TotalUnconstrainedPerCapita()
	warm := NewWorkspace(MaxMin{})
	warm.Solve(1.0/50*total, pop) // prime the warm level

	const solves = 39
	var warmEvals, coldEvals int
	for k := 2; k <= solves+1; k++ {
		nu := total * float64(k) / 50
		cold := NewWorkspace(MaxMin{})
		refColdStart := cold.Solve(nu, pop).Clone()
		coldEvals += cold.Evals()

		before := warm.Evals()
		got := warm.Solve(nu, pop)
		warmEvals += warm.Evals() - before

		ref := Solve(MaxMin{}, nu, pop)
		assertGolden(t, ref, got, MaxMin{}.LevelHi(pop), fmt.Sprintf("warm ν=%g", nu))
		assertGolden(t, ref, refColdStart, MaxMin{}.LevelHi(pop), fmt.Sprintf("cold ν=%g", nu))
	}
	if warmEvals >= coldEvals {
		t.Fatalf("warm sweep used %d evals, cold %d — warm start must be cheaper", warmEvals, coldEvals)
	}
	if avg := float64(warmEvals) / solves; avg > 12 {
		t.Fatalf("warm solves averaged %.1f evals, want a handful (≤ 12)", avg)
	}
}

// TestWorkspaceResultPooling documents the pooling contract: the Result is
// rebound by the next Solve, and Clone detaches it.
func TestWorkspaceResultPooling(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pop := randomPopulation(rng, 10)
	total := pop.TotalUnconstrainedPerCapita()
	w := NewWorkspace(MaxMin{})
	first := w.Solve(0.3*total, pop)
	keep := first.Clone()
	second := w.Solve(0.6*total, pop)
	if first != second {
		t.Fatalf("pooled Result pointer changed across solves")
	}
	ref := Solve(MaxMin{}, 0.3*total, pop)
	for i := range ref.Theta {
		if math.Abs(keep.Theta[i]-ref.Theta[i]) > 1e-9 {
			t.Fatalf("clone θ_%d = %g drifted after rebind, want %g", i, keep.Theta[i], ref.Theta[i])
		}
	}
}

// TestWorkspaceZeroAllocWarm is the kernel's headline property, also gated
// in CI through the -benchmem microbenchmarks: a warm solve of a bound-size
// system performs zero heap allocations for every level-linear mechanism.
func TestWorkspaceZeroAllocWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pop := randomPopulation(rng, 200)
	total := pop.TotalUnconstrainedPerCapita()
	for _, mech := range []Allocator{MaxMin{}, AlphaFair{Alpha: 2, Weights: WeightByThetaHat}} {
		w := NewWorkspace(mech)
		w.Solve(0.4*total, pop) // warm up: buffers grown, level seeded
		nus := []float64{0.41 * total, 0.43 * total, 0.45 * total}
		i := 0
		allocs := testing.AllocsPerRun(50, func() {
			w.Solve(nus[i%len(nus)], pop)
			i++
		})
		if allocs != 0 {
			t.Fatalf("%s: warm solve allocated %.1f objects/op, want 0", mech.Name(), allocs)
		}
	}
}

// TestWorkspacePanicsMatchSolve pins the error contract to the reference.
func TestWorkspacePanicsMatchSolve(t *testing.T) {
	w := NewWorkspace(MaxMin{})
	mustPanic := func(label string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", label)
			}
		}()
		f()
	}
	mustPanic("negative ν", func() { w.Solve(-1, nil) })
	mustPanic("NaN ν", func() { w.Solve(math.NaN(), nil) })
	mustPanic("bad M", func() { w.SolveSystem(0, 1, nil) })
	badWeights := NewWorkspace(AlphaFair{Alpha: 1, Weights: func(*traffic.CP) float64 { return -1 }})
	pop := traffic.Population{{Name: "x", Alpha: 0.5, ThetaHat: 1, Curve: demand.Constant{}}}
	mustPanic("negative weight", func() { badWeights.Solve(0.1, pop) })
}

// TestBulkMatchesGeneric pins each mechanism's BulkAllocator batch
// implementations to the per-CP interface loop they devirtualize.
func TestBulkMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pop := randomPopulation(rng, 40)
	for _, mech := range goldenMechanisms() {
		bulk, ok := mech.(BulkAllocator)
		if !ok {
			t.Fatalf("%s: built-in mechanism must implement BulkAllocator", mech.Name())
		}
		hi := mech.LevelHi(pop)
		out := make([]float64, len(pop))
		for _, frac := range []float64{0, 1e-9, 0.2, 0.5, 0.999, 1, 1.7} {
			level := frac * hi
			var want float64
			for i := range pop {
				want += pop[i].PerCapitaRate(mech.RateAt(level, &pop[i]))
			}
			if got := bulk.AggregateAt(level, pop); math.Abs(got-want) > 1e-9*math.Max(want, 1) {
				t.Fatalf("%s: AggregateAt(%g) = %g, generic %g", mech.Name(), level, got, want)
			}
			bulk.RatesAt(level, pop, out)
			for i := range pop {
				if want := mech.RateAt(level, &pop[i]); math.Abs(out[i]-want) > 1e-9*math.Max(want, 1) {
					t.Fatalf("%s: RatesAt(%g)[%d] = %g, generic %g", mech.Name(), level, i, out[i], want)
				}
			}
		}
	}
}

// TestEvalHelpersMatchInterfaces pins the devirtualized scalar helpers to
// the interface methods they shadow.
func TestEvalHelpersMatchInterfaces(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	pop := randomPopulation(rng, 30)
	for _, mech := range goldenMechanisms() {
		hi := mech.LevelHi(pop)
		for _, frac := range []float64{-0.1, 0, 0.3, 0.8, 1, 1.4} {
			level := frac * hi
			for i := range pop {
				cp := &pop[i]
				if got, want := EvalRate(mech, level, cp), mech.RateAt(level, cp); got != want {
					t.Fatalf("%s: EvalRate(%g, %s) = %g, RateAt %g", mech.Name(), level, cp.Name, got, want)
				}
			}
		}
	}
	for i := range pop {
		cp := &pop[i]
		for _, theta := range []float64{-1, 0, 0.1 * cp.ThetaHat, 0.99 * cp.ThetaHat, cp.ThetaHat, 2 * cp.ThetaHat} {
			if got, want := EvalRho(cp, theta), cp.Rho(theta); got != want {
				t.Fatalf("EvalRho(%s, %g) = %g, Rho %g", cp.Name, theta, got, want)
			}
			if got, want := EvalPerCapitaRate(cp, theta), cp.PerCapitaRate(theta); got != want {
				t.Fatalf("EvalPerCapitaRate(%s, %g) = %g, PerCapitaRate %g", cp.Name, theta, got, want)
			}
		}
	}
}
