package alloc

import (
	"math"

	"github.com/netecon-sim/publicoption/internal/demand"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// This file is the devirtualized evaluation layer of the equilibrium hot
// path. Every quantity the games compute bottoms out in two per-CP maps —
// the mechanism's level→rate map RateAt and the demand composition
// d_i(θ)·θ — and both are interface calls in the generic formulation. The
// helpers here recover the concrete types of the built-in mechanisms and
// demand families so the inner loops run as straight-line float code, and
// the BulkAllocator dispatchers give whole-population evaluation a single
// entry point that the Workspace kernel, the class-curve cache and the
// screening dynamics all share.
//
// Semantics are pinned to the generic path: every fast branch replicates
// the corresponding method (RateAt, Curve.At, CP.Rho) expression for
// expression, so a fast evaluation and a generic evaluation of the same
// quantity agree bit for bit. The golden-equivalence tests in
// solver_test.go enforce this across mechanisms and demand families.

// BulkAllocator is the optional whole-population fast path of a mechanism.
// Implementations evaluate the level map for every CP in one call with a
// concrete receiver, removing the per-CP interface dispatch of
// Allocator.RateAt from the solver's inner loop. All built-in mechanisms
// implement it; AggregateAt and RatesAt fall back to the generic per-CP
// loop for mechanisms that do not.
type BulkAllocator interface {
	// AggregateAt returns Σ_i α_i·d_i(θ_i(level))·θ_i(level), the aggregate
	// per-capita rate of the population at the given operating level.
	AggregateAt(level float64, pop traffic.Population) float64
	// RatesAt fills out[i] with θ_i(level) for every CP in pop. out must
	// have length len(pop).
	RatesAt(level float64, pop traffic.Population, out []float64)
}

// levelLinear is implemented by mechanisms whose level form is
//
//	θ_i(ℓ) = min(g_i·ℓ, θ̂_i)
//
// for per-CP gains g_i that depend only on the CP (not the level). The
// Workspace kernel flattens such mechanisms into plain float arrays and
// solves with zero interface calls in the inner loop. The paper's max-min
// mechanism (g_i = 1) and the whole Mo–Walrand α-fair family
// (g_i = w_i^(1/α)) are level-linear; PerCPMaxMin is not (its level map
// needs an inner inversion) and takes the BulkAllocator path instead.
type levelLinear interface {
	// gains fills out[i] = g_i for every CP in pop and returns the level at
	// which every CP is unconstrained (identical to LevelHi).
	gains(pop traffic.Population, out []float64) (hi float64)
}

// demand-curve kinds of the flattened fast path. Families not listed fall
// back to the Curve interface (still inside the devirtualized mechanism
// loop).
const (
	dGeneric = uint8(iota)
	dExponential
	dConstant
	dLinear
	dPower
)

// classifyCurve maps a demand curve to its fast-path kind and parameter.
//
//pubopt:hotpath
func classifyCurve(c demand.Curve) (kind uint8, param float64) {
	switch d := c.(type) {
	case demand.Exponential:
		return dExponential, d.Beta
	case demand.Constant:
		return dConstant, 0
	case demand.Linear:
		return dLinear, d.Floor
	case demand.Power:
		return dPower, d.Gamma
	default:
		return dGeneric, 0
	}
}

// demandAtKind evaluates the classified demand family at normalized
// throughput omega ∈ (0, 1]. It replicates each family's At method exactly.
//
//pubopt:hotpath
func demandAtKind(kind uint8, param, omega float64) float64 {
	switch kind {
	case dExponential:
		if omega >= 1 {
			return 1
		}
		return math.Exp(-param * (1/omega - 1))
	case dConstant:
		return 1
	case dLinear:
		if omega >= 1 {
			return 1
		}
		return param + (1-param)*omega
	case dPower:
		if omega >= 1 {
			return 1
		}
		if param == 0 { //pubopt:allow(floatcmp): γ=0 is the exact config sentinel for the constant curve, mirroring demand.Power
			return 1
		}
		return math.Pow(omega, param)
	}
	return math.NaN() // unreachable: callers never pass dGeneric
}

// EvalRho is CP.Rho with the demand evaluation devirtualized for the
// built-in families: d_i(θ)·θ, the CP's per-capita throughput over its own
// user base at achieved per-user throughput theta.
//
//pubopt:hotpath
func EvalRho(cp *traffic.CP, theta float64) float64 {
	if theta <= 0 {
		return 0
	}
	if theta > cp.ThetaHat {
		theta = cp.ThetaHat
	}
	if kind, param := classifyCurve(cp.Curve); kind != dGeneric {
		return demandAtKind(kind, param, theta/cp.ThetaHat) * theta
	}
	return cp.Curve.At(theta/cp.ThetaHat) * theta
}

// EvalPerCapitaRate is CP.PerCapitaRate through the fast demand path:
// α_i·d_i(θ)·θ.
//
//pubopt:hotpath
func EvalPerCapitaRate(cp *traffic.CP, theta float64) float64 {
	return cp.Alpha * EvalRho(cp, theta)
}

// EvalRate is Allocator.RateAt with the built-in mechanisms devirtualized:
// a concrete-type dispatch replaces the interface call for MaxMin,
// AlphaFair and PerCPMaxMin, and unknown mechanisms fall back to the
// interface.
//
//pubopt:hotpath
func EvalRate(a Allocator, level float64, cp *traffic.CP) float64 {
	switch m := a.(type) {
	case MaxMin:
		if level <= 0 {
			return 0
		}
		return math.Min(level, cp.ThetaHat)
	case AlphaFair:
		return m.RateAt(level, cp)
	case PerCPMaxMin:
		return m.RateAt(level, cp)
	}
	return a.RateAt(level, cp)
}

// AggregateAt returns the aggregate per-capita rate Σ_i α_i·d_i(θ_i)·θ_i of
// the population at the given operating level, dispatching to the
// mechanism's BulkAllocator fast path when it has one.
//
//pubopt:hotpath
func AggregateAt(a Allocator, level float64, pop traffic.Population) float64 {
	if b, ok := a.(BulkAllocator); ok {
		return b.AggregateAt(level, pop)
	}
	var sum float64
	for i := range pop {
		sum += EvalPerCapitaRate(&pop[i], a.RateAt(level, &pop[i]))
	}
	return sum
}

// RatesAt fills out[i] = RateAt(level, &pop[i]) for every CP, dispatching
// to the mechanism's BulkAllocator fast path when it has one. out must have
// length len(pop).
//
//pubopt:hotpath
func RatesAt(a Allocator, level float64, pop traffic.Population, out []float64) {
	if b, ok := a.(BulkAllocator); ok {
		b.RatesAt(level, pop, out)
		return
	}
	for i := range pop {
		out[i] = a.RateAt(level, &pop[i])
	}
}
