package alloc

import (
	"fmt"
	"math"

	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// Result is the rate equilibrium of a per-capita system (ν, pop) under an
// allocation mechanism: the unique throughput profile of Theorem 1.
//
// Everything is per capita; multiply by M to recover absolute rates (the
// model is scale independent, Axiom 4 / Lemma 1).
type Result struct {
	Nu          float64            // per-capita capacity ν = µ/M
	Level       float64            // the mechanism's operating level at equilibrium
	Theta       []float64          // θ_i: achievable per-user throughput, per CP
	Constrained bool               // true iff ν < Σ α_i θ̂_i (link is a bottleneck)
	Pop         traffic.Population // the population the equilibrium is for
}

// Demand returns d_i(θ_i), the equilibrium demand level of CP i.
func (r *Result) Demand(i int) float64 { return r.Pop[i].DemandAt(r.Theta[i]) }

// Rho returns ρ_i = d_i(θ_i)·θ_i, CP i's equilibrium per-capita throughput
// over its own user base (Eq. 5).
func (r *Result) Rho(i int) float64 { return r.Pop[i].Rho(r.Theta[i]) }

// PerCapitaRate returns λ_i/M = α_i·d_i(θ_i)·θ_i for CP i.
func (r *Result) PerCapitaRate(i int) float64 { return r.Pop[i].PerCapitaRate(r.Theta[i]) }

// Aggregate returns λ_N/M = Σ_i λ_i/M, the equilibrium aggregate per-capita
// throughput. By Axiom 2 this equals min(ν, Σ α_i θ̂_i) up to solver
// tolerance. The sum streams through a Kahan accumulator (it is called
// from metrics and per-cell finalization, so it must not allocate).
func (r *Result) Aggregate() float64 {
	var k numeric.Kahan
	for i := range r.Theta {
		k.Add(r.PerCapitaRate(i))
	}
	return k.Value()
}

// Clone returns a deep copy of the equilibrium, detached from any solver
// workspace: both the θ profile and the population slice header are copied,
// so the clone stays valid after the workspace that produced the original
// rebinds its buffers. Results returned by Solve are already owned and do
// not need cloning.
func (r *Result) Clone() *Result {
	c := *r
	c.Theta = append([]float64(nil), r.Theta...)
	c.Pop = append(traffic.Population(nil), r.Pop...)
	return &c
}

// Utilization returns the fraction of capacity in use, Aggregate()/ν, or 1
// for ν = 0.
func (r *Result) Utilization() float64 {
	if r.Nu <= 0 {
		return 1
	}
	return r.Aggregate() / r.Nu
}

// String summarizes the equilibrium for debugging.
func (r *Result) String() string {
	return fmt.Sprintf("equilibrium(ν=%g, level=%g, constrained=%t, n=%d, agg=%g)",
		r.Nu, r.Level, r.Constrained, len(r.Theta), r.Aggregate())
}

// relTol is the relative level tolerance of the equilibrium bisection. The
// level range is LevelHi; 1e-12 relative leaves the aggregate-rate residual
// far below any quantity the games compare.
const relTol = 1e-12

// Solve computes the unique rate equilibrium of the per-capita system
// (ν, pop) under mechanism a (Theorem 1).
//
// If ν covers the total unconstrained throughput, every CP gets θ̂_i and the
// link is not a bottleneck. Otherwise the equilibrium level is the root of
// the (continuous, non-decreasing) aggregate-rate map
//
//	ℓ ↦ Σ_i α_i · d_i(RateAt(ℓ, i)) · RateAt(ℓ, i) − ν
//
// on [0, LevelHi], found by bisection. Uniqueness of the resulting θ profile
// is the paper's Theorem 1; the axiom checkers in this package verify the
// preconditions for each mechanism.
//
// Solve panics on negative ν (a programming error); an empty population
// yields an empty, unconstrained result.
//
// Solve is the reference implementation: a fixed cold bisection with
// per-CP interface dispatch, kept deliberately simple. The hot paths (the
// class game, the market solvers, grid sweeps) solve through the reusable
// Workspace, whose warm-started, devirtualized kernel is pinned to this
// function by the golden-equivalence tests in solver_test.go.
func Solve(a Allocator, nu float64, pop traffic.Population) *Result {
	if nu < 0 || math.IsNaN(nu) {
		panic(fmt.Sprintf("alloc: Solve called with invalid ν=%g", nu))
	}
	res := &Result{Nu: nu, Pop: pop, Theta: make([]float64, len(pop))}
	if len(pop) == 0 {
		return res
	}
	total := pop.TotalUnconstrainedPerCapita()
	hi := a.LevelHi(pop)
	if nu >= total {
		// Uncongested: Axiom 2 forces λ_i = λ̂_i for every CP.
		for i := range pop {
			res.Theta[i] = pop[i].ThetaHat
		}
		res.Level = hi
		return res
	}
	res.Constrained = true
	aggregateAt := func(level float64) float64 {
		var sum float64
		for i := range pop {
			sum += pop[i].PerCapitaRate(a.RateAt(level, &pop[i]))
		}
		return sum
	}
	level := numeric.Bisect(func(l float64) float64 { return aggregateAt(l) - nu }, 0, hi, relTol*hi)
	res.Level = level
	for i := range pop {
		res.Theta[i] = a.RateAt(level, &pop[i])
	}
	return res
}

// SolveSystem is the absolute-scale entry point: it computes the rate
// equilibrium of the system (M, µ, pop) by reducing to per-capita form,
// which is exact by Axiom 4 (Lemma 1). M must be positive.
func SolveSystem(a Allocator, m, mu float64, pop traffic.Population) *Result {
	if !(m > 0) {
		panic(fmt.Sprintf("alloc: SolveSystem called with M=%g, want > 0", m))
	}
	return Solve(a, mu/m, pop)
}

// ThetaCurve samples the equilibrium throughput of every CP across a grid of
// per-capita capacities, returning curves[i][j] = θ_i at nuGrid[j]. It is
// the numerical object behind Lemma 1 (each row is non-decreasing and
// continuous in ν) and behind Figure 3.
func ThetaCurve(a Allocator, nuGrid []float64, pop traffic.Population) [][]float64 {
	curves := make([][]float64, len(pop))
	for i := range curves {
		curves[i] = make([]float64, len(nuGrid))
	}
	// One workspace for the whole curve: each capacity's water level
	// warm-starts the next (the level is monotone in ν, Axiom 3).
	w := NewWorkspace(a)
	for j, nu := range nuGrid {
		res := w.Solve(nu, pop)
		for i := range pop {
			curves[i][j] = res.Theta[i]
		}
	}
	return curves
}
