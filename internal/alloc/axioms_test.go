package alloc

import (
	"math"
	"strings"
	"testing"

	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

func TestAllMechanismsSatisfyAxioms(t *testing.T) {
	pops := map[string]traffic.Population{
		"archetypes": traffic.Archetypes(),
		"ensemble":   smallEnsemble(21, 60),
	}
	mechanisms := []Allocator{
		MaxMin{},
		AlphaFair{Alpha: 1},
		AlphaFair{Alpha: 2},
		AlphaFair{Alpha: 1, Weights: WeightByThetaHat},
		PerCPMaxMin{},
	}
	for popName, pop := range pops {
		total := pop.TotalUnconstrainedPerCapita()
		grid := numeric.Linspace(0, 1.2*total, 41)
		for _, mech := range mechanisms {
			reports := CheckAxioms(mech, pop, grid, 0)
			if ok, detail := AxiomsOK(reports); !ok {
				t.Errorf("%s on %s: %s", mech.Name(), popName, detail)
			}
		}
	}
}

// A deliberately broken mechanism: it wastes capacity (violates Axiom 2).
type wasteful struct{ MaxMin }

func (wasteful) RateAt(level float64, cp *traffic.CP) float64 {
	return 0.5 * MaxMin{}.RateAt(level, cp)
}

func (wasteful) Name() string { return "wasteful" }

func TestCheckAxiomsDetectsWorkConservationViolation(t *testing.T) {
	pop := traffic.Archetypes()
	grid := numeric.Linspace(100, 5000, 10)
	reports := CheckAxioms(wasteful{}, pop, grid, 0)
	ok, detail := AxiomsOK(reports)
	if ok {
		t.Fatal("wasteful mechanism passed the axiom check")
	}
	if !strings.Contains(detail, "axiom 2") {
		t.Fatalf("expected an Axiom 2 violation, got: %s", detail)
	}
}

// A mechanism that over-allocates beyond θ̂ (violates Axiom 1). Its LevelHi
// is inherited, so the bisection still terminates.
type overAllocating struct{ MaxMin }

func (overAllocating) RateAt(level float64, cp *traffic.CP) float64 {
	return level // no cap at θ̂
}

func (overAllocating) Name() string { return "over-allocating" }

func TestCheckAxiomsDetectsFeasibilityViolation(t *testing.T) {
	pop := traffic.Archetypes()
	grid := numeric.Linspace(100, 5800, 12)
	reports := CheckAxioms(overAllocating{}, pop, grid, 0)
	ok, detail := AxiomsOK(reports)
	if ok {
		t.Fatal("over-allocating mechanism passed the axiom check")
	}
	if !strings.Contains(detail, "axiom 1") && !strings.Contains(detail, "axiom 2") {
		t.Fatalf("expected Axiom 1/2 violation, got: %s", detail)
	}
}

func TestAxiomReportString(t *testing.T) {
	ok := AxiomReport{Axiom: 3, OK: true}
	if got := ok.String(); got != "axiom 3: ok" {
		t.Errorf("String() = %q", got)
	}
	bad := AxiomReport{Axiom: 2, OK: false, Detail: "x"}
	if got := bad.String(); !strings.Contains(got, "VIOLATED") {
		t.Errorf("String() = %q", got)
	}
}

func TestAxiom4ScaleInvarianceDirect(t *testing.T) {
	pop := smallEnsemble(33, 40)
	nu := 0.4 * pop.TotalUnconstrainedPerCapita()
	base := SolveSystem(MaxMin{}, 100, nu*100, pop)
	for _, xi := range []float64{0.01, 0.5, 2, 1000} {
		scaled := SolveSystem(MaxMin{}, 100*xi, nu*100*xi, pop)
		for i := range pop {
			if math.Abs(base.Theta[i]-scaled.Theta[i]) > 1e-9*math.Max(pop[i].ThetaHat, 1) {
				t.Fatalf("scale ξ=%v changes θ_%d: %v vs %v", xi, i, base.Theta[i], scaled.Theta[i])
			}
		}
	}
}
