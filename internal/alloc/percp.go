package alloc

import (
	"math"

	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// PerCPMaxMin equalizes aggregate per-capita rates across content providers
// rather than per-user rates across flows: the mechanism water-fills the
// quantities y_i = α_i·d_i(θ_i)·θ_i instead of the θ_i themselves.
//
// This is what a naive "every CP gets an equal pipe" peering policy would
// produce, and it is deliberately different from the paper's per-user
// max-min: a CP with a tiny user base (small α) is dramatically favored per
// user. The mechanism still satisfies Axioms 1–4, so every theorem of §II
// applies to it; the ablation benchmarks use it to show how much the
// *choice* of neutral mechanism matters even before any pricing enters.
//
// In level form: at level ℓ, CP i's aggregate per-capita rate is
// y_i(ℓ) = min(ℓ, α_i·θ̂_i), and θ_i is the smallest solution of
// α_i·d_i(θ)·θ = y_i(ℓ), found by inner bisection (the map is continuous
// and non-decreasing with range [0, α_i·θ̂_i], so a solution exists).
type PerCPMaxMin struct{}

// RateAt implements Allocator.
//
//pubopt:hotpath
func (PerCPMaxMin) RateAt(level float64, cp *traffic.CP) float64 {
	if level <= 0 {
		return 0
	}
	target := math.Min(level, cp.Alpha*cp.ThetaHat)
	if target >= cp.Alpha*cp.ThetaHat {
		return cp.ThetaHat
	}
	// Invert θ ↦ α·d(θ)·θ at target. The function is non-decreasing and
	// continuous (Assumption 1), hitting target somewhere in [0, θ̂].
	//pubopt:allow(hotpathalloc): bisection callback closure; inversions run once per final RatesAt, not per root-search evaluation
	f := func(theta float64) float64 { return cp.PerCapitaRate(theta) - target }
	return numeric.Bisect(f, 0, cp.ThetaHat, 1e-12*cp.ThetaHat)
}

// LevelHi implements Allocator.
func (PerCPMaxMin) LevelHi(pop traffic.Population) float64 {
	var hi float64
	for i := range pop {
		if r := pop[i].UnconstrainedPerCapitaRate(); r > hi {
			hi = r
		}
	}
	return hi
}

// Name implements Allocator.
func (PerCPMaxMin) Name() string { return "percp-maxmin" }

// AggregateAt implements BulkAllocator. For this mechanism the aggregate
// needs no inner inversion at all: by construction CP i's aggregate
// per-capita rate at level ℓ is exactly y_i(ℓ) = min(ℓ, α_i·θ̂_i) — the
// water-filled quantity itself — so the sum is closed form. This turns the
// solver's root search from O(n·inner-bisections) per evaluation into a
// plain O(n) sum; only the final RatesAt pays for the θ inversions, once.
//
//pubopt:hotpath
func (PerCPMaxMin) AggregateAt(level float64, pop traffic.Population) float64 {
	if level <= 0 {
		return 0
	}
	var sum float64
	for i := range pop {
		sum += math.Min(level, pop[i].Alpha*pop[i].ThetaHat)
	}
	return sum
}

// RatesAt implements BulkAllocator: the per-CP inversion of α·d(θ)·θ at the
// water-filled target, with a concrete receiver.
//
//pubopt:hotpath
func (p PerCPMaxMin) RatesAt(level float64, pop traffic.Population, out []float64) {
	for i := range pop {
		out[i] = p.RateAt(level, &pop[i])
	}
}
