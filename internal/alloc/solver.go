package alloc

import (
	"fmt"
	"math"

	"github.com/netecon-sim/publicoption/internal/obs"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// Workspace is a reusable, allocation-free equilibrium solver: the hot-path
// counterpart of Solve. It owns every scratch buffer the solve needs — the
// flattened per-CP parameter arrays, the θ output buffer and a pooled
// Result — and it keeps the equilibrium level of the previous solve as a
// warm start for the next one.
//
// # Pooling contract
//
// Solve returns a pointer to the workspace's own Result; the pointed-to
// value (including its Theta slice) is valid only until the next call to
// Solve on the same workspace. Callers that retain an equilibrium across
// solves must Clone it. This is the deliberate trade: the games solve
// thousands of intermediate equilibria per published point and read each
// one immediately, so the hot path allocates nothing, and only the handful
// of results that outlive an iteration pay for copies.
//
// # Warm starts
//
// Along a sweep — capacity grids, price grids, the class dynamics'
// single-CP moves — the equilibrium level moves slowly (Axiom 3 makes it
// monotone in ν, and one CP switching classes perturbs it by O(α_i)). The
// workspace therefore brackets the new root around the previous level and
// hands the tight bracket to a hybrid secant/bisection search, converging
// in a handful of aggregate-map evaluations instead of a full cold
// bisection. Warm starts never change the answer (the bracket is verified
// by sign before it is trusted and the tolerance matches Solve's); they
// only change how fast it is reached. Reset drops the warm state.
//
// A Workspace is not safe for concurrent use; create one per goroutine
// (sweep workers each own one, which is exactly the shape sweep.RunRows
// distributes).
type Workspace struct {
	a    Allocator
	bulk BulkAllocator // non-nil when a implements the bulk fast path
	lin  levelLinear   // non-nil when a is level-linear (flattened path)

	// Flattened per-CP state, rebound on every Solve (level-linear path
	// only). Binding is one pass over the population — the same order of
	// work as a single aggregate evaluation — and buys back dozens of
	// interface dispatches per root-search iteration.
	gain     []float64 // g_i: θ_i(ℓ) = min(g_i·ℓ, θ̂_i)
	alpha    []float64
	thetaHat []float64
	dkind    []uint8   // demand family tag (dExponential, ...)
	dparam   []float64 // demand family parameter (β, floor, γ)
	pop      traffic.Population

	res   Result
	theta []float64

	warmLevel float64
	warmHi    float64
	hasWarm   bool
	// lastDelta is how far the level moved on the previous constrained
	// solve; the warm bracket opens ±2·lastDelta around the previous level,
	// because along a sweep consecutive moves have comparable size.
	lastDelta float64

	// stats counts solver work across the workspace's lifetime: aggregate
	// evaluations, warm vs. cold bracketing, forced bisections, and the
	// final residual bound. Plain (non-atomic) fields: a Workspace is
	// single-goroutine by contract, and the hot path must not pay for
	// synchronization it does not need. Read through Stats or Evals.
	stats obs.SolveStats
}

// NewWorkspace returns a workspace for mechanism a (nil means the paper's
// max-min mechanism).
func NewWorkspace(a Allocator) *Workspace {
	if a == nil {
		a = MaxMin{}
	}
	w := &Workspace{a: a}
	if b, ok := a.(BulkAllocator); ok {
		w.bulk = b
	}
	if l, ok := a.(levelLinear); ok {
		w.lin = l
	}
	return w
}

// Allocator returns the mechanism this workspace solves under.
func (w *Workspace) Allocator() Allocator { return w.a }

// Evals returns the cumulative number of aggregate-rate evaluations the
// workspace has performed — the unit of solver work. Warm solves should
// show a small fraction of a cold solve's count.
func (w *Workspace) Evals() int { return int(w.stats.Evals) }

// Stats returns the workspace's cumulative solver telemetry. The returned
// value is a snapshot; use obs.SolveStats.Since against a previous snapshot
// to attribute work to one solve or one sweep segment.
func (w *Workspace) Stats() obs.SolveStats { return w.stats }

// Reset drops the warm-start state (keeping the scratch buffers). Call it
// between sweeps over unrelated systems if you want reproducible eval
// counts; correctness never requires it.
func (w *Workspace) Reset() { w.hasWarm = false }

// ensure grows the scratch buffers to hold n CPs without allocating on the
// steady state.
func (w *Workspace) ensure(n int) {
	if cap(w.theta) < n {
		w.theta = make([]float64, n)
		w.gain = make([]float64, n)
		w.alpha = make([]float64, n)
		w.thetaHat = make([]float64, n)
		w.dkind = make([]uint8, n)
		w.dparam = make([]float64, n)
	}
	w.theta = w.theta[:n]
	w.gain = w.gain[:n]
	w.alpha = w.alpha[:n]
	w.thetaHat = w.thetaHat[:n]
	w.dkind = w.dkind[:n]
	w.dparam = w.dparam[:n]
}

// bind flattens the population for the level-linear fast path and returns
// the mechanism's unconstrained level (LevelHi). For non-level-linear
// mechanisms it only records the population and asks the mechanism.
//
//pubopt:hotpath
func (w *Workspace) bind(pop traffic.Population) (hi float64) {
	w.pop = pop
	if w.lin == nil {
		return w.a.LevelHi(pop)
	}
	hi = w.lin.gains(pop, w.gain)
	for i := range pop {
		cp := &pop[i]
		w.alpha[i] = cp.Alpha
		w.thetaHat[i] = cp.ThetaHat
		w.dkind[i], w.dparam[i] = classifyCurve(cp.Curve)
	}
	return hi
}

// aggregateAt evaluates the aggregate per-capita rate map at level through
// the fastest path the mechanism supports.
//
//pubopt:hotpath
func (w *Workspace) aggregateAt(level float64) float64 {
	w.stats.Evals++
	if w.lin != nil {
		return w.flatAggregate(level)
	}
	if w.bulk != nil {
		return w.bulk.AggregateAt(level, w.pop)
	}
	var sum float64
	for i := range w.pop {
		sum += EvalPerCapitaRate(&w.pop[i], w.a.RateAt(level, &w.pop[i]))
	}
	return sum
}

// flatAggregate is the devirtualized inner loop: pure float arithmetic over
// the flattened arrays, one math.Exp per exponential-demand CP, zero
// interface calls for the built-in demand families.
//
//pubopt:hotpath
func (w *Workspace) flatAggregate(level float64) float64 {
	var sum float64
	for i, g := range w.gain {
		th := g * level
		if hat := w.thetaHat[i]; th > hat {
			th = hat
		}
		if th <= 0 {
			continue
		}
		var d float64
		if kind := w.dkind[i]; kind != dGeneric {
			d = demandAtKind(kind, w.dparam[i], th/w.thetaHat[i])
		} else {
			d = w.pop[i].Curve.At(th / w.thetaHat[i])
		}
		sum += w.alpha[i] * d * th
	}
	return sum
}

// ratesAt fills out[i] = θ_i(level) through the fastest supported path.
//
//pubopt:hotpath
func (w *Workspace) ratesAt(level float64, out []float64) {
	if w.lin != nil {
		for i, g := range w.gain {
			th := g * level
			if level <= 0 {
				th = 0
			} else if hat := w.thetaHat[i]; th > hat {
				th = hat
			}
			out[i] = th
		}
		return
	}
	if w.bulk != nil {
		w.bulk.RatesAt(level, w.pop, out)
		return
	}
	for i := range w.pop {
		out[i] = w.a.RateAt(level, &w.pop[i])
	}
}

// Solve computes the rate equilibrium of the per-capita system (ν, pop):
// the same map as Solve (Theorem 1), through the workspace's fast path.
// The returned Result is pooled — see the type comment.
//
//pubopt:hotpath
func (w *Workspace) Solve(nu float64, pop traffic.Population) *Result {
	if nu < 0 || math.IsNaN(nu) {
		//pubopt:allow(hotpathalloc): cold panic path; formatting happens only on invalid input, never per solve
		panic(fmt.Sprintf("alloc: Workspace.Solve called with invalid ν=%g", nu))
	}
	n := len(pop)
	w.ensure(n)
	w.stats.Solves++
	res := &w.res
	*res = Result{Nu: nu, Pop: pop, Theta: w.theta}
	if n == 0 {
		return res
	}
	hi := w.bind(pop)
	total := pop.TotalUnconstrainedPerCapita()
	if nu >= total {
		// Uncongested: Axiom 2 forces θ_i = θ̂_i for every CP.
		for i := range pop {
			w.theta[i] = pop[i].ThetaHat
		}
		res.Level = hi
		w.warmLevel, w.warmHi, w.hasWarm = hi, hi, true
		return res
	}
	res.Constrained = true
	w.stats.Constrained++
	level := w.findLevel(nu, hi, total)
	res.Level = level
	w.ratesAt(level, w.theta)
	if w.hasWarm {
		w.lastDelta = math.Abs(level - w.warmLevel)
	}
	w.warmLevel, w.warmHi, w.hasWarm = level, hi, true
	return res
}

// SolveSystem is the absolute-scale entry point (Axiom 4 / Lemma 1):
// Workspace.Solve at ν = µ/M. M must be positive.
//
//pubopt:hotpath
func (w *Workspace) SolveSystem(m, mu float64, pop traffic.Population) *Result {
	if !(m > 0) {
		//pubopt:allow(hotpathalloc): cold panic path; formatting happens only on invalid input, never per solve
		panic(fmt.Sprintf("alloc: Workspace.SolveSystem called with M=%g, want > 0", m))
	}
	return w.Solve(mu/m, pop)
}

// findLevel locates the work-conserving level: the root of
// f(ℓ) = aggregate(ℓ) − ν on [0, hi], with f non-decreasing, f(0) = −ν ≤ 0
// and f(hi) = total − ν > 0 (the caller has already excluded the
// uncongested case). The endpoint values are known analytically, so a cold
// solve starts with zero evaluations spent on the bracket; a warm solve
// shrinks the bracket around the previous level first.
//
//pubopt:hotpath
func (w *Workspace) findLevel(nu, hi, total float64) float64 {
	tol := relTol * hi
	lo, flo := 0.0, -nu
	up, fup := hi, total-nu
	if flo >= 0 {
		w.stats.Residual = 0
		return lo // ν = 0: the zero level is work conserving
	}

	warm := false
	if w.hasWarm && w.warmLevel > 0 {
		// Trust the previous level only as a probe point: evaluate, assign
		// it to the correct side of the bracket, then step geometrically
		// toward the other side until the sign flips. Levels move slowly
		// along sweeps, so the first or second step usually brackets.
		x0 := w.warmLevel
		if w.warmHi > 0 && w.warmHi != hi { //pubopt:allow(floatcmp): warmHi is copied from the previous solve; bitwise equality means the same level range, anything else rescales
			// The level range rescaled (population or weights changed);
			// carry the warm level across proportionally.
			x0 *= hi / w.warmHi
		}
		if x0 > lo+tol && x0 < up-tol {
			warm = true
			w.stats.WarmBrackets++
			f0 := w.aggregateAt(x0) - nu
			if f0 == 0 { //pubopt:allow(floatcmp): exact residual zero is the root; near-zero keeps bracketing
				w.stats.Residual = 0
				return x0
			}
			if f0 < 0 {
				lo, flo = x0, f0
			} else {
				up, fup = x0, f0
			}
			// Probe the other side of the root. The step opens at twice
			// the previous solve's level motion (consecutive sweep points
			// move comparably), falling back to 1e-3·hi when no motion
			// history exists, and expands geometrically on a miss.
			step := 2 * w.lastDelta
			if step < 64*tol {
				step = 1e-3 * hi
			}
			if step > hi/4 {
				step = hi / 4
			}
			for k := 0; k < 5 && up-lo > tol; k++ {
				var x float64
				if fup == total-nu && up == hi { //pubopt:allow(floatcmp): tests whether the endpoint still holds its untouched initial value, an identity check on stored floats
					// Root is above x0: probe upward from the lower end.
					x = lo + step
					if x >= hi {
						break
					}
				} else if flo == -nu && lo == 0 { //pubopt:allow(floatcmp): same untouched-initial-value identity check for the lower end
					// Root is below x0: probe downward from the upper end.
					x = up - step
					if x <= 0 {
						break
					}
				} else {
					break // both sides already tightened
				}
				fx := w.aggregateAt(x) - nu
				if fx == 0 { //pubopt:allow(floatcmp): exact residual zero is the root
					w.stats.Residual = 0
					return x
				}
				if fx < 0 {
					lo, flo = x, fx
				} else {
					up, fup = x, fx
				}
				step *= 8
			}
		}
	}
	if !warm {
		w.stats.ColdBrackets++
	}

	// Bracketed hybrid search: Illinois-damped false position — the secant
	// through the bracket endpoints, halving a stale endpoint's residual so
	// convex aggregates cannot stall an end — with a bisection safeguard
	// that fires only when four consecutive secant steps fail to halve the
	// bracket. Terminates on the same bracket-width criterion as Solve's
	// bisection, so the two agree to solver tolerance.
	side := 0
	checkWidth := up - lo
	sinceCheck := 0
	for iter := 0; iter < maxLevelIter && up-lo > tol; iter++ {
		var x float64
		if sinceCheck >= 4 {
			if up-lo > checkWidth/2 {
				x = lo + (up-lo)/2 // stagnating: force a bisection step
				side = 0
				w.stats.Bisections++
			}
			checkWidth = up - lo
			sinceCheck = 0
		}
		if x == 0 { //pubopt:allow(floatcmp): x=0 is the exact not-yet-chosen sentinel set two branches up, never a computed level
			x = (lo*fup - up*flo) / (fup - flo)
			if !(x > lo && x < up) {
				x = lo + (up-lo)/2
				side = 0
				w.stats.Bisections++
			}
		}
		sinceCheck++
		fx := w.aggregateAt(x) - nu
		switch {
		case fx == 0: //pubopt:allow(floatcmp): exact residual zero is the root
			w.stats.Residual = 0
			return x
		case fx < 0:
			lo, flo = x, fx
			if side < 0 {
				fup /= 2
			}
			side = -1
		default:
			up, fup = x, fx
			if side > 0 {
				flo /= 2
			}
			side = 1
		}
	}
	// The residual bound is the smaller endpoint magnitude of the final
	// bracket: the returned midpoint's |aggregate−ν| cannot exceed it, and
	// reading it costs no extra aggregate evaluation.
	if r := math.Abs(flo); r < math.Abs(fup) {
		w.stats.Residual = r
	} else {
		w.stats.Residual = math.Abs(fup)
	}
	return lo + (up-lo)/2
}

// maxLevelIter caps the hybrid search. The stagnation safeguard halves the
// bracket at least once every eight evaluations, so the budget covers far
// more than the 50 halvings a full-range bisection needs; in practice the
// Illinois steps finish a cold solve in ~10 evaluations and a warm solve
// in a handful.
const maxLevelIter = 400
