package alloc

import (
	"testing"

	"github.com/netecon-sim/publicoption/internal/traffic"
)

// The kernel microbenchmarks are CI's performance probes for the hot solve
// path: CI extracts them (with -benchmem) into BENCH_core.json and fails
// the build if the warm-solve kernel reports any allocations per op. Run
// locally with
//
//	go test -run '^$' -bench 'BenchmarkKernel|BenchmarkReference' -benchmem ./internal/alloc
//
// See docs/PERFORMANCE.md for how to read the numbers.

func benchPopulation() traffic.Population {
	return traffic.PaperPopulation(traffic.PhiCorrelated) // 1000 CPs, §III-E
}

// BenchmarkReferenceSolve1000 times the reference bisection (Solve): the
// pre-kernel baseline every Workspace number is compared against.
func BenchmarkReferenceSolve1000(b *testing.B) {
	pop := benchPopulation()
	nu := 0.5 * pop.TotalUnconstrainedPerCapita()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(MaxMin{}, nu, pop)
	}
}

// BenchmarkKernelColdSolve1000 times a cold Workspace solve: warm state is
// dropped every iteration, so the root search starts from the analytic
// [0, LevelHi] bracket. Buffers are still reused (that is the workspace's
// job), so allocs/op stays 0.
func BenchmarkKernelColdSolve1000(b *testing.B) {
	pop := benchPopulation()
	nu := 0.5 * pop.TotalUnconstrainedPerCapita()
	w := NewWorkspace(MaxMin{})
	w.Solve(nu, pop) // size the buffers before the measured region
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		w.Solve(nu, pop)
	}
}

// BenchmarkKernelWarmSolve1000 is the headline warm path: successive solves
// at slowly moving capacity, exactly the access pattern of sweeps and the
// class dynamics. CI asserts 0 allocs/op on this benchmark.
func BenchmarkKernelWarmSolve1000(b *testing.B) {
	pop := benchPopulation()
	total := pop.TotalUnconstrainedPerCapita()
	nus := []float64{0.49 * total, 0.5 * total, 0.51 * total}
	w := NewWorkspace(MaxMin{})
	w.Solve(nus[0], pop)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Solve(nus[i%len(nus)], pop)
	}
}

// BenchmarkKernelWarmSolveAlphaFair1000 exercises the flattened path where
// the old interface loop was most expensive (a math.Pow per CP per
// evaluation, hoisted to one per CP per solve).
func BenchmarkKernelWarmSolveAlphaFair1000(b *testing.B) {
	pop := benchPopulation()
	total := pop.TotalUnconstrainedPerCapita()
	nus := []float64{0.49 * total, 0.5 * total, 0.51 * total}
	w := NewWorkspace(AlphaFair{Alpha: 2, Weights: WeightByThetaHat})
	w.Solve(nus[0], pop)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Solve(nus[i%len(nus)], pop)
	}
}
