package validate

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits the reports' verdicts in long form — one row per
// comparison, trivially loadable by any analysis tool. Skipped links carry
// no verdicts and do not appear; the text rendering reports them.
func WriteCSV(w io.Writer, reports ...*Report) error {
	cw := csv.NewWriter(w)
	header := []string{"scenario", "cell", "link", "cp", "metric", "fluid", "packet", "error", "tolerance", "pass"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("validate: writing CSV header: %w", err)
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
	for _, r := range reports {
		for i := range r.Samples {
			for _, v := range r.Samples[i].Verdicts {
				row := []string{
					v.Scenario, v.Cell, v.Link, v.CP, v.Metric,
					g(v.Fluid), g(v.Packet), g(v.Err), g(v.Tol),
					strconv.FormatBool(v.Pass),
				}
				if err := cw.Write(row); err != nil {
					return fmt.Errorf("validate: writing CSV row: %w", err)
				}
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("validate: flushing CSV: %w", err)
	}
	return nil
}

// WriteJSON emits the reports as an indented JSON array.
func WriteJSON(w io.Writer, reports ...*Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reports); err != nil {
		return fmt.Errorf("validate: encoding JSON: %w", err)
	}
	return nil
}

// WriteText renders one report as a human-readable summary: a one-line
// header plus one line per link, with every failing verdict spelled out.
func WriteText(w io.Writer, r *Report) error {
	verdicts, failed := r.Counts()
	links, skipped := 0, 0
	for i := range r.Samples {
		if r.Samples[i].Skipped != "" {
			skipped++
		} else {
			links++
		}
	}
	status := "PASS"
	if failed > 0 {
		status = fmt.Sprintf("FAIL (%d)", failed)
	}
	if _, err := fmt.Fprintf(w, "== %s: %d links, %d verdicts, %s\n", r.Scenario, links, verdicts, status); err != nil {
		return err
	}
	for i := range r.Samples {
		s := &r.Samples[i]
		if s.Skipped != "" {
			fmt.Fprintf(w, "   skip %-28s %-22s %s\n", s.Cell, s.Link, s.Skipped)
			continue
		}
		worst := 0.0 // worst error as a fraction of its tolerance
		mark := "ok  "
		for _, v := range s.Verdicts {
			if v.Tol > 0 && v.Err/v.Tol > worst {
				worst = v.Err / v.Tol
			}
			if !v.Pass {
				mark = "FAIL"
			}
		}
		fmt.Fprintf(w, "   %s %-28s %-22s flows=%-4d cps=%-3d worst=%.0f%% of tol\n",
			mark, s.Cell, s.Link, s.FlowCount, s.Compared, 100*worst)
		for _, v := range s.Verdicts {
			if !v.Pass {
				fmt.Fprintf(w, "   FAIL %s %s: fluid=%.6g packet=%.6g err=%.3g tol=%.3g\n",
					v.CP, v.Metric, v.Fluid, v.Packet, v.Err, v.Tol)
			}
		}
	}
	return nil
}
