package validate

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/netecon-sim/publicoption/internal/alloc"
	"github.com/netecon-sim/publicoption/internal/scenario"
)

// testOptions keeps the simulation windows short; the warm-started windows
// settle well within a few seconds of simulated time.
func testOptions() Options {
	return Options{Samples: 2, Warmup: 3, Measure: 10, Flows: 160}
}

// mustScenario fetches a built-in scenario or fails the test.
func mustScenario(t *testing.T, name string) *scenario.Scenario {
	t.Helper()
	s, ok := scenario.Get(name)
	if !ok {
		t.Fatalf("built-in scenario %q missing", name)
	}
	return s
}

// TestScenarioAgreement drives the harness over built-in scenarios of
// different shapes — a neutral absolute-unit monopoly, a premium-class
// duopoly with a Public Option, and a 2-D sizing grid — asserting the
// fluid and packet substrates agree within the default tolerances.
func TestScenarioAgreement(t *testing.T) {
	for _, tc := range []struct {
		name string
		cps  int // ensemble size override (0 = none)
	}{
		{name: "archetypes-capacity"},
		{name: "public-option-duopoly", cps: 24},
		{name: "po-sizing-gamma-nu", cps: 24},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := mustScenario(t, tc.name)
			if tc.cps > 0 {
				if err := s.ApplyEnsembleOverrides(0, tc.cps); err != nil {
					t.Fatal(err)
				}
			}
			rep, err := Scenario(s, testOptions())
			if err != nil {
				t.Fatal(err)
			}
			verdicts, failed := rep.Counts()
			if verdicts == 0 {
				t.Fatal("no verdicts produced")
			}
			for _, v := range rep.Failures() {
				t.Errorf("%s %s %s %s: fluid=%.6g packet=%.6g err=%.3g tol=%.3g",
					v.Cell, v.Link, v.CP, v.Metric, v.Fluid, v.Packet, v.Err, v.Tol)
			}
			if failed == 0 {
				var worst float64
				for i := range rep.Samples {
					for _, v := range rep.Samples[i].Verdicts {
						if v.Tol > 0 && v.Err/v.Tol > worst {
							worst = v.Err / v.Tol
						}
					}
				}
				t.Logf("%d verdicts, worst error at %.0f%% of tolerance", verdicts, 100*worst)
			}
		})
	}
}

// TestRegulationScenarioAgreement exercises the regime-comparison path on a
// trimmed regime list (the full five-regime battery is CLI territory).
func TestRegulationScenarioAgreement(t *testing.T) {
	s := mustScenario(t, "regimes-comparison")
	if err := s.ApplyEnsembleOverrides(0, 24); err != nil {
		t.Fatal(err)
	}
	s.Regulation.Regimes = []string{"neutral", "unregulated"}
	opt := testOptions()
	opt.Samples = 1
	rep, err := Scenario(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := rep.Counts(); v == 0 {
		t.Fatal("no verdicts produced")
	}
	for _, v := range rep.Failures() {
		t.Errorf("%s %s %s %s: fluid=%.6g packet=%.6g err=%.3g tol=%.3g",
			v.Cell, v.Link, v.CP, v.Metric, v.Fluid, v.Packet, v.Err, v.Tol)
	}
}

// TestHarnessDetectsDivergence is the falsifiability check: replaying a
// deliberately wrong equilibrium — θ shares far from what max-min dynamics
// produce — must fail verdicts. If this test ever passes a doctored
// equilibrium, the harness has lost its power to catch a kernel/simulator
// divergence.
func TestHarnessDetectsDivergence(t *testing.T) {
	s := mustScenario(t, "archetypes-capacity")
	links, err := s.SampleEquilibria(scenario.SampleOptions{MaxCells: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(links) == 0 {
		t.Fatal("no links sampled")
	}
	doctored := links[0].Eq.Clone()
	if !doctored.Constrained {
		t.Fatal("sampled link is unconstrained; pick a constrained cell for the divergence check")
	}
	// Skew the θ profile hard while preserving order of magnitude: the
	// packet dynamics will still converge to the true max-min shares, so
	// the doctored fluid reference must miss tolerance.
	for i := range doctored.Theta {
		if i%2 == 0 {
			doctored.Theta[i] *= 0.4
		} else {
			doctored.Theta[i] *= 1.6
		}
	}
	lr, err := ReplayEquilibrium(doctored, alloc.MaxMin{}, 1, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, v := range lr.Verdicts {
		if !v.Pass {
			failed++
		}
	}
	if failed == 0 {
		t.Fatalf("doctored equilibrium passed all %d verdicts; the harness cannot detect divergence", len(lr.Verdicts))
	}
}

// TestCheckMechanism pins which mechanisms the packet replay claims to
// cover.
func TestCheckMechanism(t *testing.T) {
	if err := CheckMechanism(nil); err != nil {
		t.Errorf("nil (default max-min): %v", err)
	}
	if err := CheckMechanism(alloc.MaxMin{}); err != nil {
		t.Errorf("MaxMin: %v", err)
	}
	if err := CheckMechanism(alloc.AlphaFair{Alpha: 2}); err != nil {
		t.Errorf("unweighted AlphaFair (≡ max-min): %v", err)
	}
	if err := CheckMechanism(alloc.AlphaFair{Alpha: 1, Weights: alloc.WeightByThetaHat}); err == nil {
		t.Error("weighted AlphaFair accepted; it has no packet discipline")
	}
	if err := CheckMechanism(alloc.PerCPMaxMin{}); err == nil {
		t.Error("PerCPMaxMin accepted; it has no packet discipline")
	}
}

// TestReportRendering checks the CSV and JSON serializations round-trip
// the verdicts.
func TestReportRendering(t *testing.T) {
	s := mustScenario(t, "archetypes-capacity")
	opt := testOptions()
	opt.Samples = 1
	rep, err := Scenario(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, rep); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	wantHeader := "scenario,cell,link,cp,metric,fluid,packet,error,tolerance,pass"
	if lines[0] != wantHeader {
		t.Errorf("CSV header = %q, want %q", lines[0], wantHeader)
	}
	verdicts, _ := rep.Counts()
	if got := len(lines) - 1; got != verdicts {
		t.Errorf("CSV has %d data rows, want %d verdicts", got, verdicts)
	}

	var jsonBuf bytes.Buffer
	if err := WriteJSON(&jsonBuf, rep); err != nil {
		t.Fatal(err)
	}
	var decoded []Report
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON does not parse: %v", err)
	}
	if len(decoded) != 1 || decoded[0].Scenario != rep.Scenario {
		t.Errorf("JSON round-trip lost the report: %+v", decoded)
	}
	if v, _ := decoded[0].Counts(); v != verdicts {
		t.Errorf("JSON round-trip has %d verdicts, want %d", v, verdicts)
	}

	var txt bytes.Buffer
	if err := WriteText(&txt, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), rep.Scenario) {
		t.Errorf("text rendering missing scenario name:\n%s", txt.String())
	}
}
