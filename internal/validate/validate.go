// Package validate is the Tier-2 verification harness: it samples solved
// fluid equilibria out of scenarios (internal/scenario), replays each
// through the packet-level AIMD simulator (internal/netsim) with a
// many-flow population derived from the equilibrium's rates and θ shares,
// and checks per-CP throughput and rate agreement within configurable
// tolerances.
//
// This converts the paper's central modelling assumption (§II-D.2, that
// TCP-like dynamics realize the max-min rate equilibrium of Theorem 1)
// from a solver-vs-solver claim into one a simulation can falsify: if the
// equilibrium kernel and the congestion-control dynamics ever diverge, the
// replay's verdicts fail. See docs/VALIDATION.md for the tolerance
// methodology.
package validate

import (
	"errors"
	"fmt"
	"math"

	"github.com/netecon-sim/publicoption/internal/alloc"
	"github.com/netecon-sim/publicoption/internal/netsim"
	"github.com/netecon-sim/publicoption/internal/scenario"
	"github.com/netecon-sim/publicoption/internal/sweep"
)

// Options parameterizes a validation run. Zero fields take defaults.
type Options struct {
	// Samples bounds how many sweep cells are solved and replayed per
	// scenario (a deterministic subsample; see scenario.SampleOptions).
	// Default 3.
	Samples int
	// Seed drives the cell subsample and the simulator RNG. Default 1.
	Seed uint64
	// Flows is the target flow count per replayed link. Default 192.
	Flows int
	// RTT is the flows' base round-trip time in seconds. Default 0.05.
	RTT float64
	// RelTol, AbsTol and NoiseTol define the agreement band: a verdict
	// passes iff |packet − fluid| ≤ RelTol·|fluid| + (AbsTol + NoiseTol/√n)·scale,
	// where scale is the link's largest fluid value of the same metric and
	// n the flow count behind the packet-side estimate. The 1/√n term is
	// the statistical allowance: a per-CP mean over few discrete AIMD
	// sawteeth carries loss-event sampling noise that vanishes as the flow
	// population grows. Defaults 0.12 / 0.04 / 0.35 (see docs/VALIDATION.md
	// for how these were calibrated).
	RelTol   float64
	AbsTol   float64
	NoiseTol float64
	// CapSlack allows for the one systematic fluid/packet discrepancy: an
	// AIMD flow whose application cap lies below its sawtooth peak (4/3 of
	// the fair share) stays pressed against the cap and delivers a few
	// percent less than the fluid water-fill grants it; at a shared
	// droptail queue that slack is picked up by the cap-free flows. Elastic
	// CPs therefore get an extra allowance of
	// CapSlack·(cap-limited fluid traffic)/(cap-free flow count) on a
	// constrained link. Default 0.10 (caps may underdeliver by up to 10%).
	CapSlack float64
	// MinFlows excludes CPs fielding fewer flows from comparison (they are
	// still simulated): the fluid model is a continuum, and a per-CP mean
	// over one or two discrete AIMD sawteeth says nothing about the
	// equilibrium even with the NoiseTol allowance. Default 3.
	MinFlows int
	// Warmup and Measure are the simulator windows in seconds. Defaults
	// 5 / 15 (shorter than the simulator's own defaults; the warm-started
	// windows make long warmups unnecessary).
	Warmup, Measure float64
	// Workers bounds parallel link replays. 0 means GOMAXPROCS.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Samples <= 0 {
		o.Samples = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Flows <= 0 {
		o.Flows = 192
	}
	if o.RTT <= 0 {
		o.RTT = 0.05
	}
	if o.RelTol <= 0 {
		o.RelTol = 0.12
	}
	if o.AbsTol <= 0 {
		o.AbsTol = 0.04
	}
	if o.NoiseTol <= 0 {
		o.NoiseTol = 0.35
	}
	if o.CapSlack <= 0 {
		o.CapSlack = 0.10
	}
	if o.MinFlows <= 0 {
		o.MinFlows = 3
	}
	if o.Warmup <= 0 {
		o.Warmup = 5
	}
	if o.Measure <= 0 {
		o.Measure = 15
	}
	return o
}

// Verdict is one fluid-vs-packet comparison: a metric of one CP (or of the
// whole link) on one replayed bottleneck.
type Verdict struct {
	Scenario string `json:"scenario"`
	Cell     string `json:"cell"`
	Link     string `json:"link"`
	// CP is the content provider compared, or "link" for link-level
	// metrics.
	CP string `json:"cp"`
	// Metric is "theta" (per-flow throughput), "rate" (the CP's delivered
	// share of link capacity), or "utilization" (link-level).
	Metric string  `json:"metric"`
	Fluid  float64 `json:"fluid"`  // the solver's equilibrium value
	Packet float64 `json:"packet"` // the simulator's measured value
	Err    float64 `json:"error"`  // |packet − fluid|
	Tol    float64 `json:"tolerance"`
	Pass   bool    `json:"pass"`
}

// LinkResult is the replay outcome of one sampled link.
type LinkResult struct {
	Scenario string `json:"scenario"`
	Cell     string `json:"cell"`
	Link     string `json:"link"`
	// FlowCount is the simulated flow population size; Compared counts the
	// CPs with enough flows to be held to tolerance.
	FlowCount int `json:"flows"`
	Compared  int `json:"compared_cps"`
	// Skipped is non-empty when the link was not replayed (no active
	// demand at the sampled cell), with the reason.
	Skipped  string    `json:"skipped,omitempty"`
	Verdicts []Verdict `json:"verdicts,omitempty"`
}

// CheckMechanism reports whether the packet simulator has a discipline
// matching the allocation mechanism. AIMD flows at a shared FIFO
// bottleneck realize max-min fairness, which also covers unweighted α-fair
// allocation — under unit weights every α yields exactly the max-min
// profile (see alloc.AlphaFair). Weighted mechanisms have no TCP
// counterpart here and are rejected.
func CheckMechanism(a alloc.Allocator) error {
	switch m := a.(type) {
	case nil:
		return nil // callers' nil convention means max-min (core.NewSolver)
	case alloc.MaxMin:
		return nil
	case alloc.AlphaFair:
		if m.Weights == nil {
			return nil
		}
		return fmt.Errorf("validate: weighted α-fair allocation has no matching packet discipline")
	default:
		return fmt.Errorf("validate: allocation mechanism %q has no matching packet discipline", a.Name())
	}
}

// ReplayEquilibrium replays one fluid equilibrium through the packet
// simulator and compares per-CP throughputs (θ), delivered rate shares,
// and link utilization against the solver's values. The Scenario/Cell/Link
// labels of the result are left empty for the caller to stamp. A link
// whose equilibrium has no active demand is reported as skipped, not an
// error.
func ReplayEquilibrium(eq *alloc.Result, mech alloc.Allocator, seed uint64, opt Options) (*LinkResult, error) {
	opt = opt.withDefaults()
	if err := CheckMechanism(mech); err != nil {
		return nil, err
	}
	plan, err := netsim.PlanEquilibrium(eq, netsim.PlanConfig{TargetFlows: opt.Flows, RTT: opt.RTT})
	if errors.Is(err, netsim.ErrNoDemand) {
		return &LinkResult{Skipped: err.Error()}, nil
	}
	if err != nil {
		return nil, err
	}
	cfg := plan.SimConfig(seed)
	cfg.Warmup, cfg.Measure = opt.Warmup, opt.Measure
	res, err := netsim.Run(cfg, plan.Flows)
	if err != nil {
		return nil, err
	}
	mean, delivered, err := plan.MeasureByOwner(res)
	if err != nil {
		return nil, err
	}

	lr := &LinkResult{FlowCount: len(plan.Flows)}
	// Tolerance scales: the link's largest fluid value per metric, so
	// near-zero fluid values (tightly capped CPs) are judged against the
	// link's operating point rather than against themselves.
	var thetaScale, rateScale, fluidTotal float64
	for i, n := range plan.Counts {
		if n == 0 {
			continue
		}
		fluidTotal += float64(n) * plan.Theta[i]
		if plan.Theta[i] > thetaScale {
			thetaScale = plan.Theta[i]
		}
		if share := float64(n) * plan.Theta[i] / plan.Capacity; share > rateScale {
			rateScale = share
		}
	}
	// Cap-slack allowance (see Options.CapSlack): on a constrained link,
	// flows whose cap θ̂ sits below the AIMD sawtooth peak (4/3 of the
	// water level) systematically underdeliver a little, and cap-free
	// flows absorb the difference.
	capLimited := func(i int) bool {
		return eq.Constrained && eq.Pop[i].ThetaHat < 4.0/3.0*eq.Level
	}
	var cappedTraffic float64
	elasticFlows := 0
	for i, n := range plan.Counts {
		if n == 0 {
			continue
		}
		if capLimited(i) {
			cappedTraffic += float64(n) * plan.Theta[i]
		} else {
			elasticFlows += n
		}
	}
	var slack float64
	if elasticFlows > 0 {
		slack = opt.CapSlack * cappedTraffic / float64(elasticFlows)
	}

	verdict := func(cp, metric string, fluid, packet, scale, extra float64, n int) {
		e := math.Abs(packet - fluid)
		tol := opt.RelTol*math.Abs(fluid) + (opt.AbsTol+opt.NoiseTol/math.Sqrt(float64(n)))*scale + extra
		lr.Verdicts = append(lr.Verdicts, Verdict{
			CP: cp, Metric: metric,
			Fluid: fluid, Packet: packet, Err: e, Tol: tol, Pass: e <= tol,
		})
	}
	for i := range eq.Pop {
		n := plan.Counts[i]
		if n < opt.MinFlows {
			continue
		}
		lr.Compared++
		var extra float64
		if !capLimited(i) {
			extra = slack
		}
		verdict(eq.Pop[i].Name, "theta", plan.Theta[i], mean[i], thetaScale, extra, n)
		verdict(eq.Pop[i].Name, "rate", float64(n)*plan.Theta[i]/plan.Capacity, delivered[i]/plan.Capacity, rateScale, float64(n)*extra/plan.Capacity, n)
	}
	verdict("link", "utilization", fluidTotal/plan.Capacity, res.Utilization, 1, 0, len(plan.Flows))
	return lr, nil
}

// Report is the validation outcome of one scenario: one LinkResult per
// sampled link.
type Report struct {
	Scenario string       `json:"scenario"`
	Samples  []LinkResult `json:"samples"`
}

// Counts returns the total and failed verdict counts.
func (r *Report) Counts() (verdicts, failed int) {
	for i := range r.Samples {
		for _, v := range r.Samples[i].Verdicts {
			verdicts++
			if !v.Pass {
				failed++
			}
		}
	}
	return verdicts, failed
}

// Failures returns the failing verdicts.
func (r *Report) Failures() []Verdict {
	var out []Verdict
	for i := range r.Samples {
		for _, v := range r.Samples[i].Verdicts {
			if !v.Pass {
				out = append(out, v)
			}
		}
	}
	return out
}

// Scenario samples the scenario's solved equilibria and replays each
// sampled link through the packet simulator, in parallel across links.
// Scenarios whose equilibria cannot be sampled (batched populations)
// return an error.
func Scenario(s *scenario.Scenario, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	links, err := s.SampleEquilibria(scenario.SampleOptions{MaxCells: opt.Samples, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	rep := &Report{Scenario: s.Name, Samples: make([]LinkResult, len(links))}
	errs := make([]error, len(links))
	tasks := make([]func(), len(links))
	for i := range links {
		i := i
		tasks[i] = func() {
			l := &links[i]
			// Decorrelate per-link simulator seeds deterministically.
			lr, err := ReplayEquilibrium(l.Eq, alloc.MaxMin{}, opt.Seed+uint64(i)*0x9e3779b97f4a7c15, opt)
			if err != nil {
				errs[i] = fmt.Errorf("%s %s %s: %w", l.Scenario, l.Cell, l.Link(), err)
				return
			}
			lr.Scenario, lr.Cell, lr.Link = l.Scenario, l.Cell, l.Link()
			for vi := range lr.Verdicts {
				v := &lr.Verdicts[vi]
				v.Scenario, v.Cell, v.Link = lr.Scenario, lr.Cell, lr.Link
			}
			rep.Samples[i] = *lr
		}
	}
	sweep.RunParallel(opt.Workers, tasks)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rep, nil
}
