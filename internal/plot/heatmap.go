package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/netecon-sim/publicoption/internal/sweep"
)

// ramp orders heat symbols from cold (low values) to hot (high values).
const ramp = " .:-=+*#%@"

// cellWidth is how many columns each grid cell occupies; doubling the
// symbol keeps cells roughly square in terminal fonts.
const cellWidth = 2

// Heatmap renders one layer of a 2-D grid as an ASCII heatmap: rows ordered
// with the largest row-axis value on top (plot convention), cells shaded on
// a 10-symbol ramp normalized to the layer's finite range, with the axes'
// value ranges and the ramp legend below. An empty layer name selects the
// grid's first layer; an unknown one renders an error placeholder, so a
// typo'd -layer flag degrades visibly rather than panicking.
func Heatmap(g *sweep.Grid, layer string) string {
	if len(g.Layers) == 0 || len(g.Xs) == 0 || len(g.Ys) == 0 {
		return "(no data)\n"
	}
	if layer == "" {
		layer = g.Layers[0].Name
	}
	l := g.Layer(layer)
	if l == nil {
		return fmt.Sprintf("(no layer %q; have %s)\n", layer, layerNames(g))
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range l.Z {
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	var b strings.Builder
	if g.Title != "" {
		fmt.Fprintf(&b, "%s — %s\n", g.Title, layer)
	} else {
		fmt.Fprintf(&b, "%s\n", layer)
	}
	if math.IsInf(lo, 1) {
		b.WriteString("(no finite data)\n")
		return b.String()
	}
	span := hi - lo
	if span == 0 { //pubopt:allow(floatcmp): guard against dividing by an exactly-degenerate color span; near-ties scale fine
		span = 1
	}

	// Row order: largest row-axis value on top, whatever order Ys came in.
	order := make([]int, len(g.Ys))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, c int) bool { return g.Ys[order[a]] > g.Ys[order[c]] })

	labels := make([]string, len(g.Ys))
	pad := 0
	for i, y := range g.Ys {
		labels[i] = fmt.Sprintf("%.4g", y)
		if len(labels[i]) > pad {
			pad = len(labels[i])
		}
	}
	if axis := fmt.Sprintf("%s\\%s", g.YLabel, g.XLabel); len(axis) > pad {
		pad = len(axis)
	}

	fmt.Fprintf(&b, "%*s |\n", pad, fmt.Sprintf("%s\\%s", g.YLabel, g.XLabel))
	for _, r := range order {
		fmt.Fprintf(&b, "%*s |", pad, labels[r])
		for c := range g.Xs {
			v := l.Z[r][c]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				b.WriteString(strings.Repeat("?", cellWidth))
				continue
			}
			i := int((v - lo) / span * float64(len(ramp)-1))
			if i < 0 {
				i = 0
			} else if i >= len(ramp) {
				i = len(ramp) - 1
			}
			b.WriteString(strings.Repeat(string(ramp[i]), cellWidth))
		}
		b.WriteString("\n")
	}
	width := cellWidth * len(g.Xs)
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	xlo, xhi := fmt.Sprintf("%.4g", g.Xs[0]), fmt.Sprintf("%.4g", g.Xs[len(g.Xs)-1])
	gap := width - len(xlo) - len(xhi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", pad), xlo, strings.Repeat(" ", gap), xhi)
	fmt.Fprintf(&b, "%s  scale %.4g %q %.4g\n", strings.Repeat(" ", pad), lo, ramp, hi)
	return b.String()
}

// layerNames lists a grid's layer names for error messages.
func layerNames(g *sweep.Grid) string {
	names := make([]string, len(g.Layers))
	for i := range g.Layers {
		names[i] = g.Layers[i].Name
	}
	return strings.Join(names, ", ")
}
