package plot

import (
	"strings"
	"testing"

	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/sweep"
)

func demoTable() *sweep.Table {
	t := &sweep.Table{Title: "demo", XLabel: "x", YLabel: "y"}
	xs := numeric.Linspace(0, 10, 21)
	up := sweep.Map("up", xs, func(x float64) float64 { return x })
	down := sweep.Map("down", xs, func(x float64) float64 { return 10 - x })
	t.Add(up)
	t.Add(down)
	return t
}

func TestChartContainsStructure(t *testing.T) {
	out := Chart(demoTable(), 60, 15)
	for _, want := range []string{"demo", "*", "o", "up", "down", "+", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Axis range labels.
	if !strings.Contains(out, "10") || !strings.Contains(out, "0") {
		t.Errorf("chart missing range labels:\n%s", out)
	}
}

func TestChartEmptyTable(t *testing.T) {
	out := Chart(&sweep.Table{Title: "empty"}, 40, 10)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart output: %s", out)
	}
}

func TestChartConstantSeries(t *testing.T) {
	tbl := &sweep.Table{XLabel: "x", YLabel: "y"}
	tbl.Add(sweep.Series{Name: "flat", X: []float64{0, 1}, Y: []float64{5, 5}})
	out := Chart(tbl, 40, 8)
	if !strings.Contains(out, "*") {
		t.Errorf("constant series not drawn:\n%s", out)
	}
}

func TestChartHandlesNaN(t *testing.T) {
	tbl := &sweep.Table{XLabel: "x", YLabel: "y"}
	nan := []float64{0, 1, 2}
	ys := []float64{1, nanValue(), 3}
	tbl.Add(sweep.Series{Name: "gappy", X: nan, Y: ys})
	out := Chart(tbl, 40, 8)
	if strings.Contains(out, "NaN") {
		t.Errorf("NaN leaked into chart:\n%s", out)
	}
}

func nanValue() float64 {
	var z float64
	return z / z
}

func TestTextAlignsColumns(t *testing.T) {
	out := Text(demoTable(), 0)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + 21 rows.
	if len(lines) != 23 {
		t.Fatalf("got %d lines, want 23:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "up") || !strings.Contains(lines[1], "down") {
		t.Errorf("header missing series names: %q", lines[1])
	}
}

func TestTextSubsamples(t *testing.T) {
	out := Text(demoTable(), 5)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) > 10 {
		t.Fatalf("subsampled output too long: %d lines", len(lines))
	}
}

func TestTextEmpty(t *testing.T) {
	if out := Text(&sweep.Table{}, 0); !strings.Contains(out, "(no data)") {
		t.Errorf("empty table output: %s", out)
	}
}
