package plot

import (
	"math"
	"strings"
	"testing"

	"github.com/netecon-sim/publicoption/internal/sweep"
)

func testGrid() *sweep.Grid {
	g := sweep.NewGrid("t", "poshare", "nu", []float64{0.1, 0.2, 0.3}, []float64{1, 2}, []string{"phi", "share/a"})
	for r := range g.Ys {
		for c := range g.Xs {
			g.Layers[0].Z[r][c] = float64(r*3 + c)
		}
	}
	return g
}

func TestHeatmapLayout(t *testing.T) {
	out := Heatmap(testGrid(), "phi")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[0], "t — phi") {
		t.Fatalf("title line %q", lines[0])
	}
	if !strings.Contains(out, "nu\\poshare") {
		t.Fatalf("axis corner label missing:\n%s", out)
	}
	// Largest ν on top: the row labeled 2 precedes the row labeled 1
	// (labels are right-aligned against the axis bar).
	i2, i1 := strings.Index(out, " 2 |"), strings.Index(out, " 1 |")
	if i2 == -1 || i1 == -1 || i2 > i1 {
		t.Fatalf("rows not ordered largest-on-top:\n%s", out)
	}
	// The maximum cell (row ν=2, col 2, value 5) renders the hottest symbol,
	// the minimum (0) the coldest (blank).
	if !strings.Contains(out, "@@") {
		t.Fatalf("max cell not rendered hot:\n%s", out)
	}
	if !strings.Contains(out, "scale 0 ") || !strings.Contains(out, " 5") {
		t.Fatalf("scale legend missing range:\n%s", out)
	}
	if !strings.Contains(out, "0.1") || !strings.Contains(out, "0.3") {
		t.Fatalf("x range labels missing:\n%s", out)
	}
}

func TestHeatmapDefaultAndUnknownLayer(t *testing.T) {
	g := testGrid()
	if def, first := Heatmap(g, ""), Heatmap(g, "phi"); def != first {
		t.Fatal("empty layer name does not select the first layer")
	}
	out := Heatmap(g, "nope")
	if !strings.Contains(out, `"nope"`) || !strings.Contains(out, "share/a") {
		t.Fatalf("unknown layer message unhelpful: %q", out)
	}
}

func TestHeatmapDegenerateInputs(t *testing.T) {
	empty := sweep.NewGrid("t", "x", "y", nil, nil, nil)
	if out := Heatmap(empty, ""); !strings.Contains(out, "no data") {
		t.Fatalf("empty grid: %q", out)
	}
	g := sweep.NewGrid("t", "x", "y", []float64{1}, []float64{2}, []string{"phi"})
	g.Layers[0].Z[0][0] = math.NaN()
	if out := Heatmap(g, "phi"); !strings.Contains(out, "no finite data") {
		t.Fatalf("all-NaN layer: %q", out)
	}
	// Constant layers must not divide by zero.
	g.Layers[0].Z[0][0] = 7
	if out := Heatmap(g, "phi"); !strings.Contains(out, "scale 7") {
		t.Fatalf("constant layer: %q", out)
	}
	// A NaN cell among finite ones renders as '?'.
	g2 := sweep.NewGrid("t", "x", "y", []float64{1, 2}, []float64{3}, []string{"phi"})
	g2.Layers[0].Z[0][0] = 1
	g2.Layers[0].Z[0][1] = math.NaN()
	if out := Heatmap(g2, "phi"); !strings.Contains(out, "??") {
		t.Fatalf("NaN cell not marked: %q", out)
	}
}
