// Package plot renders sweep tables as terminal line charts and aligned
// text tables. The repository may not use plotting libraries (stdlib only),
// so figures are reproduced as ASCII charts plus CSV for external tooling.
package plot

import (
	"fmt"
	"math"
	"strings"
	"text/tabwriter"

	"github.com/netecon-sim/publicoption/internal/sweep"
)

// symbols mark successive series in a chart.
var symbols = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart renders the table as a width×height ASCII line chart with axes,
// ranges and a legend. Series beyond the symbol set reuse symbols.
func Chart(t *sweep.Table, width, height int) string {
	if width < 20 {
		width = 72
	}
	if height < 5 {
		height = 20
	}
	var (
		xmin, xmax = math.Inf(1), math.Inf(-1)
		ymin, ymax = math.Inf(1), math.Inf(-1)
		hasData    bool
	)
	for _, s := range t.Series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			hasData = true
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	if !hasData {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if xmax == xmin { //pubopt:allow(floatcmp): exact degenerate x-range guard before scaling; near-ties divide fine
		xmax = xmin + 1
	}
	if ymax == ymin { //pubopt:allow(floatcmp): exact degenerate y-range guard before scaling; near-ties divide fine
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range t.Series {
		sym := symbols[si%len(symbols)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(width-1)))
			row := int(math.Round((s.Y[i] - ymin) / (ymax - ymin) * float64(height-1)))
			r := height - 1 - row
			if r >= 0 && r < height && col >= 0 && col < width {
				grid[r][col] = sym
			}
		}
	}
	yloLabel := fmt.Sprintf("%.4g", ymin)
	yhiLabel := fmt.Sprintf("%.4g", ymax)
	pad := len(yhiLabel)
	if len(yloLabel) > pad {
		pad = len(yloLabel)
	}
	for r := range grid {
		label := strings.Repeat(" ", pad)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", pad, yhiLabel)
		case height - 1:
			label = fmt.Sprintf("%*s", pad, yloLabel)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", pad), width-len(fmt.Sprintf("%.4g", xmax)), fmt.Sprintf("%.4g", xmin), fmt.Sprintf("%.4g", xmax))
	if t.XLabel != "" || t.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s, y: %s\n", strings.Repeat(" ", pad), t.XLabel, t.YLabel)
	}
	for si, s := range t.Series {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", pad), symbols[si%len(symbols)], s.Name)
	}
	return b.String()
}

// Text renders the table as aligned columns: one x column and one column
// per series. Series are sampled at their own indices; tables whose series
// share an x grid (all figure tables here) align exactly. maxRows caps the
// output by uniform subsampling (0 means all rows).
func Text(t *sweep.Table, maxRows int) string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	if len(t.Series) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	// Every cell is tab-terminated (including the last per line): tabwriter
	// excludes trailing unterminated cells from column layout, which would
	// jam the final column against its neighbor.
	fmt.Fprintf(tw, "%s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(tw, "\t%s", s.Name)
	}
	fmt.Fprintln(tw, "\t")
	n := 0
	for _, s := range t.Series {
		if s.Len() > n {
			n = s.Len()
		}
	}
	stride := 1
	if maxRows > 0 && n > maxRows {
		stride = (n + maxRows - 1) / maxRows
	}
	for i := 0; i < n; i += stride {
		x := math.NaN()
		for _, s := range t.Series {
			if i < s.Len() {
				x = s.X[i]
				break
			}
		}
		fmt.Fprintf(tw, "%.5g", x)
		for _, s := range t.Series {
			if i < s.Len() {
				fmt.Fprintf(tw, "\t%.5g", s.Y[i])
			} else {
				fmt.Fprintf(tw, "\t")
			}
		}
		fmt.Fprintln(tw, "\t")
	}
	tw.Flush()
	return b.String()
}
