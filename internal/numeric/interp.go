package numeric

import (
	"errors"
	"fmt"
	"sort"
)

// ErrOutOfRange reports an interpolation query outside the knot range in
// checked (error) mode. Callers that need a hard domain boundary — e.g. the
// refinement surrogate rejecting off-grid queries instead of silently
// clamping them to the edge — test with errors.Is.
var ErrOutOfRange = errors.New("numeric: interpolation query outside the knot range")

// Interpolator evaluates a function fitted through sample points.
//
// Out-of-range queries come in two documented modes:
//
//   - clamp mode (At): the boundary value is extended (constant
//     extrapolation). This is the right default for plotting and for warm
//     sweeps that overshoot an axis edge by floating-point dust.
//   - checked mode (AtChecked): the query errors with ErrOutOfRange, so a
//     caller promising solver-verified accuracy inside the knot range never
//     silently reports an edge value for a point it knows nothing about.
type Interpolator interface {
	// At returns the interpolated value at x. Outside the sample range the
	// boundary value is extended (constant extrapolation) — clamp mode.
	At(x float64) float64
	// AtChecked is checked mode: inside the knot range it equals At; outside
	// it returns ErrOutOfRange (wrapped with the offending x and the range).
	AtChecked(x float64) (float64, error)
	// Bounds returns the knot range [lo, hi] within which At interpolates
	// (and outside of which it clamps). lo == hi for a single knot.
	Bounds() (lo, hi float64)
}

// LinearInterp is a piecewise-linear interpolator over strictly increasing
// sample abscissae.
type LinearInterp struct {
	xs, ys []float64
}

// NewLinearInterp builds a piecewise-linear interpolator through (xs, ys).
// xs must be strictly increasing and the slices non-empty and equal length;
// otherwise it panics, since malformed knots are a programming error.
func NewLinearInterp(xs, ys []float64) *LinearInterp {
	validateKnots(xs, ys)
	return &LinearInterp{xs: append([]float64(nil), xs...), ys: append([]float64(nil), ys...)}
}

// At returns the piecewise-linear value at x with constant extrapolation.
func (l *LinearInterp) At(x float64) float64 {
	if len(l.xs) == 1 {
		return l.ys[0]
	}
	i, t, ok := locate(l.xs, x)
	if !ok {
		if x <= l.xs[0] {
			return l.ys[0]
		}
		return l.ys[len(l.ys)-1]
	}
	return l.ys[i]*(1-t) + l.ys[i+1]*t
}

// Bounds returns the knot range of the interpolator.
func (l *LinearInterp) Bounds() (lo, hi float64) {
	return l.xs[0], l.xs[len(l.xs)-1]
}

// AtChecked is checked mode: it equals At inside the knot range and returns
// an error wrapping ErrOutOfRange outside it.
func (l *LinearInterp) AtChecked(x float64) (float64, error) {
	if err := checkRange(l.xs, x); err != nil {
		return 0, err
	}
	return l.At(x), nil
}

// PCHIP is a monotone piecewise-cubic Hermite interpolator (Fritsch–Carlson).
// Unlike natural cubic splines it never overshoots: if the data are
// monotone the interpolant is monotone, which is exactly the guarantee we
// need when interpolating equilibrium curves such as θ_i(ν) whose
// monotonicity is a theorem (Lemma 1).
type PCHIP struct {
	xs, ys, ds []float64 // knots, values, endpoint derivatives per knot
}

// NewPCHIP builds a monotone cubic interpolator through (xs, ys). The same
// knot validity rules as NewLinearInterp apply.
func NewPCHIP(xs, ys []float64) *PCHIP {
	validateKnots(xs, ys)
	n := len(xs)
	p := &PCHIP{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
		ds: make([]float64, n),
	}
	if n == 1 {
		return p
	}
	// Secant slopes.
	h := make([]float64, n-1)
	delta := make([]float64, n-1)
	for i := 0; i < n-1; i++ {
		h[i] = xs[i+1] - xs[i]
		delta[i] = (ys[i+1] - ys[i]) / h[i]
	}
	// Interior derivatives: weighted harmonic mean where slopes agree in
	// sign, zero otherwise (the Fritsch–Carlson monotonicity condition).
	for i := 1; i < n-1; i++ {
		if delta[i-1]*delta[i] <= 0 {
			p.ds[i] = 0
			continue
		}
		w1 := 2*h[i] + h[i-1]
		w2 := h[i] + 2*h[i-1]
		p.ds[i] = (w1 + w2) / (w1/delta[i-1] + w2/delta[i])
	}
	// One-sided endpoint derivatives, clamped to preserve monotonicity.
	p.ds[0] = endpointSlope(h[0], delta[0], hAt(h, 1), deltaAt(delta, 1))
	p.ds[n-1] = endpointSlope(h[n-2], delta[n-2], hAt(h, n-3), deltaAt(delta, n-3))
	return p
}

func hAt(h []float64, i int) float64 {
	if i < 0 || i >= len(h) {
		return 0
	}
	return h[i]
}

func deltaAt(d []float64, i int) float64 {
	if i < 0 || i >= len(d) {
		return 0
	}
	return d[i]
}

// endpointSlope implements the standard three-point endpoint formula with the
// Fritsch–Carlson clamps.
func endpointSlope(h0, d0, h1, d1 float64) float64 {
	if h1 == 0 { //pubopt:allow(floatcmp): h1=0 is the exact constructed-width sentinel for a single interval
		// Only one interval: use its secant slope.
		return d0
	}
	s := ((2*h0+h1)*d0 - h0*d1) / (h0 + h1)
	if s*d0 <= 0 {
		return 0
	}
	if d0*d1 <= 0 && absf(s) > 3*absf(d0) {
		return 3 * d0
	}
	return s
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// At evaluates the monotone cubic at x with constant extrapolation.
func (p *PCHIP) At(x float64) float64 {
	if len(p.xs) == 1 {
		return p.ys[0]
	}
	i, _, ok := locate(p.xs, x)
	if !ok {
		if x <= p.xs[0] {
			return p.ys[0]
		}
		return p.ys[len(p.ys)-1]
	}
	h := p.xs[i+1] - p.xs[i]
	t := (x - p.xs[i]) / h
	t2 := t * t
	t3 := t2 * t
	h00 := 2*t3 - 3*t2 + 1
	h10 := t3 - 2*t2 + t
	h01 := -2*t3 + 3*t2
	h11 := t3 - t2
	return h00*p.ys[i] + h10*h*p.ds[i] + h01*p.ys[i+1] + h11*h*p.ds[i+1]
}

// Bounds returns the knot range of the interpolator.
func (p *PCHIP) Bounds() (lo, hi float64) {
	return p.xs[0], p.xs[len(p.xs)-1]
}

// AtChecked is checked mode: it equals At inside the knot range and returns
// an error wrapping ErrOutOfRange outside it.
func (p *PCHIP) AtChecked(x float64) (float64, error) {
	if err := checkRange(p.xs, x); err != nil {
		return 0, err
	}
	return p.At(x), nil
}

// checkRange reports ErrOutOfRange (wrapped with the query and the knot
// range) when x falls outside [xs[0], xs[len-1]].
func checkRange(xs []float64, x float64) error {
	lo, hi := xs[0], xs[len(xs)-1]
	if x < lo || x > hi || x != x { //pubopt:allow(floatcmp): x != x is the NaN test; NaN must be rejected, not clamped
		return fmt.Errorf("%w: x=%g outside [%g, %g]", ErrOutOfRange, x, lo, hi)
	}
	return nil
}

// locate returns the index i of the interval [xs[i], xs[i+1]] containing x
// and the normalized position t within it. ok is false when x is outside the
// knot range.
func locate(xs []float64, x float64) (i int, t float64, ok bool) {
	if x < xs[0] || x > xs[len(xs)-1] {
		return 0, 0, false
	}
	// sort.SearchFloat64s finds the leftmost index with xs[idx] >= x.
	idx := sort.SearchFloat64s(xs, x)
	if idx == 0 {
		return 0, 0, true
	}
	if idx == len(xs) {
		idx = len(xs) - 1
	}
	i = idx - 1
	if xs[idx] == x { //pubopt:allow(floatcmp): exact knot hit; a near-miss must interpolate, not snap
		i = idx - 1
	}
	t = (x - xs[i]) / (xs[i+1] - xs[i])
	return i, t, true
}

func validateKnots(xs, ys []float64) {
	if len(xs) == 0 || len(xs) != len(ys) {
		panic("numeric: interpolator needs equal-length, non-empty knots")
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			panic("numeric: interpolator abscissae must be strictly increasing")
		}
	}
}
