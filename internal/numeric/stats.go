package numeric

import (
	"math"
	"sort"
)

// Kahan is a zero-allocation compensated-summation accumulator: the
// streaming form of Sum for hot paths that must not build a slice of terms
// (equilibrium aggregates, surplus metrics). The zero value is ready to
// use.
type Kahan struct {
	sum, comp float64
}

// Add folds x into the compensated sum.
func (k *Kahan) Add(x float64) {
	y := x - k.comp
	t := k.sum + y
	k.comp = (t - k.sum) - y
	k.sum = t
}

// Value returns the compensated sum so far.
func (k *Kahan) Value() float64 { return k.sum }

// Sum returns the Kahan-compensated sum of xs. Compensated summation keeps
// the per-capita surplus aggregations over 1000 CPs accurate enough that
// equilibrium comparisons at tolerance 1e-9 are meaningful.
func Sum(xs []float64) float64 {
	var k Kahan
	for _, x := range xs {
		k.Add(x)
	}
	return k.Value()
}

// Dot returns the Kahan-compensated dot product of a and b. It panics if the
// slices have different lengths.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("numeric: Dot called with mismatched lengths")
	}
	var k Kahan
	for i := range a {
		k.Add(a[i] * b[i])
	}
	return k.Value()
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// observations.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var acc float64
	for _, x := range xs {
		d := x - m
		acc += d * d
	}
	return acc / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest elements of xs. It panics on an
// empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("numeric: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice or
// q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("numeric: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("numeric: Quantile q outside [0,1]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	i := int(math.Floor(pos))
	if i >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := pos - float64(i)
	return s[i]*(1-frac) + s[i+1]*frac
}

// JainIndex returns Jain's fairness index (Σx)² / (n·Σx²) of the allocation
// xs: 1 for perfectly equal shares, 1/n when one flow has everything. It
// returns 1 for empty or all-zero allocations (nothing to be unfair about).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 { //pubopt:allow(floatcmp): all-zero rates are exactly representable; Jain's index is 1 by convention
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Linspace returns n evenly spaced values from lo to hi inclusive. n must be
// at least 2 (use []float64{lo} yourself for a single point).
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("numeric: Linspace needs n >= 2")
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	xs[n-1] = hi
	return xs
}

// ArgMax returns the index of the largest element of xs (first on ties). It
// panics on an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		panic("numeric: ArgMax of empty slice")
	}
	best := 0
	for i, x := range xs[1:] {
		if x > xs[best] {
			best = i + 1
		}
	}
	return best
}

// MaxDownwardGap returns sup{ys[i] − ys[j] : i < j}, the largest drop of the
// sampled curve ys, which is the paper's discontinuity metric ε_s (Eq. 9)
// evaluated on a grid: the largest amount by which the consumer-surplus curve
// Φ(ν) falls as capacity grows. It returns 0 for non-decreasing curves.
func MaxDownwardGap(ys []float64) float64 {
	var gap, runMax float64
	if len(ys) == 0 {
		return 0
	}
	runMax = ys[0]
	for _, y := range ys[1:] {
		if d := runMax - y; d > gap {
			gap = d
		}
		if y > runMax {
			runMax = y
		}
	}
	return gap
}

// AlmostEqual reports whether a and b agree to within tol absolutely, or
// relatively for large magnitudes.
func AlmostEqual(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*scale
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	return math.Min(math.Max(x, lo), hi)
}

// IsMonotoneNonDecreasing reports whether ys never decreases by more than
// slack between consecutive samples. Slack absorbs solver tolerance when the
// property holds only up to numerics.
func IsMonotoneNonDecreasing(ys []float64, slack float64) bool {
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1]-slack {
			return false
		}
	}
	return true
}
