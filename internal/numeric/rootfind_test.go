package numeric

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBisectLinear(t *testing.T) {
	root := Bisect(func(x float64) float64 { return x - 3 }, 0, 10, 1e-12)
	if math.Abs(root-3) > 1e-9 {
		t.Fatalf("root = %v, want 3", root)
	}
}

func TestBisectClampsLow(t *testing.T) {
	// f(lo) >= 0 already: the boundary is the answer.
	root := Bisect(func(x float64) float64 { return x + 1 }, 0, 10, 0)
	if root != 0 {
		t.Fatalf("root = %v, want clamp at 0", root)
	}
}

func TestBisectClampsHigh(t *testing.T) {
	root := Bisect(func(x float64) float64 { return x - 20 }, 0, 10, 0)
	if root != 10 {
		t.Fatalf("root = %v, want clamp at 10", root)
	}
}

func TestBisectSwappedBounds(t *testing.T) {
	root := Bisect(func(x float64) float64 { return x - 3 }, 10, 0, 1e-12)
	if math.Abs(root-3) > 1e-9 {
		t.Fatalf("root = %v, want 3 with swapped bounds", root)
	}
}

func TestBisectDecreasing(t *testing.T) {
	root := BisectDecreasing(func(x float64) float64 { return 5 - x }, 0, 10, 1e-12)
	if math.Abs(root-5) > 1e-9 {
		t.Fatalf("root = %v, want 5", root)
	}
}

func TestBisectNonlinearMonotone(t *testing.T) {
	// x^3 + x - 10 = 0 has root ~1.8637.
	f := func(x float64) float64 { return x*x*x + x - 10 }
	root := Bisect(f, 0, 5, 1e-12)
	if math.Abs(f(root)) > 1e-8 {
		t.Fatalf("f(root) = %v, not a root", f(root))
	}
}

func TestBisectStrictNoBracket(t *testing.T) {
	_, err := BisectStrict(func(x float64) float64 { return x*x + 1 }, -1, 1, 0)
	if !errors.Is(err, ErrNoBracket) {
		t.Fatalf("err = %v, want ErrNoBracket", err)
	}
}

func TestBisectStrictFindsRootOfNonMonotone(t *testing.T) {
	// sin has a root at pi inside [2, 4].
	root, err := BisectStrict(math.Sin, 2, 4, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Pi) > 1e-9 {
		t.Fatalf("root = %v, want pi", root)
	}
}

func TestBrentAgainstKnownRoots(t *testing.T) {
	cases := []struct {
		name   string
		f      func(float64) float64
		lo, hi float64
		want   float64
	}{
		{"linear", func(x float64) float64 { return 2*x - 8 }, 0, 10, 4},
		{"cubic", func(x float64) float64 { return (x - 1) * (x - 1) * (x - 1) }, 0, 3, 1},
		{"transcendental", func(x float64) float64 { return math.Exp(x) - 5 }, 0, 3, math.Log(5)},
		{"cos", math.Cos, 1, 2, math.Pi / 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			root, err := Brent(tc.f, tc.lo, tc.hi, 1e-13)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(root-tc.want) > 1e-8 {
				t.Fatalf("root = %v, want %v", root, tc.want)
			}
		})
	}
}

func TestBrentNoBracket(t *testing.T) {
	_, err := Brent(func(x float64) float64 { return 1 + x*x }, -1, 1, 0)
	if !errors.Is(err, ErrNoBracket) {
		t.Fatalf("err = %v, want ErrNoBracket", err)
	}
}

func TestBrentEndpointRoot(t *testing.T) {
	root, err := Brent(func(x float64) float64 { return x }, 0, 1, 0)
	if err != nil || root != 0 {
		t.Fatalf("root, err = %v, %v; want 0, nil", root, err)
	}
}

// Property: for random monotone cubics with a root inside the interval,
// Bisect and Brent agree.
func TestBisectBrentAgreeQuick(t *testing.T) {
	r := NewRNG(31)
	f := func() bool {
		a := r.Uniform(0.1, 3) // slope
		b := r.Uniform(-5, 5)  // root location
		g := func(x float64) float64 { return a * (x - b) * (1 + (x-b)*(x-b)) }
		bis := Bisect(g, -10, 10, 1e-12)
		bre, err := Brent(g, -10, 10, 1e-12)
		if err != nil {
			return false
		}
		return math.Abs(bis-bre) < 1e-6 && math.Abs(bis-b) < 1e-6
	}
	check := func() bool { return f() }
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedPointConverges(t *testing.T) {
	// x = cos(x) has the Dottie number fixed point ~0.739085.
	x, ok := FixedPoint(math.Cos, 0.5, 1, 1e-12, 1000)
	if !ok {
		t.Fatal("did not converge")
	}
	if math.Abs(x-0.7390851332151607) > 1e-9 {
		t.Fatalf("fixed point = %v", x)
	}
}

func TestFixedPointDampingStabilizes(t *testing.T) {
	// g(x) = -x oscillates forever undamped, but converges to 0 with damping.
	g := func(x float64) float64 { return -x }
	if _, ok := FixedPoint(g, 1, 1, 1e-12, 100); ok {
		t.Fatal("undamped iteration on g(x)=-x should not converge")
	}
	x, ok := FixedPoint(g, 1, 0.5, 1e-12, 100)
	if !ok || math.Abs(x) > 1e-9 {
		t.Fatalf("damped iteration: x=%v ok=%v", x, ok)
	}
}

func TestFixedPointReportsNonConvergence(t *testing.T) {
	g := func(x float64) float64 { return x + 1 } // no fixed point
	if _, ok := FixedPoint(g, 0, 1, 1e-12, 50); ok {
		t.Fatal("divergent map reported convergence")
	}
}
