package numeric

import (
	"errors"
	"math"
	"testing"
)

func TestLinearInterpExactAtKnots(t *testing.T) {
	xs := []float64{0, 1, 2, 4}
	ys := []float64{1, 3, 2, 8}
	li := NewLinearInterp(xs, ys)
	for i := range xs {
		if got := li.At(xs[i]); math.Abs(got-ys[i]) > 1e-12 {
			t.Fatalf("At(%v) = %v, want %v", xs[i], got, ys[i])
		}
	}
}

func TestLinearInterpMidpoint(t *testing.T) {
	li := NewLinearInterp([]float64{0, 2}, []float64{0, 10})
	if got := li.At(1); math.Abs(got-5) > 1e-12 {
		t.Fatalf("At(1) = %v, want 5", got)
	}
}

func TestLinearInterpExtrapolatesConstant(t *testing.T) {
	li := NewLinearInterp([]float64{1, 2}, []float64{5, 7})
	if li.At(-10) != 5 || li.At(100) != 7 {
		t.Fatal("constant extrapolation broken")
	}
}

func TestLinearInterpSingleKnot(t *testing.T) {
	li := NewLinearInterp([]float64{3}, []float64{9})
	if li.At(0) != 9 || li.At(3) != 9 || li.At(10) != 9 {
		t.Fatal("single-knot interpolation broken")
	}
}

func TestInterpPanicsOnBadKnots(t *testing.T) {
	cases := []struct {
		name   string
		xs, ys []float64
	}{
		{"empty", nil, nil},
		{"mismatched", []float64{1, 2}, []float64{1}},
		{"non-increasing", []float64{1, 1}, []float64{0, 0}},
		{"decreasing", []float64{2, 1}, []float64{0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			NewLinearInterp(tc.xs, tc.ys)
		})
	}
}

func TestPCHIPExactAtKnots(t *testing.T) {
	xs := []float64{0, 1, 3, 4, 7}
	ys := []float64{0, 2, 2.5, 6, 6.5}
	p := NewPCHIP(xs, ys)
	for i := range xs {
		if got := p.At(xs[i]); math.Abs(got-ys[i]) > 1e-10 {
			t.Fatalf("At(%v) = %v, want %v", xs[i], got, ys[i])
		}
	}
}

func TestPCHIPPreservesMonotonicity(t *testing.T) {
	// Data with a steep step: natural cubic splines overshoot here; PCHIP
	// must not.
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := []float64{0, 0.01, 0.02, 5, 5.01, 5.02}
	p := NewPCHIP(xs, ys)
	prev := p.At(0)
	for _, x := range Linspace(0, 5, 501)[1:] {
		cur := p.At(x)
		if cur < prev-1e-9 {
			t.Fatalf("PCHIP not monotone at x=%v: %v < %v", x, cur, prev)
		}
		if cur > 5.02+1e-9 || cur < -1e-9 {
			t.Fatalf("PCHIP overshoots data range at x=%v: %v", x, cur)
		}
		prev = cur
	}
}

func TestPCHIPFlatData(t *testing.T) {
	p := NewPCHIP([]float64{0, 1, 2}, []float64{4, 4, 4})
	for _, x := range []float64{0, 0.3, 1.7, 2} {
		if got := p.At(x); math.Abs(got-4) > 1e-12 {
			t.Fatalf("flat PCHIP At(%v)=%v", x, got)
		}
	}
}

func TestPCHIPNonMonotoneDataNoSpuriousExtrema(t *testing.T) {
	// A single hump: interpolant must stay within [min(ys), max(ys)].
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 1, 4, 1, 0}
	p := NewPCHIP(xs, ys)
	for _, x := range Linspace(0, 4, 401) {
		v := p.At(x)
		if v < -1e-9 || v > 4+1e-9 {
			t.Fatalf("PCHIP outside data hull at x=%v: %v", x, v)
		}
	}
}

func TestPCHIPTwoPointsIsLinear(t *testing.T) {
	p := NewPCHIP([]float64{0, 2}, []float64{0, 4})
	for _, x := range []float64{0, 0.5, 1, 1.5, 2} {
		if got := p.At(x); math.Abs(got-2*x) > 1e-9 {
			t.Fatalf("two-point PCHIP At(%v)=%v, want %v", x, got, 2*x)
		}
	}
}

func TestPCHIPSingleKnot(t *testing.T) {
	p := NewPCHIP([]float64{1}, []float64{2})
	if p.At(0) != 2 || p.At(1) != 2 || p.At(5) != 2 {
		t.Fatal("single-knot PCHIP broken")
	}
}

func TestPCHIPExtrapolatesConstant(t *testing.T) {
	p := NewPCHIP([]float64{0, 1, 2}, []float64{0, 1, 8})
	if p.At(-5) != 0 || p.At(9) != 8 {
		t.Fatal("PCHIP extrapolation should be constant")
	}
}

func TestPCHIPApproximatesSmoothFunction(t *testing.T) {
	xs := Linspace(0, math.Pi, 20)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Sin(x)
	}
	p := NewPCHIP(xs, ys)
	for _, x := range Linspace(0, math.Pi, 200) {
		if err := math.Abs(p.At(x) - math.Sin(x)); err > 5e-3 {
			t.Fatalf("PCHIP error %v at x=%v too large", err, x)
		}
	}
}

func TestInterpolatorClampVsCheckedModes(t *testing.T) {
	xs := []float64{0, 1, 3}
	ys := []float64{1, 2, 0}
	for _, tc := range []struct {
		name string
		itp  Interpolator
	}{
		{"linear", NewLinearInterp(xs, ys)},
		{"pchip", NewPCHIP(xs, ys)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if lo, hi := tc.itp.Bounds(); lo != 0 || hi != 3 {
				t.Fatalf("Bounds() = (%v, %v), want (0, 3)", lo, hi)
			}
			// Clamp mode: out-of-range queries extend the boundary value.
			if got := tc.itp.At(-2); got != ys[0] {
				t.Fatalf("At(-2) = %v, want clamped %v", got, ys[0])
			}
			if got := tc.itp.At(9); got != ys[len(ys)-1] {
				t.Fatalf("At(9) = %v, want clamped %v", got, ys[len(ys)-1])
			}
			// Checked mode: in range it agrees with At exactly...
			for _, x := range Linspace(0, 3, 17) {
				got, err := tc.itp.AtChecked(x)
				if err != nil {
					t.Fatalf("AtChecked(%v) unexpected error: %v", x, err)
				}
				if got != tc.itp.At(x) {
					t.Fatalf("AtChecked(%v) = %v disagrees with At = %v", x, got, tc.itp.At(x))
				}
			}
			// ...and out of range (or NaN) it reports ErrOutOfRange.
			for _, x := range []float64{-2, -1e-9, 3 + 1e-9, 9, math.NaN()} {
				if _, err := tc.itp.AtChecked(x); !errors.Is(err, ErrOutOfRange) {
					t.Fatalf("AtChecked(%v) error = %v, want ErrOutOfRange", x, err)
				}
			}
		})
	}
}

func TestAtCheckedSingleKnot(t *testing.T) {
	for _, itp := range []Interpolator{
		NewLinearInterp([]float64{2}, []float64{7}),
		NewPCHIP([]float64{2}, []float64{7}),
	} {
		if got, err := itp.AtChecked(2); err != nil || got != 7 {
			t.Fatalf("AtChecked(2) = (%v, %v), want (7, nil)", got, err)
		}
		if _, err := itp.AtChecked(2.5); !errors.Is(err, ErrOutOfRange) {
			t.Fatalf("AtChecked(2.5) error = %v, want ErrOutOfRange", err)
		}
	}
}
