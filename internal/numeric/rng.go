package numeric

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator based on
// SplitMix64 (Steele, Lea & Flood, OOPSLA 2014). It is used instead of
// math/rand so that experiment outputs are reproducible byte-for-byte across
// Go releases and platforms: the generator's output sequence is fully
// specified by its 64-bit seed.
//
// An RNG value is stateful and must not be shared between goroutines without
// external synchronization; use Split to derive independent streams.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds give streams
// that are statistically independent for the purposes of this repository.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives a new, independent generator from r, advancing r once. It is
// the supported way to hand separate streams to concurrent workers.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 bits from the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniformly distributed value in the half-open interval
// [0, 1). It uses the top 53 bits of Uint64, the standard construction for a
// full-precision float64 uniform variate.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniformly distributed value in [lo, hi). It panics if
// hi < lo. The width hi−lo must be representable as a float64.
func (r *RNG) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic("numeric: Uniform called with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// UniformOpen returns a uniformly distributed value in the open interval
// (lo, hi): it rejects exact endpoint draws, which matters for parameters
// such as the CP popularity α ∈ (0, 1] where a zero would create a degenerate
// content provider.
func (r *RNG) UniformOpen(lo, hi float64) float64 {
	for {
		x := r.Uniform(lo, hi)
		if x != lo { //pubopt:allow(floatcmp): open-interval rejection sampling must reject the exact endpoint draw only
			return x
		}
	}
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
// Modulo bias is removed by rejection sampling.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("numeric: Intn called with n <= 0")
	}
	max := uint64(n)
	// Largest multiple of n that fits in a uint64; values at or above it are
	// rejected so the remainder is unbiased.
	limit := math.MaxUint64 - math.MaxUint64%max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n) using Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes p in place uniformly at random.
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Exp returns an exponentially distributed value with rate lambda (mean
// 1/lambda). It panics if lambda <= 0.
func (r *RNG) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("numeric: Exp called with lambda <= 0")
	}
	// Inverse-CDF sampling; 1-Float64() avoids log(0).
	return -math.Log(1-r.Float64()) / lambda
}

// Norm returns a normally distributed value with the given mean and standard
// deviation, via the Marsaglia polar method. It panics if stddev < 0.
func (r *RNG) Norm(mean, stddev float64) float64 {
	if stddev < 0 {
		panic("numeric: Norm called with stddev < 0")
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
