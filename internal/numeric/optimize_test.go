package numeric

import (
	"math"
	"testing"
)

func TestGoldenMaxParabola(t *testing.T) {
	f := func(x float64) float64 { return -(x - 2) * (x - 2) }
	x, fx := GoldenMax(f, -10, 10, 1e-10)
	if math.Abs(x-2) > 1e-6 || math.Abs(fx) > 1e-10 {
		t.Fatalf("x=%v fx=%v, want 2, 0", x, fx)
	}
}

func TestGoldenMaxBoundaryOptimum(t *testing.T) {
	// Increasing function: maximum at the right boundary.
	x, _ := GoldenMax(func(x float64) float64 { return x }, 0, 5, 1e-10)
	if math.Abs(x-5) > 1e-6 {
		t.Fatalf("x=%v, want boundary 5", x)
	}
}

func TestGridMaxExactOnGridPoint(t *testing.T) {
	f := func(x float64) float64 { return -math.Abs(x - 0.5) }
	x, fx := GridMax(f, 0, 1, 10)
	if x != 0.5 || fx != 0 {
		t.Fatalf("x=%v fx=%v, want 0.5, 0", x, fx)
	}
}

func TestGridMaxTieGoesToSmallerX(t *testing.T) {
	x, _ := GridMax(func(x float64) float64 { return 1 }, 0, 1, 4)
	if x != 0 {
		t.Fatalf("tie should pick smallest x, got %v", x)
	}
}

func TestRefineMaxSharpensGridOptimum(t *testing.T) {
	// Peak at x=0.3141..., far from any coarse grid point.
	peak := 0.31415
	f := func(x float64) float64 { return -(x - peak) * (x - peak) }
	x, _ := RefineMax(f, 0, 1, 7, 1e-12)
	if math.Abs(x-peak) > 1e-6 {
		t.Fatalf("refined x=%v, want %v", x, peak)
	}
}

func TestRefineMaxPiecewiseObjective(t *testing.T) {
	// Kinked objective like the ISP revenue curve: rises linearly then
	// collapses. Peak at the kink x=0.6.
	f := func(x float64) float64 {
		if x <= 0.6 {
			return x
		}
		return 0.6 - 5*(x-0.6)
	}
	x, fx := RefineMax(f, 0, 1, 20, 1e-10)
	if math.Abs(x-0.6) > 1e-6 || math.Abs(fx-0.6) > 1e-6 {
		t.Fatalf("x=%v fx=%v, want kink at 0.6", x, fx)
	}
}

func TestGridMax2D(t *testing.T) {
	f := func(x, y float64) float64 { return -(x-0.25)*(x-0.25) - (y-0.75)*(y-0.75) }
	x, y, _ := GridMax2D(f, 0, 1, 0, 1, 4, 4)
	if x != 0.25 || y != 0.75 {
		t.Fatalf("(x,y)=(%v,%v), want (0.25, 0.75)", x, y)
	}
}

func TestNelderMead2DQuadratic(t *testing.T) {
	f := func(x, y float64) float64 { return -(x-1)*(x-1) - 2*(y+0.5)*(y+0.5) }
	x, y, fxy := NelderMead2D(f, 0, 0, -5, 5, -5, 5, 1e-12, 1000)
	if math.Abs(x-1) > 1e-4 || math.Abs(y+0.5) > 1e-4 {
		t.Fatalf("(x,y)=(%v,%v) f=%v, want (1,-0.5)", x, y, fxy)
	}
}

func TestNelderMead2DRespectsBox(t *testing.T) {
	// Unconstrained optimum at (2,2) is outside the box [0,1]^2; the solver
	// must stay inside and find the box corner.
	f := func(x, y float64) float64 { return -(x-2)*(x-2) - (y-2)*(y-2) }
	x, y, _ := NelderMead2D(f, 0.5, 0.5, 0, 1, 0, 1, 1e-12, 1000)
	if x < 0 || x > 1 || y < 0 || y > 1 {
		t.Fatalf("left the box: (%v,%v)", x, y)
	}
	if math.Abs(x-1) > 1e-3 || math.Abs(y-1) > 1e-3 {
		t.Fatalf("(x,y)=(%v,%v), want corner (1,1)", x, y)
	}
}

func TestNelderMead2DRosenbrockish(t *testing.T) {
	// A banana-valley objective; NM should land near (1,1).
	f := func(x, y float64) float64 {
		return -(100*(y-x*x)*(y-x*x) + (1-x)*(1-x))
	}
	x, y, _ := NelderMead2D(f, -1, 1, -2, 2, -2, 2, 1e-13, 5000)
	if math.Abs(x-1) > 0.05 || math.Abs(y-1) > 0.05 {
		t.Fatalf("(x,y)=(%v,%v), want near (1,1)", x, y)
	}
}
