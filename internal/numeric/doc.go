// Package numeric provides the small, deterministic numerical toolbox that
// the rest of the repository is built on: seeded pseudo-random number
// generation, scalar root finding, one- and two-dimensional optimization,
// monotone interpolation and summary statistics.
//
// The Go standard library deliberately ships no general numerics package, so
// everything here is hand-rolled against the needs of the Ma–Misra "Public
// Option" model: the rate equilibria of the paper are fixed points of
// monotone maps (solved by bisection), ISP strategy optimization is low
// dimensional (solved by grid search refined with golden-section), and every
// experiment must be bit-reproducible (seeded SplitMix64, no global state).
//
// All functions are pure and safe for concurrent use unless documented
// otherwise (RNG values are stateful and not safe for concurrent use; create
// one per goroutine via RNG.Split).
package numeric
