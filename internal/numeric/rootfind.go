package numeric

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoBracket is returned when a root finder is called on an interval whose
// endpoints do not bracket the target value.
var ErrNoBracket = errors.New("numeric: endpoints do not bracket a root")

// ErrMaxIterations is returned when an iterative method fails to reach the
// requested tolerance within its iteration budget.
var ErrMaxIterations = errors.New("numeric: maximum iterations exceeded")

// DefaultTol is the absolute tolerance used by solvers when the caller passes
// a non-positive tolerance. It is deliberately far from float64 epsilon: the
// model quantities (throughputs, surpluses) are O(1)–O(1e4), and equilibrium
// maps are Lipschitz, so 1e-10 is well below any economically meaningful
// difference while leaving bisection ~50 iterations.
const DefaultTol = 1e-10

const maxBisectIter = 200

// Bisect finds x in [lo, hi] with f(x) = 0 for a continuous f that is
// non-decreasing on the interval, to within absolute x-tolerance tol. If
// f(lo) > 0 it returns lo; if f(hi) < 0 it returns hi. This clamping variant
// is what the equilibrium solvers need: "no interior root" means the
// constraint binds at a boundary (e.g. capacity exceeds total demand), and
// the boundary is the correct answer rather than an error.
func Bisect(f func(float64) float64, lo, hi, tol float64) float64 {
	if tol <= 0 {
		tol = DefaultTol
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	flo := f(lo)
	if flo >= 0 {
		return lo
	}
	fhi := f(hi)
	if fhi <= 0 {
		return hi
	}
	for i := 0; i < maxBisectIter && hi-lo > tol; i++ {
		mid := lo + (hi-lo)/2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}

// BisectDecreasing is Bisect for a non-increasing f: it finds x with
// f(x) = 0, returning lo when f(lo) <= 0 and hi when f(hi) >= 0.
func BisectDecreasing(f func(float64) float64, lo, hi, tol float64) float64 {
	return Bisect(func(x float64) float64 { return -f(x) }, lo, hi, tol)
}

// BisectStrict finds a root of a continuous (not necessarily monotone) f in
// [lo, hi]. Unlike Bisect it requires a sign change and returns ErrNoBracket
// otherwise.
func BisectStrict(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	flo, fhi := f(lo), f(hi)
	//pubopt:allow(floatcmp): an exact zero at the bracket endpoint IS the root; tolerance belongs to the interval, not f
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 { //pubopt:allow(floatcmp): exact root at the other endpoint
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, lo, flo, hi, fhi)
	}
	for i := 0; i < maxBisectIter && hi-lo > tol; i++ {
		mid := lo + (hi-lo)/2
		fm := f(mid)
		if fm == 0 { //pubopt:allow(floatcmp): an exact zero terminates bisection early; near-zero keeps shrinking the bracket
			return mid, nil
		}
		if (fm > 0) == (fhi > 0) {
			hi, fhi = mid, fm
		} else {
			lo = mid
		}
	}
	return lo + (hi-lo)/2, nil
}

// Brent finds a root of continuous f in [lo, hi] using Brent's method
// (inverse quadratic interpolation with bisection fallback), which converges
// superlinearly on smooth functions while retaining bisection's robustness.
// The endpoints must bracket a root; otherwise ErrNoBracket is returned.
func Brent(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	a, b := lo, hi
	fa, fb := f(a), f(b)
	if fa == 0 { //pubopt:allow(floatcmp): exact root at Brent's left endpoint
		return a, nil
	}
	if fb == 0 { //pubopt:allow(floatcmp): exact root at Brent's right endpoint
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b, fa, fb = b, a, fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < maxBisectIter; i++ {
		if fb == 0 || math.Abs(b-a) < tol { //pubopt:allow(floatcmp): exact zero ends the iteration; the tolerance test beside it handles near-zeros
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc { //pubopt:allow(floatcmp): inverse quadratic interpolation divides by these exact differences; equal ordinates must fall back to secant
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant step.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo3, hi3 := (3*a+b)/4, b
		if lo3 > hi3 {
			lo3, hi3 = hi3, lo3
		}
		cond := s < lo3 || s > hi3 ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = (a + b) / 2
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d = c
		c, fc = b, fb
		if (fa > 0) != (fs > 0) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b, fa, fb = b, a, fb, fa
		}
	}
	return b, ErrMaxIterations
}

// FixedPoint iterates x <- damping*g(x) + (1-damping)*x from x0 until
// successive iterates differ by less than tol, returning the final iterate
// and whether it converged within maxIter steps. Damping in (0, 1] trades
// speed for stability on oscillating maps; 1 is plain Picard iteration.
func FixedPoint(g func(float64) float64, x0, damping, tol float64, maxIter int) (float64, bool) {
	if tol <= 0 {
		tol = DefaultTol
	}
	if damping <= 0 || damping > 1 {
		damping = 1
	}
	if maxIter <= 0 {
		maxIter = 500
	}
	x := x0
	for i := 0; i < maxIter; i++ {
		next := damping*g(x) + (1-damping)*x
		if math.Abs(next-x) < tol {
			return next, true
		}
		x = next
	}
	return x, false
}
