package numeric

import "math"

// invPhi is 1/φ, the golden-section step ratio.
var invPhi = (math.Sqrt(5) - 1) / 2

// GoldenMax maximizes a unimodal f on [lo, hi] by golden-section search,
// returning the maximizing x and f(x). For non-unimodal f it still returns a
// local maximum; pair it with GridMax for a global search on rugged
// objectives (see RefineMax).
func GoldenMax(f func(float64) float64, lo, hi, tol float64) (x, fx float64) {
	if tol <= 0 {
		tol = DefaultTol
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for i := 0; i < maxBisectIter && b-a > tol; i++ {
		if fc > fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	x = (a + b) / 2
	return x, f(x)
}

// GridMax evaluates f on n+1 evenly spaced points spanning [lo, hi] and
// returns the best point and value. Ties go to the smaller x, which matches
// the paper's tie-breaking convention of preferring the cheaper/less
// aggressive strategy. n must be >= 1.
func GridMax(f func(float64) float64, lo, hi float64, n int) (x, fx float64) {
	if n < 1 {
		n = 1
	}
	x, fx = lo, f(lo)
	for i := 1; i <= n; i++ {
		xi := lo + (hi-lo)*float64(i)/float64(n)
		if v := f(xi); v > fx {
			x, fx = xi, v
		}
	}
	return x, fx
}

// RefineMax runs GridMax with n cells and then golden-section refinement
// inside the winning cell's neighborhood. It is the workhorse for the ISP
// pricing objectives, which are piecewise smooth with kinks where CPs switch
// service classes: the grid localizes the global peak, the refinement
// sharpens it.
func RefineMax(f func(float64) float64, lo, hi float64, n int, tol float64) (x, fx float64) {
	gx, _ := GridMax(f, lo, hi, n)
	step := (hi - lo) / float64(max(n, 1))
	a := math.Max(lo, gx-step)
	b := math.Min(hi, gx+step)
	return GoldenMax(f, a, b, tol)
}

// GridMax2D evaluates f on an (nx+1)×(ny+1) grid over [xlo,xhi]×[ylo,yhi]
// and returns the best point. Ties go to smaller y, then smaller x.
func GridMax2D(f func(x, y float64) float64, xlo, xhi, ylo, yhi float64, nx, ny int) (x, y, fxy float64) {
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	x, y = xlo, ylo
	fxy = f(xlo, ylo)
	for j := 0; j <= ny; j++ {
		yj := ylo + (yhi-ylo)*float64(j)/float64(ny)
		for i := 0; i <= nx; i++ {
			xi := xlo + (xhi-xlo)*float64(i)/float64(nx)
			if v := f(xi, yj); v > fxy {
				x, y, fxy = xi, yj, v
			}
		}
	}
	return x, y, fxy
}

// NelderMead2D maximizes f over the box [xlo,xhi]×[ylo,yhi] starting from
// (x0, y0) using the Nelder–Mead simplex method with box projection. It
// returns the best vertex after at most maxIter iterations or when the
// simplex collapses below tol. It is used to polish grid-search optima of
// the two-dimensional ISP strategy (κ, c).
func NelderMead2D(f func(x, y float64) float64, x0, y0, xlo, xhi, ylo, yhi, tol float64, maxIter int) (x, y, fxy float64) {
	if tol <= 0 {
		tol = 1e-9
	}
	if maxIter <= 0 {
		maxIter = 400
	}
	clamp := func(p [2]float64) [2]float64 {
		p[0] = math.Min(math.Max(p[0], xlo), xhi)
		p[1] = math.Min(math.Max(p[1], ylo), yhi)
		return p
	}
	eval := func(p [2]float64) float64 { return f(p[0], p[1]) }

	dx := math.Max((xhi-xlo)*0.05, 1e-6)
	dy := math.Max((yhi-ylo)*0.05, 1e-6)
	pts := [3][2]float64{
		clamp([2]float64{x0, y0}),
		clamp([2]float64{x0 + dx, y0}),
		clamp([2]float64{x0, y0 + dy}),
	}
	vals := [3]float64{eval(pts[0]), eval(pts[1]), eval(pts[2])}

	order := func() {
		// Descending by value: pts[0] best, pts[2] worst.
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if vals[j] > vals[i] {
					pts[i], pts[j] = pts[j], pts[i]
					vals[i], vals[j] = vals[j], vals[i]
				}
			}
		}
	}
	for it := 0; it < maxIter; it++ {
		order()
		size := math.Hypot(pts[0][0]-pts[2][0], pts[0][1]-pts[2][1]) +
			math.Hypot(pts[1][0]-pts[2][0], pts[1][1]-pts[2][1])
		if size < tol {
			break
		}
		// Centroid of the two best vertices.
		cx := (pts[0][0] + pts[1][0]) / 2
		cy := (pts[0][1] + pts[1][1]) / 2
		refl := clamp([2]float64{cx + (cx - pts[2][0]), cy + (cy - pts[2][1])})
		fr := eval(refl)
		switch {
		case fr > vals[0]:
			// Expansion.
			exp := clamp([2]float64{cx + 2*(cx-pts[2][0]), cy + 2*(cy-pts[2][1])})
			if fe := eval(exp); fe > fr {
				pts[2], vals[2] = exp, fe
			} else {
				pts[2], vals[2] = refl, fr
			}
		case fr > vals[1]:
			pts[2], vals[2] = refl, fr
		default:
			// Contraction toward the centroid.
			con := clamp([2]float64{cx + 0.5*(pts[2][0]-cx), cy + 0.5*(pts[2][1]-cy)})
			if fc := eval(con); fc > vals[2] {
				pts[2], vals[2] = con, fc
			} else {
				// Shrink toward the best vertex.
				for i := 1; i < 3; i++ {
					pts[i] = clamp([2]float64{
						pts[0][0] + 0.5*(pts[i][0]-pts[0][0]),
						pts[0][1] + 0.5*(pts[i][1]-pts[0][1]),
					})
					vals[i] = eval(pts[i])
				}
			}
		}
	}
	order()
	return pts[0][0], pts[0][1], vals[0]
}
