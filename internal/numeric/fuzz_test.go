package numeric

import (
	"math"
	"testing"
)

// FuzzRootfind throws arbitrary cubics and brackets at the three root
// finders. The contract under fuzzing: no input — including NaN, ±Inf, and
// inverted or degenerate brackets — may panic; whenever the bracket is
// finite, every returned root lies inside it (Bisect clamps by contract,
// the strict finders bisect inward from the endpoints); and a reported
// success from the strict finders implies the bracket really had a sign
// change or an exact zero to find.
func FuzzRootfind(f *testing.F) {
	f.Add(1.0, 0.0, -2.0, 0.0, 2.0, 1e-10)  // x³ = 2
	f.Add(0.5, -3.0, 1.0, -4.0, 4.0, 1e-8)  // three real roots
	f.Add(0.0, 0.0, 0.0, 0.0, 1.0, 1e-12)   // identically zero
	f.Add(0.0, 1.0, -0.25, -1.0, 1.0, 0.0)  // linear, tol defaulted
	f.Add(2.0, -1.0, 0.5, 3.0, -3.0, 1e-10) // inverted bracket
	f.Add(1.0, 1.0, 1.0, 5.0, 5.0, 1e-10)   // degenerate bracket
	f.Fuzz(func(t *testing.T, a, b, c, lo, hi, tol float64) {
		cubic := func(x float64) float64 { return ((a*x)*x+b)*x + c }

		// None of these calls may panic, whatever the inputs.
		x := Bisect(cubic, lo, hi, tol)
		xs, errS := BisectStrict(cubic, lo, hi, tol)
		xb, errB := Brent(cubic, lo, hi, tol)

		finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
		if !finite(lo) || !finite(hi) {
			return // containment is only meaningful for a real interval
		}
		l, h := math.Min(lo, hi), math.Max(lo, hi)
		// Slack for the final midpoint arithmetic at extreme magnitudes.
		slack := 1e-9 * (1 + math.Abs(l) + math.Abs(h))
		if finite(x) && (x < l-slack || x > h+slack) {
			t.Fatalf("Bisect escaped the bracket: x=%g outside [%g, %g] (a=%g b=%g c=%g tol=%g)", x, l, h, a, b, c, tol)
		}
		if errS == nil && (xs < l-slack || xs > h+slack) {
			t.Fatalf("BisectStrict escaped the bracket: x=%g outside [%g, %g] (a=%g b=%g c=%g tol=%g)", xs, l, h, a, b, c, tol)
		}
		if errB == nil && (xb < l-slack || xb > h+slack) {
			t.Fatalf("Brent escaped the bracket: x=%g outside [%g, %g] (a=%g b=%g c=%g tol=%g)", xb, l, h, a, b, c, tol)
		}
	})
}
