package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws in 100", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", x)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := NewRNG(99)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Float64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Errorf("uniform variance = %v, want ~%v", variance, 1.0/12)
	}
}

func TestUniformBounds(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		x := r.Uniform(-3, 7)
		if x < -3 || x >= 7 {
			t.Fatalf("Uniform(-3,7) out of range: %v", x)
		}
	}
}

func TestUniformPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for hi < lo")
		}
	}()
	NewRNG(1).Uniform(1, 0)
}

func TestUniformOpenExcludesLo(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		if x := r.UniformOpen(0, 1); x == 0 {
			t.Fatal("UniformOpen returned the open endpoint")
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
		counts[v]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("Intn bucket %d count %d deviates >5%% from %v", v, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 0")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	for trial := 0; trial < 50; trial++ {
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("not a permutation: %v", p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(1)
	child := parent.Split()
	// The child stream must differ from the parent's continuation.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream collides with parent %d/100 times", same)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(19)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Norm(3, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("Norm mean = %v, want ~3", mean)
	}
	if sd := math.Sqrt(sumSq/n - mean*mean); math.Abs(sd-2) > 0.05 {
		t.Errorf("Norm stddev = %v, want ~2", sd)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(23)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", p)
	}
}

// Property: Uniform always lands inside its interval for arbitrary valid
// bounds.
func TestUniformPropertyQuick(t *testing.T) {
	r := NewRNG(29)
	f := func(a, b float64) bool {
		lo, hi := a, b
		if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return true
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		if math.IsInf(hi-lo, 0) {
			// Outside Uniform's documented domain (range must be
			// representable as a float64).
			return true
		}
		x := r.Uniform(lo, hi)
		return x >= lo && (x < hi || lo == hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
