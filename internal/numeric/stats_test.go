package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSumCompensated(t *testing.T) {
	// Naive summation of this sequence loses the small terms; Kahan keeps
	// them.
	xs := make([]float64, 0, 2001)
	xs = append(xs, 1e16)
	for i := 0; i < 1000; i++ {
		xs = append(xs, 1.0)
	}
	xs = append(xs, -1e16)
	for i := 0; i < 1000; i++ {
		xs = append(xs, 1.0)
	}
	if got := Sum(xs); got != 2000 {
		t.Fatalf("Sum = %v, want 2000", got)
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if s := Std(xs); s != 2 {
		t.Fatalf("Std = %v, want 2", s)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
	if Variance([]float64{1}) != 0 {
		t.Fatal("Variance of singleton should be 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolated value between order statistics.
	if got := Quantile([]float64{0, 10}, 0.35); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("Quantile interp = %v, want 3.5", got)
	}
}

func TestJainIndex(t *testing.T) {
	if j := JainIndex([]float64{1, 1, 1, 1}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("equal shares Jain = %v, want 1", j)
	}
	if j := JainIndex([]float64{1, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Fatalf("single-flow Jain = %v, want 0.25", j)
	}
	if j := JainIndex(nil); j != 1 {
		t.Fatalf("empty Jain = %v, want 1", j)
	}
	if j := JainIndex([]float64{0, 0}); j != 1 {
		t.Fatalf("all-zero Jain = %v, want 1", j)
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-15 {
			t.Fatalf("Linspace = %v", xs)
		}
	}
	if xs[len(xs)-1] != 1 {
		t.Fatal("Linspace must hit hi exactly")
	}
}

func TestArgMax(t *testing.T) {
	if i := ArgMax([]float64{1, 5, 3, 5}); i != 1 {
		t.Fatalf("ArgMax = %d, want first max index 1", i)
	}
}

func TestMaxDownwardGap(t *testing.T) {
	if g := MaxDownwardGap([]float64{1, 2, 3, 4}); g != 0 {
		t.Fatalf("monotone curve gap = %v, want 0", g)
	}
	if g := MaxDownwardGap([]float64{1, 5, 2, 4, 3}); g != 3 {
		t.Fatalf("gap = %v, want 3 (from 5 down to 2)", g)
	}
	if g := MaxDownwardGap([]float64{2, 1, 5, 0}); g != 5 {
		t.Fatalf("gap = %v, want 5", g)
	}
	if g := MaxDownwardGap(nil); g != 0 {
		t.Fatalf("empty gap = %v", g)
	}
}

func TestIsMonotoneNonDecreasing(t *testing.T) {
	if !IsMonotoneNonDecreasing([]float64{1, 1, 2, 3}, 0) {
		t.Fatal("monotone series rejected")
	}
	if IsMonotoneNonDecreasing([]float64{1, 0.5}, 0.1) {
		t.Fatal("big drop accepted")
	}
	if !IsMonotoneNonDecreasing([]float64{1, 0.999999}, 1e-3) {
		t.Fatal("tiny numerical drop within slack rejected")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp broken")
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1, 1+1e-12, 1e-9) {
		t.Fatal("near-equal rejected")
	}
	if AlmostEqual(1, 2, 1e-9) {
		t.Fatal("distinct values accepted")
	}
	if !AlmostEqual(1e12, 1e12*(1+1e-12), 1e-9) {
		t.Fatal("relative tolerance not applied for large magnitudes")
	}
}

// Property: Jain index is scale invariant and bounded in [1/n, 1].
func TestJainIndexPropertiesQuick(t *testing.T) {
	r := NewRNG(37)
	f := func() bool {
		n := 1 + r.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Uniform(0, 100)
		}
		j := JainIndex(xs)
		if j < 1/float64(n)-1e-12 || j > 1+1e-12 {
			return false
		}
		scaled := make([]float64, n)
		for i := range xs {
			scaled[i] = 7.5 * xs[i]
		}
		return math.Abs(JainIndex(scaled)-j) < 1e-9
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: MaxDownwardGap is zero exactly when the sequence is
// non-decreasing (up to ordering of random sequences).
func TestGapZeroIffMonotoneQuick(t *testing.T) {
	r := NewRNG(41)
	f := func() bool {
		n := 2 + r.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Uniform(0, 10)
		}
		gap := MaxDownwardGap(xs)
		mono := IsMonotoneNonDecreasing(xs, 0)
		if mono && gap != 0 {
			return false
		}
		if !mono && gap <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
