// Command tcpfair runs the fluid AIMD bottleneck simulator and reports
// per-flow rates against the analytic max-min reference — the validation of
// the paper's Assumption 2 ("TCP ≈ max-min fair").
//
// Usage:
//
//	tcpfair [-capacity 100] [-flows 10] [-rtt 50ms] [-spread 1.0] [-seed 1]
//
// spread > 1 draws heterogeneous RTTs in [rtt/spread, rtt*spread].
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	publicoption "github.com/netecon-sim/publicoption"
	"github.com/netecon-sim/publicoption/internal/numeric"
)

func main() {
	capacity := flag.Float64("capacity", 100, "bottleneck capacity (units/s)")
	n := flag.Int("flows", 10, "number of elastic flows")
	rtt := flag.Duration("rtt", 50*time.Millisecond, "base round-trip time")
	spread := flag.Float64("spread", 1, "RTT heterogeneity factor (>= 1)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	if *n <= 0 || *capacity <= 0 || *spread < 1 {
		fmt.Fprintln(os.Stderr, "tcpfair: need flows > 0, capacity > 0, spread >= 1")
		os.Exit(1)
	}
	rng := numeric.NewRNG(*seed)
	flows := make([]publicoption.TCPFlow, *n)
	base := rtt.Seconds()
	for i := range flows {
		r := base
		if *spread > 1 {
			// Uniform in [base/spread, base·spread].
			lo, hi := base / *spread, base**spread
			r = rng.Uniform(lo, hi)
		}
		flows[i] = publicoption.TCPFlow{Name: fmt.Sprintf("flow-%02d", i), RTT: r}
	}
	res, err := publicoption.SimulateTCP(publicoption.TCPConfig{Capacity: *capacity, Seed: *seed}, flows)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcpfair:", err)
		os.Exit(1)
	}
	caps := make([]float64, len(flows))
	analytic := publicoption.TCPMaxMinReference(*capacity, caps)
	fmt.Printf("%-10s %10s %10s %10s %8s\n", "flow", "rtt(ms)", "rate", "max-min", "losses")
	for i, f := range res.Flows {
		fmt.Printf("%-10s %10.1f %10.3f %10.3f %8d\n", f.Name, 1000*flows[i].RTT, f.Rate, analytic[i], f.Losses)
	}
	fmt.Printf("\nutilization %.1f%%  Jain %.4f\n", 100*res.Utilization, res.Jain)
}
