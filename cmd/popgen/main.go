// Command popgen generates random content-provider populations from the
// paper's §III-E ensemble and writes them as CSV (loadable back via the
// library's traffic CSV reader).
//
// Usage:
//
//	popgen [-n 1000] [-seed 0] [-phi correlated|independent] > pop.csv
package main

import (
	"flag"
	"fmt"
	"os"

	publicoption "github.com/netecon-sim/publicoption"
	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

func main() {
	n := flag.Int("n", 1000, "number of content providers")
	seed := flag.Uint64("seed", 0, "RNG seed (0 = published default)")
	phiFlag := flag.String("phi", "correlated", "utility setting: correlated (φ~U[0,β]) or independent (φ~U[0,U[0,10]])")
	flag.Parse()

	var phi publicoption.PhiSetting
	switch *phiFlag {
	case "correlated":
		phi = publicoption.PhiCorrelated
	case "independent":
		phi = publicoption.PhiIndependent
	default:
		fmt.Fprintf(os.Stderr, "popgen: unknown phi setting %q\n", *phiFlag)
		os.Exit(1)
	}
	if *seed == 0 {
		*seed = traffic.DefaultSeed
	}
	cfg := publicoption.PaperEnsemble(phi)
	cfg.N = *n
	pop := cfg.Generate(numeric.NewRNG(*seed))
	if err := traffic.WriteCSV(os.Stdout, pop); err != nil {
		fmt.Fprintln(os.Stderr, "popgen:", err)
		os.Exit(1)
	}
}
