package main

import (
	"encoding/csv"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// quiet silences the command's stdout/stderr for the duration of the test;
// assertions look at return values and the filesystem, not terminal output.
func quiet(t *testing.T) {
	t.Helper()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	oldOut, oldErr := os.Stdout, os.Stderr
	os.Stdout, os.Stderr = devnull, devnull
	t.Cleanup(func() {
		os.Stdout, os.Stderr = oldOut, oldErr
		devnull.Close()
	})
}

func TestRunArgumentErrors(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantErr  string // substring of the error; "" means success
		usage    bool   // expect the errUsage sentinel (exit 2)
		wantHelp bool   // expect flag.ErrHelp (exit 0)
	}{
		{name: "no args", args: nil, usage: true},
		{name: "unknown command", args: []string{"frobnicate"}, usage: true},
		{name: "help", args: []string{"help"}},
		{name: "help short flag", args: []string{"-h"}},
		{name: "list", args: []string{"list"}},
		{name: "subcommand help flag", args: []string{"serve", "-h"}, wantHelp: true},

		{name: "run without ids", args: []string{"run"}, wantErr: "no experiment IDs"},
		{name: "run unknown id", args: []string{"run", "fig99"}, wantErr: `unknown experiment "fig99"`},
		{name: "run bad flag", args: []string{"run", "fig4", "-bogus"}, usage: true},

		{name: "scenario without subcommand", args: []string{"scenario"}, usage: true},
		{name: "scenario unknown subcommand", args: []string{"scenario", "frobnicate"}, usage: true},
		{name: "scenario show without name", args: []string{"scenario", "show"}, wantErr: "missing scenario name"},
		{name: "scenario show unknown", args: []string{"scenario", "show", "no-such"}, wantErr: `unknown scenario "no-such"`},
		{name: "scenario list", args: []string{"scenario", "list"}},
		{name: "scenario run neither source", args: []string{"scenario", "run"}, wantErr: "exactly one of --name or --json"},
		{name: "scenario run both sources", args: []string{"scenario", "run", "--name", "x", "--json", "y"}, wantErr: "exactly one of --name or --json"},
		{name: "scenario run unknown name", args: []string{"scenario", "run", "--name", "no-such"}, wantErr: `unknown scenario "no-such"`},
		{name: "scenario run bad format", args: []string{"scenario", "run", "--name", "neutral-baseline", "-format", "bogus"}, wantErr: `unknown format "bogus"`},
		{name: "scenario run override without ensemble", args: []string{"scenario", "run", "--name", "archetypes-capacity", "-seed", "7"}, wantErr: "has no ensemble seed"},
		{name: "scenario run missing json file", args: []string{"scenario", "run", "--json", "/no/such/file.json"}, wantErr: "no such file"},

		{name: "verify bad seed", args: []string{"verify", "12abc"}, wantErr: `bad seed "12abc"`},
		{name: "verify negative seed", args: []string{"verify", "-5"}, wantErr: `bad seed "-5"`},
		{name: "verify hex seed", args: []string{"verify", "0x10"}, wantErr: `bad seed "0x10"`},

		{name: "validate without scenarios", args: []string{"validate"}, wantErr: "scenario names or -all"},
		{name: "validate names and -all", args: []string{"validate", "neutral-baseline", "-all"}, wantErr: "scenario names or -all"},
		{name: "validate unknown scenario", args: []string{"validate", "no-such"}, wantErr: `unknown scenario "no-such"`},
		{name: "validate bad format", args: []string{"validate", "neutral-baseline", "-format", "bogus"}, wantErr: `unknown format "bogus"`},
		{name: "validate bad flag", args: []string{"validate", "neutral-baseline", "-bogus"}, usage: true},
		{name: "validate help flag", args: []string{"validate", "-h"}, wantHelp: true},

		{name: "serve bad flag", args: []string{"serve", "-bogus"}, usage: true},
		{name: "serve trailing argument", args: []string{"serve", "extra"}, usage: true},
		{name: "serve negative workers", args: []string{"serve", "-workers", "-1"}, usage: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			quiet(t)
			err := run(tc.args)
			switch {
			case tc.usage:
				if !errors.Is(err, errUsage) {
					t.Fatalf("run(%q) = %v, want the errUsage sentinel", tc.args, err)
				}
			case tc.wantHelp:
				if !errors.Is(err, flag.ErrHelp) {
					t.Fatalf("run(%q) = %v, want flag.ErrHelp", tc.args, err)
				}
			case tc.wantErr == "":
				if err != nil {
					t.Fatalf("run(%q) = %v, want nil", tc.args, err)
				}
			default:
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("run(%q) = %v, want error containing %q", tc.args, err, tc.wantErr)
				}
				if errors.Is(err, errUsage) {
					t.Fatalf("run(%q) returned errUsage; subcommand errors must stay distinct", tc.args)
				}
			}
		})
	}
}

// tinyScenarioJSON is a 2-CP explicit scenario solving in microseconds, for
// end-to-end CLI tests.
const tinyScenarioJSON = `{
  "name": "cli-test-tiny",
  "title": "CLI test scenario",
  "population": {
    "kind": "explicit",
    "cps": [
      {"name": "a", "alpha": 0.5, "theta_hat": 100, "v": 1, "phi": 2, "demand": {"family": "exponential", "beta": 2}},
      {"name": "b", "alpha": 0.8, "theta_hat": 200, "v": 0.5, "phi": 1, "demand": {"family": "constant"}}
    ]
  },
  "providers": [{"name": "neutral", "gamma": 1}],
  "sweep": {"axis": "nu", "values": [50, 100, 150], "metrics": ["phi", "utilization"]}
}`

func TestScenarioRunWritesCSVOut(t *testing.T) {
	quiet(t)
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "tiny.json")
	if err := os.WriteFile(jsonPath, []byte(tinyScenarioJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(dir, "out")

	err := run([]string{"scenario", "run", "--json", jsonPath, "-format", "csv", "-out", outDir})
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	// One CSV per metric table, named <scenario>_<metric>.csv.
	for _, metric := range []string{"phi", "utilization"} {
		path := filepath.Join(outDir, "cli-test-tiny_"+metric+".csv")
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("expected CSV output: %v", err)
		}
		rows, err := csv.NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		if len(rows) < 2 {
			t.Fatalf("%s has %d rows, want a header plus data", path, len(rows))
		}
		header := strings.Join(rows[0], ",")
		if header != "series,nu,"+metric {
			t.Fatalf("%s header = %q", path, header)
		}
		// 3 sweep points per series.
		if got := len(rows) - 1; got%3 != 0 || got == 0 {
			t.Fatalf("%s has %d data rows, want a multiple of the 3 sweep points", path, got)
		}
	}
}

func TestRunExperimentWritesCSVOut(t *testing.T) {
	quiet(t)
	outDir := filepath.Join(t.TempDir(), "out")
	err := run([]string{"run", "fig2", "-fast", "-format", "csv", "-out", outDir})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	matches, err := filepath.Glob(filepath.Join(outDir, "fig2_table*.csv"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no fig2 CSVs written under %s (err %v)", outDir, err)
	}
	b, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "series,") {
		t.Fatalf("CSV does not start with the long-form header: %q", string(b[:min(40, len(b))]))
	}
}

// TestValidateWritesReport drives the Tier-2 harness end-to-end from the
// CLI on a tiny sample and checks the verdict CSV lands on disk. The
// command returns an error whenever a verdict fails, so a nil error here
// also asserts fluid/packet agreement.
func TestValidateWritesReport(t *testing.T) {
	quiet(t)
	out := filepath.Join(t.TempDir(), "verdicts.csv")
	err := run([]string{"validate", "archetypes-capacity", "-sample", "1", "-flows", "96", "-out", out})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("expected verdict CSV: %v", err)
	}
	rows, err := csv.NewReader(f).ReadAll()
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("verdict CSV has %d rows, want a header plus data", len(rows))
	}
	if got := strings.Join(rows[0], ","); got != "scenario,cell,link,cp,metric,fluid,packet,error,tolerance,pass" {
		t.Fatalf("verdict CSV header = %q", got)
	}
	for _, row := range rows[1:] {
		if row[len(row)-1] != "true" {
			t.Fatalf("failing verdict in report: %v", row)
		}
	}
}

func TestScenarioRunSeedOverrideChangesOutput(t *testing.T) {
	quiet(t)
	dir := t.TempDir()
	outA := filepath.Join(dir, "a")
	outB := filepath.Join(dir, "b")
	outC := filepath.Join(dir, "c")
	base := []string{"scenario", "run", "--name", "neutral-baseline", "-cps", "40", "-format", "csv"}
	for _, tc := range []struct {
		out  string
		seed string
	}{{outA, "1"}, {outB, "1"}, {outC, "2"}} {
		args := append(append([]string{}, base...), "-seed", tc.seed, "-out", tc.out)
		if err := run(args); err != nil {
			t.Fatalf("run(%q): %v", args, err)
		}
	}
	read := func(dir string) string {
		t.Helper()
		b, err := os.ReadFile(filepath.Join(dir, "neutral-baseline_phi.csv"))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if read(outA) != read(outB) {
		t.Fatal("same seed produced different output (determinism broken)")
	}
	if read(outA) == read(outC) {
		t.Fatal("-seed override had no effect on the output")
	}
}
