package main

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"time"

	"github.com/netecon-sim/publicoption/internal/alloc"
	"github.com/netecon-sim/publicoption/internal/core"
	"github.com/netecon-sim/publicoption/internal/econ"
	"github.com/netecon-sim/publicoption/internal/netsim"
	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// verifyCmd runs the theorem battery: every formal claim of the paper
// checked numerically on a fresh ensemble, printed as a PASS/FAIL report.
// It is the reproduction's self-test — `pubopt verify` should pass on any
// seed.
func verifyCmd(args []string) error {
	seed := uint64(traffic.DefaultSeed)
	if len(args) > 0 {
		// strconv, not Sscanf: "%d" stops at the first non-digit and would
		// silently accept trailing garbage ("12abc" parsed as 12).
		s, err := strconv.ParseUint(args[0], 10, 64)
		if err != nil {
			return fmt.Errorf("verify: bad seed %q", args[0])
		}
		seed = s
	}
	fmt.Printf("theorem battery (seed %d)\n\n", seed)
	cfg := traffic.PaperEnsemble(traffic.PhiCorrelated)
	cfg.N = 200
	pop := cfg.Generate(numeric.NewRNG(seed))
	sat := pop.TotalUnconstrainedPerCapita()
	failures := 0
	check := func(name string, err error) {
		status := "PASS"
		if err != nil {
			status = "FAIL: " + err.Error()
			failures++
		}
		fmt.Printf("  %-58s %s\n", name, status)
	}
	start := time.Now()

	// Axioms 1–4 for every mechanism.
	grid := numeric.Linspace(0, 1.2*sat, 25)
	for _, mech := range []alloc.Allocator{
		alloc.MaxMin{},
		alloc.AlphaFair{Alpha: 1},
		alloc.AlphaFair{Alpha: 2, Weights: alloc.WeightByThetaHat},
		alloc.PerCPMaxMin{},
	} {
		reports := alloc.CheckAxioms(mech, pop, grid, 0)
		var err error
		if ok, detail := alloc.AxiomsOK(reports); !ok {
			err = fmt.Errorf("%s", detail)
		}
		check(fmt.Sprintf("Axioms 1-4 [%s]", mech.Name()), err)
	}

	// Theorem 1: work conservation pins the equilibrium.
	err := func() error {
		for _, frac := range []float64{0.1, 0.5, 0.9} {
			res := alloc.Solve(alloc.MaxMin{}, frac*sat, pop)
			if math.Abs(res.Aggregate()-frac*sat) > 1e-6*sat {
				return fmt.Errorf("aggregate %g != ν %g", res.Aggregate(), frac*sat)
			}
		}
		return nil
	}()
	check("Theorem 1 (rate equilibrium exists, work-conserving)", err)

	// Theorem 2: Φ monotone in ν, strict below saturation.
	check("Theorem 2 (Φ non-decreasing in ν)",
		econ.CheckTheorem2(alloc.MaxMin{}, pop, numeric.Linspace(0, 1.3*sat, 40), 0))

	// Theorem 3: scale invariance of the class game.
	err = func() error {
		solver := core.NewSolver(nil)
		strat := core.Strategy{Kappa: 0.6, C: 0.3}
		base := solver.Competitive(strat, 0.4*sat, pop)
		scaled := solver.Competitive(strat, (0.4*sat*1000)/1000, pop)
		for i := range pop {
			if base.InPremium[i] != scaled.InPremium[i] {
				return fmt.Errorf("partition differs under scaling at CP %d", i)
			}
		}
		return nil
	}()
	check("Theorem 3 (equilibrium scale invariance)", err)

	// Theorem 4: κ = 1 dominance.
	mono := core.NewMonopoly(nil)
	worst := mono.CheckTheorem4([]float64{0.3, 0.6, 0.9}, []float64{0.2, 0.5}, 0.4*sat, pop)
	err = nil
	if worst > 1e-6*sat {
		err = fmt.Errorf("κ<1 beat κ=1 by %g", worst)
	}
	check("Theorem 4 (full premium dedication dominates)", err)

	// Theorem 5: against a Public Option, share-max ≈ surplus-max.
	err = func() error {
		mk := core.NewMarket(nil, pop, 0.4*sat)
		mk.MigrationTol = 1e-6
		po := core.ISP{Name: "po", Gamma: 0.5, Strategy: core.PublicOption}
		var bestM, phiAtBestM, bestPhi float64
		bestM = math.Inf(-1)
		for _, s := range (core.StrategyGrid{Kappas: []float64{0, 0.5, 1}, Cs: numeric.Linspace(0, 1, 9)}).Strategies() {
			out := mk.SolveDuopoly(core.ISP{Name: "i", Gamma: 0.5, Strategy: s}, po)
			if out.Shares[0] > bestM {
				bestM, phiAtBestM = out.Shares[0], out.Phi
			}
			if out.Phi > bestPhi {
				bestPhi = out.Phi
			}
		}
		if phiAtBestM < bestPhi*(1-0.02) {
			return fmt.Errorf("Φ at share max %g vs max Φ %g", phiAtBestM, bestPhi)
		}
		return nil
	}()
	check("Theorem 5 (Public Option aligns share with surplus)", err)

	// Lemma 4: homogeneous strategies, proportional shares.
	err = func() error {
		mk := core.NewMarket(nil, pop, 0.4*sat)
		s := core.Strategy{Kappa: 0.5, C: 0.3}
		out := mk.SolveMarket([]core.ISP{
			{Name: "x", Gamma: 0.5, Strategy: s},
			{Name: "y", Gamma: 0.3, Strategy: s},
			{Name: "z", Gamma: 0.2, Strategy: s},
		})
		for k, want := range []float64{0.5, 0.3, 0.2} {
			if math.Abs(out.Shares[k]-want) > 0.02 {
				return fmt.Errorf("share %d = %g, want %g", k, out.Shares[k], want)
			}
		}
		return nil
	}()
	check("Lemma 4 (market shares proportional to capacity)", err)

	// Headline ranking (Theorem 5's regulatory implication).
	err = func() error {
		rcfg := core.RegimeConfig{GridN: 12, POGrid: &core.StrategyGrid{
			Kappas: []float64{0, 0.5, 1}, Cs: []float64{0, 0.2, 0.4, 0.6, 0.8, 1}}}
		outcomes := core.CompareRegimes(nil, 0.8*sat, pop, rcfg)
		return core.CheckHeadlineRanking(core.RegimeRanking(outcomes, 1e-9))
	}()
	check("Headline ranking (Public Option ≥ neutral ≥ unregulated)", err)

	// Assumption 2: TCP ≈ max-min.
	err = func() error {
		flows := make([]netsim.Flow, 12)
		for i := range flows {
			flows[i] = netsim.Flow{Name: "f", RTT: 0.05}
		}
		// A long measurement window averages out the AIMD sawtooth; per-flow
		// deviation from the analytic water level is then seed-stable.
		res, err := netsim.Run(netsim.Config{Capacity: 100, Seed: seed, Measure: 60}, flows)
		if err != nil {
			return err
		}
		if rep := netsim.CompareMaxMin(res, flows, 100); rep.MaxRelErr > 0.25 {
			return fmt.Errorf("AIMD deviates from max-min by %.1f%%", 100*rep.MaxRelErr)
		}
		return nil
	}()
	check("Assumption 2 (AIMD ≈ max-min fair)", err)

	fmt.Printf("\n%d checks failed (%.1fs)\n", failures, time.Since(start).Seconds())
	if failures > 0 {
		os.Exit(1)
	}
	return nil
}
