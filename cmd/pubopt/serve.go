package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	publicoption "github.com/netecon-sim/publicoption"
)

// serveCmd runs the HTTP query service: the scenario and experiment
// registries behind a JSON API with a content-addressed equilibrium cache
// (see docs/SERVICE.md).
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
	cacheEntries := fs.Int("cache-entries", publicoption.DefaultServiceCacheEntries,
		"equilibrium cache LRU bound (negative disables caching)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return usageErrorf("pubopt serve: unexpected argument %q", fs.Arg(0))
	}
	if *workers < 0 {
		return usageErrorf("pubopt serve: -workers must be non-negative, got %d", *workers)
	}

	logger := log.New(os.Stderr, "pubopt-serve ", log.LstdFlags)
	handler := publicoption.NewService(publicoption.ServiceOptions{
		Workers:      *workers,
		CacheEntries: *cacheEntries,
		Log:          logger,
	})
	server := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (workers=%d, cache-entries=%d)", *addr, *workers, *cacheEntries)
		errCh <- server.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	logger.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}
