package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	publicoption "github.com/netecon-sim/publicoption"
	"github.com/netecon-sim/publicoption/internal/obs"
)

// serveCmd runs the HTTP query service: the scenario and experiment
// registries behind a JSON API with a content-addressed equilibrium cache
// (see docs/SERVICE.md) and the observability surface of
// docs/OBSERVABILITY.md (structured logs, /metrics, /debug/events).
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
	cacheEntries := fs.Int("cache-entries", publicoption.DefaultServiceCacheEntries,
		"equilibrium cache LRU bound (negative disables caching)")
	pprofEnabled := fs.Bool("pprof", false,
		"expose net/http/pprof profiling endpoints under /debug/pprof/ (off by default; enable only on trusted networks)")
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn or error (debug includes per-request access lines)")
	logFormat := fs.String("log-format", obs.LogText, "log output format: text or json")
	trace := fs.Bool("trace", false,
		"echo each request's trace ID in response bodies (the X-Trace-Id header is always set)")
	events := fs.Int("events", 0,
		"flight recorder capacity: the last N solve events served at /debug/events (0 = default, negative disables)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return usageErrorf("pubopt serve: unexpected argument %q", fs.Arg(0))
	}
	if *workers < 0 {
		return usageErrorf("pubopt serve: -workers must be non-negative, got %d", *workers)
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return usageErrorf("pubopt serve: %v", err)
	}
	logger, err := obs.NewLogger(os.Stderr, level, *logFormat)
	if err != nil {
		return usageErrorf("pubopt serve: %v", err)
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveRun(ctx, serveConfig{
		addr:         *addr,
		workers:      *workers,
		cacheEntries: *cacheEntries,
		pprofEnabled: *pprofEnabled,
		trace:        *trace,
		events:       *events,
		logger:       logger,
	})
}

// serveConfig carries the serve command's resolved settings into serveRun;
// tests inject a listener and a ready channel to exercise the full
// startup/shutdown path without flags, signals, or a fixed port.
type serveConfig struct {
	addr         string
	workers      int
	cacheEntries int
	pprofEnabled bool
	trace        bool
	events       int
	logger       *slog.Logger
	// listener, when non-nil, is served instead of binding addr.
	listener net.Listener
	// ready, when non-nil, receives the bound address once the server is
	// accepting connections.
	ready chan<- net.Addr
}

// serveRun builds the service, serves it until ctx is canceled, then drains
// in-flight requests. Startup and shutdown emit structured log lines so an
// operator can reconstruct the server's lifetime from its log alone.
func serveRun(ctx context.Context, cfg serveConfig) error {
	logger := cfg.logger
	if logger == nil {
		logger = obs.NopLogger()
	}
	var handler http.Handler = publicoption.NewService(publicoption.ServiceOptions{
		Workers:      cfg.workers,
		CacheEntries: cfg.cacheEntries,
		Logger:       logger,
		Trace:        cfg.trace,
		FlightEvents: cfg.events,
	})
	if cfg.pprofEnabled {
		handler = withPprof(handler)
		logger.Info("pprof profiling enabled", "path", "/debug/pprof/")
	}

	ln := cfg.listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.addr)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	server := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	start := time.Now()
	logger.Info("listening",
		"addr", ln.Addr().String(), "workers", cfg.workers,
		"cache_entries", cfg.cacheEntries, "trace", cfg.trace,
		"events", cfg.events, "pprof", cfg.pprofEnabled)
	if cfg.ready != nil {
		cfg.ready <- ln.Addr()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- server.Serve(ln) }()

	select {
	case err := <-errCh:
		logger.Error("server failed", "error", err)
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	logger.Info("shutting down", "reason", "signal")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown failed", "error", err)
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("server failed", "error", err)
		return fmt.Errorf("serve: %w", err)
	}
	logger.Info("shutdown complete", "uptime_s", time.Since(start).Seconds())
	return nil
}

// withPprof mounts the net/http/pprof handlers at /debug/pprof/ in front of
// the service handler. Profiling is how hot-path regressions in the solve
// kernel are diagnosed in production (see docs/PERFORMANCE.md), but the
// endpoints expose goroutine stacks and heap contents, so they stay behind
// the explicit -pprof opt-in.
func withPprof(service http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", service)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
