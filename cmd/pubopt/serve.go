package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	publicoption "github.com/netecon-sim/publicoption"
)

// serveCmd runs the HTTP query service: the scenario and experiment
// registries behind a JSON API with a content-addressed equilibrium cache
// (see docs/SERVICE.md).
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
	cacheEntries := fs.Int("cache-entries", publicoption.DefaultServiceCacheEntries,
		"equilibrium cache LRU bound (negative disables caching)")
	pprofEnabled := fs.Bool("pprof", false,
		"expose net/http/pprof profiling endpoints under /debug/pprof/ (off by default; enable only on trusted networks)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return usageErrorf("pubopt serve: unexpected argument %q", fs.Arg(0))
	}
	if *workers < 0 {
		return usageErrorf("pubopt serve: -workers must be non-negative, got %d", *workers)
	}

	logger := log.New(os.Stderr, "pubopt-serve ", log.LstdFlags)
	var handler http.Handler = publicoption.NewService(publicoption.ServiceOptions{
		Workers:      *workers,
		CacheEntries: *cacheEntries,
		Log:          logger,
	})
	if *pprofEnabled {
		handler = withPprof(handler)
		logger.Printf("pprof profiling enabled at /debug/pprof/")
	}
	server := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (workers=%d, cache-entries=%d)", *addr, *workers, *cacheEntries)
		errCh <- server.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	logger.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

// withPprof mounts the net/http/pprof handlers at /debug/pprof/ in front of
// the service handler. Profiling is how hot-path regressions in the solve
// kernel are diagnosed in production (see docs/PERFORMANCE.md), but the
// endpoints expose goroutine stacks and heap contents, so they stay behind
// the explicit -pprof opt-in.
func withPprof(service http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", service)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
