package main

import (
	"encoding/csv"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyGridJSON is a 2-CP explicit γ×ν grid solving in milliseconds, for
// end-to-end CLI tests.
const tinyGridJSON = `{
  "name": "cli-test-grid",
  "title": "CLI test grid",
  "population": {
    "kind": "explicit",
    "cps": [
      {"name": "a", "alpha": 1, "theta_hat": 2, "v": 0.5, "phi": 1, "demand": {"family": "constant"}},
      {"name": "b", "alpha": 0.5, "theta_hat": 4, "v": 0.5, "phi": 0.5, "demand": {"family": "constant"}}
    ]
  },
  "providers": [
    {"name": "incumbent", "gamma": 0.5, "kappa": 1, "c": 0.4},
    {"name": "po", "gamma": 0.5, "public_option": true}
  ],
  "sweep": {"axis": "poshare", "lo": 0.2, "hi": 0.4, "points": 3,
            "metrics": ["phi", "share"],
            "grid": {"axis": "nu", "values": [1, 2]}}
}`

func TestGridArgumentErrors(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
		usage   bool
	}{
		{name: "grid without subcommand", args: []string{"grid"}, usage: true},
		{name: "grid unknown subcommand", args: []string{"grid", "frobnicate"}, usage: true},
		{name: "grid list", args: []string{"grid", "list"}},
		{name: "grid run neither source", args: []string{"grid", "run"}, wantErr: "exactly one of --name or --json"},
		{name: "grid run both sources", args: []string{"grid", "run", "--name", "x", "--json", "y"}, wantErr: "exactly one of --name or --json"},
		{name: "grid run unknown name", args: []string{"grid", "run", "--name", "no-such"}, wantErr: `unknown scenario "no-such"`},
		{name: "grid run bad format", args: []string{"grid", "run", "--name", "po-sizing-gamma-nu", "-format", "bogus"}, wantErr: `unknown format "bogus"`},
		{name: "grid run bad flag", args: []string{"grid", "run", "-bogus"}, usage: true},
		{name: "grid run 1-D scenario", args: []string{"grid", "run", "--name", "neutral-baseline"}, wantErr: "declares a 1-D sweep"},
		{name: "grid run missing json file", args: []string{"grid", "run", "--json", "/no/such/file.json"}, wantErr: "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			quiet(t)
			err := run(tc.args)
			switch {
			case tc.usage:
				if !errors.Is(err, errUsage) {
					t.Fatalf("run(%q) = %v, want the errUsage sentinel", tc.args, err)
				}
			case tc.wantErr == "":
				if err != nil {
					t.Fatalf("run(%q) = %v, want nil", tc.args, err)
				}
			default:
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("run(%q) = %v, want error containing %q", tc.args, err, tc.wantErr)
				}
				if errors.Is(err, errUsage) {
					t.Fatalf("run(%q) returned errUsage; subcommand errors must stay distinct", tc.args)
				}
			}
		})
	}
}

func TestGridRunWritesLongFormCSV(t *testing.T) {
	quiet(t)
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(jsonPath, []byte(tinyGridJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(dir, "out")

	if err := run([]string{"grid", "run", "--json", jsonPath, "-format", "csv", "-out", outDir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	path := filepath.Join(outDir, "cli-test-grid_grid.csv")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("expected long-form CSV output: %v", err)
	}
	rows, err := csv.NewReader(f).ReadAll()
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if header := strings.Join(rows[0], ","); header != "layer,poshare,nu,value" {
		t.Fatalf("header = %q", header)
	}
	// 3 layers (phi, share/incumbent, share/po) × 6 cells each.
	if got := len(rows) - 1; got != 18 {
		t.Fatalf("grid CSV has %d data rows, want 18", got)
	}
	layers := make(map[string]int)
	for _, row := range rows[1:] {
		layers[row[0]]++
	}
	for _, l := range []string{"phi", "share/incumbent", "share/po"} {
		if layers[l] != 6 {
			t.Fatalf("layer %q has %d cells, want 6 (have %v)", l, layers[l], layers)
		}
	}
}
