package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	publicoption "github.com/netecon-sim/publicoption"
)

// simulateCmd dispatches the `pubopt simulate` subcommands: dynamics
// scenarios (a "dynamics" block instead of a sweep axis) run through the
// discrete-time market loop and rendered as time-series charts, long-form
// CSV, or a providers×ticks heatmap.
func simulateCmd(args []string) error {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "pubopt simulate: missing subcommand")
		simulateUsage(os.Stderr)
		return errUsage
	}
	switch args[0] {
	case "list":
		for _, name := range publicoption.DynamicsScenarioNames() {
			s, _ := publicoption.ScenarioByName(name)
			fmt.Printf("%-26s %s\n", s.Name, s.Title)
		}
		return nil
	case "run":
		return simulateRunCmd(args[1:])
	case "help", "-h", "--help":
		simulateUsage(os.Stdout)
		return nil
	default:
		fmt.Fprintf(os.Stderr, "pubopt simulate: unknown subcommand %q\n", args[0])
		simulateUsage(os.Stderr)
		return errUsage
	}
}

func simulateUsage(w io.Writer) {
	fmt.Fprint(w, `pubopt simulate — discrete-time market dynamics over declarative scenarios

subcommands:
  list                      list the built-in dynamics scenarios
  run --name <name> [flags] simulate a built-in dynamics scenario
  run --json <file> [flags] simulate a scenario from a JSON file ("-" = stdin;
                            any scenario declaring a "dynamics" block)

flags for run:
  -format chart|csv|heatmap output format to stdout (default chart);
                            heatmap renders providers×ticks layers
  -layer NAME               render only this heatmap layer (share, price,
                            psi, or util; default: all)
  -out DIR                  also write each time-series table as CSV under DIR
  -seed N                   override the population's ensemble seed
  -cps N                    override the population's ensemble size
  -workers N                accepted for symmetry; ticks are sequential, so
                            the trajectory is identical for any value
`)
}

func simulateRunCmd(args []string) error {
	fs := flag.NewFlagSet("simulate run", flag.ContinueOnError)
	name := fs.String("name", "", "built-in dynamics scenario name")
	jsonPath := fs.String("json", "", "path to a dynamics scenario JSON file (- for stdin)")
	format := fs.String("format", "chart", "output format: chart, csv or heatmap")
	layer := fs.String("layer", "", "heatmap layer to render (default: all)")
	outDir := fs.String("out", "", "directory for long-form CSV output")
	seed := fs.Uint64("seed", 0, "ensemble seed override (0 = scenario value)")
	cps := fs.Int("cps", 0, "ensemble size override (0 = scenario value)")
	workers := fs.Int("workers", 0, "accepted for symmetry; never changes the trajectory")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if (*name == "") == (*jsonPath == "") {
		return fmt.Errorf("simulate run: give exactly one of --name or --json")
	}
	switch *format {
	case "chart", "csv", "heatmap":
	default:
		return fmt.Errorf("unknown format %q (chart, csv or heatmap)", *format)
	}

	var (
		s   *publicoption.Scenario
		err error
	)
	if *name != "" {
		var ok bool
		s, ok = publicoption.ScenarioByName(*name)
		if !ok {
			return fmt.Errorf("unknown scenario %q (try 'pubopt simulate list')", *name)
		}
	} else if *jsonPath == "-" {
		s, err = publicoption.LoadScenario(os.Stdin)
	} else {
		f, ferr := os.Open(*jsonPath)
		if ferr != nil {
			return ferr
		}
		s, err = publicoption.LoadScenario(f)
		f.Close()
	}
	if err != nil {
		return err
	}
	if !s.IsDynamic() {
		return fmt.Errorf("scenario %q has no dynamics block; run it with 'pubopt scenario run' or 'pubopt grid run'", s.Name)
	}
	if err := s.ApplyEnsembleOverrides(*seed, *cps); err != nil {
		return err
	}

	start := time.Now()
	tr, err := publicoption.Simulate(s, publicoption.SimulateOptions{Workers: *workers})
	if err != nil {
		return err
	}
	fmt.Printf("== %s: %s (%d ticks, %.1fs)\n",
		s.Name, s.Title, len(tr.Ticks), time.Since(start).Seconds())
	if s.Reference != "" {
		fmt.Printf("   reference: %s\n", s.Reference)
	}
	fmt.Println()

	tables := tr.Tables()
	switch *format {
	case "chart":
		for _, tbl := range tables {
			fmt.Println(publicoption.RenderChart(tbl, 90, 22))
		}
	case "csv":
		for _, tbl := range tables {
			if err := tbl.WriteCSV(os.Stdout); err != nil {
				return err
			}
		}
	case "heatmap":
		grid := tr.Grid()
		if *layer != "" {
			fmt.Println(publicoption.RenderHeatmap(grid, *layer))
		} else {
			for _, l := range grid.Layers {
				fmt.Println(publicoption.RenderHeatmap(grid, l.Name))
			}
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		for ti, tbl := range tables {
			path := filepath.Join(*outDir, fmt.Sprintf("%s_sim_table%d.csv", s.Name, ti+1))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := tbl.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("   wrote %s\n", path)
		}
	}
	return nil
}
